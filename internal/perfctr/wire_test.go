package perfctr

import (
	"encoding/binary"
	"math"
	"reflect"
	"strings"
	"testing"
	"trickledown/internal/power"
)

func wireTestSamples() []Sample {
	return []Sample{
		{
			TargetSeconds: 1.0,
			IntervalSec:   1.001,
			CPUs: []CPUCounts{
				{Cycles: 2_800_000_000, HaltedCycles: 1_000_000_000, FetchedUops: 3_000_000_000,
					L3LoadMisses: 12_000, L3Misses: 15_000, TLBMisses: 900,
					BusTx: 40_000, BusPrefetchTx: 9_000, DMAOther: 3_000, Uncacheable: 120},
				{Cycles: 2_799_999_999, FetchedUops: 7},
			},
			Ints:      [][]uint64{{100, 2}, {0, 7}, {3, 0}},
			OSBusySec: []float64{0.75, 0.10},
		},
		{
			TargetSeconds:   2.0,
			IntervalSec:     0.999,
			CPUs:            []CPUCounts{{Cycles: 1}},
			OSThreadBusySec: []float64{0.5},
		},
		{TargetSeconds: 3.0, IntervalSec: 1.0}, // no CPUs at all
	}
}

func TestWireRoundTrip(t *testing.T) {
	in := wireTestSamples()
	buf, err := EncodeBatch(nil, "node07", in)
	if err != nil {
		t.Fatal(err)
	}
	node, out, err := DecodeBatch(buf)
	if err != nil {
		t.Fatal(err)
	}
	if node != "node07" {
		t.Errorf("node = %q, want node07", node)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d samples, want %d", len(out), len(in))
	}
	for i := range in {
		if !reflect.DeepEqual(normalizeSample(in[i]), normalizeSample(out[i])) {
			t.Errorf("sample %d round-trip mismatch:\n in: %+v\nout: %+v", i, in[i], out[i])
		}
	}
}

// normalizeSample maps an empty slice to nil and pads ragged interrupt
// rows, matching the rectangular wire representation.
func normalizeSample(s Sample) Sample {
	if len(s.CPUs) == 0 {
		s.CPUs = nil
	}
	if len(s.Ints) == 0 {
		s.Ints = nil
	} else {
		cols := 0
		for _, row := range s.Ints {
			if len(row) > cols {
				cols = len(row)
			}
		}
		padded := make([][]uint64, len(s.Ints))
		for v, row := range s.Ints {
			padded[v] = make([]uint64, cols)
			copy(padded[v], row)
		}
		s.Ints = padded
	}
	if len(s.OSBusySec) == 0 {
		s.OSBusySec = nil
	}
	if len(s.OSThreadBusySec) == 0 {
		s.OSThreadBusySec = nil
	}
	return s
}

func TestWireEncodeReusesBuffer(t *testing.T) {
	in := wireTestSamples()
	buf, err := EncodeBatch(nil, "n", in)
	if err != nil {
		t.Fatal(err)
	}
	again, err := EncodeBatch(buf[:0], "n", in)
	if err != nil {
		t.Fatal(err)
	}
	if &again[0] != &buf[0] {
		t.Error("encode into a reused buffer reallocated")
	}
}

func TestWireDecodeRejectsCorruption(t *testing.T) {
	good, err := EncodeBatch(nil, "node", wireTestSamples())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"truncated header", func(b []byte) []byte { return b[:5] }},
		{"truncated mid-sample", func(b []byte) []byte { return b[:len(b)-9] }},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0xFF) }},
		{"oversize sample count", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[10:], 1<<30)
			return b
		}},
		{"count larger than payload", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[10:], 1000)
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mut(append([]byte(nil), good...))
			if _, _, err := DecodeBatch(b); err == nil {
				t.Errorf("corrupt batch decoded without error")
			}
		})
	}
}

func TestWireDecodeRejectsNonFiniteTimes(t *testing.T) {
	buf, err := EncodeBatch(nil, "n", []Sample{{TargetSeconds: 1, IntervalSec: math.NaN()}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeBatch(buf); err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Errorf("NaN interval decoded without error (err=%v)", err)
	}
}

func TestWireEncodeRejectsOversize(t *testing.T) {
	if _, err := EncodeBatch(nil, strings.Repeat("n", maxWireNode+1), nil); err == nil {
		t.Error("oversize node name encoded")
	}
	if _, err := EncodeBatch(nil, "n", []Sample{{CPUs: make([]CPUCounts, maxWireCPUs+1)}}); err == nil {
		t.Error("oversize CPU count encoded")
	}
}

// FuzzDecodeBatch asserts the decoder never panics or over-allocates on
// arbitrary input — it is fed straight from HTTP request bodies.
func FuzzDecodeBatch(f *testing.F) {
	good, err := EncodeBatch(nil, "node", wireTestSamples())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:12])
	f.Add([]byte("TDS1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		node, samples, err := DecodeBatch(data)
		if err != nil {
			return
		}
		if len(node) > maxWireNode || len(samples) > maxWireSamples {
			t.Fatalf("decoder exceeded wire limits: node=%d samples=%d", len(node), len(samples))
		}
		// Whatever decodes must re-encode and decode identically.
		re, err := EncodeBatch(nil, node, samples)
		if err != nil {
			t.Fatalf("re-encode of decoded batch failed: %v", err)
		}
		if _, _, err := DecodeBatch(re); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}

func BenchmarkWireEncodeBatch(b *testing.B) {
	samples := make([]Sample, 256)
	for i := range samples {
		samples[i] = wireTestSamples()[0]
		samples[i].TargetSeconds = float64(i)
	}
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = EncodeBatch(buf[:0], "node00", samples)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}

func BenchmarkWireDecodeBatch(b *testing.B) {
	samples := make([]Sample, 256)
	for i := range samples {
		samples[i] = wireTestSamples()[0]
		samples[i].TargetSeconds = float64(i)
	}
	buf, err := EncodeBatch(nil, "node00", samples)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeBatch(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func TestWireTraceExtRoundTrip(t *testing.T) {
	in := wireTestSamples()
	ext := TraceExt{Sampled: true}
	for i := range ext.ID {
		ext.ID[i] = byte(i + 1)
	}
	buf, err := EncodeBatchExt(nil, "node07", in, ext)
	if err != nil {
		t.Fatal(err)
	}
	node, out, got, err := DecodeBatchExt(buf)
	if err != nil {
		t.Fatal(err)
	}
	if node != "node07" || len(out) != len(in) {
		t.Fatalf("node=%q samples=%d, want node07/%d", node, len(out), len(in))
	}
	if got != ext {
		t.Errorf("ext round-trip = %+v, want %+v", got, ext)
	}

	// The plain decoder accepts the extended batch and discards the ext.
	if _, _, err := DecodeBatch(buf); err != nil {
		t.Errorf("DecodeBatch on extended batch: %v", err)
	}

	// Unsampled flag round-trips too.
	ext.Sampled = false
	buf, err = EncodeBatchExt(nil, "n", in[:1], ext)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, got, err = DecodeBatchExt(buf); err != nil || got.Sampled || got.ID != ext.ID {
		t.Errorf("unsampled ext = %+v err=%v", got, err)
	}
}

func TestWireTraceExtZeroIsByteIdentical(t *testing.T) {
	in := wireTestSamples()
	plain, err := EncodeBatch(nil, "n", in)
	if err != nil {
		t.Fatal(err)
	}
	extd, err := EncodeBatchExt(nil, "n", in, TraceExt{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, extd) {
		t.Error("zero TraceExt changed the encoding")
	}
	if _, _, ext, err := DecodeBatchExt(plain); err != nil || !ext.IsZero() {
		t.Errorf("ext on plain batch = %+v err=%v, want zero", ext, err)
	}
}

func TestWireTraceExtRejectsMalformed(t *testing.T) {
	in := wireTestSamples()[:1]
	good, err := EncodeBatchExt(nil, "n", in, TraceExt{ID: [16]byte{1}, Sampled: true})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"truncated ext":     good[:len(good)-1],
		"oversized ext":     append(append([]byte{}, good...), 0),
		"bad ext magic":     append([]byte{}, good...),
		"unknown ext flags": append([]byte{}, good...),
	}
	cases["bad ext magic"][len(good)-extLen] = 'X'
	cases["unknown ext flags"][len(good)-extLen+4] = 0x80
	for name, buf := range cases {
		if _, _, _, err := DecodeBatchExt(buf); err == nil {
			t.Errorf("%s: decode accepted malformed extension", name)
		}
		if _, _, err := DecodeBatch(buf); err == nil {
			t.Errorf("%s: plain decode accepted malformed extension", name)
		}
	}
}

func TestWireRailsRoundTrip(t *testing.T) {
	in := wireTestSamples()
	rails := []power.Reading{
		{41.2, 19.1, 33.7, 33.0, 21.9},
		{38.5, 19.0, 29.1, 32.8, 21.6},
		{36.0, 18.9, 28.4, 32.7, 21.6},
	}
	ext := TraceExt{Sampled: true}
	ext.ID[0], ext.ID[15] = 0xab, 0xcd
	buf, err := EncodeBatchFull(nil, "node07", in, ext, rails)
	if err != nil {
		t.Fatal(err)
	}
	node, out, gotExt, gotRails, err := DecodeBatchFull(buf)
	if err != nil {
		t.Fatal(err)
	}
	if node != "node07" || len(out) != len(in) {
		t.Fatalf("node=%q samples=%d", node, len(out))
	}
	if gotExt != ext {
		t.Errorf("ext = %+v, want %+v", gotExt, ext)
	}
	if !reflect.DeepEqual(gotRails, rails) {
		t.Errorf("rails = %+v, want %+v", gotRails, rails)
	}
	// Rails without a trace context also round-trip.
	buf, err = EncodeBatchFull(nil, "n", in, TraceExt{}, rails)
	if err != nil {
		t.Fatal(err)
	}
	_, _, gotExt, gotRails, err = DecodeBatchFull(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !gotExt.IsZero() || !reflect.DeepEqual(gotRails, rails) {
		t.Errorf("rails-only decode: ext=%+v rails=%+v", gotExt, gotRails)
	}
	// Pre-rails decoders tolerate the block (and discard it).
	if _, _, _, err := DecodeBatchExt(buf); err != nil {
		t.Errorf("DecodeBatchExt on rails batch: %v", err)
	}
	// No extensions at all stays byte-identical to EncodeBatch.
	plain, err := EncodeBatchFull(nil, "n", in, TraceExt{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	base, err := EncodeBatch(nil, "n", in)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, base) {
		t.Error("EncodeBatchFull without extensions diverges from EncodeBatch")
	}
}

func TestWireRailsRejectsMalformed(t *testing.T) {
	in := wireTestSamples()
	rails := []power.Reading{{1, 2, 3, 4, 5}, {1, 2, 3, 4, 5}, {1, 2, 3, 4, 5}}
	if _, err := EncodeBatchFull(nil, "n", in, TraceExt{}, rails[:2]); err == nil {
		t.Error("encoder accepted rails/sample count mismatch")
	}
	good, err := EncodeBatchFull(nil, "n", in, TraceExt{}, rails)
	if err != nil {
		t.Fatal(err)
	}
	base, err := EncodeBatch(nil, "n", in)
	if err != nil {
		t.Fatal(err)
	}
	railsBlock := good[len(base):]

	cases := map[string][]byte{
		"truncated rails": good[:len(good)-4],
		"duplicate rails": append(append([]byte{}, good...), railsBlock...),
		"count mismatch": func() []byte {
			b := append([]byte{}, good...)
			binary.LittleEndian.PutUint32(b[len(base)+4:], 2)
			return b
		}(),
		"unknown magic": append(append([]byte{}, base...), 'T', 'D', 'Z', '9', 0, 0, 0, 0),
		"short magic":   append(append([]byte{}, base...), 'T', 'D'),
	}
	for name, buf := range cases {
		if _, _, _, _, err := DecodeBatchFull(buf); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
