package perfctr

import (
	"encoding/binary"
	"fmt"
	"math"

	"trickledown/internal/power"
)

// Wire format for shipping counter samples off the sampled box to a
// live estimation service (cmd/tdserve). The paper's pipeline moved
// samples over a serial-synced offline log merge; the online pipeline
// moves the same 1 Hz schema over HTTP, so the format optimizes for the
// ingest hot path: fixed-width little-endian fields, one allocation-free
// append pass to encode, and a decoder that validates every length
// prefix against the remaining buffer before allocating anything, so a
// truncated or hostile payload returns an error instead of an OOM or
// panic.
//
// Layout (all integers little-endian):
//
//	batch  := magic "TDS1" | u16 nodeLen | node bytes | u32 count | sample*
//	sample := f64 targetSeconds | f64 intervalSec
//	          | u16 nCPU  | nCPU * 10 u64   (CPUCounts field order)
//	          | u16 nVec | u16 nCol | nVec*nCol u64   (Ints matrix)
//	          | u16 nBusy | nBusy f64       (OSBusySec)
//	          | u16 nThr  | nThr f64        (OSThreadBusySec)

// wireMagic identifies (and versions) a sample batch.
var wireMagic = [4]byte{'T', 'D', 'S', '1'}

// extMagic introduces the optional trailing trace-context extension
// block. Old decoders reject it as trailing garbage (they predate
// tracing and talk to same-version peers); new decoders accept batches
// with or without it, so producers can roll out trace stamping before
// every server upgrades.
var extMagic = [4]byte{'T', 'D', 'X', '1'}

// extLen is the fixed extension size: magic | u8 flags | 16-byte ID.
const extLen = 4 + 1 + 16

// extFlagSampled marks the batch as head-sampled at the producer: the
// server records a full event timeline for it.
const extFlagSampled = 0x01

// railsMagic introduces the optional trailing measured-rails extension:
// per-subsystem ground-truth power for every sample in the batch, from
// nodes that carry calibration sensors. The adapt layer uses these to
// compute live residuals; uninstrumented nodes simply omit the block.
//
//	rails := magic "TDP1" | u32 count | count × NumSubsystems f64
//
// count must equal the batch's sample count — a mismatch is a framing
// bug, not partial data.
var railsMagic = [4]byte{'T', 'D', 'P', '1'}

// TraceExt is the optional per-batch trace context carried after the
// samples. The producer mints the 128-bit ID and decides sampling so
// trace identity is stable across the client/server boundary.
type TraceExt struct {
	ID      [16]byte
	Sampled bool
}

// IsZero reports whether the extension carries no trace ID.
func (e TraceExt) IsZero() bool { return e.ID == [16]byte{} }

// Decoder guard rails. Real machines top out far below these; anything
// larger is a corrupt or hostile length prefix.
const (
	maxWireNode    = 256
	maxWireCPUs    = 1 << 10
	maxWireVectors = 1 << 12
	maxWireSamples = 1 << 20
)

// countersPerCPU is the number of u64 fields in CPUCounts.
const countersPerCPU = 10

// EncodeBatch appends the wire encoding of a node's sample batch to buf
// (which may be nil) and returns the extended buffer. Callers on the
// send hot path reuse buf across batches to stay allocation-free.
func EncodeBatch(buf []byte, node string, samples []Sample) ([]byte, error) {
	if len(node) > maxWireNode {
		return nil, fmt.Errorf("perfctr: node name %d bytes exceeds wire limit %d", len(node), maxWireNode)
	}
	if len(samples) > maxWireSamples {
		return nil, fmt.Errorf("perfctr: batch of %d samples exceeds wire limit %d", len(samples), maxWireSamples)
	}
	buf = append(buf, wireMagic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(node)))
	buf = append(buf, node...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(samples)))
	for i := range samples {
		var err error
		if buf, err = appendSample(buf, &samples[i]); err != nil {
			return nil, fmt.Errorf("perfctr: sample %d: %w", i, err)
		}
	}
	return buf, nil
}

// EncodeBatchExt encodes like EncodeBatch and, when ext carries a
// non-zero trace ID, appends the TDX1 trace-context extension. A zero
// ext produces output byte-identical to EncodeBatch, so callers can
// thread the extension unconditionally.
func EncodeBatchExt(buf []byte, node string, samples []Sample, ext TraceExt) ([]byte, error) {
	return EncodeBatchFull(buf, node, samples, ext, nil)
}

// EncodeBatchFull encodes like EncodeBatchExt and, when rails is
// non-nil, appends the TDP1 measured-rails extension. rails must carry
// exactly one Reading per sample.
func EncodeBatchFull(buf []byte, node string, samples []Sample, ext TraceExt, rails []power.Reading) ([]byte, error) {
	if rails != nil && len(rails) != len(samples) {
		return nil, fmt.Errorf("perfctr: %d rails readings for %d samples", len(rails), len(samples))
	}
	buf, err := EncodeBatch(buf, node, samples)
	if err != nil {
		return nil, err
	}
	if !ext.IsZero() {
		buf = append(buf, extMagic[:]...)
		var flags byte
		if ext.Sampled {
			flags |= extFlagSampled
		}
		buf = append(buf, flags)
		buf = append(buf, ext.ID[:]...)
	}
	if rails != nil {
		buf = append(buf, railsMagic[:]...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rails)))
		for i := range rails {
			for s := 0; s < power.NumSubsystems; s++ {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(rails[i][s]))
			}
		}
	}
	return buf, nil
}

// appendSample appends one sample's wire encoding.
func appendSample(buf []byte, s *Sample) ([]byte, error) {
	if len(s.CPUs) > maxWireCPUs {
		return nil, fmt.Errorf("%d CPUs exceeds wire limit %d", len(s.CPUs), maxWireCPUs)
	}
	if len(s.Ints) > maxWireVectors {
		return nil, fmt.Errorf("%d interrupt vectors exceeds wire limit %d", len(s.Ints), maxWireVectors)
	}
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.TargetSeconds))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.IntervalSec))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s.CPUs)))
	for i := range s.CPUs {
		c := &s.CPUs[i]
		for _, v := range [countersPerCPU]uint64{
			c.Cycles, c.HaltedCycles, c.FetchedUops, c.L3LoadMisses,
			c.L3Misses, c.TLBMisses, c.BusTx, c.BusPrefetchTx,
			c.DMAOther, c.Uncacheable,
		} {
			buf = binary.LittleEndian.AppendUint64(buf, v)
		}
	}
	// The matrix is rectangular on the wire; rows shorter than the
	// widest are zero-padded (the OS accounting is rectangular anyway).
	cols := 0
	for _, row := range s.Ints {
		if len(row) > cols {
			cols = len(row)
		}
	}
	if cols > maxWireCPUs {
		return nil, fmt.Errorf("%d interrupt columns exceeds wire limit %d", cols, maxWireCPUs)
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s.Ints)))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(cols))
	for _, row := range s.Ints {
		for c := 0; c < cols; c++ {
			var v uint64
			if c < len(row) {
				v = row[c]
			}
			buf = binary.LittleEndian.AppendUint64(buf, v)
		}
	}
	for _, vec := range [][]float64{s.OSBusySec, s.OSThreadBusySec} {
		if len(vec) > maxWireCPUs {
			return nil, fmt.Errorf("%d busy-time entries exceeds wire limit %d", len(vec), maxWireCPUs)
		}
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(vec)))
		for _, v := range vec {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	return buf, nil
}

// wireReader walks a received buffer with bounds checking.
type wireReader struct {
	buf []byte
	off int
}

func (r *wireReader) need(n int) error {
	if n < 0 || len(r.buf)-r.off < n {
		return fmt.Errorf("perfctr: truncated wire batch at offset %d (need %d of %d bytes)",
			r.off, n, len(r.buf)-r.off)
	}
	return nil
}

func (r *wireReader) u16() (int, error) {
	if err := r.need(2); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return int(v), nil
}

func (r *wireReader) u32() (int, error) {
	if err := r.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return int(v), nil
}

func (r *wireReader) u64() (uint64, error) {
	if err := r.need(8); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

func (r *wireReader) f64() (float64, error) {
	v, err := r.u64()
	return math.Float64frombits(v), err
}

// DecodeBatch parses one wire batch, returning the node name and its
// samples. A trailing TDX1 trace-context extension is accepted and
// discarded; callers that want it use DecodeBatchExt.
func DecodeBatch(buf []byte) (node string, samples []Sample, err error) {
	node, samples, _, err = DecodeBatchExt(buf)
	return node, samples, err
}

// DecodeBatchExt parses one wire batch plus its optional TDX1
// trace-context extension (ext is zero when absent); a trailing TDP1
// rails extension is accepted and discarded. Callers that want the
// rails use DecodeBatchFull.
func DecodeBatchExt(buf []byte) (node string, samples []Sample, ext TraceExt, err error) {
	node, samples, ext, _, err = DecodeBatchFull(buf)
	return node, samples, ext, err
}

// DecodeBatchFull parses one wire batch plus every optional trailing
// extension: the TDX1 trace context (ext is zero when absent) and the
// TDP1 measured rails (rails is nil when absent). Every length prefix
// is validated against both the wire limits and the bytes actually
// present before allocation, and the per-sample timestamps must be
// finite (a NaN interval would poison the per-cycle normalization
// downstream). Trailing bytes that are not a well-formed extension are
// rejected: a length mismatch means a framing bug, not data.
func DecodeBatchFull(buf []byte) (node string, samples []Sample, ext TraceExt, rails []power.Reading, err error) {
	r := &wireReader{buf: buf}
	if err := r.need(4); err != nil {
		return "", nil, TraceExt{}, nil, err
	}
	if [4]byte(r.buf[:4]) != wireMagic {
		return "", nil, TraceExt{}, nil, fmt.Errorf("perfctr: bad wire magic %q", r.buf[:4])
	}
	r.off = 4
	nodeLen, err := r.u16()
	if err != nil {
		return "", nil, TraceExt{}, nil, err
	}
	if nodeLen > maxWireNode {
		return "", nil, TraceExt{}, nil, fmt.Errorf("perfctr: node name %d bytes exceeds wire limit %d", nodeLen, maxWireNode)
	}
	if err := r.need(nodeLen); err != nil {
		return "", nil, TraceExt{}, nil, err
	}
	node = string(r.buf[r.off : r.off+nodeLen])
	r.off += nodeLen
	count, err := r.u32()
	if err != nil {
		return "", nil, TraceExt{}, nil, err
	}
	if count > maxWireSamples {
		return "", nil, TraceExt{}, nil, fmt.Errorf("perfctr: batch of %d samples exceeds wire limit %d", count, maxWireSamples)
	}
	// A sample is at least 2 f64 + 4 u16 counts: cheap sanity before the
	// count-sized allocation.
	if err := r.need(count * 24); err != nil {
		return "", nil, TraceExt{}, nil, fmt.Errorf("perfctr: %d-sample batch larger than payload: %w", count, err)
	}
	samples = make([]Sample, count)
	for i := range samples {
		if err := decodeSample(r, &samples[i]); err != nil {
			return "", nil, TraceExt{}, nil, fmt.Errorf("perfctr: sample %d: %w", i, err)
		}
	}
	if ext, rails, err = decodeExtensions(r, len(samples)); err != nil {
		return "", nil, TraceExt{}, nil, err
	}
	return node, samples, ext, rails, nil
}

// decodeExtensions walks the trailing extension blocks (TDX1 trace
// context, TDP1 measured rails) in any order. Unknown magic or a
// duplicated block is a framing error — the format versions by magic,
// so silently skipping bytes would hide producer bugs.
func decodeExtensions(r *wireReader, nSamples int) (ext TraceExt, rails []power.Reading, err error) {
	seenExt, seenRails := false, false
	for r.off < len(r.buf) {
		if err := r.need(4); err != nil {
			return TraceExt{}, nil, fmt.Errorf("perfctr: %d trailing bytes after wire batch", len(r.buf)-r.off)
		}
		magic := [4]byte(r.buf[r.off : r.off+4])
		switch magic {
		case extMagic:
			if seenExt {
				return TraceExt{}, nil, fmt.Errorf("perfctr: duplicate trace extension")
			}
			seenExt = true
			if err := r.need(extLen); err != nil {
				return TraceExt{}, nil, err
			}
			flags := r.buf[r.off+4]
			if flags&^extFlagSampled != 0 {
				return TraceExt{}, nil, fmt.Errorf("perfctr: unknown trace extension flags %#02x", flags)
			}
			copy(ext.ID[:], r.buf[r.off+5:r.off+extLen])
			ext.Sampled = flags&extFlagSampled != 0
			r.off += extLen
		case railsMagic:
			if seenRails {
				return TraceExt{}, nil, fmt.Errorf("perfctr: duplicate rails extension")
			}
			seenRails = true
			r.off += 4
			count, err := r.u32()
			if err != nil {
				return TraceExt{}, nil, err
			}
			if count != nSamples {
				return TraceExt{}, nil, fmt.Errorf(
					"perfctr: rails extension carries %d readings for %d samples", count, nSamples)
			}
			if err := r.need(count * power.NumSubsystems * 8); err != nil {
				return TraceExt{}, nil, err
			}
			rails = make([]power.Reading, count)
			for i := range rails {
				for s := 0; s < power.NumSubsystems; s++ {
					v, _ := r.f64()
					rails[i][s] = v
				}
			}
		default:
			return TraceExt{}, nil, fmt.Errorf("perfctr: unknown trailing block %q", magic[:])
		}
	}
	return ext, rails, nil
}

// decodeSample parses one sample in place.
func decodeSample(r *wireReader, s *Sample) error {
	var err error
	if s.TargetSeconds, err = r.f64(); err != nil {
		return err
	}
	if s.IntervalSec, err = r.f64(); err != nil {
		return err
	}
	if !isFinite(s.TargetSeconds) || !isFinite(s.IntervalSec) {
		return fmt.Errorf("non-finite timestamp (t=%g interval=%g)", s.TargetSeconds, s.IntervalSec)
	}
	nCPU, err := r.u16()
	if err != nil {
		return err
	}
	if nCPU > maxWireCPUs {
		return fmt.Errorf("%d CPUs exceeds wire limit %d", nCPU, maxWireCPUs)
	}
	if err := r.need(nCPU * countersPerCPU * 8); err != nil {
		return err
	}
	s.CPUs = make([]CPUCounts, nCPU)
	for i := range s.CPUs {
		c := &s.CPUs[i]
		for _, dst := range [countersPerCPU]*uint64{
			&c.Cycles, &c.HaltedCycles, &c.FetchedUops, &c.L3LoadMisses,
			&c.L3Misses, &c.TLBMisses, &c.BusTx, &c.BusPrefetchTx,
			&c.DMAOther, &c.Uncacheable,
		} {
			*dst, _ = r.u64()
		}
	}
	nVec, err := r.u16()
	if err != nil {
		return err
	}
	cols, err := r.u16()
	if err != nil {
		return err
	}
	if nVec > maxWireVectors || cols > maxWireCPUs {
		return fmt.Errorf("interrupt matrix %dx%d exceeds wire limits", nVec, cols)
	}
	if err := r.need(nVec * cols * 8); err != nil {
		return err
	}
	if nVec > 0 {
		s.Ints = make([][]uint64, nVec)
		flat := make([]uint64, nVec*cols)
		for v := range s.Ints {
			s.Ints[v] = flat[v*cols : (v+1)*cols : (v+1)*cols]
			for c := 0; c < cols; c++ {
				s.Ints[v][c], _ = r.u64()
			}
		}
	}
	for _, dst := range []*[]float64{&s.OSBusySec, &s.OSThreadBusySec} {
		n, err := r.u16()
		if err != nil {
			return err
		}
		if n > maxWireCPUs {
			return fmt.Errorf("%d busy-time entries exceeds wire limit %d", n, maxWireCPUs)
		}
		if err := r.need(n * 8); err != nil {
			return err
		}
		if n > 0 {
			vec := make([]float64, n)
			for i := range vec {
				if vec[i], err = r.f64(); err != nil {
					return err
				}
				if !isFinite(vec[i]) {
					return fmt.Errorf("non-finite busy time %g", vec[i])
				}
			}
			*dst = vec
		}
	}
	return nil
}

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
