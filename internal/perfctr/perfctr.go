// Package perfctr is the software side of the paper's counter
// methodology: a driver in the spirit of Mikael Pettersson's Linux
// perfctr patch that programs each processor's PMU once, then samples
// all processors at a nominal 1 Hz — reading the totals, clearing the
// counters, reading /proc/interrupts for the interrupt sources the PMU
// cannot provide, and emitting the serial sync byte the DAQ records.
//
// As the paper notes, "though sampling is periodic, the actual sampling
// rate varies slightly due to cache effects and interrupt latency"; the
// sampler reproduces that jitter, and the per-cycle normalization in the
// models is what corrects for it.
package perfctr

import (
	"fmt"

	"trickledown/internal/pmu"
	"trickledown/internal/sim"
)

// CPUCounts is one processor's counter deltas for one sampling interval.
type CPUCounts struct {
	Cycles        uint64
	HaltedCycles  uint64
	FetchedUops   uint64
	L3LoadMisses  uint64
	L3Misses      uint64
	TLBMisses     uint64
	BusTx         uint64
	BusPrefetchTx uint64
	DMAOther      uint64
	Uncacheable   uint64
}

// sampledEvents maps PMU slots to events, in CPUCounts field order.
var sampledEvents = []pmu.Event{
	pmu.EventCycles,
	pmu.EventHaltedCycles,
	pmu.EventFetchedUops,
	pmu.EventL3LoadMisses,
	pmu.EventL3Misses,
	pmu.EventTLBMisses,
	pmu.EventBusTransactions,
	pmu.EventBusTransactionsPrefetch,
	pmu.EventDMAOther,
	pmu.EventUncacheableAccesses,
}

// Sample is one synchronized observation of the whole machine.
type Sample struct {
	// TargetSeconds is the target system's clock at sampling time.
	TargetSeconds float64
	// IntervalSec is the time since the previous sample on the target
	// clock (jittered around the nominal period).
	IntervalSec float64
	// CPUs holds per-processor counter deltas.
	CPUs []CPUCounts
	// Ints holds interrupt-delivery deltas indexed [vector][cpu], read
	// from the OS's /proc/interrupts accounting.
	Ints [][]uint64
	// OSBusySec holds per-CPU busy-time deltas from the OS scheduler
	// accounting, when a UtilSource is attached (nil otherwise).
	OSBusySec []float64
	// OSThreadBusySec holds per-hardware-thread busy-time deltas (the
	// per-process accounting view), when a thread source is attached.
	OSThreadBusySec []float64
}

// IntsTotal returns all interrupts delivered during the interval.
func (s *Sample) IntsTotal() uint64 {
	var t uint64
	for _, row := range s.Ints {
		for _, n := range row {
			t += n
		}
	}
	return t
}

// IntsForVector returns the interval's deliveries of one vector across
// all CPUs.
func (s *Sample) IntsForVector(v int) uint64 {
	if v < 0 || v >= len(s.Ints) {
		return 0
	}
	var t uint64
	for _, n := range s.Ints[v] {
		t += n
	}
	return t
}

// IntsForCPU returns the interval's deliveries to one CPU across all
// vectors.
func (s *Sample) IntsForCPU(cpu int) uint64 {
	var t uint64
	for _, row := range s.Ints {
		if cpu >= 0 && cpu < len(row) {
			t += row[cpu]
		}
	}
	return t
}

// InterruptSource exposes the OS's cumulative interrupt matrix
// ([vector][cpu]); satisfied by the APIC via the OS layer.
type InterruptSource interface {
	Matrix() [][]uint64
}

// UtilSource exposes the OS's cumulative per-CPU busy time — the
// OS-counter channel the paper contrasts with on-chip events.
type UtilSource interface {
	BusySeconds() []float64
}

// FaultInjector corrupts raw counter reads the way real PMUs glitch: a
// slot returns garbage, saturates, or wraps mid-interval. The driver
// applies it to each processor's freshly read deltas before the sample
// is stored. Implementations must be pure functions of their pre-seeded
// state and the sample time, keeping faulty runs reproducible.
type FaultInjector interface {
	// PerturbCounts mutates one processor's interval deltas in place at
	// sample time t (target clock). A healthy PMU leaves c untouched.
	PerturbCounts(t float64, cpu int, c *CPUCounts)
}

// Sampler drives periodic sampling of a set of PMUs.
type Sampler struct {
	period     float64
	jitterStd  float64
	pmus       []*pmu.PMU
	ints       InterruptSource
	util       UtilSource
	lastBusy   []float64
	threadUtil UtilSource
	lastThread []float64
	rng        *sim.RNG
	nextAt     float64
	lastAt     float64
	lastMatrix [][]uint64
	samples    []Sample
	onSample   []func()
	fault      FaultInjector
}

// SetFaultInjector installs a counter fault injector (nil restores
// healthy PMUs). Call it before the run.
func (s *Sampler) SetFaultInjector(f FaultInjector) { s.fault = f }

// NewSampler programs every PMU with the paper's event set and returns a
// sampler firing at the given nominal period in seconds.
func NewSampler(period float64, pmus []*pmu.PMU, ints InterruptSource, parent *sim.RNG) (*Sampler, error) {
	if period <= 0 {
		return nil, fmt.Errorf("perfctr: non-positive period %v", period)
	}
	if len(pmus) == 0 {
		return nil, fmt.Errorf("perfctr: no PMUs")
	}
	for cpuID, p := range pmus {
		for slot, e := range sampledEvents {
			if err := p.Program(slot, e); err != nil {
				return nil, fmt.Errorf("perfctr: cpu %d: %w", cpuID, err)
			}
		}
	}
	s := &Sampler{
		period:    period,
		jitterStd: period * 0.002,
		pmus:      pmus,
		ints:      ints,
		rng:       parent.Split(),
	}
	s.nextAt = s.schedule(0)
	if ints != nil {
		s.lastMatrix = ints.Matrix()
	}
	return s, nil
}

// AttachUtilSource adds OS busy-time sampling (optional; call before the
// first sample fires).
func (s *Sampler) AttachUtilSource(u UtilSource) {
	s.util = u
	if u != nil {
		s.lastBusy = u.BusySeconds()
	}
}

// AttachThreadUtilSource adds per-hardware-thread busy-time sampling
// (optional; call before the first sample fires).
func (s *Sampler) AttachThreadUtilSource(u UtilSource) {
	s.threadUtil = u
	if u != nil {
		s.lastThread = u.BusySeconds()
	}
}

// OnSample registers a hook invoked at every sampling instant — the
// serial sync byte to the DAQ.
func (s *Sampler) OnSample(fn func()) {
	if fn != nil {
		s.onSample = append(s.onSample, fn)
	}
}

// schedule returns the next firing time after now, with OS-induced
// jitter.
func (s *Sampler) schedule(now float64) float64 {
	j := s.rng.Norm(0, s.jitterStd)
	if j < -s.period/2 {
		j = -s.period / 2
	}
	return now + s.period + j
}

// Step is called once per simulation slice and fires when a sampling
// instant has been reached.
func (s *Sampler) Step(c *sim.Clock) {
	now := c.Seconds()
	if now < s.nextAt {
		return
	}
	s.fire(now)
	s.nextAt = s.schedule(now)
}

// fire reads and clears every PMU, diffs /proc/interrupts, stores the
// sample and emits the sync pulse.
func (s *Sampler) fire(now float64) {
	sample := Sample{
		TargetSeconds: now,
		IntervalSec:   now - s.lastAt,
		CPUs:          make([]CPUCounts, len(s.pmus)),
	}
	for i, p := range s.pmus {
		c := &sample.CPUs[i]
		// A fixed-size array keeps the per-sample slot table off the heap.
		dst := [...]*uint64{
			&c.Cycles, &c.HaltedCycles, &c.FetchedUops, &c.L3LoadMisses,
			&c.L3Misses, &c.TLBMisses, &c.BusTx, &c.BusPrefetchTx,
			&c.DMAOther, &c.Uncacheable,
		}
		for slot := range sampledEvents {
			v, err := p.Read(slot)
			if err == nil {
				*dst[slot] = v
			}
		}
		p.ClearAll()
		if s.fault != nil {
			s.fault.PerturbCounts(now, i, c)
		}
	}
	if s.ints != nil {
		cur := s.ints.Matrix()
		sample.Ints = diffMatrix(cur, s.lastMatrix)
		s.lastMatrix = cur
	}
	if s.util != nil {
		cur := s.util.BusySeconds()
		sample.OSBusySec = diffBusy(cur, s.lastBusy)
		s.lastBusy = cur
	}
	if s.threadUtil != nil {
		cur := s.threadUtil.BusySeconds()
		sample.OSThreadBusySec = diffBusy(cur, s.lastThread)
		s.lastThread = cur
	}
	s.lastAt = now
	s.samples = append(s.samples, sample)
	for _, fn := range s.onSample {
		fn()
	}
}

// diffBusy returns cur - prev elementwise, tolerating shape growth.
func diffBusy(cur, prev []float64) []float64 {
	out := make([]float64, len(cur))
	for i := range cur {
		d := cur[i]
		if i < len(prev) {
			d -= prev[i]
		}
		out[i] = d
	}
	return out
}

// diffMatrix returns cur - prev elementwise, tolerating shape growth.
func diffMatrix(cur, prev [][]uint64) [][]uint64 {
	out := make([][]uint64, len(cur))
	for v := range cur {
		out[v] = make([]uint64, len(cur[v]))
		for c := range cur[v] {
			d := cur[v][c]
			if v < len(prev) && c < len(prev[v]) {
				d -= prev[v][c]
			}
			out[v][c] = d
		}
	}
	return out
}

// Samples returns the collected samples in firing order.
func (s *Sampler) Samples() []Sample { return s.samples }

// Period returns the nominal sampling period.
func (s *Sampler) Period() float64 { return s.period }
