package perfctr

import (
	"math"
	"testing"
	"time"

	"trickledown/internal/pmu"
	"trickledown/internal/sim"
)

type fakeInts struct {
	m [][]uint64
}

func (f *fakeInts) Matrix() [][]uint64 {
	out := make([][]uint64, len(f.m))
	for i := range f.m {
		out[i] = append([]uint64(nil), f.m[i]...)
	}
	return out
}

func newSampler(t *testing.T, n int, ints InterruptSource) (*Sampler, []*pmu.PMU) {
	t.Helper()
	pmus := make([]*pmu.PMU, n)
	for i := range pmus {
		pmus[i] = pmu.New()
	}
	s, err := NewSampler(1.0, pmus, ints, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	return s, pmus
}

func TestSamplerProgramsPMUs(t *testing.T) {
	_, pmus := newSampler(t, 2, nil)
	for _, p := range pmus {
		if _, err := p.ReadEvent(pmu.EventCycles); err != nil {
			t.Errorf("cycles not programmed: %v", err)
		}
		if _, err := p.ReadEvent(pmu.EventDMAOther); err != nil {
			t.Errorf("dma not programmed: %v", err)
		}
	}
}

func TestSamplerFiresAtPeriod(t *testing.T) {
	s, pmus := newSampler(t, 1, nil)
	clock := sim.NewClock(time.Millisecond, 2.8e9)
	for i := 0; i < 10000; i++ { // 10 s
		pmus[0].Observe(pmu.EventCycles, 2800000)
		s.Step(clock)
		clock.Tick()
	}
	got := len(s.Samples())
	if got < 9 || got > 11 {
		t.Fatalf("samples in 10s = %d, want ~10", got)
	}
	// Intervals hover around 1 s with small jitter.
	for i, smp := range s.Samples() {
		if i == 0 {
			continue
		}
		if math.Abs(smp.IntervalSec-1) > 0.05 {
			t.Errorf("sample %d interval = %v", i, smp.IntervalSec)
		}
	}
}

func TestSampleReadsAndClears(t *testing.T) {
	s, pmus := newSampler(t, 2, nil)
	clock := sim.NewClock(time.Millisecond, 2.8e9)
	for i := 0; i < 2500; i++ {
		pmus[0].Observe(pmu.EventFetchedUops, 1000)
		pmus[1].Observe(pmu.EventFetchedUops, 500)
		s.Step(clock)
		clock.Tick()
	}
	samples := s.Samples()
	if len(samples) < 2 {
		t.Fatalf("samples = %d", len(samples))
	}
	// Each interval's uops must be ~interval * rate, not cumulative.
	s1 := samples[1]
	want0 := s1.IntervalSec * 1000 * 1000 // 1000 uops/ms
	if math.Abs(float64(s1.CPUs[0].FetchedUops)-want0)/want0 > 0.02 {
		t.Errorf("cpu0 uops = %d, want ~%v (cleared between samples)", s1.CPUs[0].FetchedUops, want0)
	}
	if s1.CPUs[1].FetchedUops >= s1.CPUs[0].FetchedUops {
		t.Error("per-CPU counts not separated")
	}
}

func TestInterruptDeltas(t *testing.T) {
	ints := &fakeInts{m: [][]uint64{{0, 0}, {0, 0}}}
	s, _ := newSampler(t, 2, ints)
	clock := sim.NewClock(time.Millisecond, 2.8e9)
	for i := 0; i < 2500; i++ {
		ints.m[0][0] += 2 // vector 0, cpu 0: 2 per ms
		ints.m[1][1]++    // vector 1, cpu 1: 1 per ms
		s.Step(clock)
		clock.Tick()
	}
	samples := s.Samples()
	if len(samples) < 2 {
		t.Fatalf("samples = %d", len(samples))
	}
	smp := samples[1]
	iv := smp.IntervalSec
	if got, want := float64(smp.IntsForVector(0)), 2000*iv; math.Abs(got-want)/want > 0.02 {
		t.Errorf("vector 0 delta = %v, want ~%v", got, want)
	}
	if got, want := float64(smp.IntsForCPU(1)), 1000*iv; math.Abs(got-want)/want > 0.02 {
		t.Errorf("cpu 1 delta = %v, want ~%v", got, want)
	}
	if got := smp.IntsTotal(); got != smp.IntsForCPU(0)+smp.IntsForCPU(1) {
		t.Errorf("total %d != per-cpu sum", got)
	}
	if smp.IntsForVector(-1) != 0 || smp.IntsForVector(99) != 0 {
		t.Error("out-of-range vector nonzero")
	}
	if smp.IntsForCPU(-1) != 0 || smp.IntsForCPU(99) != 0 {
		t.Error("out-of-range cpu nonzero")
	}
}

func TestOnSampleHook(t *testing.T) {
	s, _ := newSampler(t, 1, nil)
	var pulses int
	s.OnSample(func() { pulses++ })
	s.OnSample(nil) // ignored
	clock := sim.NewClock(time.Millisecond, 2.8e9)
	for i := 0; i < 3500; i++ {
		s.Step(clock)
		clock.Tick()
	}
	if pulses != len(s.Samples()) {
		t.Errorf("pulses = %d, samples = %d", pulses, len(s.Samples()))
	}
	if pulses < 3 {
		t.Errorf("pulses = %d", pulses)
	}
}

func TestNewSamplerErrors(t *testing.T) {
	if _, err := NewSampler(0, []*pmu.PMU{pmu.New()}, nil, sim.NewRNG(1)); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := NewSampler(1, nil, nil, sim.NewRNG(1)); err == nil {
		t.Error("no PMUs accepted")
	}
}

func TestPeriod(t *testing.T) {
	s, _ := newSampler(t, 1, nil)
	if s.Period() != 1.0 {
		t.Errorf("Period = %v", s.Period())
	}
}

type fakeUtil struct{ busy []float64 }

func (f *fakeUtil) BusySeconds() []float64 {
	return append([]float64(nil), f.busy...)
}

func TestAttachUtilSource(t *testing.T) {
	util := &fakeUtil{busy: []float64{0, 0}}
	s, _ := newSampler(t, 2, nil)
	s.AttachUtilSource(util)
	clock := sim.NewClock(time.Millisecond, 2.8e9)
	for i := 0; i < 2500; i++ {
		util.busy[0] += 0.0005 // 50% utilization
		util.busy[1] += 0.001  // 100%
		s.Step(clock)
		clock.Tick()
	}
	samples := s.Samples()
	if len(samples) < 2 {
		t.Fatalf("samples = %d", len(samples))
	}
	smp := samples[1]
	if len(smp.OSBusySec) != 2 {
		t.Fatalf("OSBusySec len = %d", len(smp.OSBusySec))
	}
	if r := smp.OSBusySec[0] / smp.IntervalSec; math.Abs(r-0.5) > 0.02 {
		t.Errorf("cpu0 utilization = %v, want ~0.5", r)
	}
	if r := smp.OSBusySec[1] / smp.IntervalSec; math.Abs(r-1.0) > 0.02 {
		t.Errorf("cpu1 utilization = %v, want ~1.0", r)
	}
	// Detaching is allowed.
	s.AttachUtilSource(nil)
}

func TestSamplerWithoutUtilSourceHasNilBusy(t *testing.T) {
	s, _ := newSampler(t, 1, nil)
	clock := sim.NewClock(time.Millisecond, 2.8e9)
	for i := 0; i < 1500; i++ {
		s.Step(clock)
		clock.Tick()
	}
	if len(s.Samples()) == 0 {
		t.Fatal("no samples")
	}
	if s.Samples()[0].OSBusySec != nil {
		t.Error("OSBusySec appeared without a source")
	}
}

// glitchFault zeroes cpu 1's cycle count on every sample — the stuck
// counter slot CheckDataset is meant to catch downstream.
type glitchFault struct{ calls int }

func (g *glitchFault) PerturbCounts(_ float64, cpu int, c *CPUCounts) {
	g.calls++
	if cpu == 1 {
		c.Cycles = 0
	}
}

func TestFaultInjectorCorruptsCounts(t *testing.T) {
	s, pmus := newSampler(t, 2, nil)
	g := &glitchFault{}
	s.SetFaultInjector(g)
	clock := sim.NewClock(time.Millisecond, 2.8e9)
	for i := 0; i < 3000; i++ {
		for _, p := range pmus {
			p.Observe(pmu.EventCycles, 2800000)
		}
		s.Step(clock)
		clock.Tick()
	}
	samples := s.Samples()
	if len(samples) == 0 {
		t.Fatal("no samples fired")
	}
	if g.calls != len(samples)*2 {
		t.Errorf("injector consulted %d times, want %d (per cpu per sample)", g.calls, len(samples)*2)
	}
	for i, smp := range samples {
		if smp.CPUs[0].Cycles == 0 {
			t.Errorf("sample %d cpu0 corrupted, injector should only touch cpu1", i)
		}
		if smp.CPUs[1].Cycles != 0 {
			t.Errorf("sample %d cpu1 cycles = %d, want glitched to 0", i, smp.CPUs[1].Cycles)
		}
	}
}
