package pmu

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestProgramObserveRead(t *testing.T) {
	p := New()
	if err := p.Program(0, EventCycles); err != nil {
		t.Fatal(err)
	}
	p.Observe(EventCycles, 100)
	p.Observe(EventCycles, 23)
	got, err := p.Read(0)
	if err != nil || got != 123 {
		t.Fatalf("Read = %d, %v", got, err)
	}
	got, err = p.ReadEvent(EventCycles)
	if err != nil || got != 123 {
		t.Fatalf("ReadEvent = %d, %v", got, err)
	}
}

func TestUnprogrammedEventDropped(t *testing.T) {
	p := New()
	p.Observe(EventTLBMisses, 50) // no slot: must not panic, must not count
	if _, err := p.ReadEvent(EventTLBMisses); err == nil {
		t.Fatal("ReadEvent of unprogrammed event must fail")
	}
}

func TestProgramErrors(t *testing.T) {
	p := New()
	if err := p.Program(-1, EventCycles); err == nil {
		t.Error("negative slot accepted")
	}
	if err := p.Program(Slots, EventCycles); err == nil {
		t.Error("out-of-range slot accepted")
	}
	if err := p.Program(0, Event(200)); err == nil {
		t.Error("invalid event accepted")
	}
	if err := p.Program(0, EventCycles); err != nil {
		t.Fatal(err)
	}
	if err := p.Program(1, EventCycles); err == nil {
		t.Error("duplicate event in second slot accepted")
	}
	// Reprogramming the same slot with the same event is allowed.
	if err := p.Program(0, EventCycles); err != nil {
		t.Errorf("reprogram same slot: %v", err)
	}
}

func TestReprogramSlotFreesOldEvent(t *testing.T) {
	p := New()
	if err := p.Program(0, EventCycles); err != nil {
		t.Fatal(err)
	}
	if err := p.Program(0, EventFetchedUops); err != nil {
		t.Fatal(err)
	}
	// EventCycles should now be free for another slot.
	if err := p.Program(1, EventCycles); err != nil {
		t.Errorf("event not freed on reprogram: %v", err)
	}
	p.Observe(EventFetchedUops, 7)
	if got, _ := p.Read(0); got != 7 {
		t.Errorf("slot 0 = %d, want 7", got)
	}
}

func TestProgramClearsCount(t *testing.T) {
	p := New()
	if err := p.Program(0, EventCycles); err != nil {
		t.Fatal(err)
	}
	p.Observe(EventCycles, 10)
	if err := p.Program(0, EventCycles); err != nil {
		t.Fatal(err)
	}
	if got, _ := p.Read(0); got != 0 {
		t.Errorf("Program did not clear count: %d", got)
	}
}

func TestClearAndClearAll(t *testing.T) {
	p := New()
	_ = p.Program(0, EventCycles)
	_ = p.Program(1, EventFetchedUops)
	p.Observe(EventCycles, 5)
	p.Observe(EventFetchedUops, 6)
	if err := p.Clear(0); err != nil {
		t.Fatal(err)
	}
	if got, _ := p.Read(0); got != 0 {
		t.Errorf("Clear failed: %d", got)
	}
	if got, _ := p.Read(1); got != 6 {
		t.Errorf("Clear zeroed wrong slot: %d", got)
	}
	p.ClearAll()
	if got, _ := p.Read(1); got != 0 {
		t.Errorf("ClearAll failed: %d", got)
	}
	if err := p.Clear(5); err == nil {
		t.Error("Clear of unprogrammed slot must fail")
	}
	if err := p.Clear(-1); err == nil {
		t.Error("Clear of negative slot must fail")
	}
}

func TestReadErrors(t *testing.T) {
	p := New()
	if _, err := p.Read(0); err == nil {
		t.Error("Read of unprogrammed slot must fail")
	}
	if _, err := p.Read(-1); err == nil {
		t.Error("Read of negative slot must fail")
	}
	if _, err := p.ReadEvent(Event(99)); err == nil {
		t.Error("ReadEvent of invalid event must fail")
	}
}

func TestCounterWraps40Bits(t *testing.T) {
	p := New()
	_ = p.Program(0, EventCycles)
	p.Observe(EventCycles, (1<<40)-1)
	p.Observe(EventCycles, 2)
	got, _ := p.Read(0)
	if got != 1 {
		t.Errorf("40-bit wrap: got %d, want 1", got)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var p PMU
	if err := p.Program(0, EventCycles); err != nil {
		t.Fatal(err)
	}
	p.Observe(EventCycles, 3)
	if got, _ := p.Read(0); got != 3 {
		t.Errorf("zero value PMU Read = %d", got)
	}
	var q PMU
	q.Observe(EventCycles, 1) // must not panic
	var r PMU
	if _, err := r.ReadEvent(EventCycles); err == nil {
		t.Error("zero value ReadEvent of unprogrammed event must fail")
	}
}

func TestEventString(t *testing.T) {
	if EventFetchedUops.String() != "fetched_uops" {
		t.Errorf("String = %q", EventFetchedUops.String())
	}
	if !strings.Contains(Event(77).String(), "77") {
		t.Errorf("invalid event String = %q", Event(77).String())
	}
}

func TestProgrammed(t *testing.T) {
	p := New()
	_ = p.Program(3, EventDMAOther)
	ev, ok := p.Programmed()
	if !ok[3] || ev[3] != EventDMAOther {
		t.Errorf("Programmed = %v %v", ev[3], ok[3])
	}
	if ok[0] {
		t.Error("slot 0 reported programmed")
	}
}

// Property: observed counts accumulate additively for any sequence.
func TestObserveAdditive(t *testing.T) {
	f := func(ns []uint16) bool {
		p := New()
		if err := p.Program(0, EventBusTransactions); err != nil {
			return false
		}
		var want uint64
		for _, n := range ns {
			p.Observe(EventBusTransactions, uint64(n))
			want += uint64(n)
		}
		got, err := p.Read(0)
		return err == nil && got == want&((1<<40)-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
