// Package pmu models the Pentium 4 style performance monitoring unit the
// paper samples: a per-processor file of programmable 40-bit counters,
// each tied to one of the architectural events the trickle-down models
// consume. Software (the perfctr-like driver in internal/perfctr)
// programs a slot with an event, then periodically reads the total and
// clears it, exactly as the paper describes ("the total count of various
// events is recorded and the counters are cleared").
//
// The P4 exposes on the order of forty events through eighteen counters;
// we model the eighteen slots and the subset of events the paper selects,
// plus the events it rejects along the way (uncacheable accesses, DMA
// accesses) so the model-selection experiments can be reproduced.
package pmu

import "fmt"

// Event identifies one countable performance event.
type Event uint8

// The performance events of Section 3.3 of the paper. Interrupt counts
// are not a hardware event on the P4 ("the interrupt vector information
// ... is not available as a performance event"); they are obtained from
// the OS layer (internal/osmodel's /proc/interrupts) instead, so there is
// deliberately no Interrupts event here.
const (
	// EventCycles counts core clock cycles (halted or not).
	EventCycles Event = iota
	// EventHaltedCycles counts cycles in which clock gating was active
	// because the OS executed HLT.
	EventHaltedCycles
	// EventFetchedUops counts micro-operations fetched, including
	// wrong-path work ("looking only at retired uops would neglect work
	// done in execution of incorrect branch paths").
	EventFetchedUops
	// EventL3LoadMisses counts loads that missed the L3 cache.
	EventL3LoadMisses
	// EventL3Misses counts all L3 misses including write/evict traffic.
	EventL3Misses
	// EventTLBMisses counts ITLB+DTLB misses.
	EventTLBMisses
	// EventBusTransactions counts all front-side-bus transactions
	// initiated by this processor, including hardware prefetches.
	EventBusTransactions
	// EventBusTransactionsPrefetch counts the subset of this processor's
	// bus transactions initiated by the hardware prefetcher.
	EventBusTransactionsPrefetch
	// EventDMAOther counts bus transactions that did not originate in
	// this processor. The P4 cannot distinguish DMA from other-processor
	// coherency traffic; both land here ("All memory bus accesses that do
	// not originate within a processor are combined into a single
	// metric").
	EventDMAOther
	// EventUncacheableAccesses counts loads/stores to uncacheable
	// (memory-mapped I/O) address ranges.
	EventUncacheableAccesses
	numEvents
)

// NumEvents is the number of defined events.
const NumEvents = int(numEvents)

// Slots is the number of programmable counters per processor, matching
// the Pentium 4's 18 counters.
const Slots = 18

// counterMask implements the P4's 40-bit counter width; counts wrap at
// 2^40 like the hardware.
const counterMask = (uint64(1) << 40) - 1

var eventNames = [...]string{
	EventCycles:                  "cycles",
	EventHaltedCycles:            "halted_cycles",
	EventFetchedUops:             "fetched_uops",
	EventL3LoadMisses:            "l3_load_misses",
	EventL3Misses:                "l3_misses",
	EventTLBMisses:               "tlb_misses",
	EventBusTransactions:         "bus_transactions",
	EventBusTransactionsPrefetch: "bus_transactions_prefetch",
	EventDMAOther:                "dma_other",
	EventUncacheableAccesses:     "uncacheable_accesses",
}

// String returns the event's mnemonic.
func (e Event) String() string {
	if int(e) < len(eventNames) {
		return eventNames[e]
	}
	return fmt.Sprintf("event(%d)", uint8(e))
}

// Valid reports whether e names a defined event.
func (e Event) Valid() bool { return e < numEvents }

// PMU is one processor's counter file. The zero value has no slots
// programmed.
type PMU struct {
	programmed [Slots]bool
	event      [Slots]Event
	count      [Slots]uint64
	// byEvent maps an event to the slot counting it, or -1.
	byEvent [numEvents]int8
	init    bool
}

// New returns a PMU with no slots programmed.
func New() *PMU {
	p := &PMU{}
	p.resetMap()
	return p
}

func (p *PMU) resetMap() {
	for i := range p.byEvent {
		p.byEvent[i] = -1
	}
	p.init = true
}

// Program configures slot to count event, clearing the slot's count. It
// returns an error for an invalid slot or event, or if the event is
// already being counted in another slot.
func (p *PMU) Program(slot int, e Event) error {
	if !p.init {
		p.resetMap()
	}
	if slot < 0 || slot >= Slots {
		return fmt.Errorf("pmu: slot %d out of range [0,%d)", slot, Slots)
	}
	if !e.Valid() {
		return fmt.Errorf("pmu: invalid event %d", uint8(e))
	}
	if cur := p.byEvent[e]; cur >= 0 && int(cur) != slot {
		return fmt.Errorf("pmu: event %v already programmed in slot %d", e, cur)
	}
	if p.programmed[slot] {
		p.byEvent[p.event[slot]] = -1
	}
	p.programmed[slot] = true
	p.event[slot] = e
	p.count[slot] = 0
	p.byEvent[e] = int8(slot)
	return nil
}

// Observe adds n occurrences of event e. Hardware models call this every
// slice; events with no programmed slot are silently dropped, like real
// hardware.
func (p *PMU) Observe(e Event, n uint64) {
	if !p.init {
		p.resetMap()
	}
	if !e.Valid() {
		return
	}
	slot := p.byEvent[e]
	if slot < 0 {
		return
	}
	p.count[slot] = (p.count[slot] + n) & counterMask
}

// Read returns the current count in slot.
func (p *PMU) Read(slot int) (uint64, error) {
	if slot < 0 || slot >= Slots {
		return 0, fmt.Errorf("pmu: slot %d out of range [0,%d)", slot, Slots)
	}
	if !p.programmed[slot] {
		return 0, fmt.Errorf("pmu: slot %d not programmed", slot)
	}
	return p.count[slot], nil
}

// ReadEvent returns the current count for event e, if programmed.
func (p *PMU) ReadEvent(e Event) (uint64, error) {
	if !p.init {
		p.resetMap()
	}
	if !e.Valid() {
		return 0, fmt.Errorf("pmu: invalid event %d", uint8(e))
	}
	slot := p.byEvent[e]
	if slot < 0 {
		return 0, fmt.Errorf("pmu: event %v not programmed", e)
	}
	return p.count[slot], nil
}

// Clear zeroes the count in slot, keeping it programmed.
func (p *PMU) Clear(slot int) error {
	if slot < 0 || slot >= Slots {
		return fmt.Errorf("pmu: slot %d out of range [0,%d)", slot, Slots)
	}
	if !p.programmed[slot] {
		return fmt.Errorf("pmu: slot %d not programmed", slot)
	}
	p.count[slot] = 0
	return nil
}

// ClearAll zeroes every programmed slot (the per-sample clear of the
// paper's methodology).
func (p *PMU) ClearAll() {
	for i := range p.count {
		p.count[i] = 0
	}
}

// Programmed returns the events currently assigned, indexed by slot; the
// boolean parallel slice reports which slots are active.
func (p *PMU) Programmed() ([Slots]Event, [Slots]bool) {
	return p.event, p.programmed
}
