package core

import (
	"fmt"
	"math"

	"trickledown/internal/align"
	"trickledown/internal/power"
	"trickledown/internal/stats"
)

// Training-data sanity checks. The paper's pipeline spans two machines
// and a hand-wired sense-resistor harness; a dead channel or an
// unprogrammed counter produces a dataset that still trains — into a
// confidently wrong model. CheckDataset catches the failure modes an
// operator actually hits before any coefficients are fit.

// DataIssue describes one problem found in a dataset.
type DataIssue struct {
	// Subject names the rail or counter, e.g. "power/Memory" or
	// "counter/cpu2.cycles" — callers routing an issue to a fix (re-merge
	// this rail, re-program that counter) dispatch on it.
	Subject string
	// Problem describes what is wrong.
	Problem string
	// Row is the first offending sample index, or -1 when the issue is a
	// whole-trace property (a silent counter, a dead rail).
	Row int
}

func (i DataIssue) String() string {
	if i.Row >= 0 {
		return fmt.Sprintf("%s: %s (first at row %d)", i.Subject, i.Problem, i.Row)
	}
	return i.Subject + ": " + i.Problem
}

// CheckDataset inspects an aligned dataset for dead power rails,
// implausible readings, silent counters and broken timebases. It returns
// the issues found (empty means the data looks trainable).
func CheckDataset(ds *align.Dataset) []DataIssue {
	var issues []DataIssue
	if ds == nil || ds.Len() == 0 {
		return []DataIssue{{Subject: "dataset", Problem: "no samples", Row: -1}}
	}
	// Rails: finite readings first (a NaN window poisons every summary
	// statistic), then neither zero nor flat-at-zero. Each issue names
	// the rail and the first offending row, so a caller looking at
	// "power/Memory ... first at row 41" knows which sense channel — and
	// which stretch of the trace — to go look at.
	for _, sub := range power.Subsystems() {
		col := ds.PowerColumn(sub)
		nonFinite, firstBad := 0, -1
		for i, v := range col {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				if nonFinite == 0 {
					firstBad = i
				}
				nonFinite++
			}
		}
		if nonFinite > 0 {
			issues = append(issues, DataIssue{
				Subject: "power/" + sub.String(),
				Problem: fmt.Sprintf("%d non-finite readings (sensor dropout? run the robust merge)", nonFinite),
				Row:     firstBad,
			})
			continue
		}
		s, err := stats.Summarize(col)
		if err != nil {
			continue
		}
		switch {
		case s.Max <= 0:
			issues = append(issues, DataIssue{
				Subject: "power/" + sub.String(),
				Problem: "rail reads zero for the whole trace (dead sense channel?)",
				Row:     -1,
			})
		case s.Min < 0:
			first := -1
			for i, v := range col {
				if v < 0 {
					first = i
					break
				}
			}
			issues = append(issues, DataIssue{
				Subject: "power/" + sub.String(),
				Problem: fmt.Sprintf("negative reading %.2f W (wiring polarity?)", s.Min),
				Row:     first,
			})
		case s.Mean < 1:
			issues = append(issues, DataIssue{
				Subject: "power/" + sub.String(),
				Problem: fmt.Sprintf("mean %.2f W implausibly low for a powered subsystem", s.Mean),
				Row:     -1,
			})
		}
	}
	// Counters: cycles must advance on every sample; core events must
	// not be silent across the whole trace.
	var anyUops, anyBus uint64
	for i := range ds.Rows {
		s := &ds.Rows[i].Counters
		if s.IntervalSec <= 0 && i > 0 {
			issues = append(issues, DataIssue{
				Subject: "timebase",
				Problem: fmt.Sprintf("sample %d has non-positive interval", i),
				Row:     i,
			})
			break
		}
		for c := range s.CPUs {
			if s.CPUs[c].Cycles == 0 {
				issues = append(issues, DataIssue{
					Subject: fmt.Sprintf("counter/cpu%d.cycles", c),
					Problem: fmt.Sprintf("zero at sample %d (counter not programmed?)", i),
					Row:     i,
				})
				i = ds.Len() // stop scanning
				break
			}
			anyUops += s.CPUs[c].FetchedUops
			anyBus += s.CPUs[c].BusTx
		}
	}
	if anyUops == 0 {
		issues = append(issues, DataIssue{
			Subject: "counter/fetched_uops",
			Problem: "silent for the whole trace",
			Row:     -1,
		})
	}
	if anyBus == 0 {
		issues = append(issues, DataIssue{
			Subject: "counter/bus_transactions",
			Problem: "silent for the whole trace",
			Row:     -1,
		})
	}
	// Interrupts: a live system always takes timer ticks.
	var anyInts uint64
	for i := range ds.Rows {
		anyInts += ds.Rows[i].Counters.IntsTotal()
	}
	if anyInts == 0 {
		issues = append(issues, DataIssue{
			Subject: "interrupts",
			Problem: "no interrupts recorded (is /proc/interrupts sampling wired?)",
			Row:     -1,
		})
	}
	return issues
}
