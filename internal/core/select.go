package core

import (
	"fmt"
	"sort"

	"trickledown/internal/align"
)

// Model selection, mechanizing the paper's Section 3.3.1 procedure:
// "though the initial selection of performance events for modeling is
// dictated by an understanding of subsystem interactions, the final
// selection of which event type(s) to use is determined by the average
// error rate" — candidates are trained on one trace and ranked by
// Equation 6 error on held-out traces, exactly how the paper discarded
// the L3-miss memory model and the DMA/uncacheable disk inputs.

// Candidate reports one spec's cross-validation outcome.
type Candidate struct {
	// Model is the fitted candidate (nil if training failed).
	Model *Model
	// Err is the mean Equation 6 error across the holdout traces.
	Err float64
	// TrainErr is the error on the training trace itself.
	TrainErr float64
	// Failure records why the candidate was dropped, if it was.
	Failure error
}

func (c Candidate) String() string {
	if c.Failure != nil {
		return fmt.Sprintf("FAILED (%v)", c.Failure)
	}
	return fmt.Sprintf("%s: holdout %.2f%% (train %.2f%%)", c.Model.Spec.Name, c.Err, c.TrainErr)
}

// SelectModel trains every candidate spec on train, scores each on the
// holdout traces, and returns the lowest-error survivor plus the full
// ranking (best first; failures last). All specs must target the same
// subsystem. It fails if no candidate survives.
func SelectModel(specs []ModelSpec, train *align.Dataset, holdouts ...*align.Dataset) (*Model, []Candidate, error) {
	if len(specs) == 0 {
		return nil, nil, fmt.Errorf("core: no candidate specs")
	}
	if len(holdouts) == 0 {
		return nil, nil, fmt.Errorf("core: no holdout traces")
	}
	sub := specs[0].Sub
	for _, spec := range specs[1:] {
		if spec.Sub != sub {
			return nil, nil, fmt.Errorf("core: candidates target %s and %s", sub, spec.Sub)
		}
	}
	candidates := make([]Candidate, 0, len(specs))
	for _, spec := range specs {
		c := Candidate{}
		m, err := Train(spec, train)
		if err != nil {
			c.Failure = err
			candidates = append(candidates, c)
			continue
		}
		c.Model = m
		if c.TrainErr, err = m.Validate(train); err != nil {
			c.Failure = err
			c.Model = nil
			candidates = append(candidates, c)
			continue
		}
		var sum float64
		n := 0
		for _, h := range holdouts {
			e, err := m.Validate(h)
			if err != nil {
				c.Failure = err
				break
			}
			sum += e
			n++
		}
		if c.Failure != nil {
			c.Model = nil
			candidates = append(candidates, c)
			continue
		}
		c.Err = sum / float64(n)
		candidates = append(candidates, c)
	}
	sort.SliceStable(candidates, func(i, j int) bool {
		if (candidates[i].Failure == nil) != (candidates[j].Failure == nil) {
			return candidates[i].Failure == nil
		}
		return candidates[i].Err < candidates[j].Err
	})
	if candidates[0].Failure != nil {
		return nil, candidates, fmt.Errorf("core: every candidate failed; first: %w", candidates[0].Failure)
	}
	return candidates[0].Model, candidates, nil
}

// MemoryCandidates returns the paper's memory model candidates in the
// order it considered them.
func MemoryCandidates() []ModelSpec {
	return []ModelSpec{MemL3Spec(), MemBusSpec(), MemBusRWSpec()}
}

// DiskCandidates returns the paper's disk model candidates.
func DiskCandidates() []ModelSpec {
	return []ModelSpec{DiskDMASpec(), DiskUncacheableSpec(), DiskSpec()}
}

// IOCandidates returns the paper's I/O model candidates.
func IOCandidates() []ModelSpec {
	return []ModelSpec{IODMASpec(), IOUncacheableSpec(), IOSpec()}
}
