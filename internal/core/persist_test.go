package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"trickledown/internal/perfctr"
	"trickledown/internal/power"
)

func trainedEstimator(t *testing.T) *Estimator {
	t.Helper()
	ds := synthDataset(60, func(i int, s *perfctr.Sample) power.Reading {
		m := ExtractMetrics(s)
		var r power.Reading
		r[power.SubCPU] = 9*float64(m.NumCPUs) + 25*sum(m.PercentActive) + 4*sum(m.UopsPerCycle)
		r[power.SubChipset] = 19.9
		r[power.SubMemory] = 28 + 0.001*m.TotalBusPMC()
		r[power.SubIO] = 32.7 + sum(m.IntsPMC)
		r[power.SubDisk] = 21.6 + sum(m.DiskIntsPMC)
		return r
	})
	est, err := TrainEstimator(TrainingSet{CPU: ds, Memory: ds, Disk: ds, IO: ds, Chipset: ds})
	if err != nil {
		t.Fatal(err)
	}
	return est
}

func TestSaveLoadRoundTrip(t *testing.T) {
	est := trainedEstimator(t)
	var buf bytes.Buffer
	if err := est.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEstimator(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := mkSample(0.7, 1.4, 150, 800, 60, 1.2)
	a := est.Estimate(&s)
	b := loaded.Estimate(&s)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Errorf("subsystem %d: %v != %v after round trip", i, a[i], b[i])
		}
	}
	// Training diagnostics survive.
	if loaded.Model(power.SubCPU).Fit == nil {
		t.Error("fit diagnostics lost")
	}
}

func TestSaveLoadProvenance(t *testing.T) {
	est := trainedEstimator(t)
	est.SetProvenance(&Provenance{
		SchemaVersion: ProvenanceSchemaVersion,
		Version:       "train-deadbeef00000000",
		TrainedAt:     "2026-08-08T00:00:00Z",
		Fingerprint:   "deadbeef00000000",
		Envelopes:     []MetricEnvelope{{Name: "percent_active", Mean: 1.2, Std: 0.3}},
		Reason:        "offline-train",
	})
	var buf bytes.Buffer
	if err := est.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"trickledown-models/2"`) {
		t.Error("Save did not emit the v2 format header")
	}
	loaded, err := LoadEstimator(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	p := loaded.Provenance()
	if p == nil {
		t.Fatal("provenance lost in round trip")
	}
	if p.Version != "train-deadbeef00000000" || p.Fingerprint != "deadbeef00000000" ||
		p.Reason != "offline-train" || len(p.Envelopes) != 1 || p.Envelopes[0].Std != 0.3 {
		t.Errorf("provenance mangled: %+v", p)
	}
	if !strings.Contains(p.String(), "train-deadbeef00000000") {
		t.Errorf("String() = %q", p.String())
	}

	// A v1 file (no provenance block) still loads, with nil provenance.
	var plain bytes.Buffer
	if err := trainedEstimator(t).Save(&plain); err != nil {
		t.Fatal(err)
	}
	v1 := strings.Replace(plain.String(), "trickledown-models/2", "trickledown-models/1", 1)
	legacy, err := LoadEstimator(strings.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 load: %v", err)
	}
	if legacy.Provenance() != nil {
		t.Error("v1 file grew provenance from nowhere")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":     "pfff",
		"wrong format": `{"format":"other/9","models":[]}`,
		"unknown spec": `{"format":"trickledown-models/1","models":[{"spec":"nope","coef":[1]}]}`,
		"bad width":    `{"format":"trickledown-models/1","models":[{"spec":"cpu (Eq.1)","coef":[1]}]}`,
		"incomplete":   `{"format":"trickledown-models/1","models":[]}`,
	}
	for name, in := range cases {
		if _, err := LoadEstimator(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSpecRegistry(t *testing.T) {
	names := SpecNames()
	if len(names) < 11 {
		t.Fatalf("registry has %d specs", len(names))
	}
	for _, n := range names {
		spec, err := SpecByName(n)
		if err != nil {
			t.Errorf("SpecByName(%q): %v", n, err)
			continue
		}
		if spec.Name != n {
			t.Errorf("spec %q reports name %q", n, spec.Name)
		}
		if w := designWidth(spec); w != len(spec.Terms) {
			t.Errorf("%s: width %d != %d terms", n, w, len(spec.Terms))
		}
	}
	if _, err := SpecByName("bogus"); err == nil {
		t.Error("unknown spec accepted")
	}
}

func TestWritebackShare(t *testing.T) {
	m := &Metrics{
		BusTxPMC:  []float64{1000},
		L3AllPMC:  []float64{700},
		L3LoadPMC: []float64{400},
	}
	if got := m.WritebackShare(); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("WritebackShare = %v, want 0.3", got)
	}
	// Clamps.
	if got := (&Metrics{}).WritebackShare(); got != 0 {
		t.Errorf("empty share = %v", got)
	}
	m.L3AllPMC[0] = 100 // less than loads: clamp at 0
	if got := m.WritebackShare(); got != 0 {
		t.Errorf("negative wb share = %v", got)
	}
	m.L3AllPMC[0] = 5000
	m.L3LoadPMC[0] = 0
	if got := m.WritebackShare(); got != 1 {
		t.Errorf("overrange wb share = %v", got)
	}
}
