package core

import (
	"trickledown/internal/align"
	"trickledown/internal/stats"
)

// Per-fold evaluation hooks for the validation subsystem: Validate gives
// the paper's single Equation 6 number, but a held-out conformance gate
// needs the full picture — worst-case error, an R² that is allowed to go
// negative on unseen data, and the residual distribution in Watts.

// Eval summarizes a model's performance on one (typically held-out)
// dataset.
type Eval struct {
	// AvgErrPct is the paper's Equation 6 average relative error, percent.
	AvgErrPct float64
	// WorstErrPct is the largest single-sample relative error, percent.
	WorstErrPct float64
	// R2 is the held-out coefficient of determination; negative means the
	// model predicts worse than the measured mean, 0 means it was
	// undefined (zero measured variance).
	R2 float64
	// Resid summarizes the residuals (modeled − measured) in Watts.
	Resid stats.Summary
	// N is the number of samples evaluated.
	N int
}

// Residuals returns modeled − measured over a dataset, in Watts.
func (m *Model) Residuals(ds *align.Dataset) ([]float64, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, ErrNoData
	}
	measured, modeled := m.Trace(ds)
	out := make([]float64, len(measured))
	for i := range out {
		out[i] = modeled[i] - measured[i]
	}
	return out, nil
}

// Evaluate computes the full held-out evaluation of the model on a
// dataset.
func (m *Model) Evaluate(ds *align.Dataset) (Eval, error) {
	if ds == nil || ds.Len() == 0 {
		return Eval{}, ErrNoData
	}
	measured, modeled := m.Trace(ds)
	avg, err := stats.AverageError(modeled, measured)
	if err != nil {
		return Eval{}, err
	}
	worst, err := stats.WorstError(modeled, measured)
	if err != nil {
		return Eval{}, err
	}
	r2, err := stats.R2(modeled, measured)
	if err != nil {
		r2 = 0 // zero measured variance: R² undefined
	}
	resid := make([]float64, len(measured))
	for i := range resid {
		resid[i] = modeled[i] - measured[i]
	}
	sum, err := stats.Summarize(resid)
	if err != nil {
		return Eval{}, err
	}
	return Eval{
		AvgErrPct:   avg,
		WorstErrPct: worst,
		R2:          r2,
		Resid:       sum,
		N:           len(measured),
	}, nil
}
