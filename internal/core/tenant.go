package core

import (
	"fmt"
	"math"

	"trickledown/internal/power"
	"trickledown/internal/workload"
)

// TenantActivity is one tenant's share-determining activity: for each
// subsystem, the integral of the driving metric the paper's model for
// that subsystem consumes (fetched uops for CPU, bus transactions for
// memory, interrupt-weighted traffic for I/O and disk). The absolute
// scale cancels in the division — only ratios between co-tenants
// matter.
type TenantActivity struct {
	// Name labels the tenant in reports.
	Name string
	// Driving holds the per-subsystem driving-metric integrals.
	Driving [power.NumSubsystems]float64
}

// TenantActivityFromUsage maps a cohort tenant's accumulated usage onto
// the five subsystem drivers, mirroring how Train pairs each subsystem
// model with its metric (Eq. 2-7):
//
//	CPU     — unhalted time plus fetched uops (the Eq. 1/2 inputs)
//	chipset — modeled as a constant, so no tenant drives its dynamic
//	          part; the zero driver falls back to an even split
//	memory  — miss + writeback bus transactions (Eq. 4/5)
//	I/O     — DMA/interrupt traffic: disk plus network bytes (Eq. 3)
//	disk    — disk bytes (Eq. 7)
func TenantActivityFromUsage(u workload.TenantUsage) TenantActivity {
	var d [power.NumSubsystems]float64
	d[power.SubCPU] = u.ActiveSum + u.UopSum
	d[power.SubMemory] = u.BusSum
	d[power.SubIO] = u.DiskBytes + u.NetBytes
	d[power.SubDisk] = u.DiskBytes
	return TenantActivity{Name: u.Name, Driving: d}
}

// AttributeTenants splits a node's estimated power reading across
// tenants, subsystem by subsystem: the idle floor divides evenly (it
// burns whether anyone runs or not), and the dynamic part —
// total − idle, clamped at zero — divides proportionally to each
// tenant's share of that subsystem's driving metric, exactly as the
// paper's trickle-down decomposition assigns rail power to the
// subsystem whose events explain it. A subsystem nobody drives splits
// its dynamic part evenly. Rounding residue is reconciled onto tenant
// 0 so the attributed readings sum to the node reading exactly.
func AttributeTenants(total, idle power.Reading, tenants []TenantActivity) ([]power.Reading, error) {
	n := len(tenants)
	if n == 0 {
		return nil, fmt.Errorf("core: attribute: zero tenants")
	}
	for s := 0; s < power.NumSubsystems; s++ {
		if math.IsNaN(total[s]) || math.IsInf(total[s], 0) {
			return nil, fmt.Errorf("core: attribute: total[%s] is %v", power.Subsystem(s), total[s])
		}
		if math.IsNaN(idle[s]) || math.IsInf(idle[s], 0) {
			return nil, fmt.Errorf("core: attribute: idle[%s] is %v", power.Subsystem(s), idle[s])
		}
	}
	for _, tn := range tenants {
		for s, w := range tn.Driving {
			if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return nil, fmt.Errorf("core: attribute: tenant %q driving[%s] is %v", tn.Name, power.Subsystem(s), w)
			}
		}
	}
	out := make([]power.Reading, n)
	for s := 0; s < power.NumSubsystems; s++ {
		dyn := total[s] - idle[s]
		if dyn < 0 {
			dyn = 0
		}
		floor := total[s] - dyn
		var denom float64
		for _, tn := range tenants {
			denom += tn.Driving[s]
		}
		var sum float64
		for i := range tenants {
			share := 1 / float64(n)
			if denom > 0 {
				share = tenants[i].Driving[s] / denom
			}
			out[i][s] = floor/float64(n) + dyn*share
			sum += out[i][s]
		}
		// Reconcile float rounding so the node total is exact.
		if diff := total[s] - sum; diff != 0 {
			out[0][s] += diff
		}
	}
	return out, nil
}

// CheckAttribution runs the metamorphic battery over one attribution
// instance and returns the first violation:
//
//  1. conservation — the attributed readings sum to the node reading
//     within 1e-9 (relative to the reading's scale), per subsystem;
//  2. monotonicity — scaling one tenant's driving metrics up by 1.5×
//     never decreases that tenant's attributed total;
//  3. identity — a single-tenant attribution returns the node reading
//     itself.
func CheckAttribution(total, idle power.Reading, tenants []TenantActivity) error {
	base, err := AttributeTenants(total, idle, tenants)
	if err != nil {
		return err
	}
	// 1: conservation.
	for s := 0; s < power.NumSubsystems; s++ {
		var sum float64
		for i := range base {
			sum += base[i][s]
		}
		tol := 1e-9 * math.Max(1, math.Abs(total[s]))
		if math.Abs(sum-total[s]) > tol {
			return fmt.Errorf("core: attribution of %s sums to %.12f, node reads %.12f", power.Subsystem(s), sum, total[s])
		}
	}
	// 2: monotonicity in own demand.
	for i := range tenants {
		scaled := make([]TenantActivity, len(tenants))
		copy(scaled, tenants)
		bumped := scaled[i]
		for s := range bumped.Driving {
			bumped.Driving[s] *= 1.5
		}
		scaled[i] = bumped
		up, err := AttributeTenants(total, idle, scaled)
		if err != nil {
			return err
		}
		if up[i].Total() < base[i].Total()-1e-9 {
			return fmt.Errorf("core: tenant %q attribution fell from %.12f to %.12f when its demand grew",
				tenants[i].Name, base[i].Total(), up[i].Total())
		}
	}
	// 3: single-tenant identity.
	solo, err := AttributeTenants(total, idle, tenants[:1])
	if err != nil {
		return err
	}
	for s := 0; s < power.NumSubsystems; s++ {
		if math.Abs(solo[0][s]-total[s]) > 1e-9*math.Max(1, math.Abs(total[s])) {
			return fmt.Errorf("core: single-tenant attribution of %s is %.12f, node reads %.12f",
				power.Subsystem(s), solo[0][s], total[s])
		}
	}
	return nil
}
