package core

import (
	"math"
	"testing"
)

func TestPerThreadPowerSplitsByBusyShare(t *testing.T) {
	est := trainedEstimator(t)
	s := mkSample(0.8, 1.5, 150, 800, 60, 1.2)
	// Two CPUs x two threads: cpu0 split 3:1, cpu1 all on thread 0.
	s.OSThreadBusySec = []float64{0.6, 0.2, 0.8, 0}
	per := est.PerThreadPower(&s, 2)
	if len(per) != 4 {
		t.Fatalf("per-thread len = %d", len(per))
	}
	perCPU := est.PerCPUPower(&s)
	if got := per[0] + per[1]; math.Abs(got-perCPU[0]) > 1e-9 {
		t.Errorf("cpu0 threads sum %v != per-CPU %v", got, perCPU[0])
	}
	if got := per[2] + per[3]; math.Abs(got-perCPU[1]) > 1e-9 {
		t.Errorf("cpu1 threads sum %v != per-CPU %v", got, perCPU[1])
	}
	// Busy shares order the split; the idle thread still owes part of
	// the infrastructure floor.
	if per[0] <= per[1] {
		t.Errorf("thread0 (%v) should exceed thread1 (%v)", per[0], per[1])
	}
	floor := est.Model(0).Coef[0]
	if per[3] <= 0 || per[3] > floor {
		t.Errorf("idle thread charge = %v, want (0, %v]", per[3], floor)
	}
}

func TestPerThreadPowerEqualSplitWhenAllIdle(t *testing.T) {
	est := trainedEstimator(t)
	s := mkSample(0.01, 0.1, 5, 20, 0, 0.1)
	s.OSThreadBusySec = []float64{0, 0, 0, 0}
	per := est.PerThreadPower(&s, 2)
	if per == nil {
		t.Fatal("nil attribution")
	}
	if math.Abs(per[0]-per[1]) > 1e-9 {
		t.Errorf("idle split uneven: %v vs %v", per[0], per[1])
	}
}

func TestPerThreadPowerRequiresAccounting(t *testing.T) {
	est := trainedEstimator(t)
	s := mkSample(0.5, 1, 100, 500, 10, 1)
	if est.PerThreadPower(&s, 2) != nil {
		t.Error("attribution without OS thread accounting")
	}
	s.OSThreadBusySec = []float64{0.5} // too short
	if est.PerThreadPower(&s, 2) != nil {
		t.Error("attribution with short accounting")
	}
	s.OSThreadBusySec = []float64{0.5, 0.5, 0.5, 0.5}
	if est.PerThreadPower(&s, 0) != nil {
		t.Error("attribution with zero threadsPerCPU")
	}
	s.IntervalSec = 0
	if est.PerThreadPower(&s, 2) != nil {
		t.Error("attribution with zero interval")
	}
}
