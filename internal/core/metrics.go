// Package core implements the paper's contribution: trickle-down power
// models that estimate the power of five server subsystems — CPU,
// chipset, memory, I/O and disk — from performance events observable at
// the microprocessor alone.
//
// The flow mirrors the paper's methodology end to end:
//
//  1. ExtractMetrics normalizes raw 1 Hz counter samples into per-cycle
//     rates ("the cycles metric is combined with most other metrics to
//     create per cycle metrics; this corrects for slight differences in
//     sampling rate").
//  2. A ModelSpec picks the event inputs and functional form for one
//     subsystem (linear for CPU, single- or multi-input quadratics for
//     the rest, constant for chipset).
//  3. Train fits the coefficients by least squares against measured rail
//     power from one high-variation training workload.
//  4. Validate computes the paper's Equation 6 average error on any
//     workload, and Estimator bundles the five fitted models into a
//     sensorless whole-system power meter.
package core

import (
	"trickledown/internal/iobus"
	"trickledown/internal/perfctr"
	"trickledown/internal/sim"
)

// Metrics are the per-cycle normalized model inputs derived from one
// counter sample. Slices are indexed by processor.
type Metrics struct {
	// NumCPUs is the processor count.
	NumCPUs int
	// PercentActive is 1 - HaltedCycles/Cycles: the unhalted fraction
	// Equation 1 scales the clock-gating recovery by.
	PercentActive []float64
	// UopsPerCycle is fetched uops per cycle.
	UopsPerCycle []float64
	// L3LoadPMC is L3 load misses per million cycles.
	L3LoadPMC []float64
	// L3AllPMC is all L3 miss traffic (loads, stores, writebacks) per
	// million cycles; the gap between it and L3LoadPMC is the
	// CPU-visible write/writeback proxy the extended memory model uses.
	L3AllPMC []float64
	// BusTxPMC is this processor's own bus transactions (demand +
	// prefetch) per million cycles.
	BusTxPMC []float64
	// PrefetchPMC is the prefetch subset of BusTxPMC.
	PrefetchPMC []float64
	// DMAPMC is non-self (DMA/other) bus transactions per million cycles
	// as counted at each processor.
	DMAPMC []float64
	// UncacheablePMC is uncacheable accesses per million cycles.
	UncacheablePMC []float64
	// TLBPMC is TLB misses per million cycles.
	TLBPMC []float64
	// IntsPMC is all interrupts serviced by each CPU per million cycles
	// (from the OS's /proc/interrupts, not the PMU).
	IntsPMC []float64
	// DiskIntsPMC is the disk-controller-vector subset of IntsPMC.
	DiskIntsPMC []float64
	// OSUtil is each processor's OS-reported utilization over the
	// interval (busy seconds / wall seconds), when available.
	OSUtil []float64
	// FreqScale is each processor's observed DVFS operating point,
	// inferred from cycles elapsed per wall-clock interval — no extra
	// event needed, the cycles counter already reveals the clock.
	FreqScale []float64
}

// ExtractMetrics normalizes a counter sample, assuming the default
// nominal clock for frequency inference.
func ExtractMetrics(s *perfctr.Sample) *Metrics {
	return ExtractMetricsAt(s, sim.DefaultCoreHz)
}

// ExtractMetricsAt normalizes a counter sample for a machine with the
// given nominal core clock. Processors that report zero cycles (which
// cannot happen on real hardware but may in truncated logs) yield zero
// rates.
func ExtractMetricsAt(s *perfctr.Sample, nominalHz float64) *Metrics {
	m := &Metrics{}
	ExtractMetricsAtInto(m, s, nominalHz)
	return m
}

// resizeZeroed returns v with length n and every element zero, reusing
// v's backing array when it is large enough.
func resizeZeroed(v []float64, n int) []float64 {
	if cap(v) < n {
		return make([]float64, n)
	}
	v = v[:n]
	for i := range v {
		v[i] = 0
	}
	return v
}

// ExtractMetricsAtInto is ExtractMetricsAt writing into a caller-owned
// Metrics, reusing its slices. It exists for the online estimation hot
// path (internal/serve processes 100k+ samples/sec), where the fourteen
// per-sample slice allocations of the value-returning form dominate the
// profile; a worker keeps one scratch Metrics and extracts every sample
// into it.
func ExtractMetricsAtInto(m *Metrics, s *perfctr.Sample, nominalHz float64) {
	n := len(s.CPUs)
	m.NumCPUs = n
	m.PercentActive = resizeZeroed(m.PercentActive, n)
	m.UopsPerCycle = resizeZeroed(m.UopsPerCycle, n)
	m.L3LoadPMC = resizeZeroed(m.L3LoadPMC, n)
	m.L3AllPMC = resizeZeroed(m.L3AllPMC, n)
	m.BusTxPMC = resizeZeroed(m.BusTxPMC, n)
	m.PrefetchPMC = resizeZeroed(m.PrefetchPMC, n)
	m.DMAPMC = resizeZeroed(m.DMAPMC, n)
	m.UncacheablePMC = resizeZeroed(m.UncacheablePMC, n)
	m.TLBPMC = resizeZeroed(m.TLBPMC, n)
	m.IntsPMC = resizeZeroed(m.IntsPMC, n)
	m.DiskIntsPMC = resizeZeroed(m.DiskIntsPMC, n)
	m.FreqScale = resizeZeroed(m.FreqScale, n)
	m.OSUtil = resizeZeroed(m.OSUtil, n)
	if s.IntervalSec > 0 {
		for i := range m.OSUtil {
			if i < len(s.OSBusySec) {
				u := s.OSBusySec[i] / s.IntervalSec
				if u < 0 {
					u = 0
				}
				if u > 1 {
					u = 1
				}
				m.OSUtil[i] = u
			}
		}
	}
	for i, c := range s.CPUs {
		cyc := float64(c.Cycles)
		if cyc <= 0 {
			continue
		}
		mcyc := cyc / 1e6
		m.FreqScale[i] = 1
		if s.IntervalSec > 0 && nominalHz > 0 {
			f := cyc / (s.IntervalSec * nominalHz)
			// Sampling jitter wobbles the estimate slightly; clamp to
			// the hardware's actual operating range.
			if f < 0.1 {
				f = 0.1
			}
			if f > 1 {
				f = 1
			}
			m.FreqScale[i] = f
		}
		m.PercentActive[i] = 1 - float64(c.HaltedCycles)/cyc
		if m.PercentActive[i] < 0 {
			m.PercentActive[i] = 0
		}
		m.UopsPerCycle[i] = float64(c.FetchedUops) / cyc
		m.L3LoadPMC[i] = float64(c.L3LoadMisses) / mcyc
		m.L3AllPMC[i] = float64(c.L3Misses) / mcyc
		m.BusTxPMC[i] = float64(c.BusTx) / mcyc
		m.PrefetchPMC[i] = float64(c.BusPrefetchTx) / mcyc
		m.DMAPMC[i] = float64(c.DMAOther) / mcyc
		m.UncacheablePMC[i] = float64(c.Uncacheable) / mcyc
		m.TLBPMC[i] = float64(c.TLBMisses) / mcyc
		m.IntsPMC[i] = float64(s.IntsForCPU(i)) / mcyc
		if int(iobus.VecDisk) < len(s.Ints) && i < len(s.Ints[iobus.VecDisk]) {
			m.DiskIntsPMC[i] = float64(s.Ints[iobus.VecDisk][i]) / mcyc
		}
	}
}

// sum adds a per-CPU metric across processors.
func sum(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// mean averages a per-CPU metric across processors.
func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return sum(v) / float64(len(v))
}

// TotalBusPMC returns the paper's "all transactions that enter/exit the
// processor" aggregate: every processor's own transactions plus the
// DMA/other stream counted once. (The P4 counts the same DMA traffic at
// every processor; summing it four times would quadruple-count, so the
// mean across processors stands in for the single shared stream.)
func (m *Metrics) TotalBusPMC() float64 {
	return sum(m.BusTxPMC) + mean(m.DMAPMC)
}

// WritebackShare estimates the write fraction of memory traffic from
// CPU-visible events: the gap between all L3 miss traffic and demand
// load misses, relative to the processors' own bus transactions. This is
// the input behind the paper's suggested extension ("accounting for the
// mix of reads versus writes would be a simple addition to the model").
func (m *Metrics) WritebackShare() float64 {
	bus := sum(m.BusTxPMC)
	if bus <= 0 {
		return 0
	}
	wb := sum(m.L3AllPMC) - sum(m.L3LoadPMC)
	if wb < 0 {
		wb = 0
	}
	share := wb / bus
	if share > 1 {
		share = 1
	}
	return share
}
