package core

import (
	"errors"
	"math"
	"strings"
	"testing"

	"trickledown/internal/align"
	"trickledown/internal/iobus"
	"trickledown/internal/perfctr"
	"trickledown/internal/power"
)

// mkSample builds a 2-CPU sample with the given per-CPU rates over one
// second at 2.8 GHz.
func mkSample(active, upc, l3pmc, buspmc, dmapmc, intspmc float64) perfctr.Sample {
	const cyc = 2.8e9
	const mcyc = cyc / 1e6
	s := perfctr.Sample{
		TargetSeconds: 1,
		IntervalSec:   1,
		CPUs:          make([]perfctr.CPUCounts, 2),
		Ints:          make([][]uint64, iobus.NumVectors),
	}
	for v := range s.Ints {
		s.Ints[v] = make([]uint64, 2)
	}
	for i := range s.CPUs {
		c := &s.CPUs[i]
		c.Cycles = uint64(cyc)
		c.HaltedCycles = uint64(cyc * (1 - active))
		c.FetchedUops = uint64(cyc * upc)
		c.L3LoadMisses = uint64(l3pmc * mcyc)
		c.BusTx = uint64(buspmc * mcyc)
		c.BusPrefetchTx = uint64(buspmc * mcyc / 10)
		c.DMAOther = uint64(dmapmc * mcyc)
		c.Uncacheable = uint64(5 * mcyc)
		c.TLBMisses = uint64(20 * mcyc)
		s.Ints[iobus.VecTimer][i] = uint64(intspmc * mcyc / 2)
		s.Ints[iobus.VecDisk][i] = uint64(intspmc * mcyc / 2)
	}
	return s
}

func TestExtractMetrics(t *testing.T) {
	s := mkSample(0.75, 1.5, 100, 400, 50, 0.2)
	m := ExtractMetrics(&s)
	if m.NumCPUs != 2 {
		t.Fatalf("NumCPUs = %d", m.NumCPUs)
	}
	approx := func(got, want float64, what string) {
		t.Helper()
		if math.Abs(got-want)/want > 0.01 {
			t.Errorf("%s = %v, want ~%v", what, got, want)
		}
	}
	approx(m.PercentActive[0], 0.75, "PercentActive")
	approx(m.UopsPerCycle[1], 1.5, "UopsPerCycle")
	approx(m.L3LoadPMC[0], 100, "L3LoadPMC")
	approx(m.BusTxPMC[0], 400, "BusTxPMC")
	approx(m.DMAPMC[1], 50, "DMAPMC")
	approx(m.IntsPMC[0], 0.2, "IntsPMC")
	approx(m.DiskIntsPMC[0], 0.1, "DiskIntsPMC")
	// TotalBusPMC: sum of own (2x400) + mean DMA (50).
	approx(m.TotalBusPMC(), 850, "TotalBusPMC")
}

func TestExtractMetricsZeroCycles(t *testing.T) {
	s := perfctr.Sample{CPUs: make([]perfctr.CPUCounts, 1)}
	m := ExtractMetrics(&s)
	if m.PercentActive[0] != 0 || m.UopsPerCycle[0] != 0 {
		t.Error("zero-cycle sample produced nonzero rates")
	}
}

// synthDataset builds an aligned dataset whose rail power is an exact
// function of the counters, so training must recover it.
func synthDataset(n int, railFn func(i int, s *perfctr.Sample) power.Reading) *align.Dataset {
	ds := &align.Dataset{}
	for i := 0; i < n; i++ {
		f := float64(i) / float64(n)
		// A second, decorrelated sweep so regressors are not collinear.
		g := float64(i*37%n) / float64(n)
		s := mkSample(0.2+0.8*f, 0.3+2*g, 50+400*g, 200+1500*f, 100*g, 0.1+2*f)
		s.TargetSeconds = float64(i + 1)
		ds.Rows = append(ds.Rows, align.Row{Power: railFn(i, &s), Counters: s})
	}
	return ds
}

func TestTrainRecoversLinearCPUModel(t *testing.T) {
	ds := synthDataset(60, func(i int, s *perfctr.Sample) power.Reading {
		m := ExtractMetrics(s)
		var r power.Reading
		r[power.SubCPU] = 9.25*float64(m.NumCPUs) + 26.45*sum(m.PercentActive) + 4.31*sum(m.UopsPerCycle)
		return r
	})
	mod, err := Train(CPUSpec(), ds)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{9.25, 26.45, 4.31}
	for i, w := range want {
		if math.Abs(mod.Coef[i]-w) > 0.01 {
			t.Errorf("coef[%d] = %v, want %v", i, mod.Coef[i], w)
		}
	}
	e, err := mod.Validate(ds)
	if err != nil || e > 0.001 {
		t.Errorf("self-validation error = %v, %v", e, err)
	}
}

func TestTrainRecoversQuadraticMemModel(t *testing.T) {
	ds := synthDataset(80, func(i int, s *perfctr.Sample) power.Reading {
		m := ExtractMetrics(s)
		x := m.TotalBusPMC()
		var r power.Reading
		r[power.SubMemory] = 28 + 0.002*x + 1e-7*x*x
		return r
	})
	mod, err := Train(MemBusSpec(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mod.Coef[0]-28) > 0.1 {
		t.Errorf("c0 = %v", mod.Coef[0])
	}
	if mod.Fit.R2 < 0.9999 {
		t.Errorf("R2 = %v", mod.Fit.R2)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(CPUSpec(), nil); !errors.Is(err, ErrNoData) {
		t.Error("nil dataset accepted")
	}
	if _, err := Train(CPUSpec(), &align.Dataset{}); !errors.Is(err, ErrNoData) {
		t.Error("empty dataset accepted")
	}
	// A constant-input dataset makes every non-chipset design singular.
	ds := &align.Dataset{}
	s := mkSample(0.5, 1, 10, 10, 10, 1)
	for i := 0; i < 10; i++ {
		ds.Rows = append(ds.Rows, align.Row{Counters: s})
	}
	if _, err := Train(CPUSpec(), ds); err == nil {
		t.Error("degenerate dataset trained without error")
	}
	// The chipset constant trains fine on it.
	if _, err := Train(ChipsetSpec(), ds); err != nil {
		t.Errorf("chipset constant failed: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	mod := &Model{Spec: ChipsetSpec(), Coef: []float64{19.9}}
	if _, err := mod.Validate(nil); !errors.Is(err, ErrNoData) {
		t.Error("nil dataset validated")
	}
	if _, err := mod.ValidateOffset(&align.Dataset{}, 5); !errors.Is(err, ErrNoData) {
		t.Error("empty dataset validated")
	}
}

func TestModelString(t *testing.T) {
	mod := &Model{Spec: CPUSpec(), Coef: []float64{9.25, 26.45, 4.31}}
	s := mod.String()
	for _, want := range []string{"cpu (Eq.1)", "percent_active", "uops_per_cycle", "+9.25"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}

func TestTrace(t *testing.T) {
	ds := synthDataset(10, func(i int, s *perfctr.Sample) power.Reading {
		var r power.Reading
		r[power.SubChipset] = 19.9
		return r
	})
	mod, err := Train(ChipsetSpec(), ds)
	if err != nil {
		t.Fatal(err)
	}
	measured, modeled := mod.Trace(ds)
	if len(measured) != 10 || len(modeled) != 10 {
		t.Fatal("trace lengths wrong")
	}
	for i := range measured {
		if math.Abs(modeled[i]-19.9) > 1e-9 || measured[i] != 19.9 {
			t.Errorf("trace[%d] = %v/%v", i, measured[i], modeled[i])
		}
	}
}

func TestEstimatorConstruction(t *testing.T) {
	mk := func(spec ModelSpec) *Model {
		coef := make([]float64, len(spec.Design(ExtractMetrics(&perfctr.Sample{CPUs: make([]perfctr.CPUCounts, 1)}))))
		return &Model{Spec: spec, Coef: coef}
	}
	full := []*Model{mk(CPUSpec()), mk(MemBusSpec()), mk(DiskSpec()), mk(IOSpec()), mk(ChipsetSpec())}
	if _, err := NewEstimator(full...); err != nil {
		t.Fatalf("complete estimator rejected: %v", err)
	}
	if _, err := NewEstimator(full[:4]...); err == nil {
		t.Error("missing subsystem accepted")
	}
	if _, err := NewEstimator(append(full, mk(MemL3Spec()))...); err == nil {
		t.Error("duplicate subsystem accepted")
	}
	if _, err := NewEstimator(nil, nil, nil, nil, nil); err == nil {
		t.Error("nil models accepted")
	}
}

func TestEstimatorEstimateAndPerCPU(t *testing.T) {
	ds := synthDataset(50, func(i int, s *perfctr.Sample) power.Reading {
		m := ExtractMetrics(s)
		var r power.Reading
		r[power.SubCPU] = 9*float64(m.NumCPUs) + 25*sum(m.PercentActive) + 4*sum(m.UopsPerCycle)
		r[power.SubChipset] = 19.9
		r[power.SubMemory] = 28 + 0.001*m.TotalBusPMC()
		r[power.SubIO] = 32.7 + sum(m.IntsPMC)
		r[power.SubDisk] = 21.6 + sum(m.DiskIntsPMC)
		return r
	})
	est, err := TrainEstimator(TrainingSet{CPU: ds, Memory: ds, Disk: ds, IO: ds, Chipset: ds})
	if err != nil {
		t.Fatal(err)
	}
	s := mkSample(0.6, 1.2, 200, 900, 40, 1.0)
	r := est.Estimate(&s)
	m := ExtractMetrics(&s)
	wantCPU := 9*2.0 + 25*sum(m.PercentActive) + 4*sum(m.UopsPerCycle)
	if math.Abs(r[power.SubCPU]-wantCPU) > 0.5 {
		t.Errorf("estimated CPU = %v, want ~%v", r[power.SubCPU], wantCPU)
	}
	if math.Abs(r[power.SubChipset]-19.9) > 0.01 {
		t.Errorf("estimated chipset = %v", r[power.SubChipset])
	}
	// Per-CPU attribution sums to the subsystem estimate.
	per := est.PerCPUPower(&s)
	if len(per) != 2 {
		t.Fatalf("per-CPU len = %d", len(per))
	}
	total := per[0] + per[1]
	if math.Abs(total-r[power.SubCPU]) > 1e-6 {
		t.Errorf("per-CPU sum %v != estimate %v", total, r[power.SubCPU])
	}
	// EstimateMetrics agrees with Estimate.
	if r2 := est.EstimateMetrics(m); r2 != r {
		t.Error("EstimateMetrics disagrees with Estimate")
	}
	// Model accessor.
	if est.Model(power.SubDisk) == nil || est.Model(power.Subsystem(99)) != nil {
		t.Error("Model accessor broken")
	}
}

func TestTrainEstimatorPropagatesErrors(t *testing.T) {
	if _, err := TrainEstimator(TrainingSet{}); err == nil {
		t.Error("empty training set accepted")
	}
}

func TestRejectedSpecsHaveDistinctInputs(t *testing.T) {
	s := mkSample(0.5, 1, 100, 500, 80, 1.5)
	m := ExtractMetrics(&s)
	for _, spec := range []ModelSpec{
		DiskDMASpec(), DiskUncacheableSpec(), IODMASpec(), IOUncacheableSpec(),
		CPUSpec(), MemL3Spec(), MemBusSpec(), DiskSpec(), IOSpec(), ChipsetSpec(),
	} {
		row := spec.Design(m)
		if len(row) == 0 || len(row) != len(spec.Terms) {
			t.Errorf("%s: design row %d columns, %d terms", spec.Name, len(row), len(spec.Terms))
		}
		for i, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s: design[%d] = %v", spec.Name, i, v)
			}
		}
	}
}
