package core

import (
	"strings"
	"testing"

	"trickledown/internal/align"
	"trickledown/internal/power"
)

// selDataset builds a dataset whose memory power depends on total bus
// traffic (so the bus model should win over the L3 model when holdout
// traffic includes DMA the L3 counter cannot see).
func selDataset(n int, dmaHeavy bool) *align.Dataset {
	ds := &align.Dataset{}
	for i := 0; i < n; i++ {
		f := float64(i) / float64(n)
		g := float64(i*37%n) / float64(n)
		dma := 0.0
		if dmaHeavy {
			dma = 400 * g
		}
		s := mkSample(0.3+0.7*f, 0.5+2*g, 60+300*g, 300+1200*f, dma, 0.2+f)
		s.TargetSeconds = float64(i + 1)
		m := ExtractMetrics(&s)
		var r power.Reading
		r[power.SubMemory] = 28 + 0.002*m.TotalBusPMC() + 2e-8*m.TotalBusPMC()*m.TotalBusPMC()
		ds.Rows = append(ds.Rows, align.Row{Power: r, Counters: s})
	}
	return ds
}

func TestSelectModelPrefersBusOverL3WithDMA(t *testing.T) {
	train := selDataset(80, true)
	holdout := selDataset(60, true)
	best, ranking, err := SelectModel([]ModelSpec{MemL3Spec(), MemBusSpec()}, train, holdout)
	if err != nil {
		t.Fatal(err)
	}
	if best.Spec.Name != MemBusSpec().Name {
		t.Errorf("selected %s, want the bus model; ranking: %v", best.Spec.Name, ranking)
	}
	if len(ranking) != 2 {
		t.Fatalf("ranking len = %d", len(ranking))
	}
	if ranking[0].Err > ranking[1].Err {
		t.Error("ranking not sorted by holdout error")
	}
	if !strings.Contains(ranking[0].String(), "holdout") {
		t.Errorf("candidate String = %q", ranking[0])
	}
}

func TestSelectModelValidation(t *testing.T) {
	ds := selDataset(40, false)
	if _, _, err := SelectModel(nil, ds, ds); err == nil {
		t.Error("no candidates accepted")
	}
	if _, _, err := SelectModel([]ModelSpec{MemBusSpec()}, ds); err == nil {
		t.Error("no holdouts accepted")
	}
	if _, _, err := SelectModel([]ModelSpec{MemBusSpec(), DiskSpec()}, ds, ds); err == nil {
		t.Error("mixed-subsystem candidates accepted")
	}
}

func TestSelectModelSurvivesFailingCandidate(t *testing.T) {
	// A degenerate dataset (constant inputs) makes quadratic candidates
	// singular; the constant chipset model still trains.
	ds := &align.Dataset{}
	s := mkSample(0.5, 1, 10, 10, 10, 1)
	for i := 0; i < 10; i++ {
		s2 := s
		s2.TargetSeconds = float64(i + 1)
		var r power.Reading
		r[power.SubChipset] = 19.9
		ds.Rows = append(ds.Rows, align.Row{Power: r, Counters: s2})
	}
	// Chipset constant (trains) vs a fabricated always-singular spec.
	bad := ModelSpec{
		Name: "degenerate",
		Sub:  power.SubChipset,
		Design: func(m *Metrics) []float64 {
			return []float64{1, 1} // collinear with the intercept
		},
		Terms: []string{"a", "b"},
	}
	best, ranking, err := SelectModel([]ModelSpec{bad, ChipsetSpec()}, ds, ds)
	if err != nil {
		t.Fatal(err)
	}
	if best.Spec.Name != ChipsetSpec().Name {
		t.Errorf("selected %s", best.Spec.Name)
	}
	if ranking[len(ranking)-1].Failure == nil {
		t.Error("failed candidate not ranked last")
	}
	if !strings.Contains(ranking[len(ranking)-1].String(), "FAILED") {
		t.Errorf("failure String = %q", ranking[len(ranking)-1])
	}
}

func TestSelectModelAllFail(t *testing.T) {
	ds := &align.Dataset{}
	s := mkSample(0.5, 1, 10, 10, 10, 1)
	var r power.Reading
	ds.Rows = append(ds.Rows, align.Row{Power: r, Counters: s})
	bad := ModelSpec{
		Name:   "degenerate",
		Sub:    power.SubChipset,
		Design: func(m *Metrics) []float64 { return []float64{1, 1} },
		Terms:  []string{"a", "b"},
	}
	if _, _, err := SelectModel([]ModelSpec{bad}, ds, ds); err == nil {
		t.Error("all-failing candidates accepted")
	}
}

func TestCandidateLists(t *testing.T) {
	for name, list := range map[string][]ModelSpec{
		"memory": MemoryCandidates(),
		"disk":   DiskCandidates(),
		"io":     IOCandidates(),
	} {
		if len(list) < 3 {
			t.Errorf("%s candidates = %d", name, len(list))
		}
		sub := list[0].Sub
		for _, spec := range list {
			if spec.Sub != sub {
				t.Errorf("%s candidates mix subsystems", name)
			}
		}
	}
}
