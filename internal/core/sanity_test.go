package core

import (
	"errors"
	"math"
	"strings"
	"testing"

	"trickledown/internal/align"
	"trickledown/internal/perfctr"
	"trickledown/internal/power"
)

// healthyDataset builds a structurally sound dataset.
func healthyDataset(n int) *align.Dataset {
	return synthDataset(n, func(i int, s *perfctr.Sample) power.Reading {
		return power.Reading{150, 19.9, 33, 33, 21.6}
	})
}

func TestCheckDatasetHealthy(t *testing.T) {
	if issues := CheckDataset(healthyDataset(20)); len(issues) != 0 {
		t.Errorf("healthy dataset flagged: %v", issues)
	}
}

func TestCheckDatasetEmpty(t *testing.T) {
	issues := CheckDataset(nil)
	if len(issues) != 1 || !strings.Contains(issues[0].String(), "no samples") {
		t.Errorf("issues = %v", issues)
	}
	if issues := CheckDataset(&align.Dataset{}); len(issues) != 1 {
		t.Errorf("issues = %v", issues)
	}
}

func TestCheckDatasetDeadRail(t *testing.T) {
	ds := healthyDataset(20)
	for i := range ds.Rows {
		ds.Rows[i].Power[power.SubDisk] = 0
	}
	issues := CheckDataset(ds)
	if !hasIssue(issues, "power/Disk", "zero") {
		t.Errorf("dead rail not flagged: %v", issues)
	}
}

func TestCheckDatasetNegativeRail(t *testing.T) {
	ds := healthyDataset(20)
	ds.Rows[3].Power[power.SubIO] = -2
	if issues := CheckDataset(ds); !hasIssue(issues, "power/I/O", "negative") {
		t.Errorf("negative rail not flagged: %v", issues)
	}
}

func TestCheckDatasetLowRail(t *testing.T) {
	ds := healthyDataset(20)
	for i := range ds.Rows {
		ds.Rows[i].Power[power.SubChipset] = 0.2
	}
	if issues := CheckDataset(ds); !hasIssue(issues, "power/Chipset", "implausibly low") {
		t.Errorf("low rail not flagged: %v", issues)
	}
}

func TestCheckDatasetZeroCycles(t *testing.T) {
	ds := healthyDataset(20)
	ds.Rows[5].Counters.CPUs[1].Cycles = 0
	if issues := CheckDataset(ds); !hasIssue(issues, "counter/cpu1.cycles", "zero") {
		t.Errorf("dead cycles counter not flagged: %v", issues)
	}
}

func TestCheckDatasetSilentCounters(t *testing.T) {
	ds := healthyDataset(20)
	for i := range ds.Rows {
		for c := range ds.Rows[i].Counters.CPUs {
			ds.Rows[i].Counters.CPUs[c].FetchedUops = 0
		}
	}
	if issues := CheckDataset(ds); !hasIssue(issues, "counter/fetched_uops", "silent") {
		t.Errorf("silent uops not flagged: %v", issues)
	}
}

func TestCheckDatasetNoInterrupts(t *testing.T) {
	ds := healthyDataset(20)
	for i := range ds.Rows {
		ds.Rows[i].Counters.Ints = nil
	}
	if issues := CheckDataset(ds); !hasIssue(issues, "interrupts", "no interrupts") {
		t.Errorf("missing interrupts not flagged: %v", issues)
	}
}

func TestCheckDatasetBadInterval(t *testing.T) {
	ds := healthyDataset(20)
	ds.Rows[4].Counters.IntervalSec = 0
	if issues := CheckDataset(ds); !hasIssue(issues, "timebase", "non-positive") {
		t.Errorf("bad interval not flagged: %v", issues)
	}
}

func TestCheckDatasetNonFiniteRail(t *testing.T) {
	ds := healthyDataset(20)
	ds.Rows[7].Power[power.SubMemory] = math.NaN()
	ds.Rows[9].Power[power.SubMemory] = math.Inf(1)
	issues := CheckDataset(ds)
	if !hasIssue(issues, "power/Memory", "2 non-finite") {
		t.Errorf("NaN/Inf rail not flagged: %v", issues)
	}
	// Other rails stay clean — the NaN must not leak into their checks.
	if hasIssue(issues, "power/CPU", "non-finite") {
		t.Errorf("clean rail flagged: %v", issues)
	}
}

func TestTrainRejectsNonFinite(t *testing.T) {
	ds := healthyDataset(20)
	ds.Rows[11].Power[power.SubCPU] = math.NaN()
	if _, err := Train(CPUSpec(), ds); !errors.Is(err, ErrNonFinite) {
		t.Errorf("NaN rail trained: err = %v", err)
	}
	ds = healthyDataset(20)
	ds.Rows[2].Power[power.SubChipset] = math.Inf(-1)
	if _, err := Train(ChipsetSpec(), ds); !errors.Is(err, ErrNonFinite) {
		t.Errorf("Inf rail trained: err = %v", err)
	}
	// A NaN in the counter log reaches the design matrix the same way
	// (OS busy time feeds the OS-utilization model unclamped).
	ds = healthyDataset(20)
	ds.Rows[4].Counters.OSBusySec = []float64{math.NaN()}
	if _, err := Train(CPUOSUtilSpec(), ds); !errors.Is(err, ErrNonFinite) {
		t.Errorf("NaN design column trained: err = %v", err)
	}
}

func hasIssue(issues []DataIssue, subject, problemFragment string) bool {
	for _, i := range issues {
		if i.Subject == subject && strings.Contains(i.Problem, problemFragment) {
			return true
		}
	}
	return false
}
