package core

import (
	"errors"
	"math"
	"strings"
	"testing"

	"trickledown/internal/align"
	"trickledown/internal/perfctr"
	"trickledown/internal/power"
)

// healthyDataset builds a structurally sound dataset.
func healthyDataset(n int) *align.Dataset {
	return synthDataset(n, func(i int, s *perfctr.Sample) power.Reading {
		return power.Reading{150, 19.9, 33, 33, 21.6}
	})
}

func TestCheckDatasetHealthy(t *testing.T) {
	if issues := CheckDataset(healthyDataset(20)); len(issues) != 0 {
		t.Errorf("healthy dataset flagged: %v", issues)
	}
}

func TestCheckDatasetEmpty(t *testing.T) {
	issues := CheckDataset(nil)
	if len(issues) != 1 || !strings.Contains(issues[0].String(), "no samples") {
		t.Errorf("issues = %v", issues)
	}
	if issues := CheckDataset(&align.Dataset{}); len(issues) != 1 {
		t.Errorf("issues = %v", issues)
	}
}

func TestCheckDatasetDeadRail(t *testing.T) {
	ds := healthyDataset(20)
	for i := range ds.Rows {
		ds.Rows[i].Power[power.SubDisk] = 0
	}
	issues := CheckDataset(ds)
	if !hasIssue(issues, "power/Disk", "zero") {
		t.Errorf("dead rail not flagged: %v", issues)
	}
}

func TestCheckDatasetNegativeRail(t *testing.T) {
	ds := healthyDataset(20)
	ds.Rows[3].Power[power.SubIO] = -2
	if issues := CheckDataset(ds); !hasIssue(issues, "power/I/O", "negative") {
		t.Errorf("negative rail not flagged: %v", issues)
	}
}

func TestCheckDatasetLowRail(t *testing.T) {
	ds := healthyDataset(20)
	for i := range ds.Rows {
		ds.Rows[i].Power[power.SubChipset] = 0.2
	}
	if issues := CheckDataset(ds); !hasIssue(issues, "power/Chipset", "implausibly low") {
		t.Errorf("low rail not flagged: %v", issues)
	}
}

func TestCheckDatasetZeroCycles(t *testing.T) {
	ds := healthyDataset(20)
	ds.Rows[5].Counters.CPUs[1].Cycles = 0
	if issues := CheckDataset(ds); !hasIssue(issues, "counter/cpu1.cycles", "zero") {
		t.Errorf("dead cycles counter not flagged: %v", issues)
	}
}

func TestCheckDatasetSilentCounters(t *testing.T) {
	ds := healthyDataset(20)
	for i := range ds.Rows {
		for c := range ds.Rows[i].Counters.CPUs {
			ds.Rows[i].Counters.CPUs[c].FetchedUops = 0
		}
	}
	if issues := CheckDataset(ds); !hasIssue(issues, "counter/fetched_uops", "silent") {
		t.Errorf("silent uops not flagged: %v", issues)
	}
}

func TestCheckDatasetNoInterrupts(t *testing.T) {
	ds := healthyDataset(20)
	for i := range ds.Rows {
		ds.Rows[i].Counters.Ints = nil
	}
	if issues := CheckDataset(ds); !hasIssue(issues, "interrupts", "no interrupts") {
		t.Errorf("missing interrupts not flagged: %v", issues)
	}
}

func TestCheckDatasetBadInterval(t *testing.T) {
	ds := healthyDataset(20)
	ds.Rows[4].Counters.IntervalSec = 0
	if issues := CheckDataset(ds); !hasIssue(issues, "timebase", "non-positive") {
		t.Errorf("bad interval not flagged: %v", issues)
	}
}

func TestCheckDatasetNonFiniteRail(t *testing.T) {
	ds := healthyDataset(20)
	ds.Rows[7].Power[power.SubMemory] = math.NaN()
	ds.Rows[9].Power[power.SubMemory] = math.Inf(1)
	issues := CheckDataset(ds)
	if !hasIssue(issues, "power/Memory", "2 non-finite") {
		t.Errorf("NaN/Inf rail not flagged: %v", issues)
	}
	// Other rails stay clean — the NaN must not leak into their checks.
	if hasIssue(issues, "power/CPU", "non-finite") {
		t.Errorf("clean rail flagged: %v", issues)
	}
}

func TestTrainRejectsNonFinite(t *testing.T) {
	ds := healthyDataset(20)
	ds.Rows[11].Power[power.SubCPU] = math.NaN()
	if _, err := Train(CPUSpec(), ds); !errors.Is(err, ErrNonFinite) {
		t.Errorf("NaN rail trained: err = %v", err)
	}
	ds = healthyDataset(20)
	ds.Rows[2].Power[power.SubChipset] = math.Inf(-1)
	if _, err := Train(ChipsetSpec(), ds); !errors.Is(err, ErrNonFinite) {
		t.Errorf("Inf rail trained: err = %v", err)
	}
	// A NaN in the counter log reaches the design matrix the same way
	// (OS busy time feeds the OS-utilization model unclamped).
	ds = healthyDataset(20)
	ds.Rows[4].Counters.OSBusySec = []float64{math.NaN()}
	if _, err := Train(CPUOSUtilSpec(), ds); !errors.Is(err, ErrNonFinite) {
		t.Errorf("NaN design column trained: err = %v", err)
	}
}

func hasIssue(issues []DataIssue, subject, problemFragment string) bool {
	for _, i := range issues {
		if i.Subject == subject && strings.Contains(i.Problem, problemFragment) {
			return true
		}
	}
	return false
}

// The row-pinpointing contract: every localizable issue names its first
// offending sample, so an operator lands on the right stretch of a
// multi-hour trace instead of re-scanning all of it.
func TestCheckDatasetReportsFirstBadRow(t *testing.T) {
	ds := healthyDataset(20)
	ds.Rows[7].Power[power.SubMemory] = math.NaN()
	ds.Rows[9].Power[power.SubMemory] = math.Inf(1)
	issues := CheckDataset(ds)
	found := false
	for _, i := range issues {
		if i.Subject == "power/Memory" {
			found = true
			if i.Row != 7 {
				t.Errorf("non-finite Memory issue Row = %d, want 7 (the first bad window)", i.Row)
			}
			if !strings.Contains(i.String(), "first at row 7") {
				t.Errorf("String() = %q, want the row called out", i.String())
			}
		}
	}
	if !found {
		t.Fatalf("no power/Memory issue: %v", issues)
	}

	ds = healthyDataset(20)
	ds.Rows[3].Power[power.SubIO] = -2
	for _, i := range CheckDataset(ds) {
		if i.Subject == "power/I/O" && i.Row != 3 {
			t.Errorf("negative I/O issue Row = %d, want 3", i.Row)
		}
	}

	ds = healthyDataset(20)
	ds.Rows[5].Counters.CPUs[1].Cycles = 0
	for _, i := range CheckDataset(ds) {
		if i.Subject == "counter/cpu1.cycles" && i.Row != 5 {
			t.Errorf("zero-cycles issue Row = %d, want 5", i.Row)
		}
	}

	ds = healthyDataset(20)
	ds.Rows[4].Counters.IntervalSec = 0
	for _, i := range CheckDataset(ds) {
		if i.Subject == "timebase" && i.Row != 4 {
			t.Errorf("timebase issue Row = %d, want 4", i.Row)
		}
	}
}

// Whole-trace issues carry Row == -1 and render without a row suffix —
// there is no single sample to jump to.
func TestCheckDatasetWholeTraceIssuesHaveNoRow(t *testing.T) {
	ds := healthyDataset(20)
	for i := range ds.Rows {
		ds.Rows[i].Power[power.SubDisk] = 0
		for c := range ds.Rows[i].Counters.CPUs {
			ds.Rows[i].Counters.CPUs[c].FetchedUops = 0
		}
	}
	for _, i := range CheckDataset(ds) {
		switch i.Subject {
		case "power/Disk", "counter/fetched_uops":
			if i.Row != -1 {
				t.Errorf("%s: Row = %d, want -1 for a whole-trace issue", i.Subject, i.Row)
			}
			if strings.Contains(i.String(), "row") {
				t.Errorf("%s: String() = %q mentions a row", i.Subject, i.String())
			}
		}
	}
}

// Train's non-finite errors must name what and where: the rail and row
// for a bad measurement, the model and design term for a bad input.
func TestTrainErrorNamesRailTermAndRow(t *testing.T) {
	ds := healthyDataset(20)
	ds.Rows[11].Power[power.SubCPU] = math.NaN()
	_, err := Train(CPUSpec(), ds)
	if err == nil || !strings.Contains(err.Error(), "CPU rail at row 11") {
		t.Errorf("rail error = %v, want the rail and row named", err)
	}

	ds = healthyDataset(20)
	ds.Rows[4].Counters.OSBusySec = []float64{math.NaN()}
	_, err = Train(CPUOSUtilSpec(), ds)
	if err == nil || !strings.Contains(err.Error(), "os_util") ||
		!strings.Contains(err.Error(), "row 4") {
		t.Errorf("design error = %v, want the term and row named", err)
	}
	if !errors.Is(err, ErrNonFinite) {
		t.Errorf("design error does not wrap ErrNonFinite: %v", err)
	}
}
