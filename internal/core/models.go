package core

import "trickledown/internal/power"

// ModelSpec describes one subsystem model: which subsystem's rail it
// predicts, and how counter metrics become a regression design row. The
// first design element is the intercept carrier (1, or NumCPUs for
// models whose constant term is per-processor).
type ModelSpec struct {
	// Name identifies the model in reports, e.g. "mem-bus (Eq.3)".
	Name string
	// Sub is the subsystem whose rail power the model predicts.
	Sub power.Subsystem
	// Design maps metrics to the regression row.
	Design func(m *Metrics) []float64
	// Terms documents the design columns for coefficient printing.
	Terms []string
}

// CPUSpec is the paper's Equation 1: per-processor power is a halted
// floor plus a recovery proportional to the unhalted fraction plus a
// fetch term. Only total CPU power is measurable ("we are only able to
// measure the sum of processor power"), so the fit regresses the total
// against per-processor sums; the coefficients stay per-processor and
// enable the SMP attribution of Section 4.2.1.
func CPUSpec() ModelSpec {
	return ModelSpec{
		Name: "cpu (Eq.1)",
		Sub:  power.SubCPU,
		Design: func(m *Metrics) []float64 {
			return []float64{
				float64(m.NumCPUs),
				sum(m.PercentActive),
				sum(m.UopsPerCycle),
			}
		},
		Terms: []string{"perCPU", "percent_active", "uops_per_cycle"},
	}
}

// CPUDVFSSpec extends Equation 1 to frequency-scaled processors — the
// paper's dynamic-adaptation context (Section 2.3) applies DVFS, and a
// fixed-frequency Eq. 1 misattributes power there. No new event is
// needed: the cycles counter itself reveals each processor's operating
// point (cycles per wall-clock interval), and the classic f·V(f)²
// scaling turns Eq. 1's terms into frequency-aware regressors.
func CPUDVFSSpec() ModelSpec {
	return ModelSpec{
		Name: "cpu-dvfs (Eq.1 + fV^2)",
		Sub:  power.SubCPU,
		Design: func(m *Metrics) []float64 {
			var vSum, actFV, upcFV float64
			for i := 0; i < m.NumCPUs; i++ {
				f := 1.0
				if i < len(m.FreqScale) && m.FreqScale[i] > 0 {
					f = m.FreqScale[i]
				}
				v := power.VoltageScale(f)
				fv2 := f * v * v
				vSum += v
				actFV += m.PercentActive[i] * fv2
				upcFV += m.UopsPerCycle[i] * fv2
			}
			return []float64{vSum, actFV, upcFV}
		},
		Terms: []string{"perCPU*V", "active*fV^2", "upc*fV^2"},
	}
}

// CPUOSUtilSpec is the comparison model of the paper's Section 2.2.2:
// CPU power from OS-level utilization alone (after Heath's OS-event
// models and Kotla's "utilization-based power model"). It sees how busy
// each processor was, but not what the busy cycles did — no fetch rate,
// no per-cycle normalization — so it misses IPC-driven power variation.
// The paper prefers on-chip counters partly for cost ("reading operating
// system counters requires relatively slow access") and this spec
// quantifies the accuracy side of that trade.
func CPUOSUtilSpec() ModelSpec {
	return ModelSpec{
		Name: "cpu-osutil (Heath/Kotla comparison)",
		Sub:  power.SubCPU,
		Design: func(m *Metrics) []float64 {
			return []float64{float64(m.NumCPUs), sum(m.OSUtil)}
		},
		Terms: []string{"perCPU", "os_util"},
	}
}

// MemL3Spec is the paper's Equation 2: memory power as a quadratic in L3
// load misses per cycle, summed over processors. It is the model the
// paper shows failing under high memory utilization (mcf), motivating
// Equation 3.
func MemL3Spec() ModelSpec {
	return ModelSpec{
		Name: "mem-l3 (Eq.2)",
		Sub:  power.SubMemory,
		Design: func(m *Metrics) []float64 {
			x := sum(m.L3LoadPMC)
			return []float64{1, x, x * x}
		},
		Terms: []string{"const", "l3_load_pmc", "l3_load_pmc^2"},
	}
}

// MemBusSpec is the paper's Equation 3: memory power as a quadratic in
// *all* memory bus transactions — processor demand, hardware prefetch
// and DMA — which "remains valid for all observed bus utilization
// rates".
func MemBusSpec() ModelSpec {
	return ModelSpec{
		Name: "mem-bus (Eq.3)",
		Sub:  power.SubMemory,
		Design: func(m *Metrics) []float64 {
			x := m.TotalBusPMC()
			return []float64{1, x, x * x}
		},
		Terms: []string{"const", "bus_tx_pmc", "bus_tx_pmc^2"},
	}
}

// MemBusRWSpec is the read/write-mix extension the paper proposes in
// Section 4.3 ("our model does not account for differences in the power
// for read versus write access... a simple addition"): Equation 3 plus
// an interaction term between traffic volume and the CPU-visible
// writeback share, letting the fit charge write-heavy traffic more.
func MemBusRWSpec() ModelSpec {
	return ModelSpec{
		Name: "mem-bus-rw (Eq.3 + write mix)",
		Sub:  power.SubMemory,
		Design: func(m *Metrics) []float64 {
			x := m.TotalBusPMC()
			w := m.WritebackShare()
			return []float64{1, x, x * x, x * w}
		},
		Terms: []string{"const", "bus_tx_pmc", "bus_tx_pmc^2", "bus_tx_pmc*wb_share"},
	}
}

// DiskSpec is the paper's Equation 4: disk power from disk-controller
// interrupts and DMA accesses, both per cycle, each with an independent
// quadratic. Interrupts carry the fine-grain variation ("the events are
// specific to the subsystem of interest"); DMA supplies transfer-volume
// context.
func DiskSpec() ModelSpec {
	return ModelSpec{
		Name: "disk (Eq.4)",
		Sub:  power.SubDisk,
		Design: func(m *Metrics) []float64 {
			i := sum(m.DiskIntsPMC)
			d := mean(m.DMAPMC)
			return []float64{1, i, i * i, d, d * d}
		},
		Terms: []string{"const", "disk_ints_pmc", "disk_ints_pmc^2", "dma_pmc", "dma_pmc^2"},
	}
}

// IOSpec is the paper's Equation 5: I/O subsystem power as a quadratic
// in interrupts per cycle. The constant timer-tick stream folds into the
// intercept; device interrupts supply the variation.
func IOSpec() ModelSpec {
	return ModelSpec{
		Name: "io (Eq.5)",
		Sub:  power.SubIO,
		Design: func(m *Metrics) []float64 {
			x := sum(m.IntsPMC)
			return []float64{1, x, x * x}
		},
		Terms: []string{"const", "ints_pmc", "ints_pmc^2"},
	}
}

// ChipsetSpec is the paper's chipset model: a constant ("we assume
// chipset power to be a constant 19.9 Watts"), fitted as the training
// trace's mean.
func ChipsetSpec() ModelSpec {
	return ModelSpec{
		Name: "chipset (const)",
		Sub:  power.SubChipset,
		Design: func(m *Metrics) []float64 {
			return []float64{1}
		},
		Terms: []string{"const"},
	}
}

// The specs below are the alternatives the paper evaluated and rejected;
// they exist so the model-selection narrative (Sections 4.2.3 and 4.2.4)
// can be reproduced quantitatively in the ablation benchmarks.

// DiskDMASpec models disk power from DMA accesses alone. The paper found
// it misses fine-grain variation ("DMA events failed to capture the
// fine-grain power variations ... almost as if the DMA events had a
// low-pass filter applied to them").
func DiskDMASpec() ModelSpec {
	return ModelSpec{
		Name: "disk-dma (rejected)",
		Sub:  power.SubDisk,
		Design: func(m *Metrics) []float64 {
			d := mean(m.DMAPMC)
			return []float64{1, d, d * d}
		},
		Terms: []string{"const", "dma_pmc", "dma_pmc^2"},
	}
}

// DiskUncacheableSpec models disk power from uncacheable accesses alone,
// the paper's other rejected candidate.
func DiskUncacheableSpec() ModelSpec {
	return ModelSpec{
		Name: "disk-uc (rejected)",
		Sub:  power.SubDisk,
		Design: func(m *Metrics) []float64 {
			u := sum(m.UncacheablePMC)
			return []float64{1, u, u * u}
		},
		Terms: []string{"const", "uc_pmc", "uc_pmc^2"},
	}
}

// IODMASpec models I/O power from DMA accesses, rejected because
// write-combining and sub-line transfers break the DMA-count-to-switching
// proportionality.
func IODMASpec() ModelSpec {
	return ModelSpec{
		Name: "io-dma (rejected)",
		Sub:  power.SubIO,
		Design: func(m *Metrics) []float64 {
			d := mean(m.DMAPMC)
			return []float64{1, d, d * d}
		},
		Terms: []string{"const", "dma_pmc", "dma_pmc^2"},
	}
}

// IOUncacheableSpec models I/O power from uncacheable accesses, also
// considered and rejected by the paper.
func IOUncacheableSpec() ModelSpec {
	return ModelSpec{
		Name: "io-uc (rejected)",
		Sub:  power.SubIO,
		Design: func(m *Metrics) []float64 {
			u := sum(m.UncacheablePMC)
			return []float64{1, u, u * u}
		},
		Terms: []string{"const", "uc_pmc", "uc_pmc^2"},
	}
}
