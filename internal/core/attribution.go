package core

import (
	"trickledown/internal/perfctr"
	"trickledown/internal/power"
)

// Thread-level power attribution — the paper's Section 4.2.1 endgame:
// "this is particularly challenging in virtual machine environments in
// which multiple customers could be simultaneously running applications
// on a single physical processor. For this reason, process-level power
// accounting is essential."
//
// Equation 1 attributes power to physical processors; on an SMT
// processor two tenants share one. The split below divides each
// processor's estimated power into an infrastructure part (the halted
// floor, owed equally by whoever is scheduled there) and a dynamic part
// divided by OS-accounted per-thread busy time — the same accounting
// the billing story already requires the OS to keep.

// PerThreadPower attributes the CPU-subsystem estimate to hardware
// threads. The sample must carry OS per-thread busy accounting
// (OSThreadBusySec) with threadsPerCPU entries per processor; otherwise
// nil is returned. The per-thread values of each processor sum to that
// processor's Equation 1 attribution.
func (e *Estimator) PerThreadPower(s *perfctr.Sample, threadsPerCPU int) []float64 {
	if threadsPerCPU <= 0 {
		return nil
	}
	m := ExtractMetrics(s)
	perCPU := e.PerCPUPower(s)
	want := m.NumCPUs * threadsPerCPU
	if len(s.OSThreadBusySec) < want || s.IntervalSec <= 0 {
		return nil
	}
	cm := e.Model(power.SubCPU)
	if cm == nil || len(cm.Coef) < 1 {
		return nil
	}
	floor := cm.Coef[0] // per-processor infrastructure (halted floor)
	out := make([]float64, want)
	for cpuID := 0; cpuID < m.NumCPUs; cpuID++ {
		var busySum float64
		base := cpuID * threadsPerCPU
		for t := 0; t < threadsPerCPU; t++ {
			busySum += s.OSThreadBusySec[base+t]
		}
		dynamic := perCPU[cpuID] - floor
		if dynamic < 0 {
			dynamic = 0
		}
		for t := 0; t < threadsPerCPU; t++ {
			share := 1.0 / float64(threadsPerCPU)
			if busySum > 0 {
				share = s.OSThreadBusySec[base+t] / busySum
			}
			out[base+t] = floor/float64(threadsPerCPU) + dynamic*share
		}
		// Reconcile rounding so the processor total is exact.
		var sum float64
		for t := 0; t < threadsPerCPU; t++ {
			sum += out[base+t]
		}
		if diff := perCPU[cpuID] - sum; diff != 0 {
			out[base] += diff
		}
	}
	return out
}
