package core

import (
	"math"
	"testing"

	"trickledown/internal/align"
	"trickledown/internal/perfctr"
	"trickledown/internal/power"
)

// cpuRail synthesizes an exact Eq.1-style CPU rail for online tests.
func cpuRail(i int, s *perfctr.Sample) power.Reading {
	m := ExtractMetrics(s)
	var r power.Reading
	r[power.SubCPU] = 9.25*float64(m.NumCPUs) + 26.45*sum(m.PercentActive) + 4.31*sum(m.UopsPerCycle)
	// A touch of deterministic structure batch OLS must also absorb, so
	// the fit is not trivially exact and coefficient comparison is
	// meaningful.
	r[power.SubCPU] += 0.3 * math.Sin(float64(i))
	return r
}

// feed pushes dataset rows into the fitter, failing the test on any
// unexpected quarantine.
func feed(t *testing.T, f *OnlineFitter, ds *align.Dataset) {
	t.Helper()
	for i := range ds.Rows {
		row := &ds.Rows[i]
		if !f.Observe(ExtractMetrics(&row.Counters), row.Power[f.Spec().Sub]) {
			t.Fatalf("row %d quarantined unexpectedly", i)
		}
	}
}

// TestOnlineFitterMatchesBatchOnStaticWindow is the exact-equivalence
// contract: a window that has never evicted must reproduce batch Train
// coefficients within 1e-9 (they are in fact bit-identical, since the
// accumulation order matches OLS exactly).
func TestOnlineFitterMatchesBatchOnStaticWindow(t *testing.T) {
	for _, spec := range []ModelSpec{CPUSpec(), MemBusSpec(), DiskSpec(), IOSpec(), ChipsetSpec()} {
		ds := synthDataset(120, cpuRail)
		// Reuse the CPU rail's value for every subsystem so each spec has
		// a live response to fit.
		for i := range ds.Rows {
			v := ds.Rows[i].Power[power.SubCPU]
			for s := range ds.Rows[i].Power {
				ds.Rows[i].Power[s] = v
			}
		}
		batch, err := Train(spec, ds)
		if err != nil {
			t.Fatalf("%s: batch train: %v", spec.Name, err)
		}
		f, err := NewOnlineFitter(spec, ds.Len())
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		feed(t, f, ds)
		online, err := f.Fit()
		if err != nil {
			t.Fatalf("%s: online fit: %v", spec.Name, err)
		}
		if len(online.Coef) != len(batch.Coef) {
			t.Fatalf("%s: coef width %d vs %d", spec.Name, len(online.Coef), len(batch.Coef))
		}
		for i := range batch.Coef {
			if d := math.Abs(online.Coef[i] - batch.Coef[i]); d > 1e-9 {
				t.Errorf("%s: coef[%d] online %v vs batch %v (|Δ|=%g)",
					spec.Name, i, online.Coef[i], batch.Coef[i], d)
			}
		}
		if online.Fit == nil || online.Fit.N != ds.Len() {
			t.Errorf("%s: fit diagnostics N = %v", spec.Name, online.Fit)
		}
		if math.Abs(online.Fit.R2-batch.Fit.R2) > 1e-9 {
			t.Errorf("%s: R2 online %v vs batch %v", spec.Name, online.Fit.R2, batch.Fit.R2)
		}
	}
}

// TestOnlineFitterSlidingWindowTracksTail verifies that after eviction
// the fitter matches a batch fit over exactly the retained tail, within
// the drift tolerance the downdate/recompute policy guarantees.
func TestOnlineFitterSlidingWindowTracksTail(t *testing.T) {
	const total, window = 600, 100
	ds := synthDataset(total, cpuRail)
	f, err := NewOnlineFitter(CPUSpec(), window)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, f, ds)
	if f.Len() != window {
		t.Fatalf("window length %d, want %d", f.Len(), window)
	}
	if f.Seen() != total {
		t.Fatalf("seen %d, want %d", f.Seen(), total)
	}
	tail := &align.Dataset{Rows: ds.Rows[total-window:]}
	batch, err := Train(CPUSpec(), tail)
	if err != nil {
		t.Fatal(err)
	}
	online, err := f.Fit()
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch.Coef {
		if d := math.Abs(online.Coef[i] - batch.Coef[i]); d > 1e-6 {
			t.Errorf("coef[%d] online %v vs tail batch %v (|Δ|=%g)",
				i, online.Coef[i], batch.Coef[i], d)
		}
	}
}

// TestOnlineFitterQuarantinesNonFinite: hostile observations must be
// counted and dropped without perturbing the eventual fit.
func TestOnlineFitterQuarantinesNonFinite(t *testing.T) {
	ds := synthDataset(80, cpuRail)
	clean, err := NewOnlineFitter(CPUSpec(), 200)
	if err != nil {
		t.Fatal(err)
	}
	dirty, err := NewOnlineFitter(CPUSpec(), 200)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, clean, ds)
	hostile := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	h := 0
	for i := range ds.Rows {
		row := &ds.Rows[i]
		m := ExtractMetrics(&row.Counters)
		dirty.Observe(m, row.Power[power.SubCPU])
		if ok := dirty.Observe(m, hostile[h%len(hostile)]); ok {
			t.Fatalf("non-finite response accepted at row %d", i)
		}
		h++
	}
	if got := dirty.Quarantined(); got != uint64(len(ds.Rows)) {
		t.Fatalf("quarantined %d, want %d", got, len(ds.Rows))
	}
	if dirty.Seen() != clean.Seen() {
		t.Fatalf("seen %d vs clean %d", dirty.Seen(), clean.Seen())
	}
	a, err := clean.Fit()
	if err != nil {
		t.Fatal(err)
	}
	b, err := dirty.Fit()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Coef {
		if a.Coef[i] != b.Coef[i] {
			t.Errorf("coef[%d] perturbed by quarantined rows: %v vs %v", i, a.Coef[i], b.Coef[i])
		}
	}
	for i := range b.Coef {
		if math.IsNaN(b.Coef[i]) || math.IsInf(b.Coef[i], 0) {
			t.Errorf("coef[%d] non-finite after hostile stream: %v", i, b.Coef[i])
		}
	}
	// A non-finite design term is quarantined too.
	bad := ExtractMetrics(&ds.Rows[0].Counters)
	bad.PercentActive[0] = math.NaN()
	if dirty.Observe(bad, 100) {
		t.Error("non-finite design term accepted")
	}
}

// TestOnlineFitterReset drops the window but keeps lifetime counters.
func TestOnlineFitterReset(t *testing.T) {
	ds := synthDataset(40, cpuRail)
	f, err := NewOnlineFitter(CPUSpec(), 64)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, f, ds)
	f.Reset()
	if f.Len() != 0 {
		t.Fatalf("Len after reset = %d", f.Len())
	}
	if f.Seen() != uint64(len(ds.Rows)) {
		t.Fatalf("Seen after reset = %d", f.Seen())
	}
	if _, err := f.Fit(); err == nil {
		t.Fatal("fit on empty window succeeded")
	}
	// Refilling after reset fits cleanly again.
	feed(t, f, ds)
	if _, err := f.Fit(); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineFitterErrors(t *testing.T) {
	if _, err := NewOnlineFitter(CPUSpec(), 2); err == nil {
		t.Error("window below design width accepted")
	}
	f, err := NewOnlineFitter(CPUSpec(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Fit(); err == nil {
		t.Error("fit with zero observations succeeded")
	}
	ds := synthDataset(2, cpuRail)
	feed(t, f, ds)
	if _, err := f.Fit(); err == nil {
		t.Error("underdetermined fit succeeded")
	}
}
