package core

import (
	"errors"
	"math"
	"testing"

	"trickledown/internal/align"
	"trickledown/internal/power"
)

func TestEWMA(t *testing.T) {
	out := EWMA([]float64{10, 10, 10}, 0.5)
	for i, v := range out {
		if math.Abs(v-10) > 1e-12 {
			t.Errorf("constant EWMA[%d] = %v", i, v)
		}
	}
	// Step decay: after the input drops to zero the average decays
	// geometrically.
	out = EWMA([]float64{10, 0, 0, 0}, 0.5)
	want := []float64{10, 5, 2.5, 1.25}
	for i, w := range want {
		if math.Abs(out[i]-w) > 1e-12 {
			t.Errorf("EWMA[%d] = %v, want %v", i, out[i], w)
		}
	}
	if got := EWMA(nil, 0.5); len(got) != 0 {
		t.Error("empty EWMA")
	}
	// Alpha clamping must not panic or explode.
	_ = EWMA([]float64{1, 2}, -1)
	_ = EWMA([]float64{1, 2}, 7)
}

func TestTrainSeqErrors(t *testing.T) {
	if _, err := TrainSeq(DiskStandbySpec(0.2), nil); !errors.Is(err, ErrNoData) {
		t.Error("nil dataset accepted")
	}
	if _, err := TrainSeq(DiskStandbySpec(0.2), &align.Dataset{}); !errors.Is(err, ErrNoData) {
		t.Error("empty dataset accepted")
	}
	m := &SeqModel{Spec: DiskStandbySpec(0.2), Coef: []float64{1, 0, 0, 0, 0}}
	if _, err := m.Validate(&align.Dataset{}); !errors.Is(err, ErrNoData) {
		t.Error("empty validation accepted")
	}
}

// A synthetic standby machine: disk power has a rotation floor that
// collapses when there has been no recent disk activity. The stateless
// Eq. 4 cannot express that; the EWMA spec can.
func TestSeqModelLearnsStandby(t *testing.T) {
	build := func(n int, seedPhase int) *align.Dataset {
		ds := &align.Dataset{}
		recent := 0.0
		const alpha = 0.3
		for i := 0; i < n; i++ {
			// Bursts of disk interrupts with long idle stretches.
			ints := 0.0
			if (i+seedPhase)%40 < 12 {
				ints = 0.15 + 0.05*float64((i+seedPhase)%3)
			}
			recent += alpha * (ints - recent)
			dma := 900*ints + 12*float64(i%7)
			s := mkSample(0.5, 1, 50, 300, dma, ints*2)
			// Route the chosen rate into the disk vector only.
			for c := range s.Ints[1] {
				s.Ints[1][c] = uint64(ints * 2.8e9 / 1e6 / 2)
			}
			s.TargetSeconds = float64(i + 1)
			var r power.Reading
			spinning := 0.0
			if recent > 0.01 {
				spinning = 17.7 // rotation floor while recently active
			}
			r[power.SubDisk] = 3.9 + spinning + 8*ints
			ds.Rows = append(ds.Rows, align.Row{Power: r, Counters: s})
		}
		return ds
	}
	train := build(240, 0)
	eval := build(200, 7)

	seq, err := TrainSeq(DiskStandbySpec(0.3), train)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Train(DiskSpec(), train)
	if err != nil {
		t.Fatal(err)
	}
	seqErr, err := seq.Validate(eval)
	if err != nil {
		t.Fatal(err)
	}
	flatErr, err := flat.Validate(eval)
	if err != nil {
		t.Fatal(err)
	}
	if seqErr >= flatErr/2 {
		t.Errorf("history model %.2f%% should beat stateless %.2f%% decisively", seqErr, flatErr)
	}
	// The step transition is only approximated by the saturating
	// feature, so mid-decay samples keep some error; the point is the
	// decisive win above.
	if seqErr > 45 {
		t.Errorf("history model error %.2f%% too large", seqErr)
	}
}
