package core

import (
	"fmt"
	"math"
	"strings"

	"trickledown/internal/align"
)

// Provenance records where an estimator's coefficients came from. It
// rides along in the persisted model file (schema v2) and in memory on
// the Estimator, so a serving process can always answer "which model is
// live, fit from what data, descended from what" — the observability
// the hot-swap path needs to make a rollback auditable.
type Provenance struct {
	// SchemaVersion is the provenance schema, independent of the file
	// format version (bump when fields change meaning).
	SchemaVersion int `json:"schema_version"`
	// Version names this particular fit: "train-<fingerprint>" for the
	// offline fit, "refit-<n>" for online challengers.
	Version string `json:"version"`
	// TrainedAt is the wall-clock fit time, RFC 3339. Informational
	// only; deterministic pipelines must not branch on it.
	TrainedAt string `json:"trained_at,omitempty"`
	// Fingerprint is the training dataset's FNV-64a fingerprint
	// (validate.Fingerprint), tying coefficients to their data.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Envelopes holds per-metric rate envelopes (mean/std of the design
	// inputs over the training data) for residual-free drift detection.
	Envelopes []MetricEnvelope `json:"envelopes,omitempty"`
	// Parent is the Version of the champion this model replaced, empty
	// for the initial offline fit.
	Parent string `json:"parent,omitempty"`
	// Reason says why the fit happened: "offline-train", "drift-refit",
	// "rollback".
	Reason string `json:"reason,omitempty"`
}

// String renders the one-line form tdserve logs at startup.
func (p *Provenance) String() string {
	if p == nil {
		return "provenance{unknown}"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "provenance{v%d %s", p.SchemaVersion, p.Version)
	if p.Fingerprint != "" {
		fmt.Fprintf(&b, " data=%s", p.Fingerprint)
	}
	if p.TrainedAt != "" {
		fmt.Fprintf(&b, " at=%s", p.TrainedAt)
	}
	if p.Parent != "" {
		fmt.Fprintf(&b, " parent=%s", p.Parent)
	}
	if p.Reason != "" {
		fmt.Fprintf(&b, " reason=%s", p.Reason)
	}
	b.WriteString("}")
	return b.String()
}

// ProvenanceSchemaVersion is the current provenance schema.
const ProvenanceSchemaVersion = 1

// MetricEnvelope is the training-time distribution of one scalar metric
// rate: the drift detector compares live values against (Mean, Std) to
// notice workload-mix shifts even when no ground-truth rails arrive.
type MetricEnvelope struct {
	Name string  `json:"name"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
}

// EnvelopeMetrics extracts the scalar metric rates the envelopes cover,
// in a fixed order matching ComputeEnvelopes: the aggregate inputs of
// the five production designs. Shared by training (to build envelopes)
// and the adapt layer (to score live samples against them).
func EnvelopeMetrics(m *Metrics) []float64 {
	return []float64{
		sum(m.PercentActive),
		sum(m.UopsPerCycle),
		m.TotalBusPMC(),
		sum(m.IntsPMC),
		sum(m.DiskIntsPMC),
		mean(m.DMAPMC),
	}
}

// EnvelopeNames returns the metric names for EnvelopeMetrics positions.
func EnvelopeNames() []string {
	return []string{"percent_active", "uops_per_cycle", "bus_tx_total", "ints", "disk_ints", "dma"}
}

// ComputeEnvelopes summarizes a training dataset into per-metric rate
// envelopes. Non-finite rows are skipped (Train would have rejected
// them anyway); a degenerate metric gets Std 0 and the detector treats
// it as uninformative.
func ComputeEnvelopes(ds *align.Dataset) []MetricEnvelope {
	names := EnvelopeNames()
	k := len(names)
	sums := make([]float64, k)
	sqs := make([]float64, k)
	n := 0
	for i := range ds.Rows {
		vals := EnvelopeMetrics(ExtractMetrics(&ds.Rows[i].Counters))
		finite := true
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				finite = false
				break
			}
		}
		if !finite {
			continue
		}
		for j, v := range vals {
			sums[j] += v
			sqs[j] += v * v
		}
		n++
	}
	out := make([]MetricEnvelope, k)
	for j, name := range names {
		out[j].Name = name
		if n == 0 {
			continue
		}
		m := sums[j] / float64(n)
		out[j].Mean = m
		v := sqs[j]/float64(n) - m*m
		if v > 0 {
			out[j].Std = math.Sqrt(v)
		}
	}
	return out
}
