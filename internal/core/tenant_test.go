package core

import (
	"math"
	"strings"
	"testing"

	"trickledown/internal/power"
	"trickledown/internal/sim"
	"trickledown/internal/workload"
)

func sampleReading(cpu, chip, mem, io, disk float64) power.Reading {
	var r power.Reading
	r[power.SubCPU] = cpu
	r[power.SubChipset] = chip
	r[power.SubMemory] = mem
	r[power.SubIO] = io
	r[power.SubDisk] = disk
	return r
}

func sampleTenants() []TenantActivity {
	mk := func(name string, cpu, mem, io, disk float64) TenantActivity {
		var d [power.NumSubsystems]float64
		d[power.SubCPU] = cpu
		d[power.SubMemory] = mem
		d[power.SubIO] = io
		d[power.SubDisk] = disk
		return TenantActivity{Name: name, Driving: d}
	}
	return []TenantActivity{
		mk("web", 100, 20, 5, 1),
		mk("db", 60, 80, 40, 90),
		mk("batch", 200, 50, 0, 0),
		mk("idle", 0, 0, 0, 0),
	}
}

func TestAttributeTenantsConservesAndOrders(t *testing.T) {
	total := sampleReading(120, 20, 28, 32, 24)
	idle := sampleReading(40, 19, 21, 30, 21)
	tenants := sampleTenants()
	out, err := AttributeTenants(total, idle, tenants)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < power.NumSubsystems; s++ {
		var sum float64
		for i := range out {
			sum += out[i][s]
		}
		if math.Abs(sum-total[s]) > 1e-9 {
			t.Errorf("%s: attributed sum %v != total %v", power.Subsystem(s), sum, total[s])
		}
	}
	// The idle tenant gets exactly its even share of floors plus its
	// even share of the chipset dynamic part (nobody drives chipset).
	chipDyn := total[power.SubChipset] - idle[power.SubChipset]
	wantIdle := (idle.Total() + chipDyn) / 4.0 // floors split 4 ways
	if math.Abs(out[3].Total()-wantIdle) > 1e-9 {
		t.Errorf("idle tenant total %v, want %v", out[3].Total(), wantIdle)
	}
	// batch drives the most CPU, so it gets the largest CPU share.
	if !(out[2][power.SubCPU] > out[0][power.SubCPU] && out[0][power.SubCPU] > out[3][power.SubCPU]) {
		t.Errorf("CPU attribution order wrong: %v %v %v", out[2][power.SubCPU], out[0][power.SubCPU], out[3][power.SubCPU])
	}
	// db dominates disk.
	if out[1][power.SubDisk] <= out[0][power.SubDisk] {
		t.Errorf("disk attribution order wrong")
	}
}

func TestAttributeTenantsDegenerateCases(t *testing.T) {
	total := sampleReading(100, 20, 25, 30, 22)
	idle := total // fully idle node: everything is floor
	out, err := AttributeTenants(total, idle, sampleTenants())
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if math.Abs(out[i].Total()-total.Total()/4) > 1e-9 {
			t.Errorf("all-floor split not even: tenant %d got %v", i, out[i].Total())
		}
	}
	// Idle above total: dynamic clamps to zero instead of going negative.
	hot := sampleReading(50, 10, 10, 10, 10)
	cold := sampleReading(60, 20, 20, 20, 20)
	out, err = AttributeTenants(hot, cold, sampleTenants())
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		for s := 0; s < power.NumSubsystems; s++ {
			if out[i][s] < 0 {
				t.Errorf("negative attribution tenant %d subsystem %s", i, power.Subsystem(s))
			}
		}
	}

	if _, err := AttributeTenants(total, idle, nil); err == nil || !strings.Contains(err.Error(), "zero tenants") {
		t.Fatalf("zero tenants: %v", err)
	}
	bad := sampleTenants()
	bad[1].Driving[power.SubCPU] = -1
	if _, err := AttributeTenants(total, idle, bad); err == nil {
		t.Fatal("negative driving accepted")
	}
	bad = sampleTenants()
	bad[0].Driving[power.SubMemory] = math.NaN()
	if _, err := AttributeTenants(total, idle, bad); err == nil {
		t.Fatal("NaN driving accepted")
	}
	nanTotal := total
	nanTotal[power.SubIO] = math.Inf(1)
	if _, err := AttributeTenants(nanTotal, idle, sampleTenants()); err == nil {
		t.Fatal("Inf total accepted")
	}
}

func TestCheckAttributionBattery(t *testing.T) {
	total := sampleReading(120, 20, 28, 32, 24)
	idle := sampleReading(40, 19, 21, 30, 21)
	if err := CheckAttribution(total, idle, sampleTenants()); err != nil {
		t.Fatalf("battery failed on a well-formed instance: %v", err)
	}
	// Randomized sweep: the battery must hold across seeded instances.
	rng := sim.NewRNG(42)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		tenants := make([]TenantActivity, n)
		for i := range tenants {
			tenants[i].Name = "t"
			for s := range tenants[i].Driving {
				if rng.Float64() < 0.2 {
					continue // leave zero: exercises even-split fallback
				}
				tenants[i].Driving[s] = 1000 * rng.Float64()
			}
		}
		var total, idle power.Reading
		for s := range total {
			idle[s] = 5 + 20*rng.Float64()
			total[s] = idle[s] + 80*rng.Float64()
			if rng.Float64() < 0.1 {
				total[s] = idle[s] - 1 // exercise the dyn clamp
			}
		}
		if err := CheckAttribution(total, idle, tenants); err != nil {
			t.Fatalf("trial %d (n=%d): %v", trial, n, err)
		}
	}
}

func TestTenantActivityFromUsage(t *testing.T) {
	u := workload.TenantUsage{
		Name: "web", Intervals: 100,
		ActiveSum: 50, UopSum: 70, L3MissSum: 10, BusSum: 13,
		DiskBytes: 4096, NetBytes: 8192,
	}
	a := TenantActivityFromUsage(u)
	if a.Name != "web" {
		t.Fatalf("name %q", a.Name)
	}
	if a.Driving[power.SubCPU] != 120 {
		t.Errorf("CPU driver %v", a.Driving[power.SubCPU])
	}
	if a.Driving[power.SubChipset] != 0 {
		t.Errorf("chipset driver %v, want 0 (constant model)", a.Driving[power.SubChipset])
	}
	if a.Driving[power.SubMemory] != 13 {
		t.Errorf("memory driver %v", a.Driving[power.SubMemory])
	}
	if a.Driving[power.SubIO] != 12288 {
		t.Errorf("IO driver %v", a.Driving[power.SubIO])
	}
	if a.Driving[power.SubDisk] != 4096 {
		t.Errorf("disk driver %v", a.Driving[power.SubDisk])
	}
}
