package core

import (
	"fmt"

	"trickledown/internal/align"
	"trickledown/internal/perfctr"
	"trickledown/internal/power"
)

// Estimator bundles one fitted model per subsystem into a complete
// sensorless system power meter: feed it 1 Hz counter samples, read back
// all five rails plus the total.
type Estimator struct {
	models [power.NumSubsystems]*Model
	prov   *Provenance
}

// Provenance returns the estimator's fit provenance, or nil when the
// coefficients were assembled without one (hand-built in tests, or
// loaded from a v1 model file).
func (e *Estimator) Provenance() *Provenance { return e.prov }

// SetProvenance attaches fit provenance to the estimator.
func (e *Estimator) SetProvenance(p *Provenance) { e.prov = p }

// NewEstimator builds an estimator from fitted models. Every subsystem
// must be covered exactly once.
func NewEstimator(models ...*Model) (*Estimator, error) {
	e := &Estimator{}
	for _, m := range models {
		if m == nil {
			return nil, fmt.Errorf("core: nil model")
		}
		idx := int(m.Spec.Sub)
		if idx < 0 || idx >= power.NumSubsystems {
			return nil, fmt.Errorf("core: model %s has invalid subsystem", m.Spec.Name)
		}
		if e.models[idx] != nil {
			return nil, fmt.Errorf("core: duplicate model for %s", m.Spec.Sub)
		}
		e.models[idx] = m
	}
	for _, s := range power.Subsystems() {
		if e.models[s] == nil {
			return nil, fmt.Errorf("core: no model for %s", s)
		}
	}
	return e, nil
}

// Model returns the fitted model for a subsystem.
func (e *Estimator) Model(s power.Subsystem) *Model {
	if s < 0 || int(s) >= power.NumSubsystems {
		return nil
	}
	return e.models[s]
}

// Estimate returns per-rail power for one counter sample.
func (e *Estimator) Estimate(s *perfctr.Sample) power.Reading {
	m := ExtractMetrics(s)
	var out power.Reading
	for i, mod := range e.models {
		out[i] = mod.Predict(m)
	}
	return out
}

// EstimateMetrics is Estimate for pre-extracted metrics.
func (e *Estimator) EstimateMetrics(m *Metrics) power.Reading {
	var out power.Reading
	for i, mod := range e.models {
		out[i] = mod.Predict(m)
	}
	return out
}

// PerCPUPower attributes the CPU subsystem's estimate to individual
// processors using the per-processor terms of Equation 1 — the paper's
// SMP/process-level accounting motivation ("the ability to attribute
// power consumption to a single physical processor within an SMP
// environment is critical").
func (e *Estimator) PerCPUPower(s *perfctr.Sample) []float64 {
	m := ExtractMetrics(s)
	cm := e.models[power.SubCPU]
	out := make([]float64, m.NumCPUs)
	if len(cm.Coef) < 3 {
		return out
	}
	for i := 0; i < m.NumCPUs; i++ {
		out[i] = cm.Coef[0] + cm.Coef[1]*m.PercentActive[i] + cm.Coef[2]*m.UopsPerCycle[i]
	}
	return out
}

// TrainingSet names the dataset used to fit each subsystem, mirroring
// the paper's choices: gcc's staggered ramp for CPU, mcf for the memory
// bus model, DiskLoad for disk and I/O, and any trace for the chipset
// constant.
type TrainingSet struct {
	CPU     *align.Dataset
	Memory  *align.Dataset
	Disk    *align.Dataset
	IO      *align.Dataset
	Chipset *align.Dataset
}

// TrainEstimator fits the paper's five production models (Eq. 1, Eq. 3,
// Eq. 4, Eq. 5 and the chipset constant) on a training set.
func TrainEstimator(ts TrainingSet) (*Estimator, error) {
	cpuM, err := Train(CPUSpec(), ts.CPU)
	if err != nil {
		return nil, err
	}
	memM, err := Train(MemBusSpec(), ts.Memory)
	if err != nil {
		return nil, err
	}
	diskM, err := Train(DiskSpec(), ts.Disk)
	if err != nil {
		return nil, err
	}
	ioM, err := Train(IOSpec(), ts.IO)
	if err != nil {
		return nil, err
	}
	chipM, err := Train(ChipsetSpec(), ts.Chipset)
	if err != nil {
		return nil, err
	}
	return NewEstimator(cpuM, memM, diskM, ioM, chipM)
}
