package core

import (
	"fmt"
	"math"

	"trickledown/internal/regress"
)

// OnlineFitter is the incremental counterpart of Train: a sliding-window
// least-squares accumulator that ingests one (metrics, measured-Watts)
// observation at a time and can produce a fitted Model at any point
// without rescanning history. It exists for the self-healing estimation
// layer (internal/adapt), where challenger models are refit continuously
// from the live stream while the champion keeps serving.
//
// The accumulators XᵀX and Xᵀy are maintained by rank-1 update on
// arrival and downdate on eviction, with element-wise addition in
// exactly the per-row order regress.OLS uses — so on a window that has
// never evicted, Fit reproduces the batch coefficients bit for bit
// (the exact-equivalence contract the adapt layer's tests pin down).
// Downdates accumulate floating-point drift, so after a full window's
// worth of evictions the moments are recomputed from the stored rows,
// bounding the drift to what one window of slides can introduce.
//
// Non-finite inputs (NaN/Inf response or design term) are never folded
// into the accumulators: they increment a quarantine counter and are
// dropped, mirroring Train's ErrNonFinite but without giving a hostile
// stream the power to poison a long-lived fitter.
//
// An OnlineFitter is not safe for concurrent use; the adapt manager
// serializes access.
type OnlineFitter struct {
	spec ModelSpec
	p    int // design width
	size int // window capacity in observations

	// Ring buffer of the live window, oldest at head.
	rows [][]float64
	ys   []float64
	head int
	n    int

	// Upper-triangle Gram matrix and moment vector over the window.
	xtx [][]float64
	xty []float64

	downdates   int
	seen        uint64
	quarantined uint64
}

// NewOnlineFitter returns a fitter for spec over a sliding window of the
// given capacity. The window must hold at least as many observations as
// the spec has design columns, or no fit could ever be produced.
func NewOnlineFitter(spec ModelSpec, window int) (*OnlineFitter, error) {
	p := designWidth(spec)
	if p == 0 {
		return nil, fmt.Errorf("core: online fitter: spec %s has empty design", spec.Name)
	}
	if window < p {
		return nil, fmt.Errorf("core: online fitter: window %d below design width %d of %s",
			window, p, spec.Name)
	}
	f := &OnlineFitter{
		spec: spec,
		p:    p,
		size: window,
		rows: make([][]float64, window),
		ys:   make([]float64, window),
		xtx:  make([][]float64, p),
		xty:  make([]float64, p),
	}
	for i := range f.xtx {
		f.xtx[i] = make([]float64, p)
	}
	return f, nil
}

// Spec returns the model spec the fitter fits.
func (f *OnlineFitter) Spec() ModelSpec { return f.spec }

// Len returns the number of observations currently in the window.
func (f *OnlineFitter) Len() int { return f.n }

// Cap returns the window capacity.
func (f *OnlineFitter) Cap() int { return f.size }

// Seen returns how many observations were accepted over the fitter's
// lifetime (quarantined ones excluded).
func (f *OnlineFitter) Seen() uint64 { return f.seen }

// Quarantined returns how many observations were rejected for carrying a
// non-finite response or design term.
func (f *OnlineFitter) Quarantined() uint64 { return f.quarantined }

// Reset drops the whole window and zeroes the accumulators; lifetime
// counters (Seen, Quarantined) are preserved. The adapt layer resets its
// fitters after a rollback so a challenger is never refit from the same
// window that just produced a rejected model.
func (f *OnlineFitter) Reset() {
	for i := range f.rows {
		f.rows[i] = nil
	}
	f.head = 0
	f.n = 0
	f.downdates = 0
	f.zeroMoments()
}

// Observe folds one observation into the window, evicting the oldest
// when full. It reports false (and counts a quarantine) when y or any
// design term is non-finite; the accumulators are untouched in that
// case.
func (f *OnlineFitter) Observe(m *Metrics, y float64) bool {
	row := f.spec.Design(m)
	if len(row) != f.p {
		// A spec whose design width varies per sample would corrupt the
		// moments; treat it as hostile input rather than panicking.
		f.quarantined++
		return false
	}
	if math.IsNaN(y) || math.IsInf(y, 0) {
		f.quarantined++
		return false
	}
	for _, v := range row {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			f.quarantined++
			return false
		}
	}
	if f.n == f.size {
		f.evictOldest()
	}
	slot := (f.head + f.n) % f.size
	f.rows[slot] = row
	f.ys[slot] = y
	f.n++
	f.accumulate(row, y, 1)
	f.seen++
	// A full window of downdates has drifted the moments as far as this
	// policy tolerates; rebuild them from the stored rows.
	if f.downdates >= f.size {
		f.recompute()
	}
	return true
}

// evictOldest downdates the moments by the oldest row and frees its slot.
func (f *OnlineFitter) evictOldest() {
	f.accumulate(f.rows[f.head], f.ys[f.head], -1)
	f.rows[f.head] = nil
	f.head = (f.head + 1) % f.size
	f.n--
	f.downdates++
}

// accumulate applies one row's rank-1 contribution with the given sign,
// in the same element order as regress.OLS's accumulation loop.
func (f *OnlineFitter) accumulate(row []float64, y, sign float64) {
	for a := 0; a < f.p; a++ {
		f.xty[a] += sign * row[a] * y
		for b := a; b < f.p; b++ {
			f.xtx[a][b] += sign * row[a] * row[b]
		}
	}
}

func (f *OnlineFitter) zeroMoments() {
	for a := range f.xtx {
		for b := range f.xtx[a] {
			f.xtx[a][b] = 0
		}
		f.xty[a] = 0
	}
}

// recompute rebuilds the moments from the stored window, oldest to
// newest — the same order a batch accumulation over the window would
// use, so the rebuilt moments match a fresh OLS bit for bit.
func (f *OnlineFitter) recompute() {
	f.zeroMoments()
	for i := 0; i < f.n; i++ {
		slot := (f.head + i) % f.size
		f.accumulate(f.rows[slot], f.ys[slot], 1)
	}
	f.downdates = 0
}

// Fit solves the window's normal equations and returns the fitted model
// with training diagnostics (R², RMSE, N) over the window. Coefficient
// standard errors are not computed — the shadow gate judges challengers
// on held-out residuals, not on in-window inference.
func (f *OnlineFitter) Fit() (*Model, error) {
	if f.n == 0 {
		return nil, ErrNoData
	}
	if f.n < f.p {
		return nil, fmt.Errorf("core: online fitter: %d observations below design width %d of %s",
			f.n, f.p, f.spec.Name)
	}
	// Mirror the upper triangle into the full symmetric matrix the solver
	// pivots over, exactly as OLS does before solving.
	full := make([][]float64, f.p)
	for a := 0; a < f.p; a++ {
		full[a] = append([]float64(nil), f.xtx[a]...)
	}
	for a := 1; a < f.p; a++ {
		for b := 0; b < a; b++ {
			full[a][b] = full[b][a]
		}
	}
	coef, err := regress.SolveNormal(full, f.xty)
	if err != nil {
		return nil, fmt.Errorf("core: online fit %s: %w", f.spec.Name, err)
	}
	// Training diagnostics over the stored window, matching OLS's
	// definitions.
	var ybar float64
	for i := 0; i < f.n; i++ {
		ybar += f.ys[(f.head+i)%f.size]
	}
	ybar /= float64(f.n)
	var ssRes, ssTot float64
	for i := 0; i < f.n; i++ {
		slot := (f.head + i) % f.size
		pred := 0.0
		for j, c := range coef {
			pred += c * f.rows[slot][j]
		}
		d := f.ys[slot] - pred
		ssRes += d * d
		t := f.ys[slot] - ybar
		ssTot += t * t
	}
	r2 := 0.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	fit := &regress.Fit{
		Coef: coef,
		R2:   r2,
		RMSE: math.Sqrt(ssRes / float64(f.n)),
		N:    f.n,
	}
	return &Model{Spec: f.spec, Coef: coef, Fit: fit}, nil
}
