package core

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"trickledown/internal/align"
	"trickledown/internal/regress"
	"trickledown/internal/stats"
)

// ErrNoData is returned when training or validating on an empty dataset.
var ErrNoData = errors.New("core: empty dataset")

// ErrNonFinite is returned when training data contains NaN or Inf — a
// degraded trace that must go through align.MergeRobust (or be dropped)
// before it can fit coefficients. OLS would otherwise propagate the NaN
// into every coefficient silently.
var ErrNonFinite = errors.New("core: non-finite value in training data")

// TrainFunc is the per-fold training hook of the validation subsystem:
// anything that turns a spec plus a training dataset into a fitted
// model. Train is the production implementation; the conformance gate's
// negative tests substitute deliberately mistrained variants to prove
// the accuracy gate actually fails.
type TrainFunc func(spec ModelSpec, ds *align.Dataset) (*Model, error)

// Model is a fitted subsystem power model.
type Model struct {
	// Spec is the model's definition.
	Spec ModelSpec
	// Coef holds the fitted coefficients, one per design column.
	Coef []float64
	// Fit carries the training diagnostics.
	Fit *regress.Fit
}

// Train fits spec against the measured rail power in ds.
func Train(spec ModelSpec, ds *align.Dataset) (*Model, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, ErrNoData
	}
	x := make([][]float64, ds.Len())
	y := make([]float64, ds.Len())
	for i, row := range ds.Rows {
		m := ExtractMetrics(&row.Counters)
		x[i] = spec.Design(m)
		y[i] = row.Power[spec.Sub]
		if math.IsNaN(y[i]) || math.IsInf(y[i], 0) {
			return nil, fmt.Errorf("%w: %s rail at row %d", ErrNonFinite, spec.Sub, i)
		}
		for j, v := range x[i] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				term := fmt.Sprintf("column %d", j)
				if j < len(spec.Terms) {
					term = spec.Terms[j]
				}
				return nil, fmt.Errorf("%w: %s design term %s at row %d",
					ErrNonFinite, spec.Name, term, i)
			}
		}
	}
	fit, err := regress.OLS(x, y)
	if err != nil {
		return nil, fmt.Errorf("core: training %s: %w", spec.Name, err)
	}
	return &Model{Spec: spec, Coef: fit.Coef, Fit: fit}, nil
}

// Predict evaluates the model on one sample's metrics.
func (m *Model) Predict(met *Metrics) float64 {
	return regress.Predict(m.Coef, m.Spec.Design(met))
}

// Trace returns the aligned measured and modeled series over a dataset —
// the two curves of the paper's figures.
func (m *Model) Trace(ds *align.Dataset) (measured, modeled []float64) {
	measured = make([]float64, ds.Len())
	modeled = make([]float64, ds.Len())
	for i, row := range ds.Rows {
		measured[i] = row.Power[m.Spec.Sub]
		modeled[i] = m.Predict(ExtractMetrics(&row.Counters))
	}
	return measured, modeled
}

// Validate computes the paper's Equation 6 average error (percent) of
// the model over a dataset.
func (m *Model) Validate(ds *align.Dataset) (float64, error) {
	if ds == nil || ds.Len() == 0 {
		return 0, ErrNoData
	}
	measured, modeled := m.Trace(ds)
	return stats.AverageError(modeled, measured)
}

// ValidateOffset computes Equation 6 after removing a DC offset, the
// paper's procedure for the disk model ("this error is calculated by
// first subtracting the 21.6W of idle (DC) disk power consumption").
func (m *Model) ValidateOffset(ds *align.Dataset, dc float64) (float64, error) {
	if ds == nil || ds.Len() == 0 {
		return 0, ErrNoData
	}
	measured, modeled := m.Trace(ds)
	return stats.AverageErrorOffset(modeled, measured, dc)
}

// String renders the fitted model with named coefficients.
func (m *Model) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%s]:", m.Spec.Name, m.Spec.Sub)
	for i, c := range m.Coef {
		term := fmt.Sprintf("x%d", i)
		if i < len(m.Spec.Terms) {
			term = m.Spec.Terms[i]
		}
		if m.Fit != nil && i < len(m.Fit.StdErr) {
			fmt.Fprintf(&b, " (%+.4g±%.2g)*%s", c, m.Fit.StdErr[i], term)
		} else {
			fmt.Fprintf(&b, " %+.4g*%s", c, term)
		}
	}
	if m.Fit != nil {
		fmt.Fprintf(&b, "  (R²=%.3f, n=%d)", m.Fit.R2, m.Fit.N)
	}
	return b.String()
}
