package core

import (
	"encoding/json"
	"fmt"
	"io"

	"trickledown/internal/power"
	"trickledown/internal/regress"
)

// The paper's deployment story is that models are fitted once on an
// instrumented machine and then shipped to uninstrumented ones ("the
// cost of implementation is small"). This file provides the wire format:
// fitted coefficients plus the spec name; the functional forms
// themselves are code, so loading resolves the name against the spec
// registry.

// specRegistry maps persisted spec names to constructors.
var specRegistry = map[string]func() ModelSpec{}

func init() {
	for _, mk := range []func() ModelSpec{
		CPUSpec, CPUDVFSSpec, CPUOSUtilSpec, MemL3Spec, MemBusSpec, MemBusRWSpec, DiskSpec, IOSpec, ChipsetSpec,
		DiskDMASpec, DiskUncacheableSpec, IODMASpec, IOUncacheableSpec,
	} {
		s := mk()
		specRegistry[s.Name] = mk
	}
}

// SpecByName returns the registered model spec with the given name.
func SpecByName(name string) (ModelSpec, error) {
	mk, ok := specRegistry[name]
	if !ok {
		return ModelSpec{}, fmt.Errorf("core: unknown model spec %q", name)
	}
	return mk(), nil
}

// SpecNames returns every registered spec name.
func SpecNames() []string {
	out := make([]string, 0, len(specRegistry))
	for n := range specRegistry {
		out = append(out, n)
	}
	return out
}

// modelJSON is the persisted form of one fitted model.
type modelJSON struct {
	Spec string    `json:"spec"`
	Sub  string    `json:"subsystem"`
	Coef []float64 `json:"coef"`
	R2   float64   `json:"r2,omitempty"`
	N    int       `json:"n,omitempty"`
}

// estimatorJSON is the persisted form of a full estimator.
type estimatorJSON struct {
	Format     string      `json:"format"`
	Provenance *Provenance `json:"provenance,omitempty"`
	Models     []modelJSON `json:"models"`
}

// The wire format is versioned: v1 carried only coefficients, v2 adds
// the provenance block. Save always writes the current version; load
// accepts both so model files shipped by older builds keep working.
const (
	formatName   = "trickledown-models/2"
	formatNameV1 = "trickledown-models/1"
)

// Save writes the estimator's five fitted models as JSON, with fit
// provenance when the estimator carries one.
func (e *Estimator) Save(w io.Writer) error {
	out := estimatorJSON{Format: formatName, Provenance: e.prov}
	for _, s := range power.Subsystems() {
		m := e.Model(s)
		mj := modelJSON{Spec: m.Spec.Name, Sub: s.String(), Coef: m.Coef}
		if m.Fit != nil {
			mj.R2 = m.Fit.R2
			mj.N = m.Fit.N
		}
		out.Models = append(out.Models, mj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// LoadEstimator reads an estimator previously written with Save.
func LoadEstimator(r io.Reader) (*Estimator, error) {
	var in estimatorJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("core: decoding models: %w", err)
	}
	if in.Format != formatName && in.Format != formatNameV1 {
		return nil, fmt.Errorf("core: unsupported model format %q", in.Format)
	}
	models := make([]*Model, 0, len(in.Models))
	for _, mj := range in.Models {
		spec, err := SpecByName(mj.Spec)
		if err != nil {
			return nil, err
		}
		want := designWidth(spec)
		if len(mj.Coef) != want {
			return nil, fmt.Errorf("core: model %q has %d coefficients, want %d",
				mj.Spec, len(mj.Coef), want)
		}
		m := &Model{Spec: spec, Coef: mj.Coef}
		if mj.N > 0 {
			m.Fit = &regress.Fit{Coef: mj.Coef, R2: mj.R2, N: mj.N}
		}
		models = append(models, m)
	}
	est, err := NewEstimator(models...)
	if err != nil {
		return nil, err
	}
	est.SetProvenance(in.Provenance)
	return est, nil
}

// designWidth probes a spec's design-row width with an empty sample.
func designWidth(spec ModelSpec) int {
	m := &Metrics{
		NumCPUs:        1,
		PercentActive:  make([]float64, 1),
		UopsPerCycle:   make([]float64, 1),
		L3LoadPMC:      make([]float64, 1),
		BusTxPMC:       make([]float64, 1),
		PrefetchPMC:    make([]float64, 1),
		DMAPMC:         make([]float64, 1),
		UncacheablePMC: make([]float64, 1),
		TLBPMC:         make([]float64, 1),
		IntsPMC:        make([]float64, 1),
		DiskIntsPMC:    make([]float64, 1),
	}
	return len(spec.Design(m))
}
