package core

import (
	"math"
	"testing"

	"trickledown/internal/perfctr"
	"trickledown/internal/power"
	"trickledown/internal/sim"
)

func TestFrequencyInference(t *testing.T) {
	// A sample whose cycle count corresponds to 70% of nominal clock.
	s := perfctr.Sample{
		TargetSeconds: 1,
		IntervalSec:   1,
		CPUs: []perfctr.CPUCounts{{
			Cycles:      uint64(0.7 * sim.DefaultCoreHz),
			FetchedUops: uint64(0.7 * sim.DefaultCoreHz),
		}},
	}
	m := ExtractMetrics(&s)
	if math.Abs(m.FreqScale[0]-0.7) > 0.001 {
		t.Errorf("inferred frequency = %v, want 0.7", m.FreqScale[0])
	}
	// Per-cycle rates are frequency-independent.
	if math.Abs(m.UopsPerCycle[0]-1.0) > 0.001 {
		t.Errorf("upc = %v, want 1.0", m.UopsPerCycle[0])
	}
}

func TestFrequencyInferenceClamps(t *testing.T) {
	mk := func(cyc float64, interval float64) *Metrics {
		s := perfctr.Sample{
			IntervalSec: interval,
			CPUs:        []perfctr.CPUCounts{{Cycles: uint64(cyc)}},
		}
		return ExtractMetrics(&s)
	}
	if f := mk(10*sim.DefaultCoreHz, 1).FreqScale[0]; f != 1 {
		t.Errorf("overrange frequency = %v, want clamp at 1", f)
	}
	if f := mk(0.01*sim.DefaultCoreHz, 1).FreqScale[0]; f != 0.1 {
		t.Errorf("underrange frequency = %v, want clamp at 0.1", f)
	}
	// No interval: defaults to nominal.
	if f := mk(1e9, 0).FreqScale[0]; f != 1 {
		t.Errorf("no-interval frequency = %v, want 1", f)
	}
}

func TestExtractMetricsAtCustomClock(t *testing.T) {
	s := perfctr.Sample{
		IntervalSec: 1,
		CPUs:        []perfctr.CPUCounts{{Cycles: 1e9}},
	}
	m := ExtractMetricsAt(&s, 2e9)
	if math.Abs(m.FreqScale[0]-0.5) > 1e-9 {
		t.Errorf("freq at 2GHz nominal = %v, want 0.5", m.FreqScale[0])
	}
}

func TestCPUDVFSSpecDesign(t *testing.T) {
	m := &Metrics{
		NumCPUs:       2,
		PercentActive: []float64{1, 0.5},
		UopsPerCycle:  []float64{2, 1},
		FreqScale:     []float64{1, 0.5},
	}
	row := CPUDVFSSpec().Design(m)
	if len(row) != 3 {
		t.Fatalf("row len = %d", len(row))
	}
	v1 := power.VoltageScale(1)
	v2 := power.VoltageScale(0.5)
	wantV := v1 + v2
	if math.Abs(row[0]-wantV) > 1e-12 {
		t.Errorf("voltage column = %v, want %v", row[0], wantV)
	}
	wantAct := 1*1*v1*v1 + 0.5*0.5*v2*v2
	if math.Abs(row[1]-wantAct) > 1e-12 {
		t.Errorf("active column = %v, want %v", row[1], wantAct)
	}
	// Zero FreqScale entries are treated as nominal.
	m.FreqScale = []float64{0, 0}
	row = CPUDVFSSpec().Design(m)
	if math.Abs(row[0]-2*v1) > 1e-12 {
		t.Errorf("zero-freq fallback voltage column = %v", row[0])
	}
}

func TestVoltageScale(t *testing.T) {
	if v := power.VoltageScale(1); v != 1 {
		t.Errorf("V(1) = %v", v)
	}
	if v := power.VoltageScale(0); v != 0.75 {
		t.Errorf("V(0) = %v", v)
	}
	if v := power.VoltageScale(-3); v != 0.75 {
		t.Errorf("V(-3) = %v", v)
	}
	if v := power.VoltageScale(9); v != 1 {
		t.Errorf("V(9) = %v", v)
	}
	if power.VoltageScale(0.5) >= power.VoltageScale(0.9) {
		t.Error("voltage must rise with frequency")
	}
}
