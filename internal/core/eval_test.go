package core

import (
	"errors"
	"math"
	"testing"

	"trickledown/internal/align"
	"trickledown/internal/perfctr"
	"trickledown/internal/power"
)

// evalDataset returns a dataset with an exact linear CPU rail plus the
// model trained on it, so Evaluate's numbers are predictable.
func evalDataset(t *testing.T, n int) (*align.Dataset, *Model) {
	t.Helper()
	ds := synthDataset(n, func(i int, s *perfctr.Sample) power.Reading {
		m := ExtractMetrics(s)
		var r power.Reading
		r[power.SubCPU] = 9.25*float64(m.NumCPUs) + 26.45*sum(m.PercentActive) + 4.31*sum(m.UopsPerCycle)
		return r
	})
	mod, err := Train(CPUSpec(), ds)
	if err != nil {
		t.Fatal(err)
	}
	return ds, mod
}

func TestEvaluatePerfectFit(t *testing.T) {
	ds, mod := evalDataset(t, 60)
	ev, err := mod.Evaluate(ds)
	if err != nil {
		t.Fatal(err)
	}
	if ev.N != ds.Len() {
		t.Errorf("N = %d, want %d", ev.N, ds.Len())
	}
	if ev.AvgErrPct > 1e-6 || ev.WorstErrPct > 1e-6 {
		t.Errorf("exact model scored avg %v%% worst %v%%", ev.AvgErrPct, ev.WorstErrPct)
	}
	if ev.R2 < 1-1e-9 {
		t.Errorf("R2 = %v, want 1", ev.R2)
	}
	if math.Abs(ev.Resid.Mean) > 1e-9 || ev.Resid.Max > 1e-9 {
		t.Errorf("residual summary not ~zero: %+v", ev.Resid)
	}
}

func TestEvaluateBiasedModel(t *testing.T) {
	ds, mod := evalDataset(t, 60)
	// Inflate the constant term by 5 W: every residual becomes +5 and the
	// error percentages must reflect the rail magnitudes.
	mod.Coef[0] += 5 / float64(2) // perCPU term, 2 CPUs in mkSample
	ev, err := mod.Evaluate(ds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ev.Resid.Mean-5) > 1e-9 || math.Abs(ev.Resid.Min-5) > 1e-9 {
		t.Errorf("uniform +5 W bias not seen in residuals: %+v", ev.Resid)
	}
	if ev.AvgErrPct <= 0 || ev.WorstErrPct < ev.AvgErrPct {
		t.Errorf("avg %v%% worst %v%% inconsistent", ev.AvgErrPct, ev.WorstErrPct)
	}
	if ev.R2 >= 1 {
		t.Errorf("biased model still scored R2 = %v", ev.R2)
	}
}

func TestResiduals(t *testing.T) {
	ds, mod := evalDataset(t, 20)
	res, err := mod.Residuals(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != ds.Len() {
		t.Fatalf("len = %d, want %d", len(res), ds.Len())
	}
	for i, r := range res {
		measured := ds.Rows[i].Power[power.SubCPU]
		modeled := mod.Predict(ExtractMetrics(&ds.Rows[i].Counters))
		if math.Abs(r-(modeled-measured)) > 1e-12 {
			t.Fatalf("row %d residual %v != modeled-measured %v", i, r, modeled-measured)
		}
	}
	if _, err := mod.Residuals(&align.Dataset{}); !errors.Is(err, ErrNoData) {
		t.Errorf("empty dataset err = %v", err)
	}
}

func TestEvaluateErrors(t *testing.T) {
	_, mod := evalDataset(t, 20)
	if _, err := mod.Evaluate(nil); !errors.Is(err, ErrNoData) {
		t.Errorf("nil dataset err = %v", err)
	}
	if _, err := mod.Evaluate(&align.Dataset{}); !errors.Is(err, ErrNoData) {
		t.Errorf("empty dataset err = %v", err)
	}
}
