package core

import (
	"math"
	"reflect"
	"testing"
)

// TestExtractMetricsAtIntoMatchesFresh: the reusing form must be
// indistinguishable from a fresh extraction, including when the scratch
// Metrics carries stale state from a previous (larger) sample.
func TestExtractMetricsAtIntoMatchesFresh(t *testing.T) {
	big := mkSample(0.9, 1.5, 200, 900, 300, 50)
	big.CPUs = append(big.CPUs, big.CPUs[0], big.CPUs[0]) // 4 CPUs
	small := mkSample(0.3, 0.4, 50, 100, 20, 10)

	scratch := &Metrics{}
	ExtractMetricsAtInto(scratch, &big, 2.8e9)
	if !reflect.DeepEqual(scratch, ExtractMetricsAt(&big, 2.8e9)) {
		t.Fatal("Into result differs from fresh extraction (big sample)")
	}
	// Reuse for a smaller sample: stale tail values must not leak.
	ExtractMetricsAtInto(scratch, &small, 2.8e9)
	if !reflect.DeepEqual(scratch, ExtractMetricsAt(&small, 2.8e9)) {
		t.Fatal("reused scratch differs from fresh extraction (small sample)")
	}
	if scratch.NumCPUs != 2 || len(scratch.UopsPerCycle) != 2 {
		t.Fatalf("scratch not resized: NumCPUs=%d len=%d", scratch.NumCPUs, len(scratch.UopsPerCycle))
	}
	for _, v := range scratch.UopsPerCycle {
		if math.IsNaN(v) {
			t.Fatal("NaN in reused extraction")
		}
	}
}

// TestExtractMetricsAtIntoZeroAllocSteadyState: after warm-up the
// reusing form must not allocate — the property internal/serve's
// 100k+ samples/sec hot path depends on.
func TestExtractMetricsAtIntoZeroAllocSteadyState(t *testing.T) {
	s := mkSample(0.7, 1.1, 120, 600, 150, 30)
	scratch := &Metrics{}
	ExtractMetricsAtInto(scratch, &s, 2.8e9) // warm-up sizes the slices
	allocs := testing.AllocsPerRun(100, func() {
		ExtractMetricsAtInto(scratch, &s, 2.8e9)
	})
	if allocs != 0 {
		t.Errorf("steady-state ExtractMetricsAtInto allocates %.1f/op, want 0", allocs)
	}
}
