package core

import (
	"fmt"

	"trickledown/internal/align"
	"trickledown/internal/power"
	"trickledown/internal/regress"
	"trickledown/internal/stats"
)

// Sequence-aware models. The paper's models are memoryless — each
// estimate uses one sampling interval's rates — which is exactly why
// they break on hardware whose power depends on *history*, like a disk
// that spins down after a stretch of idleness (see
// BenchmarkAblationDiskSpindown). A SeqSpec designs its regression row
// from the whole metric history up to the current sample, so features
// like "exponentially weighted recent disk interrupts" become
// expressible while the training/validation machinery stays identical.

// SeqSpec is a ModelSpec whose design function sees the history.
type SeqSpec struct {
	// Name identifies the model in reports.
	Name string
	// Sub is the subsystem whose rail the model predicts.
	Sub power.Subsystem
	// Design maps (history, index) to the regression row for sample i.
	// history[0..i] are valid; later entries must not be touched.
	Design func(history []*Metrics, i int) []float64
	// Terms documents the design columns.
	Terms []string
}

// SeqModel is a fitted sequence-aware model.
type SeqModel struct {
	Spec SeqSpec
	Coef []float64
	Fit  *regress.Fit
}

// metricsHistory extracts metrics for every row once.
func metricsHistory(ds *align.Dataset) []*Metrics {
	hist := make([]*Metrics, ds.Len())
	for i := range ds.Rows {
		hist[i] = ExtractMetrics(&ds.Rows[i].Counters)
	}
	return hist
}

// TrainSeq fits a sequence-aware spec against the measured rail power.
func TrainSeq(spec SeqSpec, ds *align.Dataset) (*SeqModel, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, ErrNoData
	}
	hist := metricsHistory(ds)
	x := make([][]float64, ds.Len())
	y := make([]float64, ds.Len())
	for i := range ds.Rows {
		x[i] = spec.Design(hist, i)
		y[i] = ds.Rows[i].Power[spec.Sub]
	}
	fit, err := regress.OLS(x, y)
	if err != nil {
		return nil, fmt.Errorf("core: training %s: %w", spec.Name, err)
	}
	return &SeqModel{Spec: spec, Coef: fit.Coef, Fit: fit}, nil
}

// Trace returns measured and modeled series over a dataset.
func (m *SeqModel) Trace(ds *align.Dataset) (measured, modeled []float64) {
	hist := metricsHistory(ds)
	measured = make([]float64, ds.Len())
	modeled = make([]float64, ds.Len())
	for i := range ds.Rows {
		measured[i] = ds.Rows[i].Power[m.Spec.Sub]
		modeled[i] = regress.Predict(m.Coef, m.Spec.Design(hist, i))
	}
	return measured, modeled
}

// Validate computes the Equation 6 average error over a dataset.
func (m *SeqModel) Validate(ds *align.Dataset) (float64, error) {
	if ds == nil || ds.Len() == 0 {
		return 0, ErrNoData
	}
	measured, modeled := m.Trace(ds)
	return stats.AverageError(modeled, measured)
}

// EWMA computes an exponentially weighted moving average of per-sample
// values with smoothing alpha in (0, 1]; larger alpha forgets faster.
func EWMA(values []float64, alpha float64) []float64 {
	out := make([]float64, len(values))
	if len(values) == 0 {
		return out
	}
	if alpha <= 0 {
		alpha = 0.01
	}
	if alpha > 1 {
		alpha = 1
	}
	acc := values[0]
	for i, v := range values {
		acc += alpha * (v - acc)
		out[i] = acc
	}
	return out
}

// DiskStandbySpec extends Equation 4 with history: an exponentially
// weighted recent-interrupt level whose decay matches the spindown
// timeout, letting the fit learn "no recent disk work ⇒ the spindle has
// stopped ⇒ shed the rotation floor". alpha ≈ samplePeriod/timeout.
func DiskStandbySpec(alpha float64) SeqSpec {
	return SeqSpec{
		Name: fmt.Sprintf("disk-standby (Eq.4 + EWMA %.2g)", alpha),
		Sub:  power.SubDisk,
		Design: func(hist []*Metrics, i int) []float64 {
			// Recompute the EWMA incrementally over the prefix. The
			// closure is called in ascending i by TrainSeq/Trace, so a
			// simple cache keyed on the slice identity would work, but
			// recomputing keeps the function pure; prefixes are short at
			// 1 Hz sampling.
			acc := 0.0
			if len(hist) > 0 {
				acc = sum(hist[0].DiskIntsPMC)
			}
			for j := 1; j <= i; j++ {
				acc += alpha * (sum(hist[j].DiskIntsPMC) - acc)
			}
			ints := sum(hist[i].DiskIntsPMC)
			d := mean(hist[i].DMAPMC)
			// saturate the recency feature so its scale is bounded.
			recency := acc / (acc + 0.01)
			return []float64{1, ints, ints * ints, d, recency}
		},
		Terms: []string{"const", "disk_ints_pmc", "disk_ints_pmc^2", "dma_pmc", "recent_activity"},
	}
}
