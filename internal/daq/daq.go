// Package daq models the paper's power-measurement apparatus: sense
// resistors in series with each subsystem's regulated supply, sampled by
// data-acquisition hardware in a separate workstation at ten thousand
// samples per second, then averaged for correlation with the 1 Hz
// performance-counter samples. Synchronization between the two machines
// follows the paper exactly: at each counter sample the target emits a
// byte on a serial port whose transmit line the DAQ records alongside
// the power channels, and the merge happens offline (internal/align).
//
// Because the DAQ is a separate instrument, it runs on its own clock
// with a parts-per-million rate error relative to the target — which is
// why the paper needs the sync pulse at all.
package daq

import (
	"math"

	"trickledown/internal/power"
	"trickledown/internal/sim"
	"trickledown/internal/telemetry"
)

// DAQ telemetry, summed across every instrument in the process. The
// sample and clip counters sit on the per-slice acquisition path, so
// each instrument accumulates them in plain locals and flushes one
// atomic add per closed window (and on Records) instead of per slice.
var (
	mSamples = telemetry.NewCounter("daq_samples_total",
		"per-channel ADC samples captured (aggregated per slice)")
	mClips = telemetry.NewCounter("daq_clips_total",
		"readings clamped to the ADC full-scale range (either rail)")
	mWindows = telemetry.NewCounter("daq_windows_total",
		"sync-to-sync averaging windows closed")
	mSyncsDropped = telemetry.NewCounter("daq_syncs_dropped_total",
		"sync edges lost to an injected serial-line fault")
)

// FaultInjector perturbs the instrument the way real measurement chains
// fail: a sense channel sticks, drifts or goes dead, and the serial sync
// line drops edges. Implementations (internal/faults) must be pure
// functions of their own pre-seeded state and the DAQ-clock timestamp,
// so a faulty run stays exactly as reproducible as a healthy one.
type FaultInjector interface {
	// PerturbReading returns the rail power as the (possibly faulty)
	// sensor chain delivers it to the ADC. A healthy chain returns r
	// unchanged.
	PerturbReading(daqSeconds float64, r power.Reading) power.Reading
	// DropSync reports whether the sync edge arriving at daqSeconds is
	// lost (the averaging window then stays open into the next interval).
	DropSync(daqSeconds float64) bool
}

// Config describes the acquisition hardware.
type Config struct {
	// SampleHz is the per-channel sampling rate (the paper's 10 kHz).
	SampleHz float64
	// NoiseStd is per-sample sensor noise in Watts.
	NoiseStd float64
	// FullScaleWatts and Bits define the ADC quantization grid.
	FullScaleWatts float64
	Bits           int
	// ClockSkewPPM is the DAQ clock's rate error relative to the target
	// system's clock, in parts per million.
	ClockSkewPPM float64
}

// DefaultConfig matches the paper's setup: 10 kHz, 12-bit converter with
// a 400 W full scale, modest sensor noise, and a realistic crystal skew.
func DefaultConfig() Config {
	return Config{
		SampleHz:       10000,
		NoiseStd:       0.35,
		FullScaleWatts: 400,
		Bits:           12,
		ClockSkewPPM:   40,
	}
}

// Record is the averaged power for one sync-to-sync window.
type Record struct {
	// DAQSeconds is the window-closing sync edge's timestamp on the
	// DAQ's own clock.
	DAQSeconds float64
	// Mean is the per-rail average over the window.
	Mean power.Reading
	// Samples is how many ADC samples the window averaged.
	Samples int64
}

// DAQ is the acquisition workstation.
type DAQ struct {
	cfg  Config
	rng  *sim.RNG
	step float64 // quantization step in Watts

	sum     power.Reading
	n       int64
	daqTime float64
	records []Record
	fault   FaultInjector

	// Pending telemetry, flushed per window rather than per slice.
	pendingSamples uint64
	pendingClips   uint64
}

// flushTelemetry publishes the batched per-slice counters.
func (d *DAQ) flushTelemetry() {
	if d.pendingSamples > 0 {
		mSamples.Add(d.pendingSamples)
		d.pendingSamples = 0
	}
	if d.pendingClips > 0 {
		mClips.Add(d.pendingClips)
		d.pendingClips = 0
	}
}

// SetFaultInjector installs a fault injector between the sense resistors
// and the ADC (nil restores the healthy instrument). Call it before the
// run; the injection points sit on the acquisition path itself.
func (d *DAQ) SetFaultInjector(f FaultInjector) { d.fault = f }

// New returns a DAQ with the given configuration and a private random
// stream split from parent. It panics on a non-positive sample rate or
// full scale, or fewer than 2 bits.
func New(cfg Config, parent *sim.RNG) *DAQ {
	if cfg.SampleHz <= 0 {
		panic("daq: non-positive sample rate")
	}
	if cfg.FullScaleWatts <= 0 || cfg.Bits < 2 {
		panic("daq: invalid ADC configuration")
	}
	return &DAQ{
		cfg:  cfg,
		rng:  parent.Split(),
		step: cfg.FullScaleWatts / float64(uint64(1)<<cfg.Bits),
	}
}

// Acquire integrates one target-clock slice of true rail power. The
// slice's ADC samples are statistically aggregated: the mean of k noisy
// samples is the truth plus noise shrunk by sqrt(k), quantized on the
// ADC grid.
func (d *DAQ) Acquire(sliceSec float64, truth power.Reading) {
	if sliceSec <= 0 {
		return
	}
	if d.fault != nil {
		truth = d.fault.PerturbReading(d.daqTime, truth)
	}
	k := d.cfg.SampleHz * sliceSec
	if k < 1 {
		k = 1
	}
	sigma := d.cfg.NoiseStd / math.Sqrt(k)
	for i, w := range truth {
		v := w + d.rng.Norm(0, sigma)
		d.sum[i] += d.quantize(v) * k
	}
	d.n += int64(k)
	d.pendingSamples += uint64(k)
	d.daqTime += sliceSec * (1 + d.cfg.ClockSkewPPM*1e-6)
}

// quantize snaps a reading onto the ADC grid, clamped to full scale.
func (d *DAQ) quantize(w float64) float64 {
	if w < 0 {
		w = 0
		d.pendingClips++
	} else if w > d.cfg.FullScaleWatts {
		w = d.cfg.FullScaleWatts
		d.pendingClips++
	}
	return math.Round(w/d.step) * d.step
}

// SyncPulse records a serial-port sync edge: the current averaging
// window closes and a Record is appended. Windows with no samples are
// dropped (back-to-back pulses). An injected serial fault can eat the
// edge, in which case the open window keeps accumulating into the next
// interval — exactly what a flaky sync line does to the real apparatus.
func (d *DAQ) SyncPulse() {
	d.flushTelemetry()
	if d.fault != nil && d.fault.DropSync(d.daqTime) {
		mSyncsDropped.Inc()
		return
	}
	if d.n == 0 {
		return
	}
	var mean power.Reading
	for i, s := range d.sum {
		mean[i] = s / float64(d.n)
	}
	d.records = append(d.records, Record{
		DAQSeconds: d.daqTime,
		Mean:       mean,
		Samples:    d.n,
	})
	mWindows.Inc()
	d.sum = power.Reading{}
	d.n = 0
}

// Records returns the closed windows in arrival order. It also flushes
// any telemetry batched since the last sync pulse, so a run that stops
// mid-window still reports every sample it acquired.
func (d *DAQ) Records() []Record {
	d.flushTelemetry()
	return d.records
}
