package daq

import (
	"math"
	"testing"

	"trickledown/internal/power"
	"trickledown/internal/sim"
)

func TestAcquireAndSync(t *testing.T) {
	d := New(DefaultConfig(), sim.NewRNG(1))
	truth := power.Reading{40, 20, 30, 33, 21.6}
	for i := 0; i < 1000; i++ { // one second of 1 ms slices
		d.Acquire(0.001, truth)
	}
	d.SyncPulse()
	recs := d.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	r := recs[0]
	if r.Samples != 10000 {
		t.Errorf("Samples = %d, want 10000", r.Samples)
	}
	for i, w := range truth {
		if math.Abs(r.Mean[i]-w) > 0.15 {
			t.Errorf("channel %d mean = %v, want ~%v", i, r.Mean[i], w)
		}
	}
}

func TestSyncWithoutSamplesDropped(t *testing.T) {
	d := New(DefaultConfig(), sim.NewRNG(2))
	d.SyncPulse()
	d.SyncPulse()
	if len(d.Records()) != 0 {
		t.Error("empty windows recorded")
	}
}

func TestWindowsIndependent(t *testing.T) {
	d := New(DefaultConfig(), sim.NewRNG(3))
	for i := 0; i < 500; i++ {
		d.Acquire(0.001, power.Reading{10, 10, 10, 10, 10})
	}
	d.SyncPulse()
	for i := 0; i < 500; i++ {
		d.Acquire(0.001, power.Reading{50, 50, 50, 50, 50})
	}
	d.SyncPulse()
	recs := d.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	if math.Abs(recs[0].Mean[0]-10) > 0.2 || math.Abs(recs[1].Mean[0]-50) > 0.2 {
		t.Errorf("window leakage: %v then %v", recs[0].Mean[0], recs[1].Mean[0])
	}
}

func TestQuantization(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoiseStd = 0 // expose the grid
	d := New(cfg, sim.NewRNG(4))
	step := cfg.FullScaleWatts / 4096
	d.Acquire(0.001, power.Reading{step * 10.4, 0, 0, 0, 0})
	d.SyncPulse()
	got := d.Records()[0].Mean[0]
	if math.Abs(got-step*10) > 1e-9 {
		t.Errorf("quantized = %v, want %v", got, step*10)
	}
}

func TestClamping(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoiseStd = 0
	d := New(cfg, sim.NewRNG(5))
	d.Acquire(0.001, power.Reading{-50, 999, 0, 0, 0})
	d.SyncPulse()
	r := d.Records()[0]
	if r.Mean[0] != 0 {
		t.Errorf("negative reading = %v", r.Mean[0])
	}
	if r.Mean[1] != cfg.FullScaleWatts {
		t.Errorf("overscale reading = %v", r.Mean[1])
	}
}

func TestClockSkew(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ClockSkewPPM = 1000 // exaggerate
	d := New(cfg, sim.NewRNG(6))
	for i := 0; i < 1000; i++ {
		d.Acquire(0.001, power.Reading{})
	}
	d.SyncPulse()
	got := d.Records()[0].DAQSeconds
	if math.Abs(got-1.001) > 1e-6 {
		t.Errorf("DAQ time = %v, want 1.001 (1s + 1000ppm)", got)
	}
}

func TestAcquireIgnoresBadSlice(t *testing.T) {
	d := New(DefaultConfig(), sim.NewRNG(7))
	d.Acquire(0, power.Reading{10, 10, 10, 10, 10})
	d.Acquire(-1, power.Reading{10, 10, 10, 10, 10})
	d.SyncPulse()
	if len(d.Records()) != 0 {
		t.Error("bad slices produced samples")
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	for name, cfg := range map[string]Config{
		"zero rate":  {SampleHz: 0, FullScaleWatts: 400, Bits: 12},
		"zero scale": {SampleHz: 1000, FullScaleWatts: 0, Bits: 12},
		"one bit":    {SampleHz: 1000, FullScaleWatts: 400, Bits: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			New(cfg, sim.NewRNG(1))
		}()
	}
}

func TestNoiseAveragesOut(t *testing.T) {
	// With 10k samples/s the per-second mean must be far tighter than the
	// per-sample noise.
	cfg := DefaultConfig()
	cfg.NoiseStd = 2.0
	d := New(cfg, sim.NewRNG(8))
	truth := power.Reading{33, 33, 33, 33, 33}
	for w := 0; w < 20; w++ {
		for i := 0; i < 1000; i++ {
			d.Acquire(0.001, truth)
		}
		d.SyncPulse()
	}
	var maxErr float64
	for _, r := range d.Records() {
		for i := range truth {
			if e := math.Abs(r.Mean[i] - truth[i]); e > maxErr {
				maxErr = e
			}
		}
	}
	if maxErr > 0.3 {
		t.Errorf("worst window error = %v, averaging not effective", maxErr)
	}
}

// stubFault sticks the CPU channel at a fixed value and eats every
// second sync edge.
type stubFault struct {
	stuckAt float64
	syncs   int
}

func (f *stubFault) PerturbReading(_ float64, r power.Reading) power.Reading {
	r[power.SubCPU] = f.stuckAt
	return r
}

func (f *stubFault) DropSync(float64) bool {
	f.syncs++
	return f.syncs%2 == 0
}

func TestFaultInjectorPerturbsAndDropsSyncs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoiseStd = 0
	d := New(cfg, sim.NewRNG(3))
	d.SetFaultInjector(&stubFault{stuckAt: 123})
	truth := power.Reading{40, 20, 30, 33, 21.6}
	for w := 0; w < 4; w++ {
		for i := 0; i < 1000; i++ {
			d.Acquire(0.001, truth)
		}
		d.SyncPulse()
	}
	recs := d.Records()
	// Edges 2 and 4 were eaten: edge 1 closes interval 1, edge 3 closes
	// intervals 2+3 in one double-length window, interval 4 stays open.
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2 (every second sync eaten)", len(recs))
	}
	for i, r := range recs {
		if math.Abs(r.Mean[power.SubCPU]-123) > 0.1 {
			t.Errorf("window %d CPU channel = %v, want stuck-at 123", i, r.Mean[power.SubCPU])
		}
		if math.Abs(r.Mean[power.SubMemory]-30) > 0.1 {
			t.Errorf("window %d Memory channel = %v, want untouched 30", i, r.Mean[power.SubMemory])
		}
	}
	if recs[1].Samples != 2*recs[0].Samples {
		t.Errorf("window after a dropped sync has %d samples, want %d (two intervals)",
			recs[1].Samples, 2*recs[0].Samples)
	}
}
