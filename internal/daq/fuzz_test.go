package daq

import (
	"math"
	"testing"

	"trickledown/internal/power"
	"trickledown/internal/sim"
)

// FuzzAcquire checks acquisition never produces out-of-range or
// non-finite window means for arbitrary bounded power inputs.
func FuzzAcquire(f *testing.F) {
	f.Add(uint64(1), 40.0, 100)
	f.Add(uint64(2), -5.0, 3)
	f.Add(uint64(3), 1e5, 50)
	f.Fuzz(func(t *testing.T, seed uint64, watts float64, slices int) {
		if slices < 1 || slices > 2000 {
			return
		}
		if math.IsNaN(watts) || math.IsInf(watts, 0) {
			return
		}
		cfg := DefaultConfig()
		d := New(cfg, sim.NewRNG(seed))
		truth := power.Reading{watts, watts / 2, watts / 3, watts / 4, watts / 5}
		for i := 0; i < slices; i++ {
			d.Acquire(0.001, truth)
		}
		d.SyncPulse()
		recs := d.Records()
		if len(recs) != 1 {
			t.Fatalf("records = %d", len(recs))
		}
		for ch, v := range recs[0].Mean {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("channel %d mean %v", ch, v)
			}
			if v < 0 || v > cfg.FullScaleWatts {
				t.Fatalf("channel %d mean %v outside ADC range", ch, v)
			}
		}
	})
}
