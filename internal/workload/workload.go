// Package workload provides statistical behaviour generators for the
// twelve workloads of the paper's evaluation: eight SPEC CPU 2000 codes
// (gcc, mcf, vortex, art, lucas, mesa, mgrid, wupwise), the two
// commercial server workloads (dbt-2, SPECjbb), the synthetic DiskLoad,
// and idle.
//
// A generator does not execute instructions; it produces, once per
// simulation slice, the *demand* its thread places on the machine:
// how much of the slice it wants the CPU, its fetch throughput, its
// cache/TLB miss intensity, and its file I/O. The CPU, OS and I/O models
// turn that demand into the architectural events the paper's models
// consume. Profiles are calibrated so the resulting subsystem power
// characterization reproduces the shape of the paper's Table 1/2
// (who is CPU-bound, who is memory-bound, who idles waiting for disk,
// who has high variance).
//
// SPEC workloads are run as homogeneous multi-instance combinations with
// staggered starts, the paper's method for sweeping utilization from one
// busy thread to saturation ("we stagger the start of each thread by a
// fixed time, usually 30s-60s").
package workload

import (
	"fmt"
	"sort"

	"trickledown/internal/sim"
)

// Class buckets workloads the way the paper's validation tables do.
type Class int

const (
	// ClassInteger marks workloads reported in Table 3 (integer average):
	// idle, gcc, mcf, vortex, dbt-2, SPECjbb, DiskLoad.
	ClassInteger Class = iota
	// ClassFP marks workloads reported in Table 4 (floating-point
	// average): art, lucas, mesa, mgrid, wupwise.
	ClassFP
)

func (c Class) String() string {
	if c == ClassFP {
		return "fp"
	}
	return "integer"
}

// Demand is what one software thread asks of the machine during one
// slice. Rates are per-thread and pre-SMT; the CPU model applies
// simultaneous-multithreading sharing when two threads run on one
// processor.
type Demand struct {
	// Active is the fraction of the slice the thread wants to execute
	// (the rest of the slice its hardware thread can be halted).
	Active float64
	// UopsPerCycle is the fetch throughput while active.
	UopsPerCycle float64
	// SpecActivity measures speculative issue/replay intensity that
	// consumes power but is invisible to the fetched-uop counter — the
	// paper's mcf pathology ("continuously searching for (and not
	// finding) ready instructions").
	SpecActivity float64
	// L2PerUop is L2 cache activity per uop (a power term only).
	L2PerUop float64
	// L3MissPerKuop is demand load misses per thousand fetched uops,
	// before hardware-prefetch coverage.
	L3MissPerKuop float64
	// DirtyEvictFrac is writeback bus transactions per demand miss.
	DirtyEvictFrac float64
	// Prefetchability in [0,1] says how stream-like the miss pattern is;
	// the hardware prefetcher converts that fraction of demand misses
	// into prefetch transactions when the bus has headroom.
	Prefetchability float64
	// TLBMissPerMuop is TLB misses per million uops.
	TLBMissPerMuop float64
	// UCPerMcycle is uncacheable (memory-mapped I/O) accesses per million
	// cycles while active.
	UCPerMcycle float64
	// WriteFrac is the write fraction of the thread's memory traffic.
	WriteFrac float64
	// MemLocality in [0,1] is the DRAM row-buffer locality of the
	// thread's access stream. Multiple interleaved streams (lucas,
	// mgrid, wupwise) and pointer-heavy codes (vortex) thrash row
	// buffers, forcing activations the bus-transaction count cannot
	// see — a source of the paper's FP memory-model underestimation.
	MemLocality float64
	// DiskReadBytes and DiskWriteBytes are file I/O issued this slice
	// (to the OS page cache, not directly to disk).
	DiskReadBytes  float64
	DiskWriteBytes float64
	// RandomIO marks the I/O pattern as random (OLTP-style small pages,
	// mostly missing the page cache, synchronous writes) rather than
	// sequential (dataset loads, page-cache flushes).
	RandomIO bool
	// NetRxBytes and NetTxBytes are network payload moved this slice;
	// the NIC DMAs both through main memory and raises coalesced
	// interrupts (the "Network" box of the paper's Figure 1).
	NetRxBytes float64
	NetTxBytes float64
	// Sync requests a page-cache flush (the DiskLoad sync() call).
	Sync bool
}

// Env carries the feedback a generator may react to, filled by the
// machine from the previous slice.
type Env struct {
	// BusUtil is the front-side-bus utilization in [0,1].
	BusUtil float64
	// DirtyBytes is the page cache's dirty-byte count.
	DirtyBytes float64
	// FlushActive reports whether a sync()-initiated writeback is still
	// draining to disk.
	FlushActive bool
}

// Generator produces one thread's demand stream.
type Generator interface {
	// Name returns the workload name.
	Name() string
	// Demand returns the thread's demand for the slice starting at t
	// seconds after the generator's own start.
	Demand(t float64, env Env, rng *sim.RNG) Demand
}

// Spec describes how to run a workload: how many instances, how they are
// staggered, and how to construct each instance.
type Spec struct {
	// Name is the workload name used throughout the tables.
	Name string
	// Class is the validation-table bucket.
	Class Class
	// Instances is the number of simultaneous single-threaded instances
	// (8 for the SPEC combinations: 4 processors x 2 hardware threads).
	Instances int
	// StaggerSec is the delay between instance starts.
	StaggerSec float64
	// DefaultDuration is the run length (seconds) used by the tables.
	DefaultDuration float64
	// Make constructs instance i (0-based).
	Make func(instance int, rng *sim.RNG) Generator
	// ChipsetDomainBias reproduces the paper's chipset measurement
	// artifact: the chipset rail is derived from multiple power domains
	// with a workload-dependent, non-deterministic coupling, which is
	// why the paper gives up and models chipset as a constant. The bias
	// offsets the measured (ground-truth) chipset power for this
	// workload.
	ChipsetDomainBias float64
}

// registry holds all known workloads.
var registry = map[string]Spec{}

func register(s Spec) {
	if _, dup := registry[s.Name]; dup {
		panic("workload: duplicate registration of " + s.Name)
	}
	registry[s.Name] = s
}

// ByName returns the spec for a registered workload.
func ByName(name string) (Spec, error) {
	s, ok := registry[name]
	if !ok {
		return Spec{}, fmt.Errorf("workload: unknown workload %q", name)
	}
	return s, nil
}

// Names returns every registered workload name, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ByClass returns the Table 1-ordered workloads of one validation class
// — the split behind the paper's Table 3 (integer) and Table 4
// (floating-point) and behind the per-class averages the conformance
// report mirrors them with.
func ByClass(c Class) []string {
	var out []string
	for _, name := range TableOrder() {
		if registry[name].Class == c {
			out = append(out, name)
		}
	}
	return out
}

// TableOrder returns the workloads in the paper's Table 1 row order.
func TableOrder() []string {
	return []string{
		"idle", "gcc", "mcf", "vortex", "art", "lucas", "mesa", "mgrid",
		"wupwise", "dbt-2", "specjbb", "diskload",
	}
}
