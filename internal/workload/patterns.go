// Arrival-pattern combinators: generators that wrap other generators to
// shape *when* and *how hard* a workload runs — the scenario axis
// ROADMAP item 3 names. A Diurnal envelope scales an inner workload
// through multi-period sinusoidal cycles with a seeded burst overlay; a
// Bursty gate switches it on and off with exponential dwell times; a
// Cohort places N tenant generators on one node and models their
// interference on the shared L3 and memory bus, feeding the per-tenant
// usage accounting that core's attribution splits node power with.
//
// All three are deterministic given the machine seed: randomness comes
// only from the per-thread RNG the machine passes to Demand, so wrapped
// runs keep the repo's byte-identical fixed-seed guarantee.
package workload

import (
	"fmt"
	"math"

	"trickledown/internal/sim"
)

// DiurnalPeriod is one sinusoidal component of a diurnal envelope.
type DiurnalPeriod struct {
	// PeriodSec is the cycle length in seconds (a simulated "day").
	PeriodSec float64
	// Amp is the amplitude added to the base load at the cycle peak.
	Amp float64
	// PhaseRad shifts the cycle; phase 0 starts at mid-ramp ascending,
	// +pi/2 starts at the peak.
	PhaseRad float64
}

// DiurnalConfig shapes a Diurnal envelope.
type DiurnalConfig struct {
	// Base is the mean load level in [0,1].
	Base float64
	// Periods are summed sinusoidal components (e.g. a day cycle plus a
	// shorter lunch-hour harmonic).
	Periods []DiurnalPeriod
	// BurstsPerSec is the expected arrival rate of load bursts
	// (a Poisson overlay); 0 disables bursts.
	BurstsPerSec float64
	// BurstLoad is the extra load a burst adds while active.
	BurstLoad float64
	// BurstMeanSec is the mean burst duration.
	BurstMeanSec float64
}

// Diurnal scales an inner generator's demand by a multi-period
// sinusoidal envelope with an optional seeded burst overlay. The
// envelope multiplies the inner demand's Active fraction and its I/O
// byte rates; per-uop intensity rates (cache misses, TLB misses) are a
// property of the code, not of the arrival rate, and pass through.
type Diurnal struct {
	inner Generator
	cfg   DiurnalConfig

	init      bool
	burstEnd  float64
	nextBurst float64
}

// NewDiurnal validates the config and wraps inner.
func NewDiurnal(inner Generator, cfg DiurnalConfig) (*Diurnal, error) {
	if inner == nil {
		return nil, fmt.Errorf("workload: diurnal needs an inner generator")
	}
	if cfg.Base < 0 || math.IsNaN(cfg.Base) || math.IsInf(cfg.Base, 0) {
		return nil, fmt.Errorf("workload: diurnal base %v invalid", cfg.Base)
	}
	for i, p := range cfg.Periods {
		if !(p.PeriodSec > 0) || math.IsInf(p.PeriodSec, 0) {
			return nil, fmt.Errorf("workload: diurnal period %d has invalid length %v", i, p.PeriodSec)
		}
	}
	if cfg.BurstsPerSec < 0 || cfg.BurstMeanSec < 0 {
		return nil, fmt.Errorf("workload: diurnal burst config invalid")
	}
	return &Diurnal{inner: inner, cfg: cfg}, nil
}

// Name implements Generator.
func (g *Diurnal) Name() string { return "diurnal:" + g.inner.Name() }

// Envelope returns the deterministic (burst-free) load factor at t,
// clamped to [0,1]. Periods shorter than the sample interval alias like
// any undersampled sinusoid but remain finite and clamped.
func (g *Diurnal) Envelope(t float64) float64 {
	load := g.cfg.Base
	for _, p := range g.cfg.Periods {
		load += p.Amp * math.Sin(2*math.Pi*t/p.PeriodSec+p.PhaseRad)
	}
	return clamp01(load)
}

// Demand implements Generator.
func (g *Diurnal) Demand(t float64, env Env, rng *sim.RNG) Demand {
	load := g.Envelope(t)
	if g.cfg.BurstsPerSec > 0 && g.cfg.BurstMeanSec > 0 {
		if !g.init {
			g.init = true
			g.nextBurst = t + rng.Exp(1/g.cfg.BurstsPerSec)
		}
		if t >= g.nextBurst {
			g.burstEnd = t + math.Max(rng.Exp(g.cfg.BurstMeanSec), 1e-3)
			g.nextBurst = g.burstEnd + math.Max(rng.Exp(1/g.cfg.BurstsPerSec), 1e-3)
		}
		if t < g.burstEnd {
			load = clamp01(load + g.cfg.BurstLoad)
		}
	}
	d := g.inner.Demand(t, env, rng)
	d.Active = clamp01(d.Active * load)
	d.DiskReadBytes *= load
	d.DiskWriteBytes *= load
	d.NetRxBytes *= load
	d.NetTxBytes *= load
	return d
}

// DiurnalSpec wraps a registered spec so every instance runs under its
// own copy of the diurnal envelope (instances share the config but not
// burst state, keeping streams independent).
func DiurnalSpec(inner Spec, cfg DiurnalConfig) (Spec, error) {
	if _, err := NewDiurnal(idleGen{}, cfg); err != nil {
		return Spec{}, err
	}
	out := inner
	out.Name = "diurnal:" + inner.Name
	innerMake := inner.Make
	out.Make = func(instance int, rng *sim.RNG) Generator {
		g, err := NewDiurnal(innerMake(instance, rng), cfg)
		if err != nil {
			return innerMake(instance, rng)
		}
		return g
	}
	return out, nil
}

// BurstyConfig shapes a Bursty on/off gate.
type BurstyConfig struct {
	// OnMeanSec and OffMeanSec are the exponential mean dwell times of
	// the on and off states.
	OnMeanSec  float64
	OffMeanSec float64
	// StartOn starts the gate open (a burst at t=0).
	StartOn bool
}

// Bursty gates an inner generator through a seeded two-state on/off
// process: during off dwells the thread demands nothing (its hardware
// thread halts), reproducing batch arrivals and think-time gaps at the
// node level.
type Bursty struct {
	inner Generator
	cfg   BurstyConfig

	init  bool
	on    bool
	until float64
}

// NewBursty validates the config and wraps inner.
func NewBursty(inner Generator, cfg BurstyConfig) (*Bursty, error) {
	if inner == nil {
		return nil, fmt.Errorf("workload: bursty needs an inner generator")
	}
	if !(cfg.OnMeanSec > 0) || !(cfg.OffMeanSec > 0) ||
		math.IsInf(cfg.OnMeanSec, 0) || math.IsInf(cfg.OffMeanSec, 0) {
		return nil, fmt.Errorf("workload: bursty dwell times must be positive, got on=%v off=%v", cfg.OnMeanSec, cfg.OffMeanSec)
	}
	return &Bursty{inner: inner, cfg: cfg}, nil
}

// Name implements Generator.
func (g *Bursty) Name() string { return "bursty:" + g.inner.Name() }

// Demand implements Generator.
func (g *Bursty) Demand(t float64, env Env, rng *sim.RNG) Demand {
	if !g.init {
		g.init = true
		g.on = g.cfg.StartOn
		g.until = t + g.dwell(rng)
	}
	for t >= g.until {
		g.on = !g.on
		g.until += g.dwell(rng)
	}
	if !g.on {
		return Demand{}
	}
	return g.inner.Demand(t, env, rng)
}

// dwell draws the next state duration, floored so a pathological draw
// cannot stall the flip loop.
func (g *Bursty) dwell(rng *sim.RNG) float64 {
	mean := g.cfg.OffMeanSec
	if g.on {
		mean = g.cfg.OnMeanSec
	}
	return math.Max(rng.Exp(mean), 1e-3)
}
