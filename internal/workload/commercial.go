package workload

import "trickledown/internal/sim"

// dbt2Gen models one database back-end worker of the dbt-2 (TPC-C
// approximation) workload. The paper's target system "did not have a
// sufficient number of hard disks to fully utilize the four Pentium IV
// processors", so the workload idles waiting for random disk I/O most of
// the time: CPU power barely above idle (48.3 W vs 38.4 W), memory and
// I/O marginally above idle, disk essentially at idle.
type dbt2Gen struct {
	thinkLeft float64 // seconds of simulated wait remaining
	burstLeft float64 // seconds of CPU burst remaining
	// Slow offered-load modulation (checkpointing, queue oscillation):
	// a piecewise multiplier on transaction think time.
	loadEnd float64
	loadMul float64
}

func (g *dbt2Gen) Name() string { return "dbt-2" }

// dbt2Base is the constant part of a transaction's demand, hoisted out
// of the per-slice path.
var dbt2Base = Demand{
	UopsPerCycle:   1.05,
	SpecActivity:   0.40,
	L2PerUop:       1.0,
	L3MissPerKuop:  1.9,
	DirtyEvictFrac: 0.40,
	TLBMissPerMuop: 150,
	UCPerMcycle:    30,
	WriteFrac:      0.40,
	MemLocality:    0.50,
}

func (g *dbt2Gen) Demand(t float64, env Env, rng *sim.RNG) Demand {
	const slice = 0.001
	d := dbt2Base
	// Alternate short transaction bursts with long waits for random I/O.
	if g.burstLeft > 0 {
		g.burstLeft -= slice
		d.Active = 1
		// Each transaction touches a handful of random 8 KB pages.
		d.RandomIO = true
		if rng.Bernoulli(0.35) {
			if rng.Bernoulli(0.7) {
				d.DiskReadBytes = 8192
			} else {
				d.DiskWriteBytes = 8192
			}
		}
		return d
	}
	if t >= g.loadEnd {
		g.loadEnd = t + 8 + rng.Float64()*20
		g.loadMul = 0.30 + rng.Float64()*2.4
	}
	g.thinkLeft -= slice
	if g.thinkLeft <= 0 {
		// Start the next transaction: ~4 ms of CPU, then wait again.
		g.burstLeft = 0.002 + rng.Exp(0.002)
		g.thinkLeft = (0.025 + rng.Exp(0.050)) * g.loadMul
	}
	d.Active = 0
	d.UopsPerCycle = 0
	return d
}

// jbbGen models one SPECjbb warehouse worker. SPECjbb ramps through
// increasing warehouse counts, so system load climbs in steps from light
// to saturated and back — the source of the workload's very large CPU
// power variance (26.2 W in Table 2) and its high sustained memory
// utilization at the peak ("61% and 84% of maximum for microprocessor
// and memory").
type jbbGen struct{}

func (jbbGen) Name() string { return "specjbb" }

// jbbLoad returns the offered load in [0.08, 1] for time t: a staircase
// of warehouse counts 1..8, each step held for jbbStepSec, then repeated.
func jbbLoad(t float64) float64 {
	const steps = 8
	step := int(t/jbbStepSec) % steps
	return 0.08 + 0.92*float64(step+1)/steps
}

// jbbStepSec is how long each warehouse count runs.
const jbbStepSec = 25.0

func (jbbGen) Demand(t float64, env Env, rng *sim.RNG) Demand {
	load := jbbLoad(t)
	return Demand{
		Active:          clamp01(rng.Jitter(load*0.78, 0.05)),
		UopsPerCycle:    rng.Jitter(1.10, 0.04),
		SpecActivity:    0.45,
		L2PerUop:        1.0,
		L3MissPerKuop:   rng.Jitter(1.75, 0.06),
		DirtyEvictFrac:  0.40,
		Prefetchability: 0.30,
		TLBMissPerMuop:  90,
		UCPerMcycle:     5,
		WriteFrac:       0.38,
		MemLocality:     0.35,
	}
}

func init() {
	register(Spec{
		Name:              "dbt-2",
		Class:             ClassInteger,
		Instances:         8,
		StaggerSec:        5,
		DefaultDuration:   300,
		ChipsetDomainBias: 1.70,
		Make: func(instance int, rng *sim.RNG) Generator {
			return &dbt2Gen{thinkLeft: rng.Float64() * 0.05}
		},
	})
	register(Spec{
		Name:              "specjbb",
		Class:             ClassInteger,
		Instances:         8,
		StaggerSec:        0, // all warehouses managed by one JVM
		DefaultDuration:   400,
		ChipsetDomainBias: 0.05,
		Make: func(instance int, rng *sim.RNG) Generator {
			return jbbGen{}
		},
	})
}

// idleGen produces no demand: the OS halts the hardware thread and only
// the periodic timer interrupt wakes it.
type idleGen struct{}

func (idleGen) Name() string { return "idle" }

// idleBase is the timer tick's sliver of CPU, constant across slices.
var idleBase = Demand{
	Active:       0.004,
	UopsPerCycle: 0.6,
	SpecActivity: 0.05,
	L2PerUop:     0.5,
	UCPerMcycle:  2,
	WriteFrac:    0.3,
}

func (idleGen) Demand(t float64, env Env, rng *sim.RNG) Demand {
	// The OS timer tick itself costs a sliver of CPU.
	return idleBase
}

func init() {
	register(Spec{
		Name:              "idle",
		Class:             ClassInteger,
		Instances:         8,
		StaggerSec:        0,
		DefaultDuration:   120,
		ChipsetDomainBias: 1.85,
		Make: func(instance int, rng *sim.RNG) Generator {
			return idleGen{}
		},
	})
}

// diskLoadGen is the paper's synthetic disk workload: "Each instance of
// this workload creates a very large file (1GB). Then the contents of the
// file are overwritten. After about 100K pages have been modified, the
// sync() operating system call is made to force the modified pages to
// disk." The alternation between the in-memory overwrite phase and the
// sync-triggered flush phase produces the highest sustained memory, I/O
// and disk power of any workload (Table 1) and the oscillating traces of
// Figures 6 and 7.
type diskLoadGen struct {
	writtenBytes float64 // dirtied since last sync
	syncIssued   bool
	flushWait    float64 // seconds left blocked in sync()
	// Per-instance parameters, jittered so the eight instances'
	// write/sync cycles drift apart instead of synchronizing (which
	// would leave whole seconds with no disk activity at all).
	syncBytes float64
	dirtyRate float64
}

// diskLoadSyncBytes is the per-instance dirty threshold (~100K 4KB pages).
const diskLoadSyncBytes = 400e6

// diskLoadDirtyRate is the per-instance page-overwrite rate (bytes/s):
// store traffic into the OS page cache at memory speed, throttled by the
// compute between writes.
const diskLoadDirtyRate = 30e6

func (g *diskLoadGen) Name() string { return "diskload" }

// diskLoadFlushBase is the demand of a thread blocked in sync();
// diskLoadWriteBase the constant part of the overwrite phase (jittered
// fields overwritten per slice). Both hoisted off the per-slice path.
var (
	diskLoadFlushBase = Demand{
		Active:        0.06,
		UopsPerCycle:  0.7,
		SpecActivity:  0.1,
		L2PerUop:      0.6,
		L3MissPerKuop: 0.4,
		WriteFrac:     0.3,
	}
	diskLoadWriteBase = Demand{
		Active:          0.92,
		SpecActivity:    0.30,
		L2PerUop:        1.1,
		DirtyEvictFrac:  0.90, // overwriting whole pages: write-allocate + writeback
		Prefetchability: 0.60,
		TLBMissPerMuop:  70,
		UCPerMcycle:     10,
		WriteFrac:       0.75,
		MemLocality:     0.50,
	}
)

func (g *diskLoadGen) Demand(t float64, env Env, rng *sim.RNG) Demand {
	const slice = 0.001
	if g.flushWait > 0 {
		// Blocked inside sync() while the OS drains the page cache; the
		// disk flush is DMA, so the thread barely runs. sync() returns
		// after roughly this instance's share of the writeback drains, or
		// immediately once no flush is active at all.
		g.flushWait -= slice
		if g.flushWait <= 0 || !env.FlushActive {
			g.flushWait = 0
			g.writtenBytes = 0
			g.syncIssued = false
		}
		return diskLoadFlushBase
	}
	wrote := g.dirtyRate * slice * rng.Jitter(1, 0.1)
	g.writtenBytes += wrote
	d := diskLoadWriteBase
	d.UopsPerCycle = rng.Jitter(1.25, 0.04)
	d.L3MissPerKuop = rng.Jitter(1.75, 0.05)
	d.DiskWriteBytes = wrote
	if g.writtenBytes >= g.syncBytes && !g.syncIssued {
		d.Sync = true
		g.syncIssued = true
		// Expected own-share drain time: the array sustains ~140 MB/s
		// and typically serves a few concurrent flushers.
		g.flushWait = g.syncBytes / 35e6
	}
	return d
}

func init() {
	register(Spec{
		Name:              "diskload",
		Class:             ClassInteger,
		Instances:         8,
		StaggerSec:        8,
		DefaultDuration:   300,
		ChipsetDomainBias: 1.10,
		Make: func(instance int, rng *sim.RNG) Generator {
			return &diskLoadGen{
				syncBytes: rng.Jitter(diskLoadSyncBytes, 0.35),
				dirtyRate: rng.Jitter(diskLoadDirtyRate, 0.25),
			}
		},
	})
}
