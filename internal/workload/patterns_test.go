package workload

import (
	"math"
	"strings"
	"testing"

	"trickledown/internal/sim"
)

// fixedGen returns a constant demand, optionally over capacity.
type fixedGen struct {
	name string
	d    Demand
}

func (g fixedGen) Name() string                                   { return g.name }
func (g fixedGen) Demand(t float64, env Env, rng *sim.RNG) Demand { return g.d }

func busyDemand() Demand {
	return Demand{
		Active: 0.9, UopsPerCycle: 1.4, L3MissPerKuop: 1.2,
		DirtyEvictFrac: 0.3, Prefetchability: 0.7, MemLocality: 0.8,
		DiskReadBytes: 1024, NetRxBytes: 2048,
	}
}

func TestPatternEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		check func(t *testing.T)
	}{
		{"zero tenants rejected", func(t *testing.T) {
			c := NewCohort(CohortConfig{})
			if _, err := c.Generator(0); err == nil || !strings.Contains(err.Error(), "zero tenants") {
				t.Fatalf("Generator on empty cohort: %v", err)
			}
			if _, err := c.Spec("empty"); err == nil {
				t.Fatal("Spec on empty cohort accepted")
			}
		}},
		{"single tenant equals plain generator", func(t *testing.T) {
			c := NewCohort(CohortConfig{})
			if _, err := c.Add("solo", fixedGen{name: "solo", d: busyDemand()}); err != nil {
				t.Fatal(err)
			}
			g, err := c.Generator(0)
			if err != nil {
				t.Fatal(err)
			}
			plain := fixedGen{name: "solo", d: busyDemand()}
			rng := sim.NewRNG(1)
			for i := 0; i < 100; i++ {
				tt := float64(i) * 0.001
				if got, want := g.Demand(tt, Env{}, rng), plain.Demand(tt, Env{}, rng); got != want {
					t.Fatalf("interval %d: cohort %+v != plain %+v", i, got, want)
				}
			}
		}},
		{"burst at t=0", func(t *testing.T) {
			g, err := NewBursty(fixedGen{name: "x", d: busyDemand()}, BurstyConfig{
				OnMeanSec: 1, OffMeanSec: 1, StartOn: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if d := g.Demand(0, Env{}, sim.NewRNG(1)); d != busyDemand() {
				t.Fatalf("StartOn burst at t=0 gave %+v", d)
			}
			g2, err := NewBursty(fixedGen{name: "x", d: busyDemand()}, BurstyConfig{
				OnMeanSec: 1, OffMeanSec: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if d := g2.Demand(0, Env{}, sim.NewRNG(1)); d != (Demand{}) {
				t.Fatalf("off state at t=0 gave %+v", d)
			}
		}},
		{"diurnal period shorter than sample interval", func(t *testing.T) {
			g, err := NewDiurnal(fixedGen{name: "x", d: busyDemand()}, DiurnalConfig{
				Base:    0.5,
				Periods: []DiurnalPeriod{{PeriodSec: 1e-4, Amp: 10}},
			})
			if err != nil {
				t.Fatal(err)
			}
			rng := sim.NewRNG(1)
			for i := 0; i < 1000; i++ {
				d := g.Demand(float64(i)*0.001, Env{}, rng)
				if d.Active < 0 || d.Active > 1 || math.IsNaN(d.Active) {
					t.Fatalf("interval %d: Active %v out of [0,1]", i, d.Active)
				}
			}
		}},
		{"saturation clamping at demand 1.0", func(t *testing.T) {
			over := busyDemand()
			over.Active = 1.0
			c := NewCohort(CohortConfig{})
			for _, name := range []string{"a", "b", "c", "d"} {
				if _, err := c.Add(name, fixedGen{name: name, d: over}); err != nil {
					t.Fatal(err)
				}
			}
			gens := make([]Generator, 4)
			for i := range gens {
				g, err := c.Generator(i)
				if err != nil {
					t.Fatal(err)
				}
				gens[i] = g
			}
			rng := sim.NewRNG(1)
			for i := 0; i < 50; i++ {
				tt := float64(i) * 0.001
				for ti, g := range gens {
					d := g.Demand(tt, Env{}, rng)
					if d.Active > 1 || d.Active < 0 {
						t.Fatalf("tenant %d interval %d: Active %v escaped clamp", ti, i, d.Active)
					}
					if i > 1 && d.L3MissPerKuop <= over.L3MissPerKuop {
						t.Fatalf("tenant %d interval %d: no L3 interference (%v)", ti, i, d.L3MissPerKuop)
					}
				}
			}
			// Diurnal over an over-capacity inner stays clamped too.
			dg, err := NewDiurnal(fixedGen{name: "x", d: over}, DiurnalConfig{
				Base: 2.0, Periods: []DiurnalPeriod{{PeriodSec: 10, Amp: 5}},
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 100; i++ {
				if d := dg.Demand(float64(i)*0.1, Env{}, rng); d.Active > 1 {
					t.Fatalf("diurnal Active %v > 1", d.Active)
				}
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, tc.check)
	}
}

func TestDiurnalEnvelopeShape(t *testing.T) {
	g, err := NewDiurnal(fixedGen{name: "x", d: busyDemand()}, DiurnalConfig{
		Base:    0.5,
		Periods: []DiurnalPeriod{{PeriodSec: 100, Amp: 0.4, PhaseRad: math.Pi / 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak := g.Envelope(0); math.Abs(peak-0.9) > 1e-12 {
		t.Fatalf("peak envelope %v, want 0.9", peak)
	}
	if trough := g.Envelope(50); math.Abs(trough-0.1) > 1e-12 {
		t.Fatalf("trough envelope %v, want 0.1", trough)
	}
	if full := g.Envelope(100); math.Abs(full-0.9) > 1e-12 {
		t.Fatalf("full-cycle envelope %v, want 0.9", full)
	}
	// The envelope scales Active and I/O but not per-uop intensity.
	d := g.Demand(50, Env{}, sim.NewRNG(1))
	want := busyDemand()
	if math.Abs(d.Active-want.Active*0.1) > 1e-12 {
		t.Fatalf("trough Active %v", d.Active)
	}
	if d.L3MissPerKuop != want.L3MissPerKuop || d.UopsPerCycle != want.UopsPerCycle {
		t.Fatal("per-uop rates must pass through the envelope")
	}
	if math.Abs(d.DiskReadBytes-want.DiskReadBytes*0.1) > 1e-9 {
		t.Fatalf("trough disk bytes %v", d.DiskReadBytes)
	}
}

func TestDiurnalBurstOverlay(t *testing.T) {
	g, err := NewDiurnal(fixedGen{name: "x", d: busyDemand()}, DiurnalConfig{
		Base:         0.3,
		BurstsPerSec: 0.5, BurstLoad: 0.6, BurstMeanSec: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(3)
	base := busyDemand().Active * 0.3
	bursts := 0
	for i := 0; i < 20000; i++ {
		d := g.Demand(float64(i)*0.001, Env{}, rng)
		if d.Active > base+1e-9 {
			bursts++
		}
	}
	if bursts == 0 {
		t.Fatal("burst overlay never fired in 20s at 0.5 bursts/sec")
	}
}

func TestBurstyDwellStatistics(t *testing.T) {
	g, err := NewBursty(fixedGen{name: "x", d: busyDemand()}, BurstyConfig{
		OnMeanSec: 2, OffMeanSec: 2, StartOn: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(5)
	on := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if d := g.Demand(float64(i)*0.001, Env{}, rng); d.Active > 0 {
			on++
		}
	}
	if frac := float64(on) / n; frac < 0.3 || frac > 0.7 {
		t.Fatalf("on fraction %v, want ~0.5 for symmetric dwells", frac)
	}
}

func TestCohortInterferenceMonotoneInPressure(t *testing.T) {
	// The same probe tenant sees strictly more L3 misses as heavier
	// co-tenants are added alongside it.
	probeMiss := func(coTenants int) float64 {
		c := NewCohort(CohortConfig{})
		if _, err := c.Add("probe", fixedGen{name: "probe", d: busyDemand()}); err != nil {
			t.Fatal(err)
		}
		heavy := busyDemand()
		heavy.L3MissPerKuop = 4
		for i := 0; i < coTenants; i++ {
			if _, err := c.Add("co", fixedGen{name: "co", d: heavy}); err != nil {
				t.Fatal(err)
			}
		}
		gens := make([]Generator, c.Tenants())
		for i := range gens {
			g, err := c.Generator(i)
			if err != nil {
				t.Fatal(err)
			}
			gens[i] = g
		}
		rng := sim.NewRNG(1)
		var last float64
		for i := 0; i < 10; i++ {
			tt := float64(i) * 0.001
			for ti, g := range gens {
				d := g.Demand(tt, Env{}, rng)
				if ti == 0 {
					last = d.L3MissPerKuop
				}
			}
		}
		return last
	}
	alone := probeMiss(0)
	one := probeMiss(1)
	three := probeMiss(3)
	if alone != busyDemand().L3MissPerKuop {
		t.Fatalf("solo probe inflated: %v", alone)
	}
	if !(one > alone) || !(three > one) {
		t.Fatalf("interference not monotone: alone=%v one=%v three=%v", alone, one, three)
	}
}

func TestCohortUsageAccounting(t *testing.T) {
	c := NewCohort(CohortConfig{})
	if _, err := c.Add("a", fixedGen{name: "a", d: busyDemand()}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Add("b", fixedGen{name: "b", d: Demand{}}); err != nil {
		t.Fatal(err)
	}
	ga, _ := c.Generator(0)
	gb, _ := c.Generator(1)
	rng := sim.NewRNG(1)
	for i := 0; i < 100; i++ {
		tt := float64(i) * 0.001
		ga.Demand(tt, Env{}, rng)
		gb.Demand(tt, Env{}, rng)
	}
	u := c.Usage()
	if u[0].Name != "a" || u[1].Name != "b" {
		t.Fatalf("usage names %q %q", u[0].Name, u[1].Name)
	}
	if u[0].Intervals != 100 || u[1].Intervals != 100 {
		t.Fatalf("intervals %d %d", u[0].Intervals, u[1].Intervals)
	}
	if u[0].ActiveSum <= 0 || u[0].BusSum <= 0 || u[0].DiskBytes <= 0 {
		t.Fatalf("tenant a usage empty: %+v", u[0])
	}
	if u[1].ActiveSum != 0 || u[1].BusSum != 0 {
		t.Fatalf("idle tenant accrued usage: %+v", u[1])
	}
	if _, err := c.Add("late", fixedGen{}); err == nil {
		t.Fatal("Add after seal accepted")
	}
}

func TestPatternConstructorValidation(t *testing.T) {
	if _, err := NewDiurnal(nil, DiurnalConfig{}); err == nil {
		t.Fatal("nil inner accepted")
	}
	if _, err := NewDiurnal(fixedGen{}, DiurnalConfig{Periods: []DiurnalPeriod{{PeriodSec: 0}}}); err == nil {
		t.Fatal("zero period accepted")
	}
	if _, err := NewDiurnal(fixedGen{}, DiurnalConfig{Base: math.NaN()}); err == nil {
		t.Fatal("NaN base accepted")
	}
	if _, err := NewBursty(fixedGen{}, BurstyConfig{OnMeanSec: 0, OffMeanSec: 1}); err == nil {
		t.Fatal("zero dwell accepted")
	}
	c := NewCohort(CohortConfig{})
	if _, err := c.Add("", fixedGen{}); err == nil {
		t.Fatal("empty tenant name accepted")
	}
}
