package workload

import "trickledown/internal/sim"

// netloadGen is an extension beyond the paper's evaluation set: a
// web/streaming server workload exercising the network box of the
// paper's Figure 1 (the one subsystem path its workloads leave idle —
// "this workload does not require network clients"). Each instance
// serves bursts of requests: moderate CPU per request, small receive
// payloads, large transmit payloads DMA'd from the page cache, and
// coalesced NIC completion interrupts. It exists to show the
// trickle-down I/O model generalizes to non-disk DMA sources.
type netloadGen struct {
	burstLeft float64 // seconds left in the current service burst
	idleLeft  float64 // seconds left waiting for requests
}

// Per-instance service rates.
const (
	netTxPerSec = 11e6 // bytes/s transmitted while serving
	netRxPerSec = 1.2e6
)

func (g *netloadGen) Name() string { return "netload" }

// netloadBase is the constant part of a request's demand, hoisted out of
// the per-slice path.
var netloadBase = Demand{
	UopsPerCycle:    1.15,
	SpecActivity:    0.40,
	L2PerUop:        0.9,
	L3MissPerKuop:   1.1,
	DirtyEvictFrac:  0.35,
	Prefetchability: 0.40,
	TLBMissPerMuop:  80,
	UCPerMcycle:     20,
	WriteFrac:       0.35,
	MemLocality:     0.55,
}

func (g *netloadGen) Demand(t float64, env Env, rng *sim.RNG) Demand {
	const slice = 0.001
	d := netloadBase
	if g.burstLeft > 0 {
		g.burstLeft -= slice
		d.Active = 0.9
		d.NetTxBytes = netTxPerSec * slice * rng.Jitter(1, 0.2)
		d.NetRxBytes = netRxPerSec * slice * rng.Jitter(1, 0.2)
		return d
	}
	g.idleLeft -= slice
	if g.idleLeft <= 0 {
		// Next request batch: serve for a while, then wait briefly.
		g.burstLeft = 0.010 + rng.Exp(0.025)
		g.idleLeft = 0.004 + rng.Exp(0.012)
	}
	d.Active = 0.02 // interrupt handling between bursts
	d.UopsPerCycle = 0.7
	return d
}

func init() {
	register(Spec{
		Name:              "netload",
		Class:             ClassInteger,
		Instances:         8,
		StaggerSec:        5,
		DefaultDuration:   240,
		ChipsetDomainBias: 1.20,
		Make: func(instance int, rng *sim.RNG) Generator {
			return &netloadGen{idleLeft: rng.Float64() * 0.02}
		},
	})
}
