package workload

import (
	"fmt"

	"trickledown/internal/sim"
)

// CohortConfig tunes the shared-resource interference model of a
// tenant cohort. The zero value selects the defaults in brackets.
type CohortConfig struct {
	// L3Sensitivity is the maximum fractional inflation of a tenant's
	// L3 miss rate at saturating co-tenant pressure [0.6]: co-tenants
	// evict each other's lines from the shared last-level cache.
	L3Sensitivity float64
	// BusSensitivity is the maximum fractional inflation of writeback
	// (dirty-evict) bus transactions [0.3]: contended capacity turns
	// over dirty lines faster.
	BusSensitivity float64
	// PressureScale is the co-tenant pressure (summed demand L3 misses
	// per kilocycle) at which interference reaches half its maximum
	// [2.0] — a Michaelis-Menten saturation, so inflation never
	// diverges however many tenants pile on.
	PressureScale float64
}

func (c CohortConfig) withDefaults() CohortConfig {
	if c.L3Sensitivity == 0 {
		c.L3Sensitivity = 0.6
	}
	if c.BusSensitivity == 0 {
		c.BusSensitivity = 0.3
	}
	if c.PressureScale == 0 {
		c.PressureScale = 2.0
	}
	return c
}

// TenantUsage accumulates one tenant's post-interference demand — its
// share of each subsystem's driving events, in the integrals core's
// per-tenant attribution divides by. All sums are per recorded
// interval (one machine slice each).
type TenantUsage struct {
	// Name is the tenant label.
	Name string
	// Intervals counts demand calls folded in.
	Intervals int64
	// ActiveSum integrates the Active fraction (unhalted time, the
	// paper's %Active CPU driver).
	ActiveSum float64
	// UopSum integrates Active×UopsPerCycle (fetched uops, Eq. 2).
	UopSum float64
	// L3MissSum integrates demand L3 misses per kilocycle.
	L3MissSum float64
	// BusSum integrates miss+writeback bus transactions per kilocycle
	// (the Eq. 4/5 memory driver).
	BusSum float64
	// DiskBytes and NetBytes integrate I/O traffic (the interrupt-rate
	// drivers of Eq. 3/7).
	DiskBytes float64
	NetBytes  float64
}

// Cohort places N tenant generators on one node and models their
// interference on the shared L3 and memory bus: each tenant's miss and
// writeback rates inflate with the *previous* interval's co-tenant
// pressure (a one-slice-lagged feedback, like the machine's bus-
// utilization environment), so the result is independent of the order
// the machine steps threads within a slice.
//
// A Cohort instance is the shared state of exactly one node: build one
// Cohort per machine. Its tenant generators are stepped by that single
// machine's (single-threaded) slice loop, so no locking is needed even
// when many nodes step in parallel cluster shards.
type Cohort struct {
	cfg    CohortConfig
	names  []string
	gens   []Generator
	sealed bool

	started bool
	curT    float64
	// prev holds each tenant's pressure from the last completed
	// interval; cur fills during the current one.
	prev      []float64
	cur       []float64
	prevTotal float64

	usage []TenantUsage
}

// NewCohort creates an empty cohort.
func NewCohort(cfg CohortConfig) *Cohort {
	return &Cohort{cfg: cfg.withDefaults()}
}

// Add registers a tenant and returns its index. Tenants must all be
// added before the first Generator call.
func (c *Cohort) Add(name string, gen Generator) (int, error) {
	if c.sealed {
		return 0, fmt.Errorf("workload: cohort sealed; add tenants before building generators")
	}
	if name == "" || gen == nil {
		return 0, fmt.Errorf("workload: cohort tenant needs a name and a generator")
	}
	c.names = append(c.names, name)
	c.gens = append(c.gens, gen)
	return len(c.gens) - 1, nil
}

// Tenants returns the tenant count.
func (c *Cohort) Tenants() int { return len(c.gens) }

// Generator returns tenant i's generator, sealing the cohort.
func (c *Cohort) Generator(i int) (Generator, error) {
	if len(c.gens) == 0 {
		return nil, fmt.Errorf("workload: cohort has zero tenants")
	}
	if i < 0 || i >= len(c.gens) {
		return nil, fmt.Errorf("workload: cohort tenant %d out of range [0,%d)", i, len(c.gens))
	}
	c.seal()
	return &cohortTenant{c: c, i: i}, nil
}

// Spec bridges the cohort into the machine constructors: instance i is
// tenant i, all starting at t=0 (tenants share the node for the whole
// run). The returned spec is bound to this cohort's shared state —
// place it on exactly one machine.
func (c *Cohort) Spec(name string) (Spec, error) {
	if len(c.gens) == 0 {
		return Spec{}, fmt.Errorf("workload: cohort has zero tenants")
	}
	c.seal()
	return Spec{
		Name:            name,
		Class:           ClassInteger,
		Instances:       len(c.gens),
		StaggerSec:      0,
		DefaultDuration: 60,
		Make: func(instance int, rng *sim.RNG) Generator {
			g, err := c.Generator(instance)
			if err != nil {
				return idleGen{}
			}
			return g
		},
	}, nil
}

// Usage returns a copy of the per-tenant usage accumulators.
func (c *Cohort) Usage() []TenantUsage {
	out := make([]TenantUsage, len(c.usage))
	copy(out, c.usage)
	return out
}

func (c *Cohort) seal() {
	if c.sealed {
		return
	}
	c.sealed = true
	n := len(c.gens)
	c.prev = make([]float64, n)
	c.cur = make([]float64, n)
	c.usage = make([]TenantUsage, n)
	for i, name := range c.names {
		c.usage[i].Name = name
	}
}

// rotate advances the interference state when the first tenant of a new
// interval arrives: the just-completed interval's pressures become the
// visible "previous interval" for everyone.
func (c *Cohort) rotate(t float64) {
	if c.started && t <= c.curT {
		return
	}
	if c.started {
		copy(c.prev, c.cur)
		c.prevTotal = 0
		for _, p := range c.prev {
			c.prevTotal += p
		}
	}
	c.started = true
	c.curT = t
	for i := range c.cur {
		c.cur[i] = 0
	}
}

// pressure scores how hard one tenant leans on the shared L3/bus:
// demand misses per kilocycle, writebacks included.
func pressure(d *Demand) float64 {
	return d.Active * d.UopsPerCycle * d.L3MissPerKuop * (1 + d.DirtyEvictFrac)
}

// cohortTenant is one tenant's view of the shared cohort.
type cohortTenant struct {
	c *Cohort
	i int
}

// Name implements Generator.
func (w *cohortTenant) Name() string { return "tenant:" + w.c.names[w.i] }

// Demand implements Generator: the inner tenant's demand with shared-
// cache and bus interference applied as a function of last interval's
// co-tenant pressure.
func (w *cohortTenant) Demand(t float64, env Env, rng *sim.RNG) Demand {
	c := w.c
	c.rotate(t)
	d := c.gens[w.i].Demand(t, env, rng)

	other := c.prevTotal - c.prev[w.i]
	if other < 0 {
		other = 0
	}
	// Saturating interference factor in [0,1): 0 when running alone
	// (single tenant ≡ plain generator, bit for bit).
	f := other / (other + c.cfg.PressureScale)
	if f > 0 {
		d.L3MissPerKuop *= 1 + c.cfg.L3Sensitivity*f
		d.DirtyEvictFrac *= 1 + c.cfg.BusSensitivity*f
		// Interleaved miss streams defeat the stream prefetcher and
		// thrash DRAM row buffers.
		d.Prefetchability *= 1 - 0.5*f
		d.MemLocality *= 1 - 0.5*f
	}
	// Saturation clamp: interference never pushes demand past the
	// machine's capacity.
	d.Active = clamp01(d.Active)

	c.cur[w.i] = pressure(&d)
	u := &c.usage[w.i]
	u.Intervals++
	u.ActiveSum += d.Active
	u.UopSum += d.Active * d.UopsPerCycle
	miss := d.Active * d.UopsPerCycle * d.L3MissPerKuop
	u.L3MissSum += miss
	u.BusSum += miss * (1 + d.DirtyEvictFrac)
	u.DiskBytes += d.DiskReadBytes + d.DiskWriteBytes
	u.NetBytes += d.NetRxBytes + d.NetTxBytes
	return d
}

// Reset clears the interference state and usage accumulators (for
// reusing a cohort across runs is intentionally NOT supported; Reset
// exists for tests that replay the same cohort from t=0).
func (c *Cohort) Reset() {
	c.started = false
	c.curT = 0
	c.prevTotal = 0
	for i := range c.prev {
		c.prev[i] = 0
		c.cur[i] = 0
	}
	for i := range c.usage {
		name := c.usage[i].Name
		c.usage[i] = TenantUsage{Name: name}
	}
}
