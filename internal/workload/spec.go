package workload

import (
	"math"

	"trickledown/internal/sim"
)

// specParams is the steady-state per-thread signature of one SPEC CPU
// 2000 workload. Values are calibrated so the simulated server reproduces
// the paper's Table 1 subsystem power characterization: which codes are
// CPU-bound (gcc, vortex, mesa), which saturate the memory bus (lucas,
// mgrid, wupwise), and mcf's low-fetch/high-speculation pathology.
type specParams struct {
	upc   float64 // fetched uops per cycle while active
	spec  float64 // speculative issue activity (power-only)
	l2    float64 // L2 accesses per uop (power-only)
	mpku  float64 // L3 demand load misses per kilo-uop
	evict float64 // writeback transactions per demand miss
	pf    float64 // prefetchability of the miss stream, 0..1
	loc   float64 // DRAM row-buffer locality, 0..1
	tlb   float64 // TLB misses per million uops
	uc    float64 // uncacheable accesses per Mcycle
	wf    float64 // write fraction of memory traffic
	// initReadMB is the dataset loaded from disk at program start ("the
	// only access to other subsystems by these workloads occurs during
	// the loading of the data set at program initialization").
	initReadMB float64
}

// phaseFunc modulates a workload's demand over time. It returns
// multipliers for activity, fetch throughput and L3 miss rate.
type phaseFunc func(t float64, g *specGen) (actMul, upcMul, missMul float64)

// specGen generates demand for one instance of a SPEC workload.
type specGen struct {
	name  string
	p     specParams
	phase phaseFunc
	rng   *sim.RNG
	initT float64 // seconds spent loading the dataset
	// initDemand and baseDemand are precomputed at construction: the
	// dataset-load demand is fully constant and the steady-state demand
	// is constant in everything but the phase/jitter fields, so building
	// them field-by-field every millisecond slice was pure overhead.
	initDemand Demand
	baseDemand Demand
	// piecewise-phase state (gcc-style workloads)
	segEnd         float64
	segAct, segUpc float64
	segMiss        float64
}

// initReadRate is the sustained rate (bytes/s) at which a starting SPEC
// instance reads its dataset.
const initReadRate = 60e6

func newSpecGen(name string, p specParams, phase phaseFunc, rng *sim.RNG) *specGen {
	g := &specGen{name: name, p: p, phase: phase, rng: rng}
	if p.initReadMB > 0 {
		g.initT = p.initReadMB * 1e6 / initReadRate
	}
	// Dataset load: thread mostly blocked on I/O, modest CPU use.
	g.initDemand = Demand{
		Active:         0.25,
		UopsPerCycle:   0.8,
		SpecActivity:   0.1,
		L2PerUop:       0.5,
		L3MissPerKuop:  0.5,
		DirtyEvictFrac: 0.3,
		TLBMissPerMuop: p.tlb,
		UCPerMcycle:    p.uc + 10,
		WriteFrac:      0.6, // filling memory with the dataset
		MemLocality:    0.8, // sequential fill
		DiskReadBytes:  initReadRate * 0.001,
	}
	// Steady state: the phase- and jitter-driven fields are overwritten
	// per slice.
	g.baseDemand = Demand{
		L2PerUop:        p.l2,
		DirtyEvictFrac:  p.evict,
		Prefetchability: p.pf,
		TLBMissPerMuop:  p.tlb,
		UCPerMcycle:     p.uc,
		WriteFrac:       p.wf,
		MemLocality:     p.loc,
	}
	return g
}

func (g *specGen) Name() string { return g.name }

func (g *specGen) Demand(t float64, env Env, rng *sim.RNG) Demand {
	p := g.p
	if t < g.initT {
		return g.initDemand
	}
	actMul, upcMul, missMul := 1.0, 1.0, 1.0
	if g.phase != nil {
		actMul, upcMul, missMul = g.phase(t-g.initT, g)
	}
	d := g.baseDemand
	d.Active = clamp01(0.985 * actMul)
	d.UopsPerCycle = rng.Jitter(p.upc*upcMul, 0.03)
	d.SpecActivity = rng.Jitter(p.spec*upcMul, 0.05)
	d.L3MissPerKuop = rng.Jitter(p.mpku*missMul, 0.05)
	return d
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// piecewisePhase implements gcc-style behaviour: the workload wanders
// through compilation units with distinct front-end and memory
// signatures, which is what gives gcc its large CPU and memory power
// variance in Table 2.
func piecewisePhase(minLen, maxLen, actLo, actHi, upcLo, upcHi, missLo, missHi float64) phaseFunc {
	return func(t float64, g *specGen) (float64, float64, float64) {
		if t >= g.segEnd {
			g.segEnd = t + minLen + g.rng.Float64()*(maxLen-minLen)
			g.segAct = actLo + g.rng.Float64()*(actHi-actLo)
			g.segUpc = upcLo + g.rng.Float64()*(upcHi-upcLo)
			g.segMiss = missLo + g.rng.Float64()*(missHi-missLo)
		}
		return g.segAct, g.segUpc, g.segMiss
	}
}

// sinePhase implements slow periodic behaviour (mcf's pointer-chasing
// phases, mgrid's multigrid sweeps).
func sinePhase(period, upcAmp, missAmp float64) phaseFunc {
	return func(t float64, g *specGen) (float64, float64, float64) {
		s := math.Sin(2 * math.Pi * t / period)
		return 1, 1 + upcAmp*s, 1 + missAmp*s
	}
}

// flatPhase is steady-state behaviour (art's near-zero variance).
func flatPhase() phaseFunc {
	return func(t float64, g *specGen) (float64, float64, float64) { return 1, 1, 1 }
}

// specSpec builds a Spec for an 8-instance staggered SPEC combination.
func specSpec(name string, class Class, bias float64, p specParams, mkPhase func() phaseFunc) Spec {
	return Spec{
		Name:              name,
		Class:             class,
		Instances:         8,
		StaggerSec:        30,
		DefaultDuration:   390,
		ChipsetDomainBias: bias,
		Make: func(instance int, rng *sim.RNG) Generator {
			return newSpecGen(name, p, mkPhase(), rng)
		},
	}
}

func init() {
	register(specSpec("gcc", ClassInteger, 1.45, specParams{
		upc: 1.35, spec: 0.45, l2: 1.0, mpku: 0.62,
		evict: 0.35, pf: 0.35, loc: 0.45, tlb: 40, uc: 2, wf: 0.35, initReadMB: 60,
	}, func() phaseFunc { return piecewisePhase(3, 8, 0.68, 1.0, 0.45, 1.55, 0.35, 2.3) }))

	register(specSpec("mcf", ClassInteger, 1.30, specParams{
		upc: 0.34, spec: 1.90, l2: 1.4, mpku: 4.20,
		evict: 0.40, pf: 0.55, loc: 0.50, tlb: 120, uc: 2, wf: 0.32, initReadMB: 190,
	}, func() phaseFunc { return sinePhase(97, 0.45, 0.35) }))

	register(specSpec("vortex", ClassInteger, -1.20, specParams{
		upc: 1.55, spec: 0.55, l2: 1.1, mpku: 0.55,
		evict: 0.35, pf: 0.30, loc: 0.25, tlb: 60, uc: 2, wf: 0.38, initReadMB: 70,
	}, func() phaseFunc { return piecewisePhase(5, 12, 0.94, 1.0, 0.85, 1.15, 0.7, 1.4) }))

	register(specSpec("art", ClassFP, 0.15, specParams{
		upc: 1.05, spec: 0.50, l2: 0.9, mpku: 0.90,
		evict: 0.40, pf: 0.70, loc: 0.45, tlb: 15, uc: 1, wf: 0.35, initReadMB: 20,
	}, func() phaseFunc { return flatPhase() }))

	register(specSpec("lucas", ClassFP, 0.50, specParams{
		upc: 0.45, spec: 0.15, l2: 0.5, mpku: 3.60,
		evict: 0.50, pf: 0.90, loc: 0.15, tlb: 25, uc: 1, wf: 0.52, initReadMB: 130,
	}, func() phaseFunc { return sinePhase(61, 0.20, 0.10) }))

	register(specSpec("mesa", ClassFP, -1.65, specParams{
		upc: 1.38, spec: 0.35, l2: 0.9, mpku: 0.58,
		evict: 0.35, pf: 0.45, loc: 0.45, tlb: 20, uc: 1, wf: 0.35, initReadMB: 25,
	}, func() phaseFunc { return sinePhase(41, 0.08, 0.15) }))

	register(specSpec("mgrid", ClassFP, 0.05, specParams{
		upc: 0.75, spec: 0.20, l2: 0.6, mpku: 2.15,
		evict: 0.50, pf: 0.85, loc: 0.20, tlb: 18, uc: 1, wf: 0.50, initReadMB: 60,
	}, func() phaseFunc { return sinePhase(53, 0.06, 0.06) }))

	register(specSpec("wupwise", ClassFP, -0.15, specParams{
		upc: 1.36, spec: 0.40, l2: 0.8, mpku: 1.30,
		evict: 0.45, pf: 0.80, loc: 0.20, tlb: 22, uc: 1, wf: 0.46, initReadMB: 80,
	}, func() phaseFunc { return sinePhase(71, 0.22, 0.15) }))
}
