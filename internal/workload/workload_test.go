package workload

import (
	"testing"

	"trickledown/internal/sim"
)

func TestRegistryComplete(t *testing.T) {
	want := TableOrder()
	if len(want) != 12 {
		t.Fatalf("TableOrder has %d workloads, want 12", len(want))
	}
	for _, name := range want {
		s, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if s.Name != name {
			t.Errorf("spec name %q != %q", s.Name, name)
		}
		if s.Instances <= 0 {
			t.Errorf("%s: no instances", name)
		}
		if s.DefaultDuration <= 0 {
			t.Errorf("%s: no default duration", name)
		}
		if s.Make == nil {
			t.Errorf("%s: nil Make", name)
		}
	}
	// Names includes the paper's 12 plus extension workloads.
	if len(Names()) < 13 {
		t.Errorf("Names() has %d entries, want >=13", len(Names()))
	}
	if _, err := ByName("netload"); err != nil {
		t.Errorf("netload extension missing: %v", err)
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("doom3"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestClassBuckets(t *testing.T) {
	fp := map[string]bool{"art": true, "lucas": true, "mesa": true, "mgrid": true, "wupwise": true}
	for _, name := range TableOrder() {
		s, _ := ByName(name)
		if fp[name] && s.Class != ClassFP {
			t.Errorf("%s should be FP", name)
		}
		if !fp[name] && s.Class != ClassInteger {
			t.Errorf("%s should be integer", name)
		}
	}
	if ClassFP.String() != "fp" || ClassInteger.String() != "integer" {
		t.Error("Class.String broken")
	}
}

// demandValid checks structural sanity of a Demand.
func demandValid(t *testing.T, name string, d Demand) {
	t.Helper()
	if d.Active < 0 || d.Active > 1 {
		t.Fatalf("%s: Active = %v out of [0,1]", name, d.Active)
	}
	if d.UopsPerCycle < 0 || d.UopsPerCycle > 3 {
		t.Fatalf("%s: UopsPerCycle = %v out of [0,3]", name, d.UopsPerCycle)
	}
	for what, v := range map[string]float64{
		"SpecActivity": d.SpecActivity, "L2PerUop": d.L2PerUop,
		"L3MissPerKuop": d.L3MissPerKuop, "DirtyEvictFrac": d.DirtyEvictFrac,
		"TLBMissPerMuop": d.TLBMissPerMuop, "UCPerMcycle": d.UCPerMcycle,
		"DiskReadBytes": d.DiskReadBytes, "DiskWriteBytes": d.DiskWriteBytes,
		"NetRxBytes": d.NetRxBytes, "NetTxBytes": d.NetTxBytes,
	} {
		if v < 0 {
			t.Fatalf("%s: %s = %v negative", name, what, v)
		}
	}
	if d.Prefetchability < 0 || d.Prefetchability > 1 {
		t.Fatalf("%s: Prefetchability = %v", name, d.Prefetchability)
	}
	if d.WriteFrac < 0 || d.WriteFrac > 1 {
		t.Fatalf("%s: WriteFrac = %v", name, d.WriteFrac)
	}
}

func TestAllGeneratorsProduceValidDemand(t *testing.T) {
	for _, name := range Names() {
		s, _ := ByName(name)
		rng := sim.NewRNG(1)
		g := s.Make(0, rng)
		if g.Name() != name {
			t.Errorf("%s: generator Name() = %q", name, g.Name())
		}
		var env Env
		for i := 0; i < 200000; i++ { // 200 simulated seconds
			d := g.Demand(float64(i)*0.001, env, rng)
			demandValid(t, name, d)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, name := range Names() {
		s, _ := ByName(name)
		g1 := s.Make(0, sim.NewRNG(7))
		g2 := s.Make(0, sim.NewRNG(7))
		r1, r2 := sim.NewRNG(9), sim.NewRNG(9)
		for i := 0; i < 5000; i++ {
			t1 := float64(i) * 0.001
			d1 := g1.Demand(t1, Env{}, r1)
			d2 := g2.Demand(t1, Env{}, r2)
			if d1 != d2 {
				t.Errorf("%s: nondeterministic at slice %d: %+v vs %+v", name, i, d1, d2)
				break
			}
		}
	}
}

func TestIdleIsIdle(t *testing.T) {
	s, _ := ByName("idle")
	rng := sim.NewRNG(1)
	g := s.Make(0, rng)
	d := g.Demand(1, Env{}, rng)
	if d.Active > 0.02 {
		t.Errorf("idle Active = %v", d.Active)
	}
	if d.DiskReadBytes != 0 || d.DiskWriteBytes != 0 {
		t.Error("idle issues disk I/O")
	}
}

func TestSpecInitPhaseReadsDataset(t *testing.T) {
	s, _ := ByName("mcf")
	rng := sim.NewRNG(1)
	g := s.Make(0, rng)
	d := g.Demand(0.5, Env{}, rng)
	if d.DiskReadBytes == 0 {
		t.Error("mcf init phase issues no disk reads")
	}
	if d.Active > 0.5 {
		t.Errorf("mcf init phase Active = %v, should be I/O bound", d.Active)
	}
	// Well past init the reads must stop.
	d = g.Demand(100, Env{}, rng)
	if d.DiskReadBytes != 0 {
		t.Error("mcf steady state still reading dataset")
	}
	if d.Active < 0.9 {
		t.Errorf("mcf steady state Active = %v", d.Active)
	}
}

func TestMcfIsLowFetchHighSpec(t *testing.T) {
	mcf := steadyDemand(t, "mcf")
	gcc := steadyDemand(t, "gcc")
	if mcf.UopsPerCycle >= gcc.UopsPerCycle/2 {
		t.Errorf("mcf upc %v should be far below gcc %v", mcf.UopsPerCycle, gcc.UopsPerCycle)
	}
	if mcf.SpecActivity <= 2*gcc.SpecActivity {
		t.Errorf("mcf spec %v should dwarf gcc %v", mcf.SpecActivity, gcc.SpecActivity)
	}
	if mcf.L3MissPerKuop <= gcc.L3MissPerKuop*2 {
		t.Errorf("mcf miss rate %v should dwarf gcc %v", mcf.L3MissPerKuop, gcc.L3MissPerKuop)
	}
}

// steadyDemand returns the workload's demand at t=120s (past init, with
// a fixed rng).
func steadyDemand(t *testing.T, name string) Demand {
	t.Helper()
	s, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(2)
	g := s.Make(0, rng)
	return g.Demand(120, Env{}, rng)
}

func TestDbt2MostlyBlocked(t *testing.T) {
	s, _ := ByName("dbt-2")
	rng := sim.NewRNG(3)
	g := s.Make(0, rng)
	active, n := 0.0, 60000
	var io float64
	for i := 0; i < n; i++ {
		d := g.Demand(float64(i)*0.001, Env{}, rng)
		active += d.Active
		io += d.DiskReadBytes + d.DiskWriteBytes
	}
	frac := active / float64(n)
	if frac < 0.03 || frac > 0.25 {
		t.Errorf("dbt-2 active fraction = %v, want disk-bound (0.03..0.25)", frac)
	}
	if io == 0 {
		t.Error("dbt-2 issued no disk I/O")
	}
}

func TestJbbRampsLoad(t *testing.T) {
	lo := jbbLoad(1)
	hi := jbbLoad(jbbStepSec*8 - 1)
	if lo > 0.2 {
		t.Errorf("first warehouse load = %v", lo)
	}
	if hi < 0.95 {
		t.Errorf("last warehouse load = %v", hi)
	}
	// Staircase repeats.
	if jbbLoad(1) != jbbLoad(jbbStepSec*8+1) {
		t.Error("jbb staircase does not repeat")
	}
}

func TestDiskLoadWriteSyncCycle(t *testing.T) {
	s, _ := ByName("diskload")
	rng := sim.NewRNG(4)
	g := s.Make(0, rng)
	var syncs int
	var wrote float64
	env := Env{}
	flushLeft := 0
	for i := 0; i < 120000; i++ { // 120 s
		d := g.Demand(float64(i)*0.001, env, rng)
		wrote += d.DiskWriteBytes
		if d.Sync {
			syncs++
			flushLeft = 3000 // pretend the flush takes 3 s
		}
		if flushLeft > 0 {
			flushLeft--
			env.FlushActive = true
		} else {
			env.FlushActive = false
		}
	}
	if syncs < 2 {
		t.Errorf("diskload issued %d syncs in 120s, want >=2", syncs)
	}
	if wrote < diskLoadSyncBytes {
		t.Errorf("diskload dirtied only %v bytes", wrote)
	}
}

func TestDiskLoadBlocksDuringFlush(t *testing.T) {
	s, _ := ByName("diskload")
	rng := sim.NewRNG(5)
	g := s.Make(0, rng)
	env := Env{}
	// Drive until the sync is issued.
	var i int
	for ; i < 200000; i++ {
		d := g.Demand(float64(i)*0.001, env, rng)
		if d.Sync {
			break
		}
	}
	env.FlushActive = true
	d := g.Demand(float64(i+1)*0.001, env, rng)
	if d.Active > 0.2 {
		t.Errorf("diskload Active = %v while blocked in sync()", d.Active)
	}
	if d.DiskWriteBytes != 0 {
		t.Error("diskload dirtying pages while blocked in sync()")
	}
	// Release the flush: writing resumes.
	env.FlushActive = false
	d = g.Demand(float64(i+2)*0.001, env, rng)
	d = g.Demand(float64(i+3)*0.001, env, rng)
	if d.Active < 0.5 {
		t.Errorf("diskload did not resume after flush: Active=%v", d.Active)
	}
}

func TestStaggeredSpecConfig(t *testing.T) {
	for _, name := range []string{"gcc", "mcf", "mesa", "lucas"} {
		s, _ := ByName(name)
		if s.Instances != 8 {
			t.Errorf("%s instances = %d, want 8", name, s.Instances)
		}
		if s.StaggerSec != 30 {
			t.Errorf("%s stagger = %v, want 30", name, s.StaggerSec)
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate register did not panic")
		}
	}()
	register(Spec{Name: "idle"})
}

func TestNetloadMovesBytes(t *testing.T) {
	s, _ := ByName("netload")
	rng := sim.NewRNG(6)
	g := s.Make(0, rng)
	var rx, tx float64
	for i := 0; i < 60000; i++ { // 60 s
		d := g.Demand(float64(i)*0.001, Env{}, rng)
		rx += d.NetRxBytes
		tx += d.NetTxBytes
		if d.DiskReadBytes != 0 || d.DiskWriteBytes != 0 {
			t.Fatal("netload touched the disk")
		}
	}
	if tx < 100e6 {
		t.Errorf("netload transmitted only %v bytes in 60s", tx)
	}
	if rx <= 0 || rx >= tx {
		t.Errorf("rx/tx = %v/%v, want small rx, large tx", rx, tx)
	}
}

func TestPiecewisePhaseHoldsSegments(t *testing.T) {
	rng := sim.NewRNG(11)
	g := &specGen{rng: rng}
	ph := piecewisePhase(3, 8, 0.8, 1.0, 0.5, 1.5, 0.4, 2.0)
	// Within one segment the multipliers are constant.
	a1, u1, m1 := ph(0.0, g)
	a2, u2, m2 := ph(0.5, g)
	if a1 != a2 || u1 != u2 || m1 != m2 {
		t.Error("multipliers changed within a segment")
	}
	// Across many segments, values stay in range and eventually change.
	changed := false
	for ts := 0.0; ts < 100; ts += 0.5 {
		a, u, m := ph(ts, g)
		if a < 0.8 || a > 1.0 || u < 0.5 || u > 1.5 || m < 0.4 || m > 2.0 {
			t.Fatalf("phase out of range at t=%v: %v %v %v", ts, a, u, m)
		}
		if a != a1 || u != u1 || m != m1 {
			changed = true
		}
	}
	if !changed {
		t.Error("phase never changed over 100s")
	}
}

func TestSinePhasePeriodic(t *testing.T) {
	g := &specGen{rng: sim.NewRNG(12)}
	ph := sinePhase(40, 0.2, 0.3)
	_, u1, m1 := ph(7, g)
	_, u2, m2 := ph(47, g)
	if u1 != u2 || m1 != m2 {
		t.Errorf("sine phase not periodic: (%v,%v) vs (%v,%v)", u1, m1, u2, m2)
	}
	// Amplitude bounds.
	for ts := 0.0; ts < 40; ts += 0.5 {
		_, u, m := ph(ts, g)
		if u < 0.8-1e-9 || u > 1.2+1e-9 {
			t.Fatalf("upc multiplier %v out of amplitude", u)
		}
		if m < 0.7-1e-9 || m > 1.3+1e-9 {
			t.Fatalf("miss multiplier %v out of amplitude", m)
		}
	}
}

func TestFlatPhaseIsFlat(t *testing.T) {
	g := &specGen{rng: sim.NewRNG(13)}
	ph := flatPhase()
	for ts := 0.0; ts < 10; ts++ {
		if a, u, m := ph(ts, g); a != 1 || u != 1 || m != 1 {
			t.Fatalf("flat phase returned %v %v %v", a, u, m)
		}
	}
}
