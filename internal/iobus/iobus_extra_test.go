package iobus

import "testing"

func TestAPICCountAndMatrix(t *testing.T) {
	a := NewAPIC(3)
	if a.NumCPUs() != 3 {
		t.Fatalf("NumCPUs = %d", a.NumCPUs())
	}
	a.RaiseLocal(VecTimer, 0, 4)
	a.RaiseLocal(VecDisk, 2, 7)
	a.Raise(VecNIC, 3) // round robin: cpus 0,1,2

	if got := a.Count(VecTimer, 0); got != 4 {
		t.Errorf("Count(timer,0) = %d", got)
	}
	if got := a.Count(VecDisk, 2); got != 7 {
		t.Errorf("Count(disk,2) = %d", got)
	}
	if got := a.Count(VecDisk, 0); got != 0 {
		t.Errorf("Count(disk,0) = %d", got)
	}
	if a.Count(Vector(-1), 0) != 0 || a.Count(VecTimer, 9) != 0 {
		t.Error("out-of-range Count nonzero")
	}

	m := a.Matrix()
	if len(m) != NumVectors {
		t.Fatalf("matrix rows = %d", len(m))
	}
	var total uint64
	for _, row := range m {
		if len(row) != 3 {
			t.Fatalf("matrix cols = %d", len(row))
		}
		for _, v := range row {
			total += v
		}
	}
	if total != 4+7+3 {
		t.Errorf("matrix total = %d, want 14", total)
	}
	// Matrix must be a copy.
	m[0][0] = 999
	if a.Count(VecTimer, 0) != 4 {
		t.Error("Matrix returned a live reference")
	}
}

func TestDMAStatsZeroValue(t *testing.T) {
	var e DMAEngine
	e.Transfer(128, true)
	st := e.DrainSlice()
	if st.Transfers != 1 || st.Bytes != 128 {
		t.Errorf("zero-value engine stats = %+v", st)
	}
}
