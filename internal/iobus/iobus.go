// Package iobus models the paper's I/O subsystem: two I/O chips fanning
// out six 133 MHz PCI-X buses, a DMA engine moving device data to and
// from main memory, and an APIC-style interrupt controller delivering
// per-vector interrupts to the processors.
//
// Two trickle-down visibility points live here. First, DMA transfers
// appear on the processor memory bus because coherency requires snooping
// ("though DMA transactions do not originate in the processor, they are
// fortunately visible to the processor"). Second, devices raise
// completion interrupts whose vector identifies the source, which the OS
// (not the PMU — the P4 exposes no interrupt-source event) accounts in
// /proc/interrupts.
package iobus

import "fmt"

// Vector identifies an interrupt source.
type Vector int

// The interrupt sources present in the simulated server.
const (
	// VecTimer is the per-CPU OS scheduling tick.
	VecTimer Vector = iota
	// VecDisk is the SCSI controller's completion interrupt.
	VecDisk
	// VecNIC is the network adapter (background chatter only; the
	// paper's workloads do not exercise the network).
	VecNIC
	numVectors
)

// NumVectors is the number of defined interrupt vectors.
const NumVectors = int(numVectors)

var vectorNames = [...]string{
	VecTimer: "timer",
	VecDisk:  "scsi",
	VecNIC:   "eth0",
}

// String returns the /proc/interrupts-style source name.
func (v Vector) String() string {
	if v >= 0 && int(v) < len(vectorNames) {
		return vectorNames[v]
	}
	return fmt.Sprintf("vec(%d)", int(v))
}

// APIC routes device interrupts to CPUs round-robin and keeps the
// cumulative delivery matrix by vector and CPU — the numbers Linux
// renders as /proc/interrupts.
type APIC struct {
	numCPUs  int
	matrix   [numVectors][]uint64
	slice    []int // deliveries in the current slice, per CPU
	drained  []int // previous slice's deliveries, returned by DrainSlice
	sliceTot int
	rr       int
}

// NewAPIC returns an interrupt controller for numCPUs processors.
func NewAPIC(numCPUs int) *APIC {
	if numCPUs <= 0 {
		panic("iobus: APIC needs at least one CPU")
	}
	a := &APIC{
		numCPUs: numCPUs,
		slice:   make([]int, numCPUs),
		drained: make([]int, numCPUs),
	}
	for v := range a.matrix {
		a.matrix[v] = make([]uint64, numCPUs)
	}
	return a
}

// NumCPUs returns the number of delivery targets.
func (a *APIC) NumCPUs() int { return a.numCPUs }

// RaiseLocal delivers n interrupts of vector v to a specific CPU (the
// per-CPU local timer).
func (a *APIC) RaiseLocal(v Vector, cpuID, n int) {
	if n <= 0 || v < 0 || v >= numVectors || cpuID < 0 || cpuID >= a.numCPUs {
		return
	}
	a.matrix[v][cpuID] += uint64(n)
	a.slice[cpuID] += n
	a.sliceTot += n
}

// Raise delivers n interrupts of vector v, distributing them round-robin
// over the CPUs.
func (a *APIC) Raise(v Vector, n int) {
	if n <= 0 || v < 0 || v >= numVectors {
		return
	}
	for i := 0; i < n; i++ {
		cpu := a.rr
		a.rr = (a.rr + 1) % a.numCPUs
		a.matrix[v][cpu]++
		a.slice[cpu]++
	}
	a.sliceTot += n
}

// DrainSlice returns the interrupts delivered to each CPU since the last
// drain, plus the total, and resets the per-slice accumulators.
//
// The returned slice is an internal double buffer, valid only until the
// next DrainSlice call — this sits on the per-slice hot path, where a
// fresh allocation per drain dominated the whole simulator's allocation
// profile. Callers that keep per-CPU counts across slices must copy.
func (a *APIC) DrainSlice() (perCPU []int, total int) {
	a.slice, a.drained = a.drained, a.slice
	total = a.sliceTot
	for i := range a.slice {
		a.slice[i] = 0
	}
	a.sliceTot = 0
	return a.drained, total
}

// VectorCount returns the cumulative delivery count for vector v (the
// /proc/interrupts number).
func (a *APIC) VectorCount(v Vector) uint64 {
	if v < 0 || v >= numVectors {
		return 0
	}
	var t uint64
	for _, n := range a.matrix[v] {
		t += n
	}
	return t
}

// CPUCount returns the cumulative deliveries to cpuID.
func (a *APIC) CPUCount(cpuID int) uint64 {
	if cpuID < 0 || cpuID >= a.numCPUs {
		return 0
	}
	var t uint64
	for v := range a.matrix {
		t += a.matrix[v][cpuID]
	}
	return t
}

// Count returns the cumulative deliveries of vector v to cpuID.
func (a *APIC) Count(v Vector, cpuID int) uint64 {
	if v < 0 || v >= numVectors || cpuID < 0 || cpuID >= a.numCPUs {
		return 0
	}
	return a.matrix[v][cpuID]
}

// Matrix returns a copy of the cumulative delivery matrix, indexed
// [vector][cpu].
func (a *APIC) Matrix() [][]uint64 {
	out := make([][]uint64, numVectors)
	for v := range a.matrix {
		out[v] = append([]uint64(nil), a.matrix[v]...)
	}
	return out
}

// CacheLine is the coherent transfer unit on the processor memory bus.
const CacheLine = 64

// dmaOverheadTx is the descriptor/doorbell bus traffic per transfer.
const dmaOverheadTx = 4

// writeCombineEfficiency scales small-transfer bus traffic: the I/O chips
// combine adjacent transactions, but sub-line and unaligned pieces still
// cost whole lines ("a cache line access measured as a single DMA event
// ... may contain only a single byte").
const writeCombineEfficiency = 0.9

// DMAStats summarizes DMA engine activity over one slice.
type DMAStats struct {
	// BusTx is coherent memory-bus transactions generated.
	BusTx float64
	// Bytes is total payload moved; WriteBytes the to-memory subset.
	Bytes      float64
	WriteBytes float64
	// Transfers is the number of DMA transfers programmed.
	Transfers int
}

// DMAEngine converts device transfers into processor-visible memory-bus
// traffic.
type DMAEngine struct {
	cur DMAStats
}

// NewDMAEngine returns an idle engine.
func NewDMAEngine() *DMAEngine { return &DMAEngine{} }

// Transfer programs one DMA transfer of the given payload. toMemory is
// true for device-to-memory (disk read into the page cache) and false
// for memory-to-device (page cache flush to disk).
func (e *DMAEngine) Transfer(bytes float64, toMemory bool) {
	if bytes <= 0 {
		return
	}
	lines := bytes / CacheLine / writeCombineEfficiency
	e.cur.BusTx += lines + dmaOverheadTx
	e.cur.Bytes += bytes
	if toMemory {
		e.cur.WriteBytes += bytes
	}
	e.cur.Transfers++
}

// DrainSlice returns and resets the activity accumulated since the last
// drain.
func (e *DMAEngine) DrainSlice() DMAStats {
	out := e.cur
	e.cur = DMAStats{}
	return out
}

// Subsystem bundles the I/O chips' per-slice activity for the power
// model: DMA payload through the chips, PCI transactions, and interrupt
// deliveries (message signalling work in the chips).
type Subsystem struct {
	APIC *APIC
	DMA  *DMAEngine
}

// New returns the I/O subsystem for numCPUs processors.
func New(numCPUs int) *Subsystem {
	return &Subsystem{APIC: NewAPIC(numCPUs), DMA: NewDMAEngine()}
}
