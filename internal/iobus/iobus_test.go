package iobus

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAPICRoundRobin(t *testing.T) {
	a := NewAPIC(4)
	a.Raise(VecDisk, 8)
	perCPU, total := a.DrainSlice()
	if total != 8 {
		t.Fatalf("total = %d", total)
	}
	for i, n := range perCPU {
		if n != 2 {
			t.Errorf("cpu %d got %d interrupts, want 2", i, n)
		}
	}
}

func TestAPICDrainResets(t *testing.T) {
	a := NewAPIC(2)
	a.Raise(VecDisk, 3)
	a.DrainSlice()
	perCPU, total := a.DrainSlice()
	if total != 0 {
		t.Errorf("second drain total = %d", total)
	}
	for _, n := range perCPU {
		if n != 0 {
			t.Error("per-CPU counts not reset")
		}
	}
	// Cumulative counts survive the drain.
	if a.VectorCount(VecDisk) != 3 {
		t.Errorf("VectorCount = %d", a.VectorCount(VecDisk))
	}
}

func TestAPICLocalDelivery(t *testing.T) {
	a := NewAPIC(4)
	a.RaiseLocal(VecTimer, 2, 5)
	perCPU, total := a.DrainSlice()
	if total != 5 || perCPU[2] != 5 || perCPU[0] != 0 {
		t.Errorf("local delivery: perCPU=%v total=%d", perCPU, total)
	}
	if a.CPUCount(2) != 5 {
		t.Errorf("CPUCount(2) = %d", a.CPUCount(2))
	}
}

func TestAPICIgnoresBadInput(t *testing.T) {
	a := NewAPIC(2)
	a.Raise(Vector(-1), 5)
	a.Raise(Vector(99), 5)
	a.Raise(VecDisk, 0)
	a.Raise(VecDisk, -3)
	a.RaiseLocal(VecTimer, -1, 5)
	a.RaiseLocal(VecTimer, 7, 5)
	if _, total := a.DrainSlice(); total != 0 {
		t.Errorf("bad input delivered %d interrupts", total)
	}
	if a.VectorCount(Vector(99)) != 0 || a.CPUCount(-1) != 0 {
		t.Error("out-of-range queries nonzero")
	}
}

func TestAPICPanicsWithoutCPUs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewAPIC(0) did not panic")
		}
	}()
	NewAPIC(0)
}

func TestVectorString(t *testing.T) {
	if VecDisk.String() != "scsi" || VecTimer.String() != "timer" {
		t.Error("vector names wrong")
	}
	if !strings.Contains(Vector(42).String(), "42") {
		t.Errorf("unknown vector String = %q", Vector(42).String())
	}
}

func TestDMATransferAccounting(t *testing.T) {
	e := NewDMAEngine()
	e.Transfer(64*1024, true)
	e.Transfer(64*1024, false)
	st := e.DrainSlice()
	if st.Transfers != 2 {
		t.Errorf("Transfers = %d", st.Transfers)
	}
	if st.Bytes != 128*1024 {
		t.Errorf("Bytes = %v", st.Bytes)
	}
	if st.WriteBytes != 64*1024 {
		t.Errorf("WriteBytes = %v", st.WriteBytes)
	}
	// 2 * (1024/0.9 lines + 4 overhead)
	want := 2 * (64*1024/float64(CacheLine)/writeCombineEfficiency + dmaOverheadTx)
	if st.BusTx != want {
		t.Errorf("BusTx = %v, want %v", st.BusTx, want)
	}
}

func TestDMADrainResets(t *testing.T) {
	e := NewDMAEngine()
	e.Transfer(4096, true)
	e.DrainSlice()
	if st := e.DrainSlice(); st != (DMAStats{}) {
		t.Errorf("second drain = %+v", st)
	}
}

func TestDMAIgnoresNonPositive(t *testing.T) {
	e := NewDMAEngine()
	e.Transfer(0, true)
	e.Transfer(-100, false)
	if st := e.DrainSlice(); st != (DMAStats{}) {
		t.Errorf("bad transfers counted: %+v", st)
	}
}

func TestSmallTransfersCostMorePerByte(t *testing.T) {
	big := NewDMAEngine()
	big.Transfer(1<<20, true)
	bigTx := big.DrainSlice().BusTx

	small := NewDMAEngine()
	for i := 0; i < 1<<20/512; i++ {
		small.Transfer(512, true)
	}
	smallTx := small.DrainSlice().BusTx
	if smallTx <= bigTx {
		t.Errorf("same payload in small transfers should cost more bus tx: %v <= %v", smallTx, bigTx)
	}
}

func TestSubsystemNew(t *testing.T) {
	s := New(4)
	if s.APIC == nil || s.DMA == nil {
		t.Fatal("subsystem incomplete")
	}
}

// Property: interrupts are conserved — per-vector cumulative totals equal
// per-CPU cumulative totals for any raise sequence.
func TestInterruptConservation(t *testing.T) {
	f := func(raises []uint8) bool {
		a := NewAPIC(4)
		for _, r := range raises {
			v := Vector(int(r) % NumVectors)
			n := int(r%7) + 1
			if r%2 == 0 {
				a.Raise(v, n)
			} else {
				a.RaiseLocal(v, int(r)%4, n)
			}
		}
		var byVec, byCPU uint64
		for v := 0; v < NumVectors; v++ {
			byVec += a.VectorCount(Vector(v))
		}
		for c := 0; c < 4; c++ {
			byCPU += a.CPUCount(c)
		}
		_, sliceTotal := a.DrainSlice()
		return byVec == byCPU && uint64(sliceTotal) == byVec
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
