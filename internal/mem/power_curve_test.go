package mem_test

import (
	"testing"

	"trickledown/internal/mem"
	"trickledown/internal/power"
)

// memPowerAt serves one second of CPU traffic at the given fraction of
// bus capacity and returns the resulting DRAM power.
func memPowerAt(frac, writeFrac, locality float64) float64 {
	m := mem.New()
	st := m.Step(1.0, mem.Traffic{
		CPUTx:     frac * mem.BusCapacity,
		WriteFrac: writeFrac,
		Locality:  locality,
	})
	return power.Memory(st, 1.0)
}

// The memory power-response curve the paper's quadratic models chase:
// idle floor with no traffic, monotonic growth with bus transactions,
// and superlinear curvature (bank conflicts erode row-buffer hits as
// utilization rises, so each extra transaction costs more activations
// than the last).
func TestMemoryPowerResponseCurve(t *testing.T) {
	if got := memPowerAt(0, 0, 0.5); got != power.MemIdlePower {
		t.Fatalf("idle memory power = %v, want the %v W floor", got, power.MemIdlePower)
	}
	fracs := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
	watts := make([]float64, len(fracs))
	prev := power.MemIdlePower
	for i, f := range fracs {
		watts[i] = memPowerAt(f, 0.3, 0.5)
		if watts[i] <= prev {
			t.Errorf("%.0f%% load: power %v W did not rise past %v W", f*100, watts[i], prev)
		}
		prev = watts[i]
	}
	// Superlinearity: equal load steps cost strictly more Watts as the
	// bus fills — the physical source of the quadratic term. Asserted
	// only below ~60% utilization; past that the FSB's soft saturation
	// starts clipping served transactions and the curve rolls off.
	for i := 2; i < len(watts) && fracs[i] <= 0.6; i++ {
		d0 := watts[i-1] - watts[i-2]
		d1 := watts[i] - watts[i-1]
		if d1 <= d0 {
			t.Errorf("steps %.0f%%→%.0f%%: increment %v W not above previous %v W (curve not superlinear)",
				fracs[i-1]*100, fracs[i]*100, d1, d0)
		}
	}
}

// Writes cost more DRAM energy than reads at identical transaction
// counts — the asymmetry the bus-transaction model cannot see and the
// paper's suggested read/write extension targets.
func TestMemoryWritePremiumAcrossLoads(t *testing.T) {
	for _, frac := range []float64{0.1, 0.4, 0.7} {
		ro := memPowerAt(frac, 0, 0.5)
		wo := memPowerAt(frac, 1, 0.5)
		if wo <= ro {
			t.Errorf("%.0f%% load: write-heavy power %v W not above read-only %v W", frac*100, wo, ro)
		}
	}
}

// DMA traffic consumes DRAM power like any other agent — the paper's
// key insight that processor-only counters miss I/O-driven memory
// power unless the DMA stream is counted.
func TestMemoryDMATrafficConsumesPower(t *testing.T) {
	m := mem.New()
	st := m.Step(1.0, mem.Traffic{DMATx: 0.4 * mem.BusCapacity, DMAWriteFrac: 0.5})
	if p := power.Memory(st, 1.0); p <= power.MemIdlePower {
		t.Errorf("DMA-only load power = %v W, want above the %v W idle floor", p, power.MemIdlePower)
	}
}

// Poor row-buffer locality forces more activations, so the same
// transaction count draws more power — the mechanism behind the paper's
// FP memory-model underestimation.
func TestMemoryLocalityLowersPower(t *testing.T) {
	for _, frac := range []float64{0.2, 0.5} {
		thrash := memPowerAt(frac, 0.3, 0.0)
		local := memPowerAt(frac, 0.3, 1.0)
		if thrash <= local {
			t.Errorf("%.0f%% load: thrashing power %v W not above high-locality %v W", frac*100, thrash, local)
		}
	}
}

// Beyond saturation the bus carries no more transactions, so power
// flattens instead of growing without bound.
func TestMemoryPowerSaturates(t *testing.T) {
	over := memPowerAt(4.0, 0.3, 0.5)
	way := memPowerAt(8.0, 0.3, 0.5)
	if diff := way - over; diff > 1.0 {
		t.Errorf("power still climbing %v W past saturation", diff)
	}
}
