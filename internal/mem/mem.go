// Package mem models the shared front-side bus and the DRAM array behind
// the memory controller. The FSB carries three tagged transaction
// classes — CPU demand, hardware prefetch, and DMA — because the paper's
// key memory-model insight is that all three consume DRAM power while
// only the first is visible to an L3-miss counter ("it is also necessary
// to account for memory utilization caused by agents other than the
// microprocessor, namely I/O devices performing DMA accesses").
//
// DRAM activity follows Janzen's DDR power methodology: power is driven
// by row activations, read/write bursts, and the time banks spend in the
// active, precharge and idle states. Activation probability grows with
// utilization (bank conflicts erode page hits), which is the physical
// source of the superlinear power-vs-transactions curvature the paper
// captures with quadratic regression models.
package mem

import "math"

// BusCapacity is the sustainable aggregate FSB transaction rate
// (transactions/second); at 64 bytes per line this is a 3.2 GB/s bus,
// matching the 400 MT/s shared P4 Xeon front-side bus.
const BusCapacity = 50e6

// Timing and geometry constants for the DRAM array.
const (
	// tRP is the precharge time charged per activation.
	tRP = 15e-9
	// numBanks is the number of independent DRAM banks across the DIMMs.
	numBanks = 16
	// pageHitFloor and pageHitLocality set the row-buffer hit rate at
	// low utilization: floor + locality-span * stream locality.
	pageHitFloor    = 0.40
	pageHitLocality = 0.45
	// conflictSlope is how fast bank conflicts erode page hits as
	// utilization rises.
	conflictSlope = 0.45
)

// Traffic is the per-slice offered load on the memory bus.
type Traffic struct {
	// CPUTx is demand transactions from the processors (misses,
	// writebacks, uncacheable).
	CPUTx float64
	// PrefetchTx is hardware-prefetch transactions.
	PrefetchTx float64
	// DMATx is transactions from the memory controller on behalf of I/O
	// devices.
	DMATx float64
	// WriteFrac is the write fraction of the CPU+prefetch traffic.
	WriteFrac float64
	// DMAWriteFrac is the write (to-memory) fraction of DMA traffic.
	DMAWriteFrac float64
	// Locality is the transaction-weighted DRAM row-buffer locality of
	// the CPU+prefetch traffic, in [0,1]. DMA traffic is treated as
	// fully sequential.
	Locality float64
}

// Offered returns total offered transactions.
func (t Traffic) Offered() float64 { return t.CPUTx + t.PrefetchTx + t.DMATx }

// Stats is the memory subsystem's activity during one slice.
type Stats struct {
	// ServedTx is transactions actually carried after bus saturation;
	// the class fields are the served split.
	ServedTx   float64
	CPUTx      float64
	PrefetchTx float64
	DMATx      float64
	// Util is ServedTx relative to bus capacity for the slice, in [0,1).
	Util float64
	// Activations is DRAM row activations.
	Activations float64
	// ReadBursts and WriteBursts split the served transactions.
	ReadBursts  float64
	WriteBursts float64
	// ActiveFrac, PrechargeFrac and IdleFrac are average bank-state
	// residencies; they sum to 1.
	ActiveFrac    float64
	PrechargeFrac float64
	IdleFrac      float64
}

// Memory is the FSB plus DRAM array.
type Memory struct {
	capacity float64 // tx/s
}

// New returns a memory subsystem with the default bus capacity.
func New() *Memory { return &Memory{capacity: BusCapacity} }

// NewWithCapacity returns a memory subsystem with a custom bus capacity
// in transactions/second (for ablation experiments). It panics if the
// capacity is not positive.
func NewWithCapacity(txPerSec float64) *Memory {
	if txPerSec <= 0 {
		panic("mem: non-positive bus capacity")
	}
	return &Memory{capacity: txPerSec}
}

// saturate applies the FSB's soft saturation curve: linear at low load,
// asymptotic to capacity at overload.
func saturate(offered, cap float64) float64 {
	if offered <= 0 {
		return 0
	}
	r := offered / cap
	return offered / math.Pow(1+r*r*r*r, 0.25)
}

// PageHitRate returns the row-buffer hit probability for a stream of
// the given locality at the given bus utilization.
func PageHitRate(util, locality float64) float64 {
	ph := pageHitFloor + pageHitLocality*clamp01(locality) - conflictSlope*util
	if ph < 0.10 {
		ph = 0.10
	}
	if ph > 0.95 {
		ph = 0.95
	}
	return ph
}

// Step serves one slice of traffic. sliceSec is the slice duration.
func (m *Memory) Step(sliceSec float64, t Traffic) Stats {
	var st Stats
	offered := t.Offered()
	if offered < 0 || sliceSec <= 0 {
		return st
	}
	capTx := m.capacity * sliceSec
	served := saturate(offered, capTx)
	scale := 1.0
	if offered > 0 {
		scale = served / offered
	}
	st.ServedTx = served
	st.CPUTx = t.CPUTx * scale
	st.PrefetchTx = t.PrefetchTx * scale
	st.DMATx = t.DMATx * scale
	st.Util = served / capTx

	// Row activations: every row-buffer miss opens a row. CPU traffic
	// uses the workload's locality; DMA streams are sequential.
	cpuPart := st.CPUTx + st.PrefetchTx
	phCPU := PageHitRate(st.Util, t.Locality)
	phDMA := PageHitRate(st.Util, 0.9)
	st.Activations = cpuPart*(1-phCPU) + st.DMATx*(1-phDMA)

	// Burst split. DMA "write" means device-to-memory.
	cpuPf := st.CPUTx + st.PrefetchTx
	writes := cpuPf*clamp01(t.WriteFrac) + st.DMATx*clamp01(t.DMAWriteFrac)
	st.WriteBursts = writes
	st.ReadBursts = served - writes

	// Bank-state residency.
	st.ActiveFrac = st.Util
	pre := st.Activations * tRP / (numBanks * sliceSec)
	if pre > 1-st.ActiveFrac {
		pre = 1 - st.ActiveFrac
	}
	st.PrechargeFrac = pre
	st.IdleFrac = 1 - st.ActiveFrac - st.PrechargeFrac
	return st
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
