package mem

import (
	"math"
	"testing"
	"testing/quick"
)

const slice = 0.001

func TestZeroTraffic(t *testing.T) {
	m := New()
	st := m.Step(slice, Traffic{})
	if st.ServedTx != 0 || st.Util != 0 || st.Activations != 0 {
		t.Errorf("zero traffic produced activity: %+v", st)
	}
	if st.IdleFrac != 1 {
		t.Errorf("IdleFrac = %v, want 1", st.IdleFrac)
	}
}

func TestLowLoadIsNearlyLinear(t *testing.T) {
	m := New()
	offered := 0.2 * BusCapacity * slice
	st := m.Step(slice, Traffic{CPUTx: offered})
	if st.ServedTx < 0.99*offered {
		t.Errorf("low load served %v of %v", st.ServedTx, offered)
	}
}

func TestSaturationCapsThroughput(t *testing.T) {
	m := New()
	offered := 3 * BusCapacity * slice
	st := m.Step(slice, Traffic{CPUTx: offered})
	if st.ServedTx > BusCapacity*slice {
		t.Errorf("served %v exceeds capacity %v", st.ServedTx, BusCapacity*slice)
	}
	if st.Util > 1 {
		t.Errorf("Util = %v", st.Util)
	}
	// More offered load must never reduce service.
	st2 := m.Step(slice, Traffic{CPUTx: offered * 2})
	if st2.ServedTx < st.ServedTx {
		t.Error("service not monotonic in offered load")
	}
}

func TestClassesScaledProportionally(t *testing.T) {
	m := New()
	tr := Traffic{CPUTx: 2 * BusCapacity * slice, PrefetchTx: 1 * BusCapacity * slice, DMATx: 1 * BusCapacity * slice}
	st := m.Step(slice, tr)
	sum := st.CPUTx + st.PrefetchTx + st.DMATx
	if math.Abs(sum-st.ServedTx) > 1e-9*sum {
		t.Errorf("class split %v != served %v", sum, st.ServedTx)
	}
	if math.Abs(st.CPUTx/st.PrefetchTx-2) > 1e-9 {
		t.Errorf("proportional scaling broken: cpu/pf = %v", st.CPUTx/st.PrefetchTx)
	}
}

func TestPageHitRateDecreasesWithUtil(t *testing.T) {
	if PageHitRate(0.1, 0.5) <= PageHitRate(0.9, 0.5) {
		t.Error("page-hit rate must fall with utilization")
	}
	if PageHitRate(5, 0.5) < 0.10 {
		t.Error("page-hit floor violated")
	}
	if PageHitRate(0, 2) > 0.95 {
		t.Error("page-hit ceiling violated")
	}
	if PageHitRate(0.3, 0.2) >= PageHitRate(0.3, 0.8) {
		t.Error("page-hit rate must rise with locality")
	}
}

func TestLowLocalityCostsMoreActivations(t *testing.T) {
	m := New()
	tx := 0.4 * BusCapacity * slice
	hi := m.Step(slice, Traffic{CPUTx: tx, Locality: 0.9})
	lo := m.Step(slice, Traffic{CPUTx: tx, Locality: 0.1})
	if lo.Activations <= hi.Activations {
		t.Errorf("low locality should force more activations: %v <= %v",
			lo.Activations, hi.Activations)
	}
}

func TestActivationsSuperlinear(t *testing.T) {
	// Doubling utilization should more than double activations (the
	// physical source of the paper's quadratic model shape).
	m := New()
	lo := m.Step(slice, Traffic{CPUTx: 0.3 * BusCapacity * slice})
	hi := m.Step(slice, Traffic{CPUTx: 0.6 * BusCapacity * slice})
	ratio := hi.Activations / lo.Activations
	if ratio <= 2.0 {
		t.Errorf("activation ratio = %v, want >2 (superlinear)", ratio)
	}
}

func TestBurstSplit(t *testing.T) {
	m := New()
	st := m.Step(slice, Traffic{
		CPUTx: 10000, WriteFrac: 0.4,
		DMATx: 5000, DMAWriteFrac: 1.0,
	})
	wantWrites := 10000*0.4 + 5000.0
	if math.Abs(st.WriteBursts-wantWrites)/wantWrites > 0.01 {
		t.Errorf("WriteBursts = %v, want ~%v", st.WriteBursts, wantWrites)
	}
	if math.Abs(st.ReadBursts+st.WriteBursts-st.ServedTx) > 1e-6*st.ServedTx {
		t.Error("bursts do not sum to served transactions")
	}
}

func TestResidencySumsToOne(t *testing.T) {
	m := New()
	for _, load := range []float64{0, 0.1, 0.5, 0.9, 2, 10} {
		st := m.Step(slice, Traffic{CPUTx: load * BusCapacity * slice})
		sum := st.ActiveFrac + st.PrechargeFrac + st.IdleFrac
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("load %v: residency sum = %v", load, sum)
		}
		if st.ActiveFrac < 0 || st.PrechargeFrac < 0 || st.IdleFrac < 0 {
			t.Errorf("load %v: negative residency %+v", load, st)
		}
	}
}

func TestBadInputs(t *testing.T) {
	m := New()
	if st := m.Step(slice, Traffic{CPUTx: -5}); st.ServedTx != 0 {
		t.Error("negative traffic served")
	}
	if st := m.Step(0, Traffic{CPUTx: 100}); st.ServedTx != 0 {
		t.Error("zero slice served traffic")
	}
	if st := m.Step(slice, Traffic{CPUTx: 100, WriteFrac: 7}); st.WriteBursts > st.ServedTx {
		t.Error("write fraction not clamped")
	}
}

func TestNewWithCapacity(t *testing.T) {
	m := NewWithCapacity(10e6)
	st := m.Step(slice, Traffic{CPUTx: 20e6 * slice})
	if st.ServedTx > 10e6*slice {
		t.Error("custom capacity ignored")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewWithCapacity(0) did not panic")
		}
	}()
	NewWithCapacity(0)
}

// Property: served ≤ offered, served ≤ capacity, util in [0,1], for any
// traffic mix.
func TestServiceInvariants(t *testing.T) {
	m := New()
	f := func(cpuR, pfR, dmaR, wfR uint16) bool {
		tr := Traffic{
			CPUTx:      float64(cpuR) * 10,
			PrefetchTx: float64(pfR) * 10,
			DMATx:      float64(dmaR) * 10,
			WriteFrac:  float64(wfR) / 65535,
		}
		st := m.Step(slice, tr)
		capTx := BusCapacity * slice
		return st.ServedTx <= tr.Offered()+1e-9 &&
			st.ServedTx <= capTx+1e-9 &&
			st.Util >= 0 && st.Util <= 1 &&
			st.Activations >= 0 && st.Activations <= st.ServedTx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
