package telemetry

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("served_total", "x").Add(9)
	addr, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr.String() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	code, body := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "served_total 9") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	code, body = get("/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars = %d (body %d bytes)", code, len(body))
	}
	code, body = get("/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d (body %d bytes)", code, len(body))
	}
	if code, _ = get("/nope"); code != http.StatusNotFound {
		t.Errorf("/nope = %d, want 404", code)
	}
}

func TestWriteTextPropagatesError(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x_total", "x")
	if err := r.WriteText(failWriter{}); err == nil {
		t.Error("want write error")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, io.ErrClosedPipe }

func TestSetupLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	logger := SetupLoggerWriter(&buf, false)
	logger.Debug("hidden")
	logger.Info("shown")
	if out := buf.String(); strings.Contains(out, "hidden") || !strings.Contains(out, "shown") {
		t.Errorf("info-level output: %q", out)
	}
	buf.Reset()
	logger = SetupLoggerWriter(&buf, true)
	logger.Debug("now visible")
	if !strings.Contains(buf.String(), "now visible") {
		t.Errorf("verbose output: %q", buf.String())
	}
}

func TestStartProgressLogsAndStops(t *testing.T) {
	var mu lockedBuffer
	logger := slog.New(slog.NewTextHandler(&mu, &slog.HandlerOptions{Level: slog.LevelDebug}))
	stop := StartProgress(logger, 10*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for mu.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	out := mu.String()
	if !strings.Contains(out, "progress") || !strings.Contains(out, "slices_per_sec") {
		t.Errorf("progress output: %q", out)
	}
}

// lockedBuffer is a goroutine-safe bytes.Buffer for the progress test.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Len()
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
