package telemetry

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("served_total", "x").Add(9)
	obs, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + obs.Addr().String() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	code, body := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "served_total 9") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	code, body = get("/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars = %d (body %d bytes)", code, len(body))
	}
	code, body = get("/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d (body %d bytes)", code, len(body))
	}
	if code, _ = get("/nope"); code != http.StatusNotFound {
		t.Errorf("/nope = %d, want 404", code)
	}

	// Shutdown drains the listener: subsequent scrapes must fail.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := obs.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := http.Get("http://" + obs.Addr().String() + "/metrics"); err == nil {
		t.Error("scrape after Shutdown succeeded, want connection refusal")
	}
}

func TestEscapingHostileStrings(t *testing.T) {
	r := NewRegistry()
	// HELP text with a backslash and a newline must come out as the two
	// v0.0.4 escapes, keeping the exposition single-line-per-record.
	r.NewCounter("hostile_total", "path C:\\tmp\nsecond line")
	vec := r.NewCounterVec("hostile_vec_total", "labeled", "client")
	vec.With("a\\b\"c\nd\te").Inc()
	hv := r.NewHistogramVec("hostile_hist_seconds", "hist", "stage", []float64{1})
	hv.With("q\"s\\t\n").Observe(0.5)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `# HELP hostile_total path C:\\tmp\nsecond line`) {
		t.Errorf("HELP not escaped:\n%s", out)
	}
	// Label values escape exactly \ " and newline; the tab stays raw —
	// %q-style \t renders a line the Prometheus parser rejects.
	if !strings.Contains(out, `hostile_vec_total{client="a\\b\"c\nd`+"\t"+`e"} 1`) {
		t.Errorf("counter vec label not escaped:\n%s", out)
	}
	if !strings.Contains(out, `hostile_hist_seconds_bucket{stage="q\"s\\t\n",le="1"} 1`) {
		t.Errorf("histogram vec label not escaped:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "# HELP") && strings.Count(line, " ") < 3 && len(line) > 0 {
			t.Errorf("suspicious HELP line: %q", line)
		}
	}
}

func TestExemplarsOnlyInOpenMetrics(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("ex_seconds", "x", []float64{1, 10})
	h.Observe(0.5)
	h.ObserveExemplar(5, "00112233445566778899aabbccddeeff")

	var classic bytes.Buffer
	if err := r.WriteText(&classic); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(classic.String(), "trace_id") {
		t.Errorf("v0.0.4 output leaked exemplars:\n%s", classic.String())
	}

	var om bytes.Buffer
	if err := r.WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}
	out := om.String()
	if !strings.Contains(out, `ex_seconds_bucket{le="10"} 2 # {trace_id="00112233445566778899aabbccddeeff"} 5`) {
		t.Errorf("exemplar annotation missing:\n%s", out)
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Errorf("OpenMetrics output missing # EOF terminator")
	}
	if ref, v, ok := h.Exemplar(5); !ok || ref != "00112233445566778899aabbccddeeff" || v != 5 {
		t.Errorf("Exemplar(5) = %q %g %v", ref, v, ok)
	}
	if _, _, ok := h.Exemplar(0.5); ok {
		t.Error("bucket without exemplar reported one")
	}
}

func TestMetricsHandlerNegotiatesExemplars(t *testing.T) {
	r := NewRegistry()
	r.NewHistogram("neg_seconds", "x", []float64{1}).ObserveExemplar(0.5, "ff00")
	obs, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer obs.Close()
	base := "http://" + obs.Addr().String() + "/metrics"

	resp, err := http.Get(base)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(body), "trace_id") {
		t.Error("plain GET returned exemplars")
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "0.0.4") {
		t.Errorf("plain Content-Type = %q", ct)
	}

	req, _ := http.NewRequest("GET", base, nil)
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `# {trace_id="ff00"} 0.5`) {
		t.Errorf("OpenMetrics negotiation missing exemplar:\n%s", body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "openmetrics") {
		t.Errorf("negotiated Content-Type = %q", ct)
	}
}

func TestWriteTextPropagatesError(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x_total", "x")
	if err := r.WriteText(failWriter{}); err == nil {
		t.Error("want write error")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, io.ErrClosedPipe }

func TestSetupLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	logger := SetupLoggerWriter(&buf, false)
	logger.Debug("hidden")
	logger.Info("shown")
	if out := buf.String(); strings.Contains(out, "hidden") || !strings.Contains(out, "shown") {
		t.Errorf("info-level output: %q", out)
	}
	buf.Reset()
	logger = SetupLoggerWriter(&buf, true)
	logger.Debug("now visible")
	if !strings.Contains(buf.String(), "now visible") {
		t.Errorf("verbose output: %q", buf.String())
	}
}

func TestStartProgressLogsAndStops(t *testing.T) {
	var mu lockedBuffer
	logger := slog.New(slog.NewTextHandler(&mu, &slog.HandlerOptions{Level: slog.LevelDebug}))
	stop := StartProgress(logger, 10*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for mu.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	out := mu.String()
	if !strings.Contains(out, "progress") || !strings.Contains(out, "slices_per_sec") {
		t.Errorf("progress output: %q", out)
	}
}

// lockedBuffer is a goroutine-safe bytes.Buffer for the progress test.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Len()
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
