package telemetry

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets are the default histogram bounds (seconds), spanning
// microsecond fold latencies through multi-minute experiment spans.
var DefBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 0.025, 0.1, 0.5, 1, 5, 30, 120,
}

// Histogram counts observations into fixed buckets. Observe is two
// atomic operations (bucket increment + CAS sum add); quantiles are
// estimated at read time by linear interpolation inside the bucket that
// holds the target rank.
type Histogram struct {
	desc
	bounds    []float64       // upper bounds, ascending; +Inf implicit
	counts    []atomic.Uint64 // len(bounds)+1; last is the overflow bucket
	sum       atomic.Uint64   // float64 bits
	count     atomic.Uint64
	nonfinite atomic.Uint64 // NaN/±Inf observations dropped, never bucketed
	// ex holds the last exemplar to land in each bucket (nil until one
	// does); exposed only in the OpenMetrics rendering.
	ex []atomic.Pointer[exemplar]
}

// exemplar ties one observation to a trace: the bucket's OpenMetrics
// `# {trace_id="..."} value timestamp` annotation, so a p99 bucket
// links directly to a reconstructable trace in /debug/tracez.
type exemplar struct {
	ref   string  // trace ID
	value float64 // the exact observed value
	unix  float64 // observation time, unix seconds
}

func newHistogram(name, help string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not ascending", name))
		}
	}
	return &Histogram{
		desc:   desc{name, help},
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
		ex:     make([]atomic.Pointer[exemplar], len(bounds)+1),
	}
}

// NewHistogram registers a histogram on r. Nil or empty bounds use
// DefBuckets.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(name, help, bounds)
	r.register(h)
	return h
}

// NewHistogram registers a histogram on the Default registry.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	return defaultRegistry.NewHistogram(name, help, bounds)
}

// Observe records one value. Non-finite values (NaN, ±Inf) are counted
// in NonFinite and otherwise dropped: `v > bounds[i]` is false for NaN,
// which would silently file it in the first bucket, and a single NaN
// added to sum would poison the running mean forever.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		h.nonfinite.Add(1)
		return
	}
	h.counts[h.bucketIndex(v)].Add(1)
	h.count.Add(1)
	atomicAddFloat(&h.sum, v)
}

// bucketIndex finds the bucket holding v. Bucket lists are short
// (≤ ~12); a linear scan beats binary search at this size and keeps
// the code branch-predictable.
func (h *Histogram) bucketIndex(v float64) int {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	return i
}

// ObserveExemplar records v like Observe and additionally remembers
// (traceRef, v, now) as the landing bucket's exemplar. It allocates,
// so callers use it only on sampled requests; the unsampled hot path
// stays on Observe.
func (h *Histogram) ObserveExemplar(v float64, traceRef string) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		h.nonfinite.Add(1)
		return
	}
	i := h.bucketIndex(v)
	h.counts[i].Add(1)
	h.count.Add(1)
	atomicAddFloat(&h.sum, v)
	h.ex[i].Store(&exemplar{ref: traceRef, value: v, unix: float64(time.Now().UnixNano()) / 1e9})
}

// Exemplar returns the trace ref and value of the exemplar recorded in
// the bucket holding v, if any — the reverse lookup tests and debug
// tooling use ("which trace landed near the p99?").
func (h *Histogram) Exemplar(v float64) (ref string, value float64, ok bool) {
	e := h.ex[h.bucketIndex(v)].Load()
	if e == nil {
		return "", 0, false
	}
	return e.ref, e.value, true
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// NonFinite returns the number of NaN/±Inf observations dropped.
func (h *Histogram) NonFinite() uint64 { return h.nonfinite.Load() }

// Overflow returns the number of observations above the largest finite
// bound — the saturation mass Quantile refuses to disguise as a finite
// latency.
func (h *Histogram) Overflow() uint64 { return h.counts[len(h.bounds)].Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the p-quantile (0 < p < 1) from the bucket counts,
// interpolating linearly within the holding bucket. It returns 0 with no
// observations. When the rank lands in the overflow bucket it returns
// +Inf: there is no finite upper bound to interpolate toward, and
// reporting the largest finite bound would make a saturated p99 under
// overload read as healthy — exactly when shedding logic needs the
// truth.
func (h *Histogram) Quantile(p float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := p * float64(total)
	cum := 0.0
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if cum+c >= rank && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if i == len(h.bounds) {
				return math.Inf(1)
			}
			hi := h.bounds[i]
			return lo + (hi-lo)*(rank-cum)/c
		}
		cum += c
	}
	if h.counts[len(h.bounds)].Load() > 0 {
		// Float rounding walked the cursor past every bucket while mass
		// sits in overflow; saturation still must not read as finite.
		return math.Inf(1)
	}
	return h.bounds[len(h.bounds)-1]
}

func (h *Histogram) kind() Kind { return KindHistogram }

func (h *Histogram) samples(points map[string]float64) {
	points[h.metricName+"_count"] = float64(h.Count())
	points[h.metricName+"_sum"] = h.Sum()
	points[h.metricName+"_p50"] = h.Quantile(0.50)
	points[h.metricName+"_p95"] = h.Quantile(0.95)
	points[h.metricName+"_p99"] = h.Quantile(0.99)
	points[h.metricName+"_overflow"] = float64(h.Overflow())
	points[h.metricName+"_nonfinite"] = float64(h.NonFinite())
}

func (h *Histogram) expose(w writer, exemplars bool) {
	exposeHeader(w, h)
	h.exposeSeries(w, "", exemplars)
}

// exposeSeries writes the _bucket/_sum/_count lines, with extraLabel
// (`name="value",` form) spliced into each label set for vec members.
// With exemplars set, each bucket line that has a recorded exemplar is
// followed by the OpenMetrics `# {trace_id="..."} value timestamp`
// annotation; the classic v0.0.4 rendering must never include these,
// since pre-OpenMetrics parsers reject the syntax.
func (h *Histogram) exposeSeries(w writer, extraLabel string, exemplars bool) {
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=\"%g\"} %d", h.metricName, extraLabel, b, cum)
		h.exposeExemplar(w, i, exemplars)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d", h.metricName, extraLabel, cum)
	h.exposeExemplar(w, len(h.bounds), exemplars)
	if extraLabel == "" {
		fmt.Fprintf(w, "%s_sum %g\n", h.metricName, h.Sum())
		fmt.Fprintf(w, "%s_count %d\n", h.metricName, h.Count())
		fmt.Fprintf(w, "%s_overflow %d\n", h.metricName, h.Overflow())
		fmt.Fprintf(w, "%s_nonfinite %d\n", h.metricName, h.NonFinite())
	} else {
		braced := "{" + extraLabel[:len(extraLabel)-1] + "}"
		fmt.Fprintf(w, "%s_sum%s %g\n", h.metricName, braced, h.Sum())
		fmt.Fprintf(w, "%s_count%s %d\n", h.metricName, braced, h.Count())
		fmt.Fprintf(w, "%s_overflow%s %d\n", h.metricName, braced, h.Overflow())
		fmt.Fprintf(w, "%s_nonfinite%s %d\n", h.metricName, braced, h.NonFinite())
	}
}

// exposeExemplar terminates a bucket line: with exemplars enabled and
// bucket i holding one, it appends the OpenMetrics annotation before
// the newline, otherwise it writes the bare newline.
func (h *Histogram) exposeExemplar(w writer, i int, exemplars bool) {
	if exemplars {
		if e := h.ex[i].Load(); e != nil {
			fmt.Fprintf(w, " # {trace_id=\"%s\"} %g %.3f", escapeLabelValue(e.ref), e.value, e.unix)
		}
	}
	fmt.Fprint(w, "\n")
}

// CounterVec is a family of counters keyed by one label. With is a
// read-locked map lookup; hot paths should call it once and cache the
// returned *Counter.
type CounterVec struct {
	desc
	label string
	mu    sync.RWMutex
	m     map[string]*Counter
}

// NewCounterVec registers a labeled counter family on r.
func (r *Registry) NewCounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{desc: desc{name, help}, label: label, m: make(map[string]*Counter)}
	r.register(v)
	return v
}

// NewCounterVec registers a labeled counter family on the Default
// registry.
func NewCounterVec(name, help, label string) *CounterVec {
	return defaultRegistry.NewCounterVec(name, help, label)
}

// With returns the counter for the given label value, creating it on
// first use.
func (v *CounterVec) With(value string) *Counter {
	v.mu.RLock()
	c, ok := v.m[value]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok = v.m[value]; ok {
		return c
	}
	c = &Counter{desc: desc{v.metricName, v.metricHelp}}
	v.m[value] = c
	return c
}

func (v *CounterVec) kind() Kind { return KindCounter }

func (v *CounterVec) snapshotMap() map[string]*Counter {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]*Counter, len(v.m))
	for k, c := range v.m {
		out[k] = c
	}
	return out
}

func (v *CounterVec) samples(points map[string]float64) {
	for val, c := range v.snapshotMap() {
		points[fmt.Sprintf("%s{%s=%q}", v.metricName, v.label, val)] = float64(c.Value())
	}
}

func (v *CounterVec) expose(w writer, _ bool) {
	exposeHeader(w, v)
	m := v.snapshotMap()
	for _, val := range sortedLabelValues(m) {
		fmt.Fprintf(w, "%s{%s=\"%s\"} %d\n", v.metricName, v.label, escapeLabelValue(val), m[val].Value())
	}
}

// HistogramVec is a family of histograms keyed by one label (span
// durations by span name). Same locking contract as CounterVec.
type HistogramVec struct {
	desc
	label  string
	bounds []float64
	mu     sync.RWMutex
	m      map[string]*Histogram
}

// NewHistogramVec registers a labeled histogram family on r. Nil or
// empty bounds use DefBuckets.
func (r *Registry) NewHistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	v := &HistogramVec{
		desc:   desc{name, help},
		label:  label,
		bounds: append([]float64(nil), bounds...),
		m:      make(map[string]*Histogram),
	}
	r.register(v)
	return v
}

// NewHistogramVec registers a labeled histogram family on the Default
// registry.
func NewHistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	return defaultRegistry.NewHistogramVec(name, help, label, bounds)
}

// With returns the histogram for the given label value, creating it on
// first use.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.RLock()
	h, ok := v.m[value]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok = v.m[value]; ok {
		return h
	}
	h = newHistogram(v.metricName, v.metricHelp, v.bounds)
	v.m[value] = h
	return h
}

func (v *HistogramVec) kind() Kind { return KindHistogram }

func (v *HistogramVec) snapshotMap() map[string]*Histogram {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]*Histogram, len(v.m))
	for k, h := range v.m {
		out[k] = h
	}
	return out
}

func (v *HistogramVec) samples(points map[string]float64) {
	for val, h := range v.snapshotMap() {
		base := fmt.Sprintf("%s{%s=%q}", v.metricName, v.label, val)
		points[base+"_count"] = float64(h.Count())
		points[base+"_sum"] = h.Sum()
		points[base+"_p50"] = h.Quantile(0.50)
		points[base+"_p95"] = h.Quantile(0.95)
		points[base+"_p99"] = h.Quantile(0.99)
		points[base+"_overflow"] = float64(h.Overflow())
		points[base+"_nonfinite"] = float64(h.NonFinite())
	}
}

func (v *HistogramVec) expose(w writer, exemplars bool) {
	exposeHeader(w, v)
	m := v.snapshotMap()
	for _, val := range sortedLabelValues(m) {
		m[val].exposeSeries(w, fmt.Sprintf("%s=\"%s\",", v.label, escapeLabelValue(val)), exemplars)
	}
}
