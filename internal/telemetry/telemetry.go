// Package telemetry is the simulator's self-observation layer: a
// dependency-free metrics registry (counters, gauges, fixed-bucket
// histograms and labeled families, all updated with atomic operations),
// lightweight span timing for run phases, a Prometheus-style text
// exposition served next to expvar and pprof, and structured slog
// progress logging.
//
// The paper's whole premise is that a running system should expose its
// internals through cheap always-on counters; this package applies the
// same discipline to the simulator itself. Instrumented packages declare
// their metrics once at init time on the Default registry and update
// them from hot paths with single atomic operations — no locks, no
// allocation, no formatting until somebody actually scrapes /metrics.
//
// # Cost budget
//
// Counter.Add/Inc and Gauge.Add are one atomic RMW. FloatCounter.Add and
// Histogram.Observe are a CAS loop (one iteration when uncontended).
// Vec.With takes a read lock only on first lookup per label; callers on
// hot paths should cache the returned metric. The simulation slice path
// performs a handful of atomic adds per slice and batches engine-level
// counters every cancel-check interval, keeping the overhead well under
// the 2% regression budget on the cluster benchmarks.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind identifies what a metric is, for exposition TYPE lines.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// metric is anything the registry can expose.
type metric interface {
	name() string
	help() string
	kind() Kind
	// samples appends flattened (suffix/labels, value) points; see
	// Snapshot for the flattening rules.
	samples(points map[string]float64)
	// expose writes the metric in Prometheus text format. exemplars
	// selects the OpenMetrics rendering, which appends `# {...}`
	// exemplar annotations to histogram bucket lines.
	expose(w writer, exemplars bool)
}

// writer is the subset of io.Writer + fmt use sites need; kept tiny so
// expose implementations stay allocation-conscious.
type writer interface {
	Write(p []byte) (int, error)
}

// Registry holds named metrics in registration order. All methods are
// safe for concurrent use; metric updates themselves never touch the
// registry lock.
type Registry struct {
	mu      sync.RWMutex
	ordered []metric
	byName  map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]metric)}
}

// defaultRegistry is the process-wide registry every package-level
// constructor registers on.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// register adds m, panicking on a duplicate name: metrics are declared
// once at package init, so a collision is a programming error.
func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[m.name()]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", m.name()))
	}
	r.byName[m.name()] = m
	r.ordered = append(r.ordered, m)
}

// metricsInOrder returns a stable copy of the registered metrics.
func (r *Registry) metricsInOrder() []metric {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]metric(nil), r.ordered...)
}

// Snapshot flattens every metric to name → value. Plain counters and
// gauges appear under their name; labeled families under
// name{label="value"}; histograms contribute name_count, name_sum and
// name_p50/p95/p99. The map is a point-in-time copy safe to use from
// tests and reports.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	for _, m := range r.metricsInOrder() {
		m.samples(out)
	}
	return out
}

// Snapshot flattens the Default registry; see Registry.Snapshot.
func Snapshot() map[string]float64 { return defaultRegistry.Snapshot() }

// Counter is a monotonically increasing integer count.
type Counter struct {
	desc
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) kind() Kind { return KindCounter }
func (c *Counter) samples(points map[string]float64) {
	points[c.metricName] = float64(c.v.Load())
}
func (c *Counter) expose(w writer, _ bool) {
	exposeHeader(w, c)
	fmt.Fprintf(w, "%s %d\n", c.metricName, c.v.Load())
}

// FloatCounter is a monotonically increasing float count (simulated
// seconds, Joules, ...). Add is a CAS loop — one iteration when
// uncontended — so batch hot-path additions where possible.
type FloatCounter struct {
	desc
	bits atomic.Uint64
}

// Add adds v (v must be non-negative to keep the counter monotonic).
func (c *FloatCounter) Add(v float64) { atomicAddFloat(&c.bits, v) }

// Value returns the current total.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

func (c *FloatCounter) kind() Kind { return KindCounter }
func (c *FloatCounter) samples(points map[string]float64) {
	points[c.metricName] = c.Value()
}
func (c *FloatCounter) expose(w writer, _ bool) {
	exposeHeader(w, c)
	fmt.Fprintf(w, "%s %g\n", c.metricName, c.Value())
}

// Gauge is a value that can go up and down.
type Gauge struct {
	desc
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (may be negative).
func (g *Gauge) Add(delta float64) { atomicAddFloat(&g.bits, delta) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) kind() Kind { return KindGauge }
func (g *Gauge) samples(points map[string]float64) {
	points[g.metricName] = g.Value()
}
func (g *Gauge) expose(w writer, _ bool) {
	exposeHeader(w, g)
	fmt.Fprintf(w, "%s %g\n", g.metricName, g.Value())
}

// atomicAddFloat adds delta to the float64 stored in bits.
func atomicAddFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// desc carries the shared name/help metadata.
type desc struct {
	metricName string
	metricHelp string
}

func (d desc) name() string { return d.metricName }
func (d desc) help() string { return d.metricHelp }

func exposeHeader(w writer, m metric) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name(), escapeHelp(m.help()), m.name(), m.kind())
}

// escapeHelp escapes HELP text per the Prometheus text format v0.0.4:
// backslash and newline only. The fast path (no special characters)
// returns the input unchanged.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// escapeLabelValue escapes a label value per the text format: backslash,
// double quote and newline. Note this is narrower than Go's %q — the
// Prometheus parser knows exactly three escapes, so rendering a tab as
// \t (as %q would) produces a line scrapers reject.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// NewCounter registers a counter on r.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{desc: desc{name, help}}
	r.register(c)
	return c
}

// NewFloatCounter registers a float counter on r.
func (r *Registry) NewFloatCounter(name, help string) *FloatCounter {
	c := &FloatCounter{desc: desc{name, help}}
	r.register(c)
	return c
}

// NewGauge registers a gauge on r.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{desc: desc{name, help}}
	r.register(g)
	return g
}

// NewCounter registers a counter on the Default registry.
func NewCounter(name, help string) *Counter { return defaultRegistry.NewCounter(name, help) }

// NewFloatCounter registers a float counter on the Default registry.
func NewFloatCounter(name, help string) *FloatCounter {
	return defaultRegistry.NewFloatCounter(name, help)
}

// NewGauge registers a gauge on the Default registry.
func NewGauge(name, help string) *Gauge { return defaultRegistry.NewGauge(name, help) }

// sortedLabelValues returns the keys of m in sorted order, so exposition
// output is deterministic.
func sortedLabelValues[M any](m map[string]M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
