package telemetry

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeFloatCounter(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	f := r.NewFloatCounter("f_total", "a float counter")
	f.Add(1.5)
	f.Add(0.25)
	if got := f.Value(); got != 1.75 {
		t.Errorf("float counter = %g, want 1.75", got)
	}
	g := r.NewGauge("g", "a gauge")
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Errorf("gauge = %g, want 2", got)
	}
	snap := r.Snapshot()
	for k, want := range map[string]float64{"c_total": 5, "f_total": 1.75, "g": 2} {
		if snap[k] != want {
			t.Errorf("snapshot[%s] = %g, want %g", k, snap[k], want)
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup", "x")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.NewCounter("dup", "x")
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("cc_total", "x")
	f := r.NewFloatCounter("cf_total", "x")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				f.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if math.Abs(f.Value()-4000) > 1e-9 {
		t.Errorf("float counter = %g, want 4000", f.Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h_seconds", "x", []float64{0.01, 0.1, 1, 10})
	for i := 0; i < 100; i++ {
		h.Observe(0.05) // all in the (0.01, 0.1] bucket
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-5) > 1e-9 {
		t.Errorf("sum = %g, want 5", h.Sum())
	}
	p50 := h.Quantile(0.5)
	if p50 <= 0.01 || p50 > 0.1 {
		t.Errorf("p50 = %g, want within (0.01, 0.1]", p50)
	}
	// A rank landing in the overflow bucket must not be disguised as
	// the largest finite bound: saturation reads as +Inf.
	h.Observe(1e6)
	if q := h.Quantile(0.9999); !math.IsInf(q, 1) {
		t.Errorf("overflow quantile = %g, want +Inf", q)
	}
	if h.Overflow() != 1 {
		t.Errorf("overflow count = %d, want 1", h.Overflow())
	}
	// Empty histogram.
	e := r.NewHistogram("e_seconds", "x", nil)
	if q := e.Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %g, want 0", q)
	}
}

// TestHistogramNonFiniteObservations is the regression test for the NaN
// poisoning bug: `v > bounds[i]` is false for NaN, so a NaN observation
// used to land in the first bucket and turn _sum (and every derived
// mean) into NaN forever. Non-finite values must go to a dedicated
// counter and leave count/sum/buckets untouched.
func TestHistogramNonFiniteObservations(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("nf_seconds", "x", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	h.Observe(2)
	if h.Count() != 2 {
		t.Errorf("count = %d, want 2 (non-finite must not count)", h.Count())
	}
	if h.NonFinite() != 3 {
		t.Errorf("nonfinite = %d, want 3", h.NonFinite())
	}
	if got := h.Sum(); math.IsNaN(got) || got != 2.5 {
		t.Errorf("sum = %g, want 2.5 (NaN must not poison the sum)", got)
	}
	if got := h.counts[0].Load(); got != 1 {
		t.Errorf("first bucket = %d, want 1 (NaN must not be bucketed)", got)
	}
	if q := h.Quantile(0.5); math.IsNaN(q) {
		t.Errorf("quantile = NaN after non-finite observations")
	}
	snap := r.Snapshot()
	if snap["nf_seconds_nonfinite"] != 3 {
		t.Errorf("snapshot nonfinite = %g, want 3", snap["nf_seconds_nonfinite"])
	}
}

// TestHistogramOverflowExposed checks the saturation mass is visible to
// scrapers: samples() carries _overflow, and the Prometheus text carries
// explicit _overflow/_nonfinite lines next to _sum/_count.
func TestHistogramOverflowExposed(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("ov_seconds", "x", []float64{1})
	h.Observe(0.5)
	h.Observe(100)
	h.Observe(200)
	h.Observe(math.NaN())
	snap := r.Snapshot()
	if snap["ov_seconds_overflow"] != 2 {
		t.Errorf("snapshot overflow = %g, want 2", snap["ov_seconds_overflow"])
	}
	if !math.IsInf(snap["ov_seconds_p99"], 1) {
		t.Errorf("saturated p99 = %g, want +Inf", snap["ov_seconds_p99"])
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ov_seconds_overflow 2", "ov_seconds_nonfinite 1"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, buf.String())
		}
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-ascending bounds did not panic")
		}
	}()
	NewRegistry().NewHistogram("bad", "x", []float64{1, 1})
}

func TestVecs(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("jobs_total", "x", "kind")
	cv.With("a").Add(2)
	cv.With("b").Inc()
	if cv.With("a") != cv.With("a") {
		t.Error("With not idempotent")
	}
	hv := r.NewHistogramVec("dur_seconds", "x", "kind", []float64{1, 10})
	hv.With("a").Observe(0.5)
	hv.With("a").Observe(5)
	snap := r.Snapshot()
	if snap[`jobs_total{kind="a"}`] != 2 || snap[`jobs_total{kind="b"}`] != 1 {
		t.Errorf("counter vec snapshot: %v", snap)
	}
	if snap[`dur_seconds{kind="a"}_count`] != 2 {
		t.Errorf("histogram vec snapshot: %v", snap)
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("a_total", "counts a").Add(3)
	r.NewGauge("b", "gauges b").Set(1.5)
	h := r.NewHistogram("lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(50)
	cv := r.NewCounterVec("ops_total", "ops", "op")
	cv.With("read").Add(7)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP a_total counts a",
		"# TYPE a_total counter",
		"a_total 3",
		"# TYPE b gauge",
		"b 1.5",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_count 3",
		`ops_total{op="read"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestSpan(t *testing.T) {
	before := Snapshot()["spans_active"]
	sp := StartSpan("test.span")
	during := Snapshot()["spans_active"]
	if during != before+1 {
		t.Errorf("spans_active during = %g, want %g", during, before+1)
	}
	if d := sp.End(); d < 0 {
		t.Errorf("duration = %v", d)
	}
	snap := Snapshot()
	if snap["spans_active"] != before {
		t.Errorf("spans_active after = %g, want %g", snap["spans_active"], before)
	}
	if snap[`spans_started_total{span="test.span"}`] < 1 {
		t.Error("span start not counted")
	}
	if snap[`span_duration_seconds{span="test.span"}_count`] < 1 {
		t.Error("span duration not observed")
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().NewCounter("bench_total", "x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().NewHistogram("bench_seconds", "x", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.003)
	}
}
