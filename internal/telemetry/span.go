package telemetry

import "time"

// Span metrics live on the Default registry so every instrumented phase
// in the process shares one family: a duration histogram and a start
// counter labeled by span name, plus a live gauge of open spans.
var (
	spanDurations = NewHistogramVec("span_duration_seconds",
		"wall-clock duration of completed run phases", "span", nil)
	spanStarts = NewCounterVec("spans_started_total",
		"run phases entered, by span name", "span")
	spansActive = NewGauge("spans_active",
		"run phases currently open (started and not yet ended)")
)

// Span is one timed run phase. Create with StartSpan, finish with End.
// A Span is not reusable and End must be called exactly once (typically
// `defer telemetry.StartSpan("x").End()`). It is a small value, not a
// pointer, so spans on hot paths cost no heap allocation.
type Span struct {
	name  string
	start time.Time
}

// StartSpan opens a named phase timer ("cluster.run",
// "experiments.table1", ...). The name becomes the span label on the
// shared span_duration_seconds family.
func StartSpan(name string) Span {
	spanStarts.With(name).Inc()
	spansActive.Add(1)
	return Span{name: name, start: time.Now()}
}

// End closes the span, records its duration and returns it.
func (s Span) End() time.Duration {
	d := time.Since(s.start)
	spansActive.Add(-1)
	spanDurations.With(s.name).Observe(d.Seconds())
	return d
}

// Name returns the span's name.
func (s Span) Name() string { return s.name }
