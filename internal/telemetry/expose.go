package telemetry

import (
	"context"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// WriteText writes every registered metric in the Prometheus text
// exposition format (v0.0.4): # HELP / # TYPE headers, one line per
// sample, histograms as cumulative _bucket series plus _sum and _count.
// The output never contains exemplar annotations — v0.0.4 parsers
// reject them.
func (r *Registry) WriteText(w io.Writer) error {
	bw := &errWriter{w: w}
	for _, m := range r.metricsInOrder() {
		m.expose(bw, false)
	}
	return bw.err
}

// WriteText writes the Default registry; see Registry.WriteText.
func WriteText(w io.Writer) error { return defaultRegistry.WriteText(w) }

// WriteOpenMetrics writes the registry in the OpenMetrics-flavored text
// form: same series as WriteText plus `# {trace_id="..."} v ts`
// exemplar annotations on histogram bucket lines that have one, and the
// required `# EOF` terminator.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	bw := &errWriter{w: w}
	for _, m := range r.metricsInOrder() {
		m.expose(bw, true)
	}
	fmt.Fprint(bw, "# EOF\n")
	return bw.err
}

// WriteOpenMetrics writes the Default registry; see
// Registry.WriteOpenMetrics.
func WriteOpenMetrics(w io.Writer) error { return defaultRegistry.WriteOpenMetrics(w) }

// errWriter remembers the first write error so expose implementations
// can stay error-blind.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, err
}

// Handler returns the observability mux for r:
//
//	/metrics       Prometheus text exposition of the registry
//	/debug/vars    expvar JSON (Go runtime memstats, cmdline)
//	/debug/pprof/  the standard pprof index, profiles and traces
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		// Exemplars ride only on the OpenMetrics rendering: scrapers opt
		// in via Accept content negotiation (or ?exemplars=1 for humans),
		// and classic v0.0.4 clients keep getting output their parsers
		// accept.
		if strings.Contains(req.Header.Get("Accept"), "application/openmetrics-text") ||
			req.URL.Query().Get("exemplars") == "1" {
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
			_ = r.WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintln(w, "trickledown telemetry: /metrics /debug/vars /debug/pprof/")
	})
	return mux
}

// Handler returns the Default registry's observability mux.
func Handler() http.Handler { return defaultRegistry.Handler() }

// ObsServer is a running observability listener returned by Serve. It
// exists so long-lived processes (tdserve) can drain the metrics
// endpoint on SIGTERM instead of leaking the listener until exit.
type ObsServer struct {
	addr net.Addr
	srv  *http.Server
}

// Addr returns the bound listen address.
func (o *ObsServer) Addr() net.Addr { return o.addr }

// Shutdown gracefully drains the observability server: in-flight
// scrapes finish, new connections are refused.
func (o *ObsServer) Shutdown(ctx context.Context) error { return o.srv.Shutdown(ctx) }

// Close abruptly closes the listener and any active connections.
func (o *ObsServer) Close() error { return o.srv.Close() }

// Serve starts the observability server for r on addr (":0" picks a free
// port) in a background goroutine. Short-lived CLI runs may discard the
// handle; daemons keep it and call Shutdown during drain.
func (r *Registry) Serve(addr string) (*ObsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: r.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &ObsServer{addr: ln.Addr(), srv: srv}, nil
}

// Serve starts the Default registry's observability server; see
// Registry.Serve.
func Serve(addr string) (*ObsServer, error) { return defaultRegistry.Serve(addr) }
