package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// WriteText writes every registered metric in the Prometheus text
// exposition format (v0.0.4): # HELP / # TYPE headers, one line per
// sample, histograms as cumulative _bucket series plus _sum and _count.
func (r *Registry) WriteText(w io.Writer) error {
	bw := &errWriter{w: w}
	for _, m := range r.metricsInOrder() {
		m.expose(bw)
	}
	return bw.err
}

// WriteText writes the Default registry; see Registry.WriteText.
func WriteText(w io.Writer) error { return defaultRegistry.WriteText(w) }

// errWriter remembers the first write error so expose implementations
// can stay error-blind.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, err
}

// Handler returns the observability mux for r:
//
//	/metrics       Prometheus text exposition of the registry
//	/debug/vars    expvar JSON (Go runtime memstats, cmdline)
//	/debug/pprof/  the standard pprof index, profiles and traces
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintln(w, "trickledown telemetry: /metrics /debug/vars /debug/pprof/")
	})
	return mux
}

// Handler returns the Default registry's observability mux.
func Handler() http.Handler { return defaultRegistry.Handler() }

// Serve starts the observability server for r on addr (":0" picks a free
// port) in a background goroutine and returns the bound address. The
// server lives for the remainder of the process; CLI runs are short and
// scrapers poll while the run is in flight.
func (r *Registry) Serve(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: r.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr(), nil
}

// Serve starts the Default registry's observability server; see
// Registry.Serve.
func Serve(addr string) (net.Addr, error) { return defaultRegistry.Serve(addr) }
