package telemetry

import (
	"context"
	"io"
	"log/slog"
	"os"
	"time"
)

// SetupLogger installs (and returns) the process slog default: a text
// handler on stderr at Info level, or Debug when verbose. The CLIs call
// it once from main; status lines go through slog so they are leveled
// and structured while actual results stay on stdout.
func SetupLogger(verbose bool) *slog.Logger {
	return SetupLoggerWriter(os.Stderr, verbose)
}

// SetupLoggerWriter is SetupLogger with an explicit sink, for tests.
func SetupLoggerWriter(w io.Writer, verbose bool) *slog.Logger {
	level := slog.LevelInfo
	if verbose {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)
	return logger
}

// progressKeys are the registry samples the periodic progress line
// reports: enough to see slice throughput, pool saturation, estimator
// drift inputs and DAQ activity at a glance without scraping /metrics.
var progressKeys = []string{
	"sim_slices_total",
	"sim_seconds_total",
	"pool_tasks_running",
	"pool_tasks_completed_total",
	"experiments_cache_hits_total",
	"experiments_cache_misses_total",
	"daq_samples_total",
	"spans_active",
}

// StartProgress launches a goroutine that logs a Debug-level progress
// line from the Default registry every interval, including the
// per-interval slice rate. The returned stop function cancels the loop
// and waits for it to exit; call it before process teardown.
func StartProgress(logger *slog.Logger, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		lastSlices := Snapshot()["sim_slices_total"]
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
			}
			snap := Snapshot()
			args := make([]any, 0, 2*len(progressKeys)+2)
			for _, k := range progressKeys {
				if v, ok := snap[k]; ok {
					args = append(args, k, v)
				}
			}
			slices := snap["sim_slices_total"]
			args = append(args, "slices_per_sec", (slices-lastSlices)/interval.Seconds())
			lastSlices = slices
			logger.Debug("progress", args...)
		}
	}()
	return func() {
		cancel()
		<-done
	}
}
