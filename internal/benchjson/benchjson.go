// Package benchjson turns `go test -bench` output into the repo's
// machine-readable benchmark record (BENCH_<date>.json) and compares two
// records for allocation regressions. The JSON is the contract between
// cmd/tdbench, the checked-in baseline, and the CI regression gate; see
// DESIGN.md's Performance section for the workflow.
package benchjson

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the full benchmark name including sub-benchmarks, e.g.
	// "BenchmarkCluster8Nodes/workers=4".
	Name string `json:"name"`
	// Iterations is the measured b.N.
	Iterations int `json:"iterations"`
	// NsPerOp, BytesPerOp and AllocsPerOp are the standard -benchmem
	// triple. AllocsPerOp is the regression-gated number: it is exact
	// and deterministic where ns/op is noisy on shared runners.
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics carries every custom b.ReportMetric unit — the subsystem
	// error percentages and reference Watts the suite reports — keyed by
	// unit name (e.g. "cpu_err%", "gcc_total_W").
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Notes carries non-numeric annotations a run wants preserved next
	// to its metrics — loadgen files the slowest server-observed trace
	// IDs here so a latency regression in the record links straight to
	// its /debug/tracez stage breakdown.
	Notes map[string]string `json:"notes,omitempty"`
}

// Result is one complete benchmark run.
type Result struct {
	// Date is the run date, YYYY-MM-DD.
	Date string `json:"date"`
	// GoVersion, GOOS, GOARCH and CPU describe the machine the numbers
	// came from; compare allocs/op across machines, ns/op only within
	// one.
	GoVersion string `json:"go_version,omitempty"`
	GOOS      string `json:"goos,omitempty"`
	GOARCH    string `json:"goarch,omitempty"`
	CPU       string `json:"cpu,omitempty"`
	// Benchtime is the -benchtime the suite ran with.
	Benchtime string `json:"benchtime,omitempty"`
	// Benchmarks holds the parsed results in output order.
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Find returns the named benchmark, or nil.
func (r *Result) Find(name string) *Benchmark {
	for i := range r.Benchmarks {
		if r.Benchmarks[i].Name == name {
			return &r.Benchmarks[i]
		}
	}
	return nil
}

// Parse extracts benchmark lines and machine metadata from `go test
// -bench` output. Unrecognized lines are ignored, so the raw output can
// be streamed to a terminal and parsed afterwards.
func Parse(out []byte) (*Result, error) {
	r := &Result{}
	sc := bufio.NewScanner(bytes.NewReader(out))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			r.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			r.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			r.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			if ok {
				r.Benchmarks = append(r.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return r, nil
}

// parseLine parses one "BenchmarkX  N  v unit  v unit ..." line. Lines
// that merely start with "Benchmark" but are not result lines (e.g. the
// bare name echoed by -v) report ok=false.
func parseLine(line string) (Benchmark, bool, error) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return Benchmark{}, false, nil
	}
	n, err := strconv.Atoi(f[1])
	if err != nil {
		return Benchmark{}, false, nil
	}
	b := Benchmark{Name: f[0], Iterations: n}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false, fmt.Errorf("benchjson: bad value in %q: %w", line, err)
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	return b, true, nil
}

// CompareAllocs checks every benchmark present in both records and
// returns one error per allocation regression beyond maxRegress
// (0.20 = +20%). allocs/op is compared because it is deterministic;
// ns/op differences are reported by cmd/tdbench but never gate.
// Benchmarks missing from either side are skipped: the baseline may
// predate a new benchmark, and CI may run a subset of the suite.
func CompareAllocs(baseline, current *Result, maxRegress float64) []error {
	var errs []error
	for i := range current.Benchmarks {
		cur := &current.Benchmarks[i]
		base := baseline.Find(cur.Name)
		if base == nil || base.AllocsPerOp == 0 {
			continue
		}
		limit := base.AllocsPerOp * (1 + maxRegress)
		if cur.AllocsPerOp > limit {
			errs = append(errs, fmt.Errorf(
				"%s: %.0f allocs/op vs baseline %.0f (limit %.0f, +%.0f%%)",
				cur.Name, cur.AllocsPerOp, base.AllocsPerOp, limit,
				100*(cur.AllocsPerOp/base.AllocsPerOp-1)))
		}
	}
	return errs
}

// Decode parses a JSON-encoded Result — the checked-in baseline format.
// Malformed input returns an error, never a panic: baselines come from
// the repository and from artifact downloads, both of which can truncate
// or corrupt.
func Decode(data []byte) (*Result, error) {
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchjson: parsing baseline: %w", err)
	}
	return &r, nil
}

// Load reads a Result from a JSON file.
func Load(path string) (*Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("benchjson: %s: %w", path, err)
	}
	return r, nil
}

// Write writes the Result as indented JSON with a trailing newline.
func Write(path string, r *Result) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
