package benchjson

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: trickledown
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTable1 	      20	     34186 ns/op	       157.7 gcc_cpu_W	       267.4 gcc_total_W	    8024 B/op	     106 allocs/op
BenchmarkTable3 	       3	  11860021 ns/op	         3.1 cpu_err%	     14258 B/op	     190 allocs/op
BenchmarkCluster8Nodes/workers=4         	       3	  14937388 ns/op	      1301 rack_W	   45698 B/op	     551 allocs/op
BenchmarkSimulationSecond 	       3	   1562943 ns/op	     864 B/op	      13 allocs/op
PASS
ok  	trickledown	2.627s
`

func TestParse(t *testing.T) {
	r, err := Parse([]byte(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if r.GOOS != "linux" || r.GOARCH != "amd64" || !strings.Contains(r.CPU, "Xeon") {
		t.Errorf("metadata = %q/%q/%q", r.GOOS, r.GOARCH, r.CPU)
	}
	if len(r.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(r.Benchmarks))
	}
	t1 := r.Find("BenchmarkTable1")
	if t1 == nil {
		t.Fatal("BenchmarkTable1 missing")
	}
	if t1.Iterations != 20 || t1.NsPerOp != 34186 || t1.BytesPerOp != 8024 || t1.AllocsPerOp != 106 {
		t.Errorf("Table1 = %+v", t1)
	}
	if t1.Metrics["gcc_cpu_W"] != 157.7 || t1.Metrics["gcc_total_W"] != 267.4 {
		t.Errorf("Table1 metrics = %v", t1.Metrics)
	}
	if got := r.Find("BenchmarkTable3").Metrics["cpu_err%"]; got != 3.1 {
		t.Errorf("subsystem error metric = %v, want 3.1", got)
	}
	if sub := r.Find("BenchmarkCluster8Nodes/workers=4"); sub == nil || sub.AllocsPerOp != 551 {
		t.Errorf("sub-benchmark = %+v", sub)
	}
	if r.Find("nope") != nil {
		t.Error("Find of a missing benchmark should be nil")
	}
}

func TestParseIgnoresNonResultLines(t *testing.T) {
	r, err := Parse([]byte("BenchmarkFoo\nBenchmarkFoo-8   notanumber ns/op\nrandom noise\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Benchmarks) != 0 {
		t.Errorf("parsed %d benchmarks from noise", len(r.Benchmarks))
	}
}

func TestCompareAllocs(t *testing.T) {
	base := &Result{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", AllocsPerOp: 100},
		{Name: "BenchmarkB", AllocsPerOp: 10},
		{Name: "BenchmarkGone", AllocsPerOp: 5},
		{Name: "BenchmarkZero"}, // no alloc data: never gates
	}}
	cur := &Result{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", AllocsPerOp: 119}, // +19%: within the gate
		{Name: "BenchmarkB", AllocsPerOp: 13},  // +30%: regression
		{Name: "BenchmarkNew", AllocsPerOp: 1e6},
		{Name: "BenchmarkZero", AllocsPerOp: 50},
	}}
	errs := CompareAllocs(base, cur, 0.20)
	if len(errs) != 1 {
		t.Fatalf("errors = %v, want exactly the BenchmarkB regression", errs)
	}
	if !strings.Contains(errs[0].Error(), "BenchmarkB") {
		t.Errorf("err = %v", errs[0])
	}
	if errs := CompareAllocs(base, cur, 0.50); len(errs) != 0 {
		t.Errorf("relaxed gate still fails: %v", errs)
	}
}

func TestWriteLoadRoundTrip(t *testing.T) {
	r, err := Parse([]byte(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	r.Date = "2026-08-06"
	r.Benchtime = "3x"
	path := filepath.Join(t.TempDir(), "BENCH_2026-08-06.json")
	if err := Write(path, r); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Date != r.Date || got.Benchtime != r.Benchtime || len(got.Benchmarks) != len(r.Benchmarks) {
		t.Errorf("round trip: %+v", got)
	}
	if got.Find("BenchmarkTable1").Metrics["gcc_cpu_W"] != 157.7 {
		t.Error("metrics lost in round trip")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(data), "\n") {
		t.Error("missing trailing newline")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("Load of a missing file should fail")
	}
}
