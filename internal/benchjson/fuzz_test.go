package benchjson

import (
	"encoding/json"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the baseline parser: malformed
// JSON must return an error and anything accepted must re-encode — the
// gate in cmd/tdbench reads baselines from checked-in files and CI
// artifact downloads, either of which can arrive truncated or mangled.
func FuzzDecode(f *testing.F) {
	valid, err := json.Marshal(&Result{
		Date: "2026-08-06",
		Benchmarks: []Benchmark{{
			Name: "BenchmarkEstimate", Iterations: 100, NsPerOp: 1234,
			AllocsPerOp: 2, Metrics: map[string]float64{"cpu_err%": 3.1},
		}},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"benchmarks": [{"iterations": "NaN"}]}`))
	f.Add(valid[:len(valid)/2]) // truncated download
	f.Add([]byte("\xff\xfe not json at all"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := Decode(data)
		if err != nil {
			return
		}
		if r == nil {
			t.Fatal("nil result without error")
		}
		if _, err := json.Marshal(r); err != nil {
			t.Fatalf("accepted baseline failed to re-encode: %v", err)
		}
		// The regression gate must tolerate whatever Decode accepted.
		_ = CompareAllocs(r, r, 0.2)
	})
}

// FuzzParse does the same for raw `go test -bench` output: unrecognized
// lines are skipped, result-shaped lines with garbage values error, and
// nothing panics.
func FuzzParse(f *testing.F) {
	f.Add("goos: linux\nBenchmarkX 10 5.0 ns/op 3 allocs/op\n")
	f.Add("BenchmarkX 10 notanumber ns/op\n")
	f.Add("Benchmark\n\x00\n")
	f.Add("BenchmarkX 9e999 1 ns/op\n")
	f.Fuzz(func(t *testing.T, out string) {
		r, err := Parse([]byte(out))
		if err == nil && r == nil {
			t.Fatal("nil result without error")
		}
	})
}
