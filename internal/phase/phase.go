// Package phase detects power phases in estimated (or measured) power
// series — the paper's Section 2.4 context: "for the purpose of
// detecting power phases, Isci compares ... control-flow metrics to
// on-chip performance counters [and] finds that performance counter
// metrics have a lower error rate", and phase boundaries are where
// performance-insensitive adaptation opportunities live.
//
// The detector is an online mean-tracking change detector: a phase is a
// maximal run of samples within a threshold band of its running mean.
// It deliberately consumes only the per-second power readings the
// trickle-down models produce, so it works on machines with no sensors.
package phase

import (
	"errors"
	"fmt"

	"trickledown/internal/power"
)

// ErrThreshold is returned for a non-positive detection threshold.
var ErrThreshold = errors.New("phase: threshold must be positive")

// Phase is one detected power phase over [Start, End] sample indices.
type Phase struct {
	Start, End int
	// Mean is the phase's average total power.
	Mean float64
	// PerSub is the phase's average per-subsystem power.
	PerSub power.Reading
	// Samples is End-Start+1.
	Samples int
}

func (p Phase) String() string {
	return fmt.Sprintf("[%d..%d] %.1fW over %d samples", p.Start, p.End, p.Mean, p.Samples)
}

// Detector accumulates readings and emits phases online.
type Detector struct {
	threshold float64
	idx       int
	open      bool
	cur       Phase
}

// NewDetector returns a detector; a new phase opens whenever a sample
// departs from the running phase mean by more than threshold Watts.
func NewDetector(thresholdWatts float64) (*Detector, error) {
	if thresholdWatts <= 0 {
		return nil, ErrThreshold
	}
	return &Detector{threshold: thresholdWatts}, nil
}

// Observe feeds the next per-second reading. When the sample breaks the
// current phase, the completed phase is returned (otherwise nil).
func (d *Detector) Observe(r power.Reading) *Phase {
	total := r.Total()
	idx := d.idx
	d.idx++
	if !d.open {
		d.cur = Phase{Start: idx, End: idx, Mean: total, PerSub: r, Samples: 1}
		d.open = true
		return nil
	}
	if abs(total-d.cur.Mean) > d.threshold {
		done := d.cur
		d.cur = Phase{Start: idx, End: idx, Mean: total, PerSub: r, Samples: 1}
		return &done
	}
	d.cur.End = idx
	d.cur.Samples++
	n := float64(d.cur.Samples)
	d.cur.Mean += (total - d.cur.Mean) / n
	for i := range d.cur.PerSub {
		d.cur.PerSub[i] += (r[i] - d.cur.PerSub[i]) / n
	}
	return nil
}

// CurrentLen reports how many samples the open phase has absorbed, 0
// when no phase is open. Consumers that must not act mid-transition
// (the adapt layer gates retraining on this) treat a short open phase
// as "the workload just moved — wait".
func (d *Detector) CurrentLen() int {
	if !d.open {
		return 0
	}
	return d.cur.Samples
}

// Settled reports whether the open phase has persisted for at least n
// samples — the boundary-quiet condition for phase-gated decisions.
func (d *Detector) Settled(n int) bool { return d.CurrentLen() >= n }

// Flush closes and returns the phase in progress, if any.
func (d *Detector) Flush() *Phase {
	if !d.open {
		return nil
	}
	d.open = false
	done := d.cur
	return &done
}

// Detect runs the detector over a whole series.
func Detect(series []power.Reading, thresholdWatts float64) ([]Phase, error) {
	d, err := NewDetector(thresholdWatts)
	if err != nil {
		return nil, err
	}
	var out []Phase
	for _, r := range series {
		if p := d.Observe(r); p != nil {
			out = append(out, *p)
		}
	}
	if p := d.Flush(); p != nil {
		out = append(out, *p)
	}
	return out, nil
}

// DominantShift names the subsystem whose mean power moved most between
// two phases — the "what changed" a phase-aware policy keys on.
func DominantShift(prev, cur Phase) (power.Subsystem, float64) {
	best := power.SubCPU
	var bestAbs float64
	for _, s := range power.Subsystems() {
		d := abs(cur.PerSub[s] - prev.PerSub[s])
		if d > bestAbs {
			bestAbs = d
			best = s
		}
	}
	return best, cur.PerSub[best] - prev.PerSub[best]
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
