package phase_test

import (
	"fmt"

	"trickledown/internal/phase"
	"trickledown/internal/power"
)

// Detect segments a power series into phases: a warehouse-ramp staircase
// becomes one phase per step.
func ExampleDetect() {
	var series []power.Reading
	for _, level := range []float64{150, 150, 150, 190, 190, 190, 240, 240} {
		series = append(series, power.Reading{level, 0, 0, 0, 0})
	}
	phases, _ := phase.Detect(series, 10)
	for _, p := range phases {
		fmt.Println(p)
	}
	// Output:
	// [0..2] 150.0W over 3 samples
	// [3..5] 190.0W over 3 samples
	// [6..7] 240.0W over 2 samples
}
