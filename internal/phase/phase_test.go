package phase

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"trickledown/internal/power"
	"trickledown/internal/sim"
)

// flat builds a reading whose total is w, all on the CPU rail.
func flat(w float64) power.Reading {
	return power.Reading{w, 0, 0, 0, 0}
}

func TestStaircaseDetection(t *testing.T) {
	var series []power.Reading
	levels := []float64{100, 140, 180, 120}
	for _, l := range levels {
		for i := 0; i < 20; i++ {
			series = append(series, flat(l))
		}
	}
	phases, err := Detect(series, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != len(levels) {
		t.Fatalf("detected %d phases, want %d: %v", len(phases), len(levels), phases)
	}
	for i, p := range phases {
		if math.Abs(p.Mean-levels[i]) > 0.5 {
			t.Errorf("phase %d mean = %v, want %v", i, p.Mean, levels[i])
		}
		if p.Samples != 20 {
			t.Errorf("phase %d has %d samples", i, p.Samples)
		}
	}
	// Boundaries are contiguous and ordered.
	for i := 1; i < len(phases); i++ {
		if phases[i].Start != phases[i-1].End+1 {
			t.Errorf("gap between phase %d and %d", i-1, i)
		}
	}
}

func TestSinglePhase(t *testing.T) {
	series := make([]power.Reading, 50)
	for i := range series {
		series[i] = flat(200)
	}
	phases, err := Detect(series, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 1 || phases[0].Samples != 50 {
		t.Fatalf("phases = %v", phases)
	}
}

func TestNoiseWithinThresholdIsOnePhase(t *testing.T) {
	rng := sim.NewRNG(1)
	series := make([]power.Reading, 200)
	for i := range series {
		series[i] = flat(150 + rng.Norm(0, 1.5))
	}
	phases, err := Detect(series, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 1 {
		t.Fatalf("noisy steady state split into %d phases", len(phases))
	}
}

func TestEmptySeries(t *testing.T) {
	phases, err := Detect(nil, 10)
	if err != nil || len(phases) != 0 {
		t.Fatalf("empty series: %v, %v", phases, err)
	}
}

func TestBadThreshold(t *testing.T) {
	if _, err := Detect(nil, 0); !errors.Is(err, ErrThreshold) {
		t.Error("zero threshold accepted")
	}
	if _, err := NewDetector(-1); !errors.Is(err, ErrThreshold) {
		t.Error("negative threshold accepted")
	}
}

func TestObserveFlushProtocol(t *testing.T) {
	d, err := NewDetector(10)
	if err != nil {
		t.Fatal(err)
	}
	if d.Flush() != nil {
		t.Error("flush before any observation returned a phase")
	}
	if p := d.Observe(flat(100)); p != nil {
		t.Error("first observation closed a phase")
	}
	if p := d.Observe(flat(101)); p != nil {
		t.Error("in-band observation closed a phase")
	}
	p := d.Observe(flat(150))
	if p == nil || p.Samples != 2 {
		t.Fatalf("break did not close the right phase: %+v", p)
	}
	last := d.Flush()
	if last == nil || last.Mean != 150 || last.Samples != 1 {
		t.Fatalf("flush = %+v", last)
	}
	if d.Flush() != nil {
		t.Error("double flush returned a phase")
	}
}

func TestPerSubsystemMeans(t *testing.T) {
	series := []power.Reading{
		{100, 20, 30, 33, 21},
		{102, 20, 32, 33, 21},
	}
	phases, err := Detect(series, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 1 {
		t.Fatal("want one phase")
	}
	if got := phases[0].PerSub[power.SubCPU]; math.Abs(got-101) > 1e-9 {
		t.Errorf("CPU mean = %v", got)
	}
	if got := phases[0].PerSub[power.SubMemory]; math.Abs(got-31) > 1e-9 {
		t.Errorf("memory mean = %v", got)
	}
}

func TestDominantShift(t *testing.T) {
	a := Phase{PerSub: power.Reading{100, 20, 30, 33, 21}}
	b := Phase{PerSub: power.Reading{105, 20, 45, 33, 21}}
	s, delta := DominantShift(a, b)
	if s != power.SubMemory || math.Abs(delta-15) > 1e-9 {
		t.Errorf("DominantShift = %v %v", s, delta)
	}
}

func TestPhaseString(t *testing.T) {
	p := Phase{Start: 3, End: 9, Mean: 123.4, Samples: 7}
	if s := p.String(); !strings.Contains(s, "[3..9]") || !strings.Contains(s, "123.4") {
		t.Errorf("String = %q", s)
	}
}

// Property: phases partition the series exactly (no gaps, no overlaps,
// total samples conserved) for any input.
func TestPhasesPartitionSeries(t *testing.T) {
	f := func(raw []uint16, thrRaw uint8) bool {
		threshold := float64(thrRaw%50) + 1
		series := make([]power.Reading, len(raw))
		for i, v := range raw {
			series[i] = flat(float64(v % 300))
		}
		phases, err := Detect(series, threshold)
		if err != nil {
			return false
		}
		if len(series) == 0 {
			return len(phases) == 0
		}
		total := 0
		next := 0
		for _, p := range phases {
			if p.Start != next || p.End < p.Start {
				return false
			}
			if p.Samples != p.End-p.Start+1 {
				return false
			}
			total += p.Samples
			next = p.End + 1
		}
		return total == len(series)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
