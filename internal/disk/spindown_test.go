package disk

import (
	"math"
	"testing"

	"trickledown/internal/sim"
)

func TestSpindownAfterIdleTimeout(t *testing.T) {
	d := NewDisk(sim.NewRNG(1))
	d.SetPowerPolicy(PowerPolicy{SpindownAfterSec: 2, SpinupSec: 1})
	var idle, standby float64
	for i := 0; i < 5000; i++ { // 5 s idle
		st := d.Step(slice)
		idle += st.IdleSec
		standby += st.StandbySec
	}
	if !d.Standby() {
		t.Fatal("disk never spun down")
	}
	if math.Abs(idle-2) > 0.01 {
		t.Errorf("idle before spindown = %v, want ~2", idle)
	}
	if math.Abs(standby-3) > 0.01 {
		t.Errorf("standby = %v, want ~3", standby)
	}
}

func TestSpinupOnRequest(t *testing.T) {
	d := NewDisk(sim.NewRNG(2))
	d.SetPowerPolicy(PowerPolicy{SpindownAfterSec: 1, SpinupSec: 0.5})
	for i := 0; i < 3000; i++ {
		d.Step(slice)
	}
	if !d.Standby() {
		t.Fatal("not in standby")
	}
	d.Submit(Request{Bytes: 64 * 1024, Sequential: true})
	var spinup float64
	var spinups, completions int
	var slices int
	for i := 0; i < 3000 && completions == 0; i++ {
		st := d.Step(slice)
		spinup += st.SpinupSec
		spinups += st.Spinups
		completions += st.Completions
		slices++
	}
	if completions != 1 {
		t.Fatal("request never completed after wake")
	}
	if spinups != 1 {
		t.Errorf("spinups = %d", spinups)
	}
	if math.Abs(spinup-0.5) > 0.01 {
		t.Errorf("spinup time = %v, want 0.5", spinup)
	}
	// The request paid the spin-up latency.
	if slices < 500 {
		t.Errorf("request finished in %d ms, should include 500 ms spinup", slices)
	}
	if d.Standby() {
		t.Error("disk still standby after serving")
	}
}

func TestResidencyStillSumsWithPolicy(t *testing.T) {
	d := NewDisk(sim.NewRNG(3))
	d.SetPowerPolicy(MobilePolicy())
	d.Submit(Request{Bytes: 1e6, Sequential: true})
	for i := 0; i < 20000; i++ {
		st := d.Step(slice)
		total := st.SeekSec + st.RotSec + st.XferSec + st.IdleSec + st.StandbySec + st.SpinupSec
		if math.Abs(total-slice) > 1e-9 {
			t.Fatalf("slice %d: residency sum = %v", i, total)
		}
	}
}

func TestZeroPolicyNeverSpinsDown(t *testing.T) {
	d := NewDisk(sim.NewRNG(4))
	for i := 0; i < 20000; i++ {
		st := d.Step(slice)
		if st.StandbySec > 0 || st.SpinupSec > 0 {
			t.Fatal("server disk entered standby without a policy")
		}
	}
	if d.Standby() {
		t.Fatal("standby without policy")
	}
}

func TestActivityResetsIdleTimer(t *testing.T) {
	d := NewDisk(sim.NewRNG(5))
	d.SetPowerPolicy(PowerPolicy{SpindownAfterSec: 1, SpinupSec: 0.5})
	// Keep poking the disk every 500ms: it must never spin down.
	for i := 0; i < 10000; i++ {
		if i%500 == 0 {
			d.Submit(Request{Bytes: 4096, Sequential: true})
		}
		st := d.Step(slice)
		if st.StandbySec > 0 {
			t.Fatalf("spun down at slice %d despite sub-timeout activity", i)
		}
	}
}

func TestControllerPolicyPropagates(t *testing.T) {
	c := NewController(2, sim.NewRNG(6))
	c.SetPowerPolicy(PowerPolicy{SpindownAfterSec: 1, SpinupSec: 0.2})
	var standby float64
	for i := 0; i < 4000; i++ {
		standby += c.Step(slice).StandbySec
	}
	if standby < 5 { // 2 disks x ~3s
		t.Errorf("controller standby = %v, want ~6 disk-seconds", standby)
	}
}

func TestMobilePolicy(t *testing.T) {
	p := MobilePolicy()
	if p.SpindownAfterSec <= 0 || p.SpinupSec <= 0 {
		t.Errorf("MobilePolicy = %+v", p)
	}
}
