// Package disk models the paper's disk subsystem: two SCSI server disks
// behind a controller. Each disk is modeled by the modes Zedlewski's disk
// power work identifies — seeking, rotational settling, transferring and
// idle — with the crucial server-disk property the paper calls out: the
// spindle never stops, so rotation power (~80% of peak) is consumed even
// when idle, and total disk power varies by only a few percent between
// idle and full load.
//
// The disk controller performs transfers by DMA and raises a completion
// interrupt per finished request, which is exactly the visibility the
// paper's trickle-down disk model relies on ("upon completion or
// incremental completion the I/O device interrupts the microprocessor").
package disk

import (
	"trickledown/internal/sim"
)

// Mechanical constants for a 10k RPM SCSI disk of the paper's era.
const (
	// TransferRate is the sustained media rate in bytes/second.
	TransferRate = 80e6
	// avgSeekSec is the mean random-seek time.
	avgSeekSec = 0.004
	// trackSeekSec is the track-to-track seek for sequential requests.
	trackSeekSec = 0.0003
	// halfRevSec is the average rotational latency (half a revolution at
	// 10k RPM).
	halfRevSec = 0.003
	// settleSec is the rotational settling for sequential access.
	settleSec = 0.0004
)

// PowerPolicy configures optional disk power management. The paper's
// server SCSI disks had none ("our hard disks lack the ability to halt
// rotation during idle phases"); mobile disks of the era (Zedlewski's
// study) spin down after an idle timeout. A zero policy disables
// spindown, reproducing the paper's hardware.
type PowerPolicy struct {
	// SpindownAfterSec stops the spindle after this much continuous
	// idleness (0 disables power management).
	SpindownAfterSec float64
	// SpinupSec is the time to restore full rotation before the next
	// request can be served.
	SpinupSec float64
}

// MobilePolicy approximates a 2.5" mobile drive: aggressive spindown,
// seconds-long spinup.
func MobilePolicy() PowerPolicy {
	return PowerPolicy{SpindownAfterSec: 5, SpinupSec: 1.8}
}

// Request is one block-level operation submitted by the OS.
type Request struct {
	// Bytes is the transfer size.
	Bytes float64
	// Write distinguishes writes from reads.
	Write bool
	// Sequential requests skip the random seek and most rotational
	// latency (streaming flush traffic); random requests pay both
	// (dbt-2's OLTP pattern).
	Sequential bool
}

// Stats aggregates a disk's activity over one slice. The residency
// fields sum to the slice duration.
type Stats struct {
	SeekSec float64 // time spent moving the arm
	RotSec  float64 // time spent waiting on rotation
	XferSec float64 // time spent on the media transfer
	IdleSec float64 // spinning but idle
	// StandbySec is time with the spindle stopped; SpinupSec is time
	// spent restoring rotation (both zero without a PowerPolicy).
	StandbySec float64
	SpinupSec  float64
	// Spinups counts spin-up events begun this slice.
	Spinups int
	// ReadBytes/WriteBytes are bytes whose media transfer completed this
	// slice.
	ReadBytes  float64
	WriteBytes float64
	// Completions is the number of requests fully finished this slice
	// (each raises one controller interrupt).
	Completions int
	// QueueLen is the queue depth at the end of the slice.
	QueueLen int
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.SeekSec += other.SeekSec
	s.RotSec += other.RotSec
	s.XferSec += other.XferSec
	s.IdleSec += other.IdleSec
	s.StandbySec += other.StandbySec
	s.SpinupSec += other.SpinupSec
	s.Spinups += other.Spinups
	s.ReadBytes += other.ReadBytes
	s.WriteBytes += other.WriteBytes
	s.Completions += other.Completions
	s.QueueLen += other.QueueLen
}

// BusySec returns non-idle seconds.
func (s Stats) BusySec() float64 { return s.SeekSec + s.RotSec + s.XferSec }

// active is the in-flight request with its remaining phase times.
type active struct {
	req      Request
	seekLeft float64
	rotLeft  float64
	xferLeft float64 // seconds of media transfer remaining
}

// Disk is one spindle.
type Disk struct {
	rng   *sim.RNG
	queue []Request
	// cur is the in-flight request; busy says whether it is valid. It is
	// embedded by value (not a pointer) so the per-request hot path of a
	// loaded disk allocates nothing.
	cur    active
	busy   bool
	policy PowerPolicy
	// power-management state
	idleFor    float64 // continuous idle time while spinning
	standby    bool    // spindle stopped
	spinupLeft float64 // seconds of spin-up remaining
}

// NewDisk returns a disk with a private random stream split from parent.
func NewDisk(parent *sim.RNG) *Disk {
	return &Disk{rng: parent.Split()}
}

// SetPowerPolicy installs (or clears, with the zero value) spindown
// power management.
func (d *Disk) SetPowerPolicy(p PowerPolicy) { d.policy = p }

// Standby reports whether the spindle is currently stopped.
func (d *Disk) Standby() bool { return d.standby }

// Submit enqueues a request.
func (d *Disk) Submit(r Request) {
	if r.Bytes <= 0 {
		return
	}
	d.queue = append(d.queue, r)
}

// QueueLen returns the number of waiting (not in-flight) requests.
func (d *Disk) QueueLen() int { return len(d.queue) }

// start pops the next request and rolls its mechanical delays.
func (d *Disk) start() {
	r := d.queue[0]
	copy(d.queue, d.queue[1:])
	d.queue = d.queue[:len(d.queue)-1]
	a := active{req: r, xferLeft: r.Bytes / TransferRate}
	if r.Sequential {
		a.seekLeft = trackSeekSec * d.rng.Jitter(1, 0.5)
		a.rotLeft = settleSec * d.rng.Jitter(1, 0.5)
	} else {
		a.seekLeft = d.rng.Exp(avgSeekSec)
		a.rotLeft = d.rng.Float64() * 2 * halfRevSec
	}
	d.cur = a
	d.busy = true
}

// Step advances the disk by sliceSec seconds, walking the in-flight
// request through its seek, rotate and transfer phases and starting
// queued requests as the spindle frees up. With a PowerPolicy installed
// the spindle stops after the idle timeout and pays a spin-up delay on
// the next request.
func (d *Disk) Step(sliceSec float64) Stats {
	var st Stats
	left := sliceSec
	for left > 1e-12 {
		// Spin-up in progress blocks everything else.
		if d.spinupLeft > 0 {
			dt := min(d.spinupLeft, left)
			d.spinupLeft -= dt
			st.SpinupSec += dt
			left -= dt
			continue
		}
		if d.standby {
			if len(d.queue) == 0 {
				st.StandbySec += left
				break
			}
			// Wake up for the pending request.
			d.standby = false
			d.spinupLeft = d.policy.SpinupSec
			st.Spinups++
			continue
		}
		if !d.busy {
			if len(d.queue) == 0 {
				if d.policy.SpindownAfterSec > 0 {
					// Accumulate idleness toward the spindown timeout.
					budget := d.policy.SpindownAfterSec - d.idleFor
					if budget <= 0 {
						d.standby = true
						continue
					}
					dt := min(budget, left)
					d.idleFor += dt
					st.IdleSec += dt
					left -= dt
					continue
				}
				st.IdleSec += left
				break
			}
			d.idleFor = 0
			d.start()
		}
		a := &d.cur
		switch {
		case a.seekLeft > 0:
			dt := min(a.seekLeft, left)
			a.seekLeft -= dt
			st.SeekSec += dt
			left -= dt
		case a.rotLeft > 0:
			dt := min(a.rotLeft, left)
			a.rotLeft -= dt
			st.RotSec += dt
			left -= dt
		default:
			dt := min(a.xferLeft, left)
			a.xferLeft -= dt
			st.XferSec += dt
			left -= dt
			bytes := dt * TransferRate
			if a.req.Write {
				st.WriteBytes += bytes
			} else {
				st.ReadBytes += bytes
			}
			if a.xferLeft <= 1e-12 {
				st.Completions++
				d.busy = false
				d.idleFor = 0
			}
		}
	}
	st.QueueLen = len(d.queue)
	return st
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Controller fronts the disk array: it spreads requests over the disks
// (shortest queue first) and aggregates their activity.
type Controller struct {
	disks []*Disk
}

// NewController builds a controller over n disks (the paper's server has
// two).
func NewController(n int, parent *sim.RNG) *Controller {
	c := &Controller{}
	for i := 0; i < n; i++ {
		c.disks = append(c.disks, NewDisk(parent))
	}
	return c
}

// SetPowerPolicy installs the same power policy on every spindle.
func (c *Controller) SetPowerPolicy(p PowerPolicy) {
	for _, d := range c.disks {
		d.SetPowerPolicy(p)
	}
}

// Disks returns the number of spindles.
func (c *Controller) Disks() int { return len(c.disks) }

// Submit routes a request to the least-loaded disk.
func (c *Controller) Submit(r Request) {
	if r.Bytes <= 0 {
		return
	}
	best := c.disks[0]
	for _, d := range c.disks[1:] {
		if d.QueueLen() < best.QueueLen() {
			best = d
		}
	}
	best.Submit(r)
}

// Pending reports whether any request is queued or in flight.
func (c *Controller) Pending() bool {
	for _, d := range c.disks {
		if d.busy || d.QueueLen() > 0 {
			return true
		}
	}
	return false
}

// Step advances every disk by sliceSec and returns the summed stats.
// Stats.Completions is the number of controller interrupts to raise.
func (c *Controller) Step(sliceSec float64) Stats {
	var st Stats
	for _, d := range c.disks {
		st.Add(d.Step(sliceSec))
	}
	return st
}
