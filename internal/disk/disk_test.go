package disk

import (
	"math"
	"testing"
	"testing/quick"

	"trickledown/internal/sim"
)

const slice = 0.001

func TestIdleDiskIsIdle(t *testing.T) {
	d := NewDisk(sim.NewRNG(1))
	st := d.Step(slice)
	if st.IdleSec != slice {
		t.Errorf("IdleSec = %v, want %v", st.IdleSec, slice)
	}
	if st.BusySec() != 0 || st.Completions != 0 {
		t.Errorf("idle disk did work: %+v", st)
	}
}

func TestResidencySumsToSlice(t *testing.T) {
	d := NewDisk(sim.NewRNG(2))
	d.Submit(Request{Bytes: 1e6, Write: true})
	for i := 0; i < 200; i++ {
		st := d.Step(slice)
		total := st.SeekSec + st.RotSec + st.XferSec + st.IdleSec
		if math.Abs(total-slice) > 1e-9 {
			t.Fatalf("slice %d: residency sum = %v, want %v", i, total, slice)
		}
	}
}

func TestRequestCompletesWithCorrectBytes(t *testing.T) {
	d := NewDisk(sim.NewRNG(3))
	const bytes = 256 * 1024
	d.Submit(Request{Bytes: bytes, Write: true, Sequential: true})
	var written float64
	var completions int
	for i := 0; i < 1000 && completions == 0; i++ {
		st := d.Step(slice)
		written += st.WriteBytes
		completions += st.Completions
		if st.ReadBytes != 0 {
			t.Fatal("write produced read bytes")
		}
	}
	if completions != 1 {
		t.Fatalf("completions = %d", completions)
	}
	if math.Abs(written-bytes)/bytes > 0.001 {
		t.Errorf("wrote %v bytes, want %v", written, bytes)
	}
}

func TestReadVsWriteAccounting(t *testing.T) {
	d := NewDisk(sim.NewRNG(4))
	d.Submit(Request{Bytes: 64 * 1024})
	var read, written float64
	for i := 0; i < 1000; i++ {
		st := d.Step(slice)
		read += st.ReadBytes
		written += st.WriteBytes
	}
	if read == 0 || written != 0 {
		t.Errorf("read = %v, written = %v", read, written)
	}
}

func TestSequentialFasterThanRandom(t *testing.T) {
	finish := func(seq bool, seed uint64) int {
		d := NewDisk(sim.NewRNG(seed))
		for i := 0; i < 50; i++ {
			d.Submit(Request{Bytes: 64 * 1024, Sequential: seq})
		}
		slices := 0
		done := 0
		for done < 50 {
			st := d.Step(slice)
			done += st.Completions
			slices++
			if slices > 100000 {
				t.Fatal("requests never completed")
			}
		}
		return slices
	}
	seq := finish(true, 5)
	rnd := finish(false, 6)
	if float64(rnd) < 3*float64(seq) {
		t.Errorf("random (%d slices) should be much slower than sequential (%d)", rnd, seq)
	}
}

func TestRandomThroughputRealistic(t *testing.T) {
	// A queue-saturated disk should complete random 8KB requests at
	// roughly 1/(seek+rot+xfer) ≈ 130-150 IOPS.
	d := NewDisk(sim.NewRNG(7))
	completions := 0
	for i := 0; i < 10000; i++ { // 10 s
		if d.QueueLen() < 10 {
			d.Submit(Request{Bytes: 8192})
		}
		completions += d.Step(slice).Completions
	}
	iops := float64(completions) / 10
	if iops < 100 || iops > 200 {
		t.Errorf("random IOPS = %v, want ~100-200", iops)
	}
}

func TestSequentialThroughputNearMediaRate(t *testing.T) {
	d := NewDisk(sim.NewRNG(8))
	var bytes float64
	for i := 0; i < 10000; i++ { // 10 s
		if d.QueueLen() < 10 {
			d.Submit(Request{Bytes: 256 * 1024, Sequential: true, Write: true})
		}
		bytes += d.Step(slice).WriteBytes
	}
	rate := bytes / 10
	if rate < 0.6*TransferRate || rate > TransferRate {
		t.Errorf("sequential rate = %v B/s, want near %v", rate, TransferRate)
	}
}

func TestZeroByteRequestIgnored(t *testing.T) {
	d := NewDisk(sim.NewRNG(9))
	d.Submit(Request{Bytes: 0})
	d.Submit(Request{Bytes: -5})
	if d.QueueLen() != 0 {
		t.Error("zero/negative request queued")
	}
	c := NewController(2, sim.NewRNG(9))
	c.Submit(Request{Bytes: 0})
	if c.Pending() {
		t.Error("controller queued empty request")
	}
}

func TestControllerBalances(t *testing.T) {
	c := NewController(2, sim.NewRNG(10))
	for i := 0; i < 10; i++ {
		c.Submit(Request{Bytes: 1e6})
	}
	if got := c.disks[0].QueueLen() + c.disks[1].QueueLen(); got != 10 {
		t.Fatalf("queued %d, want 10", got)
	}
	diff := c.disks[0].QueueLen() - c.disks[1].QueueLen()
	if diff < -1 || diff > 1 {
		t.Errorf("imbalanced queues: %d vs %d", c.disks[0].QueueLen(), c.disks[1].QueueLen())
	}
	if c.Disks() != 2 {
		t.Errorf("Disks() = %d", c.Disks())
	}
}

func TestControllerPendingAndDrain(t *testing.T) {
	c := NewController(2, sim.NewRNG(11))
	if c.Pending() {
		t.Error("fresh controller pending")
	}
	c.Submit(Request{Bytes: 64 * 1024, Sequential: true})
	if !c.Pending() {
		t.Error("submitted request not pending")
	}
	for i := 0; i < 10000 && c.Pending(); i++ {
		c.Step(slice)
	}
	if c.Pending() {
		t.Error("request never drained")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{SeekSec: 1, RotSec: 2, XferSec: 3, IdleSec: 4, ReadBytes: 5, WriteBytes: 6, Completions: 7, QueueLen: 8}
	b := a
	a.Add(b)
	if a.SeekSec != 2 || a.Completions != 14 || a.QueueLen != 16 || a.WriteBytes != 12 {
		t.Errorf("Add = %+v", a)
	}
	if a.BusySec() != 2+4+6 {
		t.Errorf("BusySec = %v", a.BusySec())
	}
}

// Property: bytes completed never exceed bytes submitted, and completions
// never exceed submissions.
func TestConservation(t *testing.T) {
	f := func(seed uint64, sizes []uint32) bool {
		rng := sim.NewRNG(seed)
		c := NewController(2, rng)
		var submitted float64
		n := 0
		for _, s := range sizes {
			if n >= 40 {
				break
			}
			b := float64(s%1000000) + 512
			c.Submit(Request{Bytes: b, Write: seed%2 == 0, Sequential: seed%3 == 0})
			submitted += b
			n++
		}
		var done float64
		comps := 0
		for i := 0; i < 200000 && c.Pending(); i++ {
			st := c.Step(slice)
			done += st.ReadBytes + st.WriteBytes
			comps += st.Completions
		}
		if c.Pending() {
			return false // 200 s is ample to drain 40 requests
		}
		return done <= submitted*1.001 && comps == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
