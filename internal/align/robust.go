package align

import (
	"fmt"
	"math"
	"sort"

	"trickledown/internal/daq"
	"trickledown/internal/perfctr"
	"trickledown/internal/power"
	"trickledown/internal/telemetry"
)

// Robust-merge telemetry: how much repair the degraded path had to do.
// Zero across the board means the instrumentation chain behaved and
// MergeRobust reduced to the strict pairing.
var (
	mRepairedWindows = telemetry.NewCounter("align_windows_interpolated_total",
		"aligned rows whose power was interpolated across a missing/bad window")
	mDroppedRows = telemetry.NewCounter("align_rows_dropped_total",
		"counter samples dropped for lack of a repairable power window")
	mBadWindows = telemetry.NewCounter("align_bad_windows_total",
		"DAQ windows rejected for NaN/Inf readings or timestamps")
	mDupSyncs = telemetry.NewCounter("align_dup_syncs_total",
		"spurious/duplicate sync edges collapsed into their neighbor window")
)

// Quality summarizes what MergeRobust had to repair — the data-quality
// report an operator reads before trusting a degraded trace. A zero
// Quality (except Samples and Matched) means the logs paired cleanly.
type Quality struct {
	// Samples is how many counter samples the merge considered.
	Samples int
	// Matched rows paired directly with a healthy power window.
	Matched int
	// Interpolated rows had their power linearly interpolated across an
	// isolated missing or rejected window.
	Interpolated int
	// Dropped counter samples had no repairable window (long gaps, edge
	// gaps, or broken timestamps) and were excluded from the dataset.
	Dropped int
	// BadWindows is how many DAQ windows were rejected outright for
	// NaN/Inf readings or a non-finite timestamp.
	BadWindows int
	// DupSyncs is how many spurious (duplicate) sync edges were collapsed
	// into the neighboring window.
	DupSyncs int
	// OutOfOrder is how many DAQ records arrived with a timestamp behind
	// their predecessor and were re-sorted.
	OutOfOrder int
}

// Degraded reports whether any repair or rejection happened at all.
func (q Quality) Degraded() bool {
	return q.Interpolated > 0 || q.Dropped > 0 || q.BadWindows > 0 ||
		q.DupSyncs > 0 || q.OutOfOrder > 0
}

// String renders the summary in one log-friendly line.
func (q Quality) String() string {
	return fmt.Sprintf("samples=%d matched=%d interpolated=%d dropped=%d bad_windows=%d dup_syncs=%d out_of_order=%d",
		q.Samples, q.Matched, q.Interpolated, q.Dropped, q.BadWindows, q.DupSyncs, q.OutOfOrder)
}

// maxInterpGap is the longest run of consecutive missing windows the
// robust merge will interpolate across. Longer outages carry no power
// information worth inventing; those samples are dropped instead.
const maxInterpGap = 2

// finiteReading reports whether every rail of r is a finite number.
func finiteReading(r power.Reading) bool {
	for _, v := range r {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// MergeRobust pairs DAQ records with counter samples like Merge, but
// survives a degraded instrumentation chain instead of erroring or —
// worse — silently mispairing:
//
//   - DAQ records are re-sorted by timestamp (out-of-order arrival) and
//     spurious sync edges closer than half a sampling period to their
//     predecessor are collapsed into one sample-weighted window;
//   - windows containing NaN/Inf readings (dead or unplugged sense
//     channel) are rejected rather than fit;
//   - pairing is by timestamp proximity rather than strict order, so a
//     dropped sync pulse desynchronizes one window, not the whole tail
//     of the trace;
//   - samples left without a window (dropped pulses, rejected windows)
//     get their power linearly interpolated from the neighboring matched
//     rows when the gap is isolated (≤ 2 windows), and are dropped
//     otherwise.
//
// The returned Quality reports every repair; callers should surface it
// instead of fitting models to a degraded trace blind. On healthy input
// the result is row-for-row identical to Merge. The timestamp pairing
// tolerates the DAQ's ppm-level clock skew for runs up to a few hours;
// it is not a substitute for the sync pulse over unbounded drift.
func MergeRobust(records []daq.Record, samples []perfctr.Sample) (*Dataset, Quality, error) {
	var q Quality
	// 1. Sanitize the DAQ log: finite timestamps, ascending order,
	// spurious edges collapsed, NaN/Inf windows rejected.
	recs := make([]daq.Record, 0, len(records))
	for _, r := range records {
		if math.IsNaN(r.DAQSeconds) || math.IsInf(r.DAQSeconds, 0) {
			q.BadWindows++
			continue
		}
		recs = append(recs, r)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].DAQSeconds < recs[i-1].DAQSeconds {
			q.OutOfOrder++
		}
	}
	if q.OutOfOrder > 0 {
		sort.SliceStable(recs, func(i, j int) bool { return recs[i].DAQSeconds < recs[j].DAQSeconds })
	}

	// 2. Sanitize the counter log: finite, strictly increasing
	// timestamps (a broken timebase entry is dropped, not propagated).
	smps := make([]perfctr.Sample, 0, len(samples))
	for _, s := range samples {
		bad := math.IsNaN(s.TargetSeconds) || math.IsInf(s.TargetSeconds, 0) ||
			(len(smps) > 0 && s.TargetSeconds <= smps[len(smps)-1].TargetSeconds)
		if bad {
			q.Dropped++
			continue
		}
		smps = append(smps, s)
	}
	q.Samples = len(samples)
	if len(smps) == 0 {
		mDroppedRows.Add(uint64(q.Dropped))
		return nil, q, fmt.Errorf("%w: no usable counter samples", ErrMismatch)
	}

	// Pairing tolerance: just under half the nominal sampling period, so
	// a window can never be claimed by two samples.
	tol := 0.45 * medianInterval(smps)

	// Collapse duplicate sync edges: a window closing within tol of its
	// predecessor is a spurious pulse; merge it in, weighted by sample
	// count, so the combined window still averages the right ADC reads.
	recs = collapseDuplicates(recs, tol, &q)

	// Reject NaN/Inf windows after collapsing (a tiny spurious window
	// cannot hide a dead channel by dilution: NaN poisons the merge).
	good := recs[:0]
	for _, r := range recs {
		if !finiteReading(r.Mean) {
			q.BadWindows++
			continue
		}
		good = append(good, r)
	}
	recs = good

	// 3. Timestamp pairing. missing[i] marks rows needing power repair.
	rows := make([]Row, 0, len(smps))
	missing := make([]bool, 0, len(smps))
	j := 0
	for _, s := range smps {
		for j < len(recs) && recs[j].DAQSeconds < s.TargetSeconds-tol {
			// An unclaimed window (its sample was dropped above, or the
			// counter log lost an entry): skip it.
			j++
		}
		if j < len(recs) && math.Abs(recs[j].DAQSeconds-s.TargetSeconds) <= tol {
			rows = append(rows, Row{Power: recs[j].Mean, Counters: s})
			missing = append(missing, false)
			q.Matched++
			j++
		} else {
			rows = append(rows, Row{Counters: s})
			missing = append(missing, true)
		}
	}

	// 4. Repair isolated gaps by per-rail linear interpolation between
	// the bounding matched rows; drop longer or edge gaps.
	keep := make([]bool, len(rows))
	for i := range keep {
		keep[i] = true
	}
	for i := 0; i < len(rows); {
		if !missing[i] {
			i++
			continue
		}
		start := i
		for i < len(rows) && missing[i] {
			i++
		}
		gap := i - start
		prev, next := start-1, i
		if gap <= maxInterpGap && prev >= 0 && next < len(rows) {
			for k := start; k < i; k++ {
				frac := float64(k-prev) / float64(next-prev)
				for rail := range rows[k].Power {
					lo, hi := rows[prev].Power[rail], rows[next].Power[rail]
					rows[k].Power[rail] = lo + frac*(hi-lo)
				}
			}
			q.Interpolated += gap
		} else {
			for k := start; k < i; k++ {
				keep[k] = false
			}
			q.Dropped += gap
		}
	}
	out := &Dataset{Rows: make([]Row, 0, len(rows))}
	for i, r := range rows {
		if keep[i] {
			out.Rows = append(out.Rows, r)
		}
	}

	mRepairedWindows.Add(uint64(q.Interpolated))
	mDroppedRows.Add(uint64(q.Dropped))
	mBadWindows.Add(uint64(q.BadWindows))
	mDupSyncs.Add(uint64(q.DupSyncs))
	if out.Len() == 0 {
		return nil, q, fmt.Errorf("%w: %d power windows and %d counter samples share no alignable region",
			ErrMismatch, len(records), len(samples))
	}
	return out, q, nil
}

// medianInterval estimates the nominal sampling period from the counter
// log (1.0 when a single sample leaves nothing to estimate from).
func medianInterval(smps []perfctr.Sample) float64 {
	if len(smps) < 2 {
		return 1.0
	}
	diffs := make([]float64, 0, len(smps)-1)
	for i := 1; i < len(smps); i++ {
		diffs = append(diffs, smps[i].TargetSeconds-smps[i-1].TargetSeconds)
	}
	sort.Float64s(diffs)
	return diffs[len(diffs)/2]
}

// collapseDuplicates merges each record closer than tol to its
// predecessor into that predecessor as a sample-weighted mean.
func collapseDuplicates(recs []daq.Record, tol float64, q *Quality) []daq.Record {
	if len(recs) < 2 {
		return recs
	}
	out := recs[:1]
	for _, r := range recs[1:] {
		last := &out[len(out)-1]
		if r.DAQSeconds-last.DAQSeconds >= tol {
			out = append(out, r)
			continue
		}
		q.DupSyncs++
		total := last.Samples + r.Samples
		if total > 0 {
			wa := float64(last.Samples) / float64(total)
			wb := float64(r.Samples) / float64(total)
			for rail := range last.Mean {
				last.Mean[rail] = wa*last.Mean[rail] + wb*r.Mean[rail]
			}
		}
		last.Samples = total
		last.DAQSeconds = r.DAQSeconds
	}
	return out
}
