package align

import (
	"math"
	"reflect"
	"testing"

	"trickledown/internal/daq"
	"trickledown/internal/perfctr"
	"trickledown/internal/power"
)

// mkLogs builds a clean n-window DAQ log and matching counter log at a
// 1 Hz nominal period, with per-window distinguishable power.
func mkLogs(n int) ([]daq.Record, []perfctr.Sample) {
	recs := make([]daq.Record, n)
	smps := make([]perfctr.Sample, n)
	for i := 0; i < n; i++ {
		t := float64(i + 1)
		recs[i] = daq.Record{
			DAQSeconds: t * (1 + 40e-6), // the instrument's ppm skew
			Mean:       power.Reading{100 + float64(i), 20, 35, 30, 21},
			Samples:    10000,
		}
		smps[i] = perfctr.Sample{
			TargetSeconds: t,
			IntervalSec:   1,
			CPUs:          []perfctr.CPUCounts{{Cycles: 1000 + uint64(i)}},
		}
	}
	return recs, smps
}

// TestMergeRobustCleanEqualsMerge locks the zero-fault contract: on a
// healthy pair of logs the robust path returns row-for-row what the
// strict path returns, and reports nothing degraded.
func TestMergeRobustCleanEqualsMerge(t *testing.T) {
	recs, smps := mkLogs(20)
	strict, err := Merge(recs, smps)
	if err != nil {
		t.Fatal(err)
	}
	robust, q, err := MergeRobust(recs, smps)
	if err != nil {
		t.Fatal(err)
	}
	if q.Degraded() {
		t.Errorf("clean input reported degraded: %v", q)
	}
	if q.Matched != 20 || q.Samples != 20 {
		t.Errorf("quality = %v, want 20/20 matched", q)
	}
	if !reflect.DeepEqual(strict, robust) {
		t.Errorf("robust merge diverged from strict merge on clean input")
	}
}

func TestMergeRobustDroppedSyncInterpolates(t *testing.T) {
	recs, smps := mkLogs(10)
	// A dropped sync pulse: window 5 never closed. (The real instrument
	// would fold its charge into window 6; losing it entirely is the
	// harsher case.)
	recs = append(recs[:5], recs[6:]...)
	ds, q, err := MergeRobust(recs, smps)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 10 {
		t.Fatalf("len = %d, want all 10 samples kept", ds.Len())
	}
	if q.Interpolated != 1 || q.Dropped != 0 {
		t.Errorf("quality = %v, want exactly 1 interpolated row", q)
	}
	// Row 5's power is the midpoint of its neighbors.
	want := (ds.Rows[4].Power[power.SubCPU] + ds.Rows[6].Power[power.SubCPU]) / 2
	if got := ds.Rows[5].Power[power.SubCPU]; math.Abs(got-want) > 1e-9 {
		t.Errorf("interpolated CPU power = %v, want %v", got, want)
	}
	// The counters of the repaired row are the original sample's.
	if ds.Rows[5].Counters.CPUs[0].Cycles != 1005 {
		t.Errorf("repaired row lost its counter sample")
	}
}

func TestMergeRobustLongGapDrops(t *testing.T) {
	recs, smps := mkLogs(12)
	// Four consecutive windows lost: beyond repair, those samples go.
	recs = append(recs[:4], recs[8:]...)
	ds, q, err := MergeRobust(recs, smps)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 8 {
		t.Fatalf("len = %d, want 8 (4 dropped)", ds.Len())
	}
	if q.Dropped != 4 || q.Interpolated != 0 {
		t.Errorf("quality = %v, want 4 dropped, 0 interpolated", q)
	}
}

func TestMergeRobustDuplicateSyncEdges(t *testing.T) {
	recs, smps := mkLogs(8)
	// A spurious pulse 10 ms after window 3's real edge closes a tiny
	// 100-sample window with garbage-ish power.
	spur := daq.Record{
		DAQSeconds: recs[3].DAQSeconds + 0.01,
		Mean:       power.Reading{500, 500, 500, 500, 500},
		Samples:    100,
	}
	recs = append(recs[:4], append([]daq.Record{spur}, recs[4:]...)...)
	ds, q, err := MergeRobust(recs, smps)
	if err != nil {
		t.Fatal(err)
	}
	if q.DupSyncs != 1 {
		t.Fatalf("quality = %v, want 1 collapsed duplicate", q)
	}
	if ds.Len() != 8 {
		t.Fatalf("len = %d, want 8", ds.Len())
	}
	// Window 3's mean moved toward the spurious reading by its sample
	// weight (100 of 10100), not replaced by it.
	got := ds.Rows[3].Power[power.SubCPU]
	want := (10000*103.0 + 100*500.0) / 10100
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("collapsed window mean = %v, want %v", got, want)
	}
}

func TestMergeRobustOutOfOrderRecords(t *testing.T) {
	recs, smps := mkLogs(10)
	recs[2], recs[3] = recs[3], recs[2]
	ds, q, err := MergeRobust(recs, smps)
	if err != nil {
		t.Fatal(err)
	}
	if q.OutOfOrder == 0 {
		t.Errorf("out-of-order records not reported: %v", q)
	}
	if ds.Len() != 10 || q.Matched != 10 {
		t.Errorf("reordering lost rows: len=%d quality=%v", ds.Len(), q)
	}
	for i := 1; i < ds.Len(); i++ {
		if ds.Rows[i].Power[power.SubCPU] < ds.Rows[i-1].Power[power.SubCPU] {
			t.Fatalf("rows not re-sorted into time order")
		}
	}
}

func TestMergeRobustNaNWindows(t *testing.T) {
	recs, smps := mkLogs(10)
	recs[4].Mean[power.SubMemory] = math.NaN()
	recs[7].Mean[power.SubIO] = math.Inf(1)
	ds, q, err := MergeRobust(recs, smps)
	if err != nil {
		t.Fatal(err)
	}
	if q.BadWindows != 2 {
		t.Fatalf("quality = %v, want 2 bad windows", q)
	}
	if q.Interpolated != 2 {
		t.Errorf("quality = %v, want both bad windows repaired", q)
	}
	for i := range ds.Rows {
		for _, v := range ds.Rows[i].Power {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite power survived the robust merge at row %d", i)
			}
		}
	}
}

func TestMergeRobustBrokenTimebases(t *testing.T) {
	recs, smps := mkLogs(10)
	smps[3].TargetSeconds = smps[2].TargetSeconds // stuck target clock
	recs[6].DAQSeconds = math.NaN()               // corrupt DAQ timestamp
	ds, q, err := MergeRobust(recs, smps)
	if err != nil {
		t.Fatal(err)
	}
	if q.Dropped == 0 || q.BadWindows != 1 {
		t.Errorf("quality = %v, want the stuck sample dropped and 1 bad window", q)
	}
	if ds.Len() == 0 {
		t.Fatal("no rows survived")
	}
	var last float64
	for i := range ds.Rows {
		if ts := ds.Rows[i].Counters.TargetSeconds; ts <= last {
			t.Fatalf("non-increasing timestamps survived at row %d", i)
		} else {
			last = ts
		}
	}
}

// TestMergeRobustNothingSalvageable checks disjoint logs error instead
// of fabricating a dataset.
func TestMergeRobustNothingSalvageable(t *testing.T) {
	recs, _ := mkLogs(5)
	_, smps := mkLogs(5)
	for i := range smps {
		smps[i].TargetSeconds += 1000 // the two machines never overlapped
	}
	if _, _, err := MergeRobust(recs, smps); err == nil {
		t.Fatal("want error for disjoint logs")
	}
	if _, _, err := MergeRobust(nil, nil); err == nil {
		t.Fatal("want error for empty logs")
	}
}
