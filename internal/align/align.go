// Package align performs the paper's offline merge: the DAQ's averaged
// power windows and the target's counter samples are produced by two
// unsynchronized machines, and the single-byte serial sync pulse is the
// only common signal. Each counter sample emits one pulse; each pulse
// closes one DAQ averaging window; so pairing is by pulse order ("using
// the synchronization information, the data was analyzed offline").
package align

import (
	"errors"
	"fmt"

	"trickledown/internal/daq"
	"trickledown/internal/perfctr"
	"trickledown/internal/power"
)

// ErrMismatch is returned when the two logs cannot be paired.
var ErrMismatch = errors.New("align: daq and counter logs do not pair")

// Row is one aligned observation: average rail power over a counter
// interval plus the counter deltas for the same interval.
type Row struct {
	Power    power.Reading
	Counters perfctr.Sample
}

// Dataset is an aligned trace.
type Dataset struct {
	Rows []Row
}

// Merge pairs DAQ records with counter samples by sync-pulse order. The
// logs may differ by at most one trailing entry (a run stopped between a
// sample and its acquisition window); anything worse is an error.
func Merge(records []daq.Record, samples []perfctr.Sample) (*Dataset, error) {
	n := len(records)
	if len(samples) < n {
		n = len(samples)
	}
	diff := len(records) - len(samples)
	if diff < -1 || diff > 1 {
		return nil, fmt.Errorf("%w: %d power windows vs %d counter samples",
			ErrMismatch, len(records), len(samples))
	}
	ds := &Dataset{Rows: make([]Row, 0, n)}
	var lastT float64
	for i := 0; i < n; i++ {
		if i > 0 && samples[i].TargetSeconds <= lastT {
			return nil, fmt.Errorf("%w: counter timestamps not increasing at %d", ErrMismatch, i)
		}
		lastT = samples[i].TargetSeconds
		ds.Rows = append(ds.Rows, Row{Power: records[i].Mean, Counters: samples[i]})
	}
	return ds, nil
}

// PowerColumn extracts one subsystem's measured power series.
func (d *Dataset) PowerColumn(s power.Subsystem) []float64 {
	return d.PowerColumnInto(s, nil)
}

// PowerColumnInto is PowerColumn writing into buf (grown if too small),
// for callers that extract several columns in a row — reusing one buffer
// across the five subsystems turns five allocations per workload into
// one. Rows are indexed in place rather than ranged over by value: a Row
// embeds the full counter sample, so the value copy cost more than the
// column extraction itself.
func (d *Dataset) PowerColumnInto(s power.Subsystem, buf []float64) []float64 {
	if cap(buf) < len(d.Rows) {
		buf = make([]float64, len(d.Rows))
	}
	buf = buf[:len(d.Rows)]
	for i := range d.Rows {
		buf[i] = d.Rows[i].Power[s]
	}
	return buf
}

// Skip returns a dataset without the first n rows (warmup trimming).
func (d *Dataset) Skip(n int) *Dataset {
	if n < 0 {
		n = 0
	}
	if n > len(d.Rows) {
		n = len(d.Rows)
	}
	return &Dataset{Rows: d.Rows[n:]}
}

// Len returns the number of aligned rows.
func (d *Dataset) Len() int { return len(d.Rows) }

// Concat joins datasets into one (multi-workload validation pools).
func Concat(ds ...*Dataset) *Dataset {
	out := &Dataset{}
	for _, d := range ds {
		if d != nil {
			out.Rows = append(out.Rows, d.Rows...)
		}
	}
	return out
}
