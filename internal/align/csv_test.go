package align

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"trickledown/internal/perfctr"
	"trickledown/internal/power"
)

func sampleRow(sec float64, busy bool) Row {
	s := perfctr.Sample{
		TargetSeconds: sec,
		IntervalSec:   1.001,
		CPUs: []perfctr.CPUCounts{
			{Cycles: 2800000000, HaltedCycles: 1000, FetchedUops: 3000000,
				L3LoadMisses: 4000, L3Misses: 5000, TLBMisses: 60,
				BusTx: 7000, BusPrefetchTx: 800, DMAOther: 90, Uncacheable: 10},
			{Cycles: 2800000001, FetchedUops: 123},
		},
		Ints: [][]uint64{{1000, 1001}, {5, 6}, {7, 8}},
	}
	if busy {
		s.OSBusySec = []float64{0.5, 0.25}
		s.OSThreadBusySec = []float64{0.4, 0.1, 0.2, 0.05}
	}
	return Row{
		Power:    power.Reading{160.5, 19.9, 35.25, 33, 21.6},
		Counters: s,
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := &Dataset{Rows: []Row{sampleRow(1, true), sampleRow(2.002, true)}}
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds, back) {
		t.Fatalf("round trip mismatch:\n%+v\nvs\n%+v", ds.Rows[0], back.Rows[0])
	}
}

func TestCSVRoundTripWithoutBusy(t *testing.T) {
	ds := &Dataset{Rows: []Row{sampleRow(1, false)}}
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows[0].Counters.OSBusySec != nil {
		t.Error("busy columns appeared from nowhere")
	}
	if !reflect.DeepEqual(ds, back) {
		t.Fatal("round trip mismatch")
	}
}

func TestWriteCSVErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Dataset{}).WriteCSV(&buf); err == nil {
		t.Error("empty dataset accepted")
	}
	// Shape change mid-dataset.
	bad := &Dataset{Rows: []Row{sampleRow(1, true), sampleRow(2, true)}}
	bad.Rows[1].Counters.CPUs = bad.Rows[1].Counters.CPUs[:1]
	if err := bad.WriteCSV(&buf); err == nil {
		t.Error("ragged dataset accepted")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"no counters":  "seconds,interval,power_CPU,power_Chipset,power_Memory,power_I/O,power_Disk\n",
		"bad value":    mustCSV(t) + "garbage line\n",
		"short record": "seconds,interval,power_CPU,power_Chipset,power_Memory,power_I/O,power_Disk,cpu0_cycles\n1,1,1,1,1,1,1\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// mustCSV returns a valid one-row CSV to append garbage to.
func mustCSV(t *testing.T) string {
	t.Helper()
	ds := &Dataset{Rows: []Row{sampleRow(1, false)}}
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestCSVHeaderStable(t *testing.T) {
	h := csvHeader(2, 1, true, 4)
	joined := strings.Join(h, ",")
	for _, want := range []string{
		"seconds", "interval", "power_CPU", "power_Disk",
		"cpu0_cycles", "cpu1_uncache", "int0_cpu1", "osbusy_cpu0", "tbusy_th3",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("header missing %q: %v", want, joined)
		}
	}
}
