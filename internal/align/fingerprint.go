package align

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// Fingerprint digests an aligned dataset — every power reading, every
// counter, every timestamp — into a short stable hex string. Two runs of
// the same seed must fingerprint identically; any engine change that
// perturbs a single bit of a fixed-seed trace shows up as drift against
// the golden corpus, which is exactly the tripwire an accuracy gate
// needs (a model can stay "accurate" by accident while the data under it
// silently changed). It lives here, next to Dataset, so both the
// validation gate and the training provenance stamp can use it without
// an import cycle.
func Fingerprint(ds *Dataset) string {
	h := fnv.New64a()
	var buf [8]byte
	wu := func(u uint64) {
		binary.LittleEndian.PutUint64(buf[:], u)
		h.Write(buf[:])
	}
	wf := func(f float64) { wu(math.Float64bits(f)) }
	wu(uint64(ds.Len()))
	for i := range ds.Rows {
		row := &ds.Rows[i]
		for _, p := range row.Power {
			wf(p)
		}
		s := &row.Counters
		wf(s.TargetSeconds)
		wf(s.IntervalSec)
		wu(uint64(len(s.CPUs)))
		for c := range s.CPUs {
			cc := &s.CPUs[c]
			wu(cc.Cycles)
			wu(cc.HaltedCycles)
			wu(cc.FetchedUops)
			wu(cc.L3LoadMisses)
			wu(cc.L3Misses)
			wu(cc.TLBMisses)
			wu(cc.BusTx)
			wu(cc.BusPrefetchTx)
			wu(cc.DMAOther)
			wu(cc.Uncacheable)
		}
		wu(uint64(len(s.Ints)))
		for _, vec := range s.Ints {
			for _, n := range vec {
				wu(n)
			}
		}
		for _, b := range s.OSBusySec {
			wf(b)
		}
		for _, b := range s.OSThreadBusySec {
			wf(b)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
