package align

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"trickledown/internal/perfctr"
	"trickledown/internal/power"
)

// CSV serialization for aligned datasets: record a machine once, analyze
// (train, validate, re-fit alternative models) offline — the workflow
// the paper's own offline merge implies. The layout is one row per
// sample; per-CPU counter columns and per-vector interrupt columns are
// expanded, so files are self-describing and diffable.

// counterCols names the per-CPU counter columns, in CPUCounts order.
var counterCols = []string{
	"cycles", "halted", "uops", "l3load", "l3all",
	"tlb", "bustx", "prefetch", "dmaother", "uncache",
}

// csvHeader builds the header for a dataset with nCPU processors and
// nVec interrupt vectors.
func csvHeader(nCPU, nVec int, hasBusy bool, nThread int) []string {
	h := []string{"seconds", "interval"}
	for _, s := range power.Subsystems() {
		h = append(h, "power_"+s.String())
	}
	for c := 0; c < nCPU; c++ {
		for _, col := range counterCols {
			h = append(h, fmt.Sprintf("cpu%d_%s", c, col))
		}
	}
	for v := 0; v < nVec; v++ {
		for c := 0; c < nCPU; c++ {
			h = append(h, fmt.Sprintf("int%d_cpu%d", v, c))
		}
	}
	if hasBusy {
		for c := 0; c < nCPU; c++ {
			h = append(h, fmt.Sprintf("osbusy_cpu%d", c))
		}
	}
	for th := 0; th < nThread; th++ {
		h = append(h, fmt.Sprintf("tbusy_th%d", th))
	}
	return h
}

// WriteCSV serializes the dataset. All rows must have the same shape
// (CPU count, interrupt vectors) as the first.
func (d *Dataset) WriteCSV(w io.Writer) error {
	if len(d.Rows) == 0 {
		return fmt.Errorf("align: empty dataset")
	}
	first := &d.Rows[0].Counters
	nCPU := len(first.CPUs)
	nVec := len(first.Ints)
	hasBusy := len(first.OSBusySec) > 0
	nThread := len(first.OSThreadBusySec)
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader(nCPU, nVec, hasBusy, nThread)); err != nil {
		return err
	}
	ff := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	fu := func(v uint64) string { return strconv.FormatUint(v, 10) }
	for i := range d.Rows {
		row := &d.Rows[i]
		s := &row.Counters
		if len(s.CPUs) != nCPU || len(s.Ints) != nVec {
			return fmt.Errorf("align: row %d shape differs from row 0", i)
		}
		rec := []string{ff(s.TargetSeconds), ff(s.IntervalSec)}
		for _, sub := range power.Subsystems() {
			rec = append(rec, ff(row.Power[sub]))
		}
		for _, c := range s.CPUs {
			rec = append(rec,
				fu(c.Cycles), fu(c.HaltedCycles), fu(c.FetchedUops),
				fu(c.L3LoadMisses), fu(c.L3Misses), fu(c.TLBMisses),
				fu(c.BusTx), fu(c.BusPrefetchTx), fu(c.DMAOther), fu(c.Uncacheable))
		}
		for v := 0; v < nVec; v++ {
			for c := 0; c < nCPU; c++ {
				var n uint64
				if c < len(s.Ints[v]) {
					n = s.Ints[v][c]
				}
				rec = append(rec, fu(n))
			}
		}
		if hasBusy {
			for c := 0; c < nCPU; c++ {
				var b float64
				if c < len(s.OSBusySec) {
					b = s.OSBusySec[c]
				}
				rec = append(rec, ff(b))
			}
		}
		for th := 0; th < nThread; th++ {
			var b float64
			if th < len(s.OSThreadBusySec) {
				b = s.OSThreadBusySec[th]
			}
			rec = append(rec, ff(b))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV deserializes a dataset written by WriteCSV.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("align: reading header: %w", err)
	}
	nCPU, nVec, hasBusy, nThread, err := parseShape(header)
	if err != nil {
		return nil, err
	}
	want := len(csvHeader(nCPU, nVec, hasBusy, nThread))
	if len(header) != want {
		return nil, fmt.Errorf("align: header has %d columns, want %d", len(header), want)
	}
	ds := &Dataset{}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("align: line %d: %w", line, err)
		}
		if len(rec) != want {
			return nil, fmt.Errorf("align: line %d has %d columns, want %d", line, len(rec), want)
		}
		row, err := parseRow(rec, nCPU, nVec, hasBusy, nThread)
		if err != nil {
			return nil, fmt.Errorf("align: line %d: %w", line, err)
		}
		ds.Rows = append(ds.Rows, row)
	}
	return ds, nil
}

// parseShape recovers the dataset dimensions from the header layout.
func parseShape(header []string) (nCPU, nVec int, hasBusy bool, nThread int, err error) {
	if len(header) < 2+power.NumSubsystems {
		return 0, 0, false, 0, fmt.Errorf("align: header too short")
	}
	for _, h := range header {
		var c int
		if n, _ := fmt.Sscanf(h, "cpu%d_cycles", &c); n == 1 && c+1 > nCPU {
			nCPU = c + 1
		}
		var v int
		if n, _ := fmt.Sscanf(h, "int%d_cpu0", &v); n == 1 && v+1 > nVec {
			nVec = v + 1
		}
		if h == "osbusy_cpu0" {
			hasBusy = true
		}
		var th int
		if n, _ := fmt.Sscanf(h, "tbusy_th%d", &th); n == 1 && th+1 > nThread {
			nThread = th + 1
		}
	}
	if nCPU == 0 {
		return 0, 0, false, 0, fmt.Errorf("align: no counter columns in header")
	}
	return nCPU, nVec, hasBusy, nThread, nil
}

// parseRow decodes one CSV record.
func parseRow(rec []string, nCPU, nVec int, hasBusy bool, nThread int) (Row, error) {
	var row Row
	idx := 0
	nextF := func() (float64, error) {
		v, err := strconv.ParseFloat(rec[idx], 64)
		idx++
		return v, err
	}
	nextU := func() (uint64, error) {
		v, err := strconv.ParseUint(rec[idx], 10, 64)
		idx++
		return v, err
	}
	var err error
	s := perfctr.Sample{CPUs: make([]perfctr.CPUCounts, nCPU)}
	if s.TargetSeconds, err = nextF(); err != nil {
		return row, err
	}
	if s.IntervalSec, err = nextF(); err != nil {
		return row, err
	}
	for _, sub := range power.Subsystems() {
		if row.Power[sub], err = nextF(); err != nil {
			return row, err
		}
	}
	for c := 0; c < nCPU; c++ {
		dst := []*uint64{
			&s.CPUs[c].Cycles, &s.CPUs[c].HaltedCycles, &s.CPUs[c].FetchedUops,
			&s.CPUs[c].L3LoadMisses, &s.CPUs[c].L3Misses, &s.CPUs[c].TLBMisses,
			&s.CPUs[c].BusTx, &s.CPUs[c].BusPrefetchTx, &s.CPUs[c].DMAOther,
			&s.CPUs[c].Uncacheable,
		}
		for _, p := range dst {
			if *p, err = nextU(); err != nil {
				return row, err
			}
		}
	}
	if nVec > 0 {
		s.Ints = make([][]uint64, nVec)
		for v := 0; v < nVec; v++ {
			s.Ints[v] = make([]uint64, nCPU)
			for c := 0; c < nCPU; c++ {
				if s.Ints[v][c], err = nextU(); err != nil {
					return row, err
				}
			}
		}
	}
	if hasBusy {
		s.OSBusySec = make([]float64, nCPU)
		for c := 0; c < nCPU; c++ {
			if s.OSBusySec[c], err = nextF(); err != nil {
				return row, err
			}
		}
	}
	if nThread > 0 {
		s.OSThreadBusySec = make([]float64, nThread)
		for th := 0; th < nThread; th++ {
			if s.OSThreadBusySec[th], err = nextF(); err != nil {
				return row, err
			}
		}
	}
	row.Counters = s
	return row, nil
}
