package align

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV ensures arbitrary input never panics the reader and that
// anything it accepts round-trips back to identical CSV.
func FuzzReadCSV(f *testing.F) {
	// Seed with a valid file and some near-misses.
	ds := &Dataset{Rows: []Row{sampleRow(1, true), sampleRow(2, true)}}
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("")
	f.Add("seconds,interval\n1,1\n")
	f.Add(strings.Replace(buf.String(), "2800000000", "-1", 1))
	f.Fuzz(func(t *testing.T, in string) {
		got, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		if got.Len() == 0 {
			return
		}
		var out bytes.Buffer
		if err := got.WriteCSV(&out); err != nil {
			t.Fatalf("accepted input failed to re-serialize: %v", err)
		}
		again, err := ReadCSV(&out)
		if err != nil {
			t.Fatalf("re-serialized output failed to parse: %v", err)
		}
		if again.Len() != got.Len() {
			t.Fatalf("round trip changed length %d -> %d", got.Len(), again.Len())
		}
	})
}
