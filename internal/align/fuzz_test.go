package align

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"trickledown/internal/daq"
	"trickledown/internal/perfctr"
	"trickledown/internal/power"
)

// encodeTimes packs float64s into the byte form the MergeRobust fuzzer
// decodes, so malformed-log scenarios can be written down as seeds.
func encodeTimes(ts ...float64) []byte {
	out := make([]byte, 0, 8*len(ts))
	for _, t := range ts {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(t))
	}
	return out
}

// FuzzMergeRobust throws arbitrarily corrupted DAQ and counter logs at
// the robust merge: whatever the corruption — duplicate sync edges,
// out-of-order or non-finite timestamps, NaN power windows — it must
// never panic, and anything it accepts must be finite-powered with
// strictly increasing timestamps and an accounting that adds up.
func FuzzMergeRobust(f *testing.F) {
	// Seeds: clean pairing, duplicate sync edges, out-of-order DAQ
	// timestamps, NaN power readings, stuck target clock, disjoint logs.
	f.Add(encodeTimes(1, 2, 3), encodeTimes(1, 2, 3))
	f.Add(encodeTimes(1, 2, 2.01, 3), encodeTimes(1, 2, 3))          // duplicate sync edge
	f.Add(encodeTimes(1, 3, 2, 4), encodeTimes(1, 2, 3, 4))          // out-of-order DAQ log
	f.Add(encodeTimes(1, math.NaN(), 3), encodeTimes(1, 2, 3))       // NaN reading/timestamp
	f.Add(encodeTimes(1, 2, 3, 4), encodeTimes(1, 2, 2, 3))          // stuck target clock
	f.Add(encodeTimes(1, 2), encodeTimes(1001, 1002))                // disjoint logs
	f.Add(encodeTimes(math.Inf(1), math.Inf(-1)), encodeTimes(1, 2)) // infinite timestamps
	// Compound damage: duplicate DAQ timestamps *and* NaN windows in the
	// same log, against a counter log with its own stuck edge — the
	// collapse and rejection paths must compose, not fight.
	f.Add(encodeTimes(1, 2, 2.01, math.NaN(), 3, 3.005, math.NaN()),
		encodeTimes(1, 2, 2, 3, 4))
	f.Fuzz(func(t *testing.T, recBytes, smpBytes []byte) {
		var recs []daq.Record
		for i := 0; i+8 <= len(recBytes) && len(recs) < 256; i += 8 {
			ts := math.Float64frombits(binary.LittleEndian.Uint64(recBytes[i : i+8]))
			r := daq.Record{DAQSeconds: ts, Samples: int64(recBytes[i] % 16)}
			// Derive per-rail power from the same bits; NaN timestamps
			// double as NaN readings so dead-channel windows appear too.
			for rail := range r.Mean {
				r.Mean[rail] = ts / float64(rail+1)
			}
			recs = append(recs, r)
		}
		var smps []perfctr.Sample
		for i := 0; i+8 <= len(smpBytes) && len(smps) < 256; i += 8 {
			ts := math.Float64frombits(binary.LittleEndian.Uint64(smpBytes[i : i+8]))
			smps = append(smps, perfctr.Sample{TargetSeconds: ts, IntervalSec: 1})
		}
		ds, q, err := MergeRobust(recs, smps)
		if err != nil {
			return
		}
		if ds.Len() == 0 {
			t.Fatal("accepted merge returned zero rows without error")
		}
		if got := q.Matched + q.Interpolated; ds.Len() != got {
			t.Fatalf("len %d != matched %d + interpolated %d", ds.Len(), q.Matched, q.Interpolated)
		}
		last := math.Inf(-1)
		for i := range ds.Rows {
			if ts := ds.Rows[i].Counters.TargetSeconds; ts <= last {
				t.Fatalf("row %d timestamp %v not increasing", i, ts)
			} else {
				last = ts
			}
			for _, s := range power.Subsystems() {
				if v := ds.Rows[i].Power[s]; math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("row %d rail %v non-finite: %v", i, s, v)
				}
			}
		}
	})
}

// FuzzReadCSV ensures arbitrary input never panics the reader and that
// anything it accepts round-trips back to identical CSV.
func FuzzReadCSV(f *testing.F) {
	// Seed with a valid file and some near-misses.
	ds := &Dataset{Rows: []Row{sampleRow(1, true), sampleRow(2, true)}}
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("")
	f.Add("seconds,interval\n1,1\n")
	f.Add(strings.Replace(buf.String(), "2800000000", "-1", 1))
	f.Fuzz(func(t *testing.T, in string) {
		got, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		if got.Len() == 0 {
			return
		}
		var out bytes.Buffer
		if err := got.WriteCSV(&out); err != nil {
			t.Fatalf("accepted input failed to re-serialize: %v", err)
		}
		again, err := ReadCSV(&out)
		if err != nil {
			t.Fatalf("re-serialized output failed to parse: %v", err)
		}
		if again.Len() != got.Len() {
			t.Fatalf("round trip changed length %d -> %d", got.Len(), again.Len())
		}
	})
}
