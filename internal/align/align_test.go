package align

import (
	"errors"
	"testing"

	"trickledown/internal/daq"
	"trickledown/internal/perfctr"
	"trickledown/internal/power"
)

func mkRecords(n int) []daq.Record {
	out := make([]daq.Record, n)
	for i := range out {
		out[i] = daq.Record{DAQSeconds: float64(i + 1), Mean: power.Reading{float64(i), 0, 0, 0, 0}}
	}
	return out
}

func mkSamples(n int) []perfctr.Sample {
	out := make([]perfctr.Sample, n)
	for i := range out {
		out[i] = perfctr.Sample{TargetSeconds: float64(i + 1), IntervalSec: 1}
	}
	return out
}

func TestMergePairsInOrder(t *testing.T) {
	ds, err := Merge(mkRecords(5), mkSamples(5))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 5 {
		t.Fatalf("Len = %d", ds.Len())
	}
	for i, row := range ds.Rows {
		if row.Power[power.SubCPU] != float64(i) {
			t.Errorf("row %d power = %v", i, row.Power[power.SubCPU])
		}
		if row.Counters.TargetSeconds != float64(i+1) {
			t.Errorf("row %d sample time = %v", i, row.Counters.TargetSeconds)
		}
	}
}

func TestMergeToleratesOneTrailing(t *testing.T) {
	ds, err := Merge(mkRecords(5), mkSamples(6))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 5 {
		t.Errorf("Len = %d", ds.Len())
	}
	ds, err = Merge(mkRecords(6), mkSamples(5))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 5 {
		t.Errorf("Len = %d", ds.Len())
	}
}

func TestMergeRejectsBigMismatch(t *testing.T) {
	if _, err := Merge(mkRecords(5), mkSamples(9)); !errors.Is(err, ErrMismatch) {
		t.Errorf("err = %v", err)
	}
}

func TestMergeRejectsNonMonotonicSamples(t *testing.T) {
	samples := mkSamples(3)
	samples[2].TargetSeconds = samples[1].TargetSeconds
	if _, err := Merge(mkRecords(3), samples); !errors.Is(err, ErrMismatch) {
		t.Errorf("err = %v", err)
	}
}

func TestPowerColumn(t *testing.T) {
	ds, _ := Merge(mkRecords(3), mkSamples(3))
	col := ds.PowerColumn(power.SubCPU)
	if len(col) != 3 || col[2] != 2 {
		t.Errorf("column = %v", col)
	}
}

func TestSkip(t *testing.T) {
	ds, _ := Merge(mkRecords(5), mkSamples(5))
	if got := ds.Skip(2).Len(); got != 3 {
		t.Errorf("Skip(2).Len = %d", got)
	}
	if got := ds.Skip(-1).Len(); got != 5 {
		t.Errorf("Skip(-1).Len = %d", got)
	}
	if got := ds.Skip(99).Len(); got != 0 {
		t.Errorf("Skip(99).Len = %d", got)
	}
}

func TestConcat(t *testing.T) {
	a, _ := Merge(mkRecords(2), mkSamples(2))
	b, _ := Merge(mkRecords(3), mkSamples(3))
	if got := Concat(a, nil, b).Len(); got != 5 {
		t.Errorf("Concat Len = %d", got)
	}
}

func TestMergeEmpty(t *testing.T) {
	ds, err := Merge(nil, nil)
	if err != nil || ds.Len() != 0 {
		t.Errorf("empty merge = %v, %v", ds, err)
	}
}
