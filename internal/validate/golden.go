package validate

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// The golden corpus pins the conformance gate to a checked-in file
// (GOLDEN.json at the repository root): the exact fingerprints of every
// fixed-seed validation trace plus the expected held-out error table.
// The gate then fails for either of two independent reasons:
//
//   - accuracy: a subsystem's held-out mean error exceeds the paper
//     bound, or moved away from its recorded value by more than the
//     tolerance — a model or trainer regression;
//   - drift: a dataset fingerprint changed — the simulation engine's
//     fixed-seed output is no longer the data the corpus was blessed
//     on, so the error table is comparing against a moved target.
//
// Distinguishing the two matters: accuracy failures point at the
// models, drift failures point at the engine (and are fixed by
// deliberately regenerating the corpus with -update).

// ErrTolPctDefault bounds how far a subsystem's recorded mean error may
// move before the gate calls it a regression even below the paper
// bound.
const ErrTolPctDefault = 1.0

// Golden is the checked-in conformance corpus.
type Golden struct {
	// Seed and Scale are the run configuration the corpus was generated
	// with; gate runs must reproduce them exactly.
	Seed  uint64  `json:"seed"`
	Scale float64 `json:"scale"`
	// BoundPct is the absolute gate: no subsystem's held-out mean error
	// may reach it (the paper's single-digit claim).
	BoundPct float64 `json:"bound_pct"`
	// ErrTolPct is the relative gate: no subsystem's mean error may move
	// more than this many points from MeanErrPct.
	ErrTolPct float64 `json:"err_tol_pct"`
	// Workloads is the fold suite, in order.
	Workloads []string `json:"workloads"`
	// Fingerprints maps workload → expected dataset fingerprint.
	Fingerprints map[string]string `json:"fingerprints"`
	// MeanErrPct maps subsystem name → blessed held-out mean error.
	MeanErrPct map[string]float64 `json:"mean_err_pct"`
}

// FromReport blesses a report as the new golden corpus.
func FromReport(r *Report) *Golden {
	g := &Golden{
		Seed:         r.Seed,
		Scale:        r.Scale,
		BoundPct:     PaperBoundPct,
		ErrTolPct:    ErrTolPctDefault,
		Workloads:    append([]string(nil), r.Workloads...),
		Fingerprints: map[string]string{},
		MeanErrPct:   map[string]float64{},
	}
	for w, fp := range r.Fingerprints {
		g.Fingerprints[w] = fp
	}
	for _, s := range r.Subsystems {
		g.MeanErrPct[s.Subsystem] = s.MeanErrPct
	}
	return g
}

// LoadGolden reads a corpus file.
func LoadGolden(path string) (*Golden, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("validate: golden: %w", err)
	}
	var g Golden
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("validate: golden %s: %w", path, err)
	}
	if g.BoundPct <= 0 {
		g.BoundPct = PaperBoundPct
	}
	if g.ErrTolPct <= 0 {
		g.ErrTolPct = ErrTolPctDefault
	}
	return &g, nil
}

// Write serializes the corpus deterministically (json sorts map keys).
func (g *Golden) Write(w io.Writer) error {
	data, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return fmt.Errorf("validate: encoding golden: %w", err)
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// Save writes the corpus to a file.
func (g *Golden) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("validate: golden: %w", err)
	}
	if err := g.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Check gates a report against the corpus and returns every violation
// (sorted, deterministic). An empty slice is a pass. Incomplete runs
// (Coverage < 1) and failed conformance checks are violations too: a
// gate must never pass on partial evidence.
func (g *Golden) Check(r *Report) []string {
	var bad []string
	if r.Seed != g.Seed {
		bad = append(bad, fmt.Sprintf("config: report seed %d != golden seed %d", r.Seed, g.Seed))
	}
	if r.Scale != g.Scale {
		bad = append(bad, fmt.Sprintf("config: report scale %g != golden scale %g", r.Scale, g.Scale))
	}
	if r.Coverage() < 1 {
		bad = append(bad, fmt.Sprintf("coverage: only %d/%d folds completed", r.FoldsDone, r.FoldsTotal))
	}
	for _, w := range g.Workloads {
		want := g.Fingerprints[w]
		got, ok := r.Fingerprints[w]
		switch {
		case !ok:
			bad = append(bad, fmt.Sprintf("drift: workload %s missing from report", w))
		case got != want:
			bad = append(bad, fmt.Sprintf("drift: workload %s fingerprint %s != golden %s", w, got, want))
		}
	}
	subs := make([]string, 0, len(g.MeanErrPct))
	for name := range g.MeanErrPct {
		subs = append(subs, name)
	}
	sort.Strings(subs)
	for _, name := range subs {
		want := g.MeanErrPct[name]
		rep := r.Subsystem(name)
		if rep == nil {
			bad = append(bad, fmt.Sprintf("accuracy: subsystem %s missing from report", name))
			continue
		}
		if rep.MeanErrPct >= g.BoundPct {
			bad = append(bad, fmt.Sprintf("accuracy: %s held-out mean error %.3f%% reaches the %.0f%% bound",
				name, rep.MeanErrPct, g.BoundPct))
		}
		if diff := rep.MeanErrPct - want; diff > g.ErrTolPct || diff < -g.ErrTolPct {
			bad = append(bad, fmt.Sprintf("accuracy: %s held-out mean error %.3f%% drifted %+.3f points from golden %.3f%% (tolerance %.2f)",
				name, rep.MeanErrPct, diff, want, g.ErrTolPct))
		}
	}
	if len(r.Checks) == 0 {
		bad = append(bad, "checks: no conformance checks ran")
	}
	for _, c := range r.Checks {
		if !c.OK {
			bad = append(bad, fmt.Sprintf("checks: %s failed: %s", c.Name, c.Detail))
		}
	}
	sort.Strings(bad)
	return bad
}
