package validate

import (
	"trickledown/internal/align"
)

// Fingerprint digests an aligned dataset into a short stable hex
// string; see align.Fingerprint for the contract. Kept here as an
// alias because the golden corpus and its reports were specified in
// terms of validate.Fingerprint — the implementation moved down to
// align so training provenance (experiments) can stamp fingerprints
// without importing the validation layer.
func Fingerprint(ds *align.Dataset) string {
	return align.Fingerprint(ds)
}
