package validate

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"trickledown/internal/align"
	"trickledown/internal/core"
	"trickledown/internal/experiments"
)

// testOptions runs the suite at the 30-second duration floor: fast
// enough for unit tests, long enough that every model trains.
func testOptions() Options {
	return Options{Seed: 7, Scale: 0.02, Resamples: 100}
}

func testRunner() *experiments.Runner {
	return experiments.NewRunner(experiments.Options{
		Seed: 7, TrainSeed: 7, Scale: 0.02,
	})
}

func mustCV(t *testing.T) *Report {
	t.Helper()
	report, err := CrossValidate(context.Background(), testRunner(), testOptions())
	if err != nil {
		t.Fatalf("CrossValidate: %v", err)
	}
	return report
}

func TestCrossValidateComplete(t *testing.T) {
	report := mustCV(t)
	if report.Coverage() != 1 {
		t.Fatalf("coverage = %v, want 1 (%d/%d folds)", report.Coverage(),
			report.FoldsDone, report.FoldsTotal)
	}
	if got := len(report.Subsystems); got != 5 {
		t.Fatalf("subsystems = %d, want 5", got)
	}
	if got := len(report.Fingerprints); got != len(report.Workloads) {
		t.Fatalf("fingerprints = %d, want %d", got, len(report.Workloads))
	}
	for _, s := range report.Subsystems {
		if len(s.Folds) != len(report.Workloads) {
			t.Errorf("%s: %d folds, want %d", s.Subsystem, len(s.Folds), len(report.Workloads))
		}
		if s.CIHiPct < s.CILoPct {
			t.Errorf("%s: CI inverted [%v, %v]", s.Subsystem, s.CILoPct, s.CIHiPct)
		}
		for _, f := range s.Folds {
			if f.Rows <= 0 {
				t.Errorf("%s/%s: no rows scored", s.Subsystem, f.Workload)
			}
		}
	}
}

// Byte-determinism is the contract the golden corpus rests on: two runs
// of the same seed must serialize identically, bit for bit.
func TestReportByteDeterministic(t *testing.T) {
	var bufs [2]bytes.Buffer
	for i := range bufs {
		report, err := CrossValidate(context.Background(), testRunner(), testOptions())
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if err := report.WriteJSON(&bufs[i]); err != nil {
			t.Fatalf("run %d: WriteJSON: %v", i, err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatalf("reports differ between identical runs:\n--- run 0\n%s\n--- run 1\n%s",
			bufs[0].String(), bufs[1].String())
	}
}

// cancellingSource serves a few datasets, then pulls the plug —
// simulating an operator interrupt in the middle of cross-validation.
type cancellingSource struct {
	src    Source
	cancel context.CancelFunc
	left   atomic.Int64
}

func (c *cancellingSource) ValidationDataset(name string) (*align.Dataset, error) {
	if c.left.Add(-1) < 0 {
		c.cancel()
	}
	return c.src.ValidationDataset(name)
}

func TestCrossValidateCancelledMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := &cancellingSource{src: testRunner(), cancel: cancel}
	src.left.Store(3)
	opt := testOptions()
	opt.Workers = 1
	report, err := CrossValidate(ctx, src, opt)
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if report == nil {
		t.Fatal("cancelled run returned nil report")
	}
	if report.Coverage() >= 1 {
		t.Fatalf("cancelled run reports full coverage (%d/%d folds)",
			report.FoldsDone, report.FoldsTotal)
	}
	if len(report.Errors) == 0 {
		t.Fatal("cancelled run recorded no errors")
	}
	// A partial report must still serialize (sanitize must hold).
	if err := report.WriteJSON(&bytes.Buffer{}); err != nil {
		t.Fatalf("partial report failed to serialize: %v", err)
	}
}

func TestCrossValidateCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	report, err := CrossValidate(ctx, testRunner(), testOptions())
	if err == nil {
		t.Fatal("pre-cancelled run returned nil error")
	}
	if report.FoldsDone != 0 {
		t.Fatalf("pre-cancelled run completed %d folds", report.FoldsDone)
	}
}

func TestGoldenRoundTripPasses(t *testing.T) {
	report := mustCV(t)
	report.Checks = []CheckResult{{Name: "stub", OK: true}}
	g := FromReport(report)
	if bad := g.Check(report); len(bad) != 0 {
		t.Fatalf("self-check violations: %v", bad)
	}
	// Round-trip through disk.
	path := t.TempDir() + "/GOLDEN.json"
	if err := g.Save(path); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadGolden(path)
	if err != nil {
		t.Fatal(err)
	}
	if bad := g2.Check(report); len(bad) != 0 {
		t.Fatalf("violations after round-trip: %v", bad)
	}
}

func TestGoldenCatchesDrift(t *testing.T) {
	report := mustCV(t)
	report.Checks = []CheckResult{{Name: "stub", OK: true}}
	g := FromReport(report)
	w := report.Workloads[0]
	report.Fingerprints[w] = "0000000000000000"
	bad := g.Check(report)
	if len(bad) == 0 {
		t.Fatal("fingerprint drift not flagged")
	}
	if !strings.Contains(fmt.Sprint(bad), "drift") {
		t.Fatalf("violations name no drift: %v", bad)
	}
}

func TestGoldenCatchesPartialRun(t *testing.T) {
	report := mustCV(t)
	report.Checks = []CheckResult{{Name: "stub", OK: true}}
	g := FromReport(report)
	report.FoldsDone--
	if bad := g.Check(report); len(bad) == 0 {
		t.Fatal("partial coverage not flagged")
	}
}

// The gate's reason to exist: a deliberately mistrained model must
// fail it. The Train hook is how CI's negative test corrupts exactly
// one subsystem.
func TestGoldenCatchesMistrainedModel(t *testing.T) {
	g := FromReport(mustCV(t))
	opt := testOptions()
	opt.Train = func(spec core.ModelSpec, ds *align.Dataset) (*core.Model, error) {
		m, err := core.Train(spec, ds)
		if err != nil {
			return nil, err
		}
		if spec.Sub.String() == "Memory" {
			for i := range m.Coef {
				m.Coef[i] *= 3
			}
		}
		return m, nil
	}
	report, err := CrossValidate(context.Background(), testRunner(), opt)
	if err != nil {
		t.Fatalf("CrossValidate: %v", err)
	}
	report.Checks = []CheckResult{{Name: "stub", OK: true}}
	bad := g.Check(report)
	if len(bad) == 0 {
		t.Fatal("mistrained Memory model passed the gate")
	}
	if !strings.Contains(fmt.Sprint(bad), "Memory") {
		t.Fatalf("violations name no Memory failure: %v", bad)
	}
}

func TestGoldenCatchesFailedCheck(t *testing.T) {
	report := mustCV(t)
	report.Checks = []CheckResult{{Name: "idle-floor", OK: false, Detail: "boom"}}
	if bad := FromReport(report).Check(report); len(bad) == 0 {
		t.Fatal("failed conformance check passed the gate")
	}
	report.Checks = nil
	if bad := FromReport(report).Check(report); len(bad) == 0 {
		t.Fatal("missing conformance checks passed the gate")
	}
}

func TestChecksPass(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several private simulations")
	}
	checks, err := Checks(testRunner(), testOptions())
	if err != nil {
		t.Fatalf("Checks: %v", err)
	}
	if len(checks) == 0 {
		t.Fatal("no checks ran")
	}
	for _, c := range checks {
		if !c.OK {
			t.Errorf("check %s failed: %s", c.Name, c.Detail)
		}
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	src := testRunner()
	ds, err := src.ValidationDataset("idle")
	if err != nil {
		t.Fatal(err)
	}
	fp := Fingerprint(ds)
	if len(fp) != 16 {
		t.Fatalf("fingerprint %q not 16 hex chars", fp)
	}
	if fp2 := Fingerprint(ds); fp2 != fp {
		t.Fatalf("fingerprint not stable: %s vs %s", fp, fp2)
	}
	// One bit of one counter in one row must change the digest.
	mut := &align.Dataset{Rows: append([]align.Row(nil), ds.Rows...)}
	cp := append(mut.Rows[0].Counters.CPUs[:0:0], mut.Rows[0].Counters.CPUs...)
	cp[0].Cycles ^= 1
	mut.Rows[0].Counters.CPUs = cp
	if Fingerprint(mut) == fp {
		t.Fatal("single-bit counter change did not change the fingerprint")
	}
	// Power perturbation too.
	mut2 := &align.Dataset{Rows: append([]align.Row(nil), ds.Rows...)}
	mut2.Rows[len(mut2.Rows)-1].Power[0] += 1e-9
	if Fingerprint(mut2) == fp {
		t.Fatal("power perturbation did not change the fingerprint")
	}
}
