// Package validate is the paper-conformance subsystem: it continuously
// *proves* the pipeline still meets the paper's headline claim — five
// event-driven regression models estimating per-subsystem power within
// single-digit average error — instead of assuming it.
//
// Three layers build on each other:
//
//  1. CrossValidate runs leave-one-workload-out cross-validation of the
//     five production models over the fixed-seed workload suite. Unlike
//     the paper's tables (train on gcc/mcf/DiskLoad, validate
//     everywhere), every fold here scores a model on a workload that
//     contributed nothing to its coefficients, the generalization test
//     counter-based power models are known to need.
//  2. Checks runs the model-level invariants as metamorphic properties:
//     idle floors, monotonic response to each model's dominant event,
//     finiteness under fault injection, strict-vs-robust merge
//     agreement, and cluster-level accounting consistency.
//  3. Golden pins the whole thing to a checked-in corpus (GOLDEN.json):
//     dataset fingerprints plus the expected held-out error table. The
//     gate fails when accuracy regresses past the paper bound or the
//     fixed-seed data drifts at all.
//
// Everything is seeded and deterministic: two runs with the same
// options produce byte-identical reports.
package validate

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"trickledown/internal/align"
	"trickledown/internal/core"
	"trickledown/internal/pool"
	"trickledown/internal/power"
	"trickledown/internal/stats"
	"trickledown/internal/telemetry"
	"trickledown/internal/workload"
)

var (
	mFolds = telemetry.NewCounterVec("validate_folds_total",
		"cross-validation folds finished, by outcome", "outcome")
	mChecks = telemetry.NewCounterVec("validate_checks_total",
		"conformance checks evaluated, by outcome", "outcome")
)

// PaperBoundPct is the paper's headline accuracy claim: average
// subsystem model error under 9%.
const PaperBoundPct = 9.0

// Source supplies per-workload validation traces. experiments.Runner
// implements it, so cross-validation shares the runner's simulation
// cache with table and figure generation.
type Source interface {
	ValidationDataset(name string) (*align.Dataset, error)
}

// Options configures a cross-validation run.
type Options struct {
	// Seed is recorded in the report and salts the bootstrap streams. It
	// must match the Source's dataset seed for the golden fingerprints to
	// mean anything.
	Seed uint64
	// Scale is recorded in the report (the Source owns the actual
	// durations).
	Scale float64
	// Workloads is the fold set; empty means workload.TableOrder().
	Workloads []string
	// Warmup rows are trimmed from the head of every dataset before
	// training or scoring (boot transients; default 5).
	Warmup int
	// Resamples is the bootstrap resample count (default 500).
	Resamples int
	// Confidence is the bootstrap CI coverage (default 0.95).
	Confidence float64
	// Workers bounds fold parallelism (non-positive: GOMAXPROCS).
	Workers int
	// Train is the per-fold training hook (default core.Train). Tests
	// substitute mistrained variants to prove the gate fails.
	Train core.TrainFunc
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if len(o.Workloads) == 0 {
		o.Workloads = workload.TableOrder()
	}
	if o.Warmup == 0 {
		o.Warmup = 5
	}
	if o.Resamples <= 0 {
		o.Resamples = 500
	}
	if o.Confidence <= 0 || o.Confidence >= 1 {
		o.Confidence = 0.95
	}
	if o.Train == nil {
		o.Train = core.Train
	}
	return o
}

// productionSpecs returns the paper's five production model specs in
// power.Subsystems() order.
func productionSpecs() []core.ModelSpec {
	return []core.ModelSpec{
		core.CPUSpec(),
		core.ChipsetSpec(),
		core.MemBusSpec(),
		core.IOSpec(),
		core.DiskSpec(),
	}
}

// FoldResult is one held-out evaluation: a model trained on every other
// workload, scored on this one.
type FoldResult struct {
	// Workload is the held-out workload.
	Workload string `json:"workload"`
	// Rows is the number of held-out samples scored.
	Rows int `json:"rows"`
	// ErrPct is the Equation 6 average error, percent.
	ErrPct float64 `json:"err_pct"`
	// WorstErrPct is the largest single-sample error, percent.
	WorstErrPct float64 `json:"worst_err_pct"`
	// R2 is the held-out coefficient of determination (negative:
	// worse than predicting the measured mean).
	R2 float64 `json:"r2"`
	// Residual summary, modeled − measured, Watts.
	ResidMeanW float64 `json:"resid_mean_w"`
	ResidStdW  float64 `json:"resid_std_w"`
	ResidMinW  float64 `json:"resid_min_w"`
	ResidMaxW  float64 `json:"resid_max_w"`
}

// SubsystemReport aggregates one subsystem model's held-out folds.
type SubsystemReport struct {
	// Subsystem is the rail name (power.Subsystem.String()).
	Subsystem string `json:"subsystem"`
	// MeanErrPct is the mean fold error — the number the gate bounds.
	MeanErrPct float64 `json:"mean_err_pct"`
	// WorstFoldErrPct is the worst fold's average error.
	WorstFoldErrPct float64 `json:"worst_fold_err_pct"`
	// IntegerMeanErrPct / FPMeanErrPct mirror the paper's Table 3/4
	// class split.
	IntegerMeanErrPct float64 `json:"integer_mean_err_pct"`
	FPMeanErrPct      float64 `json:"fp_mean_err_pct"`
	// CILoPct/CIHiPct bound MeanErrPct with a seeded percentile
	// bootstrap at the report's confidence.
	CILoPct float64 `json:"ci_lo_pct"`
	CIHiPct float64 `json:"ci_hi_pct"`
	// Folds holds the per-workload results in suite order.
	Folds []FoldResult `json:"folds"`
}

// CheckResult is one conformance check's outcome.
type CheckResult struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail"`
}

// Report is one full validation run. Marshal it with WriteJSON: the
// encoding is deterministic (fixed field order, sorted maps), so two
// runs of the same seed are byte-identical.
type Report struct {
	// Seed and Scale echo the run configuration.
	Seed  uint64  `json:"seed"`
	Scale float64 `json:"scale"`
	// Confidence is the bootstrap CI coverage.
	Confidence float64 `json:"confidence"`
	// Workloads is the fold suite in order.
	Workloads []string `json:"workloads"`
	// FoldsDone/FoldsTotal: a cancelled or partially failed run reports
	// fewer done than total; Coverage() is their ratio.
	FoldsDone  int `json:"folds_done"`
	FoldsTotal int `json:"folds_total"`
	// Subsystems holds per-model aggregates in power.Subsystems() order.
	Subsystems []SubsystemReport `json:"subsystems"`
	// Fingerprints maps workload → dataset fingerprint (hex), the drift
	// half of the golden corpus.
	Fingerprints map[string]string `json:"fingerprints"`
	// Checks holds conformance check outcomes (empty if checks were
	// skipped or the run was cancelled before them).
	Checks []CheckResult `json:"checks,omitempty"`
	// Errors records fold or dataset failures the run tolerated.
	Errors []string `json:"errors,omitempty"`
}

// Coverage is the fraction of planned folds that completed, in [0,1].
// Mirroring cluster.Coverage, a partial run (cancellation, fold
// failures) reports < 1 and must be treated as inconclusive, never as a
// pass.
func (r *Report) Coverage() float64 {
	if r.FoldsTotal == 0 {
		return 0
	}
	return float64(r.FoldsDone) / float64(r.FoldsTotal)
}

// ChecksOK reports whether every conformance check passed (and at least
// one ran).
func (r *Report) ChecksOK() bool {
	if len(r.Checks) == 0 {
		return false
	}
	for _, c := range r.Checks {
		if !c.OK {
			return false
		}
	}
	return true
}

// Subsystem returns the aggregate for one rail, or nil.
func (r *Report) Subsystem(name string) *SubsystemReport {
	for i := range r.Subsystems {
		if r.Subsystems[i].Subsystem == name {
			return &r.Subsystems[i]
		}
	}
	return nil
}

// CrossValidate runs leave-one-workload-out cross-validation of the
// five production subsystem models over opt.Workloads.
//
// For every fold, each model is retrained from scratch on the
// concatenation of every *other* workload's trace (via opt.Train) and
// evaluated on the held-out trace. Folds run in parallel on a bounded
// pool; each fold writes only its own slot, so the report is
// independent of scheduling order.
//
// Cancellation: when ctx expires, no further datasets are simulated and
// no further folds start. The partial report (Coverage() < 1) is
// returned alongside the context error — callers gate on Coverage, so a
// partial run can never masquerade as a pass.
func CrossValidate(ctx context.Context, src Source, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	defer telemetry.StartSpan("validate.cross_validate").End()

	names := opt.Workloads
	report := &Report{
		Seed:         opt.Seed,
		Scale:        opt.Scale,
		Confidence:   opt.Confidence,
		Workloads:    names,
		FoldsTotal:   len(names),
		Fingerprints: map[string]string{},
	}
	var errs []error
	fail := func(err error) (*Report, error) {
		errs = append(errs, err)
		for _, e := range errs {
			report.Errors = append(report.Errors, e.Error())
		}
		sort.Strings(report.Errors)
		return report, errors.Join(errs...)
	}

	// Acquire every workload's trace up front (the Source caches, so
	// this is where simulation time is spent). The fetches fan out on
	// the pool; a context expiring here leaves every fold undone.
	p := pool.New(opt.Workers)
	datasets := make([]*align.Dataset, len(names))
	prints := make([]string, len(names))
	err := p.Run(ctx, len(names), func(_ context.Context, i int) error {
		ds, err := src.ValidationDataset(names[i])
		if err != nil {
			return fmt.Errorf("validate: dataset %s: %w", names[i], err)
		}
		prints[i] = Fingerprint(ds)
		datasets[i] = ds.Skip(opt.Warmup)
		if datasets[i].Len() == 0 {
			return fmt.Errorf("validate: dataset %s: empty after %d warmup rows", names[i], opt.Warmup)
		}
		return nil
	})
	for i, fp := range prints {
		if fp != "" {
			report.Fingerprints[names[i]] = fp
		}
	}
	if err != nil {
		return fail(err)
	}

	// Folds. folds[w][s] is workload w held out, subsystem s scored.
	specs := productionSpecs()
	folds := make([][]FoldResult, len(names))
	done := make([]bool, len(names))
	foldErr := p.Run(ctx, len(names), func(_ context.Context, w int) error {
		trainPool := make([]*align.Dataset, 0, len(names)-1)
		for j := range names {
			if j != w {
				trainPool = append(trainPool, datasets[j])
			}
		}
		training := align.Concat(trainPool...)
		results := make([]FoldResult, len(specs))
		for s, spec := range specs {
			model, err := opt.Train(spec, training)
			if err != nil {
				mFolds.With("error").Inc()
				return fmt.Errorf("validate: fold %s: training %s: %w", names[w], spec.Name, err)
			}
			ev, err := model.Evaluate(datasets[w])
			if err != nil {
				mFolds.With("error").Inc()
				return fmt.Errorf("validate: fold %s: evaluating %s: %w", names[w], spec.Name, err)
			}
			results[s] = FoldResult{
				Workload:    names[w],
				Rows:        ev.N,
				ErrPct:      ev.AvgErrPct,
				WorstErrPct: ev.WorstErrPct,
				R2:          ev.R2,
				ResidMeanW:  ev.Resid.Mean,
				ResidStdW:   ev.Resid.StdDev,
				ResidMinW:   ev.Resid.Min,
				ResidMaxW:   ev.Resid.Max,
			}
		}
		folds[w] = results
		done[w] = true
		mFolds.With("ok").Inc()
		return nil
	})
	for _, ok := range done {
		if ok {
			report.FoldsDone++
		}
	}
	report.Subsystems = aggregate(names, folds, done, opt)
	if foldErr != nil {
		return fail(foldErr)
	}
	return report, nil
}

// aggregate folds per-workload results into per-subsystem reports over
// the folds that completed.
func aggregate(names []string, folds [][]FoldResult, done []bool, opt Options) []SubsystemReport {
	integer := map[string]bool{}
	for _, n := range workload.ByClass(workload.ClassInteger) {
		integer[n] = true
	}
	subs := power.Subsystems()
	out := make([]SubsystemReport, 0, len(subs))
	for s, sub := range subs {
		rep := SubsystemReport{Subsystem: sub.String()}
		var all, intErrs, fpErrs []float64
		for w := range names {
			if !done[w] {
				continue
			}
			f := folds[w][s]
			rep.Folds = append(rep.Folds, f)
			all = append(all, f.ErrPct)
			if integer[f.Workload] {
				intErrs = append(intErrs, f.ErrPct)
			} else {
				fpErrs = append(fpErrs, f.ErrPct)
			}
			if f.ErrPct > rep.WorstFoldErrPct {
				rep.WorstFoldErrPct = f.ErrPct
			}
		}
		rep.MeanErrPct = stats.Mean(all)
		rep.IntegerMeanErrPct = stats.Mean(intErrs)
		rep.FPMeanErrPct = stats.Mean(fpErrs)
		// Bootstrap CI on the mean fold error. The seed mixes the run
		// seed with the subsystem index so the streams are independent
		// yet reproducible.
		if len(all) > 0 {
			ci, err := stats.BootstrapCI(all, stats.Mean,
				opt.Resamples, opt.Confidence, opt.Seed*0x9e3779b9+uint64(s))
			if err == nil {
				rep.CILoPct, rep.CIHiPct = ci.Lo, ci.Hi
			}
		}
		out = append(out, rep)
	}
	return out
}
