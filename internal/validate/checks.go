package validate

import (
	"fmt"
	"math"
	"sort"

	"trickledown/internal/align"
	"trickledown/internal/cluster"
	"trickledown/internal/core"
	"trickledown/internal/faults"
	"trickledown/internal/machine"
	"trickledown/internal/power"
	"trickledown/internal/workload"
)

// Conformance checks: model-level invariants run as metamorphic
// properties. Cross-validation says "the numbers are small"; these say
// "the models behave like power models" — an estimator can hit a low
// average error while predicting negative idle power or losing
// monotonicity in its dominant event, and only this layer notices.
//
// Every check is seeded and bounded (tens of simulated seconds), so the
// set is cheap enough to run inside the gate and deterministic enough to
// live in the byte-stable report.

// checkDurationSec is the simulated length of each check's private run.
const checkDurationSec = 60

// pooledEstimator trains the five production models on the
// concatenation of every suite workload — the "all data" estimator the
// checks probe.
func pooledEstimator(src Source, opt Options) (*core.Estimator, *align.Dataset, error) {
	var traces []*align.Dataset
	for _, name := range opt.Workloads {
		ds, err := src.ValidationDataset(name)
		if err != nil {
			return nil, nil, fmt.Errorf("validate: checks: dataset %s: %w", name, err)
		}
		traces = append(traces, ds.Skip(opt.Warmup))
	}
	training := align.Concat(traces...)
	models := make([]*core.Model, 0, power.NumSubsystems)
	for _, spec := range productionSpecs() {
		m, err := opt.Train(spec, training)
		if err != nil {
			return nil, nil, fmt.Errorf("validate: checks: training %s: %w", spec.Name, err)
		}
		models = append(models, m)
	}
	est, err := core.NewEstimator(models...)
	if err != nil {
		return nil, nil, err
	}
	return est, training, nil
}

// Checks runs every conformance check against a pooled estimator and
// returns the results in a fixed order. A failure to even build the
// estimator is an error; individual check failures are results with
// OK=false.
func Checks(src Source, opt Options) ([]CheckResult, error) {
	opt = opt.withDefaults()
	est, training, err := pooledEstimator(src, opt)
	if err != nil {
		return nil, err
	}
	idle, err := src.ValidationDataset("idle")
	if err != nil {
		return nil, fmt.Errorf("validate: checks: idle dataset: %w", err)
	}
	results := []CheckResult{
		checkIdleFloor(est, idle.Skip(opt.Warmup)),
		checkMonotonic("monotonic-cpu", est.Model(power.SubCPU), training,
			func(m *core.Metrics) float64 { return sumOf(m.PercentActive) },
			func(m *core.Metrics, v float64) { spread(m.PercentActive, v) }),
		checkMonotonic("monotonic-memory", est.Model(power.SubMemory), training,
			func(m *core.Metrics) float64 { return m.TotalBusPMC() },
			func(m *core.Metrics, v float64) {
				// TotalBusPMC = sum(BusTxPMC) + mean(DMAPMC); sweep the
				// CPU-side share with the DMA share zeroed so the
				// aggregate equals v exactly.
				spread(m.BusTxPMC, v)
				spread(m.DMAPMC, 0)
			}),
		checkMonotonic("monotonic-io", est.Model(power.SubIO), training,
			func(m *core.Metrics) float64 { return sumOf(m.IntsPMC) },
			func(m *core.Metrics, v float64) { spread(m.IntsPMC, v) }),
		checkMonotonic("monotonic-disk", est.Model(power.SubDisk), training,
			func(m *core.Metrics) float64 { return sumOf(m.DiskIntsPMC) },
			func(m *core.Metrics, v float64) { spread(m.DiskIntsPMC, v) }),
		checkChipsetConstant(est.Model(power.SubChipset)),
		checkFaultFinite(est, opt.Seed),
		checkAlignAgreement(opt.Seed),
		checkClusterConsistency(est, opt.Seed),
	}
	for _, r := range results {
		if r.OK {
			mChecks.With("ok").Inc()
		} else {
			mChecks.With("fail").Inc()
		}
	}
	return results, nil
}

// checkIdleFloor: on the idle workload the estimator must predict
// positive power on every rail and land its total within 10% of the
// measured idle total — the "power meter reads sane at rest" floor.
func checkIdleFloor(est *core.Estimator, idle *align.Dataset) CheckResult {
	const name = "idle-floor"
	if idle.Len() == 0 {
		return CheckResult{Name: name, Detail: "no idle samples"}
	}
	var measured, modeled float64
	railMin := [power.NumSubsystems]float64{}
	for i := range railMin {
		railMin[i] = math.Inf(1)
	}
	for i := range idle.Rows {
		row := &idle.Rows[i]
		r := est.Estimate(&row.Counters)
		for s, v := range r {
			if v < railMin[s] {
				railMin[s] = v
			}
		}
		modeled += r.Total()
		measured += row.Power.Total()
	}
	for s, v := range railMin {
		if v <= 0 || math.IsNaN(v) {
			return CheckResult{Name: name, Detail: fmt.Sprintf(
				"rail %s predicts %.3f W at idle (must stay positive)",
				power.Subsystem(s), v)}
		}
	}
	n := float64(idle.Len())
	gap := math.Abs(modeled-measured) / measured * 100
	detail := fmt.Sprintf("idle total modeled %.1f W vs measured %.1f W (gap %.2f%%)",
		modeled/n, measured/n, gap)
	return CheckResult{Name: name, OK: gap < 10, Detail: detail}
}

// sumOf sums a per-CPU metric (core keeps its equivalent unexported).
func sumOf(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// spread distributes an aggregate value evenly over a per-CPU slice.
func spread(dst []float64, total float64) {
	for i := range dst {
		dst[i] = total / float64(len(dst))
	}
}

// metricColumns names the per-CPU metric slices that hold model inputs,
// shared by the sweep's aggregation and its mean-input synthesis.
func metricColumns(m *core.Metrics) map[string][]float64 {
	return map[string][]float64{
		"percent_active": m.PercentActive,
		"uops_per_cycle": m.UopsPerCycle,
		"l3_load_pmc":    m.L3LoadPMC,
		"l3_all_pmc":     m.L3AllPMC,
		"bus_tx_pmc":     m.BusTxPMC,
		"prefetch_pmc":   m.PrefetchPMC,
		"dma_pmc":        m.DMAPMC,
		"uc_pmc":         m.UncacheablePMC,
		"tlb_pmc":        m.TLBPMC,
		"ints_pmc":       m.IntsPMC,
		"disk_ints_pmc":  m.DiskIntsPMC,
		"os_util":        m.OSUtil,
	}
}

// meanMetrics synthesizes the training set's mean sample: every model
// input held at its observed per-row average, frequency at nominal.
func meanMetrics(sums map[string]float64, nCPU, rows int) *core.Metrics {
	mk := func() []float64 { return make([]float64, nCPU) }
	out := &core.Metrics{
		NumCPUs:        nCPU,
		PercentActive:  mk(),
		UopsPerCycle:   mk(),
		L3LoadPMC:      mk(),
		L3AllPMC:       mk(),
		BusTxPMC:       mk(),
		PrefetchPMC:    mk(),
		DMAPMC:         mk(),
		UncacheablePMC: mk(),
		TLBPMC:         mk(),
		IntsPMC:        mk(),
		DiskIntsPMC:    mk(),
		OSUtil:         mk(),
		FreqScale:      mk(),
	}
	for name, col := range metricColumns(out) {
		spread(col, sums[name]/float64(rows))
	}
	for i := range out.FreqScale {
		out.FreqScale[i] = 1
	}
	return out
}

// checkMonotonic sweeps a model's dominant event rate across the middle
// of its observed training range (10th percentile to maximum, holding
// every other input at its training mean) and requires predictions to
// rise with activity. A fitted quadratic may ripple slightly, so dips up
// to 1% of the sweep's total rise (or 0.05 W, whichever is larger) are
// tolerated; anything beyond means the model charges less power for more
// work.
func checkMonotonic(name string, model *core.Model, training *align.Dataset,
	get func(*core.Metrics) float64, set func(*core.Metrics, float64)) CheckResult {
	n := training.Len()
	if n == 0 {
		return CheckResult{Name: name, Detail: "no training samples"}
	}
	agg := make([]float64, 0, n)
	sums := map[string]float64{}
	nCPU := 0
	for i := range training.Rows {
		m := core.ExtractMetrics(&training.Rows[i].Counters)
		if m.NumCPUs > nCPU {
			nCPU = m.NumCPUs
		}
		agg = append(agg, get(m))
		for col, vals := range metricColumns(m) {
			sums[col] += sumOf(vals)
		}
	}
	base := meanMetrics(sums, nCPU, n)
	sort.Float64s(agg)
	lo, hi := agg[n/10], agg[n-1]
	if hi <= lo {
		return CheckResult{Name: name, OK: true, Detail: "degenerate sweep range"}
	}
	const steps = 64
	var first, last, prev, worstDip float64
	for i := 0; i <= steps; i++ {
		v := lo + (hi-lo)*float64(i)/steps
		set(base, v)
		p := model.Predict(base)
		if i == 0 {
			first = p
		} else if p < prev && prev-p > worstDip {
			worstDip = prev - p
		}
		prev = p
		last = p
	}
	rise := last - first
	detail := fmt.Sprintf("sweep [%.3g, %.3g]: %.2f W → %.2f W", lo, hi, first, last)
	if rise <= 0 {
		return CheckResult{Name: name, Detail: detail + " (no rise with activity)"}
	}
	if worstDip > 0.01*rise && worstDip > 0.05 {
		return CheckResult{Name: name, Detail: fmt.Sprintf(
			"%s; dip %.3f W exceeds 1%% of rise %.3f W", detail, worstDip, rise)}
	}
	return CheckResult{Name: name, OK: true, Detail: detail}
}

// checkChipsetConstant: the chipset model is a fitted constant; it must
// land in the plausible hardware envelope (the paper's board draws
// roughly 17–20 W).
func checkChipsetConstant(model *core.Model) CheckResult {
	const name = "chipset-constant"
	if len(model.Coef) != 1 {
		return CheckResult{Name: name, Detail: fmt.Sprintf(
			"expected 1 coefficient, got %d", len(model.Coef))}
	}
	c := model.Coef[0]
	detail := fmt.Sprintf("fitted constant %.2f W", c)
	return CheckResult{Name: name, OK: c > 10 && c < 30, Detail: detail}
}

// checkFaultFinite: run a machine under injected DAQ dropout, counter
// glitches and sync drops, repair the trace through the robust merge,
// and require every estimate over it to stay finite — degraded data may
// cost accuracy, never sanity.
func checkFaultFinite(est *core.Estimator, seed uint64) CheckResult {
	const name = "fault-finiteness"
	spec, err := workload.ByName("gcc")
	if err != nil {
		return CheckResult{Name: name, Detail: err.Error()}
	}
	spec.StaggerSec = 2
	cfg := machine.DefaultConfig()
	cfg.Seed = seed + 7
	srv, err := machine.New(cfg, spec)
	if err != nil {
		return CheckResult{Name: name, Detail: err.Error()}
	}
	plan := &faults.Plan{
		Seed: seed + 7,
		Specs: []faults.Spec{
			{Kind: faults.DAQDropout, Node: "checks", Channel: power.SubMemory,
				Start: 5, Duration: 20},
			{Kind: faults.CounterGlitch, Node: "checks", CPU: -1,
				Start: 10, Duration: 30, Magnitude: 0.1},
			{Kind: faults.SyncDrop, Node: "checks",
				Start: 15, Duration: 20, Magnitude: 0.1},
		},
	}
	if err := plan.Validate(); err != nil {
		return CheckResult{Name: name, Detail: err.Error()}
	}
	faults.Attach(plan, "checks", srv)
	srv.Run(checkDurationSec)
	ds, q, err := srv.DatasetRobust()
	if err != nil {
		return CheckResult{Name: name, Detail: fmt.Sprintf("robust merge failed: %v", err)}
	}
	for i := range ds.Rows {
		r := est.Estimate(&ds.Rows[i].Counters)
		for s, v := range r {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return CheckResult{Name: name, Detail: fmt.Sprintf(
					"row %d rail %s estimate non-finite under faults", i, power.Subsystem(s))}
			}
		}
	}
	return CheckResult{Name: name, OK: true, Detail: fmt.Sprintf(
		"%d repaired rows all finite (%s)", ds.Len(), q)}
}

// checkAlignAgreement: on a clean run the strict and robust merge paths
// must produce identical datasets — the repair machinery may only ever
// activate on damage.
func checkAlignAgreement(seed uint64) CheckResult {
	const name = "align-agreement"
	spec, err := workload.ByName("mcf")
	if err != nil {
		return CheckResult{Name: name, Detail: err.Error()}
	}
	spec.StaggerSec = 2
	cfg := machine.DefaultConfig()
	cfg.Seed = seed + 11
	srv, err := machine.New(cfg, spec)
	if err != nil {
		return CheckResult{Name: name, Detail: err.Error()}
	}
	srv.Run(checkDurationSec)
	strict, err := srv.Dataset()
	if err != nil {
		return CheckResult{Name: name, Detail: fmt.Sprintf("strict merge: %v", err)}
	}
	robust, q, err := srv.DatasetRobust()
	if err != nil {
		return CheckResult{Name: name, Detail: fmt.Sprintf("robust merge: %v", err)}
	}
	if q.Degraded() {
		return CheckResult{Name: name, Detail: fmt.Sprintf(
			"robust path reports repairs on clean data: %s", q)}
	}
	if fs, fr := Fingerprint(strict), Fingerprint(robust); fs != fr {
		return CheckResult{Name: name, Detail: fmt.Sprintf(
			"paths disagree on clean data: strict %s vs robust %s", fs, fr)}
	}
	return CheckResult{Name: name, OK: true, Detail: fmt.Sprintf(
		"%d rows identical on both paths", strict.Len())}
}

// checkClusterConsistency: a small cluster driven by the pooled
// estimator must keep full coverage and hold fleet-level estimate error
// within bounds — the accounting the consolidation planner trusts.
func checkClusterConsistency(est *core.Estimator, seed uint64) CheckResult {
	const name = "cluster-consistency"
	cl, err := cluster.New(est)
	if err != nil {
		return CheckResult{Name: name, Detail: err.Error()}
	}
	for i, wl := range []string{"gcc", "mcf", "diskload"} {
		if _, err := cl.AddHomogeneous(fmt.Sprintf("node%02d", i), wl, seed+uint64(i)); err != nil {
			return CheckResult{Name: name, Detail: err.Error()}
		}
	}
	if err := cl.Run(checkDurationSec); err != nil {
		return CheckResult{Name: name, Detail: err.Error()}
	}
	if cov := cl.Coverage(); !cov.Full() {
		return CheckResult{Name: name, Detail: fmt.Sprintf(
			"coverage not full: %d/%d healthy", cov.Healthy, cov.Total)}
	}
	errPct, err := cl.VerifyAccuracy()
	if err != nil {
		return CheckResult{Name: name, Detail: err.Error()}
	}
	detail := fmt.Sprintf("3-node fleet estimate error %.2f%%", errPct)
	return CheckResult{Name: name, OK: errPct < 15, Detail: detail}
}
