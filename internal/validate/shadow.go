package validate

import (
	"fmt"
	"math"

	"trickledown/internal/align"
	"trickledown/internal/core"
	"trickledown/internal/power"
	"trickledown/internal/stats"
)

// Shadow evaluation: the window-scale metamorphic battery the adapt
// layer runs before promoting a refit challenger. The full Checks suite
// simulates fresh workloads and is far too heavy for a serving process;
// this battery reuses the same model-level invariants (monotonic in the
// dominant event, chipset constant in the hardware envelope, finite
// everywhere) but probes them against the live sliding window the
// challenger was fit on. A model that passes here behaves like a power
// model on the data it is about to serve; whether it beats the champion
// is a separate residual comparison the caller makes.

// ShadowChecks runs the window-scale battery against a candidate
// estimator. The window must be the sliding window the candidate was
// fit from (or any recent slice of live traffic). Results come back in
// a fixed order; all OK means the gate is open.
func ShadowChecks(est *core.Estimator, window *align.Dataset) []CheckResult {
	results := []CheckResult{
		checkWindowFinite(est, window),
		checkMonotonic("shadow-monotonic-cpu", est.Model(power.SubCPU), window,
			func(m *core.Metrics) float64 { return sumOf(m.PercentActive) },
			func(m *core.Metrics, v float64) { spread(m.PercentActive, v) }),
		checkMonotonic("shadow-monotonic-memory", est.Model(power.SubMemory), window,
			func(m *core.Metrics) float64 { return m.TotalBusPMC() },
			func(m *core.Metrics, v float64) {
				spread(m.BusTxPMC, v)
				spread(m.DMAPMC, 0)
			}),
		checkMonotonic("shadow-monotonic-io", est.Model(power.SubIO), window,
			func(m *core.Metrics) float64 { return sumOf(m.IntsPMC) },
			func(m *core.Metrics, v float64) { spread(m.IntsPMC, v) }),
		checkMonotonic("shadow-monotonic-disk", est.Model(power.SubDisk), window,
			func(m *core.Metrics) float64 { return sumOf(m.DiskIntsPMC) },
			func(m *core.Metrics, v float64) { spread(m.DiskIntsPMC, v) }),
		checkChipsetConstant(est.Model(power.SubChipset)),
	}
	for _, r := range results {
		if r.OK {
			mChecks.With("ok").Inc()
		} else {
			mChecks.With("fail").Inc()
		}
	}
	return results
}

// ShadowOK reduces a battery to a single verdict with the first failing
// check's detail, for flight-recorder notes.
func ShadowOK(results []CheckResult) (bool, string) {
	for _, r := range results {
		if !r.OK {
			return false, fmt.Sprintf("%s: %s", r.Name, r.Detail)
		}
	}
	return true, ""
}

// checkWindowFinite: every estimate over the window must be finite and
// the total positive — the candidate may never serve NaN or negative
// system power on data it has already seen.
func checkWindowFinite(est *core.Estimator, window *align.Dataset) CheckResult {
	const name = "shadow-finite"
	if window.Len() == 0 {
		return CheckResult{Name: name, Detail: "empty window"}
	}
	for i := range window.Rows {
		r := est.Estimate(&window.Rows[i].Counters)
		for s, v := range r {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return CheckResult{Name: name, Detail: fmt.Sprintf(
					"row %d rail %s non-finite", i, power.Subsystem(s))}
			}
		}
		if r.Total() <= 0 {
			return CheckResult{Name: name, Detail: fmt.Sprintf(
				"row %d total %.3f W not positive", i, r.Total())}
		}
	}
	return CheckResult{Name: name, OK: true,
		Detail: fmt.Sprintf("%d window rows finite and positive", window.Len())}
}

// WindowError computes the paper's Eq. 6 average error of the
// estimator's total power against measured rails over a window, in
// percent. This is the residual criterion the promotion gate compares
// between champion and challenger.
func WindowError(est *core.Estimator, window *align.Dataset) (float64, error) {
	if window.Len() == 0 {
		return 0, fmt.Errorf("validate: window error: empty window")
	}
	modeled := make([]float64, window.Len())
	measured := make([]float64, window.Len())
	for i := range window.Rows {
		modeled[i] = est.Estimate(&window.Rows[i].Counters).Total()
		measured[i] = window.Rows[i].Power.Total()
	}
	// AverageError already reports percent (Eq. 6 includes the ×100).
	return stats.AverageError(modeled, measured)
}
