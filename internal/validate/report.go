package validate

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Report serialization. encoding/json is deterministic for this shape —
// struct fields emit in declaration order, map keys sort — but it
// refuses NaN/Inf outright, so sanitize guarantees every float in the
// report is finite before marshalling. Non-finite values can only enter
// through degenerate folds (e.g. an all-zero rail making R² undefined);
// clamping them to 0 keeps the report writable and the gate's own
// bounds still catch the underlying problem.

// sanitize replaces non-finite floats in place.
func (r *Report) sanitize() {
	fix := func(v *float64) {
		if math.IsNaN(*v) || math.IsInf(*v, 0) {
			*v = 0
		}
	}
	for i := range r.Subsystems {
		s := &r.Subsystems[i]
		fix(&s.MeanErrPct)
		fix(&s.WorstFoldErrPct)
		fix(&s.IntegerMeanErrPct)
		fix(&s.FPMeanErrPct)
		fix(&s.CILoPct)
		fix(&s.CIHiPct)
		for j := range s.Folds {
			f := &s.Folds[j]
			fix(&f.ErrPct)
			fix(&f.WorstErrPct)
			fix(&f.R2)
			fix(&f.ResidMeanW)
			fix(&f.ResidStdW)
			fix(&f.ResidMinW)
			fix(&f.ResidMaxW)
		}
	}
}

// WriteJSON writes the report as indented JSON with a trailing newline.
// The bytes are a pure function of the report contents: no timestamps,
// no map iteration order, no machine metadata.
func (r *Report) WriteJSON(w io.Writer) error {
	r.sanitize()
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("validate: encoding report: %w", err)
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// Render writes a human-oriented summary table of the report.
func (r *Report) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Cross-validation (leave-one-workload-out), seed=%d scale=%g, %d/%d folds\n",
		r.Seed, r.Scale, r.FoldsDone, r.FoldsTotal); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-8s %10s %10s %10s %10s %22s\n",
		"rail", "mean err%", "worst err%", "int err%", "fp err%",
		fmt.Sprintf("%.0f%% CI", r.Confidence*100)); err != nil {
		return err
	}
	for _, s := range r.Subsystems {
		if _, err := fmt.Fprintf(w, "%-8s %10.3f %10.3f %10.3f %10.3f %10.3f – %9.3f\n",
			s.Subsystem, s.MeanErrPct, s.WorstFoldErrPct,
			s.IntegerMeanErrPct, s.FPMeanErrPct, s.CILoPct, s.CIHiPct); err != nil {
			return err
		}
	}
	for _, c := range r.Checks {
		status := "ok"
		if !c.OK {
			status = "FAIL"
		}
		if _, err := fmt.Fprintf(w, "check %-24s %-4s %s\n", c.Name, status, c.Detail); err != nil {
			return err
		}
	}
	for _, e := range r.Errors {
		if _, err := fmt.Fprintf(w, "error: %s\n", e); err != nil {
			return err
		}
	}
	return nil
}
