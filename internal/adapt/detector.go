// Package adapt is the self-healing estimation layer: it watches a
// serving estimator for model drift, refits challenger models online
// from the live stream, promotes a challenger only through a shadow
// evaluation gate, and hot-swaps the champion with a bounded rollback
// ring. The design goal is that every action is deterministic given
// the input stream and the configured seed — drills replay bit for bit.
package adapt

import (
	"fmt"
	"math"

	"trickledown/internal/core"
)

// PageHinkley is the residual drift detector: the one-sided
// Page-Hinkley statistic on the stream of per-sample error percentages,
// accumulated against a *fixed* reference level delta — the held-out
// error envelope from the blessed GOLDEN corpus, not the stream's own
// running mean. A self-referencing mean would quietly re-baseline to a
// drifted error level and never alarm on a stream that was bad from the
// start; anchoring to the offline envelope makes "persistently worse
// than validation said" the alarm condition, which is exactly the
// paper-bound contract the serving layer cares about.
//
// Non-finite inputs are quarantined: counted, never folded into the
// statistics. A hostile stream can therefore stall detection but never
// poison it into NaN state or a spurious alarm.
type PageHinkley struct {
	delta  float64 // reference error level; excess above it accumulates
	lambda float64 // cumulative excess that raises the alarm

	n   uint64  // accepted observations
	cum float64 // cumulative deviation Σ (x - delta)
	min float64 // smallest cum seen

	quarantined uint64
}

// NewPageHinkley returns a detector alarming when the observed stream
// sustains values above the reference delta long enough for the
// accumulated excess to pass lambda.
func NewPageHinkley(delta, lambda float64) (*PageHinkley, error) {
	if !(delta >= 0) || math.IsInf(delta, 0) {
		return nil, fmt.Errorf("adapt: page-hinkley delta %v must be finite and non-negative", delta)
	}
	if !(lambda > 0) || math.IsInf(lambda, 0) {
		return nil, fmt.Errorf("adapt: page-hinkley lambda %v must be finite and positive", lambda)
	}
	return &PageHinkley{delta: delta, lambda: lambda}, nil
}

// Observe feeds one value and reports whether the alarm fired. After an
// alarm the caller decides what to do; the detector keeps accumulating
// until Reset.
func (d *PageHinkley) Observe(x float64) bool {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		d.quarantined++
		return false
	}
	d.n++
	d.cum += x - d.delta
	if d.cum < d.min {
		d.min = d.cum
	}
	return d.cum-d.min > d.lambda
}

// Reset clears the detector's statistics; the quarantine count is
// lifetime and survives.
func (d *PageHinkley) Reset() {
	d.n = 0
	d.cum = 0
	d.min = 0
}

// Quarantined returns the lifetime count of non-finite inputs dropped
// (not reset by Reset).
func (d *PageHinkley) Quarantined() uint64 { return d.quarantined }

// Score returns the current alarm statistic (cum - min) — how far the
// stream has run hot, in the observed value's units times samples.
func (d *PageHinkley) Score() float64 { return d.cum - d.min }

// EnvelopeCUSUM is the residual-free drift detector: one-sided CUSUM
// per training-envelope metric on the absolute z-score of the live
// value against the training mean/std. It notices a workload-mix shift
// even when no measured rails arrive to compute residuals from.
type EnvelopeCUSUM struct {
	envs []core.MetricEnvelope
	k    float64 // per-sample slack in z units
	h    float64 // alarm threshold in z·samples
	cums []float64

	quarantined uint64
}

// NewEnvelopeCUSUM builds a detector over the training envelopes. A nil
// or empty envelope set yields a detector that never alarms (the
// champion predates provenance); callers can still use it uniformly.
func NewEnvelopeCUSUM(envs []core.MetricEnvelope, k, h float64) (*EnvelopeCUSUM, error) {
	if !(k >= 0) || math.IsInf(k, 0) {
		return nil, fmt.Errorf("adapt: cusum slack %v must be finite and non-negative", k)
	}
	if !(h > 0) || math.IsInf(h, 0) {
		return nil, fmt.Errorf("adapt: cusum threshold %v must be finite and positive", h)
	}
	return &EnvelopeCUSUM{
		envs: envs,
		k:    k,
		h:    h,
		cums: make([]float64, len(envs)),
	}, nil
}

// Observe feeds one sample's envelope metrics (core.EnvelopeMetrics
// order) and reports whether any metric's CUSUM crossed the threshold,
// along with the offending metric's name. Metrics with zero training
// std are uninformative and skipped; non-finite values are quarantined.
func (d *EnvelopeCUSUM) Observe(vals []float64) (bool, string) {
	if len(d.envs) == 0 {
		return false, ""
	}
	if len(vals) != len(d.envs) {
		d.quarantined++
		return false, ""
	}
	alarm := false
	worst := ""
	for i, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			d.quarantined++
			continue
		}
		std := d.envs[i].Std
		if std <= 0 {
			continue
		}
		z := math.Abs(v-d.envs[i].Mean) / std
		c := d.cums[i] + z - d.k
		if c < 0 {
			c = 0
		}
		d.cums[i] = c
		if c > d.h && !alarm {
			alarm = true
			worst = d.envs[i].Name
		}
	}
	return alarm, worst
}

// Reset zeroes every per-metric accumulator; quarantine survives.
func (d *EnvelopeCUSUM) Reset() {
	for i := range d.cums {
		d.cums[i] = 0
	}
}

// Retarget swaps in a new set of training envelopes (after a model
// swap) and resets the accumulators.
func (d *EnvelopeCUSUM) Retarget(envs []core.MetricEnvelope) {
	d.envs = envs
	d.cums = make([]float64, len(envs))
}

// Quarantined returns the lifetime count of non-finite inputs dropped.
func (d *EnvelopeCUSUM) Quarantined() uint64 { return d.quarantined }
