package adapt

import (
	"fmt"
	"math"
	"testing"

	"trickledown/internal/align"
	"trickledown/internal/core"
	"trickledown/internal/iobus"
	"trickledown/internal/perfctr"
	"trickledown/internal/power"
)

// sampleAt builds a deterministic 2-CPU sample whose rates sweep with i,
// mirroring core's test idiom so every production design has variance.
func sampleAt(i, n int) perfctr.Sample {
	f := float64(i%n) / float64(n)
	g := float64((i*37)%n) / float64(n)
	const cyc = 2.8e9
	const mcyc = cyc / 1e6
	active := 0.2 + 0.75*f
	upc := 0.3 + 2*g
	buspmc := 200 + 1500*f
	dmapmc := 100 * g
	intspmc := 0.1 + 2*f
	s := perfctr.Sample{
		TargetSeconds: float64(i + 1),
		IntervalSec:   1,
		CPUs:          make([]perfctr.CPUCounts, 2),
		Ints:          make([][]uint64, iobus.NumVectors),
	}
	for v := range s.Ints {
		s.Ints[v] = make([]uint64, 2)
	}
	for c := range s.CPUs {
		cc := &s.CPUs[c]
		cc.Cycles = uint64(cyc)
		cc.HaltedCycles = uint64(cyc * (1 - active))
		cc.FetchedUops = uint64(cyc * upc)
		cc.L3LoadMisses = uint64(80 * mcyc)
		cc.BusTx = uint64(buspmc * mcyc)
		cc.BusPrefetchTx = uint64(buspmc * mcyc / 10)
		cc.DMAOther = uint64(dmapmc * mcyc)
		cc.Uncacheable = uint64(5 * mcyc)
		cc.TLBMisses = uint64(20 * mcyc)
		s.Ints[iobus.VecTimer][c] = uint64(intspmc * mcyc / 2)
		s.Ints[iobus.VecDisk][c] = uint64(intspmc * mcyc / 2)
	}
	return s
}

func sumf(v []float64) float64 {
	t := 0.0
	for _, x := range v {
		t += x
	}
	return t
}

func meanf(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return sumf(v) / float64(len(v))
}

// railsFor synthesizes measured rails from a sample. shift scales the
// activity-sensitive coefficients — shift 0 is the training regime,
// larger shifts model a hardware/workload relationship the frozen
// champion never saw.
func railsFor(s *perfctr.Sample, shift float64) power.Reading {
	m := core.ExtractMetrics(s)
	k := 1 + shift
	var r power.Reading
	r[power.SubCPU] = 9.25*float64(m.NumCPUs) + k*26.45*sumf(m.PercentActive) + k*4.31*sumf(m.UopsPerCycle)
	r[power.SubChipset] = 19.0
	busTot := m.TotalBusPMC()
	r[power.SubMemory] = 28 + k*0.018*busTot + 2e-6*busTot*busTot
	ints := sumf(m.IntsPMC)
	r[power.SubIO] = 32.7 + k*1.1*ints + 0.04*ints*ints
	di := sumf(m.DiskIntsPMC)
	dm := meanf(m.DMAPMC)
	r[power.SubDisk] = 21.6 + k*2.0*di + 0.05*di*di + 0.002*dm + 1e-6*dm*dm
	return r
}

// trainingChampion fits the production estimator on the shift-0 regime.
func trainingChampion(t *testing.T, n int) *core.Estimator {
	t.Helper()
	ds := &align.Dataset{Rows: make([]align.Row, n)}
	for i := 0; i < n; i++ {
		s := sampleAt(i, n)
		ds.Rows[i] = align.Row{Power: railsFor(&s, 0), Counters: s}
	}
	est, err := core.TrainEstimator(core.TrainingSet{CPU: ds, Memory: ds, Disk: ds, IO: ds, Chipset: ds})
	if err != nil {
		t.Fatal(err)
	}
	fp := "test-corpus"
	est.SetProvenance(&core.Provenance{
		SchemaVersion: core.ProvenanceSchemaVersion,
		Version:       "train-" + fp,
		Fingerprint:   fp,
		Envelopes:     core.ComputeEnvelopes(ds),
		Reason:        "offline-train",
	})
	return est
}

func testConfig(champ *core.Estimator, events *[]Event) Config {
	return Config{
		Champion:        champ,
		Window:          60,
		MinFill:         30,
		BaselineErrPct:  5,
		AlarmBudgetPct:  60,
		EnvelopeBudgetZ: 1e12, // isolate the residual detector unless a test wants envelopes
		RollbackDepth:   3,
		GuardWindow:     25,
		Cooldown:        10,
		PhaseThresholdW: 1000, // no phase gating unless a test wants it
		PhaseSettle:     2,
		Seed:            7,
		OnEvent: func(ev Event) {
			if events != nil {
				*events = append(*events, ev)
			}
		},
	}
}

// runDrill streams pre-drift then post-drift observations and returns
// the manager for inspection.
func runDrill(t *testing.T, cfg Config, pre, post int, shift float64) *Manager {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 97
	for i := 0; i < pre; i++ {
		s := sampleAt(i, n)
		m.Observe(&s, railsFor(&s, 0))
	}
	for i := pre; i < pre+post; i++ {
		s := sampleAt(i, n)
		m.Observe(&s, railsFor(&s, shift))
	}
	return m
}

func TestDriftTriggersGuardedSwap(t *testing.T) {
	champ := trainingChampion(t, 120)
	var events []Event
	cfg := testConfig(champ, &events)
	m := runDrill(t, cfg, 100, 300, 0.4)

	st := m.Status()
	if st.Alarms == 0 {
		t.Fatal("no drift alarm on a 40% coefficient shift")
	}
	if st.Swaps == 0 {
		t.Fatalf("no swap after drift: %+v", st)
	}
	if st.Rollbacks != 0 {
		t.Fatalf("unexpected rollback: %+v", st)
	}
	if len(events) == 0 || events[0].Kind != "swap" {
		t.Fatalf("events = %+v", events)
	}
	ev := events[0]
	if ev.From != "train-test-corpus" {
		t.Errorf("swap From = %q", ev.From)
	}
	if ev.To == "" || ev.To == "unversioned" {
		t.Errorf("swap To = %q", ev.To)
	}
	if ev.WindowErrPct <= 0 || ev.WindowErrPct > cfg.ErrBoundPct && cfg.ErrBoundPct > 0 {
		t.Errorf("swap window err = %v", ev.WindowErrPct)
	}
	if ev.Trace.IsZero() {
		t.Error("swap trace ID is zero")
	}
	// The promoted champion is accurate on the drifted regime where the
	// frozen one is not.
	const n = 97
	var adaptiveErr, frozenErr float64
	for i := 0; i < n; i++ {
		s := sampleAt(i, n)
		truth := railsFor(&s, 0.4).Total()
		adaptiveErr += math.Abs(m.Champion().Estimate(&s).Total()-truth) / truth * 100
		frozenErr += math.Abs(champ.Estimate(&s).Total()-truth) / truth * 100
	}
	adaptiveErr /= n
	frozenErr /= n
	if adaptiveErr >= 9 {
		t.Errorf("adaptive champion err %.2f%% breaches the paper bound", adaptiveErr)
	}
	if frozenErr <= 9 {
		t.Errorf("frozen champion err %.2f%% should breach under this drift", frozenErr)
	}
	// Provenance chain: the new champion descends from the old one.
	p := m.Champion().Provenance()
	if p == nil || p.Parent != "train-test-corpus" || p.Reason != "drift-refit" {
		t.Errorf("refit provenance = %+v", p)
	}
}

func TestDrillIsDeterministic(t *testing.T) {
	run := func() (string, Status) {
		champ := trainingChampion(t, 120)
		var events []Event
		m := runDrill(t, testConfig(champ, &events), 100, 300, 0.4)
		var sig string
		for _, ev := range events {
			sig += fmt.Sprintf("%s|%s->%s|%s|%.9f\n", ev.Kind, ev.From, ev.To, ev.Trace.String(), ev.WindowErrPct)
		}
		return sig, m.Status()
	}
	sig1, st1 := run()
	sig2, st2 := run()
	if sig1 != sig2 {
		t.Errorf("event streams differ:\n%s\nvs\n%s", sig1, sig2)
	}
	if st1 != st2 {
		t.Errorf("status differs: %+v vs %+v", st1, st2)
	}
	if sig1 == "" {
		t.Error("drill produced no events")
	}
}

// TestShadowGateRejectsBadChallenger is the negative control: a hook
// that corrupts every challenger must never let one serve.
func TestShadowGateRejectsBadChallenger(t *testing.T) {
	champ := trainingChampion(t, 120)
	var events []Event
	cfg := testConfig(champ, &events)
	cfg.ChallengerHook = func(c *core.Estimator) *core.Estimator {
		// Negate the CPU response: more activity, less power — exactly
		// what the metamorphic battery exists to catch.
		bad := &core.Model{Spec: core.CPUSpec(), Coef: []float64{40, -26, -4}}
		est, err := core.NewEstimator(bad,
			c.Model(power.SubChipset), c.Model(power.SubMemory),
			c.Model(power.SubIO), c.Model(power.SubDisk))
		if err != nil {
			t.Fatal(err)
		}
		est.SetProvenance(c.Provenance())
		return est
	}
	m := runDrill(t, cfg, 100, 300, 0.4)
	st := m.Status()
	if st.Swaps != 0 {
		t.Fatalf("corrupted challenger served traffic: %+v", st)
	}
	if st.Retrains == 0 || st.Rejected == 0 {
		t.Fatalf("gate never exercised: %+v", st)
	}
	if len(events) != 0 {
		t.Fatalf("events emitted for rejected challengers: %+v", events)
	}
	if got := versionOf(m.Champion()); got != "train-test-corpus" {
		t.Errorf("champion changed to %q", got)
	}
}

// TestRollbackWithinGuardWindow: a drift alarm right after a swap must
// revert to the prior champion, not chase a new challenger.
func TestRollbackWithinGuardWindow(t *testing.T) {
	champ := trainingChampion(t, 120)
	var events []Event
	cfg := testConfig(champ, &events)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 97
	// Champion was trained on shift 0, live data is 0.4: drive drifted
	// traffic until the manager promotes a challenger, then stop.
	i := 0
	for ; i < 600 && len(events) == 0; i++ {
		s := sampleAt(i, n)
		m.Observe(&s, railsFor(&s, 0.4))
	}
	if len(events) == 0 || events[0].Kind != "swap" {
		t.Fatalf("no swap to set up rollback: %+v", m.Status())
	}
	swapped := events[0].To
	if g := m.Status().GuardRemaining; g == 0 {
		t.Fatal("guard window not armed after swap")
	}
	// Immediately mutate again, violently, inside the guard window.
	start := i
	for ; i < start+cfg.GuardWindow; i++ {
		s := sampleAt(i, n)
		m.Observe(&s, railsFor(&s, 2.5))
		if len(events) >= 2 {
			break
		}
	}
	if len(events) < 2 || events[1].Kind != "rollback" {
		t.Fatalf("no rollback inside guard window: events=%+v status=%+v", events, m.Status())
	}
	rb := events[1]
	if rb.From != swapped {
		t.Errorf("rollback From = %q, want %q", rb.From, swapped)
	}
	if rb.To != "train-test-corpus" {
		t.Errorf("rollback To = %q", rb.To)
	}
	st := m.Status()
	if st.Rollbacks != 1 {
		t.Errorf("rollbacks = %d", st.Rollbacks)
	}
	if st.WindowFill != 0 && st.WindowFill >= cfg.Window {
		t.Errorf("tainted window not reset: fill=%d", st.WindowFill)
	}
	// Service contract: the restored champion still serves finite
	// estimates.
	s := sampleAt(3, n)
	r := m.Champion().Estimate(&s)
	for sub, v := range r {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("rail %s non-finite after rollback", power.Subsystem(sub))
		}
	}
}

// TestPhaseGateBlocksRetrainDuringTransitions: while power oscillates
// across the phase threshold every sample, a pending retrain must wait.
func TestPhaseGateBlocksRetrainDuringTransitions(t *testing.T) {
	champ := trainingChampion(t, 120)
	var events []Event
	cfg := testConfig(champ, &events)
	// The synthetic sweep carries ~25 W of sample-to-sample structure, so
	// the band must sit above that for a "steady" phase to exist at all;
	// the injected square wave then has to clear the band on every flip.
	cfg.PhaseThresholdW = 80
	cfg.PhaseSettle = 15
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 97
	// Drifted regime with an alternating +400 W square wave on top: every
	// sample breaks the phase, so no phase ever settles 15 samples.
	for i := 0; i < 300; i++ {
		s := sampleAt(i, n)
		r := railsFor(&s, 0.4)
		if i%2 == 0 {
			r[power.SubCPU] += 400
		}
		m.Observe(&s, r)
	}
	st := m.Status()
	if !st.PendingRetrain {
		t.Fatalf("drift not pending: %+v", st)
	}
	if st.Retrains != 0 || st.Swaps != 0 {
		t.Fatalf("retrain ran mid-transition: %+v", st)
	}
	// Once the workload steadies, the held-back retrain proceeds.
	for i := 300; i < 700 && m.Status().Swaps == 0; i++ {
		s := sampleAt(i, n)
		m.Observe(&s, railsFor(&s, 0.4))
	}
	if m.Status().Swaps == 0 {
		t.Fatalf("retrain never ran after phases settled: %+v", m.Status())
	}
}

// TestNonFiniteResidualsQuarantined: hostile rails must be counted and
// dropped before they can reach detector or fitter state.
func TestNonFiniteResidualsQuarantined(t *testing.T) {
	champ := trainingChampion(t, 120)
	cfg := testConfig(champ, nil)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 97
	for i := 0; i < 20; i++ {
		s := sampleAt(i, n)
		m.Observe(&s, railsFor(&s, 0))
	}
	base := m.Status()
	hostile := []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0}
	for i, h := range hostile {
		s := sampleAt(i, n)
		var r power.Reading
		r[power.SubCPU] = h
		m.Observe(&s, r)
	}
	st := m.Status()
	if st.Quarantined != base.Quarantined+uint64(len(hostile)) {
		t.Errorf("quarantined %d, want %d", st.Quarantined, base.Quarantined+uint64(len(hostile)))
	}
	if st.WindowFill != base.WindowFill {
		t.Errorf("hostile rows entered the window: %d vs %d", st.WindowFill, base.WindowFill)
	}
	if st.Alarms != 0 || st.PendingRetrain {
		t.Errorf("hostile rows raised an alarm: %+v", st)
	}
	// Clean traffic still estimates finitely afterwards.
	s := sampleAt(5, n)
	if tot := m.Champion().Estimate(&s).Total(); math.IsNaN(tot) || math.IsInf(tot, 0) {
		t.Errorf("estimate poisoned: %v", tot)
	}
}

func TestPageHinkleyEdges(t *testing.T) {
	if _, err := NewPageHinkley(-1, 10); err == nil {
		t.Error("negative delta accepted")
	}
	if _, err := NewPageHinkley(1, 0); err == nil {
		t.Error("zero lambda accepted")
	}
	clean, _ := NewPageHinkley(2, 20)
	dirty, _ := NewPageHinkley(2, 20)
	seq := []float64{1, 2, 1.5, 1, 2, 30, 30, 30, 30, 30, 30}
	var cleanAlarms, dirtyAlarms int
	for _, x := range seq {
		if clean.Observe(x) {
			cleanAlarms++
		}
		// Interleave hostility into the dirty detector.
		dirty.Observe(math.NaN())
		dirty.Observe(math.Inf(1))
		if dirty.Observe(x) {
			dirtyAlarms++
		}
	}
	if cleanAlarms == 0 {
		t.Error("sustained 30s never alarmed")
	}
	if cleanAlarms != dirtyAlarms {
		t.Errorf("NaN interleave changed behavior: %d vs %d alarms", cleanAlarms, dirtyAlarms)
	}
	if dirty.Quarantined() != uint64(2*len(seq)) {
		t.Errorf("quarantined = %d", dirty.Quarantined())
	}
	dirty.Reset()
	if dirty.Score() != 0 {
		t.Errorf("score after reset = %v", dirty.Score())
	}
	if dirty.Quarantined() != uint64(2*len(seq)) {
		t.Error("reset cleared the lifetime quarantine count")
	}
}

func TestEnvelopeCUSUMEdges(t *testing.T) {
	envs := []core.MetricEnvelope{
		{Name: "a", Mean: 10, Std: 1},
		{Name: "dead", Mean: 5, Std: 0}, // uninformative
	}
	d, err := NewEnvelopeCUSUM(envs, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	// In-envelope traffic never alarms.
	for i := 0; i < 100; i++ {
		if alarm, _ := d.Observe([]float64{10.5, 999}); alarm {
			t.Fatal("alarm on in-envelope data")
		}
	}
	// Non-finite and wrong-width inputs quarantine without alarming.
	d.Observe([]float64{math.NaN(), 1})
	d.Observe([]float64{1})
	if d.Quarantined() != 2 {
		t.Errorf("quarantined = %d", d.Quarantined())
	}
	// A sustained 5-sigma excursion on the live metric alarms, naming it.
	var fired string
	for i := 0; i < 10; i++ {
		if alarm, name := d.Observe([]float64{15, 0}); alarm {
			fired = name
			break
		}
	}
	if fired != "a" {
		t.Errorf("alarm metric = %q", fired)
	}
	// Empty envelope set: silent forever.
	e, _ := NewEnvelopeCUSUM(nil, 1, 10)
	if alarm, _ := e.Observe([]float64{1e18}); alarm {
		t.Error("nil-envelope detector alarmed")
	}
}

// FuzzPageHinkley feeds hostile residual sequences; the detector must
// never panic, never go non-finite, and must account for every input as
// either accepted or quarantined.
func FuzzPageHinkley(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x7f, 0xf0, 0, 0, 0, 0, 0, 0})                               // +Inf
	f.Add([]byte{0x7f, 0xf8, 0, 0, 0, 0, 0, 1, 0xff, 0xf0, 0, 0, 0, 0, 0, 0}) // NaN, -Inf
	f.Add([]byte{0x40, 0x59, 0, 0, 0, 0, 0, 0, 0x40, 0x59, 0, 0, 0, 0, 0, 0}) // 100, 100
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := NewPageHinkley(5, 60)
		if err != nil {
			t.Fatal(err)
		}
		var fed, accepted uint64
		for off := 0; off+8 <= len(data); off += 8 {
			var bits uint64
			for b := 0; b < 8; b++ {
				bits = bits<<8 | uint64(data[off+b])
			}
			x := math.Float64frombits(bits)
			fed++
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				accepted++
			}
			d.Observe(x)
			if math.IsNaN(d.Score()) || math.IsInf(d.Score(), 0) {
				t.Fatalf("detector state non-finite after %v", x)
			}
		}
		if d.Quarantined() != fed-accepted {
			t.Fatalf("quarantined %d, want %d", d.Quarantined(), fed-accepted)
		}
	})
}
