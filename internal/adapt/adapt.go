package adapt

import (
	"fmt"
	"math"
	"sync"

	"trickledown/internal/align"
	"trickledown/internal/core"
	"trickledown/internal/perfctr"
	"trickledown/internal/phase"
	"trickledown/internal/power"
	"trickledown/internal/telemetry"
	"trickledown/internal/tracez"
	"trickledown/internal/validate"
)

// Cross-layer telemetry (satellite: swap observability). The swap
// histogram carries exemplar trace IDs so a swap seen on a dashboard
// links straight to its flight-recorder note.
var (
	mAlarms      = telemetry.NewCounterVec("adapt_drift_alarms_total", "Drift alarms by detector (residual, envelope).", "detector")
	mRetrains    = telemetry.NewCounterVec("adapt_retrains_total", "Challenger refits by outcome (started, succeeded, rejected).", "outcome")
	mSwaps       = telemetry.NewCounter("adapt_swaps_total", "Champion hot-swaps performed.")
	mRollbacks   = telemetry.NewCounter("adapt_rollbacks_total", "Rollbacks to a prior champion.")
	mQuarantined = telemetry.NewCounter("adapt_residuals_quarantined_total", "Non-finite residuals dropped before the detector.")
	mModelAge    = telemetry.NewGauge("adapt_active_model_age_observations", "Observations served by the active champion.")
	mSwapErr     = telemetry.NewHistogram("adapt_swap_window_err_pct", "Challenger window error at swap time, percent.",
		[]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 20})
)

// Config tunes a Manager. Champion is required; everything else has a
// serving-grade default.
type Config struct {
	// Champion is the initial serving estimator.
	Champion *core.Estimator
	// Window is the sliding-window size in observations for refits and
	// shadow evaluation. Default 180 (three minutes at 1 Hz).
	Window int
	// MinFill is the minimum window occupancy before a refit may be
	// attempted. Default Window/2.
	MinFill int
	// ErrBoundPct is the hard ceiling a challenger's window error must
	// stay under. Default validate.PaperBoundPct (9%).
	ErrBoundPct float64
	// BaselineErrPct seeds the residual detector's slack: per-sample
	// error this far above zero is considered in-envelope. Take it from
	// the GOLDEN corpus's held-out mean error. Default 5.
	BaselineErrPct float64
	// AlarmBudgetPct is the Page-Hinkley lambda: the cumulative excess
	// error (percent·samples) that raises the drift alarm. Default 60.
	AlarmBudgetPct float64
	// EnvelopeSlackZ and EnvelopeBudgetZ tune the residual-free CUSUM
	// (per-sample z slack and alarm threshold). Defaults 3 and 240.
	EnvelopeSlackZ  float64
	EnvelopeBudgetZ float64
	// RollbackDepth bounds the ring of previous champions. Default 4.
	RollbackDepth int
	// GuardWindow is how many post-swap observations a residual alarm
	// triggers instant rollback instead of a fresh retrain. Default
	// Window/2.
	GuardWindow int
	// Cooldown is the minimum observations between promotion attempts,
	// successful or not. Default Window/4.
	Cooldown int
	// PhaseThresholdW is the phase detector's band (Watts); retraining
	// is gated off near phase boundaries. Default 12.
	PhaseThresholdW float64
	// PhaseSettle is how many samples the current phase must have
	// persisted before a promotion may proceed. Default 8.
	PhaseSettle int
	// Seed makes minted swap trace IDs (and thus flight-recorder and
	// exemplar references) deterministic for drills. Default 1.
	Seed uint64
	// OnEvent, when set, observes every swap and rollback — the serve
	// layer uses it to flip its atomic estimator pointer, note the
	// flight recorder, and dump a diagnostics bundle.
	OnEvent func(Event)
	// ChallengerHook, when set, may replace a fitted challenger before
	// the shadow gate sees it. CI's negative control injects a
	// deliberately bad challenger here and asserts the gate rejects it.
	ChallengerHook func(*core.Estimator) *core.Estimator
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 180
	}
	if c.MinFill <= 0 {
		c.MinFill = c.Window / 2
	}
	if c.ErrBoundPct <= 0 {
		c.ErrBoundPct = validate.PaperBoundPct
	}
	if c.BaselineErrPct <= 0 {
		c.BaselineErrPct = 5
	}
	if c.AlarmBudgetPct <= 0 {
		c.AlarmBudgetPct = 60
	}
	if c.EnvelopeSlackZ <= 0 {
		c.EnvelopeSlackZ = 3
	}
	if c.EnvelopeBudgetZ <= 0 {
		c.EnvelopeBudgetZ = 240
	}
	if c.RollbackDepth <= 0 {
		c.RollbackDepth = 4
	}
	if c.GuardWindow <= 0 {
		c.GuardWindow = c.Window / 2
	}
	if c.Cooldown <= 0 {
		c.Cooldown = c.Window / 4
	}
	if c.PhaseThresholdW <= 0 {
		c.PhaseThresholdW = 12
	}
	if c.PhaseSettle <= 0 {
		c.PhaseSettle = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Event describes one champion change.
type Event struct {
	// Kind is "swap" or "rollback".
	Kind string
	// From and To are the provenance versions of the outgoing and
	// incoming champions ("unversioned" when absent).
	From, To string
	// Estimator is the new champion.
	Estimator *core.Estimator
	// Trace is the deterministic trace ID minted for this event.
	Trace tracez.TraceID
	// WindowErrPct is the incoming model's window error at decision
	// time (the challenger's on swap, the restored champion's unknown
	// on rollback: zero).
	WindowErrPct float64
	// Detail is a one-line human reason.
	Detail string
}

// Manager runs the detect → refit → gate → swap → rollback loop. It is
// fed one observation at a time (counter sample plus measured rails
// when available) and owns the champion lifecycle; consumers read the
// active estimator through the OnEvent callback or Status.
//
// All methods are safe for concurrent use, but determinism is only
// guaranteed when one goroutine feeds Observe — the drills do exactly
// that.
type Manager struct {
	cfg Config

	mu          sync.Mutex
	champion    *core.Estimator
	fitters     [power.NumSubsystems]*core.OnlineFitter
	window      []align.Row // ring, oldest at wHead
	wHead, wLen int
	resid       *PageHinkley
	env         *EnvelopeCUSUM
	phases      *phase.Detector
	ring        []*core.Estimator // rollback ring, most recent last

	obs            uint64 // total observations
	modelAge       uint64 // observations since last champion change
	sinceAttempt   uint64 // observations since last promotion attempt
	pending        bool   // drift alarm raised, retrain wanted
	guardRemaining int    // post-swap guard observations left
	refitSeq       int    // refit version counter
	idState        uint64 // SplitMix64 state for deterministic trace IDs

	subs []func(Event) // Subscribe listeners, called after cfg.OnEvent

	alarms, retrains, rejected, swaps, rollbacks, quarantined uint64
	lastErrPct                                                float64
	lastAlarm                                                 string
}

// adaptSpecs returns the production spec per subsystem, indexed by
// power.Subsystem — the models a challenger refits.
func adaptSpecs() [power.NumSubsystems]core.ModelSpec {
	var out [power.NumSubsystems]core.ModelSpec
	out[power.SubCPU] = core.CPUSpec()
	out[power.SubChipset] = core.ChipsetSpec()
	out[power.SubMemory] = core.MemBusSpec()
	out[power.SubIO] = core.IOSpec()
	out[power.SubDisk] = core.DiskSpec()
	return out
}

// New builds a manager around an initial champion.
func New(cfg Config) (*Manager, error) {
	if cfg.Champion == nil {
		return nil, fmt.Errorf("adapt: config needs a champion estimator")
	}
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:      cfg,
		champion: cfg.Champion,
		window:   make([]align.Row, cfg.Window),
		idState:  cfg.Seed,
	}
	for sub, spec := range adaptSpecs() {
		f, err := core.NewOnlineFitter(spec, cfg.Window)
		if err != nil {
			return nil, fmt.Errorf("adapt: fitter for %s: %w", power.Subsystem(sub), err)
		}
		m.fitters[sub] = f
	}
	var err error
	if m.resid, err = NewPageHinkley(cfg.BaselineErrPct, cfg.AlarmBudgetPct); err != nil {
		return nil, err
	}
	envs := championEnvelopes(cfg.Champion)
	if m.env, err = NewEnvelopeCUSUM(envs, cfg.EnvelopeSlackZ, cfg.EnvelopeBudgetZ); err != nil {
		return nil, err
	}
	if m.phases, err = phase.NewDetector(cfg.PhaseThresholdW); err != nil {
		return nil, err
	}
	return m, nil
}

func championEnvelopes(e *core.Estimator) []core.MetricEnvelope {
	if p := e.Provenance(); p != nil {
		return p.Envelopes
	}
	return nil
}

// mintTraceID derives the next deterministic trace ID from the seeded
// SplitMix64 stream — drills replay with identical IDs.
func (m *Manager) mintTraceID() tracez.TraceID {
	var id tracez.TraceID
	for i := 0; i < 16; i += 8 {
		m.idState += 0x9e3779b97f4a7c15
		z := m.idState
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		for b := 0; b < 8; b++ {
			id[i+b] = byte(z >> (8 * b))
		}
	}
	return id
}

// Subscribe registers fn to observe every swap and rollback, in
// addition to (and after) Config.OnEvent. Callbacks run synchronously
// inside the champion change with the manager's lock held: they must
// not call back into the Manager. The serve layer subscribes its
// atomic estimator swap and diagnostics-bundle trigger here.
func (m *Manager) Subscribe(fn func(Event)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.subs = append(m.subs, fn)
}

// Champion returns the active estimator.
func (m *Manager) Champion() *core.Estimator {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.champion
}

// Observe feeds one counter sample with its measured rails (ground
// truth or a calibrated proxy). It drives drift detection, window
// accumulation, and — when the gate conditions line up — a promotion
// attempt or rollback, synchronously. The sample is retained shallowly
// in the sliding window: callers must not mutate it afterwards.
func (m *Manager) Observe(s *perfctr.Sample, measured power.Reading) {
	m.mu.Lock()
	defer m.mu.Unlock()

	met := core.ExtractMetrics(s)
	m.obs++
	m.modelAge++
	m.sinceAttempt++
	mModelAge.Set(float64(m.modelAge))

	// Residual drift: per-sample Eq.6 error of the champion's total.
	modeled := m.champion.EstimateMetrics(met).Total()
	truth := measured.Total()
	errPct := math.Abs(modeled-truth) / math.Abs(truth) * 100
	if math.IsNaN(errPct) || math.IsInf(errPct, 0) {
		m.quarantined++
		mQuarantined.Inc()
		return
	}
	m.lastErrPct = errPct

	residAlarm := m.resid.Observe(errPct)
	envAlarm, envMetric := m.env.Observe(core.EnvelopeMetrics(met))

	// Phase tracking: never retrain mid-transition.
	m.phases.Observe(measured)

	// Window + fitters.
	slot := (m.wHead + m.wLen) % len(m.window)
	if m.wLen == len(m.window) {
		slot = m.wHead
		m.wHead = (m.wHead + 1) % len(m.window)
	} else {
		m.wLen++
	}
	m.window[slot] = align.Row{Power: measured, Counters: *s}
	for sub := range m.fitters {
		m.fitters[sub].Observe(met, measured[sub])
	}

	if residAlarm || envAlarm {
		if m.guardRemaining > 0 {
			m.rollbackLocked()
			return
		}
		if !m.pending {
			m.alarms++
			if residAlarm {
				m.lastAlarm = "residual"
				mAlarms.With("residual").Inc()
			} else {
				m.lastAlarm = "envelope:" + envMetric
				mAlarms.With("envelope").Inc()
			}
			m.pending = true
			// The window straddles the change point: everything before
			// the alarm reflects the regime the champion was right
			// about. Discard it so the challenger is fit purely on
			// post-drift data — a blended fit would pass the gate on
			// the mixed window and then err on the new regime alone.
			for sub := range m.fitters {
				m.fitters[sub].Reset()
			}
			m.wHead, m.wLen = 0, 0
		}
	}
	if m.guardRemaining > 0 {
		m.guardRemaining--
	}

	if m.pending &&
		m.wLen >= m.cfg.MinFill &&
		m.sinceAttempt >= uint64(m.cfg.Cooldown) &&
		m.phases.Settled(m.cfg.PhaseSettle) {
		m.attemptPromoteLocked()
	}
}

// windowDataset copies the ring into a dataset, oldest first.
func (m *Manager) windowDataset() *align.Dataset {
	rows := make([]align.Row, m.wLen)
	for i := 0; i < m.wLen; i++ {
		rows[i] = m.window[(m.wHead+i)%len(m.window)]
	}
	return &align.Dataset{Rows: rows}
}

// attemptPromoteLocked refits a challenger from the live window and
// promotes it through the shadow gate. Called with mu held.
func (m *Manager) attemptPromoteLocked() {
	m.sinceAttempt = 0
	m.retrains++
	mRetrains.With("started").Inc()

	models := make([]*core.Model, 0, power.NumSubsystems)
	for sub := range m.fitters {
		mod, err := m.fitters[sub].Fit()
		if err != nil {
			m.rejected++
			mRetrains.With("rejected").Inc()
			m.lastAlarm = fmt.Sprintf("refit %s: %v", power.Subsystem(sub), err)
			return
		}
		models = append(models, mod)
	}
	challenger, err := core.NewEstimator(models...)
	if err != nil {
		m.rejected++
		mRetrains.With("rejected").Inc()
		return
	}
	win := m.windowDataset()
	m.refitSeq++
	fp := validate.Fingerprint(win)
	parent := versionOf(m.champion)
	challenger.SetProvenance(&core.Provenance{
		SchemaVersion: core.ProvenanceSchemaVersion,
		Version:       fmt.Sprintf("refit-%d-%s", m.refitSeq, fp),
		Fingerprint:   fp,
		Envelopes:     core.ComputeEnvelopes(win),
		Parent:        parent,
		Reason:        "drift-refit",
	})
	if m.cfg.ChallengerHook != nil {
		challenger = m.cfg.ChallengerHook(challenger)
	}

	// Shadow gate: metamorphic battery on the live window, then the
	// better-than-champion residual criterion under the paper bound.
	if ok, why := validate.ShadowOK(validate.ShadowChecks(challenger, win)); !ok {
		m.rejected++
		mRetrains.With("rejected").Inc()
		m.lastAlarm = "gate: " + why
		return
	}
	chalErr, err := validate.WindowError(challenger, win)
	if err != nil {
		m.rejected++
		mRetrains.With("rejected").Inc()
		return
	}
	champErr, err := validate.WindowError(m.champion, win)
	if err != nil {
		m.rejected++
		mRetrains.With("rejected").Inc()
		return
	}
	if chalErr > m.cfg.ErrBoundPct || chalErr >= champErr {
		m.rejected++
		mRetrains.With("rejected").Inc()
		m.lastAlarm = fmt.Sprintf("gate: challenger %.2f%% vs champion %.2f%% (bound %.1f%%)",
			chalErr, champErr, m.cfg.ErrBoundPct)
		return
	}

	// Promote: push the old champion onto the bounded rollback ring.
	mRetrains.With("succeeded").Inc()
	m.ring = append(m.ring, m.champion)
	if len(m.ring) > m.cfg.RollbackDepth {
		m.ring = m.ring[len(m.ring)-m.cfg.RollbackDepth:]
	}
	old := m.champion
	m.champion = challenger
	m.swaps++
	mSwaps.Inc()
	m.pending = false
	m.modelAge = 0
	m.guardRemaining = m.cfg.GuardWindow
	m.resid.Reset()
	m.env.Retarget(championEnvelopes(challenger))
	id := m.mintTraceID()
	mSwapErr.ObserveExemplar(chalErr, id.String())
	m.emit(Event{
		Kind: "swap", From: versionOf(old), To: versionOf(challenger),
		Estimator: challenger, Trace: id, WindowErrPct: chalErr,
		Detail: fmt.Sprintf("challenger %.2f%% beats champion %.2f%%", chalErr, champErr),
	})
}

// rollbackLocked reverts to the most recent prior champion after a
// post-swap alarm. Called with mu held.
func (m *Manager) rollbackLocked() {
	if len(m.ring) == 0 {
		// Nothing to revert to: treat like a fresh drift alarm.
		m.guardRemaining = 0
		m.pending = true
		return
	}
	failed := m.champion
	m.champion = m.ring[len(m.ring)-1]
	m.ring = m.ring[:len(m.ring)-1]
	m.rollbacks++
	mRollbacks.Inc()
	m.pending = false
	m.modelAge = 0
	m.guardRemaining = 0
	m.sinceAttempt = 0
	m.resid.Reset()
	m.env.Retarget(championEnvelopes(m.champion))
	// The window that promoted the failed challenger is tainted; a
	// fresh challenger must be fit from fresh data.
	for sub := range m.fitters {
		m.fitters[sub].Reset()
	}
	m.wHead, m.wLen = 0, 0
	id := m.mintTraceID()
	m.emit(Event{
		Kind: "rollback", From: versionOf(failed), To: versionOf(m.champion),
		Estimator: m.champion, Trace: id,
		Detail: "post-swap drift alarm inside guard window",
	})
}

func (m *Manager) emit(ev Event) {
	tracez.Flight().NoteTrace("adapt."+ev.Kind, ev.From+" -> "+ev.To, int64(m.obs), ev.Trace)
	if m.cfg.OnEvent != nil {
		m.cfg.OnEvent(ev)
	}
	for _, fn := range m.subs {
		fn(ev)
	}
}

func versionOf(e *core.Estimator) string {
	if p := e.Provenance(); p != nil && p.Version != "" {
		return p.Version
	}
	return "unversioned"
}

// Status is the /driftz snapshot.
type Status struct {
	ActiveVersion  string  `json:"active_version"`
	Observations   uint64  `json:"observations"`
	ModelAge       uint64  `json:"model_age_observations"`
	WindowFill     int     `json:"window_fill"`
	WindowCap      int     `json:"window_cap"`
	PendingRetrain bool    `json:"pending_retrain"`
	GuardRemaining int     `json:"guard_remaining"`
	RollbackDepth  int     `json:"rollback_available"`
	Alarms         uint64  `json:"drift_alarms"`
	Retrains       uint64  `json:"retrains_started"`
	Rejected       uint64  `json:"retrains_rejected"`
	Swaps          uint64  `json:"swaps"`
	Rollbacks      uint64  `json:"rollbacks"`
	Quarantined    uint64  `json:"residuals_quarantined"`
	LastErrPct     float64 `json:"last_err_pct"`
	LastAlarm      string  `json:"last_alarm,omitempty"`
}

// Status returns a consistent snapshot of the adaptation state.
func (m *Manager) Status() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Status{
		ActiveVersion:  versionOf(m.champion),
		Observations:   m.obs,
		ModelAge:       m.modelAge,
		WindowFill:     m.wLen,
		WindowCap:      len(m.window),
		PendingRetrain: m.pending,
		GuardRemaining: m.guardRemaining,
		RollbackDepth:  len(m.ring),
		Alarms:         m.alarms,
		Retrains:       m.retrains,
		Rejected:       m.rejected,
		Swaps:          m.swaps,
		Rollbacks:      m.rollbacks,
		Quarantined:    m.quarantined + m.resid.Quarantined() + m.env.Quarantined(),
		LastErrPct:     m.lastErrPct,
		LastAlarm:      m.lastAlarm,
	}
}
