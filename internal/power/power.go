// Package power computes the ground-truth power consumption of each
// subsystem from *local* physical activity — the role played in the
// paper by sense resistors on the five supply rails. The functional
// forms here are mechanistic (DRAM state residency and per-event
// energies after Janzen; disk mode residency after Zedlewski; CMOS
// switching for chipset and I/O; per-core halt gating) and deliberately
// different from the CPU-event regression models in internal/core, so
// that the fitted models' residual error is earned, not assumed.
package power

import (
	"trickledown/internal/chipset"
	"trickledown/internal/cpu"
	"trickledown/internal/disk"
	"trickledown/internal/iobus"
	"trickledown/internal/mem"
)

// Subsystem identifies one of the five measured rails.
type Subsystem int

// The paper's five subsystems, in Table 1 column order.
const (
	SubCPU Subsystem = iota
	SubChipset
	SubMemory
	SubIO
	SubDisk
	numSubsystems
)

// NumSubsystems is the number of measured rails.
const NumSubsystems = int(numSubsystems)

var subNames = [...]string{"CPU", "Chipset", "Memory", "I/O", "Disk"}

// String returns the subsystem's display name.
func (s Subsystem) String() string {
	if s >= 0 && int(s) < len(subNames) {
		return subNames[s]
	}
	return "Unknown"
}

// Subsystems returns the five subsystems in table order.
func Subsystems() []Subsystem {
	return []Subsystem{SubCPU, SubChipset, SubMemory, SubIO, SubDisk}
}

// CPU ground-truth parameters (per processor, Watts).
const (
	// CPUHaltPower is the clock-gated floor the paper observes (~9 W).
	CPUHaltPower = 9.4
	// CPUActiveIdleDelta is the additional power of an unhalted but
	// stalled core (unhalted idle ~36 W per the paper, less the halt
	// floor and minus headroom recovered by per-unit gating).
	CPUActiveIdleDelta = 22.0
	// cpuUopEnergy scales with fetched uops per cycle.
	cpuUopEnergy = 3.4
	// cpuSpecEnergy scales with speculative issue activity per cycle —
	// real power the fetch counter cannot see.
	cpuSpecEnergy = 2.9
	// cpuL2Energy scales with L2 accesses per cycle.
	cpuL2Energy = 0.9
)

// VoltageScale returns the supply-voltage fraction the DVFS table pairs
// with a frequency fraction f: voltage cannot drop as fast as frequency,
// so V(f) = 0.75 + 0.25·f (normalized). Dynamic power then scales with
// f·V².
func VoltageScale(f float64) float64 {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return 0.75 + 0.25*f
}

// serverProfile backs the package-level functions; it is the paper's
// machine (see ServerProfile).
var serverProfile = ServerProfile()

// CPU returns one processor's power for a slice on the paper's machine.
// The per-cycle rates are frequency-independent; dynamic power scales
// with f·V(f)² and the halt floor (largely leakage) with V(f).
func CPU(st cpu.SliceStats) float64 {
	return serverProfile.CPU(st)
}

// Memory ground-truth parameters.
const (
	// MemIdlePower covers DRAM background (refresh, standby) plus the
	// memory controller.
	MemIdlePower = 28.0
	// memActEnergy is Joules per row activation+precharge pair.
	memActEnergy = 0.42e-6
	// memReadEnergy and memWriteEnergy are Joules per burst; writes cost
	// more, which the bus-transaction model cannot see (the paper's FP
	// underestimation).
	memReadEnergy  = 0.060e-6
	memWriteEnergy = 0.210e-6
	// memPrechargeStandby is the extra standby power while banks sit in
	// precharge rather than idle.
	memPrechargeStandby = 1.5
)

// Memory returns the DRAM+controller power for a slice of the given
// duration on the paper's machine.
func Memory(st mem.Stats, sliceSec float64) float64 {
	return serverProfile.Memory(st, sliceSec)
}

// Chipset ground-truth parameters.
const (
	// ChipsetBasePower is the interface chips' static floor.
	ChipsetBasePower = 18.0
	// chipsetFSBEnergy scales with front-side-bus utilization.
	chipsetFSBEnergy = 1.9
)

// Chipset returns the chipset rail power for a slice on the paper's
// machine, including the multi-domain measurement artifact (drift +
// workload bias) that the paper's constant model cannot track.
func Chipset(st chipset.Stats) float64 {
	return serverProfile.Chipset(st)
}

// I/O ground-truth parameters.
const (
	// IOBasePower is the two I/O chips plus six PCI-X bridges, populated
	// or not — the large DC term the paper remarks on.
	IOBasePower = 32.75
	// ioDMAEnergy is Joules per DMA payload byte through the chips.
	ioDMAEnergy = 14e-9
	// ioIntEnergy is Joules per device interrupt message.
	ioIntEnergy = 1.7e-3
)

// IO returns the I/O subsystem power for a slice on the paper's
// machine. deviceInts counts device (non-timer) interrupts delivered
// during the slice.
func IO(dma iobus.DMAStats, deviceInts float64, sliceSec float64) float64 {
	return serverProfile.IO(dma, deviceInts, sliceSec)
}

// Disk ground-truth parameters (per spindle).
const (
	// diskElectronics is the controller and drive electronics.
	diskElectronics = 1.95
	// diskSpindlePower is rotation, consumed always — the paper's server
	// disks "lack the ability to halt rotation during idle phases".
	diskSpindlePower = 8.85
	// diskSeekPower is the voice-coil power while seeking.
	diskSeekPower = 0.15
	// diskXferPower is the head/channel power while transferring.
	diskXferPower = 0.40
)

// DiskIdlePower returns the subsystem's DC floor for n spindles on the
// paper's machine.
func DiskIdlePower(n int) float64 {
	return serverProfile.DiskIdle(n)
}

// diskSpinupPower is the surge while restoring rotation (the motor
// works hardest against stiction).
const diskSpinupPower = 14.0

// Disk returns the disk subsystem power for a slice on the paper's
// machine. st must aggregate all spindles; numDisks scales the static
// terms. Spindles in standby shed their rotation power (the saving the
// paper's server disks could not reach); spin-up pays a motor surge.
func Disk(st disk.Stats, sliceSec float64, numDisks int) float64 {
	return serverProfile.Disk(st, sliceSec, numDisks)
}

// Reading is one slice's ground truth for all five rails, in Watts.
type Reading [NumSubsystems]float64

// Total returns full-system power.
func (r Reading) Total() float64 {
	t := 0.0
	for _, v := range r {
		t += v
	}
	return t
}
