package power

import (
	"math"
	"testing"

	"trickledown/internal/chipset"
	"trickledown/internal/cpu"
	"trickledown/internal/disk"
	"trickledown/internal/iobus"
	"trickledown/internal/mem"
)

func TestServerProfileMatchesPackageFunctions(t *testing.T) {
	p := ServerProfile()
	cs := cpu.SliceStats{Cycles: 2.8e6, ActiveFrac: 1, FetchedUops: 3e6, SpecUops: 1e6, L2Accesses: 2e6, FreqScale: 0.8}
	if a, b := p.CPU(cs), CPU(cs); a != b {
		t.Errorf("CPU: profile %v != package %v", a, b)
	}
	ms := mem.Stats{Activations: 20000, ReadBursts: 15000, WriteBursts: 9000, PrechargeFrac: 0.1}
	if a, b := p.Memory(ms, 0.001), Memory(ms, 0.001); a != b {
		t.Errorf("Memory: %v != %v", a, b)
	}
	ch := chipset.Stats{FSBUtil: 0.4, DomainDrift: 0.1, DomainBias: 1.2}
	if a, b := p.Chipset(ch), Chipset(ch); a != b {
		t.Errorf("Chipset: %v != %v", a, b)
	}
	dm := iobus.DMAStats{Bytes: 90e3}
	if a, b := p.IO(dm, 0.4, 0.001), IO(dm, 0.4, 0.001); a != b {
		t.Errorf("IO: %v != %v", a, b)
	}
	dsk := disk.Stats{SeekSec: 0.0005, XferSec: 0.001, StandbySec: 0.0002, SpinupSec: 0.0001}
	if a, b := p.Disk(dsk, 0.001, 2), Disk(dsk, 0.001, 2); a != b {
		t.Errorf("Disk: %v != %v", a, b)
	}
}

func TestBladeProfileIsLowerPower(t *testing.T) {
	server := ServerProfile()
	blade := BladeProfile()
	if err := blade.Validate(); err != nil {
		t.Fatal(err)
	}
	// Everything static should be cheaper.
	if blade.CPUHalt >= server.CPUHalt || blade.MemIdle >= server.MemIdle ||
		blade.ChipsetBase >= server.ChipsetBase || blade.IOBase >= server.IOBase {
		t.Error("blade static floors not below server")
	}
	cs := cpu.SliceStats{Cycles: 2.8e6, ActiveFrac: 1, FetchedUops: 4e6, SpecUops: 1e6, L2Accesses: 3e6}
	if blade.CPU(cs) >= server.CPU(cs) {
		t.Error("blade CPU power not below server at equal activity")
	}
	if blade.DiskIdle(1) >= server.DiskIdle(1) {
		t.Error("blade disk floor not below server")
	}
}

func TestProfileValidate(t *testing.T) {
	p := ServerProfile()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.MemIdle = 0
	if p.Validate() == nil {
		t.Error("zero MemIdle accepted")
	}
	p = ServerProfile()
	p.CPUHalt = -1
	if p.Validate() == nil {
		t.Error("negative CPUHalt accepted")
	}
}

func TestProfileZeroSliceFloors(t *testing.T) {
	p := BladeProfile()
	if got := p.Memory(mem.Stats{}, 0); got != p.MemIdle {
		t.Errorf("zero-slice Memory = %v", got)
	}
	if got := p.IO(iobus.DMAStats{}, 1, 0); got != p.IOBase {
		t.Errorf("zero-slice IO = %v", got)
	}
	if got := p.Disk(disk.Stats{}, 0, 3); got != p.DiskIdle(3) {
		t.Errorf("zero-slice Disk = %v", got)
	}
	if got := p.CPU(cpu.SliceStats{}); math.Abs(got-p.CPUHalt) > 1e-12 {
		t.Errorf("zero-cycle CPU = %v", got)
	}
}
