package power

import (
	"math"
	"testing"

	"trickledown/internal/chipset"
	"trickledown/internal/cpu"
	"trickledown/internal/disk"
	"trickledown/internal/iobus"
	"trickledown/internal/mem"
	"trickledown/internal/sim"
)

func TestSubsystemNames(t *testing.T) {
	subs := Subsystems()
	if len(subs) != NumSubsystems || NumSubsystems != 5 {
		t.Fatalf("Subsystems() = %v", subs)
	}
	want := []string{"CPU", "Chipset", "Memory", "I/O", "Disk"}
	for i, s := range subs {
		if s.String() != want[i] {
			t.Errorf("subsystem %d = %q, want %q", i, s, want[i])
		}
	}
	if Subsystem(99).String() != "Unknown" {
		t.Error("out-of-range subsystem name")
	}
}

func TestCPUPowerHaltedFloor(t *testing.T) {
	st := cpu.SliceStats{Cycles: 2.8e6, HaltedCycles: 2.8e6, ActiveFrac: 0}
	if got := CPU(st); math.Abs(got-CPUHaltPower) > 1e-9 {
		t.Errorf("halted CPU power = %v, want %v", got, CPUHaltPower)
	}
	if got := CPU(cpu.SliceStats{}); got != CPUHaltPower {
		t.Errorf("zero-cycle CPU power = %v", got)
	}
}

func TestCPUPowerActiveIdleStep(t *testing.T) {
	// An unhalted but stalled processor consumes the paper's ~31 W, far
	// above the ~9 W halted floor.
	st := cpu.SliceStats{Cycles: 2.8e6, ActiveFrac: 1}
	got := CPU(st)
	want := CPUHaltPower + CPUActiveIdleDelta
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("active-idle power = %v, want %v", got, want)
	}
}

func TestCPUPowerScalesWithWork(t *testing.T) {
	base := cpu.SliceStats{Cycles: 2.8e6, ActiveFrac: 1}
	withUops := base
	withUops.FetchedUops = 2.8e6 * 2 // 2 uops/cycle
	if CPU(withUops) <= CPU(base) {
		t.Error("uops add no power")
	}
	withSpec := base
	withSpec.SpecUops = 2.8e6
	if CPU(withSpec) <= CPU(base) {
		t.Error("speculation adds no power")
	}
	// Full-tilt power lands in the paper's ~48 W envelope.
	max := cpu.SliceStats{Cycles: 2.8e6, ActiveFrac: 1, FetchedUops: 3 * 2.8e6, SpecUops: 0.5 * 2.8e6, L2Accesses: 3 * 2.8e6}
	if p := CPU(max); p < 43 || p > 50 {
		t.Errorf("peak CPU power = %v, want ~44-49", p)
	}
}

func TestMemoryPowerIdle(t *testing.T) {
	if got := Memory(mem.Stats{IdleFrac: 1}, 0.001); math.Abs(got-MemIdlePower) > 1e-9 {
		t.Errorf("idle memory power = %v", got)
	}
	if got := Memory(mem.Stats{}, 0); got != MemIdlePower {
		t.Errorf("zero-slice memory power = %v", got)
	}
}

func TestMemoryPowerMatchesPaperEnvelope(t *testing.T) {
	// Drive the DRAM model at high utilization: power should land in the
	// paper's observed 28-47 W band.
	m := mem.New()
	st := m.Step(0.001, mem.Traffic{CPUTx: 0.9 * mem.BusCapacity * 0.001, WriteFrac: 0.5})
	p := Memory(st, 0.001)
	if p < 40 || p > 49 {
		t.Errorf("near-saturation memory power = %v, want ~42-48", p)
	}
	low := m.Step(0.001, mem.Traffic{CPUTx: 0.05 * mem.BusCapacity * 0.001})
	if pl := Memory(low, 0.001); pl < MemIdlePower || pl > 31 {
		t.Errorf("light-load memory power = %v", pl)
	}
}

func TestMemoryWritePremium(t *testing.T) {
	m := mem.New()
	rd := Memory(m.Step(0.001, mem.Traffic{CPUTx: 20000, WriteFrac: 0}), 0.001)
	wr := Memory(m.Step(0.001, mem.Traffic{CPUTx: 20000, WriteFrac: 1}), 0.001)
	if wr <= rd {
		t.Error("write traffic should cost more than read traffic")
	}
}

func TestChipsetPower(t *testing.T) {
	got := Chipset(chipset.Stats{FSBUtil: 0.5, DomainDrift: 0.2, DomainBias: 1.0})
	want := ChipsetBasePower + 1.9*0.5 + 0.2 + 1.0
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("chipset power = %v, want %v", got, want)
	}
	// Idle with typical bias lands near the paper's 19.9 W.
	idle := Chipset(chipset.Stats{DomainBias: 1.85})
	if idle < 19.5 || idle > 20.3 {
		t.Errorf("idle chipset power = %v, want ~19.9", idle)
	}
}

func TestChipsetDriftWanders(t *testing.T) {
	c := chipset.New(sim.NewRNG(1))
	var minD, maxD float64
	for i := 0; i < 120000; i++ {
		st := c.Step(0.001, 0)
		if st.DomainDrift < minD {
			minD = st.DomainDrift
		}
		if st.DomainDrift > maxD {
			maxD = st.DomainDrift
		}
	}
	if maxD-minD < 0.2 {
		t.Errorf("domain drift barely moved: [%v, %v]", minD, maxD)
	}
	if maxD-minD > 5 {
		t.Errorf("domain drift implausibly wild: [%v, %v]", minD, maxD)
	}
}

func TestIOPower(t *testing.T) {
	if got := IO(iobus.DMAStats{}, 0, 0.001); math.Abs(got-IOBasePower) > 1e-9 {
		t.Errorf("idle I/O power = %v", got)
	}
	// 140 MB/s of DMA plus 550 interrupts/s: the DiskLoad regime, ~+2.8 W.
	got := IO(iobus.DMAStats{Bytes: 140e3}, 0.55, 0.001)
	if got < IOBasePower+2 || got > IOBasePower+4 {
		t.Errorf("DiskLoad-regime I/O power = %v, want base+2..4", got)
	}
	if IO(iobus.DMAStats{Bytes: 100}, -5, 0.001) < IOBasePower {
		t.Error("negative interrupts lowered I/O power")
	}
	if got := IO(iobus.DMAStats{}, 10, 0); got != IOBasePower {
		t.Errorf("zero-slice I/O power = %v", got)
	}
}

func TestDiskPowerIdleFloorDominates(t *testing.T) {
	idle := Disk(disk.Stats{IdleSec: 0.002}, 0.001, 2)
	if math.Abs(idle-DiskIdlePower(2)) > 1e-9 {
		t.Errorf("idle disk power = %v, want %v", idle, DiskIdlePower(2))
	}
	if DiskIdlePower(2) < 21 || DiskIdlePower(2) > 22 {
		t.Errorf("disk DC floor = %v, want ~21.6", DiskIdlePower(2))
	}
	// Both spindles transferring flat out adds only a few percent — the
	// paper's DiskLoad run "consumed only 2.8% more power than the idle
	// case" at realistic (sub-100%) transfer residency.
	busy := Disk(disk.Stats{XferSec: 0.002}, 0.001, 2)
	rise := (busy - idle) / idle
	if rise <= 0 || rise > 0.08 {
		t.Errorf("full-load disk rise = %v, want (0, 8%%]", rise)
	}
	if got := Disk(disk.Stats{}, 0, 2); got != DiskIdlePower(2) {
		t.Errorf("zero-slice disk power = %v", got)
	}
}

func TestReadingTotal(t *testing.T) {
	r := Reading{10, 20, 30, 40, 50}
	if r.Total() != 150 {
		t.Errorf("Total = %v", r.Total())
	}
}

func TestDiskPowerStandbyAndSpinup(t *testing.T) {
	// Both spindles stopped: rotation power gone, electronics remain.
	standby := Disk(disk.Stats{StandbySec: 0.002}, 0.001, 2)
	idle := DiskIdlePower(2)
	if standby >= idle-15 {
		t.Errorf("standby power = %v, want far below idle %v", standby, idle)
	}
	if standby < 3 || standby > 5 {
		t.Errorf("standby power = %v, want ~2x electronics (3.9)", standby)
	}
	// Spin-up surges above idle.
	spinup := Disk(disk.Stats{SpinupSec: 0.002}, 0.001, 2)
	if spinup <= idle {
		t.Errorf("spinup power = %v, want surge above idle %v", spinup, idle)
	}
}
