package power

import (
	"fmt"

	"trickledown/internal/chipset"
	"trickledown/internal/cpu"
	"trickledown/internal/disk"
	"trickledown/internal/iobus"
	"trickledown/internal/mem"
)

// Profile parameterizes the ground-truth power of a whole machine
// generation. The paper's premise is that the *method* — fit small
// regressions from CPU events to rail power — is general, while the
// fitted coefficients belong to one machine; a Profile is "one machine"
// made explicit. ServerProfile is the paper's 4-way Xeon box (the
// package-level functions delegate to it); BladeProfile is a
// lower-power contemporary, used to show that retraining recovers
// accuracy with different coefficients.
type Profile struct {
	// CPU terms (per processor, Watts).
	CPUHalt        float64
	CPUActiveDelta float64
	CPUUop         float64
	CPUSpec        float64
	CPUL2          float64
	// Memory terms.
	MemIdle             float64
	MemActEnergy        float64 // J per activation
	MemReadEnergy       float64 // J per read burst
	MemWriteEnergy      float64 // J per write burst
	MemPrechargeStandby float64
	// Chipset terms.
	ChipsetBase float64
	ChipsetFSB  float64
	// I/O terms.
	IOBase      float64
	IODMAEnergy float64 // J per DMA byte
	IOIntEnergy float64 // J per device interrupt
	// Disk terms (per spindle).
	DiskElectronics float64
	DiskSpindle     float64
	DiskSeek        float64
	DiskXfer        float64
	DiskSpinup      float64
}

// ServerProfile is the paper's target machine; its values are the
// calibration behind Tables 1-4.
func ServerProfile() Profile {
	return Profile{
		CPUHalt:        CPUHaltPower,
		CPUActiveDelta: CPUActiveIdleDelta,
		CPUUop:         cpuUopEnergy,
		CPUSpec:        cpuSpecEnergy,
		CPUL2:          cpuL2Energy,

		MemIdle:             MemIdlePower,
		MemActEnergy:        memActEnergy,
		MemReadEnergy:       memReadEnergy,
		MemWriteEnergy:      memWriteEnergy,
		MemPrechargeStandby: memPrechargeStandby,

		ChipsetBase: ChipsetBasePower,
		ChipsetFSB:  chipsetFSBEnergy,

		IOBase:      IOBasePower,
		IODMAEnergy: ioDMAEnergy,
		IOIntEnergy: ioIntEnergy,

		DiskElectronics: diskElectronics,
		DiskSpindle:     diskSpindlePower,
		DiskSeek:        diskSeekPower,
		DiskXfer:        diskXferPower,
		DiskSpinup:      diskSpinupPower,
	}
}

// BladeProfile is a low-power blade of the same era: slower parts, lower
// rails, single-chip I/O, one small disk's worth of spindle power per
// unit.
func BladeProfile() Profile {
	p := ServerProfile()
	p.CPUHalt = 5.5
	p.CPUActiveDelta = 12.0
	p.CPUUop = 2.0
	p.CPUSpec = 1.6
	p.CPUL2 = 0.5
	p.MemIdle = 14.0
	p.MemActEnergy = 0.30e-6
	p.MemReadEnergy = 0.045e-6
	p.MemWriteEnergy = 0.15e-6
	p.ChipsetBase = 9.0
	p.ChipsetFSB = 1.1
	p.IOBase = 11.0
	p.DiskElectronics = 1.1
	p.DiskSpindle = 4.2
	p.DiskSpinup = 7.0
	return p
}

// Validate reports the first nonsensical (non-positive static floor)
// field, or nil.
func (p *Profile) Validate() error {
	checks := []struct {
		name string
		v    float64
	}{
		{"CPUHalt", p.CPUHalt},
		{"MemIdle", p.MemIdle},
		{"ChipsetBase", p.ChipsetBase},
		{"IOBase", p.IOBase},
		{"DiskElectronics", p.DiskElectronics},
		{"DiskSpindle", p.DiskSpindle},
	}
	for _, c := range checks {
		if c.v <= 0 {
			return fmt.Errorf("power: profile field %s must be positive, got %v", c.name, c.v)
		}
	}
	return nil
}

// CPU is the profile-parameterized form of the package-level CPU.
func (p *Profile) CPU(st cpu.SliceStats) float64 {
	f := st.FreqScale
	if f <= 0 {
		f = 1
	}
	v := VoltageScale(f)
	fv2 := f * v * v
	if st.Cycles <= 0 {
		return p.CPUHalt * v
	}
	upc := st.FetchedUops / st.Cycles
	spec := st.SpecUops / st.Cycles
	l2 := st.L2Accesses / st.Cycles
	return p.CPUHalt*v + (p.CPUActiveDelta*st.ActiveFrac+
		p.CPUUop*upc+p.CPUSpec*spec+p.CPUL2*l2)*fv2
}

// Memory is the profile-parameterized form of the package-level Memory.
func (p *Profile) Memory(st mem.Stats, sliceSec float64) float64 {
	if sliceSec <= 0 {
		return p.MemIdle
	}
	dynamic := (st.Activations*p.MemActEnergy +
		st.ReadBursts*p.MemReadEnergy +
		st.WriteBursts*p.MemWriteEnergy) / sliceSec
	return p.MemIdle + dynamic + p.MemPrechargeStandby*st.PrechargeFrac
}

// Chipset is the profile-parameterized form of the package-level
// Chipset.
func (p *Profile) Chipset(st chipset.Stats) float64 {
	return p.ChipsetBase + p.ChipsetFSB*st.FSBUtil + st.DomainDrift + st.DomainBias
}

// IO is the profile-parameterized form of the package-level IO.
func (p *Profile) IO(dma iobus.DMAStats, deviceInts float64, sliceSec float64) float64 {
	if sliceSec <= 0 {
		return p.IOBase
	}
	if deviceInts < 0 {
		deviceInts = 0
	}
	return p.IOBase + (dma.Bytes*p.IODMAEnergy+deviceInts*p.IOIntEnergy)/sliceSec
}

// DiskIdle returns the profile's disk DC floor for n spindles.
func (p *Profile) DiskIdle(n int) float64 {
	return float64(n) * (p.DiskElectronics + p.DiskSpindle)
}

// Disk is the profile-parameterized form of the package-level Disk.
func (p *Profile) Disk(st disk.Stats, sliceSec float64, numDisks int) float64 {
	idle := p.DiskIdle(numDisks)
	if sliceSec <= 0 {
		return idle
	}
	w := idle + (st.SeekSec*p.DiskSeek+st.XferSec*p.DiskXfer)/sliceSec
	w -= p.DiskSpindle * (st.StandbySec + st.SpinupSec) / sliceSec
	w += p.DiskSpinup * st.SpinupSec / sliceSec
	return w
}
