package thermal_test

import (
	"fmt"

	"trickledown/internal/power"
	"trickledown/internal/thermal"
)

// SteadyState turns a counter-based power estimate into the temperature
// the package *will* reach — available immediately, long before any
// physical sensor moves.
func ExampleModel_SteadyState() {
	m := thermal.New(thermal.DefaultParams())
	estimate := power.Reading{160, 20, 40, 33, 22} // Watts per rail
	t := m.SteadyState(estimate)
	sub, max := t.Max()
	fmt.Printf("hottest: %s at %.1f C\n", sub, max)
	// Output: hottest: CPU at 68.2 C
}
