package thermal

import (
	"math"
	"testing"
	"testing/quick"

	"trickledown/internal/power"
)

func constantPower() power.Reading {
	return power.Reading{160, 20, 40, 33, 22}
}

func TestStartsAtAmbient(t *testing.T) {
	m := New(DefaultParams())
	for _, s := range power.Subsystems() {
		if m.Temps()[s] != 25 {
			t.Errorf("%s starts at %v", s, m.Temps()[s])
		}
	}
}

func TestConvergesToSteadyState(t *testing.T) {
	m := New(DefaultParams())
	pw := constantPower()
	want := m.SteadyState(pw)
	for i := 0; i < 3000; i++ { // 50 minutes at 1s steps
		m.Step(1, pw)
	}
	for _, s := range power.Subsystems() {
		if math.Abs(m.Temps()[s]-want[s]) > 0.1 {
			t.Errorf("%s converged to %v, want %v", s, m.Temps()[s], want[s])
		}
	}
	// CPU equilibrium in a plausible server range.
	if cpuT := want[power.SubCPU]; cpuT < 55 || cpuT > 85 {
		t.Errorf("CPU steady state = %v °C, implausible", cpuT)
	}
}

func TestTimeConstant(t *testing.T) {
	p := DefaultParams()
	m := New(p)
	pw := constantPower()
	target := m.SteadyState(pw)[power.SubCPU]
	tau := p.TimeConstantSec[power.SubCPU]
	for i := 0.0; i < tau; i++ {
		m.Step(1, pw)
	}
	frac := (m.Temps()[power.SubCPU] - p.AmbientC) / (target - p.AmbientC)
	if math.Abs(frac-0.632) > 0.03 {
		t.Errorf("after one tau, covered %.3f of the step, want ~0.632", frac)
	}
}

func TestStabilityWithHugeStep(t *testing.T) {
	m := New(DefaultParams())
	pw := constantPower()
	m.Step(1e6, pw) // one giant step must not overshoot
	want := m.SteadyState(pw)
	for _, s := range power.Subsystems() {
		if m.Temps()[s] > want[s]+1e-6 {
			t.Errorf("%s overshot: %v > %v", s, m.Temps()[s], want[s])
		}
	}
	m.Step(-5, pw) // ignored
	m.Step(0, pw)  // ignored
}

func TestSensorLagsDie(t *testing.T) {
	m := New(DefaultParams())
	pw := constantPower()
	lagSeen := false
	for i := 0; i < 120; i++ {
		m.Step(1, pw)
		die := m.Temps()[power.SubCPU]
		sensor := m.SensorTemps()[power.SubCPU]
		if sensor > die+1e-6 {
			t.Fatalf("sensor %v ahead of die %v at t=%d", sensor, die, i)
		}
		if die-sensor > 2 {
			lagSeen = true
		}
	}
	if !lagSeen {
		t.Error("sensor never lagged the die meaningfully during the transient")
	}
}

func TestSensorQuantization(t *testing.T) {
	p := DefaultParams()
	p.SensorQuantC = 1.0
	m := New(p)
	for i := 0; i < 200; i++ {
		m.Step(1, constantPower())
	}
	v := m.SensorTemps()[power.SubCPU]
	if v != math.Trunc(v) {
		t.Errorf("quantized sensor reading %v not on 1 °C grid", v)
	}
}

func TestReset(t *testing.T) {
	m := New(DefaultParams())
	for i := 0; i < 100; i++ {
		m.Step(1, constantPower())
	}
	m.Reset()
	if m.Temps()[power.SubCPU] != 25 || m.SensorTemps()[power.SubCPU] != 25 {
		t.Error("Reset did not return to ambient")
	}
}

func TestTempsMax(t *testing.T) {
	temps := Temps{60, 40, 55, 45, 42}
	s, v := temps.Max()
	if s != power.SubCPU || v != 60 {
		t.Errorf("Max = %v %v", s, v)
	}
}

func TestNewPanicsOnBadParams(t *testing.T) {
	for name, mutate := range map[string]func(*Params){
		"zero resistance":     func(p *Params) { p.ResistanceCPerW[power.SubDisk] = 0 },
		"negative time const": func(p *Params) { p.TimeConstantSec[power.SubCPU] = -1 },
	} {
		p := DefaultParams()
		mutate(&p)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			New(p)
		}()
	}
}

func TestZeroSensorLagAllowed(t *testing.T) {
	p := DefaultParams()
	p.SensorLagSec = 0
	m := New(p) // must not panic; becomes effectively instant
	m.Step(1, constantPower())
	die := m.Temps()[power.SubCPU]
	sensor := m.SensorTemps()[power.SubCPU]
	if math.Abs(die-sensor) > p.SensorQuantC+1e-9 {
		t.Errorf("instant sensor should track die: %v vs %v", sensor, die)
	}
}

// Property: temperatures stay within [ambient, ambient + Pmax*R] for any
// bounded power sequence.
func TestTemperatureBounds(t *testing.T) {
	p := DefaultParams()
	f := func(seeds []uint8) bool {
		m := New(p)
		maxP := 0.0
		for _, b := range seeds {
			pw := power.Reading{}
			for i := range pw {
				pw[i] = float64(b%200) + float64(i)
				if pw[i] > maxP {
					maxP = pw[i]
				}
			}
			m.Step(float64(b%10)+0.1, pw)
		}
		for _, s := range power.Subsystems() {
			v := m.Temps()[s]
			if v < p.AmbientC-1e-9 || v > p.AmbientC+maxP*p.ResistanceCPerW[s]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: steady state is linear in power.
func TestSteadyStateLinear(t *testing.T) {
	m := New(DefaultParams())
	a := m.SteadyState(power.Reading{100, 10, 20, 30, 20})
	b := m.SteadyState(power.Reading{200, 20, 40, 60, 40})
	for _, s := range power.Subsystems() {
		gotRise := b[s] - 25
		wantRise := 2 * (a[s] - 25)
		if math.Abs(gotRise-wantRise) > 1e-9 {
			t.Errorf("%s: steady state not linear", s)
		}
	}
}
