// Package thermal extends the reproduction along the paper's motivating
// axis: thermal management. The paper argues that performance-counter
// power estimates beat temperature sensors for driving adaptation
// because "due to the thermal inertia in microprocessor packaging,
// detection of temperature changes may occur significantly later than
// the power events which caused them" — sensors lag, counters do not.
//
// Each subsystem is modeled as a first-order RC thermal network (the
// standard compact model, after Lee & Skadron's counter-based
// temperature work the paper cites): die temperature relaxes toward
// ambient plus P·R with time constant R·C. A separate sensor model adds
// the readout lag and quantization of real on-board sensors, so the
// package can quantify exactly how much earlier a counter-based power
// estimate sees a thermal event than the sensor that is supposed to
// protect against it.
package thermal

import (
	"fmt"
	"math"

	"trickledown/internal/power"
)

// Temps holds one temperature per subsystem, in degrees Celsius.
type Temps [power.NumSubsystems]float64

// Max returns the hottest subsystem and its temperature.
func (t Temps) Max() (power.Subsystem, float64) {
	best := power.SubCPU
	for _, s := range power.Subsystems() {
		if t[s] > t[best] {
			best = s
		}
	}
	return best, t[best]
}

// Params configures the thermal network.
type Params struct {
	// AmbientC is the inlet air temperature.
	AmbientC float64
	// ResistanceCPerW is each subsystem's junction-to-ambient thermal
	// resistance (°C per Watt).
	ResistanceCPerW Temps
	// TimeConstantSec is each subsystem's R·C product: how long the
	// package takes to cover ~63% of a temperature step.
	TimeConstantSec Temps
	// SensorLagSec is the first-order readout lag of the on-board
	// temperature sensors.
	SensorLagSec float64
	// SensorQuantC is the sensor readout quantization step.
	SensorQuantC float64
}

// DefaultParams models a 2006-era 4U server: CPU heatsinks with tens of
// seconds of inertia, DIMMs and bridges with less airflow, disks with
// large mechanical mass.
func DefaultParams() Params {
	return Params{
		AmbientC: 25,
		ResistanceCPerW: Temps{
			power.SubCPU:     0.27, // 165 W -> ~70 °C
			power.SubChipset: 1.25,
			power.SubMemory:  0.65,
			power.SubIO:      0.57,
			power.SubDisk:    0.77,
		},
		TimeConstantSec: Temps{
			power.SubCPU:     35,
			power.SubChipset: 50,
			power.SubMemory:  60,
			power.SubIO:      80,
			power.SubDisk:    300,
		},
		SensorLagSec: 12,
		SensorQuantC: 0.5,
	}
}

// Model integrates subsystem temperatures from power readings.
type Model struct {
	p      Params
	temps  Temps
	sensor Temps
}

// New returns a model at thermal equilibrium with ambient. It panics on
// non-positive resistances or time constants, which would make the
// integration meaningless.
func New(p Params) *Model {
	for _, s := range power.Subsystems() {
		if p.ResistanceCPerW[s] <= 0 {
			panic(fmt.Sprintf("thermal: non-positive resistance for %s", s))
		}
		if p.TimeConstantSec[s] <= 0 {
			panic(fmt.Sprintf("thermal: non-positive time constant for %s", s))
		}
	}
	if p.SensorLagSec <= 0 {
		p.SensorLagSec = 1e-9 // effectively instant
	}
	m := &Model{p: p}
	m.Reset()
	return m
}

// Reset returns every temperature to ambient.
func (m *Model) Reset() {
	for i := range m.temps {
		m.temps[i] = m.p.AmbientC
		m.sensor[i] = m.p.AmbientC
	}
}

// Step advances the network by dt seconds under the given rail power.
func (m *Model) Step(dt float64, pw power.Reading) {
	if dt <= 0 {
		return
	}
	for _, s := range power.Subsystems() {
		target := m.p.AmbientC + pw[s]*m.p.ResistanceCPerW[s]
		tau := m.p.TimeConstantSec[s]
		// Exact first-order update is stable for any dt; the linear form
		// would overshoot when dt > tau.
		alpha := 1 - expNeg(dt/tau)
		m.temps[s] += (target - m.temps[s]) * alpha
		// Sensor readout lags the die.
		sAlpha := 1 - expNeg(dt/m.p.SensorLagSec)
		m.sensor[s] += (m.temps[s] - m.sensor[s]) * sAlpha
	}
}

// Temps returns the actual subsystem temperatures.
func (m *Model) Temps() Temps { return m.temps }

// SensorTemps returns the lagged, quantized sensor readouts — what a
// thermal-management loop polling the board would see.
func (m *Model) SensorTemps() Temps {
	var out Temps
	q := m.p.SensorQuantC
	for i, v := range m.sensor {
		if q > 0 {
			steps := int(v / q)
			v = float64(steps) * q
		}
		out[i] = v
	}
	return out
}

// SteadyState returns the equilibrium temperatures for constant power —
// the instant prediction a counter-based power estimate enables without
// waiting for any thermal mass ("by using performance counters as a
// proxy for power consumption, it is possible to see the cause of
// thermal emergencies in a timelier manner").
func (m *Model) SteadyState(pw power.Reading) Temps {
	var out Temps
	for _, s := range power.Subsystems() {
		out[s] = m.p.AmbientC + pw[s]*m.p.ResistanceCPerW[s]
	}
	return out
}

// Params returns the model configuration.
func (m *Model) Params() Params { return m.p }

// expNeg computes e^-x.
func expNeg(x float64) float64 {
	return math.Exp(-x)
}
