package cpu

import (
	"math"
	"testing"
	"testing/quick"

	"trickledown/internal/pmu"
	"trickledown/internal/sim"
	"trickledown/internal/workload"
)

const testCycles = 2.8e6 // one 1 ms slice at 2.8 GHz

func busyDemand() *workload.Demand {
	return &workload.Demand{
		Active:          1,
		UopsPerCycle:    1.2,
		SpecActivity:    0.5,
		L2PerUop:        1.0,
		L3MissPerKuop:   1.0,
		DirtyEvictFrac:  0.4,
		Prefetchability: 0.5,
		TLBMissPerMuop:  40,
		UCPerMcycle:     2,
		WriteFrac:       0.35,
	}
}

func newProc() *Processor { return New(0, sim.NewRNG(1)) }

// programAll programs every event the model pipeline counts.
func programAll(t *testing.T, p *Processor) {
	t.Helper()
	events := []pmu.Event{
		pmu.EventCycles, pmu.EventHaltedCycles, pmu.EventFetchedUops,
		pmu.EventL3LoadMisses, pmu.EventL3Misses, pmu.EventTLBMisses,
		pmu.EventBusTransactions, pmu.EventBusTransactionsPrefetch,
		pmu.EventDMAOther, pmu.EventUncacheableAccesses,
	}
	for i, e := range events {
		if err := p.PMU().Program(i, e); err != nil {
			t.Fatal(err)
		}
	}
}

func TestIdleProcessorIsHalted(t *testing.T) {
	p := newProc()
	st := p.Step(testCycles, &workload.Demand{}, &workload.Demand{}, 0)
	if st.HaltedCycles != testCycles {
		t.Errorf("HaltedCycles = %v, want %v", st.HaltedCycles, testCycles)
	}
	if st.ActiveFrac != 0 {
		t.Errorf("ActiveFrac = %v", st.ActiveFrac)
	}
	if st.FetchedUops != 0 || st.TotalBusTx() != 0 {
		t.Errorf("idle produced work: %+v", st)
	}
}

func TestBusyProcessorUnhalted(t *testing.T) {
	p := newProc()
	st := p.Step(testCycles, busyDemand(), busyDemand(), 0.3)
	if st.HaltedCycles != 0 {
		t.Errorf("HaltedCycles = %v, want 0", st.HaltedCycles)
	}
	if st.ActiveFrac != 1 {
		t.Errorf("ActiveFrac = %v", st.ActiveFrac)
	}
	if st.FetchedUops <= 0 {
		t.Error("no uops fetched")
	}
}

func TestHalfActiveComposition(t *testing.T) {
	p := newProc()
	d := busyDemand()
	d.Active = 0.5
	st := p.Step(testCycles, d, d, 0)
	// 1-(1-.5)^2 = .75 active.
	if math.Abs(st.ActiveFrac-0.75) > 1e-12 {
		t.Errorf("ActiveFrac = %v, want 0.75", st.ActiveFrac)
	}
}

func TestSMTSharingReducesPerThreadThroughput(t *testing.T) {
	p := newProc()
	single := p.Step(testCycles, busyDemand(), &workload.Demand{}, 0)
	p2 := newProc()
	dual := p2.Step(testCycles, busyDemand(), busyDemand(), 0)
	if dual.FetchedUops <= single.FetchedUops {
		t.Error("two threads should fetch more than one in total")
	}
	if dual.FetchedUops >= 2*single.FetchedUops {
		t.Error("SMT sharing should make dual < 2x single")
	}
	want := 2 * single.FetchedUops * (1 - SMTPenalty)
	if math.Abs(dual.FetchedUops-want)/want > 0.01 {
		t.Errorf("dual uops = %v, want ~%v", dual.FetchedUops, want)
	}
}

func TestFetchWidthCap(t *testing.T) {
	p := newProc()
	d := busyDemand()
	d.UopsPerCycle = 3
	st := p.Step(testCycles, d, d, 0)
	if st.FetchedUops > testCycles*MaxUopsPerCycle {
		t.Errorf("fetched %v uops, above machine width", st.FetchedUops)
	}
}

func TestPrefetchCoverage(t *testing.T) {
	if c := PrefetchCoverage(0, 1); c != 0 {
		t.Errorf("coverage with zero prefetchability = %v", c)
	}
	lo := PrefetchCoverage(0.8, 0.1)
	hi := PrefetchCoverage(0.8, 0.9)
	if hi <= lo {
		t.Errorf("coverage must grow with bus utilization: %v <= %v", hi, lo)
	}
	if c := PrefetchCoverage(1, 1); c > 0.85 {
		t.Errorf("coverage cap exceeded: %v", c)
	}
	if c := PrefetchCoverage(0.5, -1); c < 0 {
		t.Errorf("coverage negative: %v", c)
	}
}

// The Figure 4 mechanism: at higher bus utilization, demand L3 misses
// fall while prefetch transactions rise.
func TestPrefetchShiftsMissesAtHighUtil(t *testing.T) {
	d := busyDemand()
	d.Prefetchability = 0.6
	pLow := newProc()
	pHigh := newProc()
	var lowMiss, lowPf, highMiss, highPf float64
	for i := 0; i < 200; i++ {
		sl := pLow.Step(testCycles, d, d, 0.1)
		sh := pHigh.Step(testCycles, d, d, 0.9)
		lowMiss += sl.L3LoadMisses
		lowPf += sl.PrefetchBusTx
		highMiss += sh.L3LoadMisses
		highPf += sh.PrefetchBusTx
	}
	if highMiss >= lowMiss {
		t.Errorf("demand misses should fall with util: %v >= %v", highMiss, lowMiss)
	}
	if highPf <= lowPf {
		t.Errorf("prefetches should rise with util: %v <= %v", highPf, lowPf)
	}
}

func TestPMUCountsMatchStats(t *testing.T) {
	p := newProc()
	programAll(t, p)
	var sum SliceStats
	for i := 0; i < 1000; i++ {
		st := p.Step(testCycles, busyDemand(), busyDemand(), 0.4)
		sum.Cycles += st.Cycles
		sum.FetchedUops += st.FetchedUops
		sum.L3LoadMisses += st.L3LoadMisses
		sum.DemandBusTx += st.DemandBusTx
		sum.PrefetchBusTx += st.PrefetchBusTx
	}
	cyc, _ := p.PMU().ReadEvent(pmu.EventCycles)
	if math.Abs(float64(cyc)-sum.Cycles) > 1e-6*sum.Cycles {
		t.Errorf("PMU cycles %d vs stats %v", cyc, sum.Cycles)
	}
	uops, _ := p.PMU().ReadEvent(pmu.EventFetchedUops)
	if rel := math.Abs(float64(uops)-sum.FetchedUops) / sum.FetchedUops; rel > 0.001 {
		t.Errorf("PMU uops %d vs stats %v", uops, sum.FetchedUops)
	}
	bus, _ := p.PMU().ReadEvent(pmu.EventBusTransactions)
	wantBus := sum.DemandBusTx + sum.PrefetchBusTx
	if rel := math.Abs(float64(bus)-wantBus) / wantBus; rel > 0.01 {
		t.Errorf("PMU bus tx %d vs stats %v", bus, wantBus)
	}
}

func TestObserveDMA(t *testing.T) {
	p := newProc()
	if err := p.PMU().Program(0, pmu.EventDMAOther); err != nil {
		t.Fatal(err)
	}
	p.ObserveDMA(500)
	p.ObserveDMA(0)
	p.ObserveDMA(-5) // ignored
	got, _ := p.PMU().ReadEvent(pmu.EventDMAOther)
	if got != 500 {
		t.Errorf("DMA count = %d, want 500", got)
	}
}

func TestCountsScaleWithDemand(t *testing.T) {
	// Doubling the miss rate should roughly double bus traffic.
	d1 := busyDemand()
	d1.Prefetchability = 0
	d2 := *d1
	d2.L3MissPerKuop *= 2
	p1, p2 := newProc(), newProc()
	var tx1, tx2 float64
	for i := 0; i < 500; i++ {
		tx1 += p1.Step(testCycles, d1, &workload.Demand{}, 0).TotalBusTx()
		tx2 += p2.Step(testCycles, &d2, &workload.Demand{}, 0).TotalBusTx()
	}
	ratio := tx2 / tx1
	if ratio < 1.7 || ratio > 2.1 {
		t.Errorf("bus tx ratio = %v, want ~2 (excl. constant UC term)", ratio)
	}
}

func TestWriteFracBlends(t *testing.T) {
	p := newProc()
	dr := busyDemand()
	dr.WriteFrac = 0
	dw := busyDemand()
	dw.WriteFrac = 1
	st := p.Step(testCycles, dr, dw, 0)
	if st.WriteFrac <= 0.2 || st.WriteFrac >= 0.8 {
		t.Errorf("blended WriteFrac = %v, want mid-range", st.WriteFrac)
	}
}

// Property: for any demand, derived stats are non-negative and halted +
// active cycles account for the whole slice.
func TestStatsInvariants(t *testing.T) {
	r := sim.NewRNG(5)
	f := func(seed uint64) bool {
		rr := sim.NewRNG(seed)
		d := workload.Demand{
			Active:          rr.Float64(),
			UopsPerCycle:    rr.Float64() * 3,
			SpecActivity:    rr.Float64() * 2,
			L2PerUop:        rr.Float64() * 2,
			L3MissPerKuop:   rr.Float64() * 5,
			DirtyEvictFrac:  rr.Float64(),
			Prefetchability: rr.Float64(),
			TLBMissPerMuop:  rr.Float64() * 200,
			UCPerMcycle:     rr.Float64() * 50,
			WriteFrac:       rr.Float64(),
		}
		p := New(0, rr)
		st := p.Step(testCycles, &d, &d, rr.Float64())
		if st.HaltedCycles < 0 || st.HaltedCycles > testCycles {
			return false
		}
		if math.Abs((st.HaltedCycles+st.ActiveFrac*testCycles)-testCycles) > 1 {
			return false
		}
		for _, v := range []float64{
			st.FetchedUops, st.SpecUops, st.L2Accesses, st.L3LoadMisses,
			st.L3Misses, st.Writebacks, st.TLBMisses, st.UCAccesses,
			st.DemandBusTx, st.PrefetchBusTx,
		} {
			if v < 0 || math.IsNaN(v) {
				return false
			}
		}
		return st.WriteFrac >= 0 && st.WriteFrac <= 1
	}
	_ = r
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestProcessorID(t *testing.T) {
	p := New(3, sim.NewRNG(1))
	if p.ID() != 3 {
		t.Errorf("ID = %d", p.ID())
	}
}

func TestThrottleClampAndEffect(t *testing.T) {
	p := newProc()
	p.SetThrottle(0.5)
	if p.Throttle() != 0.5 {
		t.Errorf("Throttle = %v", p.Throttle())
	}
	p.SetThrottle(5)
	if p.Throttle() != MaxThrottle {
		t.Errorf("Throttle clamp = %v", p.Throttle())
	}
	p.SetThrottle(-1)
	if p.Throttle() != 0 {
		t.Errorf("negative Throttle = %v", p.Throttle())
	}
	p.SetThrottle(0.8)
	st := p.Step(testCycles, busyDemand(), busyDemand(), 0)
	// Duty 0.2 per thread: active frac = 1-(0.8)^2 = 0.36.
	if math.Abs(st.ActiveFrac-0.36) > 1e-9 {
		t.Errorf("throttled ActiveFrac = %v, want 0.36", st.ActiveFrac)
	}
}

func TestFreqScaleClampAndEffect(t *testing.T) {
	p := newProc()
	if p.FreqScale() != 1 {
		t.Errorf("default FreqScale = %v", p.FreqScale())
	}
	p.SetFreqScale(0.1)
	if p.FreqScale() != MinFreqScale {
		t.Errorf("FreqScale floor = %v", p.FreqScale())
	}
	p.SetFreqScale(3)
	if p.FreqScale() != 1 {
		t.Errorf("FreqScale ceiling = %v", p.FreqScale())
	}
	p.SetFreqScale(0.5)
	st := p.Step(testCycles, busyDemand(), &workload.Demand{}, 0)
	if st.Cycles != testCycles*0.5 {
		t.Errorf("scaled Cycles = %v, want %v", st.Cycles, testCycles*0.5)
	}
	if st.FreqScale != 0.5 {
		t.Errorf("stats FreqScale = %v", st.FreqScale)
	}
}
