// Package cpu models the Pentium IV Xeon processors of the paper's
// target server: four physical processors with two hardware threads
// each, a shared fetch engine, an L1/L2/L3 cache hierarchy, TLBs, a
// hardware prefetcher, and HLT clock gating ("when the Pentium IV
// processor is idle, it saves power by gating the clock signal to
// portions of itself", dropping idle power from ~36 W to ~9 W).
//
// The model is behavioral, not cycle-accurate: each simulation slice it
// converts the demands of its two hardware threads into the
// architectural event counts the paper's models consume, and feeds them
// into the processor's PMU.
package cpu

import (
	"math"

	"trickledown/internal/pmu"
	"trickledown/internal/sim"
	"trickledown/internal/workload"
)

// SMTPenalty is the per-thread fetch-throughput reduction when the
// sibling hardware thread is active: the P4's trace cache and fetch
// bandwidth are shared between SMT threads.
const SMTPenalty = 0.28

// MaxUopsPerCycle is the P4 fetch width ("the Pentium IV can fetch three
// instructions/cycle").
const MaxUopsPerCycle = 3.0

// prefetchWaste is the fraction of useless (not demanded) lines the
// hardware prefetcher fetches on top of covered demand misses.
const prefetchWaste = 0.15

// SliceStats summarizes one processor's activity over one slice. Counter
// values are also pushed into the PMU; the float aggregates here feed the
// mechanistic ground-truth power model.
type SliceStats struct {
	// Cycles is total core cycles in the slice; HaltedCycles the subset
	// spent clock gated.
	Cycles       float64
	HaltedCycles float64
	// FetchedUops is micro-operations fetched (demand path, the counter
	// the paper's Eq. 1 uses).
	FetchedUops float64
	// SpecUops is speculative/replay issue activity that consumes power
	// but is not part of the fetched-uop count — the paper's explanation
	// for mcf's Eq. 1 underestimate.
	SpecUops float64
	// L2Accesses is L2 cache activity (a dynamic-power term).
	L2Accesses float64
	// L3LoadMisses is demand load misses (Eq. 2's input).
	L3LoadMisses float64
	// L3Misses adds store/evict-triggered misses.
	L3Misses float64
	// Writebacks is dirty-line writeback bus transactions.
	Writebacks float64
	// TLBMisses is combined ITLB+DTLB misses.
	TLBMisses float64
	// UCAccesses is uncacheable (memory-mapped I/O) accesses.
	UCAccesses float64
	// DemandBusTx is this processor's demand bus transactions (misses +
	// writebacks + uncacheable).
	DemandBusTx float64
	// PrefetchBusTx is bus transactions initiated by the prefetcher.
	PrefetchBusTx float64
	// WriteFrac is the write fraction of this processor's memory
	// traffic this slice.
	WriteFrac float64
	// MemLocality is the transaction-weighted DRAM row-buffer locality
	// of this processor's traffic.
	MemLocality float64
	// ActiveFrac is 1 - HaltedCycles/Cycles.
	ActiveFrac float64
	// FreqScale is the DVFS operating point the slice ran at.
	FreqScale float64
}

// TotalBusTx returns all bus transactions the processor initiated.
func (s SliceStats) TotalBusTx() float64 { return s.DemandBusTx + s.PrefetchBusTx }

// Processor is one physical CPU with two hardware threads.
type Processor struct {
	id        int
	pm        *pmu.PMU
	rng       *sim.RNG
	throttle  float64
	freqScale float64
}

// New returns processor id with a fresh PMU and a private random stream
// split from parent.
func New(id int, parent *sim.RNG) *Processor {
	return &Processor{id: id, pm: pmu.New(), rng: parent.Split(), freqScale: 1}
}

// MinFreqScale is the lowest DVFS operating point, matching the roughly
// 2:1 frequency range of the era's server parts.
const MinFreqScale = 0.5

// SetFreqScale sets the processor's DVFS operating point as a fraction
// of nominal frequency, clamped to [MinFreqScale, 1]. Scaling shows up
// architecturally as fewer cycles per wall-clock interval — which the
// per-cycle-normalized models observe through the cycles counter — and
// physically as reduced dynamic power via frequency and voltage
// (internal/power's VoltageScale).
func (p *Processor) SetFreqScale(scale float64) {
	if scale < MinFreqScale {
		scale = MinFreqScale
	}
	if scale > 1 {
		scale = 1
	}
	p.freqScale = scale
}

// FreqScale returns the current DVFS operating point.
func (p *Processor) FreqScale() float64 { return p.freqScale }

// ID returns the processor number.
func (p *Processor) ID() int { return p.id }

// PMU returns the processor's counter file.
func (p *Processor) PMU() *pmu.PMU { return p.pm }

// MaxThrottle bounds SetThrottle: the OS always keeps some duty cycle so
// the machine stays responsive.
const MaxThrottle = 0.9

// SetThrottle sets Kotla-style instruction throttling: the OS idles the
// processor for the given fraction of each slice regardless of demand
// (duty-cycle modulation). Because throttling manifests as halted
// cycles, it is visible to the Equation 1 model through the same
// counter it already uses — which is what makes counter-driven power
// capping a closed loop. Values are clamped to [0, MaxThrottle].
func (p *Processor) SetThrottle(frac float64) {
	if frac < 0 {
		frac = 0
	}
	if frac > MaxThrottle {
		frac = MaxThrottle
	}
	p.throttle = frac
}

// Throttle returns the current throttle fraction.
func (p *Processor) Throttle() float64 { return p.throttle }

// PrefetchCoverage returns the fraction of would-be demand misses the
// hardware prefetcher converts into prefetch transactions, given the
// stream-likeness of the access pattern and the current bus utilization.
// Streaming detection improves as the memory system is driven harder,
// which is what makes mcf's L3 demand misses *decline* while total
// traffic grows (the paper's Figure 4 effect).
func PrefetchCoverage(prefetchability, busUtil float64) float64 {
	cov := prefetchability * (0.25 + 0.9*busUtil)
	if cov > 0.85 {
		cov = 0.85
	}
	if cov < 0 {
		cov = 0
	}
	return cov
}

// Step advances the processor one slice. cycles is the slice's core cycle
// count; d0 and d1 are the demands of its two hardware threads (read,
// never written — callers may pass long-lived buffers); busUtil is the
// previous slice's front-side-bus utilization (the prefetcher's feedback
// input). Event counts are accumulated into the PMU and a SliceStats
// summary is returned. Demands are passed by pointer because Step runs
// once per processor per slice and the struct copies dominated the whole
// simulator's CPU profile.
func (p *Processor) Step(cycles float64, d0, d1 *workload.Demand, busUtil float64) SliceStats {
	var st SliceStats
	// DVFS: the slice contains fewer core cycles at a reduced clock.
	cycles *= p.freqScale
	st.Cycles = cycles
	st.FreqScale = p.freqScale
	// Instruction throttling idles the processor for part of the slice
	// regardless of demand. The scaled activity lives in locals so the
	// caller's demand structs stay untouched.
	a0, a1 := d0.Active, d1.Active
	if p.throttle > 0 {
		duty := 1 - p.throttle
		a0 *= duty
		a1 *= duty
	}
	// The processor is halted only when both threads are idle; thread
	// activity overlaps randomly, so the unhalted fraction composes as
	// independent events.
	act := 1 - (1-a0)*(1-a1)
	st.ActiveFrac = act
	st.HaltedCycles = cycles * (1 - act)

	var totalMemTx, writeTx, locTx float64
	for k := 0; k < 2; k++ {
		d, dAct, sibAct := d0, a0, a1
		if k == 1 {
			d, dAct, sibAct = d1, a1, a0
		}
		if dAct == 0 {
			continue
		}
		// SMT fetch sharing: the sibling steals bandwidth while it runs.
		share := 1 - SMTPenalty*sibAct
		uops := cycles * dAct * d.UopsPerCycle * share
		st.FetchedUops += uops
		st.SpecUops += cycles * dAct * d.SpecActivity * share
		st.L2Accesses += uops * d.L2PerUop

		misses := uops * d.L3MissPerKuop / 1000
		cov := PrefetchCoverage(d.Prefetchability, busUtil)
		demandMisses := misses * (1 - cov)
		prefetch := misses * cov * (1 + prefetchWaste)
		writebacks := misses * d.DirtyEvictFrac

		st.L3LoadMisses += demandMisses * (1 - 0.3*d.WriteFrac)
		st.L3Misses += demandMisses
		st.Writebacks += writebacks
		st.PrefetchBusTx += prefetch
		st.TLBMisses += uops * d.TLBMissPerMuop / 1e6
		st.UCAccesses += cycles * dAct * d.UCPerMcycle / 1e6

		tx := demandMisses + writebacks + prefetch
		totalMemTx += tx
		writeTx += tx * d.WriteFrac
		locTx += tx * d.MemLocality
	}
	// Cap aggregate fetch at the machine width.
	if max := cycles * MaxUopsPerCycle; st.FetchedUops > max {
		st.FetchedUops = max
	}
	st.DemandBusTx = st.L3LoadMisses + st.Writebacks + st.UCAccesses
	if totalMemTx > 0 {
		st.WriteFrac = writeTx / totalMemTx
		st.MemLocality = locTx / totalMemTx
	}
	p.jitterCounts(&st)
	p.observe(&st)
	return st
}

// jitterCounts applies Poisson-style sampling noise to the discrete
// event counts, so 1 ms slices show realistic shot noise without
// simulating individual events.
func (p *Processor) jitterCounts(st *SliceStats) {
	st.L3LoadMisses = p.noisy(st.L3LoadMisses)
	st.L3Misses = p.noisy(st.L3Misses)
	st.Writebacks = p.noisy(st.Writebacks)
	st.PrefetchBusTx = p.noisy(st.PrefetchBusTx)
	st.TLBMisses = p.noisy(st.TLBMisses)
	st.UCAccesses = p.noisy(st.UCAccesses)
	st.DemandBusTx = st.L3LoadMisses + st.Writebacks + st.UCAccesses
}

// noisy perturbs an expected count with approximately Poisson noise.
func (p *Processor) noisy(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	if mean < 50 {
		return float64(p.rng.Poisson(mean))
	}
	v := p.rng.Norm(mean, math.Sqrt(mean))
	if v < 0 {
		return 0
	}
	return v
}

// observe pushes the slice's counts into the PMU.
func (p *Processor) observe(st *SliceStats) {
	p.pm.Observe(pmu.EventCycles, uint64(st.Cycles))
	p.pm.Observe(pmu.EventHaltedCycles, uint64(st.HaltedCycles))
	p.pm.Observe(pmu.EventFetchedUops, uint64(st.FetchedUops))
	p.pm.Observe(pmu.EventL3LoadMisses, uint64(st.L3LoadMisses))
	p.pm.Observe(pmu.EventL3Misses, uint64(st.L3Misses+st.Writebacks))
	p.pm.Observe(pmu.EventTLBMisses, uint64(st.TLBMisses))
	p.pm.Observe(pmu.EventUncacheableAccesses, uint64(st.UCAccesses))
	p.pm.Observe(pmu.EventBusTransactions, uint64(st.TotalBusTx()))
	p.pm.Observe(pmu.EventBusTransactionsPrefetch, uint64(st.PrefetchBusTx))
}

// ObserveDMA records bus transactions that did not originate in this
// processor (DMA and other-processor traffic), the P4's combined
// DMA/other metric.
func (p *Processor) ObserveDMA(tx float64) {
	if tx > 0 {
		p.pm.Observe(pmu.EventDMAOther, uint64(tx))
	}
}
