// Package machine assembles the full target server of the paper — four
// SMT processors, front-side bus and DRAM, chipset, I/O subsystem, two
// SCSI disks, the OS layer — together with the measurement apparatus:
// mechanistic ground-truth power on every rail feeding the DAQ, and a
// perfctr sampler reading the PMUs at 1 Hz with the serial sync pulse
// joining the two.
//
// A Server runs one workload (with the paper's staggered multi-instance
// placement) and yields the aligned power/counter dataset that the
// modeling layer (internal/core) trains and validates on.
package machine

import (
	"context"
	"fmt"
	"math"
	"time"

	"trickledown/internal/align"
	"trickledown/internal/chipset"
	"trickledown/internal/cpu"
	"trickledown/internal/daq"
	"trickledown/internal/disk"
	"trickledown/internal/iobus"
	"trickledown/internal/mem"
	"trickledown/internal/osmodel"
	"trickledown/internal/perfctr"
	"trickledown/internal/pmu"
	"trickledown/internal/power"
	"trickledown/internal/sim"
	"trickledown/internal/workload"
)

// Config describes the hardware build of the server.
type Config struct {
	// NumCPUs and ThreadsPerCPU size the SMP (the paper: 4 x 2).
	NumCPUs       int
	ThreadsPerCPU int
	// NumDisks sizes the SCSI array (the paper: 2).
	NumDisks int
	// CoreHz and Slice set the simulation time base.
	CoreHz float64
	Slice  time.Duration
	// SamplePeriodSec is the counter sampling period (the paper: 1 s).
	SamplePeriodSec float64
	// Seed makes the whole run reproducible.
	Seed uint64
	// DAQ configures the acquisition hardware.
	DAQ daq.Config
	// DiskPolicy optionally enables disk power management (spindown);
	// the zero value reproduces the paper's always-spinning SCSI disks.
	DiskPolicy disk.PowerPolicy
	// Power selects the machine generation's ground-truth power profile;
	// nil means the paper's server (power.ServerProfile).
	Power *power.Profile
}

// DefaultConfig is the paper's server.
func DefaultConfig() Config {
	return Config{
		NumCPUs:         4,
		ThreadsPerCPU:   2,
		NumDisks:        2,
		CoreHz:          sim.DefaultCoreHz,
		Slice:           sim.DefaultSlice,
		SamplePeriodSec: 1.0,
		Seed:            1,
		DAQ:             daq.DefaultConfig(),
	}
}

// job binds a workload instance to a hardware thread with its staggered
// start time.
type job struct {
	gen   workload.Generator
	start float64
}

// railDrift models the slow wander of each rail's consumption with
// temperature and regulator state — the reason even a perfectly idle
// machine shows tenths-of-a-Watt standard deviation in the paper's
// Table 2. Each rail is an independent Ornstein-Uhlenbeck process; the
// chipset rail is excluded because its (larger) domain-coupling drift
// lives in internal/chipset.
type railDrift struct {
	rng   *sim.RNG
	state power.Reading
	sigma power.Reading
	tau   float64
}

func newRailDrift(parent *sim.RNG) *railDrift {
	return &railDrift{
		rng: parent.Split(),
		sigma: power.Reading{
			power.SubCPU:    0.35,
			power.SubMemory: 0.16,
			power.SubIO:     0.12,
			power.SubDisk:   0.025,
		},
		tau: 25,
	}
}

// step advances the drift by one slice and returns the current offsets.
func (d *railDrift) step(sliceSec float64) power.Reading {
	k := math.Sqrt(2 * sliceSec / d.tau)
	for i := range d.state {
		if d.sigma[i] == 0 {
			continue
		}
		d.state[i] += -d.state[i]/d.tau*sliceSec + d.sigma[i]*k*d.rng.Norm(0, 1)
	}
	return d.state
}

// snoopShare is the fraction of a processor's demand bus transactions
// that appear as snoop traffic in its peers' DMA/other counters — the
// P4 counter ambiguity the paper flags ("all memory bus accesses that do
// not originate within a processor are combined into a single metric").
const snoopShare = 0.05

// CrashInjector lets a chaos harness kill the machine mid-run: a crash
// turns RunContext into an error return (the node died), a panic unwinds
// the stepping goroutine itself (exercising worker-level recovery in the
// layers above, internal/pool). Implementations must be deterministic in
// the simulated time so chaos runs stay reproducible.
type CrashInjector interface {
	// CrashErr is consulted every slice; the first non-nil return crashes
	// the machine: the current run stops (RunContext returns this error)
	// and the machine stays dead for the rest of simulated time.
	CrashErr(nowSec float64) error
	// PanicAt is consulted every slice; returning true panics the
	// stepping goroutine with the machine left between slices.
	PanicAt(nowSec float64) bool
}

// SliceInfo is handed to per-slice observers (examples and tests); all
// values describe the slice just computed.
type SliceInfo struct {
	Seconds float64
	Truth   power.Reading
	BusUtil float64
}

// Server is the assembled machine.
type Server struct {
	cfg    Config
	spec   workload.Spec
	clock  *sim.Clock
	engine *sim.Engine
	rng    *sim.RNG

	procs   []*cpu.Processor
	memory  *mem.Memory
	chip    *chipset.Chipset
	io      *iobus.Subsystem
	ctl     *disk.Controller
	os      *osmodel.OS
	dq      *daq.DAQ
	sampler *perfctr.Sampler

	jobs    []job
	demands []workload.Demand
	jobRNGs []*sim.RNG
	env     workload.Env
	busUtil float64

	drift   *railDrift
	profile power.Profile
	lastCPU []cpu.SliceStats

	truthSum power.Reading
	truthN   int64

	onSlice []func(SliceInfo)

	crash     CrashInjector
	crashErr  error
	abortSlot func() // cancels the in-flight RunContext after a crash
}

// Placement pins one workload instance to a hardware thread with a
// start time — the unit of heterogeneous (consolidated) scheduling.
type Placement struct {
	// Workload is a registered workload name.
	Workload string
	// Thread is the hardware thread index (0 .. NumCPUs*ThreadsPerCPU-1);
	// threads 2i and 2i+1 share processor i.
	Thread int
	// StartSec delays the instance's start.
	StartSec float64
	// Spec, when non-nil, supplies the workload spec directly instead
	// of resolving Workload through the registry — the hook that lets
	// unregistered generators (trace replays, tenant cohorts, wrapped
	// recorders) ride the unchanged machine/cluster constructors.
	// Instance counting and chipset-bias dedup key on Spec.Name.
	Spec *workload.Spec
}

// New builds a server running the named workload. The workload's
// instances are placed on hardware threads in order with the spec's
// staggered starts.
func New(cfg Config, spec workload.Spec) (*Server, error) {
	placements := make([]Placement, spec.Instances)
	for i := 0; i < spec.Instances; i++ {
		placements[i] = Placement{
			Workload: spec.Name,
			Thread:   i,
			StartSec: float64(i) * spec.StaggerSec,
		}
	}
	s, err := newServer(cfg, placements, func(name string) (workload.Spec, error) {
		if name == spec.Name {
			return spec, nil
		}
		return workload.ByName(name)
	})
	if err != nil {
		return nil, err
	}
	s.spec = spec
	return s, nil
}

// NewMixed builds a server running a heterogeneous set of workload
// instances — the consolidation scenario the paper's ensemble-management
// motivation implies. The chipset's workload-dependent domain bias is
// averaged over the distinct placed workloads.
func NewMixed(cfg Config, placements []Placement) (*Server, error) {
	if len(placements) == 0 {
		return nil, fmt.Errorf("machine: no placements")
	}
	return newServer(cfg, placements, workload.ByName)
}

// newServer assembles the machine and places instances.
func newServer(cfg Config, placements []Placement, lookup func(string) (workload.Spec, error)) (*Server, error) {
	if cfg.NumCPUs <= 0 || cfg.ThreadsPerCPU <= 0 {
		return nil, fmt.Errorf("machine: invalid CPU configuration %d x %d", cfg.NumCPUs, cfg.ThreadsPerCPU)
	}
	if cfg.NumDisks <= 0 {
		return nil, fmt.Errorf("machine: need at least one disk")
	}
	threads := cfg.NumCPUs * cfg.ThreadsPerCPU
	if len(placements) > threads {
		return nil, fmt.Errorf("machine: %d instances exceed %d hardware threads", len(placements), threads)
	}
	rng := sim.NewRNG(cfg.Seed)
	s := &Server{
		cfg:     cfg,
		clock:   sim.NewClock(cfg.Slice, cfg.CoreHz),
		rng:     rng,
		memory:  mem.New(),
		chip:    chipset.New(rng),
		io:      iobus.New(cfg.NumCPUs),
		ctl:     disk.NewController(cfg.NumDisks, rng),
		demands: make([]workload.Demand, threads),
	}
	s.ctl.SetPowerPolicy(cfg.DiskPolicy)
	s.profile = power.ServerProfile()
	if cfg.Power != nil {
		if err := cfg.Power.Validate(); err != nil {
			return nil, err
		}
		s.profile = *cfg.Power
	}
	s.engine = sim.NewEngine(s.clock)
	for i := 0; i < cfg.NumCPUs; i++ {
		s.procs = append(s.procs, cpu.New(i, rng))
	}
	s.lastCPU = make([]cpu.SliceStats, cfg.NumCPUs)
	s.os = osmodel.New(osmodel.DefaultConfig(cfg.NumCPUs), s.io, s.ctl, rng)
	s.dq = daq.New(cfg.DAQ, rng)
	s.drift = newRailDrift(rng)

	pmus := make([]*pmu.PMU, cfg.NumCPUs)
	for i, p := range s.procs {
		pmus[i] = p.PMU()
	}
	sampler, err := perfctr.NewSampler(cfg.SamplePeriodSec, pmus, s.io.APIC, rng)
	if err != nil {
		return nil, err
	}
	s.sampler = sampler
	s.sampler.AttachUtilSource(s.os)
	s.sampler.AttachThreadUtilSource(s.os.ThreadBusySource())
	// The serial sync byte: every counter sample closes a DAQ window.
	s.sampler.OnSample(s.dq.SyncPulse)

	// Place the instances; the chipset domain bias averages over the
	// distinct workloads present.
	s.jobs = make([]job, threads)
	s.jobRNGs = make([]*sim.RNG, threads)
	for i := 0; i < threads; i++ {
		s.jobRNGs[i] = rng.Split()
	}
	seen := map[string]bool{}
	var bias float64
	instanceOf := map[string]int{}
	for _, pl := range placements {
		var spec workload.Spec
		if pl.Spec != nil {
			spec = *pl.Spec
			if spec.Name == "" || spec.Make == nil {
				return nil, fmt.Errorf("machine: inline spec for thread %d needs a name and a Make", pl.Thread)
			}
		} else {
			var err error
			spec, err = lookup(pl.Workload)
			if err != nil {
				return nil, err
			}
		}
		if pl.Thread < 0 || pl.Thread >= threads {
			return nil, fmt.Errorf("machine: thread %d out of range [0,%d)", pl.Thread, threads)
		}
		if s.jobs[pl.Thread].gen != nil {
			return nil, fmt.Errorf("machine: thread %d placed twice", pl.Thread)
		}
		if pl.StartSec < 0 {
			return nil, fmt.Errorf("machine: negative start for thread %d", pl.Thread)
		}
		inst := instanceOf[spec.Name]
		instanceOf[spec.Name]++
		s.jobs[pl.Thread] = job{
			gen:   spec.Make(inst, rng.Split()),
			start: pl.StartSec,
		}
		if !seen[spec.Name] {
			seen[spec.Name] = true
			bias += spec.ChipsetDomainBias
		}
	}
	s.chip.SetDomainBias(bias / float64(len(seen)))
	s.engine.Register(sim.ComponentFunc(s.step))
	return s, nil
}

// SetFreqScale sets one processor's DVFS operating point (see
// cpu.Processor.SetFreqScale); cpuID is range checked.
func (s *Server) SetFreqScale(cpuID int, scale float64) error {
	if cpuID < 0 || cpuID >= len(s.procs) {
		return fmt.Errorf("machine: no processor %d", cpuID)
	}
	s.procs[cpuID].SetFreqScale(scale)
	return nil
}

// SetFreqScaleAll sets every processor's DVFS operating point.
func (s *Server) SetFreqScaleAll(scale float64) {
	for _, p := range s.procs {
		p.SetFreqScale(scale)
	}
}

// FreqScale returns processor cpuID's operating point (1 if out of
// range).
func (s *Server) FreqScale(cpuID int) float64 {
	if cpuID < 0 || cpuID >= len(s.procs) {
		return 1
	}
	return s.procs[cpuID].FreqScale()
}

// SetThrottle applies instruction throttling to one processor (see
// cpu.Processor.SetThrottle); cpuID is range checked.
func (s *Server) SetThrottle(cpuID int, frac float64) error {
	if cpuID < 0 || cpuID >= len(s.procs) {
		return fmt.Errorf("machine: no processor %d", cpuID)
	}
	s.procs[cpuID].SetThrottle(frac)
	return nil
}

// SetThrottleAll applies the same throttle to every processor.
func (s *Server) SetThrottleAll(frac float64) {
	for _, p := range s.procs {
		p.SetThrottle(frac)
	}
}

// Throttle returns processor cpuID's throttle fraction (0 if out of
// range).
func (s *Server) Throttle(cpuID int) float64 {
	if cpuID < 0 || cpuID >= len(s.procs) {
		return 0
	}
	return s.procs[cpuID].Throttle()
}

// SetCrashInjector installs a crash/panic injector consulted every slice
// (nil restores a machine that only dies when told to by physics). Call
// it before the run.
func (s *Server) SetCrashInjector(ci CrashInjector) { s.crash = ci }

// CrashErr returns the error this machine died with, or nil while it is
// still running.
func (s *Server) CrashErr() error { return s.crashErr }

// OnSlice registers an observer called after every slice.
func (s *Server) OnSlice(fn func(SliceInfo)) {
	if fn != nil {
		s.onSlice = append(s.onSlice, fn)
	}
}

// step advances the whole machine one slice, in data-flow order:
// demand -> OS/IO path -> processors -> memory bus -> ground truth ->
// acquisition -> sampling.
func (s *Server) step(c *sim.Clock) {
	now := c.Seconds()
	sliceSec := c.SliceSeconds()

	// 0. Chaos hooks. A crashed machine freezes: no demand, no power, no
	// samples — the measurement chain sees the node disappear.
	if s.crashErr != nil {
		return
	}
	if s.crash != nil {
		if s.crash.PanicAt(now) {
			panic(fmt.Sprintf("machine: injected panic at %.3fs", now))
		}
		if err := s.crash.CrashErr(now); err != nil {
			s.crashErr = err
			if s.abortSlot != nil {
				s.abortSlot()
			}
			return
		}
	}

	// 1. Thread demand.
	for i := range s.jobs {
		j := s.jobs[i]
		if j.gen == nil || now < j.start {
			s.demands[i] = workload.Demand{}
			continue
		}
		s.demands[i] = j.gen.Demand(now-j.start, s.env, s.jobRNGs[i])
	}

	// 2. OS and the I/O path (page cache, disks, DMA, interrupts).
	osRes := s.os.Step(c, s.demands)

	// 3. Processors (prefetcher feedback uses last slice's bus
	// utilization, the paper's streaming-detection effect).
	cycles := c.CyclesPerSlice()
	var cpuTruth float64
	var tr mem.Traffic
	var writeTx, locTx, classTx float64
	for i, p := range s.procs {
		st := p.Step(cycles, &s.demands[2*i], &s.demands[2*i+1], s.busUtil)
		s.lastCPU[i] = st
		cpuTruth += s.profile.CPU(st)
		tr.CPUTx += st.DemandBusTx
		tr.PrefetchTx += st.PrefetchBusTx
		writeTx += st.TotalBusTx() * st.WriteFrac
		locTx += st.TotalBusTx() * st.MemLocality
		classTx += st.TotalBusTx()
	}
	if classTx > 0 {
		tr.WriteFrac = writeTx / classTx
		tr.Locality = locTx / classTx
	} else {
		tr.Locality = 0.5
	}
	tr.DMATx = osRes.DMA.BusTx
	if osRes.DMA.Bytes > 0 {
		tr.DMAWriteFrac = osRes.DMA.WriteBytes / osRes.DMA.Bytes
	}

	// 4. Memory bus and DRAM.
	memStats := s.memory.Step(sliceSec, tr)
	s.busUtil = memStats.Util
	// Non-self transactions are visible to every processor's PMU. The
	// P4's DMA/other metric "cannot distinguish between DMA and
	// processor coherency traffic": each processor also counts the
	// snoop traffic of its peers, a contaminant that degrades DMA-based
	// models while interrupt counts stay clean (part of why the paper's
	// selection lands on interrupts for disk and I/O).
	var demandSum float64
	for _, st := range s.lastCPU {
		demandSum += st.DemandBusTx
	}
	for i, p := range s.procs {
		coherence := snoopShare * (demandSum - s.lastCPU[i].DemandBusTx)
		p.ObserveDMA(memStats.DMATx + coherence)
	}

	// 5. Chipset.
	chipStats := s.chip.Step(sliceSec, memStats.Util)

	// 6. Ground truth on the five rails.
	truth := power.Reading{
		power.SubCPU:     cpuTruth,
		power.SubChipset: s.profile.Chipset(chipStats),
		power.SubMemory:  s.profile.Memory(memStats, sliceSec),
		power.SubIO:      s.profile.IO(osRes.DMA, float64(osRes.DeviceInts), sliceSec),
		power.SubDisk:    s.profile.Disk(osRes.Disk, sliceSec, s.cfg.NumDisks),
	}
	for i, d := range s.drift.step(sliceSec) {
		truth[i] += d
	}
	for i, w := range truth {
		s.truthSum[i] += w
	}
	s.truthN++

	// 7. Acquisition and counter sampling.
	s.dq.Acquire(sliceSec, truth)
	s.sampler.Step(c)

	// 8. Feedback for the next slice's generators.
	s.env = workload.Env{
		BusUtil:     memStats.Util,
		DirtyBytes:  osRes.DirtyBytes,
		FlushActive: osRes.FlushActive,
	}
	for _, fn := range s.onSlice {
		fn(SliceInfo{Seconds: now, Truth: truth, BusUtil: memStats.Util})
	}
}

// Run advances the machine by the given number of simulated seconds.
func (s *Server) Run(seconds float64) {
	// A background context never cancels, so the error is always nil.
	_ = s.RunContext(context.Background(), seconds)
}

// RunContext advances the machine by the given number of simulated
// seconds, stopping early (between slices, with the machine left in a
// consistent state) when ctx is cancelled. A partial run's samples
// remain valid: Dataset still returns everything sampled so far.
//
// If a CrashInjector kills the machine mid-run, RunContext returns the
// injected crash error (everything sampled before the crash remains
// available) and every later run returns it again immediately: a dead
// node stays dead.
func (s *Server) RunContext(ctx context.Context, seconds float64) error {
	if s.crashErr != nil {
		return s.crashErr
	}
	d := time.Duration(seconds * float64(time.Second))
	if s.crash == nil {
		return s.engine.RunForContext(ctx, d)
	}
	// A crash is detected inside a slice step, which cannot abort the
	// engine loop directly; it cancels this run-scoped context instead
	// and the engine stops at the next cancellation check.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	s.abortSlot = cancel
	err := s.engine.RunForContext(runCtx, d)
	s.abortSlot = nil
	if s.crashErr != nil {
		return s.crashErr
	}
	return err
}

// Dataset merges the DAQ and counter logs into the aligned trace.
func (s *Server) Dataset() (*align.Dataset, error) {
	return align.Merge(s.dq.Records(), s.sampler.Samples())
}

// DatasetRobust merges the logs through the degradation-tolerant path
// (align.MergeRobust): dropped sync pulses, duplicate edges and NaN
// windows are repaired or excised instead of failing the merge, and the
// returned Quality reports every repair. On a healthy machine it returns
// exactly what Dataset returns.
func (s *Server) DatasetRobust() (*align.Dataset, align.Quality, error) {
	return align.MergeRobust(s.dq.Records(), s.sampler.Samples())
}

// TruthMean returns the noise-free per-rail average over the whole run —
// ground truth the real paper could never see directly, used here for
// calibration tests.
func (s *Server) TruthMean() power.Reading {
	var out power.Reading
	if s.truthN == 0 {
		return out
	}
	for i, v := range s.truthSum {
		out[i] = v / float64(s.truthN)
	}
	return out
}

// Clock returns the machine clock.
func (s *Server) Clock() *sim.Clock { return s.clock }

// Sampler exposes the counter sampler (for live-estimation examples).
func (s *Server) Sampler() *perfctr.Sampler { return s.sampler }

// DAQ exposes the acquisition workstation.
func (s *Server) DAQ() *daq.DAQ { return s.dq }

// OS exposes the operating-system layer (for /proc/interrupts).
func (s *Server) OS() *osmodel.OS { return s.os }

// Spec returns the workload this server is running.
func (s *Server) Spec() workload.Spec { return s.spec }

// Config returns the hardware configuration.
func (s *Server) Config() Config { return s.cfg }

// RunWorkload is a convenience: build a default server for the named
// workload with the given seed, run it for seconds (the spec default if
// seconds <= 0), and return the aligned dataset.
func RunWorkload(name string, seconds float64, seed uint64) (*align.Dataset, error) {
	spec, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	cfg := DefaultConfig()
	cfg.Seed = seed
	srv, err := New(cfg, spec)
	if err != nil {
		return nil, err
	}
	if seconds <= 0 {
		seconds = spec.DefaultDuration
	}
	srv.Run(seconds)
	return srv.Dataset()
}
