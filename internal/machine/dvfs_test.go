package machine

import (
	"testing"

	"trickledown/internal/align"
	"trickledown/internal/core"
	"trickledown/internal/power"
)

// dvfsRun runs gcc with the frequency stepped through a schedule,
// returning the aligned dataset. Stagger is compressed so all instances
// run from early on.
func dvfsRun(t *testing.T, seed uint64, schedule []float64, secsPer float64) *align.Dataset {
	t.Helper()
	spec := mustSpec(t, "gcc")
	spec.StaggerSec = 1
	cfg := DefaultConfig()
	cfg.Seed = seed
	srv, err := New(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	srv.Run(20) // settle at nominal
	for _, f := range schedule {
		srv.SetFreqScaleAll(f)
		srv.Run(secsPer)
	}
	ds, err := srv.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	return ds.Skip(20)
}

func TestFreqScaleBounds(t *testing.T) {
	srv, err := New(DefaultConfig(), mustSpec(t, "idle"))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.SetFreqScale(0, 0.1); err != nil {
		t.Fatal(err)
	}
	if got := srv.FreqScale(0); got != 0.5 {
		t.Errorf("freq clamped to %v, want 0.5", got)
	}
	if err := srv.SetFreqScale(0, 5); err != nil {
		t.Fatal(err)
	}
	if got := srv.FreqScale(0); got != 1 {
		t.Errorf("freq clamped to %v, want 1", got)
	}
	if err := srv.SetFreqScale(42, 0.8); err == nil {
		t.Error("out-of-range CPU accepted")
	}
	if srv.FreqScale(42) != 1 {
		t.Error("out-of-range FreqScale() != 1")
	}
}

func TestDVFSReducesPowerAndCycles(t *testing.T) {
	full := dvfsRun(t, 5, []float64{1.0}, 30)
	half := dvfsRun(t, 5, []float64{0.5}, 30)
	fullP, halfP := 0.0, 0.0
	var fullCyc, halfCyc uint64
	for i := range full.Rows {
		fullP += full.Rows[i].Power[power.SubCPU]
		fullCyc += full.Rows[i].Counters.CPUs[0].Cycles
	}
	for i := range half.Rows {
		halfP += half.Rows[i].Power[power.SubCPU]
		halfCyc += half.Rows[i].Counters.CPUs[0].Cycles
	}
	fullP /= float64(len(full.Rows))
	halfP /= float64(len(half.Rows))
	if halfP >= 0.75*fullP {
		t.Errorf("half frequency cut power only to %v of %v", halfP, fullP)
	}
	// Cycles per interval reveal the operating point to software.
	ratio := float64(halfCyc) / float64(fullCyc) * float64(len(full.Rows)) / float64(len(half.Rows))
	if ratio < 0.45 || ratio > 0.55 {
		t.Errorf("cycle ratio = %v, want ~0.5", ratio)
	}
}

func TestFrequencyVisibleInMetrics(t *testing.T) {
	ds := dvfsRun(t, 6, []float64{0.7}, 20)
	m := core.ExtractMetrics(&ds.Rows[ds.Len()-1].Counters)
	for i, f := range m.FreqScale {
		if f < 0.65 || f > 0.75 {
			t.Errorf("cpu %d inferred frequency %v, want ~0.7", i, f)
		}
	}
}

// The extension's point: Eq. 1 trained at nominal frequency misestimates
// scaled processors, while the fV² variant trained on a
// frequency-stepped trace tracks them.
func TestDVFSModelBeatsEq1UnderScaling(t *testing.T) {
	// Train both models on a trace that sweeps operating points.
	train := dvfsRun(t, 10, []float64{1.0, 0.8, 0.6, 0.5, 0.9, 0.7}, 25)
	eq1Train := dvfsRun(t, 10, []float64{1.0}, 120) // Eq. 1's world: fixed clock
	eq1, err := core.Train(core.CPUSpec(), eq1Train)
	if err != nil {
		t.Fatal(err)
	}
	dvfs, err := core.Train(core.CPUDVFSSpec(), train)
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate on an unseen run at a reduced operating point.
	eval := dvfsRun(t, 99, []float64{0.6}, 60)
	e1, err := eq1.Validate(eval)
	if err != nil {
		t.Fatal(err)
	}
	ed, err := dvfs.Validate(eval)
	if err != nil {
		t.Fatal(err)
	}
	if ed >= e1 {
		t.Errorf("DVFS-aware model (%.2f%%) should beat fixed-frequency Eq.1 (%.2f%%)", ed, e1)
	}
	if e1 < 5 {
		t.Errorf("Eq.1 error at 0.6x clock = %.2f%%, expected a clear failure (>5%%)", e1)
	}
	if ed > 5 {
		t.Errorf("DVFS-aware error = %.2f%%, want <5%%", ed)
	}
}

func TestDVFSAndThrottleCompose(t *testing.T) {
	spec := mustSpec(t, "gcc")
	spec.StaggerSec = 1
	run := func(freq, throttle float64) float64 {
		cfg := DefaultConfig()
		cfg.Seed = 3
		srv, err := New(cfg, spec)
		if err != nil {
			t.Fatal(err)
		}
		srv.Run(15)
		srv.SetFreqScaleAll(freq)
		srv.SetThrottleAll(throttle)
		srv.Run(20)
		ds, err := srv.Dataset()
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		rows := ds.Rows[20:]
		for _, row := range rows {
			sum += row.Power[power.SubCPU]
		}
		return sum / float64(len(rows))
	}
	full := run(1, 0)
	dvfs := run(0.6, 0)
	both := run(0.6, 0.5)
	if !(both < dvfs && dvfs < full) {
		t.Errorf("power ordering broken: full %v, dvfs %v, both %v", full, dvfs, both)
	}
}

func TestCustomSamplePeriod(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SamplePeriodSec = 0.5
	srv, err := New(cfg, mustSpec(t, "idle"))
	if err != nil {
		t.Fatal(err)
	}
	srv.Run(10)
	ds, err := srv.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() < 18 || ds.Len() > 21 {
		t.Errorf("0.5s sampling produced %d samples in 10s", ds.Len())
	}
}
