package machine

import (
	"testing"
)

// stepAllocBudget is the allocation ceiling for one simulated second
// (1000 slices plus one 1 Hz counter sample and DAQ window) of a warm
// 4-way server. The steady state costs ~13 allocations — the sampler's
// per-sample busy/interrupt snapshots and log appends — so the budget
// holds headroom for noise while still catching any per-slice
// allocation creeping back into the hot path (which costs thousands
// per simulated second; see BenchmarkSimulationSecond).
const stepAllocBudget = 40

// TestStepAllocationBudget pins the hot path's allocation behaviour:
// stepping a warmed-up server must not allocate per slice.
func TestStepAllocationBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates minutes of machine time")
	}
	spec := mustSpec(t, "gcc")
	srv, err := New(DefaultConfig(), spec)
	if err != nil {
		t.Fatal(err)
	}
	// Pass the staggered start-up and dataset-load transients so the
	// measurement sees the sustained regime.
	srv.Run(240)
	avg := testing.AllocsPerRun(5, func() {
		srv.Run(1)
	})
	if avg > stepAllocBudget {
		t.Errorf("one simulated second allocates %.0f times, budget %d", avg, stepAllocBudget)
	}
}
