package machine

import (
	"testing"

	"trickledown/internal/core"
	"trickledown/internal/power"
)

func TestNewMixedValidation(t *testing.T) {
	cfg := DefaultConfig()
	cases := map[string][]Placement{
		"empty":          {},
		"bad workload":   {{Workload: "nope", Thread: 0}},
		"bad thread":     {{Workload: "idle", Thread: 99}},
		"negative start": {{Workload: "idle", Thread: 0, StartSec: -5}},
		"double placement": {
			{Workload: "idle", Thread: 3},
			{Workload: "gcc", Thread: 3},
		},
	}
	for name, pls := range cases {
		if _, err := NewMixed(cfg, pls); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestMixedConsolidation(t *testing.T) {
	// Two gcc jobs on processor 0, two dbt-2 workers on processor 1,
	// processors 2-3 idle: the consolidated box the datacenter example
	// implies.
	cfg := DefaultConfig()
	cfg.Seed = 5
	srv, err := NewMixed(cfg, []Placement{
		{Workload: "gcc", Thread: 0},
		{Workload: "gcc", Thread: 1, StartSec: 10},
		{Workload: "dbt-2", Thread: 2},
		{Workload: "dbt-2", Thread: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Run(60)
	ds, err := srv.Dataset()
	if err != nil {
		t.Fatal(err)
	}

	// Train Eq. 1 on a homogeneous machine, attribute on the mixed one.
	train, err := RunWorkload("gcc", 200, 10)
	if err != nil {
		t.Fatal(err)
	}
	eq1, err := core.Train(core.CPUSpec(), train)
	if err != nil {
		t.Fatal(err)
	}
	chip, err := core.Train(core.ChipsetSpec(), train)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := core.Train(core.MemBusSpec(), train)
	if err != nil {
		t.Fatal(err)
	}
	dsk, err := core.Train(core.DiskSpec(), train)
	if err != nil {
		t.Fatal(err)
	}
	io, err := core.Train(core.IOSpec(), train)
	if err != nil {
		t.Fatal(err)
	}
	est, err := core.NewEstimator(eq1, chip, mem, dsk, io)
	if err != nil {
		t.Fatal(err)
	}

	row := &ds.Rows[ds.Len()-1]
	per := est.PerCPUPower(&row.Counters)
	if len(per) != 4 {
		t.Fatalf("per-CPU len = %d", len(per))
	}
	// gcc's processor burns far more than dbt-2's, which burns more than
	// the idle ones.
	if per[0] < per[1]+10 {
		t.Errorf("gcc cpu0 %.1fW should dwarf dbt-2 cpu1 %.1fW", per[0], per[1])
	}
	if per[1] < per[2]+1 {
		t.Errorf("dbt-2 cpu1 %.1fW should exceed idle cpu2 %.1fW", per[1], per[2])
	}
	if per[2] > 12 || per[3] > 12 {
		t.Errorf("idle processors attributed %.1f/%.1f W, want ~9-10", per[2], per[3])
	}
	// Eq. 1 still tracks the total on the mixed machine.
	e, err := est.Model(power.SubCPU).Validate(ds.Skip(15))
	if err != nil {
		t.Fatal(err)
	}
	if e > 8 {
		t.Errorf("Eq.1 error on mixed machine = %.2f%%", e)
	}
}

func TestMixedDeterministic(t *testing.T) {
	run := func() power.Reading {
		cfg := DefaultConfig()
		cfg.Seed = 9
		srv, err := NewMixed(cfg, []Placement{
			{Workload: "mesa", Thread: 0},
			{Workload: "lucas", Thread: 4},
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.Run(15)
		return srv.TruthMean()
	}
	if run() != run() {
		t.Error("mixed run not deterministic")
	}
}

func TestMixedChipsetBiasAveraged(t *testing.T) {
	// idle bias 1.85, vortex bias -1.20: the mixed machine should sit
	// between the two pure machines' chipset power.
	mean := func(pls []Placement) float64 {
		cfg := DefaultConfig()
		cfg.Seed = 3
		srv, err := NewMixed(cfg, pls)
		if err != nil {
			t.Fatal(err)
		}
		srv.Run(20)
		return srv.TruthMean()[power.SubChipset]
	}
	idleOnly := mean([]Placement{{Workload: "idle", Thread: 0}})
	vortexOnly := mean([]Placement{{Workload: "vortex", Thread: 0}})
	mixed := mean([]Placement{
		{Workload: "idle", Thread: 0},
		{Workload: "vortex", Thread: 2},
	})
	lo, hi := vortexOnly, idleOnly
	if lo > hi {
		lo, hi = hi, lo
	}
	if mixed < lo-0.3 || mixed > hi+0.3 {
		t.Errorf("mixed chipset %.2fW outside pure range [%.2f, %.2f]", mixed, lo, hi)
	}
}

// The paper's virtual-machine scenario: two tenants on ONE physical
// processor via SMT. Thread-level attribution separates them.
func TestPerThreadAttributionOnSharedProcessor(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 13
	srv, err := NewMixed(cfg, []Placement{
		{Workload: "gcc", Thread: 0},  // tenant A, busy
		{Workload: "idle", Thread: 1}, // tenant B, parked on the sibling
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Run(60)
	ds, err := srv.Dataset()
	if err != nil {
		t.Fatal(err)
	}

	train, err := RunWorkload("gcc", 200, 10)
	if err != nil {
		t.Fatal(err)
	}
	mods := make([]*core.Model, 0, 5)
	for _, spec := range []core.ModelSpec{
		core.CPUSpec(), core.ChipsetSpec(), core.MemBusSpec(), core.DiskSpec(), core.IOSpec(),
	} {
		m, err := core.Train(spec, train)
		if err != nil {
			t.Fatal(err)
		}
		mods = append(mods, m)
	}
	est, err := core.NewEstimator(mods...)
	if err != nil {
		t.Fatal(err)
	}

	row := &ds.Rows[ds.Len()-1]
	per := est.PerThreadPower(&row.Counters, 2)
	if per == nil {
		t.Fatal("no thread attribution from machine-recorded sample")
	}
	if len(per) != 8 {
		t.Fatalf("thread attribution len = %d", len(per))
	}
	// Tenant A's thread dwarfs tenant B's sibling share.
	if per[0] < 4*per[1] {
		t.Errorf("busy tenant %v should dwarf parked tenant %v", per[0], per[1])
	}
	// Threads of a processor sum to its Eq. 1 attribution.
	perCPU := est.PerCPUPower(&row.Counters)
	for cpu := 0; cpu < 4; cpu++ {
		sum := per[2*cpu] + per[2*cpu+1]
		if diff := sum - perCPU[cpu]; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("cpu %d: thread sum %v != per-CPU %v", cpu, sum, perCPU[cpu])
		}
	}
}
