package machine

import (
	"math"
	"testing"

	"trickledown/internal/iobus"
	"trickledown/internal/power"
	"trickledown/internal/workload"
)

func mustSpec(t *testing.T, name string) workload.Spec {
	t.Helper()
	s, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	spec := mustSpec(t, "idle")
	bad := DefaultConfig()
	bad.NumCPUs = 0
	if _, err := New(bad, spec); err == nil {
		t.Error("zero CPUs accepted")
	}
	bad = DefaultConfig()
	bad.NumDisks = 0
	if _, err := New(bad, spec); err == nil {
		t.Error("zero disks accepted")
	}
	bad = DefaultConfig()
	bad.NumCPUs = 1
	bad.ThreadsPerCPU = 1
	if _, err := New(bad, spec); err == nil {
		t.Error("8 instances on 1 thread accepted")
	}
}

func TestIdleRunMatchesPaperFloor(t *testing.T) {
	srv, err := New(DefaultConfig(), mustSpec(t, "idle"))
	if err != nil {
		t.Fatal(err)
	}
	srv.Run(30)
	m := srv.TruthMean()
	// Paper Table 1 idle row: 38.4 / 19.9 / 28.1 / 32.9 / 21.6.
	want := power.Reading{38.4, 19.9, 28.1, 32.9, 21.6}
	tol := power.Reading{1.5, 0.6, 0.6, 0.4, 0.3}
	for i, w := range want {
		if math.Abs(m[i]-w) > tol[i] {
			t.Errorf("%s idle power = %.2f, want %.1f ± %.1f",
				power.Subsystem(i), m[i], w, tol[i])
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	run := func() power.Reading {
		srv, err := New(DefaultConfig(), mustSpec(t, "gcc"))
		if err != nil {
			t.Fatal(err)
		}
		srv.Run(20)
		return srv.TruthMean()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
	cfg := DefaultConfig()
	cfg.Seed = 99
	srv, _ := New(cfg, mustSpec(t, "gcc"))
	srv.Run(20)
	if srv.TruthMean() == a {
		t.Error("different seeds produced identical run")
	}
}

func TestDatasetAlignment(t *testing.T) {
	srv, err := New(DefaultConfig(), mustSpec(t, "idle"))
	if err != nil {
		t.Fatal(err)
	}
	srv.Run(25)
	ds, err := srv.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() < 23 || ds.Len() > 26 {
		t.Errorf("dataset rows = %d for a 25s run", ds.Len())
	}
	for i, row := range ds.Rows {
		if len(row.Counters.CPUs) != 4 {
			t.Fatalf("row %d has %d CPUs", i, len(row.Counters.CPUs))
		}
		if row.Counters.CPUs[0].Cycles == 0 {
			t.Fatalf("row %d has zero cycles", i)
		}
		if row.Power[power.SubCPU] <= 0 {
			t.Fatalf("row %d has non-positive CPU power", i)
		}
	}
}

func TestStaggeredStartRampsPower(t *testing.T) {
	srv, err := New(DefaultConfig(), mustSpec(t, "gcc"))
	if err != nil {
		t.Fatal(err)
	}
	srv.Run(130) // four instances running by then (30s stagger)
	ds, err := srv.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	early := ds.Rows[10].Power[power.SubCPU]
	late := ds.Rows[ds.Len()-1].Power[power.SubCPU]
	if late < early+30 {
		t.Errorf("staggered gcc should ramp CPU power: %v -> %v", early, late)
	}
}

func TestDiskLoadGeneratesDMAAndDiskInterrupts(t *testing.T) {
	srv, err := New(DefaultConfig(), mustSpec(t, "diskload"))
	if err != nil {
		t.Fatal(err)
	}
	srv.Run(60)
	ds, err := srv.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	var dma, diskInts uint64
	for _, row := range ds.Rows {
		dma += row.Counters.CPUs[0].DMAOther
		diskInts += row.Counters.IntsForVector(int(iobus.VecDisk))
	}
	if dma == 0 {
		t.Error("diskload produced no DMA/other bus transactions")
	}
	if diskInts == 0 {
		t.Error("diskload produced no disk interrupts")
	}
}

func TestTimerInterruptsAlwaysPresent(t *testing.T) {
	srv, err := New(DefaultConfig(), mustSpec(t, "idle"))
	if err != nil {
		t.Fatal(err)
	}
	srv.Run(10)
	ds, _ := srv.Dataset()
	for i, row := range ds.Rows[1:] {
		total := row.Counters.IntsTotal()
		// ~4000 timer + ~90 NIC per second.
		if total < 3500 || total > 5000 {
			t.Errorf("row %d interrupts = %d, want ~4100", i, total)
		}
	}
}

func TestOnSliceObserver(t *testing.T) {
	srv, err := New(DefaultConfig(), mustSpec(t, "idle"))
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	srv.OnSlice(func(si SliceInfo) {
		calls++
		if si.Truth[power.SubCPU] <= 0 {
			t.Fatal("observer saw non-positive CPU power")
		}
	})
	srv.OnSlice(nil) // ignored
	srv.Run(2)
	if calls != 2000 {
		t.Errorf("observer called %d times for 2s run", calls)
	}
}

func TestAccessors(t *testing.T) {
	spec := mustSpec(t, "idle")
	srv, err := New(DefaultConfig(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if srv.Spec().Name != "idle" {
		t.Error("Spec accessor broken")
	}
	if srv.Config().NumCPUs != 4 {
		t.Error("Config accessor broken")
	}
	if srv.Clock() == nil || srv.Sampler() == nil || srv.DAQ() == nil || srv.OS() == nil {
		t.Error("nil component accessor")
	}
	if srv.TruthMean() != (power.Reading{}) {
		t.Error("TruthMean before run should be zero")
	}
}

func TestRunWorkload(t *testing.T) {
	ds, err := RunWorkload("idle", 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() < 8 {
		t.Errorf("rows = %d", ds.Len())
	}
	if _, err := RunWorkload("nonsense", 10, 3); err == nil {
		t.Error("unknown workload accepted")
	}
}

// The Figure 4 system-level effect: as staggered mcf instances pile on,
// prefetch traffic grows while demand L3 misses stop growing.
func TestMcfPrefetchGrowth(t *testing.T) {
	srv, err := New(DefaultConfig(), mustSpec(t, "mcf"))
	if err != nil {
		t.Fatal(err)
	}
	srv.Run(280) // ~9 instances' worth of stagger time
	ds, err := srv.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	window := func(lo, hi int) (pf, miss float64) {
		for _, row := range ds.Rows[lo:hi] {
			for _, c := range row.Counters.CPUs {
				pf += float64(c.BusPrefetchTx)
				miss += float64(c.L3LoadMisses)
			}
		}
		return pf, miss
	}
	pfEarly, missEarly := window(40, 60) // ~2 instances
	pfLate, missLate := window(250, 270) // 8 instances
	if pfLate <= 2*pfEarly {
		t.Errorf("prefetch traffic should grow strongly: %v -> %v", pfEarly, pfLate)
	}
	// Demand misses grow far less than linearly in instances (prefetcher
	// coverage): with 4x the instances, less than 3x the misses.
	if missLate > 3*missEarly {
		t.Errorf("demand misses grew too much: %v -> %v", missEarly, missLate)
	}
}
