package machine

import (
	"testing"

	"trickledown/internal/align"
	"trickledown/internal/core"
	"trickledown/internal/disk"
	"trickledown/internal/iobus"
	"trickledown/internal/power"
)

func TestThrottleReducesPowerAndWork(t *testing.T) {
	run := func(throttle float64) (watts, uops float64) {
		srv, err := New(DefaultConfig(), mustSpec(t, "gcc"))
		if err != nil {
			t.Fatal(err)
		}
		srv.Run(30) // let instance 0 settle
		srv.SetThrottleAll(throttle)
		srv.Run(30)
		ds, err := srv.Dataset()
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range ds.Rows[35:] {
			watts += row.Power[power.SubCPU]
			for _, c := range row.Counters.CPUs {
				uops += float64(c.FetchedUops)
			}
		}
		return watts, uops
	}
	fullW, fullU := run(0)
	halfW, halfU := run(0.5)
	if halfW >= fullW {
		t.Errorf("throttling did not cut power: %v >= %v", halfW, fullW)
	}
	if halfU >= 0.7*fullU {
		t.Errorf("throttling did not cut work: %v vs %v", halfU, fullU)
	}
}

func TestThrottleVisibleToEq1(t *testing.T) {
	// The throttled machine must show more halted cycles — the channel
	// through which a counter-driven governor's action becomes visible
	// to its own model.
	spec := mustSpec(t, "gcc")
	spec.StaggerSec = 1 // all instances running almost immediately
	srv, err := New(DefaultConfig(), spec)
	if err != nil {
		t.Fatal(err)
	}
	srv.Run(20)
	srv.SetThrottleAll(0.6)
	srv.Run(20)
	ds, err := srv.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	before := ds.Rows[15].Counters.CPUs[0]
	after := ds.Rows[ds.Len()-1].Counters.CPUs[0]
	fracBefore := float64(before.HaltedCycles) / float64(before.Cycles)
	fracAfter := float64(after.HaltedCycles) / float64(after.Cycles)
	if fracAfter <= fracBefore+0.2 {
		t.Errorf("halted fraction %v -> %v; throttle invisible to Eq. 1", fracBefore, fracAfter)
	}
}

func TestThrottleBoundsAndErrors(t *testing.T) {
	srv, err := New(DefaultConfig(), mustSpec(t, "idle"))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.SetThrottle(0, 2.0); err != nil {
		t.Fatal(err)
	}
	if got := srv.Throttle(0); got != 0.9 {
		t.Errorf("throttle clamped to %v, want 0.9", got)
	}
	if err := srv.SetThrottle(0, -1); err != nil {
		t.Fatal(err)
	}
	if got := srv.Throttle(0); got != 0 {
		t.Errorf("negative throttle = %v", got)
	}
	if err := srv.SetThrottle(99, 0.5); err == nil {
		t.Error("out-of-range CPU accepted")
	}
	if srv.Throttle(-1) != 0 {
		t.Error("out-of-range Throttle() nonzero")
	}
}

func TestNetloadExercisesNICPath(t *testing.T) {
	srv, err := New(DefaultConfig(), mustSpec(t, "netload"))
	if err != nil {
		t.Fatal(err)
	}
	srv.Run(80)
	ds, err := srv.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	var nicInts, diskInts uint64
	var dma float64
	for _, row := range ds.Rows[40:] {
		nicInts += row.Counters.IntsForVector(int(iobus.VecNIC))
		diskInts += row.Counters.IntsForVector(int(iobus.VecDisk))
		dma += float64(row.Counters.CPUs[0].DMAOther)
	}
	if nicInts < 1000 {
		t.Errorf("netload raised only %d NIC interrupts", nicInts)
	}
	if diskInts > nicInts/10 {
		t.Errorf("netload should be network-bound: %d disk vs %d nic ints", diskInts, nicInts)
	}
	if dma == 0 {
		t.Error("netload produced no DMA bus traffic")
	}
	// I/O power must rise above the no-I/O floor.
	m := srv.TruthMean()
	if m[power.SubIO] < power.IOBasePower+0.5 {
		t.Errorf("netload I/O power = %v, expected clear rise above %v", m[power.SubIO], power.IOBasePower)
	}
	if m[power.SubDisk] > power.DiskIdlePower(2)+0.05 {
		t.Errorf("netload disk power = %v, should idle", m[power.SubDisk])
	}
}

// The extension claim: the Eq. 5 I/O model, trained on disk-driven
// interrupts, generalizes to a workload whose interrupts come from the
// NIC — the trickle-down signal is the interrupt, not the device.
func TestIOModelGeneralizesToNetwork(t *testing.T) {
	dl, err := RunWorkload("diskload", 150, 10)
	if err != nil {
		t.Fatal(err)
	}
	ioModel, err := core.Train(core.IOSpec(), dl)
	if err != nil {
		t.Fatal(err)
	}
	net, err := RunWorkload("netload", 120, 99)
	if err != nil {
		t.Fatal(err)
	}
	e, err := ioModel.Validate(net)
	if err != nil {
		t.Fatal(err)
	}
	if e > 8 {
		t.Errorf("I/O model error on netload = %.2f%%, want <8%%", e)
	}
}

func TestOSBusySampling(t *testing.T) {
	srv, err := New(DefaultConfig(), mustSpec(t, "idle"))
	if err != nil {
		t.Fatal(err)
	}
	srv.Run(10)
	ds, err := srv.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range ds.Rows {
		if len(row.Counters.OSBusySec) != 4 {
			t.Fatalf("row %d OSBusySec len = %d", i, len(row.Counters.OSBusySec))
		}
		for cpu, b := range row.Counters.OSBusySec {
			if b < 0 || b > row.Counters.IntervalSec+0.01 {
				t.Errorf("row %d cpu %d busy %v of %v", i, cpu, b, row.Counters.IntervalSec)
			}
		}
	}
	// Idle machine: utilization near zero.
	m := core.ExtractMetrics(&ds.Rows[ds.Len()-1].Counters)
	for cpu, u := range m.OSUtil {
		if u > 0.05 {
			t.Errorf("idle cpu %d OS utilization = %v", cpu, u)
		}
	}
}

// Section 2.2.2's accuracy trade: the OS-utilization model cannot see
// IPC, so it loses to Eq. 1 on a workload whose power varies at constant
// utilization (mcf vs gcc differ hugely in fetch rate at act ~= 1).
func TestEq1BeatsOSUtilAcrossIPCRegimes(t *testing.T) {
	gcc, err := RunWorkload("gcc", 240, 10)
	if err != nil {
		t.Fatal(err)
	}
	eq1, err := core.Train(core.CPUSpec(), gcc)
	if err != nil {
		t.Fatal(err)
	}
	utilM, err := core.Train(core.CPUOSUtilSpec(), gcc)
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate on a pool mixing fetch-light and fetch-heavy workloads.
	var e1Sum, euSum float64
	for _, wl := range []string{"vortex", "lucas", "specjbb"} {
		eval, err := RunWorkload(wl, 150, 100)
		if err != nil {
			t.Fatal(err)
		}
		e1, err := eq1.Validate(eval)
		if err != nil {
			t.Fatal(err)
		}
		eu, err := utilM.Validate(eval)
		if err != nil {
			t.Fatal(err)
		}
		e1Sum += e1
		euSum += eu
	}
	if e1Sum >= euSum {
		t.Errorf("Eq.1 total error %.2f%% should beat OS-utilization model %.2f%%", e1Sum, euSum)
	}
}

// The spindown extension's honest finding: the paper's Eq. 4 disk model
// assumes a constant rotation floor, so disks with power management
// break it — the spindle state is time-dependent and invisible to rate
// counters.
func TestSpindownBreaksConstantFloorAssumption(t *testing.T) {
	// Train Eq. 4 on the paper's always-spinning hardware.
	dl, err := RunWorkload("diskload", 150, 10)
	if err != nil {
		t.Fatal(err)
	}
	eq4, err := core.Train(core.DiskSpec(), dl)
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate on a mobile-policy machine whose workload leaves the
	// disks idle (netload: all I/O goes through the NIC).
	cfg := DefaultConfig()
	cfg.Seed = 77
	cfg.DiskPolicy = disk.MobilePolicy()
	srv, err := New(cfg, mustSpec(t, "netload"))
	if err != nil {
		t.Fatal(err)
	}
	srv.Run(120)
	ds, err := srv.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	// The machine actually saves power...
	mean := srv.TruthMean()
	if mean[power.SubDisk] > power.DiskIdlePower(2)-10 {
		t.Fatalf("disks never spun down (mean %v)", mean[power.SubDisk])
	}
	// ...and the server-trained model misses the whole saving: it still
	// predicts the rotation floor. The spindle state is time-dependent
	// and invisible to the rate counters Eq. 4 consumes.
	e, err := eq4.Validate(ds.Skip(30))
	if err != nil {
		t.Fatal(err)
	}
	if e < 50 {
		t.Errorf("Eq.4 error on spindown hardware = %.2f%%, expected a gross failure (>50%%)", e)
	}
}

func TestSpindownSavesMeasurableEnergy(t *testing.T) {
	run := func(policy disk.PowerPolicy) float64 {
		cfg := DefaultConfig()
		cfg.Seed = 8
		cfg.DiskPolicy = policy
		srv, err := New(cfg, mustSpec(t, "idle"))
		if err != nil {
			t.Fatal(err)
		}
		srv.Run(60)
		return srv.TruthMean()[power.SubDisk]
	}
	server := run(disk.PowerPolicy{})
	mobile := run(disk.MobilePolicy())
	if mobile >= server-10 {
		t.Errorf("spindown saved only %.1f W on an idle machine", server-mobile)
	}
}

// Profile portability: the same method retrains on a different machine
// generation (low-power blade) and recovers accuracy with different
// coefficients — the paper's premise that coefficients are per-machine.
func TestMethodPortsToBladeProfile(t *testing.T) {
	blade := power.BladeProfile()
	run := func(name string, seconds float64, seed uint64) *align.Dataset {
		spec := mustSpec(t, name)
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.Power = &blade
		srv, err := New(cfg, spec)
		if err != nil {
			t.Fatal(err)
		}
		srv.Run(seconds)
		ds, err := srv.Dataset()
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}
	train := run("gcc", 200, 10)
	eq1, err := core.Train(core.CPUSpec(), train)
	if err != nil {
		t.Fatal(err)
	}
	// The fitted floor tracks the blade's cheaper halt power, not the
	// server's 9.4 W.
	if eq1.Coef[0] > 8 {
		t.Errorf("blade-fitted floor = %.2f W, expected ~%.1f", eq1.Coef[0], blade.CPUHalt)
	}
	eval := run("mesa", 150, 100)
	e, err := eq1.Validate(eval)
	if err != nil {
		t.Fatal(err)
	}
	if e > 4 {
		t.Errorf("retrained blade error = %.2f%%, want <4%%", e)
	}
	// A server-trained model applied to the blade is badly calibrated.
	serverTrain, err := RunWorkload("gcc", 200, 10)
	if err != nil {
		t.Fatal(err)
	}
	serverEq1, err := core.Train(core.CPUSpec(), serverTrain)
	if err != nil {
		t.Fatal(err)
	}
	cross, err := serverEq1.Validate(eval)
	if err != nil {
		t.Fatal(err)
	}
	if cross < 3*e {
		t.Errorf("server model on blade = %.2f%%, should dwarf retrained %.2f%%", cross, e)
	}
}

func TestInvalidProfileRejected(t *testing.T) {
	bad := power.ServerProfile()
	bad.IOBase = 0
	cfg := DefaultConfig()
	cfg.Power = &bad
	if _, err := New(cfg, mustSpec(t, "idle")); err == nil {
		t.Error("invalid profile accepted")
	}
}

// The constructive fix for the spindown failure: a history-aware disk
// model (Eq. 4 plus an EWMA recent-activity feature) learns the standby
// transitions a stateless rate model cannot express.
func TestSeqDiskModelHandlesSpindown(t *testing.T) {
	run := func(seed uint64, seconds float64) *align.Dataset {
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.DiskPolicy = disk.MobilePolicy()
		// One DiskLoad instance: bursts of flushing with long idle gaps,
		// so the spindle cycles between standby and full rotation.
		srv, err := NewMixed(cfg, []Placement{{Workload: "diskload", Thread: 0}})
		if err != nil {
			t.Fatal(err)
		}
		srv.Run(seconds)
		ds, err := srv.Dataset()
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}
	train := run(10, 260)
	eval := run(99, 200)

	// Sanity: the machine actually cycles standby (power spans a wide
	// range).
	lo, hi := 1e9, 0.0
	for _, row := range eval.Rows {
		v := row.Power[power.SubDisk]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi-lo < 10 {
		t.Fatalf("disk power range [%.1f, %.1f] too narrow for a spindown test", lo, hi)
	}

	flat, err := core.Train(core.DiskSpec(), train)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := core.TrainSeq(core.DiskStandbySpec(0.25), train)
	if err != nil {
		t.Fatal(err)
	}
	flatErr, err := flat.Validate(eval)
	if err != nil {
		t.Fatal(err)
	}
	seqErr, err := seq.Validate(eval)
	if err != nil {
		t.Fatal(err)
	}
	if seqErr >= flatErr {
		t.Errorf("history model %.2f%% did not beat stateless %.2f%% on spindown hardware", seqErr, flatErr)
	}
	t.Logf("spindown hardware: stateless Eq.4 %.2f%%, history model %.2f%%", flatErr, seqErr)
}
