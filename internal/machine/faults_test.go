package machine

import (
	"context"
	"errors"
	"strings"
	"testing"

	"trickledown/internal/workload"
)

// stubCrash crashes (or panics) the machine once simulated time reaches
// At.
type stubCrash struct {
	at       float64
	err      error
	panicToo bool
}

func (c *stubCrash) CrashErr(now float64) error {
	if c.err != nil && now >= c.at {
		return c.err
	}
	return nil
}

func (c *stubCrash) PanicAt(now float64) bool {
	return c.panicToo && now >= c.at
}

func testServer(t *testing.T, seed uint64) *Server {
	t.Helper()
	spec, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Seed = seed
	srv, err := New(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestCrashInjectorStopsRunAndStaysDead(t *testing.T) {
	srv := testServer(t, 11)
	boom := errors.New("injected node crash")
	srv.SetCrashInjector(&stubCrash{at: 5, err: boom})
	err := srv.RunContext(context.Background(), 20)
	if !errors.Is(err, boom) {
		t.Fatalf("RunContext err = %v, want the injected crash", err)
	}
	if !errors.Is(srv.CrashErr(), boom) {
		t.Errorf("CrashErr = %v", srv.CrashErr())
	}
	// Samples from before the crash survive.
	ds, dsErr := srv.Dataset()
	if dsErr != nil {
		t.Fatalf("Dataset after crash: %v", dsErr)
	}
	if n := ds.Len(); n < 3 || n > 6 {
		t.Errorf("dataset has %d rows, want ~5 (crash at 5s)", n)
	}
	// The machine stays dead: a fresh run fails immediately and collects
	// nothing new.
	if err := srv.RunContext(context.Background(), 10); !errors.Is(err, boom) {
		t.Fatalf("second RunContext err = %v, want the crash again", err)
	}
	ds2, _ := srv.Dataset()
	if ds2.Len() != ds.Len() {
		t.Errorf("dead machine kept sampling: %d -> %d rows", ds.Len(), ds2.Len())
	}
}

func TestCrashInjectorCrashesPromptly(t *testing.T) {
	srv := testServer(t, 12)
	boom := errors.New("late crash")
	srv.SetCrashInjector(&stubCrash{at: 2, err: boom})
	if err := srv.RunContext(context.Background(), 60); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// The engine aborts at the next cancellation check, not at the end of
	// the requested 60 s: the clock should be barely past the crash time.
	if now := srv.Clock().Seconds(); now > 3 {
		t.Errorf("run kept stepping to %.2fs after a 2s crash", now)
	}
}

func TestPanicInjectorUnwindsTheRun(t *testing.T) {
	srv := testServer(t, 13)
	srv.SetCrashInjector(&stubCrash{at: 1, err: nil, panicToo: true})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("injected panic did not surface")
		}
		if !strings.Contains(r.(string), "injected panic") {
			t.Errorf("panic value = %v", r)
		}
	}()
	_ = srv.RunContext(context.Background(), 10)
}

func TestNilInjectorUnchanged(t *testing.T) {
	a, b := testServer(t, 14), testServer(t, 14)
	b.SetCrashInjector(nil)
	a.Run(10)
	if err := b.RunContext(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	dsA, err := a.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	dsB, err := b.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if dsA.Len() != dsB.Len() {
		t.Fatalf("row counts differ: %d vs %d", dsA.Len(), dsB.Len())
	}
	for i := range dsA.Rows {
		if dsA.Rows[i].Power != dsB.Rows[i].Power {
			t.Fatalf("row %d power differs with a nil injector installed", i)
		}
	}
}
