package serve

import (
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"trickledown/internal/adapt"
	"trickledown/internal/align"
	"trickledown/internal/core"
	"trickledown/internal/iobus"
	"trickledown/internal/perfctr"
	"trickledown/internal/power"
	"trickledown/internal/tracez"
)

// adaptSample builds a deterministic 2-CPU sample whose rates sweep
// with i — the adapt package's drill generator, reproduced here so the
// serve-level wiring is tested with the same regime the manager's own
// tests prove out.
func adaptSample(i, n int) perfctr.Sample {
	f := float64(i%n) / float64(n)
	g := float64((i*37)%n) / float64(n)
	const cyc = 2.8e9
	const mcyc = cyc / 1e6
	active := 0.2 + 0.75*f
	upc := 0.3 + 2*g
	buspmc := 200 + 1500*f
	dmapmc := 100 * g
	intspmc := 0.1 + 2*f
	s := perfctr.Sample{
		TargetSeconds: float64(i + 1),
		IntervalSec:   1,
		CPUs:          make([]perfctr.CPUCounts, 2),
		Ints:          make([][]uint64, iobus.NumVectors),
	}
	for v := range s.Ints {
		s.Ints[v] = make([]uint64, 2)
	}
	for c := range s.CPUs {
		cc := &s.CPUs[c]
		cc.Cycles = uint64(cyc)
		cc.HaltedCycles = uint64(cyc * (1 - active))
		cc.FetchedUops = uint64(cyc * upc)
		cc.L3LoadMisses = uint64(80 * mcyc)
		cc.BusTx = uint64(buspmc * mcyc)
		cc.BusPrefetchTx = uint64(buspmc * mcyc / 10)
		cc.DMAOther = uint64(dmapmc * mcyc)
		cc.Uncacheable = uint64(5 * mcyc)
		cc.TLBMisses = uint64(20 * mcyc)
		s.Ints[iobus.VecTimer][c] = uint64(intspmc * mcyc / 2)
		s.Ints[iobus.VecDisk][c] = uint64(intspmc * mcyc / 2)
	}
	return s
}

func adaptSum(v []float64) float64 {
	t := 0.0
	for _, x := range v {
		t += x
	}
	return t
}

// adaptRails synthesizes measured rails; shift scales the activity
// coefficients away from the shift-0 training regime.
func adaptRails(s *perfctr.Sample, shift float64) power.Reading {
	m := core.ExtractMetrics(s)
	k := 1 + shift
	var r power.Reading
	r[power.SubCPU] = 9.25*float64(m.NumCPUs) + k*26.45*adaptSum(m.PercentActive) + k*4.31*adaptSum(m.UopsPerCycle)
	r[power.SubChipset] = 19.0
	busTot := m.TotalBusPMC()
	r[power.SubMemory] = 28 + k*0.018*busTot + 2e-6*busTot*busTot
	ints := adaptSum(m.IntsPMC)
	r[power.SubIO] = 32.7 + k*1.1*ints + 0.04*ints*ints
	di := adaptSum(m.DiskIntsPMC)
	var dm float64
	if len(m.DMAPMC) > 0 {
		dm = adaptSum(m.DMAPMC) / float64(len(m.DMAPMC))
	}
	r[power.SubDisk] = 21.6 + k*2.0*di + 0.05*di*di + 0.002*dm + 1e-6*dm*dm
	return r
}

// adaptChampion fits the production estimator on the shift-0 regime.
func adaptChampion(t *testing.T) *core.Estimator {
	t.Helper()
	const n = 120
	ds := &align.Dataset{Rows: make([]align.Row, n)}
	for i := 0; i < n; i++ {
		s := adaptSample(i, n)
		ds.Rows[i] = align.Row{Power: adaptRails(&s, 0), Counters: s}
	}
	est, err := core.TrainEstimator(core.TrainingSet{CPU: ds, Memory: ds, Disk: ds, IO: ds, Chipset: ds})
	if err != nil {
		t.Fatal(err)
	}
	est.SetProvenance(&core.Provenance{
		SchemaVersion: core.ProvenanceSchemaVersion,
		Version:       "train-test-corpus",
		Fingerprint:   "test-corpus",
		Envelopes:     core.ComputeEnvelopes(ds),
		Reason:        "offline-train",
	})
	return est
}

func adaptManagerConfig(champ *core.Estimator) adapt.Config {
	return adapt.Config{
		Champion:        champ,
		Window:          60,
		MinFill:         30,
		BaselineErrPct:  5,
		AlarmBudgetPct:  60,
		EnvelopeBudgetZ: 1e12,
		RollbackDepth:   3,
		GuardWindow:     25,
		Cooldown:        10,
		PhaseThresholdW: 1000,
		PhaseSettle:     2,
		Seed:            7,
	}
}

// feedAdaptDrill streams pre samples of the training regime then post
// drifted ones through IngestFull in small batches, waiting for the
// worker to drain each so manager decisions are ordered.
func feedAdaptDrill(t *testing.T, s *Server, pre, post int, shift float64) {
	t.Helper()
	const n, chunk = 97, 25
	total := pre + post
	for start := 0; start < total; start += chunk {
		end := start + chunk
		if end > total {
			end = total
		}
		samples := make([]perfctr.Sample, 0, end-start)
		rails := make([]power.Reading, 0, end-start)
		for i := start; i < end; i++ {
			smp := adaptSample(i, n)
			sh := 0.0
			if i >= pre {
				sh = shift
			}
			rails = append(rails, adaptRails(&smp, sh))
			samples = append(samples, smp)
		}
		if err := s.IngestFull("drill", "node0", samples, rails, tracez.Context{}); err != nil {
			t.Fatalf("IngestFull at %d: %v", start, err)
		}
		waitEstimated(t, s, uint64(end))
	}
}

func waitEstimated(t *testing.T, s *Server, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for s.estimated.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("estimated %d, want %d", s.estimated.Load(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdapterHotSwapsServingModel drives the full drill through the
// service: rails-bearing ingest feeds drift detection, the promoted
// challenger lands behind the atomic estimator pointer, and /driftz and
// /statz report the change.
func TestAdapterHotSwapsServingModel(t *testing.T) {
	champ := adaptChampion(t)
	s := newServer(t, Config{Estimator: champ, Workers: 1, QueueDepth: 64})
	m, err := adapt.New(adaptManagerConfig(champ))
	if err != nil {
		t.Fatal(err)
	}
	s.SetAdapter(m)

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	// Before any drift: /driftz live, version is the trained champion's.
	if got := httpGet(t, ts.URL+"/driftz", 200); !strings.Contains(got, `"active_version": "train-test-corpus"`) {
		t.Errorf("/driftz before drill: %s", got)
	}
	if st := s.Stats(); st.ModelVersion != "train-test-corpus" {
		t.Errorf("ModelVersion = %q", st.ModelVersion)
	}

	feedAdaptDrill(t, s, 100, 300, 0.4)

	status := m.Status()
	if status.Swaps == 0 {
		t.Fatalf("no swap after drifted ingest: %+v", status)
	}
	if s.Estimator() != m.Champion() {
		t.Error("serving estimator diverged from manager champion")
	}
	st := s.Stats()
	if st.ModelVersion == "train-test-corpus" || st.ModelVersion == "unversioned" {
		t.Errorf("ModelVersion %q did not follow the swap", st.ModelVersion)
	}
	if got := httpGet(t, ts.URL+"/driftz", 200); !strings.Contains(got, `"swaps": `+fmt.Sprint(status.Swaps)) {
		t.Errorf("/driftz after drill: %s", got)
	}
	// The swapped-in model serves finite, drift-accurate estimates.
	const n = 97
	var adaptiveErr float64
	for i := 0; i < n; i++ {
		smp := adaptSample(i, n)
		truth := adaptRails(&smp, 0.4).Total()
		got := s.Estimator().Estimate(&smp).Total()
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("non-finite estimate after swap at %d", i)
		}
		adaptiveErr += math.Abs(got-truth) / truth * 100
	}
	if adaptiveErr/n >= 9 {
		t.Errorf("post-swap estimator err %.2f%% breaches the paper bound", adaptiveErr/n)
	}
}

// TestAdapterNegativeControl: a corrupted challenger must be rejected
// by the shadow gate and never reach the serving pointer.
func TestAdapterNegativeControl(t *testing.T) {
	champ := adaptChampion(t)
	s := newServer(t, Config{Estimator: champ, Workers: 1, QueueDepth: 64})
	cfg := adaptManagerConfig(champ)
	cfg.ChallengerHook = func(c *core.Estimator) *core.Estimator {
		bad := &core.Model{Spec: core.CPUSpec(), Coef: []float64{40, -26, -4}}
		est, err := core.NewEstimator(bad,
			c.Model(power.SubChipset), c.Model(power.SubMemory),
			c.Model(power.SubIO), c.Model(power.SubDisk))
		if err != nil {
			t.Fatal(err)
		}
		est.SetProvenance(c.Provenance())
		return est
	}
	m, err := adapt.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.SetAdapter(m)

	feedAdaptDrill(t, s, 100, 300, 0.4)

	status := m.Status()
	if status.Swaps != 0 {
		t.Fatalf("corrupted challenger swapped in: %+v", status)
	}
	if status.Rejected == 0 {
		t.Fatalf("gate never exercised: %+v", status)
	}
	if s.Estimator() != champ {
		t.Error("serving estimator changed despite rejection")
	}
	if st := s.Stats(); st.ModelVersion != "train-test-corpus" {
		t.Errorf("ModelVersion = %q after rejected challengers", st.ModelVersion)
	}
}

// TestDriftzWithoutAdapter: the endpoint must 404 (not 500, not empty
// 200) when adaptation is off.
func TestDriftzWithoutAdapter(t *testing.T) {
	s := newServer(t, Config{Estimator: testEstimator(t), Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	httpGet(t, ts.URL+"/driftz", 404)
}

// TestRateLimiterEvictsIdleFirst is the deterministic half of the
// churn regression: with a synthetic clock, cycling more distinct
// clients than the table holds must keep the table bounded and evict
// long-idle identities before recently-active ones.
func TestRateLimiterEvictsIdleFirst(t *testing.T) {
	l := newRateLimiter(1000, 1000)
	l.maxClients = 16
	t0 := time.Unix(1000, 0)
	if !l.allow("steady", 1, t0) {
		t.Fatal("steady client rejected from idle")
	}
	for i := 0; i < 100; i++ {
		now := t0.Add(time.Duration(i+1) * time.Second)
		l.allow(fmt.Sprintf("churn-%d", i), 1, now)
		// The steady client keeps touching its bucket, so its last-use is
		// always the newest and eviction must never pick it.
		if !l.allow("steady", 1, now) {
			t.Fatalf("steady client rate-limited at churn %d", i)
		}
		if got := l.tracked(); got > l.maxClients {
			t.Fatalf("table grew to %d (> %d) at churn %d", got, l.maxClients, i)
		}
	}
	l.mu.Lock()
	_, steadyAlive := l.m["steady"]
	_, oldChurnAlive := l.m["churn-0"]
	l.mu.Unlock()
	if !steadyAlive {
		t.Error("active client evicted")
	}
	if oldChurnAlive {
		t.Error("oldest idle client survived 100 churn rounds in a 16-entry table")
	}
}

// TestRateLimiterChurnConcurrent is the -race half: concurrent
// identity churn well past the table bound must stay bounded and
// data-race free.
func TestRateLimiterChurnConcurrent(t *testing.T) {
	l := newRateLimiter(1e9, 1e9)
	l.maxClients = 64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.allow(fmt.Sprintf("g%d-c%d", g, i), 1, time.Now())
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			l.allow("steady", 1, time.Now())
		}
	}()
	wg.Wait()
	if got := l.tracked(); got > l.maxClients {
		t.Errorf("table at %d after churn (bound %d)", got, l.maxClients)
	}
}
