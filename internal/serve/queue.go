package serve

import (
	"errors"
	"sync"
	"time"

	"trickledown/internal/perfctr"
	"trickledown/internal/power"
	"trickledown/internal/tracez"
)

// batch is one admitted ingest request moving through the request
// journey. The four timestamps are the span taxonomy the latency
// histograms are built from:
//
//	ARRIVED   arrived   request received, body decoded
//	QUEUED    queued    admitted past rate limit + queue bound
//	SCHEDULED (worker)  an estimation worker picked the batch up
//	DEPARTED  (worker)  estimates folded into node state
//
// ARRIVED→QUEUED is admission cost, QUEUED→SCHEDULED is queue wait (the
// overload signal), SCHEDULED→DEPARTED is batched estimation time, and
// ARRIVED→DEPARTED is the end-to-end latency the p99 budget is set on.
type batch struct {
	node    string
	samples []perfctr.Sample
	// rails, when non-nil, is one measured power reading per sample (the
	// TDP1 wire extension) feeding the adapter's drift detection.
	rails   []power.Reading
	arrived time.Time
	queued  time.Time
	// tc is the batch's trace identity (producer- or server-minted); tr
	// is non-nil only when the head sampler elected to record events.
	tc tracez.Context
	tr *tracez.Trace
}

// errQueueClosed distinguishes shutdown from overload inside the queue;
// callers surface ErrClosed / ErrQueueFull respectively.
var errQueueClosed = errors.New("serve: queue closed")

// ingestQueue is the bounded spine of the server: a channel whose
// capacity is the explicit backpressure boundary. Enqueue never blocks —
// a full queue is an immediate, honest 429 to the producer rather than
// unbounded memory growth or silent latency.
type ingestQueue struct {
	mu     sync.RWMutex
	ch     chan *batch
	closed bool
}

func newIngestQueue(depth int) *ingestQueue {
	return &ingestQueue{ch: make(chan *batch, depth)}
}

// tryEnqueue admits b or reports why not (errQueueClosed, ErrQueueFull).
// The caller stamps b.queued before the send — after it, a worker may
// already own the batch.
func (q *ingestQueue) tryEnqueue(b *batch) error {
	q.mu.RLock()
	defer q.mu.RUnlock()
	if q.closed {
		return errQueueClosed
	}
	select {
	case q.ch <- b:
		return nil
	default:
		return ErrQueueFull
	}
}

// close stops intake. Workers drain whatever is already queued and then
// see the channel close.
func (q *ingestQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.closed {
		q.closed = true
		close(q.ch)
	}
}

// depth returns the number of queued batches.
func (q *ingestQueue) depth() int { return len(q.ch) }

// capacity returns the queue bound.
func (q *ingestQueue) capacity() int { return cap(q.ch) }
