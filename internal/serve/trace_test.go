package serve

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"trickledown/internal/perfctr"
	"trickledown/internal/telemetry"
	"trickledown/internal/tracez"
)

// drainTraces polls the recorder until at least want traces finished
// (workers run async) or the deadline passes.
func drainTraces(t *testing.T, rec *tracez.Recorder, want uint64) tracez.Snapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if rec.Stats().Finished >= want {
			return rec.Snapshot()
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("only %d traces finished, want %d", rec.Stats().Finished, want)
	return tracez.Snapshot{}
}

func eventKinds(tr tracez.TraceJSON) []string {
	out := make([]string, len(tr.Events))
	for i, ev := range tr.Events {
		out[i] = ev.Kind
	}
	return out
}

func TestSampledTraceRecordsFullJourney(t *testing.T) {
	s := newServer(t, Config{Estimator: testEstimator(t), Workers: 1, TraceSampleRate: 1})
	tc := s.Tracer().Mint()
	if !tc.Sampled {
		t.Fatal("rate-1 mint not sampled")
	}
	if err := s.IngestTraced("c1", "node-a", mkBatch(4, 2, 100), tc); err != nil {
		t.Fatalf("IngestTraced: %v", err)
	}
	snap := drainTraces(t, s.Tracer(), 1)
	if len(snap.Recent) != 1 {
		t.Fatalf("recent = %d traces, want 1", len(snap.Recent))
	}
	tr := snap.Recent[0]
	if tr.ID != tc.ID.String() {
		t.Errorf("trace ID = %s, want the minted %s", tr.ID, tc.ID)
	}
	if tr.Outcome != "ok" || tr.Anomaly {
		t.Errorf("outcome = %q anomaly=%v, want ok/false", tr.Outcome, tr.Anomaly)
	}
	want := []string{"ADMITTED", "ENQUEUED", "SCHEDULED", "ESTIMATED", "DEPARTED"}
	got := eventKinds(tr)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("event chain = %v, want %v", got, want)
	}
	// DEPARTED carries the batch size; the stage durations are derived.
	if last := tr.Events[len(tr.Events)-1]; last.Arg != 4 {
		t.Errorf("DEPARTED arg = %d, want 4 samples", last.Arg)
	}
	if tr.E2EMs <= 0 {
		t.Errorf("e2e duration = %gms, want > 0", tr.E2EMs)
	}

	// The sampled batch fed the latency histograms through the exemplar
	// path: the OpenMetrics rendering must link a bucket to this trace.
	var buf strings.Builder
	if err := telemetry.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `trace_id="`+tc.ID.String()+`"`) {
		t.Error("OpenMetrics exposition lacks an exemplar for the sampled trace")
	}
}

func TestHTTPTracezEndpoint(t *testing.T) {
	s := newServer(t, Config{Estimator: testEstimator(t), Workers: 1, TraceSampleRate: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	buf, err := perfctr.EncodeBatchExt(nil, "node-h", mkBatch(3, 1, 50),
		perfctr.TraceExt{ID: [16]byte(tracez.NewTraceID()), Sampled: true})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/ingest", "application/octet-stream", strings.NewReader(string(buf)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 202 {
		t.Fatalf("ingest = %d, want 202", resp.StatusCode)
	}
	drainTraces(t, s.Tracer(), 1)

	body := httpGet(t, ts.URL+"/debug/tracez?format=json&view=recent", 200)
	var snap tracez.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("tracez JSON: %v", err)
	}
	if len(snap.Recent) != 1 || snap.Recent[0].Node != "node-h" {
		t.Fatalf("tracez recent = %+v, want one node-h trace", snap.Recent)
	}
	if html := httpGet(t, ts.URL+"/debug/tracez", 200); !strings.Contains(html, "node-h") {
		t.Error("tracez HTML view missing the trace")
	}
}

func TestShedAnomalyAlwaysKeptAndBundled(t *testing.T) {
	diag := t.TempDir()
	inj := &blockingInjector{release: make(chan struct{})}
	s := newServer(t, Config{
		Estimator: testEstimator(t), Workers: 1, QueueDepth: 1,
		TraceSampleRate: 0, DiagDir: diag,
	})
	s.SetFaultInjector(inj)
	defer close(inj.release)

	// Wedge the single worker, fill the queue, then overflow it.
	var shedID tracez.TraceID
	deadline := time.Now().Add(5 * time.Second)
	for {
		tc := s.Tracer().Mint()
		if err := s.IngestTraced("c1", "node-s", mkBatch(1, 1, 10), tc); err == ErrQueueFull {
			shedID = tc.ID
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
	}

	snap := s.Tracer().Snapshot()
	if len(snap.Errored) != 1 {
		t.Fatalf("errored = %d traces, want the shed anomaly", len(snap.Errored))
	}
	tr := snap.Errored[0]
	if tr.ID != shedID.String() || tr.Outcome != "shed:queue_full" || !tr.Anomaly {
		t.Errorf("shed trace = %+v, want always-kept shed:queue_full for %s", tr, shedID)
	}
	if kinds := eventKinds(tr); len(kinds) != 1 || kinds[0] != "SHED" {
		t.Errorf("shed events = %v, want [SHED]", kinds)
	}

	// Entering shedding must have triggered a diagnostics bundle.
	bundleDeadline := time.Now().Add(5 * time.Second)
	for s.LastDiagBundle() == "" {
		if time.Now().After(bundleDeadline) {
			t.Fatal("no diagnostics bundle after shed transition")
		}
		time.Sleep(5 * time.Millisecond)
	}
	bundle := s.LastDiagBundle()
	if !strings.HasPrefix(bundle, diag) {
		t.Errorf("bundle %q outside DiagDir %q", bundle, diag)
	}
	if _, err := os.Stat(filepath.Join(bundle, "tracez.json")); err != nil {
		t.Errorf("bundle missing tracez.json: %v", err)
	}
	if s.Stats().LastDiagBundle != bundle {
		t.Error("Stats does not report the bundle path")
	}
}

func TestUnsampledQuarantineReconstructed(t *testing.T) {
	s := newServer(t, Config{Estimator: nanEstimator(t), Workers: 1, TraceSampleRate: 0})
	tc := s.Tracer().Mint()
	if tc.Sampled {
		t.Fatal("rate-0 mint sampled")
	}
	if err := s.IngestTraced("c1", "node-q", mkBatch(3, 1, 7), tc); err != nil {
		t.Fatalf("IngestTraced: %v", err)
	}
	snap := drainTraces(t, s.Tracer(), 1)
	if len(snap.Errored) != 1 {
		t.Fatalf("errored = %d, want the reconstructed quarantine trace", len(snap.Errored))
	}
	tr := snap.Errored[0]
	if tr.ID != tc.ID.String() || tr.Outcome != "quarantine" {
		t.Errorf("trace = id %s outcome %q, want %s / quarantine", tr.ID, tr.Outcome, tc.ID)
	}
	kinds := eventKinds(tr)
	if strings.Join(kinds, ",") != "ADMITTED,ENQUEUED,SCHEDULED,QUARANTINE,DEPARTED" {
		t.Errorf("reconstructed chain = %v", kinds)
	}
	for _, ev := range tr.Events {
		if ev.Kind == "QUARANTINE" && ev.Arg != 3 {
			t.Errorf("QUARANTINE arg = %d, want all 3 samples", ev.Arg)
		}
	}
}

func TestUnsampledSlowOutlierPromoted(t *testing.T) {
	s := newServer(t, Config{
		Estimator: testEstimator(t), Workers: 1,
		TraceSampleRate: 0, SlowTrace: time.Nanosecond,
	})
	if err := s.Ingest("c1", "node-slow", mkBatch(2, 1, 3)); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	snap := drainTraces(t, s.Tracer(), 1)
	if len(snap.Errored) != 1 || snap.Errored[0].Outcome != "slow" {
		t.Fatalf("errored = %+v, want one slow-promoted trace", snap.Errored)
	}
}

// TestIngestUnsampledAllocs is the hot-path gate from the acceptance
// criteria: with sampling disabled, admitting a batch must not allocate
// per sample — the whole Ingest call is bounded by the one batch header
// allocation (plus measurement noise), no matter the batch size.
func TestIngestUnsampledAllocs(t *testing.T) {
	s, err := New(Config{
		Estimator: testEstimator(t), QueueDepth: 1 << 14, TraceSampleRate: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Never started: batches park in the queue, isolating admission cost.
	samples := mkBatch(64, 2, 0)
	allocs := testing.AllocsPerRun(100, func() {
		if err := s.Ingest("bench-client", "bench-node", samples); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
	})
	// One allocation for the batch header; anything scaling with the 64
	// samples would push this far past the bound.
	if allocs > 2 {
		t.Errorf("Ingest allocations = %g per 64-sample batch, want <= 2", allocs)
	}
}

// TestShedBatchesSkipLatencyHistograms is the satellite-4 coverage:
// under forced shedding, queue-wait observations come only from
// admitted batches, and shed batches never contribute to the
// service-time series. The histograms are process-wide, so the test
// asserts on count deltas.
func TestShedBatchesSkipLatencyHistograms(t *testing.T) {
	inj := &blockingInjector{release: make(chan struct{})}
	s := newServer(t, Config{
		Estimator: testEstimator(t), Workers: 1, QueueDepth: 2, TraceSampleRate: 0,
	})
	s.SetFaultInjector(inj)

	// Wedge the worker and fill the queue: these are the admitted batches.
	admitted := 0
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := s.Ingest("c1", "node-hist", mkBatch(1, 1, 5))
		if err == ErrQueueFull {
			break
		}
		if err != nil {
			t.Fatalf("Ingest: %v", err)
		}
		admitted++
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
	}

	qwBefore, svBefore, e2eBefore := mQueueWait.Count(), mService.Count(), mE2E.Count()
	shed := 0
	for i := 0; i < 5; i++ {
		if err := s.Ingest("c1", "node-hist", mkBatch(1, 1, 5)); err == ErrQueueFull {
			shed++
		}
	}
	if shed != 5 {
		t.Fatalf("shed %d of 5 overflow batches", shed)
	}
	if qw, sv, e2e := mQueueWait.Count(), mService.Count(), mE2E.Count(); qw != qwBefore || sv != svBefore || e2e != e2eBefore {
		t.Errorf("shed batches moved histogram counts: queue_wait +%d service +%d e2e +%d",
			qw-qwBefore, sv-svBefore, e2e-e2eBefore)
	}

	// Release the workers; exactly the admitted batches flow through.
	close(inj.release)
	closeServer(t, s)
	if got := mQueueWait.Count() - qwBefore; got != uint64(admitted) {
		t.Errorf("queue-wait observations = %d, want the %d admitted batches", got, admitted)
	}
	if got := mService.Count() - svBefore; got != uint64(admitted) {
		t.Errorf("service observations = %d, want %d", got, admitted)
	}
}
