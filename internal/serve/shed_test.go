package serve

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"trickledown/internal/faults"
	"trickledown/internal/perfctr"
)

// slowFaults wraps a real faults.Injector and adds a fixed service-time
// cost per sample (charged on CPU 0), so a drill can push the server
// into genuine overload deterministically while the wrapped injector
// glitches counters exactly as a production fault plan would.
type slowFaults struct {
	inner   *faults.Injector
	perCall time.Duration
}

func (s *slowFaults) PerturbCounts(t float64, cpu int, c *perfctr.CPUCounts) {
	if cpu == 0 {
		time.Sleep(s.perCall)
	}
	s.inner.PerturbCounts(t, cpu, c)
}

// TestSheddingDrillUnderOverload is the ISSUE's overload drill: drive
// ~2x the server's capacity with a seeded CounterGlitch fault plan
// attached, and assert the failure mode is the designed one — bounded
// queue, explicit ErrQueueFull shedding, a degraded-flagged fleet
// aggregate, and never a NaN power number.
func TestSheddingDrillUnderOverload(t *testing.T) {
	plan := &faults.Plan{
		Seed: 42,
		Specs: []faults.Spec{{
			Kind:      faults.CounterGlitch,
			CPU:       -1,
			Magnitude: 0.5, // glitch half the samples
		}},
	}
	if err := plan.Validate(); err != nil {
		t.Fatalf("plan: %v", err)
	}

	const (
		batchN  = 8
		perCall = 500 * time.Microsecond // ~4ms per batch of 8
		sends   = 60
	)
	s, err := New(Config{Estimator: testEstimator(t), Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Start()
	s.SetFaultInjector(&slowFaults{inner: plan.Injector("drill-node"), perCall: perCall})

	// Send as fast as possible: with one worker at ~4ms/batch and no
	// pacing, the bounded queue must overflow quickly.
	var admitted, shed int
	maxDepth := 0
	for i := 0; i < sends; i++ {
		err := s.Ingest("drill", "drill-node", mkBatch(batchN, 2, float64(i*batchN)))
		switch {
		case err == nil:
			admitted++
		case errors.Is(err, ErrQueueFull):
			shed++
		default:
			t.Fatalf("send %d: unexpected error %v", i, err)
		}
		if d := s.QueueDepth(); d > maxDepth {
			maxDepth = d
		}
	}

	if shed == 0 {
		t.Fatal("overload drill shed nothing: backpressure never engaged")
	}
	if admitted == 0 {
		t.Fatal("overload drill admitted nothing")
	}
	if maxDepth > 4 {
		t.Errorf("queue depth reached %d, bound is 4: queue growth is not bounded", maxDepth)
	}
	if !s.SheddingActive() {
		t.Error("SheddingActive = false immediately after queue_full rejections")
	}

	// Mid-overload the fleet view must be degraded but never NaN.
	fleet := s.Fleet()
	if !fleet.Degraded || !fleet.SheddingActive {
		t.Errorf("fleet degraded=%v shedding=%v during drill, want true/true", fleet.Degraded, fleet.SheddingActive)
	}
	for k, v := range fleet.Power {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("fleet %s = %v under overload: non-finite power escaped", k, v)
		}
	}

	// Graceful close drains every admitted batch; the books balance.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st := s.Stats()
	if st.SamplesIngested != uint64(admitted*batchN) {
		t.Errorf("ingested %d, want %d", st.SamplesIngested, admitted*batchN)
	}
	if st.SamplesEstimated != uint64(admitted*batchN) {
		t.Errorf("estimated %d, want all %d admitted", st.SamplesEstimated, admitted*batchN)
	}
	if st.SamplesShed != uint64(shed*batchN) {
		t.Errorf("shed %d, want %d", st.SamplesShed, shed*batchN)
	}
	np, ok := s.NodePower("drill-node")
	if !ok {
		t.Fatal("drill-node not tracked")
	}
	total := np.Power["Total"]
	if math.IsNaN(total) || math.IsInf(total, 0) {
		t.Errorf("node total %v after glitched drill, want finite", total)
	}
}
