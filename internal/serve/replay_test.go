package serve

import (
	"context"
	"testing"
	"time"

	"trickledown/internal/align"
)

// replayDataset fabricates an aligned dataset of n one-second samples.
func replayDataset(n int) *align.Dataset {
	ds := &align.Dataset{}
	for i := 0; i < n; i++ {
		ds.Rows = append(ds.Rows, align.Row{
			Counters: mkSample(float64(i+1), 2, uint64(i)),
		})
	}
	return ds
}

func TestIngestDatasetDrains(t *testing.T) {
	s, err := New(Config{Estimator: testEstimator(t), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Close(context.Background())

	ds := replayDataset(100)
	sent, err := s.IngestDataset(context.Background(), "replayer", "node-a", ds, 7)
	if err != nil {
		t.Fatal(err)
	}
	if sent != 100 {
		t.Fatalf("sent %d of 100", sent)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := s.Stats(); st.SamplesEstimated >= 100 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drain timed out: %+v", s.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	np, ok := s.NodePower("node-a")
	if !ok {
		t.Fatal("node-a unknown after ingest")
	}
	if np.Samples != 100 || np.LastTargetSeconds != 100 {
		t.Fatalf("node view %+v", np)
	}
	if len(np.Power) == 0 || np.Power["Total"] <= 0 {
		t.Fatalf("no power estimate: %+v", np.Power)
	}
}

func TestIngestDatasetRetriesBackpressure(t *testing.T) {
	// One worker, tiny queue and batches: the loop must survive
	// ErrQueueFull by retrying rather than dropping rows.
	s, err := New(Config{Estimator: testEstimator(t), Workers: 1, QueueDepth: 1, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Close(context.Background())

	ds := replayDataset(64)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	sent, err := s.IngestDataset(ctx, "replayer", "node-b", ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sent != 64 {
		t.Fatalf("sent %d of 64", sent)
	}
}

func TestIngestDatasetContextCancel(t *testing.T) {
	s, err := New(Config{Estimator: testEstimator(t), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	s.Close(context.Background()) // closed server rejects ingest

	ds := replayDataset(8)
	if _, err := s.IngestDataset(context.Background(), "replayer", "node-c", ds, 4); err == nil {
		t.Fatal("ingest into closed server succeeded")
	}
}
