// Package serve is the live counterpart of the batch pipeline: a
// long-running power-estimation service that ingests batches of
// perfctr.Sample counter records per node over the wire, runs the five
// trained subsystem estimators online, and serves per-node and
// fleet-aggregate power under an explicit latency budget.
//
// The spine is a bounded ingest queue with honest backpressure: a full
// queue is an immediate 429 + Retry-After to the producer, never
// unbounded memory growth. Admission is guarded by per-client token
// buckets (denominated in samples, the resource that saturates the
// estimation workers), estimation runs on batched workers driven
// through internal/pool, and every batch carries the request-journey
// span taxonomy — ARRIVED → QUEUED → SCHEDULED → DEPARTED — so queue
// wait is a first-class measured interval in the latency histograms,
// not a blind spot inside an end-to-end number.
//
// Overload degrades gracefully instead of lying: shed samples are
// counted by reason, the fleet aggregate flags itself degraded while
// shedding or while nodes go stale, and non-finite estimates (glitched
// counters, poisoned models) are quarantined into a counter while the
// node keeps reporting its last good reading. The internal/faults
// injector machinery plugs in via SetFaultInjector for overload and
// corruption drills.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"trickledown/internal/core"
	"trickledown/internal/perfctr"
	"trickledown/internal/pool"
	"trickledown/internal/power"
	"trickledown/internal/sim"
	"trickledown/internal/telemetry"
)

// latencyBuckets resolve the service's operating range: ingest-to-
// estimate is expected in the 10 µs – 10 ms band, with the tail buckets
// catching overload (where queue wait dominates).
var latencyBuckets = []float64{
	1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1, 5,
}

// Serve telemetry is process-wide like every other package's: one
// service picture regardless of how many Server values exist (tests
// assert on per-server Stats instead).
var (
	mSamplesIngested = telemetry.NewCounter("serve_samples_ingested_total",
		"counter samples admitted into the ingest queue")
	mSamplesEstimated = telemetry.NewCounter("serve_samples_estimated_total",
		"samples run through the subsystem estimators")
	mSamplesShed = telemetry.NewCounterVec("serve_samples_shed_total",
		"samples rejected at admission, by reason", "reason")
	mBatches = telemetry.NewCounter("serve_batches_processed_total",
		"ingest batches fully estimated")
	mQueueDepth = telemetry.NewGauge("serve_queue_depth",
		"ingest batches waiting for an estimation worker")
	mNodesTracked = telemetry.NewGauge("serve_nodes_tracked",
		"distinct nodes with live power state")
	mNonFinite = telemetry.NewCounter("serve_nonfinite_estimates_total",
		"per-sample estimates dropped because a rail came back NaN/Inf")
	mShedding = telemetry.NewGauge("serve_shedding",
		"1 while admission control is actively shedding (queue recently full)")
	mEstimatePanics = telemetry.NewCounter("serve_estimate_panics_total",
		"estimation batch panics recovered (and retried per policy)")
	mAdmission = telemetry.NewHistogram("serve_admission_seconds",
		"ARRIVED to QUEUED: decode plus admission control", latencyBuckets)
	mQueueWait = telemetry.NewHistogram("serve_queue_wait_seconds",
		"QUEUED to SCHEDULED: batch wait for an estimation worker", latencyBuckets)
	mService = telemetry.NewHistogram("serve_service_seconds",
		"SCHEDULED to DEPARTED: batched estimation time", latencyBuckets)
	mE2E = telemetry.NewHistogram("serve_e2e_seconds",
		"ARRIVED to DEPARTED: end-to-end ingest-to-estimate latency", latencyBuckets)
)

// Admission errors, surfaced by Ingest and mapped to HTTP statuses by
// the handler (429/429/503/413 respectively).
var (
	ErrQueueFull     = errors.New("serve: ingest queue full")
	ErrRateLimited   = errors.New("serve: client rate limited")
	ErrClosed        = errors.New("serve: server closed")
	ErrBatchTooLarge = errors.New("serve: batch exceeds sample limit")
)

// shedHold is how long after a queue-full rejection the server reports
// itself as actively shedding: long enough for scrapers at 1 Hz to see
// the state, short enough to clear promptly once producers back off.
const shedHold = 2 * time.Second

// Config configures a Server. The zero value of every field except
// Estimator is usable; defaults are documented per field.
type Config struct {
	// Estimator is the trained five-subsystem power estimator. Required.
	Estimator *core.Estimator
	// QueueDepth bounds the ingest queue in batches (default 256). The
	// bound times the mean batch size is the server's overload buffer.
	QueueDepth int
	// MaxBatch caps samples per ingest request (default 8192); larger
	// requests are rejected whole with ErrBatchTooLarge.
	MaxBatch int
	// Workers is the number of estimation workers (default GOMAXPROCS).
	Workers int
	// RatePerClient is the per-client admission rate in samples/sec;
	// non-positive disables per-client limiting.
	RatePerClient float64
	// Burst is the token-bucket capacity (default max(RatePerClient,
	// 4*MaxBatch) so one full batch is always admissible from idle).
	Burst float64
	// RetryAfter is advertised on 429 responses (default 1s).
	RetryAfter time.Duration
	// NominalHz is the sampled machines' core clock for per-cycle
	// normalization (default sim.DefaultCoreHz).
	NominalHz float64
	// Retry is the per-batch estimation retry policy for recovered
	// panics (default: no retries). The backoff schedule is
	// pool.Retry's overflow-safe doubling.
	Retry pool.Retry
	// StaleAfter is the wall-clock age past which a node's last reading
	// is excluded from the fleet aggregate and counted stale
	// (default 15s).
	StaleAfter time.Duration
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8192
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Burst <= 0 {
		c.Burst = c.RatePerClient
		if min := 4 * float64(c.MaxBatch); c.Burst < min {
			c.Burst = min
		}
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.NominalHz <= 0 {
		c.NominalHz = sim.DefaultCoreHz
	}
	if c.StaleAfter <= 0 {
		c.StaleAfter = 15 * time.Second
	}
	return c
}

// nodeState is one node's live power view, updated by estimation
// workers and read by query handlers.
type nodeState struct {
	mu        sync.Mutex
	samples   uint64
	nonfinite uint64
	lastT     float64       // target clock of the newest estimated sample
	lastWall  time.Time     // wall clock of the newest estimate
	last      power.Reading // last good (finite) per-rail estimate
	hasGood   bool
}

// apply folds one processed batch into the node state.
func (n *nodeState) apply(wall time.Time, count, bad uint64, lastT float64, last power.Reading, hasGood bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.samples += count
	n.nonfinite += bad
	if count > bad && lastT >= n.lastT {
		n.lastT = lastT
		if hasGood {
			n.last = last
			n.hasGood = true
		}
	}
	n.lastWall = wall
}

// Server is the live estimation service. Create with New, start with
// Start, stop with Close. All methods are safe for concurrent use.
type Server struct {
	cfg     Config
	est     *core.Estimator
	queue   *ingestQueue
	limiter *rateLimiter
	p       *pool.Pool

	nodesMu sync.RWMutex
	nodes   map[string]*nodeState

	faultMu sync.RWMutex
	fault   perfctr.FaultInjector

	ctx         context.Context
	cancel      context.CancelFunc
	workersDone chan struct{}
	started     atomic.Bool
	shedUntil   atomic.Int64 // unix nanos; shedding active while now < shedUntil

	// Per-server counters mirror the process-wide telemetry so tests
	// and multi-server processes get isolated numbers.
	ingested  atomic.Uint64
	estimated atomic.Uint64
	shed      atomic.Uint64
	nonfinite atomic.Uint64
	panics    atomic.Uint64
}

// New validates cfg and returns an unstarted server.
func New(cfg Config) (*Server, error) {
	if cfg.Estimator == nil {
		return nil, fmt.Errorf("serve: Config.Estimator is required")
	}
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:         cfg,
		est:         cfg.Estimator,
		queue:       newIngestQueue(cfg.QueueDepth),
		limiter:     newRateLimiter(cfg.RatePerClient, cfg.Burst),
		p:           pool.New(cfg.Workers),
		nodes:       make(map[string]*nodeState),
		ctx:         ctx,
		cancel:      cancel,
		workersDone: make(chan struct{}),
	}, nil
}

// Start launches the estimation workers. It must be called exactly once.
func (s *Server) Start() {
	if !s.started.CompareAndSwap(false, true) {
		panic("serve: Server started twice")
	}
	go func() {
		defer close(s.workersDone)
		// The pool is sized to Workers, so every loop is dispatched
		// immediately and holds its slot for the server's lifetime; pool
		// telemetry and panic containment come along for free.
		_ = s.p.Run(s.ctx, s.cfg.Workers, func(ctx context.Context, i int) error {
			s.workerLoop(ctx)
			return nil
		})
	}()
}

// Close stops intake, lets the workers drain everything already queued,
// and waits for them to exit. ctx bounds the drain: if it fires first,
// the remaining queue is abandoned (hard cancel) and ctx.Err returned.
func (s *Server) Close(ctx context.Context) error {
	s.queue.close()
	if !s.started.Load() {
		s.cancel()
		return nil
	}
	select {
	case <-s.workersDone:
		s.cancel()
		return nil
	case <-ctx.Done():
		s.cancel()
		<-s.workersDone
		return ctx.Err()
	}
}

// SetFaultInjector installs (or with nil removes) a counter fault
// injector applied to every sample before estimation — the
// internal/faults drill hook.
func (s *Server) SetFaultInjector(f perfctr.FaultInjector) {
	s.faultMu.Lock()
	s.fault = f
	s.faultMu.Unlock()
}

func (s *Server) faultInjector() perfctr.FaultInjector {
	s.faultMu.RLock()
	defer s.faultMu.RUnlock()
	return s.fault
}

// Ingest admits a batch of one node's samples on behalf of client. It
// returns nil when the batch is queued (ARRIVED→QUEUED), or one of
// ErrBatchTooLarge, ErrRateLimited, ErrQueueFull, ErrClosed. The samples
// slice is owned by the server after a nil return.
func (s *Server) Ingest(client, node string, samples []perfctr.Sample) error {
	if len(samples) == 0 {
		return nil
	}
	arrived := time.Now()
	n := uint64(len(samples))
	if len(samples) > s.cfg.MaxBatch {
		s.shedN("batch_too_large", n)
		return fmt.Errorf("%w: %d > %d", ErrBatchTooLarge, len(samples), s.cfg.MaxBatch)
	}
	if !s.limiter.allow(client, float64(len(samples)), arrived) {
		s.shedN("rate_limited", n)
		return ErrRateLimited
	}
	b := &batch{node: node, samples: samples, arrived: arrived}
	if err := s.queue.tryEnqueue(b); err != nil {
		if errors.Is(err, errQueueClosed) {
			s.shedN("closed", n)
			return ErrClosed
		}
		s.markShedding()
		s.shedN("queue_full", n)
		return ErrQueueFull
	}
	mQueueDepth.Set(float64(s.queue.depth()))
	mAdmission.Observe(b.queued.Sub(arrived).Seconds())
	mSamplesIngested.Add(n)
	s.ingested.Add(n)
	return nil
}

// shedN counts rejected samples under a reason label.
func (s *Server) shedN(reason string, n uint64) {
	mSamplesShed.With(reason).Add(n)
	s.shed.Add(n)
}

// markShedding opens (or extends) the shedding window.
func (s *Server) markShedding() {
	s.shedUntil.Store(time.Now().Add(shedHold).UnixNano())
	mShedding.Set(1)
}

// SheddingActive reports whether the server rejected work for queue-full
// within the last shedHold.
func (s *Server) SheddingActive() bool {
	active := time.Now().UnixNano() < s.shedUntil.Load()
	if !active {
		mShedding.Set(0)
	}
	return active
}

// workerLoop drains the queue until it closes (graceful Close) or ctx
// fires (hard cancel, abandoning queued batches).
func (s *Server) workerLoop(ctx context.Context) {
	scratch := &core.Metrics{}
	for {
		// Priority check: when a hard cancel and queued work are both
		// ready, select picks randomly — a cancelled worker must not
		// keep draining.
		if ctx.Err() != nil {
			return
		}
		select {
		case <-ctx.Done():
			return
		case b, ok := <-s.queue.ch:
			if !ok {
				return
			}
			mQueueDepth.Set(float64(s.queue.depth()))
			s.runBatch(ctx, b, scratch)
		}
	}
}

// runBatch estimates one batch under the retry policy: a panicking
// estimation attempt (poisoned model, hostile sample) is recovered,
// counted, and retried with overflow-safe backoff; retries exhausted
// means the batch is dropped, never the worker.
func (s *Server) runBatch(ctx context.Context, b *batch, scratch *core.Metrics) {
	attempts := s.cfg.Retry.Attempts
	if attempts < 1 {
		attempts = 1
	}
	for attempt := 1; ; attempt++ {
		err := s.processProtected(b, scratch)
		if err == nil || attempt >= attempts {
			return
		}
		if wait := s.cfg.Retry.Backoff(attempt); wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				t.Stop()
				return
			case <-t.C:
			}
		} else if ctx.Err() != nil {
			return
		}
	}
}

// processProtected is one estimation attempt with panic containment.
func (s *Server) processProtected(b *batch, scratch *core.Metrics) (err error) {
	defer func() {
		if v := recover(); v != nil {
			mEstimatePanics.Inc()
			s.panics.Add(1)
			err = pool.NewPanicError(v)
		}
	}()
	s.process(b, scratch)
	return nil
}

// process runs the batch through the estimators (SCHEDULED→DEPARTED)
// and folds the result into node state. Non-finite per-sample estimates
// are quarantined into counters; the node keeps its last good reading so
// the fleet aggregate never turns NaN.
func (s *Server) process(b *batch, scratch *core.Metrics) {
	scheduled := time.Now()
	mQueueWait.Observe(scheduled.Sub(b.queued).Seconds())
	fault := s.faultInjector()
	var (
		bad     uint64
		lastT   float64
		lastR   power.Reading
		hasGood bool
	)
	for i := range b.samples {
		smp := &b.samples[i]
		if fault != nil {
			for c := range smp.CPUs {
				fault.PerturbCounts(smp.TargetSeconds, c, &smp.CPUs[c])
			}
		}
		core.ExtractMetricsAtInto(scratch, smp, s.cfg.NominalHz)
		r := s.est.EstimateMetrics(scratch)
		if finiteReading(r) {
			lastR = r
			hasGood = true
		} else {
			bad++
			mNonFinite.Inc()
			s.nonfinite.Add(1)
		}
		if smp.TargetSeconds > lastT {
			lastT = smp.TargetSeconds
		}
	}
	departed := time.Now()
	s.node(b.node).apply(departed, uint64(len(b.samples)), bad, lastT, lastR, hasGood)
	mSamplesEstimated.Add(uint64(len(b.samples)))
	s.estimated.Add(uint64(len(b.samples)))
	mBatches.Inc()
	mService.Observe(departed.Sub(scheduled).Seconds())
	mE2E.Observe(departed.Sub(b.arrived).Seconds())
}

// finiteReading reports whether every rail of r is finite.
func finiteReading(r power.Reading) bool {
	for _, v := range r {
		if v != v || v > 1e308 || v < -1e308 {
			return false
		}
	}
	return true
}

// node returns (creating on first sight) the state for a node name.
func (s *Server) node(name string) *nodeState {
	s.nodesMu.RLock()
	st, ok := s.nodes[name]
	s.nodesMu.RUnlock()
	if ok {
		return st
	}
	s.nodesMu.Lock()
	defer s.nodesMu.Unlock()
	if st, ok = s.nodes[name]; ok {
		return st
	}
	st = &nodeState{}
	s.nodes[name] = st
	mNodesTracked.Set(float64(len(s.nodes)))
	return st
}

// QueueDepth returns the number of batches waiting for a worker.
func (s *Server) QueueDepth() int { return s.queue.depth() }

// NodePower is one node's live power view.
type NodePower struct {
	Node string `json:"node"`
	// Samples is how many of the node's samples reached the estimators;
	// NonFinite of those produced a NaN/Inf rail and were quarantined.
	Samples   uint64 `json:"samples"`
	NonFinite uint64 `json:"nonfinite,omitempty"`
	// LastTargetSeconds is the target-clock timestamp of the newest
	// estimated sample; AgeSeconds its wall-clock staleness.
	LastTargetSeconds float64 `json:"last_target_seconds"`
	AgeSeconds        float64 `json:"age_seconds"`
	Stale             bool    `json:"stale"`
	// Power is the last good per-rail estimate plus "Total", in Watts.
	// Empty until the node's first finite estimate.
	Power map[string]float64 `json:"power_w,omitempty"`
}

// NodePower returns the live view of one node.
func (s *Server) NodePower(name string) (NodePower, bool) {
	s.nodesMu.RLock()
	st, ok := s.nodes[name]
	s.nodesMu.RUnlock()
	if !ok {
		return NodePower{}, false
	}
	now := time.Now()
	st.mu.Lock()
	defer st.mu.Unlock()
	np := NodePower{
		Node:              name,
		Samples:           st.samples,
		NonFinite:         st.nonfinite,
		LastTargetSeconds: st.lastT,
	}
	if !st.lastWall.IsZero() {
		np.AgeSeconds = now.Sub(st.lastWall).Seconds()
	}
	np.Stale = st.lastWall.IsZero() || now.Sub(st.lastWall) > s.cfg.StaleAfter
	if st.hasGood {
		np.Power = readingMap(st.last)
	}
	return np, true
}

// FleetPower is the cross-node aggregate.
type FleetPower struct {
	Nodes int `json:"nodes"`
	// Stale nodes are tracked but too old to contribute to Power.
	Stale int `json:"stale"`
	// Degraded means the aggregate is not the whole truth right now:
	// admission is shedding, nodes have gone stale, or estimates are
	// coming back non-finite.
	Degraded         bool   `json:"degraded"`
	SheddingActive   bool   `json:"shedding_active"`
	QueueDepth       int    `json:"queue_depth"`
	QueueCapacity    int    `json:"queue_capacity"`
	SamplesIngested  uint64 `json:"samples_ingested"`
	SamplesEstimated uint64 `json:"samples_estimated"`
	SamplesShed      uint64 `json:"samples_shed"`
	NonFinite        uint64 `json:"nonfinite_estimates"`
	// Power sums the last good reading of every fresh node, per rail
	// plus "Total", in Watts.
	Power map[string]float64 `json:"power_w"`
}

// Fleet aggregates every fresh node's last good reading.
func (s *Server) Fleet() FleetPower {
	now := time.Now()
	s.nodesMu.RLock()
	states := make(map[string]*nodeState, len(s.nodes))
	for k, v := range s.nodes {
		states[k] = v
	}
	s.nodesMu.RUnlock()
	var sum power.Reading
	fp := FleetPower{
		Nodes:            len(states),
		SheddingActive:   s.SheddingActive(),
		QueueDepth:       s.queue.depth(),
		QueueCapacity:    s.queue.capacity(),
		SamplesIngested:  s.ingested.Load(),
		SamplesEstimated: s.estimated.Load(),
		SamplesShed:      s.shed.Load(),
		NonFinite:        s.nonfinite.Load(),
	}
	for _, st := range states {
		st.mu.Lock()
		fresh := !st.lastWall.IsZero() && now.Sub(st.lastWall) <= s.cfg.StaleAfter
		if fresh && st.hasGood {
			for i := range sum {
				sum[i] += st.last[i]
			}
		} else {
			fp.Stale++
		}
		st.mu.Unlock()
	}
	fp.Degraded = fp.SheddingActive || fp.Stale > 0 || fp.NonFinite > 0
	fp.Power = readingMap(sum)
	return fp
}

// readingMap renders a reading as rail-name → Watts plus "Total".
func readingMap(r power.Reading) map[string]float64 {
	out := make(map[string]float64, power.NumSubsystems+1)
	for _, sub := range power.Subsystems() {
		out[sub.String()] = r[sub]
	}
	out["Total"] = r.Total()
	return out
}

// LatencySummary is one histogram's quantile view in milliseconds. A
// quantile of -1 means the rank landed past the largest finite bucket
// (saturated); Overflow carries that mass explicitly.
type LatencySummary struct {
	Count    uint64  `json:"count"`
	P50ms    float64 `json:"p50_ms"`
	P95ms    float64 `json:"p95_ms"`
	P99ms    float64 `json:"p99_ms"`
	MeanMs   float64 `json:"mean_ms"`
	Overflow uint64  `json:"overflow"`
}

// summarize converts a histogram to a JSON-safe summary (+Inf → -1).
func summarize(h *telemetry.Histogram) LatencySummary {
	ms := func(q float64) float64 {
		v := h.Quantile(q) * 1e3
		if v != v || v > 1e308 {
			return -1
		}
		return v
	}
	ls := LatencySummary{
		Count:    h.Count(),
		P50ms:    ms(0.50),
		P95ms:    ms(0.95),
		P99ms:    ms(0.99),
		Overflow: h.Overflow(),
	}
	if ls.Count > 0 {
		ls.MeanMs = h.Sum() / float64(ls.Count) * 1e3
	}
	return ls
}

// Stats is the machine-readable service summary behind /statz — the
// numbers the load generator records into BENCH_<date>.json. Latency
// summaries come from the process-wide serve histograms.
type Stats struct {
	SamplesIngested  uint64         `json:"samples_ingested"`
	SamplesEstimated uint64         `json:"samples_estimated"`
	SamplesShed      uint64         `json:"samples_shed"`
	NonFinite        uint64         `json:"nonfinite_estimates"`
	EstimatePanics   uint64         `json:"estimate_panics"`
	Nodes            int            `json:"nodes"`
	QueueDepth       int            `json:"queue_depth"`
	QueueCapacity    int            `json:"queue_capacity"`
	SheddingActive   bool           `json:"shedding_active"`
	Admission        LatencySummary `json:"admission"`
	QueueWait        LatencySummary `json:"queue_wait"`
	Service          LatencySummary `json:"service"`
	E2E              LatencySummary `json:"e2e"`
}

// Stats snapshots the server.
func (s *Server) Stats() Stats {
	s.nodesMu.RLock()
	nodes := len(s.nodes)
	s.nodesMu.RUnlock()
	return Stats{
		SamplesIngested:  s.ingested.Load(),
		SamplesEstimated: s.estimated.Load(),
		SamplesShed:      s.shed.Load(),
		NonFinite:        s.nonfinite.Load(),
		EstimatePanics:   s.panics.Load(),
		Nodes:            nodes,
		QueueDepth:       s.queue.depth(),
		QueueCapacity:    s.queue.capacity(),
		SheddingActive:   s.SheddingActive(),
		Admission:        summarize(mAdmission),
		QueueWait:        summarize(mQueueWait),
		Service:          summarize(mService),
		E2E:              summarize(mE2E),
	}
}
