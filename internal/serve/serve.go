// Package serve is the live counterpart of the batch pipeline: a
// long-running power-estimation service that ingests batches of
// perfctr.Sample counter records per node over the wire, runs the five
// trained subsystem estimators online, and serves per-node and
// fleet-aggregate power under an explicit latency budget.
//
// The spine is a bounded ingest queue with honest backpressure: a full
// queue is an immediate 429 + Retry-After to the producer, never
// unbounded memory growth. Admission is guarded by per-client token
// buckets (denominated in samples, the resource that saturates the
// estimation workers), estimation runs on batched workers driven
// through internal/pool, and every batch carries the request-journey
// span taxonomy — ARRIVED → QUEUED → SCHEDULED → DEPARTED — so queue
// wait is a first-class measured interval in the latency histograms,
// not a blind spot inside an end-to-end number.
//
// Overload degrades gracefully instead of lying: shed samples are
// counted by reason, the fleet aggregate flags itself degraded while
// shedding or while nodes go stale, and non-finite estimates (glitched
// counters, poisoned models) are quarantined into a counter while the
// node keeps reporting its last good reading. The internal/faults
// injector machinery plugs in via SetFaultInjector for overload and
// corruption drills.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"trickledown/internal/adapt"
	"trickledown/internal/core"
	"trickledown/internal/perfctr"
	"trickledown/internal/pool"
	"trickledown/internal/power"
	"trickledown/internal/sim"
	"trickledown/internal/telemetry"
	"trickledown/internal/tracez"
)

// latencyBuckets resolve the service's operating range: ingest-to-
// estimate is expected in the 10 µs – 10 ms band, with the tail buckets
// catching overload (where queue wait dominates).
var latencyBuckets = []float64{
	1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1, 5,
}

// Serve telemetry is process-wide like every other package's: one
// service picture regardless of how many Server values exist (tests
// assert on per-server Stats instead).
var (
	mSamplesIngested = telemetry.NewCounter("serve_samples_ingested_total",
		"counter samples admitted into the ingest queue")
	mSamplesEstimated = telemetry.NewCounter("serve_samples_estimated_total",
		"samples run through the subsystem estimators")
	mSamplesShed = telemetry.NewCounterVec("serve_samples_shed_total",
		"samples rejected at admission, by reason", "reason")
	mBatches = telemetry.NewCounter("serve_batches_processed_total",
		"ingest batches fully estimated")
	mQueueDepth = telemetry.NewGauge("serve_queue_depth",
		"ingest batches waiting for an estimation worker")
	mNodesTracked = telemetry.NewGauge("serve_nodes_tracked",
		"distinct nodes with live power state")
	mNonFinite = telemetry.NewCounter("serve_nonfinite_estimates_total",
		"per-sample estimates dropped because a rail came back NaN/Inf")
	mShedding = telemetry.NewGauge("serve_shedding",
		"1 while admission control is actively shedding (queue recently full)")
	mEstimatePanics = telemetry.NewCounter("serve_estimate_panics_total",
		"estimation batch panics recovered (and retried per policy)")
	mAdmission = telemetry.NewHistogram("serve_admission_seconds",
		"ARRIVED to QUEUED: decode plus admission control", latencyBuckets)
	mQueueWait = telemetry.NewHistogram("serve_queue_wait_seconds",
		"QUEUED to SCHEDULED: batch wait for an estimation worker", latencyBuckets)
	mService = telemetry.NewHistogram("serve_service_seconds",
		"SCHEDULED to DEPARTED: batched estimation time", latencyBuckets)
	mE2E = telemetry.NewHistogram("serve_e2e_seconds",
		"ARRIVED to DEPARTED: end-to-end ingest-to-estimate latency", latencyBuckets)
)

// Admission errors, surfaced by Ingest and mapped to HTTP statuses by
// the handler (429/429/503/413 respectively).
var (
	ErrQueueFull     = errors.New("serve: ingest queue full")
	ErrRateLimited   = errors.New("serve: client rate limited")
	ErrClosed        = errors.New("serve: server closed")
	ErrBatchTooLarge = errors.New("serve: batch exceeds sample limit")
)

// shedHold is how long after a queue-full rejection the server reports
// itself as actively shedding: long enough for scrapers at 1 Hz to see
// the state, short enough to clear promptly once producers back off.
const shedHold = 2 * time.Second

// Config configures a Server. The zero value of every field except
// Estimator is usable; defaults are documented per field.
type Config struct {
	// Estimator is the trained five-subsystem power estimator. Required.
	Estimator *core.Estimator
	// QueueDepth bounds the ingest queue in batches (default 256). The
	// bound times the mean batch size is the server's overload buffer.
	QueueDepth int
	// MaxBatch caps samples per ingest request (default 8192); larger
	// requests are rejected whole with ErrBatchTooLarge.
	MaxBatch int
	// Workers is the number of estimation workers (default GOMAXPROCS).
	Workers int
	// RatePerClient is the per-client admission rate in samples/sec;
	// non-positive disables per-client limiting.
	RatePerClient float64
	// Burst is the token-bucket capacity (default max(RatePerClient,
	// 4*MaxBatch) so one full batch is always admissible from idle).
	Burst float64
	// RetryAfter is advertised on 429 responses (default 1s).
	RetryAfter time.Duration
	// NominalHz is the sampled machines' core clock for per-cycle
	// normalization (default sim.DefaultCoreHz).
	NominalHz float64
	// Retry is the per-batch estimation retry policy for recovered
	// panics (default: no retries). The backoff schedule is
	// pool.Retry's overflow-safe doubling.
	Retry pool.Retry
	// StaleAfter is the wall-clock age past which a node's last reading
	// is excluded from the fleet aggregate and counted stale
	// (default 15s).
	StaleAfter time.Duration
	// TraceSampleRate is the head-based trace sampling probability in
	// [0,1] applied to batches whose producer did not already carry a
	// trace context (default 0: anomalies only).
	TraceSampleRate float64
	// TraceRing bounds each /debug/tracez retention view in traces
	// (default 256).
	TraceRing int
	// SlowTrace promotes a batch whose end-to-end latency exceeds it to
	// an always-kept anomaly trace (default 50ms; negative disables).
	SlowTrace time.Duration
	// DiagDir, when non-empty, enables the flight recorder's diagnostics
	// bundles: entering shedding or quarantining the first non-finite
	// estimate dumps a tddiag_* bundle under this directory.
	DiagDir string
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8192
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Burst <= 0 {
		c.Burst = c.RatePerClient
		if min := 4 * float64(c.MaxBatch); c.Burst < min {
			c.Burst = min
		}
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.NominalHz <= 0 {
		c.NominalHz = sim.DefaultCoreHz
	}
	if c.StaleAfter <= 0 {
		c.StaleAfter = 15 * time.Second
	}
	if c.SlowTrace == 0 {
		c.SlowTrace = 50 * time.Millisecond
	}
	if c.SlowTrace < 0 {
		c.SlowTrace = 0
	}
	return c
}

// nodeState is one node's live power view, updated by estimation
// workers and read by query handlers.
type nodeState struct {
	mu        sync.Mutex
	samples   uint64
	nonfinite uint64
	lastT     float64       // target clock of the newest estimated sample
	lastWall  time.Time     // wall clock of the newest estimate
	last      power.Reading // last good (finite) per-rail estimate
	hasGood   bool
}

// apply folds one processed batch into the node state.
func (n *nodeState) apply(wall time.Time, count, bad uint64, lastT float64, last power.Reading, hasGood bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.samples += count
	n.nonfinite += bad
	if count > bad && lastT >= n.lastT {
		n.lastT = lastT
		if hasGood {
			n.last = last
			n.hasGood = true
		}
	}
	n.lastWall = wall
}

// Server is the live estimation service. Create with New, start with
// Start, stop with Close. All methods are safe for concurrent use.
type Server struct {
	cfg Config
	// est is the serving estimator behind an atomic pointer: model
	// hot-swap is a single store, in-flight batches finish on whichever
	// model they loaded, and no estimate ever sees a torn model.
	est     atomic.Pointer[core.Estimator]
	adapter atomic.Pointer[adapt.Manager]
	queue   *ingestQueue
	limiter *rateLimiter
	p       *pool.Pool

	nodesMu sync.RWMutex
	nodes   map[string]*nodeState

	faultMu sync.RWMutex
	fault   perfctr.FaultInjector

	ctx         context.Context
	cancel      context.CancelFunc
	workersDone chan struct{}
	started     atomic.Bool
	shedUntil   atomic.Int64 // unix nanos; shedding active while now < shedUntil

	// Tracing: the per-server recorder behind /debug/tracez, the
	// process-wide flight recorder, and the (optional) bundler that turns
	// degradation transitions into on-disk diagnostics bundles.
	rec        *tracez.Recorder
	flight     *tracez.FlightRecorder
	bundler    *tracez.Bundler
	shedActive atomic.Bool  // edge detector for shedding transitions
	quarActive atomic.Bool  // edge detector for the first quarantine
	lastBundle atomic.Value // string: newest diagnostics bundle dir

	// Per-server counters mirror the process-wide telemetry so tests
	// and multi-server processes get isolated numbers.
	ingested  atomic.Uint64
	estimated atomic.Uint64
	shed      atomic.Uint64
	nonfinite atomic.Uint64
	panics    atomic.Uint64
}

// New validates cfg and returns an unstarted server.
func New(cfg Config) (*Server, error) {
	if cfg.Estimator == nil {
		return nil, fmt.Errorf("serve: Config.Estimator is required")
	}
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg: cfg,
		rec: tracez.NewRecorder(tracez.Config{
			SampleRate:    cfg.TraceSampleRate,
			RingSize:      cfg.TraceRing,
			SlowThreshold: cfg.SlowTrace,
		}),
		flight:      tracez.Flight(),
		queue:       newIngestQueue(cfg.QueueDepth),
		limiter:     newRateLimiter(cfg.RatePerClient, cfg.Burst),
		p:           pool.New(cfg.Workers),
		nodes:       make(map[string]*nodeState),
		ctx:         ctx,
		cancel:      cancel,
		workersDone: make(chan struct{}),
	}
	s.est.Store(cfg.Estimator)
	if cfg.DiagDir != "" {
		s.bundler = tracez.NewBundler(cfg.DiagDir, s.rec, s.flight)
	}
	return s, nil
}

// Estimator returns the currently serving estimator.
func (s *Server) Estimator() *core.Estimator { return s.est.Load() }

// SwapEstimator atomically replaces the serving estimator and returns
// the previous one. The swap is a single pointer store: batches already
// mid-estimation finish on the model they loaded.
func (s *Server) SwapEstimator(e *core.Estimator) *core.Estimator {
	if e == nil {
		return s.est.Load()
	}
	return s.est.Swap(e)
}

// SetAdapter installs the self-healing manager. Batches carrying
// measured rails (the TDP1 wire extension) feed the manager's drift
// detection; every swap or rollback it decides flips the serving
// estimator atomically and triggers a diagnostics bundle. Pass nil to
// detach (the current estimator keeps serving, frozen).
func (s *Server) SetAdapter(m *adapt.Manager) {
	s.adapter.Store(m)
	if m == nil {
		return
	}
	m.Subscribe(func(ev adapt.Event) {
		s.SwapEstimator(ev.Estimator)
		s.triggerBundle("model-" + ev.Kind)
	})
	// Align the serving model with the manager's current champion so
	// /statz and /driftz agree from the first request.
	s.SwapEstimator(m.Champion())
}

// Adapter returns the installed self-healing manager, or nil.
func (s *Server) Adapter() *adapt.Manager { return s.adapter.Load() }

// Tracer exposes the server's trace recorder (the /debug/tracez data
// source) for CLIs and tests.
func (s *Server) Tracer() *tracez.Recorder { return s.rec }

// DumpDiagnostics synchronously writes a diagnostics bundle (tracez
// snapshot, flight ring, metrics, goroutines) and returns its
// directory. It works regardless of DiagDir rate limiting — the SIGQUIT
// path wants a bundle now, not "one recently".
func (s *Server) DumpDiagnostics(dir, reason string) (string, error) {
	if dir == "" {
		dir = s.cfg.DiagDir
	}
	if dir == "" {
		return "", fmt.Errorf("serve: no diagnostics directory configured")
	}
	bundle, err := tracez.DumpBundle(dir, reason, s.rec, s.flight)
	if err == nil {
		s.lastBundle.Store(bundle)
	}
	return bundle, err
}

// LastDiagBundle returns the newest diagnostics bundle directory, or "".
func (s *Server) LastDiagBundle() string {
	v, _ := s.lastBundle.Load().(string)
	return v
}

// triggerBundle asks the bundler for a rate-limited bundle off the hot
// path; transitions fire from admission and worker goroutines that must
// not block on disk I/O.
func (s *Server) triggerBundle(reason string) {
	if s.bundler == nil {
		return
	}
	go func() {
		if dir, err := s.bundler.Trigger(reason); err == nil && dir != "" {
			s.lastBundle.Store(dir)
		}
	}()
}

// Start launches the estimation workers. It must be called exactly once.
func (s *Server) Start() {
	if !s.started.CompareAndSwap(false, true) {
		panic("serve: Server started twice")
	}
	go func() {
		defer close(s.workersDone)
		// The pool is sized to Workers, so every loop is dispatched
		// immediately and holds its slot for the server's lifetime; pool
		// telemetry and panic containment come along for free.
		_ = s.p.Run(s.ctx, s.cfg.Workers, func(ctx context.Context, i int) error {
			s.workerLoop(ctx, i)
			return nil
		})
	}()
}

// Close stops intake, lets the workers drain everything already queued,
// and waits for them to exit. ctx bounds the drain: if it fires first,
// the remaining queue is abandoned (hard cancel) and ctx.Err returned.
func (s *Server) Close(ctx context.Context) error {
	s.queue.close()
	if !s.started.Load() {
		s.cancel()
		return nil
	}
	select {
	case <-s.workersDone:
		s.cancel()
		return nil
	case <-ctx.Done():
		s.cancel()
		<-s.workersDone
		return ctx.Err()
	}
}

// SetFaultInjector installs (or with nil removes) a counter fault
// injector applied to every sample before estimation — the
// internal/faults drill hook.
func (s *Server) SetFaultInjector(f perfctr.FaultInjector) {
	s.faultMu.Lock()
	s.fault = f
	s.faultMu.Unlock()
}

func (s *Server) faultInjector() perfctr.FaultInjector {
	s.faultMu.RLock()
	defer s.faultMu.RUnlock()
	return s.fault
}

// Ingest admits a batch of one node's samples on behalf of client. It
// returns nil when the batch is queued (ARRIVED→QUEUED), or one of
// ErrBatchTooLarge, ErrRateLimited, ErrQueueFull, ErrClosed. The samples
// slice is owned by the server after a nil return. A trace context is
// minted locally; producers that stamped their own use IngestTraced.
func (s *Server) Ingest(client, node string, samples []perfctr.Sample) error {
	return s.IngestTraced(client, node, samples, s.rec.Mint())
}

// IngestTraced is Ingest with an explicit trace context — the wire path,
// where the producer minted the ID and made the sampling decision so
// client and server views of one batch share an identity. Rejections
// (shed, rate-limit) are recorded as always-kept anomaly traces even
// when tc is unsampled; admitted unsampled batches record nothing and
// allocate nothing beyond the batch itself.
func (s *Server) IngestTraced(client, node string, samples []perfctr.Sample, tc tracez.Context) error {
	return s.IngestFull(client, node, samples, nil, tc)
}

// IngestFull is IngestTraced with per-sample measured rails riding
// along (the TDP1 wire extension). When an adapter is installed the
// rails become drift-detection ground truth; without one they are
// ignored. rails must be nil or exactly one Reading per sample.
func (s *Server) IngestFull(client, node string, samples []perfctr.Sample, rails []power.Reading, tc tracez.Context) error {
	if len(samples) == 0 {
		return nil
	}
	if rails != nil && len(rails) != len(samples) {
		return fmt.Errorf("serve: %d rails for %d samples", len(rails), len(samples))
	}
	arrived := time.Now()
	n := uint64(len(samples))
	if len(samples) > s.cfg.MaxBatch {
		s.shedN("batch_too_large", n)
		s.rec.Anomaly(tc.ID, node, client, arrived, "shed:batch_too_large", tracez.EvShed, int64(n))
		return fmt.Errorf("%w: %d > %d", ErrBatchTooLarge, len(samples), s.cfg.MaxBatch)
	}
	if !s.limiter.allow(client, float64(len(samples)), arrived) {
		s.shedN("rate_limited", n)
		s.rec.Anomaly(tc.ID, node, client, arrived, "shed:rate_limited", tracez.EvShed, int64(n))
		return ErrRateLimited
	}
	b := &batch{node: node, samples: samples, rails: rails, arrived: arrived, tc: tc}
	if tr := s.rec.Start(tc, node, client, arrived); tr != nil {
		tr.Add(tracez.EvAdmitted, int64(n))
		b.tr = tr
	}
	// Stamp QUEUED before the channel send: the moment the batch is on
	// the queue a worker owns the trace, so no event may be added here
	// afterwards. The depth arg is the backlog ahead of this batch.
	b.queued = time.Now()
	b.tr.AddAt(tracez.EvEnqueued, b.queued, int64(s.queue.depth()), "")
	if err := s.queue.tryEnqueue(b); err != nil {
		if errors.Is(err, errQueueClosed) {
			s.shedN("closed", n)
			return ErrClosed
		}
		s.markShedding()
		s.shedN("queue_full", n)
		s.rec.Anomaly(tc.ID, node, client, arrived, "shed:queue_full", tracez.EvShed, int64(n))
		return ErrQueueFull
	}
	mQueueDepth.Set(float64(s.queue.depth()))
	mAdmission.Observe(b.queued.Sub(arrived).Seconds())
	mSamplesIngested.Add(n)
	s.ingested.Add(n)
	return nil
}

// shedN counts rejected samples under a reason label.
func (s *Server) shedN(reason string, n uint64) {
	mSamplesShed.With(reason).Add(n)
	s.shed.Add(n)
}

// markShedding opens (or extends) the shedding window. The transition
// into shedding (not every rejection) lands in the flight recorder and,
// when a DiagDir is configured, triggers a diagnostics bundle — the
// moment the service starts refusing work is exactly when an operator
// wants the queue depths and traces that led up to it.
func (s *Server) markShedding() {
	s.shedUntil.Store(time.Now().Add(shedHold).UnixNano())
	mShedding.Set(1)
	if s.shedActive.CompareAndSwap(false, true) {
		s.flight.Note("shedding", "queue full; admission shedding", int64(s.queue.depth()))
		s.triggerBundle("shedding")
	}
}

// SheddingActive reports whether the server rejected work for queue-full
// within the last shedHold.
func (s *Server) SheddingActive() bool {
	active := time.Now().UnixNano() < s.shedUntil.Load()
	if !active {
		mShedding.Set(0)
		if s.shedActive.CompareAndSwap(true, false) {
			s.flight.Note("shedding", "shedding cleared", 0)
		}
	}
	return active
}

// workerLoop drains the queue until it closes (graceful Close) or ctx
// fires (hard cancel, abandoning queued batches).
func (s *Server) workerLoop(ctx context.Context, worker int) {
	scratch := &core.Metrics{}
	for {
		// Priority check: when a hard cancel and queued work are both
		// ready, select picks randomly — a cancelled worker must not
		// keep draining.
		if ctx.Err() != nil {
			return
		}
		select {
		case <-ctx.Done():
			return
		case b, ok := <-s.queue.ch:
			if !ok {
				return
			}
			mQueueDepth.Set(float64(s.queue.depth()))
			s.runBatch(ctx, b, scratch, worker)
		}
	}
}

// runBatch estimates one batch under the retry policy: a panicking
// estimation attempt (poisoned model, hostile sample) is recovered,
// counted, and retried with overflow-safe backoff; retries exhausted
// means the batch is dropped, never the worker.
func (s *Server) runBatch(ctx context.Context, b *batch, scratch *core.Metrics, worker int) {
	attempts := s.cfg.Retry.Attempts
	if attempts < 1 {
		attempts = 1
	}
	for attempt := 1; ; attempt++ {
		err := s.processProtected(b, scratch, worker)
		if err == nil || attempt >= attempts {
			return
		}
		if wait := s.cfg.Retry.Backoff(attempt); wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				t.Stop()
				return
			case <-t.C:
			}
		} else if ctx.Err() != nil {
			return
		}
	}
}

// processProtected is one estimation attempt with panic containment.
func (s *Server) processProtected(b *batch, scratch *core.Metrics, worker int) (err error) {
	defer func() {
		if v := recover(); v != nil {
			mEstimatePanics.Inc()
			s.panics.Add(1)
			err = pool.NewPanicError(v)
		}
	}()
	s.process(b, scratch, worker)
	return nil
}

// process runs the batch through the estimators (SCHEDULED→DEPARTED)
// and folds the result into node state. Non-finite per-sample estimates
// are quarantined into counters; the node keeps its last good reading so
// the fleet aggregate never turns NaN.
//
// Sampled batches stamp the SCHEDULED/ESTIMATED/DEPARTED events and feed
// the latency histograms through the exemplar path so /metrics buckets
// link back to /debug/tracez. Unsampled batches stay on the plain
// Observe path — zero allocation — unless they turn out anomalous
// (quarantine, slow outlier), in which case a trace is reconstructed
// after the fact from the timestamps the batch already carries.
func (s *Server) process(b *batch, scratch *core.Metrics, worker int) {
	scheduled := time.Now()
	b.tr.AddAt(tracez.EvScheduled, scheduled, int64(worker), "")
	fault := s.faultInjector()
	adapter := s.adapter.Load()
	est := s.est.Load()
	var (
		bad     uint64
		lastT   float64
		lastR   power.Reading
		hasGood bool
	)
	for i := range b.samples {
		smp := &b.samples[i]
		if fault != nil {
			for c := range smp.CPUs {
				fault.PerturbCounts(smp.TargetSeconds, c, &smp.CPUs[c])
			}
		}
		if adapter != nil && b.rails != nil {
			// Drift detection sees the sample after fault injection —
			// exactly what the estimators see. A swap or rollback decided
			// here lands synchronously, so the reload below serves the
			// rest of the batch on the new champion.
			adapter.Observe(smp, b.rails[i])
			est = s.est.Load()
		}
		core.ExtractMetricsAtInto(scratch, smp, s.cfg.NominalHz)
		r := est.EstimateMetrics(scratch)
		if finiteReading(r) {
			lastR = r
			hasGood = true
		} else {
			bad++
			mNonFinite.Inc()
			s.nonfinite.Add(1)
		}
		if smp.TargetSeconds > lastT {
			lastT = smp.TargetSeconds
		}
	}
	departed := time.Now()
	s.node(b.node).apply(departed, uint64(len(b.samples)), bad, lastT, lastR, hasGood)
	mSamplesEstimated.Add(uint64(len(b.samples)))
	s.estimated.Add(uint64(len(b.samples)))
	mBatches.Inc()
	queueWait := scheduled.Sub(b.queued).Seconds()
	service := departed.Sub(scheduled).Seconds()
	e2e := departed.Sub(b.arrived).Seconds()
	if b.tr != nil {
		b.tr.AddAt(tracez.EvEstimated, departed, int64(bad), "")
		b.tr.AddAt(tracez.EvDeparted, departed, int64(len(b.samples)), "")
		b.tr.End = departed
		if bad > 0 {
			b.tr.Outcome = "quarantine"
		}
		// One ID rendering per sampled batch; the exemplar ties the
		// histogram bucket each latency lands in back to this trace.
		id := b.tr.ID.String()
		mQueueWait.ObserveExemplar(queueWait, id)
		mService.ObserveExemplar(service, id)
		mE2E.ObserveExemplar(e2e, id)
		s.rec.Finish(b.tr)
	} else {
		mQueueWait.Observe(queueWait)
		mService.Observe(service)
		mE2E.Observe(e2e)
		slow := s.cfg.SlowTrace > 0 && departed.Sub(b.arrived) > s.cfg.SlowTrace
		if bad > 0 || slow {
			s.reconstructAnomaly(b, scheduled, departed, worker, bad)
		}
	}
	if bad > 0 && s.quarActive.CompareAndSwap(false, true) {
		s.flight.NoteTrace("quarantine", "first non-finite estimate quarantined", int64(bad), b.tc.ID)
		s.triggerBundle("quarantine")
	}
}

// reconstructAnomaly assembles an always-kept trace for an unsampled
// batch that turned out interesting: the batch's own timestamps become
// the event timeline, so the anomaly is inspectable without having paid
// for tracing on the hot path.
func (s *Server) reconstructAnomaly(b *batch, scheduled, departed time.Time, worker int, bad uint64) {
	id := b.tc.ID
	if id.IsZero() {
		id = tracez.NewTraceID()
	}
	t := s.rec.StartAt(id, b.node, "", b.arrived)
	t.AddAt(tracez.EvAdmitted, b.arrived, int64(len(b.samples)), "")
	t.AddAt(tracez.EvEnqueued, b.queued, 0, "")
	t.AddAt(tracez.EvScheduled, scheduled, int64(worker), "")
	if bad > 0 {
		t.AddAt(tracez.EvQuarantine, departed, int64(bad), "nonfinite estimate")
		t.Outcome = "quarantine"
	}
	t.AddAt(tracez.EvDeparted, departed, int64(len(b.samples)), "")
	t.End = departed
	s.rec.Finish(t)
}

// modelVersion renders an estimator's provenance version.
func modelVersion(e *core.Estimator) string {
	if p := e.Provenance(); p != nil && p.Version != "" {
		return p.Version
	}
	return "unversioned"
}

// finiteReading reports whether every rail of r is finite.
func finiteReading(r power.Reading) bool {
	for _, v := range r {
		if v != v || v > 1e308 || v < -1e308 {
			return false
		}
	}
	return true
}

// node returns (creating on first sight) the state for a node name.
func (s *Server) node(name string) *nodeState {
	s.nodesMu.RLock()
	st, ok := s.nodes[name]
	s.nodesMu.RUnlock()
	if ok {
		return st
	}
	s.nodesMu.Lock()
	defer s.nodesMu.Unlock()
	if st, ok = s.nodes[name]; ok {
		return st
	}
	st = &nodeState{}
	s.nodes[name] = st
	mNodesTracked.Set(float64(len(s.nodes)))
	return st
}

// QueueDepth returns the number of batches waiting for a worker.
func (s *Server) QueueDepth() int { return s.queue.depth() }

// NodePower is one node's live power view.
type NodePower struct {
	Node string `json:"node"`
	// Samples is how many of the node's samples reached the estimators;
	// NonFinite of those produced a NaN/Inf rail and were quarantined.
	Samples   uint64 `json:"samples"`
	NonFinite uint64 `json:"nonfinite,omitempty"`
	// LastTargetSeconds is the target-clock timestamp of the newest
	// estimated sample; AgeSeconds its wall-clock staleness.
	LastTargetSeconds float64 `json:"last_target_seconds"`
	AgeSeconds        float64 `json:"age_seconds"`
	Stale             bool    `json:"stale"`
	// Power is the last good per-rail estimate plus "Total", in Watts.
	// Empty until the node's first finite estimate.
	Power map[string]float64 `json:"power_w,omitempty"`
}

// NodePower returns the live view of one node.
func (s *Server) NodePower(name string) (NodePower, bool) {
	s.nodesMu.RLock()
	st, ok := s.nodes[name]
	s.nodesMu.RUnlock()
	if !ok {
		return NodePower{}, false
	}
	now := time.Now()
	st.mu.Lock()
	defer st.mu.Unlock()
	np := NodePower{
		Node:              name,
		Samples:           st.samples,
		NonFinite:         st.nonfinite,
		LastTargetSeconds: st.lastT,
	}
	if !st.lastWall.IsZero() {
		np.AgeSeconds = now.Sub(st.lastWall).Seconds()
	}
	np.Stale = st.lastWall.IsZero() || now.Sub(st.lastWall) > s.cfg.StaleAfter
	if st.hasGood {
		np.Power = readingMap(st.last)
	}
	return np, true
}

// FleetPower is the cross-node aggregate.
type FleetPower struct {
	Nodes int `json:"nodes"`
	// Stale nodes are tracked but too old to contribute to Power.
	Stale int `json:"stale"`
	// Degraded means the aggregate is not the whole truth right now:
	// admission is shedding, nodes have gone stale, or estimates are
	// coming back non-finite.
	Degraded         bool   `json:"degraded"`
	SheddingActive   bool   `json:"shedding_active"`
	QueueDepth       int    `json:"queue_depth"`
	QueueCapacity    int    `json:"queue_capacity"`
	SamplesIngested  uint64 `json:"samples_ingested"`
	SamplesEstimated uint64 `json:"samples_estimated"`
	SamplesShed      uint64 `json:"samples_shed"`
	NonFinite        uint64 `json:"nonfinite_estimates"`
	// Power sums the last good reading of every fresh node, per rail
	// plus "Total", in Watts.
	Power map[string]float64 `json:"power_w"`
}

// Fleet aggregates every fresh node's last good reading.
func (s *Server) Fleet() FleetPower {
	now := time.Now()
	s.nodesMu.RLock()
	states := make(map[string]*nodeState, len(s.nodes))
	for k, v := range s.nodes {
		states[k] = v
	}
	s.nodesMu.RUnlock()
	var sum power.Reading
	fp := FleetPower{
		Nodes:            len(states),
		SheddingActive:   s.SheddingActive(),
		QueueDepth:       s.queue.depth(),
		QueueCapacity:    s.queue.capacity(),
		SamplesIngested:  s.ingested.Load(),
		SamplesEstimated: s.estimated.Load(),
		SamplesShed:      s.shed.Load(),
		NonFinite:        s.nonfinite.Load(),
	}
	for _, st := range states {
		st.mu.Lock()
		fresh := !st.lastWall.IsZero() && now.Sub(st.lastWall) <= s.cfg.StaleAfter
		if fresh && st.hasGood {
			for i := range sum {
				sum[i] += st.last[i]
			}
		} else {
			fp.Stale++
		}
		st.mu.Unlock()
	}
	fp.Degraded = fp.SheddingActive || fp.Stale > 0 || fp.NonFinite > 0
	fp.Power = readingMap(sum)
	return fp
}

// readingMap renders a reading as rail-name → Watts plus "Total".
func readingMap(r power.Reading) map[string]float64 {
	out := make(map[string]float64, power.NumSubsystems+1)
	for _, sub := range power.Subsystems() {
		out[sub.String()] = r[sub]
	}
	out["Total"] = r.Total()
	return out
}

// LatencySummary is one histogram's quantile view in milliseconds. A
// quantile of -1 means the rank landed past the largest finite bucket
// (saturated); Overflow carries that mass explicitly.
type LatencySummary struct {
	Count    uint64  `json:"count"`
	P50ms    float64 `json:"p50_ms"`
	P95ms    float64 `json:"p95_ms"`
	P99ms    float64 `json:"p99_ms"`
	MeanMs   float64 `json:"mean_ms"`
	Overflow uint64  `json:"overflow"`
}

// summarize converts a histogram to a JSON-safe summary (+Inf → -1).
func summarize(h *telemetry.Histogram) LatencySummary {
	ms := func(q float64) float64 {
		v := h.Quantile(q) * 1e3
		if v != v || v > 1e308 {
			return -1
		}
		return v
	}
	ls := LatencySummary{
		Count:    h.Count(),
		P50ms:    ms(0.50),
		P95ms:    ms(0.95),
		P99ms:    ms(0.99),
		Overflow: h.Overflow(),
	}
	if ls.Count > 0 {
		ls.MeanMs = h.Sum() / float64(ls.Count) * 1e3
	}
	return ls
}

// Stats is the machine-readable service summary behind /statz — the
// numbers the load generator records into BENCH_<date>.json. Latency
// summaries come from the process-wide serve histograms.
type Stats struct {
	// ModelVersion is the active estimator's provenance version
	// ("unversioned" for a pre-provenance model).
	ModelVersion     string         `json:"model_version"`
	SamplesIngested  uint64         `json:"samples_ingested"`
	SamplesEstimated uint64         `json:"samples_estimated"`
	SamplesShed      uint64         `json:"samples_shed"`
	NonFinite        uint64         `json:"nonfinite_estimates"`
	EstimatePanics   uint64         `json:"estimate_panics"`
	Nodes            int            `json:"nodes"`
	QueueDepth       int            `json:"queue_depth"`
	QueueCapacity    int            `json:"queue_capacity"`
	SheddingActive   bool           `json:"shedding_active"`
	Admission        LatencySummary `json:"admission"`
	QueueWait        LatencySummary `json:"queue_wait"`
	Service          LatencySummary `json:"service"`
	E2E              LatencySummary `json:"e2e"`
	Trace            tracez.Stats   `json:"trace"`
	LastDiagBundle   string         `json:"last_diag_bundle,omitempty"`
}

// Stats snapshots the server.
func (s *Server) Stats() Stats {
	s.nodesMu.RLock()
	nodes := len(s.nodes)
	s.nodesMu.RUnlock()
	return Stats{
		ModelVersion:     modelVersion(s.est.Load()),
		SamplesIngested:  s.ingested.Load(),
		SamplesEstimated: s.estimated.Load(),
		SamplesShed:      s.shed.Load(),
		NonFinite:        s.nonfinite.Load(),
		EstimatePanics:   s.panics.Load(),
		Nodes:            nodes,
		QueueDepth:       s.queue.depth(),
		QueueCapacity:    s.queue.capacity(),
		SheddingActive:   s.SheddingActive(),
		Admission:        summarize(mAdmission),
		QueueWait:        summarize(mQueueWait),
		Service:          summarize(mService),
		E2E:              summarize(mE2E),
		Trace:            s.rec.Stats(),
		LastDiagBundle:   s.LastDiagBundle(),
	}
}
