package serve

import (
	"sort"
	"sync"
	"time"
)

// maxTrackedClients bounds the limiter's memory against client-ID churn
// (a producer fleet rolling its identifiers). At the bound the idlest
// quarter of the table is evicted — churning one-shot identities age
// out while steadily-sending clients keep their bucket state, so a
// burst of strangers can no longer reset every honest client's spent
// tokens the way a full table wipe used to.
const maxTrackedClients = 16384

// rateLimiter is a per-client token bucket in samples (not requests):
// a client sending huge batches spends tokens proportionally, so the
// limit is on ingest volume, the resource that actually saturates the
// estimation workers.
type rateLimiter struct {
	rate       float64 // tokens (samples) per second per client
	burst      float64 // bucket capacity
	maxClients int     // table bound; tests shrink it to force eviction
	mu         sync.Mutex
	m          map[string]*tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// newRateLimiter returns nil when rate is non-positive: a nil limiter
// admits everything, so the unlimited path costs nothing.
func newRateLimiter(rate, burst float64) *rateLimiter {
	if rate <= 0 {
		return nil
	}
	if burst < rate {
		burst = rate
	}
	return &rateLimiter{rate: rate, burst: burst, maxClients: maxTrackedClients, m: make(map[string]*tokenBucket)}
}

// allow spends n tokens from client's bucket at time now, reporting
// whether the client is within its rate.
func (l *rateLimiter) allow(client string, n float64, now time.Time) bool {
	if l == nil {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.m[client]
	if b == nil {
		if len(l.m) >= l.maxClients {
			l.evictIdleLocked()
		}
		b = &tokenBucket{tokens: l.burst, last: now}
		l.m[client] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
	}
	b.last = now
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}

// evictIdleLocked drops the least-recently-touched quarter of the
// table (at least one entry). O(n log n) on a full table, but the
// table only fills under sustained identity churn and the evicted
// quarter buys thousands of admissions before the next sort.
func (l *rateLimiter) evictIdleLocked() {
	type idle struct {
		client string
		last   time.Time
	}
	all := make([]idle, 0, len(l.m))
	for c, b := range l.m {
		all = append(all, idle{c, b.last})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].last.Before(all[j].last) })
	drop := len(all) / 4
	if drop < 1 {
		drop = 1
	}
	for _, e := range all[:drop] {
		delete(l.m, e.client)
	}
}

// tracked returns the number of client buckets currently held.
func (l *rateLimiter) tracked() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.m)
}
