package serve

import (
	"sync"
	"time"
)

// maxTrackedClients bounds the limiter's memory against client-ID churn
// (a producer fleet rolling its identifiers). Past the bound the table
// is reset: brief over-admission beats unbounded growth, and the queue
// bound behind the limiter still holds the real line.
const maxTrackedClients = 16384

// rateLimiter is a per-client token bucket in samples (not requests):
// a client sending huge batches spends tokens proportionally, so the
// limit is on ingest volume, the resource that actually saturates the
// estimation workers.
type rateLimiter struct {
	rate  float64 // tokens (samples) per second per client
	burst float64 // bucket capacity
	mu    sync.Mutex
	m     map[string]*tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// newRateLimiter returns nil when rate is non-positive: a nil limiter
// admits everything, so the unlimited path costs nothing.
func newRateLimiter(rate, burst float64) *rateLimiter {
	if rate <= 0 {
		return nil
	}
	if burst < rate {
		burst = rate
	}
	return &rateLimiter{rate: rate, burst: burst, m: make(map[string]*tokenBucket)}
}

// allow spends n tokens from client's bucket at time now, reporting
// whether the client is within its rate.
func (l *rateLimiter) allow(client string, n float64, now time.Time) bool {
	if l == nil {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.m[client]
	if b == nil {
		if len(l.m) >= maxTrackedClients {
			l.m = make(map[string]*tokenBucket)
		}
		b = &tokenBucket{tokens: l.burst, last: now}
		l.m[client] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
	}
	b.last = now
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}
