package serve

import (
	"context"
	"errors"
	"time"

	"trickledown/internal/align"
	"trickledown/internal/perfctr"
)

// IngestDataset streams an aligned dataset's counter samples into the
// server as node's live feed — the bridge that replays a recorded (or
// trace-replayed) machine run through the estimation service. Rows are
// chunked into batches of at most batch samples (0 or out-of-range
// means the server's MaxBatch); backpressure rejections (ErrQueueFull,
// ErrRateLimited) retry with a short pause until ctx expires, any other
// rejection aborts. Returns how many samples were admitted.
//
// Each batch gets a freshly allocated sample slice (the server owns a
// slice after a nil Ingest return); the samples themselves are shallow
// copies sharing the dataset's per-CPU counter slices, so the caller
// must not mutate ds while the server drains.
func (s *Server) IngestDataset(ctx context.Context, client, node string, ds *align.Dataset, batch int) (int, error) {
	if batch <= 0 || batch > s.cfg.MaxBatch {
		batch = s.cfg.MaxBatch
	}
	sent := 0
	for lo := 0; lo < len(ds.Rows); lo += batch {
		hi := lo + batch
		if hi > len(ds.Rows) {
			hi = len(ds.Rows)
		}
		samples := make([]perfctr.Sample, hi-lo)
		for i := range samples {
			samples[i] = ds.Rows[lo+i].Counters
		}
		for {
			err := s.Ingest(client, node, samples)
			if err == nil {
				sent += len(samples)
				break
			}
			if !errors.Is(err, ErrQueueFull) && !errors.Is(err, ErrRateLimited) {
				return sent, err
			}
			select {
			case <-ctx.Done():
				return sent, ctx.Err()
			case <-time.After(2 * time.Millisecond):
			}
		}
	}
	return sent, nil
}
