package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"trickledown/internal/perfctr"
	"trickledown/internal/telemetry"
	"trickledown/internal/tracez"
)

// maxBodyBytes bounds an ingest request body. Sized for a MaxBatch of
// large (32-CPU) samples with slack; anything bigger is hostile or
// misconfigured and gets 413 before decode allocates for it.
const maxBodyBytes = 64 << 20

// Handler returns the server's HTTP surface:
//
//	POST /ingest   perfctr wire-format batch (TDS1); client identity
//	               from X-Client-ID, falling back to the remote address
//	GET  /power    one node's live power (?node=NAME)
//	GET  /fleet    cross-node aggregate with degradation flags
//	GET  /statz    machine-readable service stats (the loadgen contract)
//	GET  /driftz   self-healing adaptation status (404 until -adapt)
//	GET  /healthz  liveness
//	/metrics, /debug/telemetry, /debug/vars via internal/telemetry
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", s.handleIngest)
	mux.HandleFunc("/power", s.handlePower)
	mux.HandleFunc("/fleet", s.handleFleet)
	mux.HandleFunc("/statz", s.handleStatz)
	mux.HandleFunc("/driftz", s.handleDriftz)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	// The telemetry mux owns /metrics and /debug/*; delegating the paths
	// keeps one exposition implementation process-wide. /debug/tracez is
	// the more specific pattern, so it wins over the /debug/ delegate.
	tm := telemetry.Handler()
	mux.Handle("/metrics", tm)
	mux.Handle("/debug/", tm)
	mux.Handle("/debug/tracez", s.rec.Handler())
	return mux
}

// retryAfterSeconds renders the configured Retry-After, never below 1s
// (the header is integer seconds; advertising 0 invites an instant
// retry storm from naive producers).
func (s *Server) retryAfterSeconds() string {
	secs := int(s.cfg.RetryAfter.Seconds())
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// handleIngest is the wire entry point: decode, admit, 202. Overload
// and rate limiting answer 429 with Retry-After so producers have an
// explicit backoff contract instead of guessing from timeouts.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		http.Error(w, "body too large or unreadable", http.StatusRequestEntityTooLarge)
		return
	}
	node, samples, ext, rails, err := perfctr.DecodeBatchFull(body)
	if err != nil {
		http.Error(w, "bad batch: "+err.Error(), http.StatusBadRequest)
		return
	}
	client := r.Header.Get("X-Client-ID")
	if client == "" {
		client = r.RemoteAddr
	}
	// A producer-stamped trace context wins (same ID on both sides of
	// the wire); batches without one get a server-minted identity.
	tc := tracez.Context{ID: tracez.TraceID(ext.ID), Sampled: ext.Sampled}
	if tc.ID.IsZero() {
		tc = s.rec.Mint()
	}
	switch err := s.IngestFull(client, node, samples, rails, tc); {
	case err == nil:
		w.WriteHeader(http.StatusAccepted)
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrRateLimited):
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, ErrBatchTooLarge):
		http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
	case errors.Is(err, ErrClosed):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handlePower(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("node")
	if name == "" {
		http.Error(w, "missing ?node=", http.StatusBadRequest)
		return
	}
	np, ok := s.NodePower(name)
	if !ok {
		http.Error(w, "unknown node", http.StatusNotFound)
		return
	}
	writeJSON(w, np)
}

func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Fleet())
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}

// handleDriftz exposes the self-healing manager's state; 404 until an
// adapter is installed so scrapers can distinguish "off" from "idle".
func (s *Server) handleDriftz(w http.ResponseWriter, r *http.Request) {
	ad := s.adapter.Load()
	if ad == nil {
		http.Error(w, "adaptation not enabled", http.StatusNotFound)
		return
	}
	writeJSON(w, ad.Status())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
