package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"trickledown/internal/core"
	"trickledown/internal/perfctr"
	"trickledown/internal/pool"
	"trickledown/internal/power"
)

// constModel returns a fitted model predicting base + slope*sum(uops
// per cycle) for one subsystem — deterministic, hand-checkable, and
// dependent on the sample so round-trip tests prove real estimation
// happened rather than a constant being echoed back.
func testModel(sub power.Subsystem, base, slope float64) *core.Model {
	return &core.Model{
		Spec: core.ModelSpec{
			Name: fmt.Sprintf("test-%s", sub),
			Sub:  sub,
			Design: func(m *core.Metrics) []float64 {
				var upc float64
				for _, v := range m.UopsPerCycle {
					upc += v
				}
				return []float64{1, upc}
			},
			Terms: []string{"const", "upc"},
		},
		Coef: []float64{base, slope},
	}
}

// testEstimator builds a five-subsystem estimator from testModel fits.
func testEstimator(t *testing.T) *core.Estimator {
	t.Helper()
	models := make([]*core.Model, 0, power.NumSubsystems)
	for i, sub := range power.Subsystems() {
		models = append(models, testModel(sub, 10+float64(i), 2+float64(i)))
	}
	est, err := core.NewEstimator(models...)
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	return est
}

// nanEstimator's every rail predicts NaN: the poisoned-model case the
// non-finite quarantine exists for.
func nanEstimator(t *testing.T) *core.Estimator {
	t.Helper()
	models := make([]*core.Model, 0, power.NumSubsystems)
	for _, sub := range power.Subsystems() {
		models = append(models, testModel(sub, math.NaN(), 0))
	}
	est, err := core.NewEstimator(models...)
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	return est
}

// mkSample fabricates a plausible counter sample at target time t.
func mkSample(t float64, ncpu int, seed uint64) perfctr.Sample {
	s := perfctr.Sample{
		TargetSeconds: t,
		IntervalSec:   1,
		CPUs:          make([]perfctr.CPUCounts, ncpu),
	}
	for i := range s.CPUs {
		base := seed + uint64(i)*1000
		s.CPUs[i] = perfctr.CPUCounts{
			Cycles:        2_800_000_000,
			HaltedCycles:  700_000_000,
			FetchedUops:   1_000_000_000 + base*1_000,
			L3LoadMisses:  100_000 + base,
			L3Misses:      150_000 + base,
			TLBMisses:     5_000,
			BusTx:         200_000 + base,
			BusPrefetchTx: 40_000,
			DMAOther:      30_000,
			Uncacheable:   1_000,
		}
	}
	return s
}

func mkBatch(n, ncpu int, t0 float64) []perfctr.Sample {
	out := make([]perfctr.Sample, n)
	for i := range out {
		out[i] = mkSample(t0+float64(i), ncpu, uint64(i)*17+1)
	}
	return out
}

// blockingInjector implements perfctr.FaultInjector and parks every
// perturb call until released — the test lever that wedges estimation
// workers to fill the queue deterministically.
type blockingInjector struct{ release chan struct{} }

func (b *blockingInjector) PerturbCounts(t float64, cpu int, c *perfctr.CPUCounts) {
	<-b.release
}

func newServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Close(ctx)
	})
	return s
}

func closeServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestIngestEstimatesMatchDirect(t *testing.T) {
	est := testEstimator(t)
	s := newServer(t, Config{Estimator: est, Workers: 2, QueueDepth: 16})

	batch := mkBatch(10, 2, 100)
	// The server owns samples after Ingest; keep a copy for the oracle.
	oracle := make([]perfctr.Sample, len(batch))
	copy(oracle, batch)
	if err := s.Ingest("c1", "node-a", batch); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	closeServer(t, s)

	np, ok := s.NodePower("node-a")
	if !ok {
		t.Fatal("node-a not tracked")
	}
	if np.Samples != 10 || np.NonFinite != 0 {
		t.Fatalf("samples=%d nonfinite=%d, want 10/0", np.Samples, np.NonFinite)
	}
	if np.LastTargetSeconds != oracle[len(oracle)-1].TargetSeconds {
		t.Fatalf("lastT=%v, want %v", np.LastTargetSeconds, oracle[len(oracle)-1].TargetSeconds)
	}
	want := est.Estimate(&oracle[len(oracle)-1])
	for _, sub := range power.Subsystems() {
		if got := np.Power[sub.String()]; math.Abs(got-want[sub]) > 1e-9 {
			t.Errorf("%s: got %v, want %v", sub, got, want[sub])
		}
	}
	if got := np.Power["Total"]; math.Abs(got-want.Total()) > 1e-9 {
		t.Errorf("Total: got %v, want %v", got, want.Total())
	}

	fleet := s.Fleet()
	if fleet.Nodes != 1 || fleet.SamplesEstimated != 10 {
		t.Fatalf("fleet nodes=%d estimated=%d, want 1/10", fleet.Nodes, fleet.SamplesEstimated)
	}
	if math.Abs(fleet.Power["Total"]-want.Total()) > 1e-9 {
		t.Errorf("fleet total %v, want %v", fleet.Power["Total"], want.Total())
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	rel := make(chan struct{})
	s := newServer(t, Config{Estimator: testEstimator(t), Workers: 1, QueueDepth: 2})
	s.SetFaultInjector(&blockingInjector{release: rel})

	// First batch wedges the single worker; wait until it leaves the queue.
	if err := s.Ingest("c", "n", mkBatch(2, 1, 0)); err != nil {
		t.Fatalf("Ingest 0: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.QueueDepth() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the first batch")
		}
		time.Sleep(time.Millisecond)
	}
	// Two more fill the bounded queue exactly.
	for i := 1; i <= 2; i++ {
		if err := s.Ingest("c", "n", mkBatch(2, 1, 10)); err != nil {
			t.Fatalf("Ingest %d: %v", i, err)
		}
	}
	// The next one must be shed, immediately, with the typed error.
	err := s.Ingest("c", "n", mkBatch(3, 1, 20))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Ingest overflow: got %v, want ErrQueueFull", err)
	}
	if !s.SheddingActive() {
		t.Error("SheddingActive = false right after queue_full shed")
	}
	st := s.Stats()
	if st.SamplesShed != 3 {
		t.Errorf("SamplesShed = %d, want 3", st.SamplesShed)
	}
	if d := s.QueueDepth(); d > 2 {
		t.Errorf("queue depth %d exceeds bound 2", d)
	}

	close(rel)
	closeServer(t, s)
	if got := s.Stats().SamplesEstimated; got != 6 {
		t.Errorf("estimated %d after drain, want 6 (all admitted)", got)
	}
}

func TestRateLimitedPerClient(t *testing.T) {
	s := newServer(t, Config{
		Estimator: testEstimator(t), Workers: 1, QueueDepth: 64,
		RatePerClient: 10, Burst: 10,
	})
	if err := s.Ingest("heavy", "n", mkBatch(10, 1, 0)); err != nil {
		t.Fatalf("first batch within burst: %v", err)
	}
	if err := s.Ingest("heavy", "n", mkBatch(10, 1, 0)); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("second batch: got %v, want ErrRateLimited", err)
	}
	// A different client has its own bucket.
	if err := s.Ingest("light", "n", mkBatch(10, 1, 0)); err != nil {
		t.Fatalf("other client: %v", err)
	}
}

func TestBatchTooLarge(t *testing.T) {
	s := newServer(t, Config{Estimator: testEstimator(t), MaxBatch: 4, Workers: 1})
	err := s.Ingest("c", "n", mkBatch(5, 1, 0))
	if !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("got %v, want ErrBatchTooLarge", err)
	}
}

func TestIngestAfterCloseReturnsErrClosed(t *testing.T) {
	s := newServer(t, Config{Estimator: testEstimator(t), Workers: 1})
	closeServer(t, s)
	if err := s.Ingest("c", "n", mkBatch(1, 1, 0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}

// TestConcurrentProducers races many producers against the batch
// workers (run under -race in CI): every admitted sample must be
// estimated exactly once by graceful close, and the books must balance.
func TestConcurrentProducers(t *testing.T) {
	s := newServer(t, Config{Estimator: testEstimator(t), Workers: 4, QueueDepth: 64})

	const producers, batches, batchN = 8, 40, 16
	var wg sync.WaitGroup
	var mu sync.Mutex
	admitted, shedN := 0, 0
	admittedNodes := map[string]bool{}
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			client := fmt.Sprintf("client-%d", p)
			node := fmt.Sprintf("node-%d", p%3)
			for b := 0; b < batches; b++ {
				err := s.Ingest(client, node, mkBatch(batchN, 2, float64(b*batchN)))
				mu.Lock()
				if err == nil {
					admitted += batchN
					admittedNodes[node] = true
				} else if errors.Is(err, ErrQueueFull) {
					shedN += batchN
				} else {
					t.Errorf("unexpected ingest error: %v", err)
				}
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()
	closeServer(t, s)

	st := s.Stats()
	if st.SamplesIngested != uint64(admitted) {
		t.Errorf("ingested %d, want %d", st.SamplesIngested, admitted)
	}
	if st.SamplesEstimated != uint64(admitted) {
		t.Errorf("estimated %d after graceful close, want all %d admitted", st.SamplesEstimated, admitted)
	}
	if st.SamplesShed != uint64(shedN) {
		t.Errorf("shed %d, want %d", st.SamplesShed, shedN)
	}
	fleet := s.Fleet()
	if fleet.Nodes != len(admittedNodes) {
		t.Errorf("fleet nodes %d, want %d (nodes with at least one admitted batch)",
			fleet.Nodes, len(admittedNodes))
	}
	total := fleet.Power["Total"]
	if math.IsNaN(total) || math.IsInf(total, 0) || total <= 0 {
		t.Errorf("fleet total %v, want finite positive", total)
	}
}

// TestHardCancelAbandonsQueue covers cancellation mid-drain: a Close
// whose context fires abandons still-queued batches instead of waiting
// forever for a wedged worker.
func TestHardCancelAbandonsQueue(t *testing.T) {
	rel := make(chan struct{})
	s, err := New(Config{Estimator: testEstimator(t), Workers: 1, QueueDepth: 8})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Start()
	s.SetFaultInjector(&blockingInjector{release: rel})

	const batchN = 4
	for i := 0; i < 5; i++ {
		if err := s.Ingest("c", "n", mkBatch(batchN, 1, float64(i))); err != nil {
			t.Fatalf("Ingest %d: %v", i, err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Close(ctx) }()
	time.Sleep(50 * time.Millisecond) // intake closed, worker wedged on batch 1
	cancel()                          // hard cancel: abandon the queue
	// Give Close time to observe the cancel and stop the workers before
	// un-wedging — the abandoned batches must not be drained.
	time.Sleep(100 * time.Millisecond)
	close(rel)

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Close: got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after hard cancel")
	}
	if got := s.Stats().SamplesEstimated; got >= 5*batchN {
		t.Errorf("estimated %d, want < %d (queued batches abandoned)", got, 5*batchN)
	}
}

func TestNonFiniteEstimatesQuarantined(t *testing.T) {
	s := newServer(t, Config{Estimator: nanEstimator(t), Workers: 1, QueueDepth: 8})
	if err := s.Ingest("c", "n", mkBatch(6, 1, 0)); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	closeServer(t, s)

	np, ok := s.NodePower("n")
	if !ok {
		t.Fatal("node not tracked")
	}
	if np.Samples != 6 || np.NonFinite != 6 {
		t.Fatalf("samples=%d nonfinite=%d, want 6/6", np.Samples, np.NonFinite)
	}
	if np.Power != nil {
		t.Errorf("Power = %v, want empty (no good reading ever)", np.Power)
	}
	fleet := s.Fleet()
	if !fleet.Degraded {
		t.Error("fleet not degraded despite non-finite estimates")
	}
	for k, v := range fleet.Power {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("fleet %s = %v: NaN escaped the quarantine", k, v)
		}
	}
}

// TestRetryRecoversPanickingBatch: a model whose Design panics on the
// first attempt exercises the per-batch panic containment + retry path
// without taking down the worker.
func TestRetryRecoversPanickingBatch(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	models := make([]*core.Model, 0, power.NumSubsystems)
	for i, sub := range power.Subsystems() {
		m := testModel(sub, 10+float64(i), 2)
		if sub == power.SubCPU {
			inner := m.Spec.Design
			m.Spec.Design = func(met *core.Metrics) []float64 {
				mu.Lock()
				calls++
				first := calls == 1
				mu.Unlock()
				if first {
					panic("injected design panic")
				}
				return inner(met)
			}
		}
		models = append(models, m)
	}
	est, err := core.NewEstimator(models...)
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	s := newServer(t, Config{
		Estimator: est, Workers: 1, QueueDepth: 8,
		Retry: pool.Retry{Attempts: 3, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond},
	})
	if err := s.Ingest("c", "n", mkBatch(3, 1, 0)); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	closeServer(t, s)

	st := s.Stats()
	if st.EstimatePanics == 0 {
		t.Error("no panic recorded")
	}
	if st.SamplesEstimated != 3 {
		t.Errorf("estimated %d, want 3 (retry succeeded)", st.SamplesEstimated)
	}
	if _, ok := s.NodePower("n"); !ok {
		t.Error("node missing after retried batch")
	}
}

func TestHTTPIngestRoundTrip(t *testing.T) {
	est := testEstimator(t)
	s := newServer(t, Config{Estimator: est, Workers: 2, QueueDepth: 16})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	batch := mkBatch(8, 2, 7)
	oracle := batch[len(batch)-1]
	wire, err := perfctr.EncodeBatch(nil, "web-node", batch)
	if err != nil {
		t.Fatalf("EncodeBatch: %v", err)
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/ingest", bytes.NewReader(wire))
	req.Header.Set("X-Client-ID", "test-client")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /ingest: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /ingest: status %d, want 202", resp.StatusCode)
	}

	// Wait for the batch to drain, then query every read endpoint.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().SamplesEstimated < 8 {
		if time.Now().After(deadline) {
			t.Fatal("batch never estimated")
		}
		time.Sleep(time.Millisecond)
	}
	want := est.Estimate(&oracle).Total()

	body := httpGet(t, ts.URL+"/power?node=web-node", http.StatusOK)
	if !strings.Contains(body, `"node": "web-node"`) {
		t.Errorf("/power body missing node: %s", body)
	}
	if !strings.Contains(body, fmt.Sprintf("%.4f", want)[:4]) {
		t.Errorf("/power body %s missing total near %v", body, want)
	}
	httpGet(t, ts.URL+"/power?node=ghost", http.StatusNotFound)
	httpGet(t, ts.URL+"/power", http.StatusBadRequest)

	body = httpGet(t, ts.URL+"/fleet", http.StatusOK)
	if !strings.Contains(body, `"nodes": 1`) {
		t.Errorf("/fleet body: %s", body)
	}
	body = httpGet(t, ts.URL+"/statz", http.StatusOK)
	if !strings.Contains(body, `"samples_estimated"`) {
		t.Errorf("/statz body: %s", body)
	}
	httpGet(t, ts.URL+"/healthz", http.StatusOK)
	body = httpGet(t, ts.URL+"/metrics", http.StatusOK)
	if !strings.Contains(body, "serve_samples_ingested_total") {
		t.Errorf("/metrics missing serve series")
	}

	// Garbage on the wire is a 400, not a decode panic.
	resp, err = http.Post(ts.URL+"/ingest", "application/octet-stream",
		strings.NewReader("not a TDS1 frame"))
	if err != nil {
		t.Fatalf("POST garbage: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage ingest: status %d, want 400", resp.StatusCode)
	}
}

func TestHTTP429CarriesRetryAfter(t *testing.T) {
	rel := make(chan struct{})
	s := newServer(t, Config{
		Estimator: testEstimator(t), Workers: 1, QueueDepth: 1,
		RetryAfter: 3 * time.Second,
	})
	s.SetFaultInjector(&blockingInjector{release: rel})
	defer close(rel)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	wire, err := perfctr.EncodeBatch(nil, "n", mkBatch(2, 1, 0))
	if err != nil {
		t.Fatalf("EncodeBatch: %v", err)
	}
	// Saturate: worker wedged + queue of 1 → at most 2 accepted before 429.
	var last *http.Response
	for i := 0; i < 4; i++ {
		resp, err := http.Post(ts.URL+"/ingest", "application/octet-stream", bytes.NewReader(wire))
		if err != nil {
			t.Fatalf("POST %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		last = resp
	}
	if last.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d after saturation, want 429", last.StatusCode)
	}
	if got := last.Header.Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", got)
	}
}

func httpGet(t *testing.T, url string, wantStatus int) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d (body %s)", url, resp.StatusCode, wantStatus, b)
	}
	return string(b)
}
