package trace

import (
	"fmt"
	"testing"
)

// BenchmarkAppend10kSamples builds a 10k-sample trace through the
// Append path at several series widths. Before the name→index map,
// every Append rescanned the series slice, making wide traces
// O(series²·samples); with the map each Append is a constant-time
// lookup, so ns/op should stay flat as series count grows.
func BenchmarkAppend10kSamples(b *testing.B) {
	for _, nseries := range []int{2, 16, 64} {
		b.Run(fmt.Sprintf("series=%d", nseries), func(b *testing.B) {
			names := make([]string, nseries)
			for i := range names {
				names[i] = fmt.Sprintf("series-%03d", i)
			}
			samples := 10000 / nseries // ~10k total appends per iteration
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr := New("bench")
				for s := 0; s < samples; s++ {
					for _, name := range names {
						tr.Append(name, float64(s))
					}
				}
			}
		})
	}
}

// BenchmarkSeriesLookup measures the by-name lookup on a wide trace —
// the other former linear scan.
func BenchmarkSeriesLookup(b *testing.B) {
	tr := New("bench")
	var last string
	for i := 0; i < 64; i++ {
		last = fmt.Sprintf("series-%03d", i)
		tr.Append(last, 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tr.Series(last) == nil {
			b.Fatal("missing series")
		}
	}
}
