package trace

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestAddAndAppend(t *testing.T) {
	tr := New("test")
	tr.Append("measured", 1)
	tr.Append("measured", 2)
	tr.Append("modeled", 3)
	if got := tr.Series("measured"); got == nil || len(got.Values) != 2 {
		t.Fatalf("measured series = %+v", got)
	}
	if tr.Series("missing") != nil {
		t.Error("Series(missing) should be nil")
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d, want 2", tr.Len())
	}
	names := tr.Names()
	if len(names) != 2 || names[0] != "measured" || names[1] != "modeled" {
		t.Errorf("Names = %v", names)
	}
}

func TestAddIdempotent(t *testing.T) {
	tr := New("test")
	a := tr.Add("s")
	b := tr.Add("s")
	if a != b {
		t.Error("Add created a duplicate series")
	}
}

func TestWriteCSV(t *testing.T) {
	tr := New("test")
	tr.Append("a", 1.5)
	tr.Append("a", 2.5)
	tr.Append("b", 10)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d: %q", len(lines), buf.String())
	}
	if lines[0] != "seconds,a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "1,1.5000,10.0000" {
		t.Errorf("row 1 = %q", lines[1])
	}
	// Short series padded with empty cell.
	if lines[2] != "2,2.5000," {
		t.Errorf("row 2 = %q", lines[2])
	}
}

func TestWriteCSVEscaping(t *testing.T) {
	tr := New("test")
	tr.Append(`weird,"name`, 1)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"weird,""name"`) {
		t.Errorf("CSV header not escaped: %q", buf.String())
	}
}

func TestWriteCSVEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := New("x").WriteCSV(&buf); !errors.Is(err, ErrNoSeries) {
		t.Errorf("err = %v, want ErrNoSeries", err)
	}
}

func TestWriteASCII(t *testing.T) {
	tr := New("Figure X")
	for i := 0; i < 50; i++ {
		tr.Append("measured", float64(i))
		tr.Append("modeled", float64(i)+1)
	}
	var buf bytes.Buffer
	if err := tr.WriteASCII(&buf, PlotOptions{Width: 40, Height: 10}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure X") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "*=measured") || !strings.Contains(out, "+=modeled") {
		t.Errorf("missing legend: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title + legend + 10 rows
	if len(lines) != 12 {
		t.Errorf("line count = %d", len(lines))
	}
	for _, l := range lines[2:] {
		if len(l) != 42 { // | + 40 + |
			t.Errorf("row width = %d: %q", len(l), l)
		}
	}
}

func TestWriteASCIIConstantSeries(t *testing.T) {
	tr := New("flat")
	tr.Append("a", 5)
	tr.Append("a", 5)
	var buf bytes.Buffer
	if err := tr.WriteASCII(&buf, PlotOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "*") {
		t.Error("constant series not plotted")
	}
}

func TestWriteASCIIEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := New("x").WriteASCII(&buf, PlotOptions{}); !errors.Is(err, ErrNoSeries) {
		t.Errorf("err = %v, want ErrNoSeries", err)
	}
}

func TestWriteASCIISingleSample(t *testing.T) {
	tr := New("one")
	tr.Append("a", 3)
	var buf bytes.Buffer
	if err := tr.WriteASCII(&buf, PlotOptions{Width: 10, Height: 4}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteCSVOptsDefaultByteIdentical(t *testing.T) {
	tr := New("test")
	for i := 0; i < 100; i++ {
		tr.Append("a", float64(i)*1.25)
		tr.Append("b", float64(i)*-0.5)
	}
	tr.Append("a", 7) // leave b one short to exercise padding
	var classic, opts bytes.Buffer
	if err := tr.WriteCSV(&classic); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteCSVOpts(&opts, DefaultCSVOptions()); err != nil {
		t.Fatal(err)
	}
	if classic.String() != opts.String() {
		t.Errorf("default WriteCSVOpts differs from WriteCSV:\n%q\nvs\n%q",
			classic.String(), opts.String())
	}
}

func TestWriteCSVOptsCustomTimeBase(t *testing.T) {
	tr := New("telemetry")
	for i := 0; i < 4; i++ {
		tr.Append("w", float64(i))
	}
	var buf bytes.Buffer
	// A 2 Hz series starting at second 0 — a scraped telemetry cadence.
	if err := tr.WriteCSVOpts(&buf, CSVOptions{StartSecond: 0, Rate: 2}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	want := []string{"0", "0.5", "1", "1.5"}
	for i, w := range want {
		if got := strings.SplitN(lines[i+1], ",", 2)[0]; got != w {
			t.Errorf("row %d time = %q, want %q", i, got, w)
		}
	}
	// Zero-value options fall back to 1 Hz starting at 0.
	buf.Reset()
	if err := tr.WriteCSVOpts(&buf, CSVOptions{}); err != nil {
		t.Fatal(err)
	}
	if row1 := strings.SplitN(strings.Split(buf.String(), "\n")[1], ",", 2)[0]; row1 != "0" {
		t.Errorf("zero-value opts first time = %q, want 0", row1)
	}
}

func TestCSVEscape(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{"with,comma", `"with,comma"`},
		{`with"quote`, `"with""quote"`},
		{"with\nnewline", "\"with\nnewline\""},
		{`all,"of
it`, "\"all,\"\"of\nit\""},
		{"", ""},
	}
	for _, c := range cases {
		if got := csvEscape(c.in); got != c.want {
			t.Errorf("csvEscape(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestWriteASCIIEmptySeriesOnly(t *testing.T) {
	// A trace whose only series has no values: Len()==0 must be
	// reported as ErrNoSeries, not render an empty grid.
	tr := New("hollow")
	tr.Add("a")
	var buf bytes.Buffer
	if err := tr.WriteASCII(&buf, PlotOptions{}); !errors.Is(err, ErrNoSeries) {
		t.Errorf("err = %v, want ErrNoSeries", err)
	}
}

func TestWriteASCIIAllEqualValues(t *testing.T) {
	tr := New("flatline")
	for i := 0; i < 10; i++ {
		tr.Append("a", 42)
	}
	var buf bytes.Buffer
	if err := tr.WriteASCII(&buf, PlotOptions{Width: 20, Height: 5}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The degenerate range is widened to [42, 43]: glyphs land on the
	// bottom row and the axis label must not be [42.0, 42.0].
	if !strings.Contains(out, "y:[42.0, 43.0]W") {
		t.Errorf("flat-range axis label missing: %q", out)
	}
	rows := strings.Split(strings.TrimSpace(out), "\n")
	if bottom := rows[len(rows)-1]; !strings.Contains(bottom, "*") {
		t.Errorf("flat series not on bottom row: %q", bottom)
	}
}

func TestWriteASCIIDimensionClamping(t *testing.T) {
	tr := New("clamp")
	tr.Append("a", 1)
	tr.Append("a", 2)
	for _, opt := range []PlotOptions{
		{Width: 0, Height: 0},   // defaults: 100 x 20
		{Width: -5, Height: -5}, // negative also defaults
		{Width: 1, Height: 1},   // degenerate but must not panic
	} {
		var buf bytes.Buffer
		if err := tr.WriteASCII(&buf, opt); err != nil {
			t.Fatalf("opts %+v: %v", opt, err)
		}
		rows := strings.Split(strings.TrimSpace(buf.String()), "\n")
		wantW, wantH := opt.Width, opt.Height
		if wantW <= 0 {
			wantW = 100
		}
		if wantH <= 0 {
			wantH = 20
		}
		if got := len(rows) - 2; got != wantH {
			t.Errorf("opts %+v: %d plot rows, want %d", opt, got, wantH)
		}
		if got := len(rows[2]) - 2; got != wantW {
			t.Errorf("opts %+v: row width %d, want %d", opt, got, wantW)
		}
	}
}

// TestPerGoroutineTracesRace is the -race regression guard for the
// documented concurrency contract: parallel experiment code builds one
// Trace per goroutine and never shares it, so building and rendering
// many traces concurrently must be race-clean.
func TestPerGoroutineTracesRace(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tr := New("goroutine-local")
			for i := 0; i < 1000; i++ {
				tr.Append("measured", float64(i+g))
				tr.Append("modeled", float64(i-g))
			}
			var buf bytes.Buffer
			if err := tr.WriteCSV(&buf); err != nil {
				t.Error(err)
			}
			if err := tr.WriteASCII(&buf, PlotOptions{Width: 30, Height: 8}); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
}

// TestSeriesGrowthIsLogarithmic pins the geometric-growth contract at
// the paper's largest figure scale (the ~29-minute Figure 5 mcf sweep,
// 1740 one-hertz samples): appending one sample at a time must
// reallocate O(log n) times, never per append.
func TestSeriesGrowthIsLogarithmic(t *testing.T) {
	const n = 1740
	tr := New("growth")
	s := tr.Add("Measured")
	for i := 0; i < n; i++ {
		s.Append(float64(i))
	}
	if len(s.Values) != n {
		t.Fatalf("len = %d, want %d", len(s.Values), n)
	}
	// Doubling from minSeriesCap: 64 -> 128 -> ... -> 2048 is 6 grows.
	maxGrows := 1
	for c := minSeriesCap; c < n; c *= 2 {
		maxGrows++
	}
	if s.Grows > maxGrows {
		t.Errorf("appending %d samples grew %d times, want <= %d (geometric)", n, s.Grows, maxGrows)
	}
	if s.Grows == 0 {
		t.Error("expected at least one grow without preallocation")
	}

	// A run with a known horizon preallocates and never grows mid-run,
	// for series created before and after the Preallocate call.
	pre := New("preallocated")
	before := pre.Add("Measured")
	pre.Preallocate(n)
	after := pre.Add("Modeled")
	for i := 0; i < n; i++ {
		before.Append(float64(i))
		after.Append(float64(i))
	}
	if before.Grows != 1 { // the single Reserve(n) from Preallocate
		t.Errorf("pre-existing series grew %d times, want 1 (the Preallocate reserve)", before.Grows)
	}
	if after.Grows != 0 {
		t.Errorf("horizon-sized series grew %d times, want 0", after.Grows)
	}
}
