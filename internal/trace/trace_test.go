package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestAddAndAppend(t *testing.T) {
	tr := New("test")
	tr.Append("measured", 1)
	tr.Append("measured", 2)
	tr.Append("modeled", 3)
	if got := tr.Series("measured"); got == nil || len(got.Values) != 2 {
		t.Fatalf("measured series = %+v", got)
	}
	if tr.Series("missing") != nil {
		t.Error("Series(missing) should be nil")
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d, want 2", tr.Len())
	}
	names := tr.Names()
	if len(names) != 2 || names[0] != "measured" || names[1] != "modeled" {
		t.Errorf("Names = %v", names)
	}
}

func TestAddIdempotent(t *testing.T) {
	tr := New("test")
	a := tr.Add("s")
	b := tr.Add("s")
	if a != b {
		t.Error("Add created a duplicate series")
	}
}

func TestWriteCSV(t *testing.T) {
	tr := New("test")
	tr.Append("a", 1.5)
	tr.Append("a", 2.5)
	tr.Append("b", 10)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d: %q", len(lines), buf.String())
	}
	if lines[0] != "seconds,a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "1,1.5000,10.0000" {
		t.Errorf("row 1 = %q", lines[1])
	}
	// Short series padded with empty cell.
	if lines[2] != "2,2.5000," {
		t.Errorf("row 2 = %q", lines[2])
	}
}

func TestWriteCSVEscaping(t *testing.T) {
	tr := New("test")
	tr.Append(`weird,"name`, 1)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"weird,""name"`) {
		t.Errorf("CSV header not escaped: %q", buf.String())
	}
}

func TestWriteCSVEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := New("x").WriteCSV(&buf); !errors.Is(err, ErrNoSeries) {
		t.Errorf("err = %v, want ErrNoSeries", err)
	}
}

func TestWriteASCII(t *testing.T) {
	tr := New("Figure X")
	for i := 0; i < 50; i++ {
		tr.Append("measured", float64(i))
		tr.Append("modeled", float64(i)+1)
	}
	var buf bytes.Buffer
	if err := tr.WriteASCII(&buf, PlotOptions{Width: 40, Height: 10}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure X") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "*=measured") || !strings.Contains(out, "+=modeled") {
		t.Errorf("missing legend: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title + legend + 10 rows
	if len(lines) != 12 {
		t.Errorf("line count = %d", len(lines))
	}
	for _, l := range lines[2:] {
		if len(l) != 42 { // | + 40 + |
			t.Errorf("row width = %d: %q", len(l), l)
		}
	}
}

func TestWriteASCIIConstantSeries(t *testing.T) {
	tr := New("flat")
	tr.Append("a", 5)
	tr.Append("a", 5)
	var buf bytes.Buffer
	if err := tr.WriteASCII(&buf, PlotOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "*") {
		t.Error("constant series not plotted")
	}
}

func TestWriteASCIIEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := New("x").WriteASCII(&buf, PlotOptions{}); !errors.Is(err, ErrNoSeries) {
		t.Errorf("err = %v, want ErrNoSeries", err)
	}
}

func TestWriteASCIISingleSample(t *testing.T) {
	tr := New("one")
	tr.Append("a", 3)
	var buf bytes.Buffer
	if err := tr.WriteASCII(&buf, PlotOptions{Width: 10, Height: 4}); err != nil {
		t.Fatal(err)
	}
}
