// Package trace records named time series produced by experiments (the
// measured and modeled power traces behind the paper's figures) and
// renders them as CSV or as ASCII plots for terminal inspection.
package trace

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// ErrNoSeries is returned when rendering a trace with no data.
var ErrNoSeries = errors.New("trace: no series")

// Series is one named sequence of samples at a fixed 1 Hz rate (the
// paper's sampling rate), indexed by second.
type Series struct {
	Name   string
	Values []float64
}

// Trace is a set of series sharing a time base.
type Trace struct {
	// Title names the experiment, e.g. "Figure 5: Memory Power (Bus) - mcf".
	Title  string
	series []*Series
}

// New returns an empty trace with the given title.
func New(title string) *Trace {
	return &Trace{Title: title}
}

// Add creates (or returns the existing) series with the given name.
func (t *Trace) Add(name string) *Series {
	for _, s := range t.series {
		if s.Name == name {
			return s
		}
	}
	s := &Series{Name: name}
	t.series = append(t.series, s)
	return s
}

// Append appends one value to the named series, creating it if needed.
func (t *Trace) Append(name string, v float64) {
	s := t.Add(name)
	s.Values = append(s.Values, v)
}

// Series returns the named series, or nil if absent.
func (t *Trace) Series(name string) *Series {
	for _, s := range t.series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Names returns the series names in insertion order.
func (t *Trace) Names() []string {
	out := make([]string, len(t.series))
	for i, s := range t.series {
		out[i] = s.Name
	}
	return out
}

// Len returns the length of the longest series.
func (t *Trace) Len() int {
	n := 0
	for _, s := range t.series {
		if len(s.Values) > n {
			n = len(s.Values)
		}
	}
	return n
}

// WriteCSV writes the trace as CSV with a leading seconds column. Short
// series are padded with empty cells.
func (t *Trace) WriteCSV(w io.Writer) error {
	if len(t.series) == 0 {
		return ErrNoSeries
	}
	cols := make([]string, 0, len(t.series)+1)
	cols = append(cols, "seconds")
	for _, s := range t.series {
		cols = append(cols, csvEscape(s.Name))
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	n := t.Len()
	row := make([]string, len(t.series)+1)
	for i := 0; i < n; i++ {
		row[0] = fmt.Sprintf("%d", i+1)
		for j, s := range t.series {
			if i < len(s.Values) {
				row[j+1] = fmt.Sprintf("%.4f", s.Values[i])
			} else {
				row[j+1] = ""
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// PlotOptions controls ASCII rendering.
type PlotOptions struct {
	// Width is the plot width in columns (default 100).
	Width int
	// Height is the plot height in rows (default 20).
	Height int
}

// WriteASCII renders every series of the trace into one ASCII chart, one
// glyph per series, time on the X axis, value on the Y axis. It is meant
// for eyeballing the figures in a terminal, like the paper's
// measured-vs-modeled plots.
func (t *Trace) WriteASCII(w io.Writer, opt PlotOptions) error {
	if len(t.series) == 0 || t.Len() == 0 {
		return ErrNoSeries
	}
	width := opt.Width
	if width <= 0 {
		width = 100
	}
	height := opt.Height
	if height <= 0 {
		height = 20
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range t.series {
		for _, v := range s.Values {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	glyphs := []byte{'*', '+', 'o', 'x', '#', '@'}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	n := t.Len()
	for si, s := range t.series {
		g := glyphs[si%len(glyphs)]
		for i, v := range s.Values {
			col := 0
			if n > 1 {
				col = i * (width - 1) / (n - 1)
			}
			frac := (v - lo) / (hi - lo)
			row := height - 1 - int(frac*float64(height-1)+0.5)
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = g
		}
	}
	if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
		return err
	}
	legend := make([]string, len(t.series))
	for i, s := range t.series {
		legend[i] = fmt.Sprintf("%c=%s", glyphs[i%len(glyphs)], s.Name)
	}
	if _, err := fmt.Fprintf(w, "[%s]  y:[%.1f, %.1f]W  x:[1, %d]s\n", strings.Join(legend, " "), lo, hi, n); err != nil {
		return err
	}
	for _, row := range grid {
		if _, err := fmt.Fprintf(w, "|%s|\n", row); err != nil {
			return err
		}
	}
	return nil
}
