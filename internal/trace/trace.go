// Package trace records named time series produced by experiments (the
// measured and modeled power traces behind the paper's figures) and
// renders them as CSV or as ASCII plots for terminal inspection.
//
// # Concurrency contract
//
// A Trace is NOT safe for concurrent use: Add, Append and the renderers
// take no locks. The parallel experiment runner is safe only because
// every table/figure generation builds its own Trace — series are never
// shared across goroutines. Keep it that way: construct per-goroutine
// Traces and merge (or render) after joining, rather than appending to
// one Trace from multiple workers.
package trace

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ErrNoSeries is returned when rendering a trace with no data.
var ErrNoSeries = errors.New("trace: no series")

// minSeriesCap is the smallest capacity a growing series allocates, so
// short traces don't pay a doubling ladder of tiny reallocations.
const minSeriesCap = 64

// Series is one named sequence of samples at a fixed 1 Hz rate (the
// paper's sampling rate), indexed by second.
type Series struct {
	Name   string
	Values []float64
	// Grows counts capacity reallocations performed by Append/Reserve.
	// Growth is geometric (doubling), so appending n samples one at a
	// time performs O(log n) grows — and zero when the trace was
	// preallocated to the run horizon. Exposed so regression tests can
	// assert the bound.
	Grows int
}

// Reserve ensures capacity for at least n total samples, doubling from
// the current capacity so repeated appends reallocate O(log n) times.
func (s *Series) Reserve(n int) {
	if n <= cap(s.Values) {
		return
	}
	c := cap(s.Values)
	if c < minSeriesCap {
		c = minSeriesCap
	}
	for c < n {
		c *= 2
	}
	vals := make([]float64, len(s.Values), c)
	copy(vals, s.Values)
	s.Values = vals
	s.Grows++
}

// Append adds one sample, growing capacity geometrically when full.
// Appending through a Series handle obtained once from Add skips the
// per-sample name lookup of Trace.Append — the form the per-row figure
// loops use.
func (s *Series) Append(v float64) {
	if len(s.Values) == cap(s.Values) {
		s.Reserve(len(s.Values) + 1)
	}
	s.Values = append(s.Values, v)
}

// Trace is a set of series sharing a time base. It is not safe for
// concurrent use; see the package comment.
type Trace struct {
	// Title names the experiment, e.g. "Figure 5: Memory Power (Bus) - mcf".
	Title  string
	series []*Series
	// index maps series name to its position in series, so Add/Append
	// stay O(1) per call instead of rescanning the series list (which
	// made building wide multi-series traces O(series²·samples)).
	// Insertion order — what CSV columns and plot legends use — is
	// still carried by the slice.
	index map[string]int
	// horizon is the expected sample count set by Preallocate; series
	// created after the call start at this capacity.
	horizon int
}

// Preallocate sizes every series (current and future) for n samples, so
// a run with a known horizon appends without any mid-run reallocation.
func (t *Trace) Preallocate(n int) {
	if n <= 0 {
		return
	}
	t.horizon = n
	for _, s := range t.series {
		s.Reserve(n)
	}
}

// New returns an empty trace with the given title.
func New(title string) *Trace {
	return &Trace{Title: title, index: make(map[string]int)}
}

// Add creates (or returns the existing) series with the given name.
func (t *Trace) Add(name string) *Series {
	if t.index == nil {
		t.index = make(map[string]int)
	}
	if i, ok := t.index[name]; ok {
		return t.series[i]
	}
	s := &Series{Name: name}
	if t.horizon > 0 {
		s.Values = make([]float64, 0, t.horizon)
	}
	t.index[name] = len(t.series)
	t.series = append(t.series, s)
	return s
}

// Append appends one value to the named series, creating it if needed.
// Inner loops should hoist the lookup: s := t.Add(name) once, then
// s.Append(v) per sample.
func (t *Trace) Append(name string, v float64) {
	t.Add(name).Append(v)
}

// Series returns the named series, or nil if absent.
func (t *Trace) Series(name string) *Series {
	if i, ok := t.index[name]; ok {
		return t.series[i]
	}
	return nil
}

// Names returns the series names in insertion order.
func (t *Trace) Names() []string {
	out := make([]string, len(t.series))
	for i, s := range t.series {
		out[i] = s.Name
	}
	return out
}

// Len returns the length of the longest series.
func (t *Trace) Len() int {
	n := 0
	for _, s := range t.series {
		if len(s.Values) > n {
			n = len(s.Values)
		}
	}
	return n
}

// CSVOptions controls the time column WriteCSVOpts emits. The paper's
// figures sample at 1 Hz starting at second 1, which is the WriteCSV
// default; telemetry-derived series (scraped at other cadences, or
// starting at zero) set an explicit base instead of inheriting it.
type CSVOptions struct {
	// StartSecond is the time value of the first row. Zero is a valid
	// start; use DefaultCSVOptions (or plain WriteCSV) for the paper's
	// 1-based column.
	StartSecond float64
	// Rate is the sample rate in rows per second; non-positive means
	// 1 Hz. Row i carries time StartSecond + i/Rate.
	Rate float64
}

// DefaultCSVOptions reproduces WriteCSV's historical time base: 1 Hz
// samples labeled 1, 2, 3, ...
func DefaultCSVOptions() CSVOptions {
	return CSVOptions{StartSecond: 1, Rate: 1}
}

// WriteCSV writes the trace as CSV with a leading seconds column on the
// paper's 1 Hz, 1-based time base. Short series are padded with empty
// cells.
func (t *Trace) WriteCSV(w io.Writer) error {
	return t.WriteCSVOpts(w, DefaultCSVOptions())
}

// WriteCSVOpts is WriteCSV with an explicit time base. With
// DefaultCSVOptions the output is byte-for-byte identical to WriteCSV.
func (t *Trace) WriteCSVOpts(w io.Writer, opt CSVOptions) error {
	if len(t.series) == 0 {
		return ErrNoSeries
	}
	rate := opt.Rate
	if rate <= 0 {
		rate = 1
	}
	cols := make([]string, 0, len(t.series)+1)
	cols = append(cols, "seconds")
	for _, s := range t.series {
		cols = append(cols, csvEscape(s.Name))
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	n := t.Len()
	row := make([]string, len(t.series)+1)
	for i := 0; i < n; i++ {
		row[0] = strconv.FormatFloat(opt.StartSecond+float64(i)/rate, 'g', -1, 64)
		for j, s := range t.series {
			if i < len(s.Values) {
				row[j+1] = fmt.Sprintf("%.4f", s.Values[i])
			} else {
				row[j+1] = ""
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// PlotOptions controls ASCII rendering.
type PlotOptions struct {
	// Width is the plot width in columns (default 100).
	Width int
	// Height is the plot height in rows (default 20).
	Height int
}

// WriteASCII renders every series of the trace into one ASCII chart, one
// glyph per series, time on the X axis, value on the Y axis. It is meant
// for eyeballing the figures in a terminal, like the paper's
// measured-vs-modeled plots.
func (t *Trace) WriteASCII(w io.Writer, opt PlotOptions) error {
	if len(t.series) == 0 || t.Len() == 0 {
		return ErrNoSeries
	}
	width := opt.Width
	if width <= 0 {
		width = 100
	}
	height := opt.Height
	if height <= 0 {
		height = 20
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range t.series {
		for _, v := range s.Values {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	glyphs := []byte{'*', '+', 'o', 'x', '#', '@'}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	n := t.Len()
	for si, s := range t.series {
		g := glyphs[si%len(glyphs)]
		for i, v := range s.Values {
			col := 0
			if n > 1 {
				col = i * (width - 1) / (n - 1)
			}
			frac := (v - lo) / (hi - lo)
			row := height - 1 - int(frac*float64(height-1)+0.5)
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = g
		}
	}
	if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
		return err
	}
	legend := make([]string, len(t.series))
	for i, s := range t.series {
		legend[i] = fmt.Sprintf("%c=%s", glyphs[i%len(glyphs)], s.Name)
	}
	if _, err := fmt.Fprintf(w, "[%s]  y:[%.1f, %.1f]W  x:[1, %d]s\n", strings.Join(legend, " "), lo, hi, n); err != nil {
		return err
	}
	for _, row := range grid {
		if _, err := fmt.Fprintf(w, "|%s|\n", row); err != nil {
			return err
		}
	}
	return nil
}
