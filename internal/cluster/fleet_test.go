package cluster

import (
	"context"
	"errors"
	"sync"
	"testing"

	"trickledown/internal/machine"
)

// lightConfig is a small-generation box (1 CPU × 2 threads, one disk) —
// cheap enough to step in fleet-sized test populations.
func lightConfig(seed uint64) machine.Config {
	cfg := machine.DefaultConfig()
	cfg.NumCPUs = 1
	cfg.ThreadsPerCPU = 2
	cfg.NumDisks = 1
	cfg.Seed = seed
	return cfg
}

// fleetWorkloads cycles single-instance placements across the fleet so
// shards hold genuinely mixed-cost nodes.
var fleetWorkloads = []string{"gcc", "mcf", "mesa", "vortex"}

// buildFleet assembles n light mixed-config nodes with fixed seeds.
func buildFleet(t testing.TB, workers, n int) *Cluster {
	t.Helper()
	c, err := New(estimator(t.(*testing.T)))
	if err != nil {
		t.Fatal(err)
	}
	c.SetWorkers(workers)
	for i := 0; i < n; i++ {
		name := nodeName(i)
		wl := fleetWorkloads[i%len(fleetWorkloads)]
		if _, err := c.AddMixedConfig(name, lightConfig(uint64(1000+i)), []machine.Placement{
			{Workload: wl, Thread: i % 2},
		}); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func nodeName(i int) string {
	// Stable zero-padded names keep insertion order and lexical order
	// aligned, which makes failures easy to read.
	const digits = "0123456789"
	return "fleet-" + string([]byte{
		digits[i/1000%10], digits[i/100%10], digits[i/10%10], digits[i%10],
	})
}

// TestShardedDeterminismAcrossWorkers is the fleet-scale extension of
// TestClusterRunDeterministic: with more nodes than shards and shard
// counts that do not divide the fleet evenly, Snapshot and
// VerifyAccuracy must stay bit-for-bit identical at every worker count.
func TestShardedDeterminismAcrossWorkers(t *testing.T) {
	const nodes = 26 // deliberately not a multiple of any shard count
	ref := buildFleet(t, 1, nodes)
	if err := ref.Run(4); err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(3); err != nil { // cover the fold-resume path
		t.Fatal(err)
	}
	refSnap, refTotal, err := ref.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	refAcc, err := ref.VerifyAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 7, 16} {
		c := buildFleet(t, workers, nodes)
		if err := c.Run(4); err != nil {
			t.Fatal(err)
		}
		if err := c.Run(3); err != nil {
			t.Fatal(err)
		}
		snap, total, err := c.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if total != refTotal {
			t.Errorf("workers=%d: total %v != serial %v", workers, total, refTotal)
		}
		for i := range refSnap {
			if snap[i] != refSnap[i] {
				t.Errorf("workers=%d node %d: %+v != serial %+v", workers, i, snap[i], refSnap[i])
			}
		}
		if acc, err := c.VerifyAccuracy(); err != nil || acc != refAcc {
			t.Errorf("workers=%d: accuracy %v (err %v) != serial %v", workers, acc, err, refAcc)
		}
	}
}

// TestSetWorkersDuringRun is the -race regression test for the pool-swap
// hazard: hammering SetWorkers while a run is in flight must be safe,
// must never change the in-flight run's results, and the new bound must
// take effect at the next run, not mid-run.
func TestSetWorkersDuringRun(t *testing.T) {
	c := buildFleet(t, 2, 8)
	ref := buildFleet(t, 2, 8)

	var wg sync.WaitGroup
	wg.Add(1)
	stop := make(chan struct{})
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.SetWorkers(1 + i%7)
		}
	}()
	if err := c.Run(5); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	c.SetWorkers(5)
	if got := c.Workers(); got != 5 {
		t.Fatalf("Workers() = %d after SetWorkers(5)", got)
	}
	// The next run adopts the new bound and still matches the reference
	// stepped without any SetWorkers churn.
	if err := c.Run(5); err != nil {
		t.Fatal(err)
	}
	for _, r := range []float64{5, 5} {
		if err := ref.Run(r); err != nil {
			t.Fatal(err)
		}
	}
	snap, total, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	refSnap, refTotal, err := ref.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if total != refTotal {
		t.Errorf("total %v != reference %v", total, refTotal)
	}
	for i := range refSnap {
		if snap[i] != refSnap[i] {
			t.Errorf("node %d: %+v != reference %+v", i, snap[i], refSnap[i])
		}
	}
}

// TestSetPowered covers the administrative power-down path the
// scheduler actuates: an off node is not stepped, leaves the snapshot
// and Coverage.Healthy, keeps its history, and resumes when powered
// back on.
func TestSetPowered(t *testing.T) {
	c := buildFleet(t, 4, 3)
	if err := c.Run(4); err != nil {
		t.Fatal(err)
	}
	victim, ok := c.Lookup(nodeName(1))
	if !ok {
		t.Fatal("Lookup failed")
	}
	beforeN := victim.n
	beforeMean, err := victim.EstimatedMean()
	if err != nil {
		t.Fatal(err)
	}

	if err := c.SetPowered("no-such-node", false); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("SetPowered unknown = %v", err)
	}
	if err := c.SetPowered(nodeName(1), false); err != nil {
		t.Fatal(err)
	}
	if victim.Powered() {
		t.Fatal("victim still powered")
	}
	if err := c.Run(4); err != nil {
		t.Fatal(err)
	}
	// Frozen: no new samples, mean untouched, excluded from snapshot.
	if victim.n != beforeN {
		t.Errorf("powered-off node stepped: %d -> %d samples", beforeN, victim.n)
	}
	if m, err := victim.EstimatedMean(); err != nil || m != beforeMean {
		t.Errorf("powered-off mean changed: %v (err %v)", m, err)
	}
	snap, _, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 2 {
		t.Errorf("snapshot = %v, want 2 survivors", snap)
	}
	for _, e := range snap {
		if e.Name == nodeName(1) {
			t.Errorf("powered-off node in snapshot: %+v", e)
		}
	}
	cov := c.Coverage()
	if cov.Healthy != 2 || len(cov.PoweredOff) != 1 || cov.PoweredOff[0] != nodeName(1) {
		t.Errorf("coverage = %+v", cov)
	}
	if !cov.Full() {
		t.Error("deliberate power-down broke Full(); it is scheduling, not degradation")
	}

	// Power back on: stepping resumes, snapshot regains the node.
	if err := c.SetPowered(nodeName(1), true); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(4); err != nil {
		t.Fatal(err)
	}
	if victim.n <= beforeN {
		t.Errorf("powered-on node did not resume: %d samples", victim.n)
	}
	if snap, _, err = c.Snapshot(); err != nil || len(snap) != 3 {
		t.Errorf("snapshot after power-on = %v (err %v)", snap, err)
	}
}

// TestSnapshotIntoReuse: the streaming variants agree exactly with
// Snapshot and, given a large enough buffer, allocate nothing — the
// contract a 10k-node per-interval scheduler loop depends on.
func TestSnapshotIntoReuse(t *testing.T) {
	c := buildFleet(t, 4, 6)
	if err := c.Run(4); err != nil {
		t.Fatal(err)
	}
	want, wantTotal, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]Estimate, 0, 16)
	got, total, err := c.SnapshotInto(buf)
	if err != nil {
		t.Fatal(err)
	}
	if total != wantTotal || len(got) != len(want) {
		t.Fatalf("SnapshotInto = %v (%v), want %v (%v)", got, total, want, wantTotal)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("entry %d: %+v != %+v", i, got[i], want[i])
		}
	}
	if &got[0] != &buf[:1][0] {
		t.Error("SnapshotInto did not reuse the caller's buffer")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := c.SnapshotInto(buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("SnapshotInto allocates %.0f/op with a big enough buffer", allocs)
	}

	visitTotal, err := c.VisitEstimates(nil) // total-only streaming read
	if err != nil || visitTotal != wantTotal {
		t.Errorf("VisitEstimates total = %v (err %v), want %v", visitTotal, err, wantTotal)
	}
	var names []string
	if _, err := c.VisitEstimates(func(e Estimate) { names = append(names, e.Name) }); err != nil {
		t.Fatal(err)
	}
	for i, e := range want {
		if names[i] != e.Name {
			t.Errorf("visit order differs at %d: %s != %s", i, names[i], e.Name)
		}
	}
}

// TestRunContextCancelSharded pins cancellation semantics on the
// sharded path: ctx.Err() surfaces, nothing is quarantined, and folded
// samples survive.
func TestRunContextCancelSharded(t *testing.T) {
	c := buildFleet(t, 4, 12)
	if err := c.Run(2); err != nil {
		t.Fatal(err)
	}
	_, before, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.RunContext(ctx, 30); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext err = %v", err)
	}
	if len(c.Quarantined()) != 0 {
		t.Errorf("cancellation quarantined nodes: %v", c.Quarantined())
	}
	_, after, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if after < before*0.5 {
		t.Errorf("samples lost on cancellation: %v -> %v", before, after)
	}
}

// TestPlanShards pins the shard partition: contiguous, balanced,
// covering every node exactly once, at any worker count.
func TestPlanShards(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{0, 4}, {1, 4}, {3, 4}, {26, 3}, {100, 8}, {10000, 16}, {5, 1},
	} {
		shards := planShards(nil, tc.n, tc.workers)
		if tc.n == 0 {
			if len(shards) != 1 || shards[0].lo != 0 || shards[0].hi != 0 {
				t.Errorf("n=0: shards = %+v", shards)
			}
			continue
		}
		if len(shards) > tc.n {
			t.Errorf("n=%d workers=%d: %d shards exceed nodes", tc.n, tc.workers, len(shards))
		}
		next := 0
		for s, sh := range shards {
			if sh.lo != next || sh.hi < sh.lo {
				t.Fatalf("n=%d workers=%d shard %d: [%d,%d) after %d", tc.n, tc.workers, s, sh.lo, sh.hi, next)
			}
			next = sh.hi
		}
		if next != tc.n {
			t.Errorf("n=%d workers=%d: shards cover %d nodes", tc.n, tc.workers, next)
		}
	}
}
