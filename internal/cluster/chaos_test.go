package cluster

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"trickledown/internal/faults"
	"trickledown/internal/pool"
	"trickledown/internal/power"
)

// chaosWorkloads gives the 16-node drill a heterogeneous mix.
var chaosWorkloads = []string{"gcc", "mcf", "mesa", "idle", "dbt-2", "diskload"}

func build16(t *testing.T) *Cluster {
	t.Helper()
	c, err := New(estimator(t))
	if err != nil {
		t.Fatal(err)
	}
	c.SetWorkers(8)
	names := []string{
		"node00", "node01", "node02", "node03", "node04", "node05", "node06", "node07",
		"node08", "node09", "node10", "node11", "node12", "node13", "node14", "node15",
	}
	for i, name := range names {
		if _, err := c.AddHomogeneous(name, chaosWorkloads[i%len(chaosWorkloads)], uint64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// chaosPlan crashes two nodes mid-run and gives a third a flaky DAQ
// memory channel — the drill from the issue.
func chaosPlan() *faults.Plan {
	return &faults.Plan{Seed: 2024, Specs: []faults.Spec{
		{Kind: faults.NodeCrash, Node: "node03", Start: 8},
		{Kind: faults.NodeCrash, Node: "node11", Start: 15},
		{Kind: faults.DAQDropout, Node: "node05", Channel: power.SubMemory, Start: 5, Duration: 2},
	}}
}

// TestClusterSurvivesChaos is the tentpole scenario: a 16-node run with
// two injected crashes and a flaky sensor channel finishes with exactly
// the crashed nodes quarantined, the flaky node repaired and reported as
// degraded, and surviving-node accuracy within 2x the fault-free twin.
func TestClusterSurvivesChaos(t *testing.T) {
	clean := build16(t)
	chaos := build16(t)
	if n, err := chaos.InjectFaults(chaosPlan()); err != nil || n != 3 {
		t.Fatalf("InjectFaults = %d, %v", n, err)
	}

	if err := clean.Run(30); err != nil {
		t.Fatal(err)
	}
	err := chaos.Run(30)
	if !errors.Is(err, ErrNodeFailed) || !errors.Is(err, faults.ErrInjectedCrash) {
		t.Fatalf("chaos Run err = %v, want ErrNodeFailed wrapping ErrInjectedCrash", err)
	}

	wantQ := []string{"node03", "node11"}
	if got := chaos.Quarantined(); !reflect.DeepEqual(got, wantQ) {
		t.Fatalf("quarantined = %v, want %v", got, wantQ)
	}
	cov := chaos.Coverage()
	if cov.Total != 16 || cov.Healthy != 14 {
		t.Errorf("coverage = %+v", cov)
	}
	if !reflect.DeepEqual(cov.Degraded, []string{"node05"}) {
		t.Errorf("degraded = %v, want the flaky-DAQ node", cov.Degraded)
	}
	if cov.Full() {
		t.Error("Coverage.Full() on a degraded cluster")
	}

	// Quarantined nodes answer with the typed failure; healthy ones don't.
	for _, n := range chaos.Nodes() {
		_, err := n.EstimatedMean()
		switch n.Name {
		case "node03", "node11":
			if !errors.Is(err, ErrNodeFailed) {
				t.Errorf("%s: err = %v, want ErrNodeFailed", n.Name, err)
			}
		default:
			if err != nil {
				t.Errorf("%s: %v", n.Name, err)
			}
		}
	}

	// Snapshot covers the 14 survivors; the flaky node's repaired trace
	// keeps estimation accuracy within 2x the fault-free twin.
	snap, _, err := chaos.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 14 {
		t.Fatalf("snapshot covers %d nodes, want 14", len(snap))
	}
	accClean, err := clean.VerifyAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	accChaos, err := chaos.VerifyAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	if accChaos > 2*accClean+0.25 {
		t.Errorf("chaos accuracy %.3f%% vs fault-free %.3f%%: degraded beyond 2x", accChaos, accClean)
	}

	// A later run skips the dead nodes instead of failing again, and the
	// consolidation planner still works over the survivors.
	if err := chaos.Run(5); err != nil {
		t.Fatalf("second run re-reported quarantined nodes: %v", err)
	}
	snap, total, err := chaos.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	plan := PlanConsolidation(snap, total*0.8)
	if !plan.Fits || len(plan.Evict) == 0 {
		t.Errorf("consolidation over survivors = %+v", plan)
	}
}

// TestChaosDeterministic repeats the drill and demands bit-identical
// results: same plan, same seeds, same quarantine set, same totals.
func TestChaosDeterministic(t *testing.T) {
	run := func() ([]Estimate, float64, []string) {
		c := build16(t)
		if _, err := c.InjectFaults(chaosPlan()); err != nil {
			t.Fatal(err)
		}
		_ = c.Run(25)
		snap, total, err := c.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		return snap, total, c.Quarantined()
	}
	snapA, totalA, qA := run()
	snapB, totalB, qB := run()
	if totalA != totalB {
		t.Errorf("totals diverged: %v vs %v", totalA, totalB)
	}
	if !reflect.DeepEqual(snapA, snapB) {
		t.Error("snapshots diverged across identical chaos runs")
	}
	if !reflect.DeepEqual(qA, qB) {
		t.Errorf("quarantine sets diverged: %v vs %v", qA, qB)
	}
}

// TestWorkerPanicQuarantinesOneNode injects a panic into one node's
// stepping worker: it must come back as a recovered *pool.PanicError on
// that node only, with every other node's step unharmed.
func TestWorkerPanicQuarantinesOneNode(t *testing.T) {
	c := build16(t)
	plan := &faults.Plan{Seed: 7, Specs: []faults.Spec{
		{Kind: faults.WorkerPanic, Node: "node09", Start: 3},
	}}
	if _, err := c.InjectFaults(plan); err != nil {
		t.Fatal(err)
	}
	err := c.Run(10)
	if !errors.Is(err, ErrNodeFailed) {
		t.Fatalf("err = %v, want ErrNodeFailed", err)
	}
	var pe *pool.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want a recovered *pool.PanicError", err)
	}
	if len(pe.Stack) == 0 {
		t.Error("recovered panic lost its stack")
	}
	if got := c.Quarantined(); !reflect.DeepEqual(got, []string{"node09"}) {
		t.Fatalf("quarantined = %v", got)
	}
	if cov := c.Coverage(); cov.Healthy != 15 {
		t.Errorf("coverage = %+v", cov)
	}
	if _, _, err := c.Snapshot(); err != nil {
		t.Errorf("snapshot after panic: %v", err)
	}
}

// TestRetryDoesNotMaskPermanentFailure: retries re-step the node, folding
// stays idempotent, and a crashed machine is still quarantined once the
// attempts are spent.
func TestRetryDoesNotMaskPermanentFailure(t *testing.T) {
	c := build16(t)
	c.SetRetry(pool.Retry{Attempts: 3, BaseDelay: time.Microsecond, MaxDelay: time.Millisecond})
	plan := &faults.Plan{Seed: 1, Specs: []faults.Spec{
		{Kind: faults.NodeCrash, Node: "node02", Start: 4},
	}}
	if _, err := c.InjectFaults(plan); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(12); !errors.Is(err, faults.ErrInjectedCrash) {
		t.Fatalf("err = %v", err)
	}
	if got := c.Quarantined(); !reflect.DeepEqual(got, []string{"node02"}) {
		t.Fatalf("quarantined = %v", got)
	}
	// Retried healthy nodes did not double-fold: 12 s of 1 Hz samples
	// yields at most 12 rows per node.
	for _, n := range c.Nodes() {
		if n.Err() != nil {
			continue
		}
		n.mu.Lock()
		count := n.n
		n.mu.Unlock()
		if count > 12 {
			t.Errorf("%s folded %d samples from a 12s run", n.Name, count)
		}
	}
}

// TestInjectFaultsRejectsBadPlan covers the validation path.
func TestInjectFaultsRejectsBadPlan(t *testing.T) {
	c := build16(t)
	if _, err := c.InjectFaults(nil); err == nil {
		t.Error("nil plan accepted")
	}
	bad := &faults.Plan{Specs: []faults.Spec{{Kind: faults.Kind(42)}}}
	if _, err := c.InjectFaults(bad); err == nil {
		t.Error("invalid plan accepted")
	}
}
