// Package cluster provides the ensemble-management layer the paper
// motivates ("in data and computing centers, this can be a valuable tool
// for keeping the center within temperature and power limits"): a set of
// simulated nodes observed purely through the trickle-down estimator,
// with budget checking and a consolidation planner in the spirit of the
// Rajamani/Chen node-power-down studies the paper cites.
//
// The manager never reads a node's measured rails; they remain available
// (Node.MeasuredMean) only so callers can verify decisions the way the
// paper verifies its models.
//
// # Concurrency model
//
// Run steps every node in parallel on a bounded worker pool
// (internal/pool; default runtime.GOMAXPROCS workers, SetWorkers to
// change). Each node owns an independent seeded machine.Server and its
// own sample accumulators, so parallel stepping is deterministic: for a
// fixed set of seeds, Snapshot and VerifyAccuracy return bit-for-bit the
// same values at any worker count, including 1 (the serial path). Node
// failures are aggregated — Run reports every failed node, in insertion
// order, instead of stopping at the first. RunContext adds cooperative
// cancellation: nodes stop at the next slice boundary and the partial
// samples folded so far remain valid. Run calls are serialized with each
// other; Snapshot, VerifyAccuracy and the per-node means may be called
// concurrently with a running Run and observe each node's last fully
// folded state.
//
// # Fault model
//
// A node that fails a run — its machine crashes, its stepping worker
// panics, or its logs stop aligning — is quarantined rather than
// aborting the whole run: its pre-failure samples are kept, its means
// return ErrNodeFailed, later runs skip it, and Snapshot/VerifyAccuracy
// report over the healthy survivors (Coverage says how much of the
// cluster that is). Cancellation is not a fault: a node stopped by ctx
// keeps running next time. SetRetry adds per-node retries with backoff
// before a failure is declared; InjectFaults wires a deterministic
// chaos plan (internal/faults) into every node for testing all of the
// above.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"trickledown/internal/align"
	"trickledown/internal/core"
	"trickledown/internal/faults"
	"trickledown/internal/machine"
	"trickledown/internal/pool"
	"trickledown/internal/stats"
	"trickledown/internal/telemetry"
	"trickledown/internal/tracez"
	"trickledown/internal/workload"
)

// Cluster telemetry: per-node stepping progress plus the cost of folding
// freshly sampled rows into the running means. RunContext itself is
// timed as the "cluster.run" span.
var (
	mNodeRuns = telemetry.NewCounter("cluster_node_runs_total",
		"individual node stepping tasks completed (one per node per Run)")
	mNodeSimSeconds = telemetry.NewFloatCounter("cluster_node_sim_seconds_total",
		"simulated seconds advanced, summed across nodes")
	mSamplesFolded = telemetry.NewCounter("cluster_samples_folded_total",
		"counter samples folded into node means")
	mFoldLatency = telemetry.NewHistogram("cluster_fold_seconds",
		"per-node fold latency (dataset merge to accumulated means)", nil)
	mNodeFailures = telemetry.NewCounter("cluster_nodes_quarantined_total",
		"nodes quarantined after a failed run (crash, panic or unalignable logs)")
	mNodePanics = telemetry.NewCounter("cluster_node_panics_recovered_total",
		"panics recovered while stepping a node, converted to quarantine")
	gQuarantined = telemetry.NewGauge("cluster_quarantined_nodes",
		"nodes currently quarantined")
)

// ErrNoSamples is returned when a node has not produced counter samples
// yet.
var ErrNoSamples = errors.New("cluster: node has no samples")

// ErrNodeFailed is wrapped by every error involving a quarantined node:
// its means, and a Snapshot taken after the whole cluster has failed.
var ErrNodeFailed = errors.New("cluster: node failed")

// Node is one managed server.
type Node struct {
	// Name identifies the node in plans and reports.
	Name string
	srv  *machine.Server
	// lastT is the counter timestamp of the last folded row. Folding by
	// timestamp (not row index) keeps resumed folds correct when the
	// robust merge later interpolates rows into an earlier gap.
	lastT float64

	// mu guards the fold accumulators below, so readers (Snapshot,
	// VerifyAccuracy) are safe against the worker currently folding this
	// node. The server itself is only ever touched by that one worker.
	mu sync.Mutex
	// estSum/measSum accumulate per-sample totals for means.
	estSum  float64
	measSum float64
	n       int
	// err, once set, marks the node quarantined; see quarantine.
	err     error
	quality align.Quality
}

// Cluster manages a set of nodes with one shared estimator (the paper's
// fit-once, deploy-everywhere economics).
type Cluster struct {
	est *core.Estimator

	mu    sync.Mutex // guards nodes, p, retry and plan
	nodes []*Node
	p     *pool.Pool
	retry pool.Retry
	plan  *faults.Plan

	runMu sync.Mutex // serializes Run calls; a Server is not reentrant
}

// New returns an empty cluster using the given fitted estimator, stepping
// nodes on a default-sized worker pool (see SetWorkers).
func New(est *core.Estimator) (*Cluster, error) {
	if est == nil {
		return nil, errors.New("cluster: nil estimator")
	}
	return &Cluster{est: est, p: pool.New(0)}, nil
}

// SetWorkers bounds how many nodes Run steps concurrently. Non-positive
// n restores the default, runtime.GOMAXPROCS. One worker reproduces the
// serial path exactly; any other count produces identical results (each
// node is an independent seeded simulation), just faster.
func (c *Cluster) SetWorkers(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.p = pool.New(n)
}

// Workers returns the current node-stepping concurrency bound.
func (c *Cluster) Workers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.p.Workers()
}

// SetRetry makes Run retry a failed node step (with pool's capped
// exponential backoff) before declaring the node failed. The zero Retry
// restores single-attempt stepping. Retries are safe: folding is
// idempotent (timestamp-guarded) and a genuinely crashed machine fails
// every attempt immediately.
func (c *Cluster) SetRetry(r pool.Retry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.retry = r
}

// InjectFaults wires the chaos plan into every current and future node
// (specs match nodes by name; see internal/faults). It returns how many
// existing nodes got an injector attached. A nil plan detaches nothing —
// injectors already attached keep running — so install the plan before
// the first Run. Intended for tests and chaos drills, not production
// estimation.
func (c *Cluster) InjectFaults(plan *faults.Plan) (int, error) {
	if plan == nil {
		return 0, errors.New("cluster: nil fault plan")
	}
	if err := plan.Validate(); err != nil {
		return 0, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.plan = plan
	attached := 0
	for _, n := range c.nodes {
		if faults.Attach(plan, n.Name, n.srv) {
			attached++
		}
	}
	return attached, nil
}

// AddHomogeneous adds a node running one workload on the default server
// configuration.
func (c *Cluster) AddHomogeneous(name, workloadName string, seed uint64) (*Node, error) {
	cfg := machine.DefaultConfig()
	cfg.Seed = seed
	spec, err := workload.ByName(workloadName)
	if err != nil {
		return nil, err
	}
	srv, err := machine.New(cfg, spec)
	if err != nil {
		return nil, err
	}
	return c.add(name, srv)
}

// AddMixed adds a node with heterogeneous placements.
func (c *Cluster) AddMixed(name string, seed uint64, placements []machine.Placement) (*Node, error) {
	cfg := machine.DefaultConfig()
	cfg.Seed = seed
	srv, err := machine.NewMixed(cfg, placements)
	if err != nil {
		return nil, err
	}
	return c.add(name, srv)
}

func (c *Cluster) add(name string, srv *machine.Server) (*Node, error) {
	if name == "" {
		return nil, errors.New("cluster: empty node name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range c.nodes {
		if n.Name == name {
			return nil, fmt.Errorf("cluster: duplicate node %q", name)
		}
	}
	if c.plan != nil {
		faults.Attach(c.plan, name, srv)
	}
	n := &Node{Name: name, srv: srv}
	c.nodes = append(c.nodes, n)
	return n, nil
}

// Nodes returns the managed nodes in insertion order.
func (c *Cluster) Nodes() []*Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Node(nil), c.nodes...)
}

// Run advances every node by the given simulated seconds and folds the
// new samples into the running means. Nodes are stepped in parallel on
// the cluster's worker pool; see the package comment for the determinism
// and error-aggregation guarantees.
func (c *Cluster) Run(seconds float64) error {
	return c.RunContext(context.Background(), seconds)
}

// RunContext is Run with cooperative cancellation. On cancellation the
// aggregate error includes ctx.Err(); nodes already stepped keep their
// folded samples (each node stops between slices, never mid-slice).
//
// A node whose step fails for any reason other than cancellation —
// machine crash, worker panic (recovered into a *pool.PanicError),
// unalignable logs — is quarantined after the configured retries: the
// returned error reports it (wrapping ErrNodeFailed and the cause), but
// every healthy node still completes its step, and later calls skip the
// quarantined node instead of failing again.
func (c *Cluster) RunContext(ctx context.Context, seconds float64) error {
	c.runMu.Lock()
	defer c.runMu.Unlock()
	defer telemetry.StartSpan("cluster.run").End()
	c.mu.Lock()
	nodes := append([]*Node(nil), c.nodes...)
	p, retry := c.p, c.retry
	c.mu.Unlock()
	// Cluster runs are low-volume (one per simulated interval), so every
	// run gets a trace on the process recorder unconditionally: chaos
	// drills read the quarantine timeline from /debug/tracez instead of
	// correlating log lines.
	rec := tracez.Default()
	tr := rec.StartAt(tracez.NewTraceID(), "cluster", "", time.Now())
	tr.Add(tracez.EvAdmitted, int64(len(nodes)))
	// final[i] is node i's last-attempt error; slots are written by the
	// stepping worker and read only after the pool drains.
	final := make([]error, len(nodes))
	poolErr := p.RunRetry(ctx, len(nodes), retry, func(ctx context.Context, i int) error {
		if nodes[i].Err() != nil {
			return nil // quarantined by an earlier run
		}
		final[i] = nodes[i].step(ctx, c.est, seconds)
		return final[i]
	})
	if ctx.Err() != nil {
		// Cancellation is not a node fault: report it, quarantine nothing.
		tr.Outcome = "cancelled"
		rec.Finish(tr)
		return poolErr
	}
	var failures []error
	for i, err := range final {
		if err == nil {
			continue
		}
		nodes[i].quarantine(err)
		tr.AddNote(tracez.EvQuarantine, int64(i), nodes[i].Name)
		failures = append(failures, fmt.Errorf("cluster: node %s: %w: %w", nodes[i].Name, ErrNodeFailed, err))
	}
	if len(failures) > 0 {
		tr.Outcome = "quarantine"
	}
	tr.Add(tracez.EvDeparted, int64(len(nodes)-len(failures)))
	rec.Finish(tr)
	return errors.Join(failures...)
}

// step advances one node and folds its fresh samples, converting a
// panic anywhere underneath (machine, DAQ, fold) into an error so one
// poisoned node cannot take down the whole run.
func (n *Node) step(ctx context.Context, est *core.Estimator, seconds float64) (err error) {
	defer func() {
		if v := recover(); v != nil {
			mNodePanics.Inc()
			err = pool.NewPanicError(v)
		}
	}()
	runErr := n.srv.RunContext(ctx, seconds)
	// Fold whatever was sampled even on a cancelled or crashed (partial)
	// run, through the robust merge so a degraded sensor chain yields a
	// repaired trace plus a Quality report instead of an abort.
	foldStart := time.Now()
	ds, quality, dsErr := n.srv.DatasetRobust()
	if dsErr == nil {
		n.fold(est, ds, quality)
		mFoldLatency.Observe(time.Since(foldStart).Seconds())
	}
	mNodeRuns.Inc()
	mNodeSimSeconds.Add(seconds)
	if runErr != nil {
		return runErr
	}
	return dsErr
}

// fold accumulates the node's not-yet-seen samples into its running
// means. Only the worker stepping the node calls it (Run calls are
// serialized), so n.lastT and the dataset walk need no lock; the lock
// protects the accumulators against concurrent mean readers.
func (n *Node) fold(est *core.Estimator, ds *align.Dataset, quality align.Quality) {
	var estSum, measSum float64
	added := 0
	for i := range ds.Rows {
		row := &ds.Rows[i]
		if row.Counters.TargetSeconds <= n.lastT {
			continue
		}
		n.lastT = row.Counters.TargetSeconds
		estSum += est.Estimate(&row.Counters).Total()
		measSum += row.Power.Total()
		added++
	}
	n.mu.Lock()
	n.estSum += estSum
	n.measSum += measSum
	n.n += added
	n.quality = quality
	n.mu.Unlock()
	mSamplesFolded.Add(uint64(added))
}

// quarantine marks the node failed. First cause wins; the samples
// folded before the failure stay readable through Quality/Coverage but
// the means start returning ErrNodeFailed.
func (n *Node) quarantine(cause error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.err != nil {
		return
	}
	n.err = cause
	mNodeFailures.Inc()
	gQuarantined.Add(1)
}

// Err returns nil for a healthy node, or the failure that quarantined
// it.
func (n *Node) Err() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.err
}

// Quality returns the data-quality summary from the node's most recent
// fold — how much repair the robust merge performed on its logs.
func (n *Node) Quality() align.Quality {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.quality
}

// EstimatedMean returns the node's counter-estimated average total
// power. A quarantined node returns an error wrapping ErrNodeFailed and
// the failure cause.
func (n *Node) EstimatedMean() (float64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.err != nil {
		return 0, fmt.Errorf("%w: %s: %w", ErrNodeFailed, n.Name, n.err)
	}
	if n.n == 0 {
		return 0, ErrNoSamples
	}
	return n.estSum / float64(n.n), nil
}

// MeasuredMean returns the node's measured average total power — ground
// truth the manager itself never uses. Quarantined nodes fail like
// EstimatedMean.
func (n *Node) MeasuredMean() (float64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.err != nil {
		return 0, fmt.Errorf("%w: %s: %w", ErrNodeFailed, n.Name, n.err)
	}
	if n.n == 0 {
		return 0, ErrNoSamples
	}
	return n.measSum / float64(n.n), nil
}

// Estimate is one node's reading in a cluster snapshot.
type Estimate struct {
	Name  string
	Watts float64
}

// Snapshot returns the per-node estimated means plus the cluster total,
// in node insertion order regardless of how the underlying runs were
// scheduled. Quarantined nodes are skipped — their draw is unknown, not
// zero; use Coverage to see how much of the cluster the total covers. A
// healthy node without samples is still an error (ErrNoSamples), and a
// cluster with every node quarantined fails with ErrNodeFailed.
func (c *Cluster) Snapshot() ([]Estimate, float64, error) {
	nodes := c.Nodes()
	out := make([]Estimate, 0, len(nodes))
	total := 0.0
	for _, n := range nodes {
		if n.Err() != nil {
			continue
		}
		w, err := n.EstimatedMean()
		if err != nil {
			return nil, 0, fmt.Errorf("cluster: node %s: %w", n.Name, err)
		}
		out = append(out, Estimate{Name: n.Name, Watts: w})
		total += w
	}
	if len(out) == 0 && len(nodes) > 0 {
		return nil, 0, fmt.Errorf("%w: all %d nodes quarantined", ErrNodeFailed, len(nodes))
	}
	return out, total, nil
}

// Coverage describes how much of the cluster the sensorless estimates
// currently cover.
type Coverage struct {
	// Total is the number of managed nodes.
	Total int
	// Healthy nodes contribute to Snapshot and VerifyAccuracy.
	Healthy int
	// Quarantined lists failed nodes in insertion order.
	Quarantined []string
	// Degraded lists healthy nodes whose latest fold needed repair
	// (interpolated or dropped windows; see align.Quality).
	Degraded []string
}

// Full reports complete, clean coverage: every node healthy, no node
// running on repaired data.
func (cov Coverage) Full() bool {
	return len(cov.Quarantined) == 0 && len(cov.Degraded) == 0
}

// Coverage reports the cluster's current degradation state.
func (c *Cluster) Coverage() Coverage {
	cov := Coverage{}
	for _, n := range c.Nodes() {
		cov.Total++
		if n.Err() != nil {
			cov.Quarantined = append(cov.Quarantined, n.Name)
			continue
		}
		cov.Healthy++
		if n.Quality().Degraded() {
			cov.Degraded = append(cov.Degraded, n.Name)
		}
	}
	return cov
}

// Quarantined returns the names of failed nodes in insertion order.
func (c *Cluster) Quarantined() []string {
	return c.Coverage().Quarantined
}

// Plan is a consolidation decision: evict the named nodes (largest
// consumers first) so the projected draw fits the budget.
type Plan struct {
	// Evict lists nodes to consolidate away, in eviction order.
	Evict []string
	// Projected is the estimated draw after eviction.
	Projected float64
	// Fits reports whether the budget is reachable at all.
	Fits bool
}

// PlanConsolidation picks nodes to power down until the estimated total
// fits the budget. It evicts the largest consumers first, so the budget
// is reached with the fewest powered-down nodes (each eviction is a
// workload migration; fewer migrations is the cheaper plan). It never
// plans away the last node. Ties break toward the earlier estimate, so
// the plan is deterministic for a fixed input order.
func PlanConsolidation(estimates []Estimate, budgetWatts float64) Plan {
	total := 0.0
	for _, e := range estimates {
		total += e.Watts
	}
	plan := Plan{Projected: total}
	if total <= budgetWatts {
		plan.Fits = true
		return plan
	}
	sorted := append([]Estimate(nil), estimates...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Watts > sorted[j].Watts })
	for _, e := range sorted {
		if plan.Projected <= budgetWatts || len(plan.Evict) == len(estimates)-1 {
			break
		}
		plan.Evict = append(plan.Evict, e.Name)
		plan.Projected -= e.Watts
	}
	plan.Fits = plan.Projected <= budgetWatts
	return plan
}

// VerifyAccuracy returns the Equation 6 style relative error between the
// cluster's estimated and measured mean totals — the check an operator
// would run once before trusting the sensorless readings. Quarantined
// nodes are excluded like in Snapshot; the error covers the surviving
// coverage only.
func (c *Cluster) VerifyAccuracy() (float64, error) {
	nodes := c.Nodes()
	var est, meas []float64
	for _, n := range nodes {
		if n.Err() != nil {
			continue
		}
		e, err := n.EstimatedMean()
		if err != nil {
			return 0, err
		}
		m, err := n.MeasuredMean()
		if err != nil {
			return 0, err
		}
		est = append(est, e)
		meas = append(meas, m)
	}
	if len(est) == 0 && len(nodes) > 0 {
		return 0, fmt.Errorf("%w: all %d nodes quarantined", ErrNodeFailed, len(nodes))
	}
	return stats.AverageError(est, meas)
}
