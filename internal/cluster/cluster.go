// Package cluster provides the ensemble-management layer the paper
// motivates ("in data and computing centers, this can be a valuable tool
// for keeping the center within temperature and power limits"): a set of
// simulated nodes observed purely through the trickle-down estimator,
// with budget checking and a consolidation planner in the spirit of the
// Rajamani/Chen node-power-down studies the paper cites.
//
// The manager never reads a node's measured rails; they remain available
// (Node.MeasuredMean) only so callers can verify decisions the way the
// paper verifies its models.
package cluster

import (
	"errors"
	"fmt"
	"sort"

	"trickledown/internal/core"
	"trickledown/internal/machine"
	"trickledown/internal/stats"
	"trickledown/internal/workload"
)

// ErrNoSamples is returned when a node has not produced counter samples
// yet.
var ErrNoSamples = errors.New("cluster: node has no samples")

// Node is one managed server.
type Node struct {
	// Name identifies the node in plans and reports.
	Name string
	srv  *machine.Server
	seen int
	// estSum/measSum accumulate per-sample totals for means.
	estSum  float64
	measSum float64
	n       int
}

// Cluster manages a set of nodes with one shared estimator (the paper's
// fit-once, deploy-everywhere economics).
type Cluster struct {
	est   *core.Estimator
	nodes []*Node
}

// New returns an empty cluster using the given fitted estimator.
func New(est *core.Estimator) (*Cluster, error) {
	if est == nil {
		return nil, errors.New("cluster: nil estimator")
	}
	return &Cluster{est: est}, nil
}

// AddHomogeneous adds a node running one workload on the default server
// configuration.
func (c *Cluster) AddHomogeneous(name, workloadName string, seed uint64) (*Node, error) {
	cfg := machine.DefaultConfig()
	cfg.Seed = seed
	spec, err := workload.ByName(workloadName)
	if err != nil {
		return nil, err
	}
	srv, err := machine.New(cfg, spec)
	if err != nil {
		return nil, err
	}
	return c.add(name, srv)
}

// AddMixed adds a node with heterogeneous placements.
func (c *Cluster) AddMixed(name string, seed uint64, placements []machine.Placement) (*Node, error) {
	cfg := machine.DefaultConfig()
	cfg.Seed = seed
	srv, err := machine.NewMixed(cfg, placements)
	if err != nil {
		return nil, err
	}
	return c.add(name, srv)
}

func (c *Cluster) add(name string, srv *machine.Server) (*Node, error) {
	if name == "" {
		return nil, errors.New("cluster: empty node name")
	}
	for _, n := range c.nodes {
		if n.Name == name {
			return nil, fmt.Errorf("cluster: duplicate node %q", name)
		}
	}
	n := &Node{Name: name, srv: srv}
	c.nodes = append(c.nodes, n)
	return n, nil
}

// Nodes returns the managed nodes in insertion order.
func (c *Cluster) Nodes() []*Node {
	return append([]*Node(nil), c.nodes...)
}

// Run advances every node by the given simulated seconds and folds the
// new samples into the running means.
func (c *Cluster) Run(seconds float64) error {
	for _, n := range c.nodes {
		n.srv.Run(seconds)
		ds, err := n.srv.Dataset()
		if err != nil {
			return fmt.Errorf("cluster: node %s: %w", n.Name, err)
		}
		for ; n.seen < ds.Len(); n.seen++ {
			row := &ds.Rows[n.seen]
			n.estSum += c.est.Estimate(&row.Counters).Total()
			n.measSum += row.Power.Total()
			n.n++
		}
	}
	return nil
}

// EstimatedMean returns the node's counter-estimated average total power.
func (n *Node) EstimatedMean() (float64, error) {
	if n.n == 0 {
		return 0, ErrNoSamples
	}
	return n.estSum / float64(n.n), nil
}

// MeasuredMean returns the node's measured average total power — ground
// truth the manager itself never uses.
func (n *Node) MeasuredMean() (float64, error) {
	if n.n == 0 {
		return 0, ErrNoSamples
	}
	return n.measSum / float64(n.n), nil
}

// Estimate is one node's reading in a cluster snapshot.
type Estimate struct {
	Name  string
	Watts float64
}

// Snapshot returns the per-node estimated means plus the cluster total.
func (c *Cluster) Snapshot() ([]Estimate, float64, error) {
	out := make([]Estimate, 0, len(c.nodes))
	total := 0.0
	for _, n := range c.nodes {
		w, err := n.EstimatedMean()
		if err != nil {
			return nil, 0, fmt.Errorf("cluster: node %s: %w", n.Name, err)
		}
		out = append(out, Estimate{Name: n.Name, Watts: w})
		total += w
	}
	return out, total, nil
}

// Plan is a consolidation decision: evict the named nodes (cheapest
// first) so the projected draw fits the budget.
type Plan struct {
	// Evict lists nodes to consolidate away, in eviction order.
	Evict []string
	// Projected is the estimated draw after eviction.
	Projected float64
	// Fits reports whether the budget is reachable at all.
	Fits bool
}

// PlanConsolidation picks the cheapest nodes to power down until the
// estimated total fits the budget. It never plans away the last node.
func PlanConsolidation(estimates []Estimate, budgetWatts float64) Plan {
	total := 0.0
	for _, e := range estimates {
		total += e.Watts
	}
	plan := Plan{Projected: total}
	if total <= budgetWatts {
		plan.Fits = true
		return plan
	}
	sorted := append([]Estimate(nil), estimates...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Watts < sorted[j].Watts })
	for _, e := range sorted {
		if plan.Projected <= budgetWatts || len(plan.Evict) == len(estimates)-1 {
			break
		}
		plan.Evict = append(plan.Evict, e.Name)
		plan.Projected -= e.Watts
	}
	plan.Fits = plan.Projected <= budgetWatts
	return plan
}

// VerifyAccuracy returns the Equation 6 style relative error between the
// cluster's estimated and measured mean totals — the check an operator
// would run once before trusting the sensorless readings.
func (c *Cluster) VerifyAccuracy() (float64, error) {
	var est, meas []float64
	for _, n := range c.nodes {
		e, err := n.EstimatedMean()
		if err != nil {
			return 0, err
		}
		m, err := n.MeasuredMean()
		if err != nil {
			return 0, err
		}
		est = append(est, e)
		meas = append(meas, m)
	}
	return stats.AverageError(est, meas)
}
