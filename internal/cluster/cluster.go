// Package cluster provides the ensemble-management layer the paper
// motivates ("in data and computing centers, this can be a valuable tool
// for keeping the center within temperature and power limits"): a set of
// simulated nodes observed purely through the trickle-down estimator,
// with budget checking and a consolidation planner in the spirit of the
// Rajamani/Chen node-power-down studies the paper cites.
//
// The manager never reads a node's measured rails; they remain available
// (Node.MeasuredMean) only so callers can verify decisions the way the
// paper verifies its models.
//
// # Concurrency model
//
// Run steps nodes in parallel on a bounded worker pool (internal/pool;
// default runtime.GOMAXPROCS workers, SetWorkers to change). The fleet
// is partitioned into contiguous shards — several nodes per pool task —
// so coordination cost per run is O(shards), not O(nodes): at 10,000
// nodes a run dispatches a few dozen pool tasks instead of ten thousand,
// and per-node telemetry is folded into per-shard accumulators merged
// deterministically in shard order. Each node owns an independent seeded
// machine.Server and its own sample accumulators, so parallel stepping
// is deterministic: for a fixed set of seeds, Snapshot and
// VerifyAccuracy return bit-for-bit the same values at any worker count
// (and therefore any shard count), including 1 (the serial path). Node
// failures are aggregated — Run reports every failed node, in insertion
// order, instead of stopping at the first. RunContext adds cooperative
// cancellation: nodes stop at the next slice boundary and the partial
// samples folded so far remain valid. Run calls are serialized with each
// other; Snapshot, VerifyAccuracy and the per-node means may be called
// concurrently with a running Run and observe each node's last fully
// folded state. SetWorkers may also be called during a run: the new
// bound takes effect at the start of the next run, never mid-run.
//
// # Fault model
//
// A node that fails a run — its machine crashes, its stepping worker
// panics, or its logs stop aligning — is quarantined rather than
// aborting the whole run: its pre-failure samples are kept, its means
// return ErrNodeFailed, later runs skip it, and Snapshot/VerifyAccuracy
// report over the healthy survivors (Coverage says how much of the
// cluster that is). Cancellation is not a fault: a node stopped by ctx
// keeps running next time. SetRetry adds per-node retries with backoff
// before a failure is declared; InjectFaults wires a deterministic
// chaos plan (internal/faults) into every node for testing all of the
// above.
//
// Distinct from quarantine, SetPowered administratively powers a node
// down (a scheduler consolidation decision, internal/sched): the node
// stops being stepped and stops contributing to Snapshot, but it is
// healthy and can be powered back on.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"trickledown/internal/align"
	"trickledown/internal/core"
	"trickledown/internal/faults"
	"trickledown/internal/machine"
	"trickledown/internal/pool"
	"trickledown/internal/stats"
	"trickledown/internal/telemetry"
	"trickledown/internal/tracez"
	"trickledown/internal/workload"
)

// Cluster telemetry: per-node stepping progress plus the cost of folding
// freshly sampled rows into the running means. RunContext itself is
// timed as the "cluster.run" span. Counters are batched per shard, not
// per node, so a 10k-node fleet does not pay 10k atomic increments per
// metric per run.
var (
	mNodeRuns = telemetry.NewCounter("cluster_node_runs_total",
		"individual node stepping tasks completed (one per node per Run)")
	mNodeSimSeconds = telemetry.NewFloatCounter("cluster_node_sim_seconds_total",
		"simulated seconds advanced, summed across nodes")
	mSamplesFolded = telemetry.NewCounter("cluster_samples_folded_total",
		"counter samples folded into node means")
	mFoldLatency = telemetry.NewHistogram("cluster_fold_seconds",
		"per-node fold latency (dataset merge to accumulated means)", nil)
	mNodeFailures = telemetry.NewCounter("cluster_nodes_quarantined_total",
		"nodes quarantined after a failed run (crash, panic or unalignable logs)")
	mNodePanics = telemetry.NewCounter("cluster_node_panics_recovered_total",
		"panics recovered while stepping a node, converted to quarantine")
	mNodeRetries = telemetry.NewCounter("cluster_node_step_retries_total",
		"node step re-executions after a failed attempt")
	mShardRuns = telemetry.NewCounter("cluster_shard_runs_total",
		"shard stepping tasks completed (several nodes per task)")
	gQuarantined = telemetry.NewGauge("cluster_quarantined_nodes",
		"nodes currently quarantined")
	gPoweredOff = telemetry.NewGauge("cluster_powered_off_nodes",
		"nodes administratively powered down by a scheduler decision")
)

// ErrNoSamples is returned when a node has not produced counter samples
// yet.
var ErrNoSamples = errors.New("cluster: node has no samples")

// ErrNodeFailed is wrapped by every error involving a quarantined node:
// its means, and a Snapshot taken after the whole cluster has failed.
var ErrNodeFailed = errors.New("cluster: node failed")

// ErrUnknownNode is returned by name-keyed operations (SetPowered) for a
// name the cluster does not manage.
var ErrUnknownNode = errors.New("cluster: unknown node")

// Node is one managed server.
type Node struct {
	// Name identifies the node in plans and reports.
	Name string
	srv  *machine.Server
	// lastT is the counter timestamp of the last folded row. Folding by
	// timestamp (not row index) keeps resumed folds correct when the
	// robust merge later interpolates rows into an earlier gap.
	lastT float64

	// mu guards the fold accumulators below, so readers (Snapshot,
	// VerifyAccuracy) are safe against the worker currently folding this
	// node. The server itself is only ever touched by that one worker.
	mu sync.Mutex
	// estSum/measSum accumulate per-sample totals for means.
	estSum  float64
	measSum float64
	n       int
	// winSum/winN hold only the rows folded by the most recent Run —
	// the per-interval windowed reading a closed-loop scheduler steers
	// by, where the cumulative mean would smear a diurnal cycle flat.
	winSum float64
	winN   int
	// err, once set, marks the node quarantined; see quarantine.
	err     error
	quality align.Quality
	// off marks the node administratively powered down (SetPowered):
	// healthy, not stepped, not contributing to snapshots.
	off bool
}

// Cluster manages a set of nodes with one shared estimator (the paper's
// fit-once, deploy-everywhere economics).
type Cluster struct {
	est *core.Estimator

	mu     sync.Mutex // guards nodes, byName, workers, retry and plan
	nodes  []*Node    // insertion order; append-only
	byName map[string]int
	// view is the published read-only snapshot of nodes: a slice header
	// over the same append-only backing array, so readers (Run, Snapshot,
	// Coverage) iterate the fleet without taking mu or copying 10k
	// pointers per call. Appending only ever writes past every published
	// view's length, which keeps lock-free readers safe.
	view    atomic.Pointer[[]*Node]
	workers int // desired stepping concurrency; applied at next run
	retry   pool.Retry
	plan    *faults.Plan

	runMu sync.Mutex // serializes Run calls; a Server is not reentrant
	// p is the stepping pool, owned by the run path: SetWorkers only
	// records the desired bound, and the pool is (re)built here at the
	// start of the next run — a mid-run SetWorkers can never swap the
	// pool out from under in-flight shard tasks.
	p *pool.Pool
	// stepErrs is the per-node last-attempt error scratch, reused across
	// runs so a per-interval scheduler loop does not allocate O(nodes)
	// every tick.
	stepErrs []error
	shards   []shardAcc
}

// New returns an empty cluster using the given fitted estimator, stepping
// nodes on a default-sized worker pool (see SetWorkers).
func New(est *core.Estimator) (*Cluster, error) {
	if est == nil {
		return nil, errors.New("cluster: nil estimator")
	}
	c := &Cluster{
		est:     est,
		byName:  make(map[string]int),
		workers: runtime.GOMAXPROCS(0),
	}
	empty := []*Node(nil)
	c.view.Store(&empty)
	return c, nil
}

// SetWorkers bounds how many shard tasks Run executes concurrently.
// Non-positive n restores the default, runtime.GOMAXPROCS. One worker
// reproduces the serial path exactly; any other count produces identical
// results (each node is an independent seeded simulation), just faster.
// Calling it during a run is safe: the running run keeps its pool and
// the new bound takes effect when the next run starts.
func (c *Cluster) SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workers = n
}

// Workers returns the current node-stepping concurrency bound.
func (c *Cluster) Workers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.workers
}

// SetRetry makes Run retry a failed node step (with pool's capped
// exponential backoff) before declaring the node failed. The zero Retry
// restores single-attempt stepping. Retries are safe: folding is
// idempotent (timestamp-guarded) and a genuinely crashed machine fails
// every attempt immediately.
func (c *Cluster) SetRetry(r pool.Retry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.retry = r
}

// InjectFaults wires the chaos plan into every current and future node
// (specs match nodes by name; see internal/faults). It returns how many
// existing nodes got an injector attached. A nil plan detaches nothing —
// injectors already attached keep running — so install the plan before
// the first Run. Intended for tests and chaos drills, not production
// estimation.
func (c *Cluster) InjectFaults(plan *faults.Plan) (int, error) {
	if plan == nil {
		return 0, errors.New("cluster: nil fault plan")
	}
	if err := plan.Validate(); err != nil {
		return 0, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.plan = plan
	attached := 0
	for _, n := range c.nodes {
		if faults.Attach(plan, n.Name, n.srv) {
			attached++
		}
	}
	return attached, nil
}

// AddHomogeneous adds a node running one workload on the default server
// configuration.
func (c *Cluster) AddHomogeneous(name, workloadName string, seed uint64) (*Node, error) {
	cfg := machine.DefaultConfig()
	cfg.Seed = seed
	return c.AddHomogeneousConfig(name, workloadName, cfg)
}

// AddHomogeneousConfig adds a node running one workload on an explicit
// hardware configuration — the heterogeneous-fleet path (mixed chipset
// and CPU-count generations in one cluster).
func (c *Cluster) AddHomogeneousConfig(name, workloadName string, cfg machine.Config) (*Node, error) {
	spec, err := workload.ByName(workloadName)
	if err != nil {
		return nil, err
	}
	srv, err := machine.New(cfg, spec)
	if err != nil {
		return nil, err
	}
	return c.add(name, srv)
}

// AddMixed adds a node with heterogeneous placements.
func (c *Cluster) AddMixed(name string, seed uint64, placements []machine.Placement) (*Node, error) {
	cfg := machine.DefaultConfig()
	cfg.Seed = seed
	return c.AddMixedConfig(name, cfg, placements)
}

// AddMixedConfig is AddMixed with an explicit hardware configuration.
func (c *Cluster) AddMixedConfig(name string, cfg machine.Config, placements []machine.Placement) (*Node, error) {
	srv, err := machine.NewMixed(cfg, placements)
	if err != nil {
		return nil, err
	}
	return c.add(name, srv)
}

func (c *Cluster) add(name string, srv *machine.Server) (*Node, error) {
	if name == "" {
		return nil, errors.New("cluster: empty node name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// The name index makes duplicate detection O(1); the old linear scan
	// made building a 10k-node fleet O(n²) in string compares.
	if _, dup := c.byName[name]; dup {
		return nil, fmt.Errorf("cluster: duplicate node %q", name)
	}
	if c.plan != nil {
		faults.Attach(c.plan, name, srv)
	}
	n := &Node{Name: name, srv: srv}
	c.byName[name] = len(c.nodes)
	c.nodes = append(c.nodes, n)
	v := c.nodes
	c.view.Store(&v)
	return n, nil
}

// nodesView returns the current fleet in insertion order without copying
// or locking — the internal iteration path. Callers must not mutate it.
func (c *Cluster) nodesView() []*Node { return *c.view.Load() }

// Nodes returns the managed nodes in insertion order. The slice is a
// fresh copy the caller may keep; hot paths iterating every interval
// should use NumNodes/Lookup or the streaming Snapshot APIs instead.
func (c *Cluster) Nodes() []*Node {
	return append([]*Node(nil), c.nodesView()...)
}

// NumNodes returns the managed node count without allocating.
func (c *Cluster) NumNodes() int { return len(c.nodesView()) }

// Lookup returns the named node, or false. It is O(1): per-interval
// control loops resolve names against a 10k-node fleet without scans.
func (c *Cluster) Lookup(name string) (*Node, bool) {
	c.mu.Lock()
	i, ok := c.byName[name]
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	return c.nodesView()[i], true
}

// SetPowered administratively powers the named node down (on=false) or
// back up (on=true) — the actuation path for a scheduler's consolidation
// decisions (internal/sched). A powered-down node is healthy: it is
// skipped by Run (its simulation freezes, costing nothing) and excluded
// from Snapshot/VerifyAccuracy, but keeps its folded history and resumes
// when powered back on. Quarantine is independent and dominant: powering
// a quarantined node "on" does not resurrect it.
func (c *Cluster) SetPowered(name string, on bool) error {
	n, ok := c.Lookup(name)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, name)
	}
	n.mu.Lock()
	changed := n.off == on
	n.off = !on
	n.mu.Unlock()
	if changed {
		if on {
			gPoweredOff.Add(-1)
		} else {
			gPoweredOff.Add(1)
		}
	}
	return nil
}

// Powered reports whether the node is administratively powered on. A
// quarantined node may still report true; quarantine is tracked by Err.
func (n *Node) Powered() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return !n.off
}

// skipRun reports whether Run should leave this node alone, reading the
// quarantine and power state under one lock acquisition.
func (n *Node) skipRun() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.err != nil || n.off
}

// Run advances every node by the given simulated seconds and folds the
// new samples into the running means. Nodes are stepped in parallel on
// the cluster's worker pool; see the package comment for the determinism
// and error-aggregation guarantees.
func (c *Cluster) Run(seconds float64) error {
	return c.RunContext(context.Background(), seconds)
}

// shardAcc is one shard's fold accumulator: per-node telemetry batched
// over the shard's node range, merged in shard order after the pool
// drains. Failed node indices land in the shared per-node error scratch,
// which keeps failure reporting in insertion order no matter how shards
// were scheduled.
type shardAcc struct {
	lo, hi     int
	runs       uint64
	samples    uint64
	simSeconds float64
	failed     int
}

// shardsPerWorker oversubscribes shards relative to workers so one
// expensive shard (heterogeneous nodes are not equally costly) does not
// leave the other workers idle at the end of a run.
const shardsPerWorker = 4

// planShards partitions n nodes into contiguous balanced shards. Shard
// boundaries affect scheduling only, never results: folds are per-node
// and accumulators are merged in shard index order.
func planShards(acc []shardAcc, n, workers int) []shardAcc {
	count := workers * shardsPerWorker
	if count > n {
		count = n
	}
	if count < 1 {
		count = 1
	}
	acc = acc[:0]
	base, rem := n/count, n%count
	lo := 0
	for s := 0; s < count; s++ {
		size := base
		if s < rem {
			size++
		}
		acc = append(acc, shardAcc{lo: lo, hi: lo + size})
		lo += size
	}
	return acc
}

// RunContext is Run with cooperative cancellation. On cancellation the
// aggregate error includes ctx.Err(); nodes already stepped keep their
// folded samples (each node stops between slices, never mid-slice).
//
// A node whose step fails for any reason other than cancellation —
// machine crash, worker panic (recovered into a *pool.PanicError),
// unalignable logs — is quarantined after the configured retries: the
// returned error reports it (wrapping ErrNodeFailed and the cause), but
// every healthy node still completes its step, and later calls skip the
// quarantined node instead of failing again.
func (c *Cluster) RunContext(ctx context.Context, seconds float64) error {
	c.runMu.Lock()
	defer c.runMu.Unlock()
	defer telemetry.StartSpan("cluster.run").End()
	nodes := c.nodesView()
	c.mu.Lock()
	retry := c.retry
	workers := c.workers
	c.mu.Unlock()
	// The pool is rebuilt here, between runs, when SetWorkers changed the
	// bound — never mid-run.
	if c.p == nil || c.p.Workers() != workers {
		c.p = pool.New(workers)
	}
	n := len(nodes)
	// Cluster runs are low-volume (one per simulated interval), so every
	// run gets a trace on the process recorder unconditionally: chaos
	// drills read the quarantine timeline from /debug/tracez instead of
	// correlating log lines.
	rec := tracez.Default()
	tr := rec.StartAt(tracez.NewTraceID(), "cluster", "", time.Now())
	tr.Add(tracez.EvAdmitted, int64(n))
	// final[i] is node i's last-attempt error; slots are written by the
	// shard owning node i and read only after the pool drains. The
	// scratch is reused across runs.
	if cap(c.stepErrs) < n {
		c.stepErrs = make([]error, n)
	}
	final := c.stepErrs[:n]
	for i := range final {
		final[i] = nil
	}
	c.shards = planShards(c.shards, n, workers)
	shards := c.shards
	poolErr := c.p.Run(ctx, len(shards), func(ctx context.Context, s int) error {
		acc := &shards[s]
		for i := acc.lo; i < acc.hi; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			node := nodes[i]
			if node.skipRun() {
				continue // quarantined by an earlier run, or powered down
			}
			added, err := node.stepRetry(ctx, c.est, seconds, retry)
			acc.runs++
			acc.samples += uint64(added)
			acc.simSeconds += seconds
			if err != nil {
				final[i] = err
				acc.failed++
			}
		}
		return nil
	})
	// Merge the shard accumulators deterministically in shard index
	// order; the totals are independent of scheduling.
	var runs, samples uint64
	var simSeconds float64
	for s := range shards {
		runs += shards[s].runs
		samples += shards[s].samples
		simSeconds += shards[s].simSeconds
	}
	mShardRuns.Add(uint64(len(shards)))
	mNodeRuns.Add(runs)
	mSamplesFolded.Add(samples)
	mNodeSimSeconds.Add(simSeconds)
	if ctx.Err() != nil {
		// Cancellation is not a node fault: report it, quarantine nothing.
		tr.Outcome = "cancelled"
		rec.Finish(tr)
		return poolErr
	}
	var failures []error
	for i, err := range final {
		if err == nil {
			continue
		}
		nodes[i].quarantine(err)
		tr.AddNote(tracez.EvQuarantine, int64(i), nodes[i].Name)
		failures = append(failures, fmt.Errorf("cluster: node %s: %w: %w", nodes[i].Name, ErrNodeFailed, err))
	}
	if len(failures) > 0 {
		tr.Outcome = "quarantine"
	}
	tr.Add(tracez.EvDeparted, int64(n-len(failures)))
	rec.Finish(tr)
	return errors.Join(failures...)
}

// stepRetry runs one node's step under the per-node retry policy. The
// retry loop lives here (not in the pool) because the pool's unit of
// work is now a whole shard: retrying a shard would re-step healthy
// nodes, while retrying the node alone keeps the old semantics exactly.
func (n *Node) stepRetry(ctx context.Context, est *core.Estimator, seconds float64, r pool.Retry) (int, error) {
	attempts := r.Attempts
	if attempts < 1 {
		attempts = 1
	}
	total := 0
	for attempt := 1; ; attempt++ {
		added, err := n.step(ctx, est, seconds)
		total += added
		if err == nil || attempt >= attempts {
			return total, err
		}
		mNodeRetries.Inc()
		if wait := r.Backoff(attempt); wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				t.Stop()
				return total, errors.Join(err, ctx.Err())
			case <-t.C:
			}
		} else if ctx.Err() != nil {
			return total, errors.Join(err, ctx.Err())
		}
	}
}

// step advances one node and folds its fresh samples, converting a
// panic anywhere underneath (machine, DAQ, fold) into an error so one
// poisoned node cannot take down the whole run. It returns how many new
// samples were folded.
func (n *Node) step(ctx context.Context, est *core.Estimator, seconds float64) (added int, err error) {
	defer func() {
		if v := recover(); v != nil {
			mNodePanics.Inc()
			err = pool.NewPanicError(v)
		}
	}()
	runErr := n.srv.RunContext(ctx, seconds)
	// Fold whatever was sampled even on a cancelled or crashed (partial)
	// run, through the robust merge so a degraded sensor chain yields a
	// repaired trace plus a Quality report instead of an abort.
	foldStart := time.Now()
	ds, quality, dsErr := n.srv.DatasetRobust()
	if dsErr == nil {
		added = n.fold(est, ds, quality)
		mFoldLatency.Observe(time.Since(foldStart).Seconds())
	}
	if runErr != nil {
		return added, runErr
	}
	return added, dsErr
}

// fold accumulates the node's not-yet-seen samples into its running
// means and returns how many rows were new. Only the worker stepping the
// node calls it (Run calls are serialized), so n.lastT and the dataset
// walk need no lock; the lock protects the accumulators against
// concurrent mean readers.
func (n *Node) fold(est *core.Estimator, ds *align.Dataset, quality align.Quality) int {
	var estSum, measSum float64
	added := 0
	for i := range ds.Rows {
		row := &ds.Rows[i]
		if row.Counters.TargetSeconds <= n.lastT {
			continue
		}
		n.lastT = row.Counters.TargetSeconds
		estSum += est.Estimate(&row.Counters).Total()
		measSum += row.Power.Total()
		added++
	}
	n.mu.Lock()
	n.estSum += estSum
	n.measSum += measSum
	n.n += added
	if added > 0 {
		n.winSum = estSum
		n.winN = added
	}
	n.quality = quality
	n.mu.Unlock()
	return added
}

// WindowMean returns the node's estimated average total power over the
// rows folded by the most recent Run that produced samples — the
// per-interval signal for closed-loop scheduling. Quarantined nodes
// fail like EstimatedMean; a node that has never folded samples returns
// ErrNoSamples.
func (n *Node) WindowMean() (float64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.err != nil {
		return 0, fmt.Errorf("%w: %s: %w", ErrNodeFailed, n.Name, n.err)
	}
	if n.winN == 0 {
		return 0, ErrNoSamples
	}
	return n.winSum / float64(n.winN), nil
}

// quarantine marks the node failed. First cause wins; the samples
// folded before the failure stay readable through Quality/Coverage but
// the means start returning ErrNodeFailed.
func (n *Node) quarantine(cause error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.err != nil {
		return
	}
	n.err = cause
	mNodeFailures.Inc()
	gQuarantined.Add(1)
}

// Err returns nil for a healthy node, or the failure that quarantined
// it.
func (n *Node) Err() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.err
}

// Quality returns the data-quality summary from the node's most recent
// fold — how much repair the robust merge performed on its logs.
func (n *Node) Quality() align.Quality {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.quality
}

// EstimatedMean returns the node's counter-estimated average total
// power. A quarantined node returns an error wrapping ErrNodeFailed and
// the failure cause.
func (n *Node) EstimatedMean() (float64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.err != nil {
		return 0, fmt.Errorf("%w: %s: %w", ErrNodeFailed, n.Name, n.err)
	}
	if n.n == 0 {
		return 0, ErrNoSamples
	}
	return n.estSum / float64(n.n), nil
}

// MeasuredMean returns the node's measured average total power — ground
// truth the manager itself never uses. Quarantined nodes fail like
// EstimatedMean.
func (n *Node) MeasuredMean() (float64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.err != nil {
		return 0, fmt.Errorf("%w: %s: %w", ErrNodeFailed, n.Name, n.err)
	}
	if n.n == 0 {
		return 0, ErrNoSamples
	}
	return n.measSum / float64(n.n), nil
}

// means returns (estimated, measured, ok) in one lock acquisition for
// the streaming verification path; ok is false for a node that should be
// skipped (quarantined or powered down) and err reports a healthy
// powered-on node without samples.
func (n *Node) means() (est, meas float64, ok bool, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.err != nil || n.off {
		return 0, 0, false, nil
	}
	if n.n == 0 {
		return 0, 0, false, ErrNoSamples
	}
	return n.estSum / float64(n.n), n.measSum / float64(n.n), true, nil
}

// Estimate is one node's reading in a cluster snapshot.
type Estimate struct {
	Name  string
	Watts float64
}

// VisitEstimates streams the per-node estimated means in node insertion
// order without materializing a fleet-sized slice — the per-interval
// read path for a scheduler loop over 10k nodes. Quarantined and
// powered-down nodes are skipped; a healthy powered-on node without
// samples is an error (ErrNoSamples), and a cluster whose every node is
// quarantined fails with ErrNodeFailed. It returns the fleet total.
func (c *Cluster) VisitEstimates(visit func(Estimate)) (float64, error) {
	nodes := c.nodesView()
	total := 0.0
	contributing, quarantined := 0, 0
	for _, n := range nodes {
		est, _, ok, err := n.means()
		if err != nil {
			return 0, fmt.Errorf("cluster: node %s: %w", n.Name, err)
		}
		if !ok {
			if n.Err() != nil {
				quarantined++
			}
			continue
		}
		contributing++
		total += est
		if visit != nil {
			visit(Estimate{Name: n.Name, Watts: est})
		}
	}
	if contributing == 0 && quarantined == len(nodes) && len(nodes) > 0 {
		return 0, fmt.Errorf("%w: all %d nodes quarantined", ErrNodeFailed, len(nodes))
	}
	return total, nil
}

// SnapshotInto is Snapshot with a caller-owned buffer: estimates are
// appended to dst[:0] and the (possibly regrown) slice is returned, so a
// scheduler polling every simulated interval reuses one allocation
// instead of churning an O(nodes) slice per tick. With a large enough
// buffer the steady-state call allocates nothing (it iterates inline
// rather than through VisitEstimates, whose closure would escape).
func (c *Cluster) SnapshotInto(dst []Estimate) ([]Estimate, float64, error) {
	dst = dst[:0]
	nodes := c.nodesView()
	total := 0.0
	contributing, quarantined := 0, 0
	for _, n := range nodes {
		est, _, ok, err := n.means()
		if err != nil {
			return dst, 0, fmt.Errorf("cluster: node %s: %w", n.Name, err)
		}
		if !ok {
			if n.Err() != nil {
				quarantined++
			}
			continue
		}
		contributing++
		total += est
		dst = append(dst, Estimate{Name: n.Name, Watts: est})
	}
	if contributing == 0 && quarantined == len(nodes) && len(nodes) > 0 {
		return dst, 0, fmt.Errorf("%w: all %d nodes quarantined", ErrNodeFailed, len(nodes))
	}
	return dst, total, nil
}

// Snapshot returns the per-node estimated means plus the cluster total,
// in node insertion order regardless of how the underlying runs were
// scheduled. Quarantined and powered-down nodes are skipped — a
// quarantined node's draw is unknown, not zero; use Coverage to see how
// much of the cluster the total covers. A healthy powered-on node
// without samples is still an error (ErrNoSamples), and a cluster with
// every node quarantined fails with ErrNodeFailed.
func (c *Cluster) Snapshot() ([]Estimate, float64, error) {
	snap, total, err := c.SnapshotInto(make([]Estimate, 0, c.NumNodes()))
	if err != nil {
		return nil, 0, err
	}
	return snap, total, nil
}

// Coverage describes how much of the cluster the sensorless estimates
// currently cover.
type Coverage struct {
	// Total is the number of managed nodes.
	Total int
	// Healthy nodes contribute to Snapshot and VerifyAccuracy (powered
	// on, not quarantined).
	Healthy int
	// Quarantined lists failed nodes in insertion order.
	Quarantined []string
	// PoweredOff lists administratively powered-down (healthy) nodes in
	// insertion order.
	PoweredOff []string
	// Degraded lists healthy nodes whose latest fold needed repair
	// (interpolated or dropped windows; see align.Quality).
	Degraded []string
}

// Full reports complete, clean coverage: every node healthy, no node
// running on repaired data. Deliberate power-downs do not break
// coverage; they are scheduling, not degradation.
func (cov Coverage) Full() bool {
	return len(cov.Quarantined) == 0 && len(cov.Degraded) == 0
}

// Coverage reports the cluster's current degradation state.
func (c *Cluster) Coverage() Coverage {
	cov := Coverage{}
	for _, n := range c.nodesView() {
		cov.Total++
		if n.Err() != nil {
			cov.Quarantined = append(cov.Quarantined, n.Name)
			continue
		}
		if !n.Powered() {
			cov.PoweredOff = append(cov.PoweredOff, n.Name)
			continue
		}
		cov.Healthy++
		if n.Quality().Degraded() {
			cov.Degraded = append(cov.Degraded, n.Name)
		}
	}
	return cov
}

// Quarantined returns the names of failed nodes in insertion order.
func (c *Cluster) Quarantined() []string {
	return c.Coverage().Quarantined
}

// Plan is a consolidation decision: evict the named nodes (largest
// consumers first) so the projected draw fits the budget.
type Plan struct {
	// Evict lists nodes to consolidate away, in eviction order.
	Evict []string
	// Projected is the estimated draw after eviction.
	Projected float64
	// Fits reports whether the budget is reachable at all.
	Fits bool
}

// PlanConsolidation picks nodes to power down until the estimated total
// fits the budget. It evicts the largest consumers first, so the budget
// is reached with the fewest powered-down nodes (each eviction is a
// workload migration; fewer migrations is the cheaper plan). It never
// plans away the last node. Ties break toward the earlier estimate, so
// the plan is deterministic for a fixed input order.
//
// PlanConsolidation is the single-shot planner; internal/sched grows it
// into a per-interval scheduler loop with migration costs, per-host
// capacity and the never-overload-survivors constraint.
func PlanConsolidation(estimates []Estimate, budgetWatts float64) Plan {
	total := 0.0
	for _, e := range estimates {
		total += e.Watts
	}
	plan := Plan{Projected: total}
	if total <= budgetWatts {
		plan.Fits = true
		return plan
	}
	sorted := append([]Estimate(nil), estimates...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Watts > sorted[j].Watts })
	for _, e := range sorted {
		if plan.Projected <= budgetWatts || len(plan.Evict) == len(estimates)-1 {
			break
		}
		plan.Evict = append(plan.Evict, e.Name)
		plan.Projected -= e.Watts
	}
	plan.Fits = plan.Projected <= budgetWatts
	return plan
}

// VerifyAccuracy returns the Equation 6 style relative error between the
// cluster's estimated and measured mean totals — the check an operator
// would run once before trusting the sensorless readings. Quarantined
// and powered-down nodes are excluded like in Snapshot; the error covers
// the surviving coverage only. The computation streams over the fleet
// (no O(nodes) slices), summing in insertion order so the result is
// bit-identical to the slice-based formulation.
func (c *Cluster) VerifyAccuracy() (float64, error) {
	nodes := c.nodesView()
	sum, count := 0.0, 0
	contributing, quarantined := 0, 0
	for _, n := range nodes {
		est, meas, ok, err := n.means()
		if err != nil {
			return 0, err
		}
		if !ok {
			if n.Err() != nil {
				quarantined++
			}
			continue
		}
		contributing++
		if meas == 0 {
			continue
		}
		sum += math.Abs(est-meas) / math.Abs(meas)
		count++
	}
	if contributing == 0 {
		if quarantined == len(nodes) && len(nodes) > 0 {
			return 0, fmt.Errorf("%w: all %d nodes quarantined", ErrNodeFailed, len(nodes))
		}
		return 0, stats.ErrEmpty
	}
	if count == 0 {
		return 0, stats.ErrEmpty
	}
	return sum / float64(count) * 100, nil
}
