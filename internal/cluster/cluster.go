// Package cluster provides the ensemble-management layer the paper
// motivates ("in data and computing centers, this can be a valuable tool
// for keeping the center within temperature and power limits"): a set of
// simulated nodes observed purely through the trickle-down estimator,
// with budget checking and a consolidation planner in the spirit of the
// Rajamani/Chen node-power-down studies the paper cites.
//
// The manager never reads a node's measured rails; they remain available
// (Node.MeasuredMean) only so callers can verify decisions the way the
// paper verifies its models.
//
// # Concurrency model
//
// Run steps every node in parallel on a bounded worker pool
// (internal/pool; default runtime.GOMAXPROCS workers, SetWorkers to
// change). Each node owns an independent seeded machine.Server and its
// own sample accumulators, so parallel stepping is deterministic: for a
// fixed set of seeds, Snapshot and VerifyAccuracy return bit-for-bit the
// same values at any worker count, including 1 (the serial path). Node
// failures are aggregated — Run reports every failed node, in insertion
// order, instead of stopping at the first. RunContext adds cooperative
// cancellation: nodes stop at the next slice boundary and the partial
// samples folded so far remain valid. Run calls are serialized with each
// other; Snapshot, VerifyAccuracy and the per-node means may be called
// concurrently with a running Run and observe each node's last fully
// folded state.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"trickledown/internal/align"
	"trickledown/internal/core"
	"trickledown/internal/machine"
	"trickledown/internal/pool"
	"trickledown/internal/stats"
	"trickledown/internal/telemetry"
	"trickledown/internal/workload"
)

// Cluster telemetry: per-node stepping progress plus the cost of folding
// freshly sampled rows into the running means. RunContext itself is
// timed as the "cluster.run" span.
var (
	mNodeRuns = telemetry.NewCounter("cluster_node_runs_total",
		"individual node stepping tasks completed (one per node per Run)")
	mNodeSimSeconds = telemetry.NewFloatCounter("cluster_node_sim_seconds_total",
		"simulated seconds advanced, summed across nodes")
	mSamplesFolded = telemetry.NewCounter("cluster_samples_folded_total",
		"counter samples folded into node means")
	mFoldLatency = telemetry.NewHistogram("cluster_fold_seconds",
		"per-node fold latency (dataset merge to accumulated means)", nil)
)

// ErrNoSamples is returned when a node has not produced counter samples
// yet.
var ErrNoSamples = errors.New("cluster: node has no samples")

// Node is one managed server.
type Node struct {
	// Name identifies the node in plans and reports.
	Name string
	srv  *machine.Server
	seen int

	// mu guards the fold accumulators below, so readers (Snapshot,
	// VerifyAccuracy) are safe against the worker currently folding this
	// node. The server itself is only ever touched by that one worker.
	mu sync.Mutex
	// estSum/measSum accumulate per-sample totals for means.
	estSum  float64
	measSum float64
	n       int
}

// Cluster manages a set of nodes with one shared estimator (the paper's
// fit-once, deploy-everywhere economics).
type Cluster struct {
	est *core.Estimator

	mu    sync.Mutex // guards nodes and p
	nodes []*Node
	p     *pool.Pool

	runMu sync.Mutex // serializes Run calls; a Server is not reentrant
}

// New returns an empty cluster using the given fitted estimator, stepping
// nodes on a default-sized worker pool (see SetWorkers).
func New(est *core.Estimator) (*Cluster, error) {
	if est == nil {
		return nil, errors.New("cluster: nil estimator")
	}
	return &Cluster{est: est, p: pool.New(0)}, nil
}

// SetWorkers bounds how many nodes Run steps concurrently. Non-positive
// n restores the default, runtime.GOMAXPROCS. One worker reproduces the
// serial path exactly; any other count produces identical results (each
// node is an independent seeded simulation), just faster.
func (c *Cluster) SetWorkers(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.p = pool.New(n)
}

// Workers returns the current node-stepping concurrency bound.
func (c *Cluster) Workers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.p.Workers()
}

// AddHomogeneous adds a node running one workload on the default server
// configuration.
func (c *Cluster) AddHomogeneous(name, workloadName string, seed uint64) (*Node, error) {
	cfg := machine.DefaultConfig()
	cfg.Seed = seed
	spec, err := workload.ByName(workloadName)
	if err != nil {
		return nil, err
	}
	srv, err := machine.New(cfg, spec)
	if err != nil {
		return nil, err
	}
	return c.add(name, srv)
}

// AddMixed adds a node with heterogeneous placements.
func (c *Cluster) AddMixed(name string, seed uint64, placements []machine.Placement) (*Node, error) {
	cfg := machine.DefaultConfig()
	cfg.Seed = seed
	srv, err := machine.NewMixed(cfg, placements)
	if err != nil {
		return nil, err
	}
	return c.add(name, srv)
}

func (c *Cluster) add(name string, srv *machine.Server) (*Node, error) {
	if name == "" {
		return nil, errors.New("cluster: empty node name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range c.nodes {
		if n.Name == name {
			return nil, fmt.Errorf("cluster: duplicate node %q", name)
		}
	}
	n := &Node{Name: name, srv: srv}
	c.nodes = append(c.nodes, n)
	return n, nil
}

// Nodes returns the managed nodes in insertion order.
func (c *Cluster) Nodes() []*Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Node(nil), c.nodes...)
}

// Run advances every node by the given simulated seconds and folds the
// new samples into the running means. Nodes are stepped in parallel on
// the cluster's worker pool; see the package comment for the determinism
// and error-aggregation guarantees.
func (c *Cluster) Run(seconds float64) error {
	return c.RunContext(context.Background(), seconds)
}

// RunContext is Run with cooperative cancellation. On cancellation the
// aggregate error includes ctx.Err(); nodes already stepped keep their
// folded samples (each node stops between slices, never mid-slice).
func (c *Cluster) RunContext(ctx context.Context, seconds float64) error {
	c.runMu.Lock()
	defer c.runMu.Unlock()
	defer telemetry.StartSpan("cluster.run").End()
	c.mu.Lock()
	nodes := append([]*Node(nil), c.nodes...)
	p := c.p
	c.mu.Unlock()
	return p.Run(ctx, len(nodes), func(ctx context.Context, i int) error {
		n := nodes[i]
		runErr := n.srv.RunContext(ctx, seconds)
		// Fold whatever was sampled even on a cancelled (partial) run.
		foldStart := time.Now()
		ds, err := n.srv.Dataset()
		if err != nil {
			return fmt.Errorf("cluster: node %s: %w", n.Name, err)
		}
		n.fold(c.est, ds)
		mFoldLatency.Observe(time.Since(foldStart).Seconds())
		mNodeRuns.Inc()
		mNodeSimSeconds.Add(seconds)
		if runErr != nil {
			return fmt.Errorf("cluster: node %s: %w", n.Name, runErr)
		}
		return nil
	})
}

// fold accumulates the node's not-yet-seen samples into its running
// means. Only the worker stepping the node calls it (Run calls are
// serialized), so n.seen and the dataset walk need no lock; the lock
// protects the accumulators against concurrent mean readers.
func (n *Node) fold(est *core.Estimator, ds *align.Dataset) {
	var estSum, measSum float64
	added := 0
	for ; n.seen < ds.Len(); n.seen++ {
		row := &ds.Rows[n.seen]
		estSum += est.Estimate(&row.Counters).Total()
		measSum += row.Power.Total()
		added++
	}
	n.mu.Lock()
	n.estSum += estSum
	n.measSum += measSum
	n.n += added
	n.mu.Unlock()
	mSamplesFolded.Add(uint64(added))
}

// EstimatedMean returns the node's counter-estimated average total power.
func (n *Node) EstimatedMean() (float64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.n == 0 {
		return 0, ErrNoSamples
	}
	return n.estSum / float64(n.n), nil
}

// MeasuredMean returns the node's measured average total power — ground
// truth the manager itself never uses.
func (n *Node) MeasuredMean() (float64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.n == 0 {
		return 0, ErrNoSamples
	}
	return n.measSum / float64(n.n), nil
}

// Estimate is one node's reading in a cluster snapshot.
type Estimate struct {
	Name  string
	Watts float64
}

// Snapshot returns the per-node estimated means plus the cluster total,
// in node insertion order regardless of how the underlying runs were
// scheduled.
func (c *Cluster) Snapshot() ([]Estimate, float64, error) {
	nodes := c.Nodes()
	out := make([]Estimate, 0, len(nodes))
	total := 0.0
	for _, n := range nodes {
		w, err := n.EstimatedMean()
		if err != nil {
			return nil, 0, fmt.Errorf("cluster: node %s: %w", n.Name, err)
		}
		out = append(out, Estimate{Name: n.Name, Watts: w})
		total += w
	}
	return out, total, nil
}

// Plan is a consolidation decision: evict the named nodes (largest
// consumers first) so the projected draw fits the budget.
type Plan struct {
	// Evict lists nodes to consolidate away, in eviction order.
	Evict []string
	// Projected is the estimated draw after eviction.
	Projected float64
	// Fits reports whether the budget is reachable at all.
	Fits bool
}

// PlanConsolidation picks nodes to power down until the estimated total
// fits the budget. It evicts the largest consumers first, so the budget
// is reached with the fewest powered-down nodes (each eviction is a
// workload migration; fewer migrations is the cheaper plan). It never
// plans away the last node. Ties break toward the earlier estimate, so
// the plan is deterministic for a fixed input order.
func PlanConsolidation(estimates []Estimate, budgetWatts float64) Plan {
	total := 0.0
	for _, e := range estimates {
		total += e.Watts
	}
	plan := Plan{Projected: total}
	if total <= budgetWatts {
		plan.Fits = true
		return plan
	}
	sorted := append([]Estimate(nil), estimates...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Watts > sorted[j].Watts })
	for _, e := range sorted {
		if plan.Projected <= budgetWatts || len(plan.Evict) == len(estimates)-1 {
			break
		}
		plan.Evict = append(plan.Evict, e.Name)
		plan.Projected -= e.Watts
	}
	plan.Fits = plan.Projected <= budgetWatts
	return plan
}

// VerifyAccuracy returns the Equation 6 style relative error between the
// cluster's estimated and measured mean totals — the check an operator
// would run once before trusting the sensorless readings.
func (c *Cluster) VerifyAccuracy() (float64, error) {
	var est, meas []float64
	for _, n := range c.Nodes() {
		e, err := n.EstimatedMean()
		if err != nil {
			return 0, err
		}
		m, err := n.MeasuredMean()
		if err != nil {
			return 0, err
		}
		est = append(est, e)
		meas = append(meas, m)
	}
	return stats.AverageError(est, meas)
}
