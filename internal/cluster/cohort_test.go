package cluster

import (
	"fmt"
	"testing"

	"trickledown/internal/machine"
	"trickledown/internal/sim"
	"trickledown/internal/workload"
)

// cohortCluster builds a 16-node fleet where every node hosts its own
// 4-tenant cohort (one Cohort instance per node — the cohort's
// interference state is shared by the tenants of one machine, which is
// stepped by exactly one pool worker at a time).
func cohortCluster(t *testing.T, workers int) *Cluster {
	t.Helper()
	c, err := New(estimator(t))
	if err != nil {
		t.Fatal(err)
	}
	c.SetWorkers(workers)
	tenants := []string{"gcc", "mcf", "dbt-2", "mesa"}
	for node := 0; node < 16; node++ {
		co := workload.NewCohort(workload.CohortConfig{})
		// Construction randomness comes from a per-node seed, so every
		// worker count builds bit-identical tenants.
		mkRNG := sim.NewRNG(uint64(5000 + node))
		for ti, wl := range tenants {
			spec, err := workload.ByName(wl)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := co.Add(fmt.Sprintf("%s-%d", wl, ti), spec.Make(ti, mkRNG.Split())); err != nil {
				t.Fatal(err)
			}
		}
		spec, err := co.Spec(fmt.Sprintf("cohort-%d", node))
		if err != nil {
			t.Fatal(err)
		}
		cfg := machine.DefaultConfig()
		cfg.NumCPUs = 2
		cfg.ThreadsPerCPU = 2
		cfg.NumDisks = 1
		cfg.Seed = uint64(1000 + node)
		placements := make([]machine.Placement, len(tenants))
		for ti := range tenants {
			placements[ti] = machine.Placement{Thread: ti, Spec: &spec}
		}
		if _, err := c.AddMixedConfig(fmt.Sprintf("node-%02d", node), cfg, placements); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// TestCohortClusterBitIdenticalAcrossWorkers steps cohort-hosting nodes
// from cluster shards at several worker counts and requires bit-equal
// snapshots — the shared interference state must never leak across the
// shard boundary. Run under -race in CI.
func TestCohortClusterBitIdenticalAcrossWorkers(t *testing.T) {
	type result struct {
		est   []Estimate
		total float64
	}
	run := func(workers int) result {
		c := cohortCluster(t, workers)
		for i := 0; i < 3; i++ {
			if err := c.Run(4); err != nil {
				t.Fatal(err)
			}
		}
		est, total, err := c.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		return result{est: est, total: total}
	}
	base := run(1)
	if len(base.est) != 16 {
		t.Fatalf("snapshot has %d nodes", len(base.est))
	}
	for _, workers := range []int{4, 16} {
		got := run(workers)
		if got.total != base.total {
			t.Errorf("workers=%d: fleet total %v != %v at workers=1", workers, got.total, base.total)
		}
		for i := range base.est {
			if got.est[i] != base.est[i] {
				t.Errorf("workers=%d: node %s reads %v, workers=1 read %v",
					workers, got.est[i].Name, got.est[i].Watts, base.est[i].Watts)
			}
		}
	}
}

// TestCohortNodeWindowMean pins the WindowMean contract on a cohort
// node: an error before the first fold, then a positive per-interval
// mean that updates run over run alongside the cumulative mean.
func TestCohortNodeWindowMean(t *testing.T) {
	c := cohortCluster(t, 2)
	node, ok := c.Lookup("node-00")
	if !ok {
		t.Fatal("node-00 missing")
	}
	if _, err := node.WindowMean(); err == nil {
		t.Fatal("WindowMean before any fold should fail")
	}
	if err := c.Run(4); err != nil {
		t.Fatal(err)
	}
	w1, err := node.WindowMean()
	if err != nil {
		t.Fatal(err)
	}
	if w1 <= 0 {
		t.Fatalf("window mean %v", w1)
	}
	if err := c.Run(4); err != nil {
		t.Fatal(err)
	}
	w2, err := node.WindowMean()
	if err != nil {
		t.Fatal(err)
	}
	em, err := node.EstimatedMean()
	if err != nil {
		t.Fatal(err)
	}
	if w2 <= 0 || em <= 0 {
		t.Fatalf("window %v cumulative %v", w2, em)
	}
}
