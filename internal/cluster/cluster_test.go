package cluster

import (
	"errors"
	"math"
	"testing"

	"trickledown/internal/core"
	"trickledown/internal/machine"
)

// testEstimator trains a small estimator once for the package's tests.
var testEst *core.Estimator

func estimator(t *testing.T) *core.Estimator {
	t.Helper()
	if testEst != nil {
		return testEst
	}
	gcc, err := machine.RunWorkload("gcc", 150, 1)
	if err != nil {
		t.Fatal(err)
	}
	mcf, err := machine.RunWorkload("mcf", 150, 2)
	if err != nil {
		t.Fatal(err)
	}
	dl, err := machine.RunWorkload("diskload", 120, 3)
	if err != nil {
		t.Fatal(err)
	}
	est, err := core.TrainEstimator(core.TrainingSet{
		CPU: gcc, Memory: mcf, Disk: dl, IO: dl, Chipset: gcc,
	})
	if err != nil {
		t.Fatal(err)
	}
	testEst = est
	return est
}

func TestClusterLifecycle(t *testing.T) {
	c, err := New(estimator(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddHomogeneous("busy", "mesa", 10); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddHomogeneous("spare", "idle", 11); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddMixed("shared", 12, []machine.Placement{
		{Workload: "gcc", Thread: 0},
		{Workload: "dbt-2", Thread: 2},
	}); err != nil {
		t.Fatal(err)
	}
	if len(c.Nodes()) != 3 {
		t.Fatalf("nodes = %d", len(c.Nodes()))
	}
	if err := c.Run(40); err != nil {
		t.Fatal(err)
	}
	snap, total, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 3 {
		t.Fatalf("snapshot = %v", snap)
	}
	var sum float64
	for _, e := range snap {
		if e.Watts < 100 || e.Watts > 320 {
			t.Errorf("node %s estimate %v implausible", e.Name, e.Watts)
		}
		sum += e.Watts
	}
	if math.Abs(sum-total) > 1e-9 {
		t.Errorf("total %v != sum %v", total, sum)
	}
	// The busy node out-draws the spare.
	byName := map[string]float64{}
	for _, e := range snap {
		byName[e.Name] = e.Watts
	}
	if byName["busy"] <= byName["spare"] {
		t.Errorf("busy %v <= spare %v", byName["busy"], byName["spare"])
	}
	// The sensorless estimates verify against the hidden rails.
	acc, err := c.VerifyAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	if acc > 3 {
		t.Errorf("cluster accuracy = %.2f%%", acc)
	}
}

func TestClusterErrors(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil estimator accepted")
	}
	c, err := New(estimator(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddHomogeneous("", "idle", 1); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := c.AddHomogeneous("a", "nope", 1); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := c.AddHomogeneous("a", "idle", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddHomogeneous("a", "idle", 2); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := c.AddMixed("b", 1, nil); err == nil {
		t.Error("empty placements accepted")
	}
	// Snapshot before any run fails with ErrNoSamples.
	if _, _, err := c.Snapshot(); !errors.Is(err, ErrNoSamples) {
		t.Errorf("Snapshot err = %v", err)
	}
	n := c.Nodes()[0]
	if _, err := n.EstimatedMean(); !errors.Is(err, ErrNoSamples) {
		t.Error("EstimatedMean before run should fail")
	}
	if _, err := n.MeasuredMean(); !errors.Is(err, ErrNoSamples) {
		t.Error("MeasuredMean before run should fail")
	}
	if _, err := c.VerifyAccuracy(); err == nil {
		t.Error("VerifyAccuracy before run should fail")
	}
}

func TestPlanConsolidation(t *testing.T) {
	est := []Estimate{
		{Name: "a", Watts: 250},
		{Name: "b", Watts: 150},
		{Name: "c", Watts: 140},
		{Name: "d", Watts: 260},
	}
	// Fits already: no eviction.
	p := PlanConsolidation(est, 1000)
	if !p.Fits || len(p.Evict) != 0 {
		t.Errorf("plan = %+v", p)
	}
	// Needs two cheapest out.
	p = PlanConsolidation(est, 520)
	if !p.Fits {
		t.Fatalf("plan = %+v", p)
	}
	if len(p.Evict) != 2 || p.Evict[0] != "c" || p.Evict[1] != "b" {
		t.Errorf("evictions = %v", p.Evict)
	}
	if math.Abs(p.Projected-510) > 1e-9 {
		t.Errorf("projected = %v", p.Projected)
	}
	// Impossible budget: keeps the last node and reports Fits=false.
	p = PlanConsolidation(est, 10)
	if p.Fits {
		t.Error("impossible budget reported as fitting")
	}
	if len(p.Evict) != len(est)-1 {
		t.Errorf("evictions = %v", p.Evict)
	}
	// Empty cluster fits trivially.
	p = PlanConsolidation(nil, 10)
	if !p.Fits || p.Projected != 0 {
		t.Errorf("empty plan = %+v", p)
	}
}

func TestClusterRunIncremental(t *testing.T) {
	c, err := New(estimator(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddHomogeneous("n", "idle", 5); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(10); err != nil {
		t.Fatal(err)
	}
	n1 := c.Nodes()[0].n
	if err := c.Run(10); err != nil {
		t.Fatal(err)
	}
	n2 := c.Nodes()[0].n
	if n2 <= n1 {
		t.Errorf("samples did not accumulate: %d -> %d", n1, n2)
	}
	if n2 > 25 {
		t.Errorf("samples double counted: %d", n2)
	}
}
