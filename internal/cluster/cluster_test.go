package cluster

import (
	"context"
	"errors"
	"math"
	"testing"

	"trickledown/internal/core"
	"trickledown/internal/machine"
	"trickledown/internal/telemetry"
)

// testEstimator trains a small estimator once for the package's tests.
var testEst *core.Estimator

func estimator(t *testing.T) *core.Estimator {
	t.Helper()
	if testEst != nil {
		return testEst
	}
	gcc, err := machine.RunWorkload("gcc", 150, 1)
	if err != nil {
		t.Fatal(err)
	}
	mcf, err := machine.RunWorkload("mcf", 150, 2)
	if err != nil {
		t.Fatal(err)
	}
	dl, err := machine.RunWorkload("diskload", 120, 3)
	if err != nil {
		t.Fatal(err)
	}
	est, err := core.TrainEstimator(core.TrainingSet{
		CPU: gcc, Memory: mcf, Disk: dl, IO: dl, Chipset: gcc,
	})
	if err != nil {
		t.Fatal(err)
	}
	testEst = est
	return est
}

func TestClusterLifecycle(t *testing.T) {
	c, err := New(estimator(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddHomogeneous("busy", "mesa", 10); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddHomogeneous("spare", "idle", 11); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddMixed("shared", 12, []machine.Placement{
		{Workload: "gcc", Thread: 0},
		{Workload: "dbt-2", Thread: 2},
	}); err != nil {
		t.Fatal(err)
	}
	if len(c.Nodes()) != 3 {
		t.Fatalf("nodes = %d", len(c.Nodes()))
	}
	if err := c.Run(40); err != nil {
		t.Fatal(err)
	}
	snap, total, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 3 {
		t.Fatalf("snapshot = %v", snap)
	}
	var sum float64
	for _, e := range snap {
		if e.Watts < 100 || e.Watts > 320 {
			t.Errorf("node %s estimate %v implausible", e.Name, e.Watts)
		}
		sum += e.Watts
	}
	if math.Abs(sum-total) > 1e-9 {
		t.Errorf("total %v != sum %v", total, sum)
	}
	// The busy node out-draws the spare.
	byName := map[string]float64{}
	for _, e := range snap {
		byName[e.Name] = e.Watts
	}
	if byName["busy"] <= byName["spare"] {
		t.Errorf("busy %v <= spare %v", byName["busy"], byName["spare"])
	}
	// The sensorless estimates verify against the hidden rails.
	acc, err := c.VerifyAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	if acc > 3 {
		t.Errorf("cluster accuracy = %.2f%%", acc)
	}
}

func TestClusterErrors(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil estimator accepted")
	}
	c, err := New(estimator(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddHomogeneous("", "idle", 1); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := c.AddHomogeneous("a", "nope", 1); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := c.AddHomogeneous("a", "idle", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddHomogeneous("a", "idle", 2); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := c.AddMixed("b", 1, nil); err == nil {
		t.Error("empty placements accepted")
	}
	// Snapshot before any run fails with ErrNoSamples.
	if _, _, err := c.Snapshot(); !errors.Is(err, ErrNoSamples) {
		t.Errorf("Snapshot err = %v", err)
	}
	n := c.Nodes()[0]
	if _, err := n.EstimatedMean(); !errors.Is(err, ErrNoSamples) {
		t.Error("EstimatedMean before run should fail")
	}
	if _, err := n.MeasuredMean(); !errors.Is(err, ErrNoSamples) {
		t.Error("MeasuredMean before run should fail")
	}
	if _, err := c.VerifyAccuracy(); err == nil {
		t.Error("VerifyAccuracy before run should fail")
	}
}

func TestPlanConsolidation(t *testing.T) {
	est := []Estimate{
		{Name: "a", Watts: 250},
		{Name: "b", Watts: 150},
		{Name: "c", Watts: 140},
		{Name: "d", Watts: 260},
	}
	// Fits already: no eviction.
	p := PlanConsolidation(est, 1000)
	if !p.Fits || len(p.Evict) != 0 {
		t.Errorf("plan = %+v", p)
	}
	// Largest consumers go first: d (260) then a (250).
	p = PlanConsolidation(est, 520)
	if !p.Fits {
		t.Fatalf("plan = %+v", p)
	}
	if len(p.Evict) != 2 || p.Evict[0] != "d" || p.Evict[1] != "a" {
		t.Errorf("evictions = %v", p.Evict)
	}
	if math.Abs(p.Projected-290) > 1e-9 {
		t.Errorf("projected = %v", p.Projected)
	}
	// Impossible budget: keeps the last node and reports Fits=false.
	p = PlanConsolidation(est, 10)
	if p.Fits {
		t.Error("impossible budget reported as fitting")
	}
	if len(p.Evict) != len(est)-1 {
		t.Errorf("evictions = %v", p.Evict)
	}
	// Empty cluster fits trivially.
	p = PlanConsolidation(nil, 10)
	if !p.Fits || p.Projected != 0 {
		t.Errorf("empty plan = %+v", p)
	}
}

// TestPlanConsolidationFewestEvictions is the regression test for the
// eviction policy: evicting the largest consumer first reaches the
// budget with fewer powered-down nodes than any cheapest-first plan,
// while the never-evict-the-last-node invariant holds.
func TestPlanConsolidationFewestEvictions(t *testing.T) {
	est := []Estimate{
		{Name: "a", Watts: 250},
		{Name: "b", Watts: 150},
		{Name: "c", Watts: 140},
		{Name: "d", Watts: 260},
	}
	// Budget 550 from a total of 800: one largest eviction (d, 260)
	// suffices; cheapest-first would have powered down two nodes
	// (c then b) to shed the same 250+ Watts.
	p := PlanConsolidation(est, 550)
	if !p.Fits {
		t.Fatalf("plan = %+v", p)
	}
	if len(p.Evict) != 1 || p.Evict[0] != "d" {
		t.Errorf("evictions = %v, want exactly [d]", p.Evict)
	}
	if math.Abs(p.Projected-540) > 1e-9 {
		t.Errorf("projected = %v", p.Projected)
	}
	// Every infeasible budget stops one node short of emptying the
	// cluster, and the survivor is the smallest consumer.
	for _, budget := range []float64{0, 10, 100} {
		p := PlanConsolidation(est, budget)
		if p.Fits {
			t.Errorf("budget %v reported as fitting", budget)
		}
		if len(p.Evict) != len(est)-1 {
			t.Errorf("budget %v: evicted %d nodes, want %d", budget, len(p.Evict), len(est)-1)
		}
		for _, name := range p.Evict {
			if name == "c" {
				t.Errorf("budget %v: evicted the smallest consumer %q before the rest", budget, name)
			}
		}
		if math.Abs(p.Projected-140) > 1e-9 {
			t.Errorf("budget %v: projected = %v, want the last node's 140", budget, p.Projected)
		}
	}
}

// buildTestCluster assembles a small heterogeneous cluster with fixed
// seeds and the given worker bound.
func buildTestCluster(t *testing.T, workers int) *Cluster {
	t.Helper()
	c, err := New(estimator(t))
	if err != nil {
		t.Fatal(err)
	}
	c.SetWorkers(workers)
	for i, n := range []struct{ name, wl string }{
		{"n0", "gcc"}, {"n1", "idle"}, {"n2", "mesa"}, {"n3", "dbt-2"},
	} {
		if _, err := c.AddHomogeneous(n.name, n.wl, uint64(40+i)); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// TestClusterRunDeterministic checks the tentpole guarantee: the
// parallel path produces bit-for-bit the same Snapshot and
// VerifyAccuracy results as the serial (one-worker) path, because each
// node is an independent seeded simulation folded under per-node state.
func TestClusterRunDeterministic(t *testing.T) {
	serial := buildTestCluster(t, 1)
	parallel := buildTestCluster(t, 8)
	if serial.Workers() != 1 || parallel.Workers() != 8 {
		t.Fatalf("workers = %d, %d", serial.Workers(), parallel.Workers())
	}
	// Two increments so the fold-resume path is covered too.
	for _, c := range []*Cluster{serial, parallel} {
		if err := c.Run(20); err != nil {
			t.Fatal(err)
		}
		if err := c.Run(15); err != nil {
			t.Fatal(err)
		}
	}
	snapS, totalS, err := serial.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snapP, totalP, err := parallel.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if totalS != totalP {
		t.Errorf("totals differ: serial %v, parallel %v", totalS, totalP)
	}
	for i := range snapS {
		if snapS[i] != snapP[i] {
			t.Errorf("node %d: serial %+v != parallel %+v", i, snapS[i], snapP[i])
		}
	}
	accS, err := serial.VerifyAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	accP, err := parallel.VerifyAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	if accS != accP {
		t.Errorf("accuracy differs: serial %v, parallel %v", accS, accP)
	}
}

// TestClusterRunParallelRace exercises parallel node stepping with
// concurrent snapshot readers; it is meaningful under -race.
func TestClusterRunParallelRace(t *testing.T) {
	c := buildTestCluster(t, 4)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Readers racing the folding workers: means are either
			// ErrNoSamples or a consistent folded state.
			for _, n := range c.Nodes() {
				if _, err := n.EstimatedMean(); err != nil && !errors.Is(err, ErrNoSamples) {
					t.Error(err)
					return
				}
			}
			if _, err := c.VerifyAccuracy(); err != nil && !errors.Is(err, ErrNoSamples) {
				t.Error(err)
				return
			}
		}
	}()
	if err := c.Run(20); err != nil {
		t.Fatal(err)
	}
	close(stop)
	<-done
	if _, _, err := c.Snapshot(); err != nil {
		t.Fatal(err)
	}
}

// TestClusterRunCancel checks RunContext's cancellation semantics: the
// aggregate error reports context.Canceled and the partially stepped
// nodes keep their folded samples.
func TestClusterRunCancel(t *testing.T) {
	c := buildTestCluster(t, 2)
	if err := c.Run(5); err != nil {
		t.Fatal(err)
	}
	_, totalBefore, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.RunContext(ctx, 30); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext err = %v, want context.Canceled", err)
	}
	// The pre-cancellation samples are still there and readable.
	_, totalAfter, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if totalAfter < totalBefore*0.5 {
		t.Errorf("samples lost on cancellation: %v -> %v", totalBefore, totalAfter)
	}
}

func TestClusterRunIncremental(t *testing.T) {
	c, err := New(estimator(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddHomogeneous("n", "idle", 5); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(10); err != nil {
		t.Fatal(err)
	}
	n1 := c.Nodes()[0].n
	if err := c.Run(10); err != nil {
		t.Fatal(err)
	}
	n2 := c.Nodes()[0].n
	if n2 <= n1 {
		t.Errorf("samples did not accumulate: %d -> %d", n1, n2)
	}
	if n2 > 25 {
		t.Errorf("samples double counted: %d", n2)
	}
}

// TestTelemetryCrossLayer checks that one cluster run moves counters in
// every instrumented layer below it — sim slices, pool scheduling,
// cluster folds and DAQ acquisition — which is exactly what a /metrics
// scrape during a run relies on.
func TestTelemetryCrossLayer(t *testing.T) {
	c, err := New(estimator(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddHomogeneous("n0", "gcc", 42); err != nil {
		t.Fatal(err)
	}
	before := telemetry.Snapshot()
	if err := c.Run(3); err != nil {
		t.Fatal(err)
	}
	after := telemetry.Snapshot()
	for _, name := range []string{
		"sim_slices_total",
		"sim_seconds_total",
		"sim_component_steps_total",
		"pool_tasks_completed_total",
		"pool_queue_wait_seconds_count",
		"pool_task_duration_seconds_count",
		"cluster_node_runs_total",
		"cluster_node_sim_seconds_total",
		"cluster_samples_folded_total",
		"cluster_fold_seconds_count",
		"daq_samples_total",
		"daq_windows_total",
		`spans_started_total{span="cluster.run"}`,
	} {
		if after[name] <= before[name] {
			t.Errorf("%s did not advance: before %g, after %g", name, before[name], after[name])
		}
	}
	if after["sim_engines_running"] != before["sim_engines_running"] {
		t.Errorf("sim_engines_running leaked: before %g, after %g",
			before["sim_engines_running"], after["sim_engines_running"])
	}
}
