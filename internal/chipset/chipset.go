// Package chipset models the processor-interface chips the paper lumps
// into its chipset subsystem ("processor interface chips not included in
// other subsystems"). Its dynamic activity is the front-side-bus
// interface switching; on top of that sits the paper's measurement
// limitation, reproduced here deliberately: the chipset rail is derived
// from several power domains whose coupling is workload-dependent and
// non-deterministic ("since a non-deterministic relationship exists
// between some of the domains, it is not possible to predict chipset
// power with high accuracy"). The coupling is modeled as a slow
// Ornstein-Uhlenbeck drift plus a per-workload bias, which is exactly
// what defeats the constant chipset model in Tables 3 and 4.
package chipset

import (
	"math"

	"trickledown/internal/sim"
)

// Ornstein-Uhlenbeck parameters for the inter-domain coupling drift.
const (
	driftTau   = 30.0 // seconds; slow wander
	driftSigma = 0.15 // Watts at equilibrium
)

// Stats is the chipset's state for one slice.
type Stats struct {
	// FSBUtil is the front-side-bus utilization seen by the chips.
	FSBUtil float64
	// DomainDrift is the slowly varying multi-domain measurement
	// artifact, in Watts.
	DomainDrift float64
	// DomainBias is the per-workload component of the artifact, in
	// Watts.
	DomainBias float64
}

// Chipset is the processor-interface chip set.
type Chipset struct {
	rng   *sim.RNG
	drift float64
	bias  float64
}

// New returns a chipset with a private random stream split from parent.
func New(parent *sim.RNG) *Chipset {
	return &Chipset{rng: parent.Split()}
}

// SetDomainBias installs the workload-dependent domain coupling offset
// (Watts); the machine sets it from the running workload's spec.
func (c *Chipset) SetDomainBias(w float64) { c.bias = w }

// Step advances the chipset by sliceSec given the slice's FSB
// utilization.
func (c *Chipset) Step(sliceSec, fsbUtil float64) Stats {
	// Ornstein-Uhlenbeck mean-reverting drift.
	c.drift += -c.drift / driftTau * sliceSec
	c.drift += driftSigma * math.Sqrt(2*sliceSec/driftTau) * c.rng.Norm(0, 1)
	return Stats{FSBUtil: clamp01(fsbUtil), DomainDrift: c.drift, DomainBias: c.bias}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
