package chipset_test

import (
	"math"
	"testing"
	"time"

	"trickledown/internal/chipset"
	"trickledown/internal/power"
	"trickledown/internal/sim"
)

// The chipset power-response curve: base floor at an idle bus, linear
// growth with front-side-bus utilization, and the multi-domain
// measurement artifact (drift + workload bias) passing straight through
// to the rail. The table pins the curve's shape, not its private
// constants.
func TestChipsetPowerResponseCurve(t *testing.T) {
	cases := []struct {
		name  string
		stats chipset.Stats
	}{
		{"idle-bus", chipset.Stats{FSBUtil: 0}},
		{"light", chipset.Stats{FSBUtil: 0.1}},
		{"quarter", chipset.Stats{FSBUtil: 0.25}},
		{"half", chipset.Stats{FSBUtil: 0.5}},
		{"busy", chipset.Stats{FSBUtil: 0.75}},
		{"saturated", chipset.Stats{FSBUtil: 1.0}},
	}
	base := power.Chipset(chipset.Stats{})
	if base != power.ChipsetBasePower {
		t.Fatalf("idle chipset power = %v, want the %v W floor", base, power.ChipsetBasePower)
	}
	prev := math.Inf(-1)
	for _, tc := range cases {
		p := power.Chipset(tc.stats)
		if p < base {
			t.Errorf("%s: power %v W below the %v W floor", tc.name, p, base)
		}
		if p <= prev && tc.stats.FSBUtil > 0 {
			t.Errorf("%s: power %v W did not rise past %v W with bus utilization", tc.name, p, prev)
		}
		prev = p
	}
	// Linearity in FSB utilization: equal utilization steps cost equal
	// Watts (the chipset has no superlinear term; that belongs to DRAM).
	d1 := power.Chipset(chipset.Stats{FSBUtil: 0.50}) - power.Chipset(chipset.Stats{FSBUtil: 0.25})
	d2 := power.Chipset(chipset.Stats{FSBUtil: 0.75}) - power.Chipset(chipset.Stats{FSBUtil: 0.50})
	if math.Abs(d1-d2) > 1e-9 {
		t.Errorf("chipset response not linear: steps %v vs %v W", d1, d2)
	}
}

// The measurement artifact is additive: drift and workload bias move
// the measured rail Watt for Watt, which is exactly why a constant
// model cannot track them.
func TestChipsetArtifactAdditive(t *testing.T) {
	cases := []struct {
		name  string
		drift float64
		bias  float64
	}{
		{"drift-up", 0.4, 0},
		{"drift-down", -0.3, 0},
		{"bias", 0, 1.2},
		{"both", 0.25, -0.8},
	}
	clean := power.Chipset(chipset.Stats{FSBUtil: 0.5})
	for _, tc := range cases {
		p := power.Chipset(chipset.Stats{FSBUtil: 0.5, DomainDrift: tc.drift, DomainBias: tc.bias})
		if got, want := p-clean, tc.drift+tc.bias; math.Abs(got-want) > 1e-9 {
			t.Errorf("%s: artifact shifted rail by %v W, want %v W", tc.name, got, want)
		}
	}
}

// Step clamps out-of-range bus utilization and keeps the OU drift
// bounded near its equilibrium scale over a long run.
func TestChipsetStepClampsAndDriftBounded(t *testing.T) {
	c := chipset.New(sim.NewRNG(42))
	slice := time.Millisecond.Seconds()
	if st := c.Step(slice, -0.5); st.FSBUtil != 0 {
		t.Errorf("negative utilization not clamped: %v", st.FSBUtil)
	}
	if st := c.Step(slice, 1.5); st.FSBUtil != 1 {
		t.Errorf("overload utilization not clamped: %v", st.FSBUtil)
	}
	var worst float64
	for i := 0; i < 200_000; i++ {
		st := c.Step(slice, 0.5)
		if a := math.Abs(st.DomainDrift); a > worst {
			worst = a
		}
	}
	// Equilibrium sigma is 0.15 W; 2 W would mean the mean reversion is
	// broken and the artifact swamps the signal.
	if worst > 2 {
		t.Errorf("drift excursion %v W, want mean-reverting around 0", worst)
	}
	if worst == 0 {
		t.Error("drift never moved; OU noise not applied")
	}
}
