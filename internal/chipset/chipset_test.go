package chipset

import (
	"testing"

	"trickledown/internal/sim"
)

func TestStepClampsUtil(t *testing.T) {
	c := New(sim.NewRNG(1))
	if st := c.Step(0.001, -0.5); st.FSBUtil != 0 {
		t.Errorf("negative util not clamped: %v", st.FSBUtil)
	}
	if st := c.Step(0.001, 1.5); st.FSBUtil != 1 {
		t.Errorf("overrange util not clamped: %v", st.FSBUtil)
	}
}

func TestDomainBiasPropagates(t *testing.T) {
	c := New(sim.NewRNG(2))
	c.SetDomainBias(1.7)
	if st := c.Step(0.001, 0); st.DomainBias != 1.7 {
		t.Errorf("DomainBias = %v", st.DomainBias)
	}
}

func TestDriftIsMeanReverting(t *testing.T) {
	c := New(sim.NewRNG(3))
	var sum float64
	const n = 600000 // 10 simulated minutes
	for i := 0; i < n; i++ {
		sum += c.Step(0.001, 0).DomainDrift
	}
	mean := sum / n
	if mean < -0.5 || mean > 0.5 {
		t.Errorf("drift long-run mean = %v, want ~0", mean)
	}
}

func TestDriftDeterministicPerSeed(t *testing.T) {
	a := New(sim.NewRNG(7))
	b := New(sim.NewRNG(7))
	for i := 0; i < 1000; i++ {
		if a.Step(0.001, 0.3) != b.Step(0.001, 0.3) {
			t.Fatal("chipset nondeterministic for equal seeds")
		}
	}
}
