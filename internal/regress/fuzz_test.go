package regress

import (
	"math"
	"testing"
)

// FuzzOLSRobust checks OLS never panics and never returns non-finite
// coefficients for arbitrary (bounded) inputs.
func FuzzOLSRobust(f *testing.F) {
	f.Add(int64(1), 20, 0.5)
	f.Add(int64(7), 5, -3.0)
	f.Add(int64(42), 100, 1e6)
	f.Fuzz(func(t *testing.T, seed int64, n int, scale float64) {
		if n < 1 || n > 500 {
			return
		}
		if math.IsNaN(scale) || math.IsInf(scale, 0) {
			return
		}
		if scale > 1e9 || scale < -1e9 {
			return
		}
		// Cheap deterministic generator.
		state := uint64(seed)
		next := func() float64 {
			state = state*6364136223846793005 + 1442695040888963407
			return float64(state>>11) / (1 << 53)
		}
		x := make([][]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = []float64{1, next() * scale, next()}
			y[i] = next()*10 + scale*x[i][1]*0.001
		}
		fit, err := OLS(x, y)
		if err != nil {
			return // singular/dimension errors are fine
		}
		for _, c := range fit.Coef {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				t.Fatalf("non-finite coefficient %v (seed %d, n %d, scale %v)", c, seed, n, scale)
			}
		}
		if math.IsNaN(fit.RMSE) || fit.RMSE < 0 {
			t.Fatalf("bad RMSE %v", fit.RMSE)
		}
	})
}
