package regress_test

import (
	"fmt"

	"trickledown/internal/regress"
)

// OLS fits the paper's model forms; a noise-free quadratic is recovered
// exactly.
func ExampleOLS() {
	xs := []float64{0, 1, 2, 3, 4, 5}
	y := make([]float64, len(xs))
	for i, v := range xs {
		y[i] = 28 + 3*v + 0.5*v*v // memory-power-like curve
	}
	fit, _ := regress.OLS(regress.PolyDesign(xs, 2), y)
	fmt.Printf("c0=%.1f c1=%.1f c2=%.1f R2=%.3f\n",
		fit.Coef[0], fit.Coef[1], fit.Coef[2], fit.R2)
	// Output: c0=28.0 c1=3.0 c2=0.5 R2=1.000
}
