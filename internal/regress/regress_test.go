package regress

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"trickledown/internal/sim"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", what, got, want, tol)
	}
}

func TestOLSExactLine(t *testing.T) {
	// y = 3 + 2x with no noise: fit must be exact.
	x := make([][]float64, 50)
	y := make([]float64, 50)
	for i := range x {
		v := float64(i)
		x[i] = []float64{1, v}
		y[i] = 3 + 2*v
	}
	f, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, f.Coef[0], 3, 1e-9, "intercept")
	approx(t, f.Coef[1], 2, 1e-9, "slope")
	approx(t, f.R2, 1, 1e-12, "R2")
	approx(t, f.RMSE, 0, 1e-9, "RMSE")
	if f.N != 50 {
		t.Errorf("N = %d", f.N)
	}
}

func TestOLSNoisyLineRecoversCoefficients(t *testing.T) {
	r := sim.NewRNG(1)
	n := 5000
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		v := r.Float64() * 10
		x[i] = []float64{1, v}
		y[i] = 5 + 1.5*v + r.Norm(0, 0.2)
	}
	f, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, f.Coef[0], 5, 0.05, "intercept")
	approx(t, f.Coef[1], 1.5, 0.01, "slope")
	if f.R2 < 0.99 {
		t.Errorf("R2 = %v, want >0.99", f.R2)
	}
}

func TestOLSQuadraticRecovery(t *testing.T) {
	r := sim.NewRNG(2)
	n := 2000
	v := make([]float64, n)
	y := make([]float64, n)
	for i := range v {
		v[i] = r.Float64() * 4
		y[i] = 28 + 3.4*v[i] + 7.7*v[i]*v[i] + r.Norm(0, 0.1)
	}
	f, err := OLS(PolyDesign(v, 2), y)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, f.Coef[0], 28, 0.1, "c0")
	approx(t, f.Coef[1], 3.4, 0.1, "c1")
	approx(t, f.Coef[2], 7.7, 0.05, "c2")
}

func TestOLSMultiQuadRecovery(t *testing.T) {
	r := sim.NewRNG(3)
	n := 4000
	a := make([]float64, n)
	b := make([]float64, n)
	y := make([]float64, n)
	for i := range a {
		a[i] = r.Float64() * 2
		b[i] = r.Float64() * 3
		y[i] = 21.6 + 10*a[i] - 1.1*a[i]*a[i] + 9.2*b[i] - 4.5*b[i]*b[i] + r.Norm(0, 0.05)
	}
	x, err := QuadDesign(a, b)
	if err != nil {
		t.Fatal(err)
	}
	f, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{21.6, 10, -1.1, 9.2, -4.5}
	for i, w := range want {
		approx(t, f.Coef[i], w, 0.1, "coef")
	}
}

func TestOLSSingular(t *testing.T) {
	// Two identical columns: no unique solution.
	x := [][]float64{{1, 2, 2}, {1, 3, 3}, {1, 4, 4}, {1, 5, 5}}
	y := []float64{1, 2, 3, 4}
	if _, err := OLS(x, y); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestOLSDimensionErrors(t *testing.T) {
	cases := []struct {
		name string
		x    [][]float64
		y    []float64
	}{
		{"empty", nil, nil},
		{"len mismatch", [][]float64{{1}}, []float64{1, 2}},
		{"fewer rows than cols", [][]float64{{1, 2, 3}}, []float64{1}},
		{"zero-width rows", [][]float64{{}, {}}, []float64{1, 2}},
		{"ragged rows", [][]float64{{1, 2}, {1}}, []float64{1, 2}},
	}
	for _, c := range cases {
		if _, err := OLS(c.x, c.y); !errors.Is(err, ErrDimension) {
			t.Errorf("%s: err = %v, want ErrDimension", c.name, err)
		}
	}
}

func TestOLSConstantResponse(t *testing.T) {
	// Constant y: intercept model captures it exactly; R2 defined as 0
	// when total variance is zero.
	x := [][]float64{{1}, {1}, {1}, {1}}
	y := []float64{19.9, 19.9, 19.9, 19.9}
	f, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, f.Coef[0], 19.9, 1e-9, "constant")
	approx(t, f.R2, 0, 1e-12, "R2 of zero-variance response")
}

func TestWithIntercept(t *testing.T) {
	x := [][]float64{{2, 3}, {4, 5}}
	out := WithIntercept(x)
	if out[0][0] != 1 || out[0][1] != 2 || out[0][2] != 3 {
		t.Errorf("row 0 = %v", out[0])
	}
	if out[1][0] != 1 || out[1][1] != 4 || out[1][2] != 5 {
		t.Errorf("row 1 = %v", out[1])
	}
	// Original must be untouched.
	if len(x[0]) != 2 {
		t.Error("WithIntercept modified its input")
	}
}

func TestPolyDesign(t *testing.T) {
	d := PolyDesign([]float64{2}, 3)
	want := []float64{1, 2, 4, 8}
	for i, w := range want {
		if d[0][i] != w {
			t.Errorf("PolyDesign row = %v, want %v", d[0], want)
			break
		}
	}
}

func TestQuadDesignShapeAndErrors(t *testing.T) {
	d, err := QuadDesign([]float64{3}, []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 9, 5, 25}
	for i, w := range want {
		if d[0][i] != w {
			t.Errorf("QuadDesign row = %v, want %v", d[0], want)
			break
		}
	}
	if _, err := QuadDesign(); !errors.Is(err, ErrDimension) {
		t.Error("QuadDesign() with no inputs must fail")
	}
	if _, err := QuadDesign([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrDimension) {
		t.Error("QuadDesign with ragged inputs must fail")
	}
}

func TestLinearDesignShapeAndErrors(t *testing.T) {
	d, err := LinearDesign([]float64{3}, []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 5}
	for i, w := range want {
		if d[0][i] != w {
			t.Errorf("LinearDesign row = %v, want %v", d[0], want)
			break
		}
	}
	if _, err := LinearDesign(); !errors.Is(err, ErrDimension) {
		t.Error("LinearDesign() with no inputs must fail")
	}
	if _, err := LinearDesign([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrDimension) {
		t.Error("LinearDesign with ragged inputs must fail")
	}
}

func TestPredict(t *testing.T) {
	got := Predict([]float64{1, 2, 3}, []float64{1, 10, 100})
	if got != 1+20+300 {
		t.Errorf("Predict = %v", got)
	}
}

func TestFitString(t *testing.T) {
	f := &Fit{Coef: []float64{1}, N: 5}
	if s := f.String(); !strings.Contains(s, "n=5") {
		t.Errorf("String() = %q", s)
	}
}

// Property: for any data the OLS residual is orthogonal to each regressor
// (the defining property of least squares).
func TestOLSResidualOrthogonality(t *testing.T) {
	r := sim.NewRNG(99)
	f := func(seed uint64) bool {
		rr := sim.NewRNG(seed)
		n := 30 + rr.Intn(50)
		x := make([][]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = []float64{1, rr.Float64() * 5, rr.Float64() * 2}
			y[i] = rr.Float64()*10 + x[i][1]*2
		}
		fit, err := OLS(x, y)
		if err != nil {
			return true // singular draws are acceptable
		}
		for col := 0; col < 3; col++ {
			dot := 0.0
			for i := range x {
				res := y[i] - Predict(fit.Coef, x[i])
				dot += res * x[i][col]
			}
			if math.Abs(dot) > 1e-6*float64(n) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Values: nil}
	_ = r
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestStdErrShrinksWithSampleSize(t *testing.T) {
	gen := func(n int, seed uint64) *Fit {
		r := sim.NewRNG(seed)
		x := make([][]float64, n)
		y := make([]float64, n)
		for i := range x {
			v := r.Float64() * 10
			x[i] = []float64{1, v}
			y[i] = 2 + 3*v + r.Norm(0, 1)
		}
		f, err := OLS(x, y)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	small := gen(50, 1)
	big := gen(5000, 2)
	if len(small.StdErr) != 2 || len(big.StdErr) != 2 {
		t.Fatalf("StdErr lengths: %d, %d", len(small.StdErr), len(big.StdErr))
	}
	for i := range small.StdErr {
		if small.StdErr[i] <= 0 {
			t.Errorf("small-sample stderr[%d] = %v", i, small.StdErr[i])
		}
		if big.StdErr[i] >= small.StdErr[i] {
			t.Errorf("stderr[%d] did not shrink: %v -> %v", i, small.StdErr[i], big.StdErr[i])
		}
	}
	// With sigma=1 over x~U(0,10), slope stderr at n=5000 is tiny: the
	// true coefficient must be within a few stderr of the estimate.
	if d := math.Abs(big.Coef[1] - 3); d > 5*big.StdErr[1] {
		t.Errorf("slope %v ± %v too far from 3", big.Coef[1], big.StdErr[1])
	}
}

func TestStdErrZeroNoise(t *testing.T) {
	x := make([][]float64, 20)
	y := make([]float64, 20)
	for i := range x {
		v := float64(i)
		x[i] = []float64{1, v}
		y[i] = 7 + 2*v
	}
	f, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for i, se := range f.StdErr {
		if se > 1e-6 {
			t.Errorf("noise-free stderr[%d] = %v, want ~0", i, se)
		}
	}
}

func TestStdErrNilWithoutDOF(t *testing.T) {
	// n == p: no residual degrees of freedom.
	x := [][]float64{{1, 0}, {1, 1}}
	y := []float64{1, 2}
	f, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if f.StdErr != nil {
		t.Errorf("StdErr = %v with zero DOF", f.StdErr)
	}
}

func TestInvertAgainstSolve(t *testing.T) {
	// invert(A) * b must reproduce solve(A, b).
	a := [][]float64{{4, 1, 0}, {1, 3, 1}, {0, 1, 5}}
	b := []float64{1, 2, 3}
	aCopy := make([][]float64, len(a))
	for i := range a {
		aCopy[i] = append([]float64(nil), a[i]...)
	}
	inv, err := invert(aCopy)
	if err != nil {
		t.Fatal(err)
	}
	a2 := make([][]float64, len(a))
	for i := range a {
		a2[i] = append([]float64(nil), a[i]...)
	}
	x, err := solve(a2, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		var got float64
		for j := range b {
			got += inv[i][j] * b[j]
		}
		if math.Abs(got-x[i]) > 1e-9 {
			t.Errorf("inv*b[%d] = %v, solve = %v", i, got, x[i])
		}
	}
	// Singular matrix is rejected.
	if _, err := invert([][]float64{{1, 2}, {2, 4}}); err == nil {
		t.Error("singular inversion accepted")
	}
}
