// Package regress implements the small amount of numerical machinery the
// paper's methodology needs: ordinary least squares fitted through normal
// equations, plus helpers for the polynomial and multivariate-quadratic
// design matrices used by the subsystem power models ("we initially
// attempt regression curve fitting using linear models; if it is not
// possible to obtain high accuracy with a linear model, we select single
// or multiple input quadratics").
package regress

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when the normal-equation system has no unique
// solution, typically because a regressor is constant or two regressors
// are collinear over the training trace.
var ErrSingular = errors.New("regress: singular normal equations")

// ErrDimension is returned when the design matrix and response vector
// disagree in length, or when there are fewer observations than
// coefficients.
var ErrDimension = errors.New("regress: dimension mismatch")

// Fit holds the result of a least-squares fit.
type Fit struct {
	// Coef holds the fitted coefficients, one per design-matrix column.
	Coef []float64
	// StdErr holds the coefficients' standard errors (nil when the
	// residual degrees of freedom are zero).
	StdErr []float64
	// R2 is the coefficient of determination on the training data.
	R2 float64
	// RMSE is the root-mean-square residual on the training data.
	RMSE float64
	// N is the number of observations used.
	N int
}

func (f *Fit) String() string {
	return fmt.Sprintf("fit{n=%d r2=%.4f rmse=%.4f coef=%v}", f.N, f.R2, f.RMSE, f.Coef)
}

// OLS solves min ||X·b - y||² by normal equations. X is row-major: X[i]
// is observation i. Every row must have the same width. An intercept, if
// wanted, must be an explicit all-ones column (see WithIntercept).
func OLS(x [][]float64, y []float64) (*Fit, error) {
	n := len(x)
	if n == 0 || n != len(y) {
		return nil, ErrDimension
	}
	p := len(x[0])
	if p == 0 || n < p {
		return nil, ErrDimension
	}
	// Accumulate XᵀX and Xᵀy.
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p)
	}
	xty := make([]float64, p)
	for i, row := range x {
		if len(row) != p {
			return nil, fmt.Errorf("%w: row %d has %d columns, want %d", ErrDimension, i, len(row), p)
		}
		for a := 0; a < p; a++ {
			xty[a] += row[a] * y[i]
			for b := a; b < p; b++ {
				xtx[a][b] += row[a] * row[b]
			}
		}
	}
	for a := 1; a < p; a++ {
		for b := 0; b < a; b++ {
			xtx[a][b] = xtx[b][a]
		}
	}
	// solve destroys its matrix argument; keep a copy for the
	// covariance computation.
	xtxCopy := make([][]float64, p)
	for i := range xtx {
		xtxCopy[i] = append([]float64(nil), xtx[i]...)
	}
	coef, err := solve(xtx, xty)
	if err != nil {
		return nil, err
	}
	// Training diagnostics.
	var ybar float64
	for _, v := range y {
		ybar += v
	}
	ybar /= float64(n)
	var ssRes, ssTot float64
	for i, row := range x {
		pred := 0.0
		for j, c := range coef {
			pred += c * row[j]
		}
		d := y[i] - pred
		ssRes += d * d
		t := y[i] - ybar
		ssTot += t * t
	}
	r2 := 0.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	fit := &Fit{
		Coef: coef,
		R2:   r2,
		RMSE: math.Sqrt(ssRes / float64(n)),
		N:    n,
	}
	// Coefficient standard errors: sqrt(sigma^2 * diag((X'X)^-1)) with
	// sigma^2 = ssRes / (n - p).
	if n > p {
		if inv, err := invert(xtxCopy); err == nil {
			sigma2 := ssRes / float64(n-p)
			fit.StdErr = make([]float64, p)
			for i := 0; i < p; i++ {
				v := sigma2 * inv[i][i]
				if v < 0 {
					v = 0
				}
				fit.StdErr[i] = math.Sqrt(v)
			}
		}
	}
	return fit, nil
}

// SolveNormal solves the normal equations (XᵀX)·b = Xᵀy from
// pre-accumulated moments, for callers that maintain the Gram matrix
// incrementally (core.OnlineFitter) instead of materializing the design
// matrix. The arithmetic is exactly OLS's private solver on a copy of
// the inputs, so an incremental accumulator that adds rows in the same
// order as OLS reproduces the batch coefficients bit for bit.
func SolveNormal(xtx [][]float64, xty []float64) ([]float64, error) {
	p := len(xtx)
	if p == 0 || p != len(xty) {
		return nil, ErrDimension
	}
	a := make([][]float64, p)
	for i, row := range xtx {
		if len(row) != p {
			return nil, fmt.Errorf("%w: row %d has %d columns, want %d", ErrDimension, i, len(row), p)
		}
		a[i] = append([]float64(nil), row...)
	}
	return solve(a, xty)
}

// invert computes the inverse of a (which it modifies) by Gauss-Jordan
// elimination with partial pivoting.
func invert(a [][]float64) ([][]float64, error) {
	n := len(a)
	inv := make([][]float64, n)
	for i := range inv {
		inv[i] = make([]float64, n)
		inv[i][i] = 1
	}
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]
		d := a[col][col]
		for c := 0; c < n; c++ {
			a[col][c] /= d
			inv[col][c] /= d
		}
		for r := 0; r < n; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			f := a[r][col]
			for c := 0; c < n; c++ {
				a[r][c] -= f * a[col][c]
				inv[r][c] -= f * inv[col][c]
			}
		}
	}
	return inv, nil
}

// solve performs Gaussian elimination with partial pivoting on a (which
// it modifies) to solve a·x = b.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	x := make([]float64, n)
	copy(x, b)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		x[col], x[pivot] = x[pivot], x[col]
		// Eliminate below.
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			x[r] -= f * x[col]
		}
	}
	// Back-substitute.
	for col := n - 1; col >= 0; col-- {
		s := x[col]
		for c := col + 1; c < n; c++ {
			s -= a[col][c] * x[c]
		}
		x[col] = s / a[col][col]
	}
	return x, nil
}

// WithIntercept prepends an all-ones column to each row of x, returning a
// new design matrix. The original rows are not modified.
func WithIntercept(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		r := make([]float64, 1+len(row))
		r[0] = 1
		copy(r[1:], row)
		out[i] = r
	}
	return out
}

// PolyDesign builds the design matrix for a single-input polynomial of
// the given degree, with intercept: row i = [1, v, v², … v^degree].
func PolyDesign(v []float64, degree int) [][]float64 {
	out := make([][]float64, len(v))
	for i, x := range v {
		row := make([]float64, degree+1)
		row[0] = 1
		p := 1.0
		for d := 1; d <= degree; d++ {
			p *= x
			row[d] = p
		}
		out[i] = row
	}
	return out
}

// QuadDesign builds the design matrix for independent quadratics in each
// input (no cross terms, matching the paper's Eq. 4 form): row i =
// [1, a, a², b, b², …].
func QuadDesign(inputs ...[]float64) ([][]float64, error) {
	if len(inputs) == 0 {
		return nil, ErrDimension
	}
	n := len(inputs[0])
	for _, in := range inputs {
		if len(in) != n {
			return nil, ErrDimension
		}
	}
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, 1+2*len(inputs))
		row[0] = 1
		for j, in := range inputs {
			row[1+2*j] = in[i]
			row[2+2*j] = in[i] * in[i]
		}
		out[i] = row
	}
	return out, nil
}

// LinearDesign builds the design matrix for a multi-input linear model
// with intercept: row i = [1, a, b, …].
func LinearDesign(inputs ...[]float64) ([][]float64, error) {
	if len(inputs) == 0 {
		return nil, ErrDimension
	}
	n := len(inputs[0])
	for _, in := range inputs {
		if len(in) != n {
			return nil, ErrDimension
		}
	}
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, 1+len(inputs))
		row[0] = 1
		for j, in := range inputs {
			row[1+j] = in[i]
		}
		out[i] = row
	}
	return out, nil
}

// Predict evaluates a fitted model on one design row.
func Predict(coef, row []float64) float64 {
	s := 0.0
	for i, c := range coef {
		s += c * row[i]
	}
	return s
}
