package sim

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock(time.Millisecond, 2.8e9)
	if c.Now() != 0 {
		t.Fatalf("fresh clock Now() = %v", c.Now())
	}
	for i := 0; i < 1500; i++ {
		c.Tick()
	}
	if got, want := c.Now(), 1500*time.Millisecond; got != want {
		t.Errorf("Now() = %v, want %v", got, want)
	}
	if got := c.Seconds(); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("Seconds() = %v, want 1.5", got)
	}
	if got := c.SliceIndex(); got != 1500 {
		t.Errorf("SliceIndex() = %d, want 1500", got)
	}
}

func TestClockCyclesPerSlice(t *testing.T) {
	c := NewClock(time.Millisecond, 2.8e9)
	if got, want := c.CyclesPerSlice(), 2.8e6; math.Abs(got-want) > 1 {
		t.Errorf("CyclesPerSlice() = %v, want %v", got, want)
	}
	if got := c.CoreHz(); got != 2.8e9 {
		t.Errorf("CoreHz() = %v", got)
	}
	if got := c.SliceSeconds(); math.Abs(got-0.001) > 1e-15 {
		t.Errorf("SliceSeconds() = %v", got)
	}
}

func TestClockPanicsOnBadParams(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero slice":    func() { NewClock(0, 1e9) },
		"negative freq": func() { NewClock(time.Millisecond, -1) },
		"zero freq":     func() { NewClock(time.Millisecond, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestClockString(t *testing.T) {
	c := NewClock(time.Millisecond, 1e9)
	c.Tick()
	if s := c.String(); !strings.Contains(s, "slice 1") {
		t.Errorf("String() = %q", s)
	}
}

func TestEngineStepOrderAndCount(t *testing.T) {
	c := NewClock(time.Millisecond, 1e9)
	e := NewEngine(c)
	var order []string
	e.Register(
		ComponentFunc(func(*Clock) { order = append(order, "a") }),
		ComponentFunc(func(*Clock) { order = append(order, "b") }),
	)
	e.RunSlices(3)
	want := "ababab"
	if got := strings.Join(order, ""); got != want {
		t.Errorf("step order = %q, want %q", got, want)
	}
	if c.SliceIndex() != 3 {
		t.Errorf("clock advanced %d slices, want 3", c.SliceIndex())
	}
}

func TestEngineRunFor(t *testing.T) {
	c := NewClock(time.Millisecond, 1e9)
	e := NewEngine(c)
	steps := 0
	e.Register(ComponentFunc(func(*Clock) { steps++ }))
	e.RunFor(250 * time.Millisecond)
	if steps != 250 {
		t.Errorf("RunFor stepped %d times, want 250", steps)
	}
	if e.Clock() != c {
		t.Error("Clock() did not return the engine clock")
	}
}

func TestEngineClockTimeVisibleDuringStep(t *testing.T) {
	c := NewClock(time.Millisecond, 1e9)
	e := NewEngine(c)
	var seen []int64
	e.Register(ComponentFunc(func(c *Clock) { seen = append(seen, c.SliceIndex()) }))
	e.RunSlices(3)
	for i, s := range seen {
		if s != int64(i) {
			t.Errorf("step %d saw slice index %d; clock must tick after components", i, s)
		}
	}
}
