package sim_test

import (
	"fmt"

	"trickledown/internal/sim"
)

// Every simulation draws randomness from seeded SplitMix64 streams, so
// whole-server runs replay bit-for-bit.
func ExampleNewRNG() {
	a := sim.NewRNG(42)
	b := sim.NewRNG(42)
	fmt.Println(a.Uint64() == b.Uint64())
	fmt.Println(a.Intn(10) == b.Intn(10))
	// Output:
	// true
	// true
}
