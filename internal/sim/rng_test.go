package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	child := parent.Split()
	// The child must not replay the parent's stream.
	p := NewRNG(7)
	p.Uint64() // account for the draw Split consumed
	for i := 0; i < 100; i++ {
		if child.Uint64() == p.Uint64() {
			t.Fatalf("child stream overlaps parent at draw %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(4)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(5)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("normal mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Errorf("normal stddev = %v, want ~2", math.Sqrt(variance))
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(6)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(3)
		if v < 0 {
			t.Fatalf("Exp returned negative value %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-3) > 0.05 {
		t.Fatalf("exponential mean = %v, want ~3", mean)
	}
}

func TestPoissonSmallMean(t *testing.T) {
	r := NewRNG(8)
	const n = 100000
	var sum int64
	for i := 0; i < n; i++ {
		sum += r.Poisson(2.5)
	}
	mean := float64(sum) / n
	if math.Abs(mean-2.5) > 0.05 {
		t.Fatalf("poisson(2.5) mean = %v", mean)
	}
}

func TestPoissonLargeMeanUsesNormalApprox(t *testing.T) {
	r := NewRNG(9)
	const n = 50000
	var sum int64
	for i := 0; i < n; i++ {
		v := r.Poisson(1000)
		if v < 0 {
			t.Fatalf("poisson returned negative %d", v)
		}
		sum += v
	}
	mean := float64(sum) / n
	if math.Abs(mean-1000) > 2 {
		t.Fatalf("poisson(1000) mean = %v", mean)
	}
}

func TestPoissonZeroAndNegativeMean(t *testing.T) {
	r := NewRNG(10)
	if got := r.Poisson(0); got != 0 {
		t.Errorf("Poisson(0) = %d, want 0", got)
	}
	if got := r.Poisson(-5); got != 0 {
		t.Errorf("Poisson(-5) = %d, want 0", got)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(11)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestJitterBounds(t *testing.T) {
	r := NewRNG(12)
	if err := quick.Check(func(seed uint64) bool {
		v := 10 + float64(seed%100)
		j := r.Jitter(v, 0.2)
		return j >= v*0.8-1e-9 && j <= v*1.2+1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := NewRNG(13)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1.0) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := NewRNG(14)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %v", rate)
	}
}
