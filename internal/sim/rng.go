// Package sim provides the simulation kernel shared by every substrate in
// the trickle-down reproduction: a deterministic pseudo-random number
// generator, a slice-based simulation clock, and a run loop that steps a
// set of components through simulated time.
//
// Everything in the repository that needs randomness draws it from
// sim.RNG so that a whole-server simulation is reproducible from a single
// seed. The clock advances in fixed slices (1 ms by default); all hardware
// models integrate their behaviour over a slice rather than modeling
// individual cycles, which is sufficient because the paper's power models
// consume event *rates* sampled at 1 Hz.
package sim

import "math"

// RNG is a deterministic pseudo-random number generator based on
// SplitMix64. It is intentionally not safe for concurrent use: each
// simulated component owns its own stream (created via Split) so that
// adding randomness to one component does not perturb another.
type RNG struct {
	state uint64
	// spare holds a cached second normal deviate from Box-Muller.
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded with seed. Two generators with the
// same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives an independent child generator from r. The child stream
// is a deterministic function of r's current state, so call order matters
// and is part of the reproducibility contract.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform deviate in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform deviate in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a normally distributed deviate with the given mean and
// standard deviation, using the Box-Muller transform.
func (r *RNG) Norm(mean, stddev float64) float64 {
	if r.hasSpare {
		r.hasSpare = false
		return mean + stddev*r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return mean + stddev*u*m
}

// Exp returns an exponentially distributed deviate with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -mean * math.Log(u)
		}
	}
}

// Poisson returns a Poisson-distributed count with the given mean. For
// large means (>30) it uses a normal approximation, which is accurate
// enough for event-count generation and O(1) instead of O(mean).
func (r *RNG) Poisson(mean float64) int64 {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		n := r.Norm(mean, math.Sqrt(mean))
		if n < 0 {
			return 0
		}
		return int64(n + 0.5)
	}
	// Knuth's method.
	l := math.Exp(-mean)
	var k int64
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Jitter returns v scaled by a uniform factor in [1-frac, 1+frac]. It is
// the standard way workload generators add slice-to-slice variation.
func (r *RNG) Jitter(v, frac float64) float64 {
	return v * (1 + frac*(2*r.Float64()-1))
}

// Bernoulli reports true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}
