package sim

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestRunSlicesContextCompletes(t *testing.T) {
	e := NewEngine(NewClock(time.Millisecond, DefaultCoreHz))
	var steps int64
	e.Register(ComponentFunc(func(c *Clock) { steps++ }))
	if err := e.RunSlicesContext(context.Background(), 500); err != nil {
		t.Fatal(err)
	}
	if steps != 500 {
		t.Errorf("steps = %d", steps)
	}
	if e.Clock().SliceIndex() != 500 {
		t.Errorf("clock at slice %d", e.Clock().SliceIndex())
	}
}

func TestRunSlicesContextCancel(t *testing.T) {
	e := NewEngine(NewClock(time.Millisecond, DefaultCoreHz))
	ctx, cancel := context.WithCancel(context.Background())
	var steps int64
	e.Register(ComponentFunc(func(c *Clock) {
		steps++
		if steps == cancelCheckSlices {
			cancel()
		}
	}))
	err := e.RunSlicesContext(ctx, 1_000_000)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Cancellation lands at the next check boundary, never mid-slice:
	// the clock has ticked exactly once per completed slice.
	if steps >= 1_000_000 {
		t.Error("cancellation did not stop the run")
	}
	if e.Clock().SliceIndex() != steps {
		t.Errorf("clock slice %d != steps %d (stopped mid-slice?)", e.Clock().SliceIndex(), steps)
	}
}

func TestRunForContext(t *testing.T) {
	e := NewEngine(NewClock(time.Millisecond, DefaultCoreHz))
	var steps int64
	e.Register(ComponentFunc(func(c *Clock) { steps++ }))
	if err := e.RunForContext(context.Background(), 250*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if steps != 250 {
		t.Errorf("steps = %d", steps)
	}
}
