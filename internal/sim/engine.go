package sim

import (
	"context"
	"time"

	"trickledown/internal/telemetry"
)

// Engine-level telemetry. The per-slice loop never touches these
// directly: progress is accumulated in locals and flushed with a few
// atomic adds at every cancel-check boundary (and at return), so the
// slice hot path stays free of even atomic traffic.
var (
	mSlices = telemetry.NewCounter("sim_slices_total",
		"simulation slices stepped, across all engines")
	mSimSeconds = telemetry.NewFloatCounter("sim_seconds_total",
		"simulated seconds advanced, across all engines")
	mComponentSteps = telemetry.NewCounter("sim_component_steps_total",
		"component Step calls (events emitted), across all engines")
	mEnginesRunning = telemetry.NewGauge("sim_engines_running",
		"engines currently inside RunSlicesContext")
)

// Component is a piece of simulated hardware or software that is stepped
// once per slice. Components are stepped in registration order, which the
// assembling package (internal/machine) uses to encode data-flow order:
// workload demand first, then CPUs, then the I/O path, then power and
// measurement.
type Component interface {
	// Step advances the component by one slice. The clock has not yet
	// been ticked for the slice being computed: Clock.Seconds() is the
	// time at the start of the slice.
	Step(c *Clock)
}

// ComponentFunc adapts a function to the Component interface.
type ComponentFunc func(c *Clock)

// Step calls f(c).
func (f ComponentFunc) Step(c *Clock) { f(c) }

// Engine owns the clock and the ordered component list and runs the
// simulation loop.
type Engine struct {
	clock      *Clock
	components []Component
}

// NewEngine returns an engine driving the given clock.
func NewEngine(clock *Clock) *Engine {
	return &Engine{clock: clock}
}

// Clock returns the engine's clock.
func (e *Engine) Clock() *Clock { return e.clock }

// Register appends components to the step order.
func (e *Engine) Register(cs ...Component) {
	e.components = append(e.components, cs...)
}

// cancelCheckSlices is how many slices run between context checks in
// RunSlicesContext. At the default 1 ms slice this bounds cancellation
// latency to ~1/8 of a simulated second while keeping the select out of
// the per-slice hot path.
const cancelCheckSlices = 128

// RunSlices executes n simulation slices.
func (e *Engine) RunSlices(n int64) {
	// A background context can never cancel, so the error is always nil.
	_ = e.RunSlicesContext(context.Background(), n)
}

// RunSlicesContext executes up to n simulation slices, stopping early
// (between slices, never mid-slice, so the machine state stays
// consistent) when ctx is cancelled. It returns ctx.Err() on
// cancellation and nil when all n slices ran.
func (e *Engine) RunSlicesContext(ctx context.Context, n int64) error {
	if n <= 0 {
		return ctx.Err()
	}
	mEnginesRunning.Add(1)
	defer mEnginesRunning.Add(-1)
	pending := int64(0) // slices run since the last telemetry flush
	flush := func() {
		if pending == 0 {
			return
		}
		mSlices.Add(uint64(pending))
		mComponentSteps.Add(uint64(pending) * uint64(len(e.components)))
		mSimSeconds.Add(float64(pending) * e.clock.SliceSeconds())
		pending = 0
	}
	defer flush()
	for i := int64(0); i < n; i++ {
		if i%cancelCheckSlices == 0 {
			flush()
			select {
			case <-ctx.Done():
				return ctx.Err()
			default:
			}
		}
		for _, c := range e.components {
			c.Step(e.clock)
		}
		e.clock.Tick()
		pending++
	}
	return nil
}

// RunFor executes simulation slices until the clock has advanced by d
// (rounded down to whole slices).
func (e *Engine) RunFor(d time.Duration) {
	e.RunSlices(int64(d / e.clock.Slice()))
}

// RunForContext is RunFor with cancellation; see RunSlicesContext.
func (e *Engine) RunForContext(ctx context.Context, d time.Duration) error {
	return e.RunSlicesContext(ctx, int64(d/e.clock.Slice()))
}
