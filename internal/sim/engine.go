package sim

import "time"

// Component is a piece of simulated hardware or software that is stepped
// once per slice. Components are stepped in registration order, which the
// assembling package (internal/machine) uses to encode data-flow order:
// workload demand first, then CPUs, then the I/O path, then power and
// measurement.
type Component interface {
	// Step advances the component by one slice. The clock has not yet
	// been ticked for the slice being computed: Clock.Seconds() is the
	// time at the start of the slice.
	Step(c *Clock)
}

// ComponentFunc adapts a function to the Component interface.
type ComponentFunc func(c *Clock)

// Step calls f(c).
func (f ComponentFunc) Step(c *Clock) { f(c) }

// Engine owns the clock and the ordered component list and runs the
// simulation loop.
type Engine struct {
	clock      *Clock
	components []Component
}

// NewEngine returns an engine driving the given clock.
func NewEngine(clock *Clock) *Engine {
	return &Engine{clock: clock}
}

// Clock returns the engine's clock.
func (e *Engine) Clock() *Clock { return e.clock }

// Register appends components to the step order.
func (e *Engine) Register(cs ...Component) {
	e.components = append(e.components, cs...)
}

// RunSlices executes n simulation slices.
func (e *Engine) RunSlices(n int64) {
	for i := int64(0); i < n; i++ {
		for _, c := range e.components {
			c.Step(e.clock)
		}
		e.clock.Tick()
	}
}

// RunFor executes simulation slices until the clock has advanced by d
// (rounded down to whole slices).
func (e *Engine) RunFor(d time.Duration) {
	e.RunSlices(int64(d / e.clock.Slice()))
}
