package sim

import (
	"fmt"
	"time"
)

// Default timing parameters for the simulated server. They mirror the
// paper's target: a 4-way Pentium IV Xeon SMP clocked in the GHz range,
// sampled at one-second boundaries.
const (
	// DefaultCoreHz is the simulated core clock frequency.
	DefaultCoreHz = 2.8e9
	// DefaultSlice is the simulation time step. All hardware models
	// integrate their activity over one slice.
	DefaultSlice = time.Millisecond
)

// Clock tracks simulated time in fixed slices.
type Clock struct {
	slice    time.Duration
	coreHz   float64
	sliceN   int64   // slices elapsed since reset
	cyclesPS float64 // core cycles per slice
}

// NewClock returns a clock advancing in steps of slice at the given core
// frequency. It panics if slice is not positive or coreHz is not positive,
// since every downstream rate computation divides by them.
func NewClock(slice time.Duration, coreHz float64) *Clock {
	if slice <= 0 {
		panic("sim: non-positive clock slice")
	}
	if coreHz <= 0 {
		panic("sim: non-positive core frequency")
	}
	return &Clock{
		slice:    slice,
		coreHz:   coreHz,
		cyclesPS: coreHz * slice.Seconds(),
	}
}

// Tick advances the clock by one slice.
func (c *Clock) Tick() { c.sliceN++ }

// Slice returns the duration of one simulation step.
func (c *Clock) Slice() time.Duration { return c.slice }

// SliceSeconds returns the duration of one step in seconds.
func (c *Clock) SliceSeconds() float64 { return c.slice.Seconds() }

// CoreHz returns the simulated core clock frequency.
func (c *Clock) CoreHz() float64 { return c.coreHz }

// CyclesPerSlice returns the number of core cycles in one slice.
func (c *Clock) CyclesPerSlice() float64 { return c.cyclesPS }

// Now returns elapsed simulated time.
func (c *Clock) Now() time.Duration {
	return time.Duration(c.sliceN) * c.slice
}

// Seconds returns elapsed simulated time in seconds.
func (c *Clock) Seconds() float64 {
	return float64(c.sliceN) * c.slice.Seconds()
}

// SliceIndex returns the number of completed slices.
func (c *Clock) SliceIndex() int64 { return c.sliceN }

func (c *Clock) String() string {
	return fmt.Sprintf("t=%.3fs (slice %d)", c.Seconds(), c.sliceN)
}
