package osmodel

import (
	"testing"
	"time"

	"trickledown/internal/disk"
	"trickledown/internal/iobus"
	"trickledown/internal/sim"
	"trickledown/internal/workload"
)

// newQuietOS builds an OS with every spontaneous interrupt source
// disabled, so only demand-driven interrupts can appear.
func newQuietOS(t *testing.T) (*OS, *sim.Clock) {
	t.Helper()
	rng := sim.NewRNG(3)
	io := iobus.New(4)
	ctl := disk.NewController(2, rng)
	cfg := DefaultConfig(4)
	cfg.TimerHz = 0
	cfg.NICPerSec = 0
	os := New(cfg, io, ctl, rng)
	return os, sim.NewClock(time.Millisecond, 2.8e9)
}

// Zero-rate edge: with the timer and NIC silenced and no I/O demand,
// the interrupt machinery must deliver exactly nothing — no phantom
// counts, no drifting accumulators — across a long run.
func TestInterruptsZeroRates(t *testing.T) {
	os, c := newQuietOS(t)
	for i := 0; i < 5000; i++ {
		res := os.Step(c, []workload.Demand{{Active: 0.5}})
		if res.IntsTotal != 0 || res.DeviceInts != 0 {
			t.Fatalf("slice %d: %d interrupts (%d device) with every source at zero rate",
				i, res.IntsTotal, res.DeviceInts)
		}
	}
	for name, n := range os.InterruptCounts() {
		if n != 0 {
			t.Errorf("source %s accumulated %d interrupts at zero rate", name, n)
		}
	}
}

// Saturated edge: a network stream far beyond the coalescing threshold
// must raise exactly offered/threshold interrupts — coalescing is what
// keeps the interrupt rate finite under any offered load.
func TestInterruptsSaturatedNICCoalesces(t *testing.T) {
	os, c := newQuietOS(t)
	const perSlice = 100 * 64 * 1024 // 100 coalescing windows per slice
	const slices = 1000
	var device int
	for i := 0; i < slices; i++ {
		res := os.Step(c, []workload.Demand{{NetRxBytes: perSlice}})
		device += res.DeviceInts
	}
	want := perSlice * slices / (64 * 1024)
	if device != want {
		t.Fatalf("device interrupts = %d, want exactly %d (offered/coalesce)", device, want)
	}
	if got := os.InterruptCounts()["eth0"]; got != uint64(want) {
		t.Errorf("eth0 cumulative = %d, want %d", got, want)
	}
}

// Sub-threshold payloads carry fractional interrupt credit across
// slices instead of rounding to zero forever or to one per slice.
func TestInterruptsNICFractionalCredit(t *testing.T) {
	os, c := newQuietOS(t)
	// 16 KiB per slice: one coalesced interrupt every 4 slices.
	var total int
	for i := 0; i < 400; i++ {
		total += os.Step(c, []workload.Demand{{NetRxBytes: 16 * 1024}}).DeviceInts
	}
	if total != 100 {
		t.Errorf("coalesced interrupts = %d, want 100 (credit carried across slices)", total)
	}
}

// Saturated disk edge: an absurd synchronous write demand must not
// produce more completion interrupts than submitted requests, and the
// queue bound must hold the system finite.
func TestInterruptsSaturatedDiskBounded(t *testing.T) {
	os, c := newQuietOS(t)
	var device int
	requests := 0
	for i := 0; i < 2000; i++ {
		// One synchronous OLTP-style write per slice, plus a sync storm.
		res := os.Step(c, []workload.Demand{
			{DiskWriteBytes: 1e9, RandomIO: true},
			{DiskWriteBytes: 1e9, Sync: true},
		})
		requests++
		device += res.DeviceInts
	}
	// Drain what's still queued.
	for i := 0; i < 20000; i++ {
		res := os.Step(c, nil)
		device += res.DeviceInts
		if !res.FlushActive && res.Disk.WriteBytes == 0 && res.IntsTotal == 0 {
			break
		}
	}
	if device == 0 {
		t.Fatal("saturated disk raised no completion interrupts")
	}
	// Completions are per request (coalesced by the controller), never
	// per byte: the count must stay within the same order of magnitude
	// as the submissions, not explode with payload size.
	scsi := os.InterruptCounts()["scsi"]
	if scsi > uint64(requests)*100 {
		t.Errorf("scsi interrupts = %d for ~%d submissions; completion coalescing broken", scsi, requests)
	}
}
