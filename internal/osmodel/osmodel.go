// Package osmodel provides the operating-system services the paper's
// methodology passes through: the periodic scheduler timer that wakes
// halted processors ("it is typically the periodic OS timer that is used
// for process scheduling/preemption"), the page cache whose sync()-driven
// writeback shapes the DiskLoad workload, the translation of file I/O
// into disk-controller requests and DMA, and the /proc/interrupts
// accounting the paper reads because the P4 exposes no interrupt-source
// performance event.
package osmodel

import (
	"fmt"
	"sort"
	"strings"

	"trickledown/internal/disk"
	"trickledown/internal/iobus"
	"trickledown/internal/sim"
	"trickledown/internal/workload"
)

// Config holds OS tunables.
type Config struct {
	// NumCPUs is the number of physical processors receiving local timer
	// ticks.
	NumCPUs int
	// TimerHz is the per-CPU scheduler tick rate.
	TimerHz float64
	// NICPerSec is background network interrupt chatter.
	NICPerSec float64
	// NICCoalesceBytes is the NIC's interrupt-coalescing threshold: one
	// completion interrupt per this many payload bytes.
	NICCoalesceBytes float64
	// RandomReadMissRatio is the page-cache miss probability for random
	// (OLTP) reads; sequential cold reads always miss.
	RandomReadMissRatio float64
	// FlushChunkBytes is the writeback request size during sync().
	FlushChunkBytes float64
	// MaxOutstanding bounds requests queued at the disk controller.
	MaxOutstanding int
}

// DefaultConfig mirrors a 2006-era Linux server: 1 kHz tick, deep queue.
func DefaultConfig(numCPUs int) Config {
	return Config{
		NumCPUs:             numCPUs,
		TimerHz:             1000,
		NICPerSec:           90,
		NICCoalesceBytes:    64 * 1024,
		RandomReadMissRatio: 0.75,
		FlushChunkBytes:     256 * 1024,
		MaxOutstanding:      64,
	}
}

// Result reports what the OS and I/O path did during one slice.
type Result struct {
	// Disk aggregates the disk subsystem's activity.
	Disk disk.Stats
	// DMA aggregates the DMA engine's bus traffic.
	DMA iobus.DMAStats
	// IntsPerCPU is interrupts delivered to each CPU this slice; IntsTotal
	// their sum.
	IntsPerCPU []int
	IntsTotal  int
	// DeviceInts is the subset of IntsTotal raised by I/O devices (disk,
	// NIC) rather than the per-CPU timer; only these load the I/O chips.
	DeviceInts int
	// DirtyBytes is the page cache's dirty payload after the slice.
	DirtyBytes float64
	// FlushActive reports whether a sync() writeback is still draining.
	FlushActive bool
}

// OS is the operating-system layer of the simulated server.
type OS struct {
	cfg  Config
	apic *iobus.APIC
	dma  *iobus.DMAEngine
	ctl  *disk.Controller
	rng  *sim.RNG

	dirty      float64   // dirty page-cache bytes not yet scheduled for writeback
	nicCredit  float64   // fractional coalesced NIC interrupts carried over
	busySec    []float64 // cumulative per-CPU busy time (the /proc/stat view)
	threadBusy []float64 // cumulative per-hardware-thread busy time
	flushLeft  float64   // bytes still to submit for the active sync
	inFlightWr float64   // write bytes submitted but not yet transferred
	timerAcc   float64   // fractional timer ticks carried between slices
}

// New wires the OS over the interrupt controller, DMA engine and disk
// controller.
func New(cfg Config, io *iobus.Subsystem, ctl *disk.Controller, parent *sim.RNG) *OS {
	if cfg.NumCPUs <= 0 {
		panic("osmodel: config needs at least one CPU")
	}
	return &OS{
		cfg:     cfg,
		apic:    io.APIC,
		dma:     io.DMA,
		ctl:     ctl,
		rng:     parent.Split(),
		busySec: make([]float64, cfg.NumCPUs),
	}
}

// DirtyBytes returns the current dirty page-cache payload.
func (o *OS) DirtyBytes() float64 { return o.dirty }

// FlushActive reports whether a sync() writeback is in progress.
func (o *OS) FlushActive() bool { return o.flushLeft > 0 || o.inFlightWr > 1 }

// Step runs the OS for one slice: delivers timer and background
// interrupts, converts the threads' file I/O into disk requests, advances
// the disk array, performs the DMA its transfers imply, and raises
// completion interrupts.
func (o *OS) Step(c *sim.Clock, demands []workload.Demand) Result {
	sliceSec := c.SliceSeconds()

	// Local timer tick on every CPU.
	timerInts := 0
	o.timerAcc += o.cfg.TimerHz * sliceSec
	for o.timerAcc >= 1 {
		o.timerAcc--
		for cpuID := 0; cpuID < o.cfg.NumCPUs; cpuID++ {
			o.apic.RaiseLocal(iobus.VecTimer, cpuID, 1)
			timerInts++
		}
	}
	// Background NIC chatter.
	if n := o.rng.Poisson(o.cfg.NICPerSec * sliceSec); n > 0 {
		o.apic.Raise(iobus.VecNIC, int(n))
	}

	// Scheduler accounting: per-CPU busy time as /proc/stat would show
	// it, and per-thread busy time as per-process accounting would.
	// Threads are placed two per processor in order.
	if n := len(demands); n >= 2*o.cfg.NumCPUs {
		if len(o.threadBusy) < n {
			o.threadBusy = append(o.threadBusy, make([]float64, n-len(o.threadBusy))...)
		}
		for cpuID := 0; cpuID < o.cfg.NumCPUs; cpuID++ {
			a0 := demands[2*cpuID].Active
			a1 := demands[2*cpuID+1].Active
			o.busySec[cpuID] += (1 - (1-a0)*(1-a1)) * sliceSec
			o.threadBusy[2*cpuID] += a0 * sliceSec
			o.threadBusy[2*cpuID+1] += a1 * sliceSec
		}
	}

	// File I/O from the threads.
	for _, d := range demands {
		o.handleIO(d)
	}
	// Feed the disk queues from the flush backlog.
	o.submitFlush()

	// Advance the disks; their media transfers are DMA on the memory bus.
	dstats := o.ctl.Step(sliceSec)
	if dstats.ReadBytes > 0 {
		o.dma.Transfer(dstats.ReadBytes, true)
	}
	if dstats.WriteBytes > 0 {
		o.dma.Transfer(dstats.WriteBytes, false)
		o.inFlightWr -= dstats.WriteBytes
		if o.inFlightWr < 0 {
			o.inFlightWr = 0
		}
	}
	if dstats.Completions > 0 {
		o.apic.Raise(iobus.VecDisk, dstats.Completions)
	}

	perCPU, total := o.apic.DrainSlice()
	return Result{
		Disk:        dstats,
		DMA:         o.dma.DrainSlice(),
		IntsPerCPU:  perCPU,
		IntsTotal:   total,
		DeviceInts:  total - timerInts,
		DirtyBytes:  o.dirty,
		FlushActive: o.FlushActive(),
	}
}

// handleIO routes one thread's slice I/O through the page cache and the
// network stack.
func (o *OS) handleIO(d workload.Demand) {
	if net := d.NetRxBytes + d.NetTxBytes; net > 0 {
		// NIC payload is DMA through main memory in both directions;
		// receive writes to memory, transmit reads from it.
		if d.NetRxBytes > 0 {
			o.dma.Transfer(d.NetRxBytes, true)
		}
		if d.NetTxBytes > 0 {
			o.dma.Transfer(d.NetTxBytes, false)
		}
		// Interrupt coalescing: fractional credits accumulate.
		o.nicCredit += net / o.cfg.NICCoalesceBytes
		if o.nicCredit >= 1 {
			n := int(o.nicCredit)
			o.nicCredit -= float64(n)
			o.apic.Raise(iobus.VecNIC, n)
		}
	}
	if d.DiskWriteBytes > 0 {
		if d.RandomIO {
			// Synchronous database-style write: straight to disk.
			o.ctl.Submit(disk.Request{Bytes: d.DiskWriteBytes, Write: true})
			o.inFlightWr += d.DiskWriteBytes
		} else {
			// Buffered write: dirty the page cache.
			o.dirty += d.DiskWriteBytes
		}
	}
	if d.DiskReadBytes > 0 {
		miss := true
		if d.RandomIO {
			miss = o.rng.Bernoulli(o.cfg.RandomReadMissRatio)
		}
		if miss {
			o.ctl.Submit(disk.Request{
				Bytes:      d.DiskReadBytes,
				Sequential: !d.RandomIO,
			})
		}
	}
	if d.Sync {
		// sync(): schedule every dirty byte for writeback.
		o.flushLeft += o.dirty
		o.dirty = 0
	}
}

// submitFlush feeds sequential writeback chunks to the controller without
// overrunning the queue. Outstanding depth is tracked as un-transferred
// write bytes, measured in chunks.
func (o *OS) submitFlush() {
	for o.flushLeft > 0 {
		outstanding := int(o.inFlightWr / o.cfg.FlushChunkBytes)
		if outstanding >= o.cfg.MaxOutstanding {
			return
		}
		chunk := o.cfg.FlushChunkBytes
		if chunk > o.flushLeft {
			chunk = o.flushLeft
		}
		o.ctl.Submit(disk.Request{Bytes: chunk, Write: true, Sequential: true})
		o.inFlightWr += chunk
		o.flushLeft -= chunk
	}
}

// BusySeconds returns the cumulative per-CPU busy time, the
// OS-level utilization counter that Heath-style and Kotla-style models
// consume instead of hardware events ("reading operating system counters
// requires relatively slow access using system service routines").
func (o *OS) BusySeconds() []float64 {
	return append([]float64(nil), o.busySec...)
}

// threadBusyView adapts per-thread busy accounting to the UtilSource
// shape.
type threadBusyView struct{ o *OS }

func (v threadBusyView) BusySeconds() []float64 {
	return append([]float64(nil), v.o.threadBusy...)
}

// ThreadBusySource returns a view of cumulative per-hardware-thread busy
// time — the per-process CPU accounting behind job-level power
// attribution.
func (o *OS) ThreadBusySource() interface{ BusySeconds() []float64 } {
	return threadBusyView{o}
}

// ProcInterrupts renders the OS interrupt accounting in the style of
// Linux's /proc/interrupts: one line per source with its cumulative
// count. This is the side channel the paper uses for interrupt-source
// information ("we made use of the /proc/interrupts file available in
// Linux operating systems").
func (o *OS) ProcInterrupts() string {
	var b strings.Builder
	for v := 0; v < iobus.NumVectors; v++ {
		vec := iobus.Vector(v)
		fmt.Fprintf(&b, "%3d: %12d  %s\n", v, o.apic.VectorCount(vec), vec)
	}
	return b.String()
}

// InterruptCounts returns the cumulative per-source interrupt counts as a
// map keyed by source name, sorted iteration via InterruptSources.
func (o *OS) InterruptCounts() map[string]uint64 {
	out := make(map[string]uint64, iobus.NumVectors)
	for v := 0; v < iobus.NumVectors; v++ {
		vec := iobus.Vector(v)
		out[vec.String()] = o.apic.VectorCount(vec)
	}
	return out
}

// InterruptSources returns the known source names, sorted.
func InterruptSources() []string {
	out := make([]string, 0, iobus.NumVectors)
	for v := 0; v < iobus.NumVectors; v++ {
		out = append(out, iobus.Vector(v).String())
	}
	sort.Strings(out)
	return out
}
