package osmodel

import (
	"strings"
	"testing"
	"time"

	"trickledown/internal/disk"
	"trickledown/internal/iobus"
	"trickledown/internal/sim"
	"trickledown/internal/workload"
)

func newOS(t *testing.T) (*OS, *sim.Clock) {
	t.Helper()
	rng := sim.NewRNG(1)
	io := iobus.New(4)
	ctl := disk.NewController(2, rng)
	os := New(DefaultConfig(4), io, ctl, rng)
	clock := sim.NewClock(time.Millisecond, 2.8e9)
	return os, clock
}

func TestTimerTickEverySliceEveryCPU(t *testing.T) {
	os, c := newOS(t)
	res := os.Step(c, nil)
	if len(res.IntsPerCPU) != 4 {
		t.Fatalf("IntsPerCPU len = %d", len(res.IntsPerCPU))
	}
	for cpu, n := range res.IntsPerCPU {
		if n < 1 {
			t.Errorf("cpu %d got %d interrupts, want >=1 (timer)", cpu, n)
		}
	}
	// Over one second: 1000 ticks per CPU plus background.
	total := res.IntsTotal
	for i := 0; i < 999; i++ {
		total += os.Step(c, nil).IntsTotal
	}
	if total < 4000 || total > 4400 {
		t.Errorf("1s interrupt total = %d, want ~4000-4300", total)
	}
}

func TestBufferedWriteDirtiesCache(t *testing.T) {
	os, c := newOS(t)
	res := os.Step(c, []workload.Demand{{DiskWriteBytes: 1e6}})
	if res.DirtyBytes != 1e6 {
		t.Errorf("DirtyBytes = %v", res.DirtyBytes)
	}
	if res.Disk.WriteBytes != 0 {
		t.Error("buffered write hit the disk immediately")
	}
	if res.FlushActive {
		t.Error("flush active without sync")
	}
}

func TestSyncFlushesDirtyPagesToDisk(t *testing.T) {
	os, c := newOS(t)
	os.Step(c, []workload.Demand{{DiskWriteBytes: 4e6}})
	res := os.Step(c, []workload.Demand{{Sync: true}})
	if res.DirtyBytes != 0 {
		t.Errorf("DirtyBytes after sync = %v", res.DirtyBytes)
	}
	if !res.FlushActive {
		t.Error("flush not active after sync")
	}
	var written float64
	var ints int
	var dmaTx float64
	for i := 0; i < 5000; i++ {
		r := os.Step(c, nil)
		written += r.Disk.WriteBytes
		ints += r.IntsTotal
		dmaTx += r.DMA.BusTx
		if !r.FlushActive && written > 0 {
			break
		}
	}
	if written < 3.9e6 {
		t.Errorf("flush wrote %v bytes, want ~4e6", written)
	}
	if os.FlushActive() {
		t.Error("flush never completed")
	}
	if dmaTx < 4e6/64/2 {
		t.Errorf("flush produced only %v DMA bus transactions", dmaTx)
	}
}

func TestSequentialReadMissesAndDMAs(t *testing.T) {
	os, c := newOS(t)
	os.Step(c, []workload.Demand{{DiskReadBytes: 2e6}})
	var read float64
	var dmaToMem float64
	for i := 0; i < 5000; i++ {
		r := os.Step(c, nil)
		read += r.Disk.ReadBytes
		dmaToMem += r.DMA.WriteBytes
	}
	if read < 1.9e6 {
		t.Errorf("disk read %v bytes, want ~2e6", read)
	}
	if dmaToMem < 1.9e6 {
		t.Errorf("DMA to memory = %v, want ~2e6", dmaToMem)
	}
}

func TestRandomReadsPartiallyCached(t *testing.T) {
	os, c := newOS(t)
	var read float64
	var issued float64
	for i := 0; i < 20000; i++ {
		r := os.Step(c, []workload.Demand{{DiskReadBytes: 8192, RandomIO: true}})
		issued += 8192
		read += r.Disk.ReadBytes
	}
	// Drain.
	for i := 0; i < 20000; i++ {
		read += os.Step(c, nil).Disk.ReadBytes
	}
	ratio := read / issued
	// Disk seeks cap throughput well below the offered 8.2 MB/s, so just
	// check some but not all reads reached the disk.
	if ratio <= 0.05 || ratio >= 1 {
		t.Errorf("disk-read ratio = %v, want partial (cache hits + queue-bound)", ratio)
	}
}

func TestRandomWritesGoStraightToDisk(t *testing.T) {
	os, c := newOS(t)
	res := os.Step(c, []workload.Demand{{DiskWriteBytes: 8192, RandomIO: true}})
	if res.DirtyBytes != 0 {
		t.Error("synchronous write dirtied the cache")
	}
	var written float64
	for i := 0; i < 5000; i++ {
		written += os.Step(c, nil).Disk.WriteBytes
	}
	if written < 8000 {
		t.Errorf("synchronous write transferred %v bytes", written)
	}
}

func TestDiskCompletionsRaiseInterrupts(t *testing.T) {
	os, c := newOS(t)
	io := iobus.New(4)
	ctl := disk.NewController(2, sim.NewRNG(2))
	os2 := New(DefaultConfig(4), io, ctl, sim.NewRNG(2))
	os2.Step(c, []workload.Demand{{DiskReadBytes: 1e6}})
	before := io.APIC.VectorCount(iobus.VecDisk)
	for i := 0; i < 5000; i++ {
		os2.Step(c, nil)
	}
	after := io.APIC.VectorCount(iobus.VecDisk)
	if after <= before {
		t.Error("disk completions raised no scsi interrupts")
	}
	_ = os
}

func TestProcInterruptsFormat(t *testing.T) {
	os, c := newOS(t)
	for i := 0; i < 100; i++ {
		os.Step(c, nil)
	}
	s := os.ProcInterrupts()
	for _, want := range []string{"timer", "scsi", "eth0"} {
		if !strings.Contains(s, want) {
			t.Errorf("ProcInterrupts missing %q:\n%s", want, s)
		}
	}
	counts := os.InterruptCounts()
	if counts["timer"] < 100*4 {
		t.Errorf("timer count = %d", counts["timer"])
	}
	srcs := InterruptSources()
	if len(srcs) != iobus.NumVectors {
		t.Errorf("sources = %v", srcs)
	}
}

func TestNewPanicsWithoutCPUs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	rng := sim.NewRNG(1)
	New(Config{}, iobus.New(1), disk.NewController(1, rng), rng)
}

func TestFlushBackpressure(t *testing.T) {
	// A huge sync must not enqueue everything at once; the queue is
	// bounded by MaxOutstanding chunks.
	rng := sim.NewRNG(3)
	io := iobus.New(4)
	ctl := disk.NewController(2, rng)
	cfg := DefaultConfig(4)
	os := New(cfg, io, ctl, rng)
	c := sim.NewClock(time.Millisecond, 2.8e9)
	os.Step(c, []workload.Demand{{DiskWriteBytes: 1e9}})
	os.Step(c, []workload.Demand{{Sync: true}})
	// inFlight write bytes must stay near MaxOutstanding * chunk.
	maxBytes := float64(cfg.MaxOutstanding+4) * cfg.FlushChunkBytes
	for i := 0; i < 1000; i++ {
		os.Step(c, nil)
		if os.inFlightWr > maxBytes {
			t.Fatalf("outstanding write bytes %v exceed bound %v", os.inFlightWr, maxBytes)
		}
	}
	if !os.FlushActive() {
		t.Error("1GB flush finished implausibly fast")
	}
}

func TestAccessorsAndNIC(t *testing.T) {
	os, c := newOS(t)
	if os.DirtyBytes() != 0 {
		t.Error("fresh OS has dirty bytes")
	}
	busy := os.BusySeconds()
	if len(busy) != 4 {
		t.Fatalf("BusySeconds len = %d", len(busy))
	}
	// Busy accounting accumulates from demands.
	demands := make([]workload.Demand, 8)
	demands[0].Active = 1
	for i := 0; i < 1000; i++ {
		os.Step(c, demands)
	}
	busy = os.BusySeconds()
	if busy[0] < 0.9 {
		t.Errorf("cpu0 busy = %v, want ~1s", busy[0])
	}
	if busy[1] != 0 {
		t.Errorf("cpu1 busy = %v, want 0", busy[1])
	}
	// Returned slice must be a copy.
	busy[0] = 999
	if os.BusySeconds()[0] == 999 {
		t.Error("BusySeconds returned live state")
	}
}

func TestNICTrafficRaisesCoalescedInterruptsAndDMA(t *testing.T) {
	os, c := newOS(t)
	var ints int
	var dmaBytes float64
	for i := 0; i < 2000; i++ { // 2s of 8 MB/s rx + 8 MB/s tx
		res := os.Step(c, []workload.Demand{{NetRxBytes: 8192, NetTxBytes: 8192}})
		ints += res.DeviceInts
		dmaBytes += res.DMA.Bytes
	}
	// 32 MB through a 64 KB coalescer: ~500 NIC interrupts (+ ~180
	// background), and every payload byte via DMA.
	if ints < 400 || ints > 1200 {
		t.Errorf("device interrupts = %d, want ~500-900", ints)
	}
	if dmaBytes < 31e6 {
		t.Errorf("DMA bytes = %v, want ~32e6", dmaBytes)
	}
}
