package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestStdDev(t *testing.T) {
	// Population stddev of {2,4,4,4,5,5,7,9} is exactly 2.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := StdDev(xs); math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := StdDev(nil); got != 0 {
		t.Errorf("StdDev(nil) = %v", got)
	}
	if got := StdDev([]float64{5}); got != 0 {
		t.Errorf("StdDev single = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	min, max, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil || min != -1 || max != 7 {
		t.Errorf("MinMax = %v %v %v", min, max, err)
	}
	if _, _, err := MinMax(nil); !errors.Is(err, ErrEmpty) {
		t.Error("MinMax(nil) must return ErrEmpty")
	}
}

func TestAverageErrorExact(t *testing.T) {
	// 10% high everywhere -> 10% error.
	measured := []float64{10, 20, 30}
	modeled := []float64{11, 22, 33}
	got, err := AverageError(modeled, measured)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("AverageError = %v, want 10", got)
	}
}

func TestAverageErrorPerfect(t *testing.T) {
	m := []float64{5, 6, 7}
	got, err := AverageError(m, m)
	if err != nil || got != 0 {
		t.Errorf("AverageError identical = %v, %v", got, err)
	}
}

func TestAverageErrorSkipsZeroMeasured(t *testing.T) {
	got, err := AverageError([]float64{5, 11}, []float64{0, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("AverageError = %v, want 10 (zero-measured sample skipped)", got)
	}
	if _, err := AverageError([]float64{5}, []float64{0}); !errors.Is(err, ErrEmpty) {
		t.Error("all-zero measured must return ErrEmpty")
	}
}

func TestAverageErrorErrors(t *testing.T) {
	if _, err := AverageError([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrLengthMismatch) {
		t.Error("length mismatch must error")
	}
	if _, err := AverageError(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Error("empty input must error")
	}
}

func TestAverageErrorOffset(t *testing.T) {
	// Disk-style: large DC offset of 21.6, small dynamic part. Modeled is
	// exact on DC but 50% high on the dynamic part.
	measured := []float64{21.8, 22.0}
	modeled := []float64{21.9, 22.2}
	got, err := AverageErrorOffset(modeled, measured, 21.6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-50) > 1e-9 {
		t.Errorf("AverageErrorOffset = %v, want 50", got)
	}
	// Without the offset the same series looks nearly perfect.
	raw, _ := AverageError(modeled, measured)
	if raw > 1 {
		t.Errorf("raw error = %v, expected <1%%", raw)
	}
	if _, err := AverageErrorOffset([]float64{1}, []float64{1, 2}, 0); !errors.Is(err, ErrLengthMismatch) {
		t.Error("length mismatch must error")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean != 2 || s.Min != 1 || s.Max != 3 || s.N != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Error("Summarize(nil) must error")
	}
}

// Property: AverageError is zero iff the series agree on every sample
// with nonzero measured value, and is always non-negative.
func TestAverageErrorProperties(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		measured := make([]float64, len(vals))
		for i, v := range vals {
			measured[i] = 1 + math.Abs(math.Mod(v, 100)) // strictly positive
		}
		e, err := AverageError(measured, measured)
		if err != nil || e != 0 {
			return false
		}
		perturbed := make([]float64, len(measured))
		copy(perturbed, measured)
		perturbed[0] *= 2
		e2, err := AverageError(perturbed, measured)
		return err == nil && e2 > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: StdDev is translation-invariant and scales with |a|.
func TestStdDevProperties(t *testing.T) {
	f := func(vals []float64, shiftRaw float64) bool {
		if len(vals) < 2 {
			return true
		}
		xs := make([]float64, 0, len(vals))
		for _, v := range vals {
			m := math.Mod(v, 1000)
			if math.IsNaN(m) || math.IsInf(m, 0) {
				m = 0
			}
			xs = append(xs, m)
		}
		shift := math.Mod(shiftRaw, 100)
		if math.IsNaN(shift) || math.IsInf(shift, 0) {
			shift = 0
		}
		base := StdDev(xs)
		shifted := make([]float64, len(xs))
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + shift
			scaled[i] = 3 * x
		}
		tol := 1e-6 * (1 + base)
		return math.Abs(StdDev(shifted)-base) < tol &&
			math.Abs(StdDev(scaled)-3*base) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
