package stats_test

import (
	"fmt"

	"trickledown/internal/stats"
)

// The paper's Equation 6: mean absolute relative error between modeled
// and measured power, in percent.
func ExampleAverageError() {
	measured := []float64{40.0, 20.0, 30.0}
	modeled := []float64{42.0, 19.0, 30.0}
	e, _ := stats.AverageError(modeled, measured)
	fmt.Printf("%.2f%%\n", e)
	// Output: 3.33%
}

// Disk errors are computed after removing the idle DC floor, as the
// paper does for its 21.6 W disk subsystem.
func ExampleAverageErrorOffset() {
	measured := []float64{21.8, 22.0}
	modeled := []float64{21.9, 22.2}
	e, _ := stats.AverageErrorOffset(modeled, measured, 21.6)
	fmt.Printf("%.0f%%\n", e)
	// Output: 50%
}
