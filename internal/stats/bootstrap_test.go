package stats

import (
	"errors"
	"math"
	"testing"
)

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // unsorted on purpose
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {-1, 1}, {2, 4},
	}
	for _, tc := range cases {
		got, err := Quantile(xs, tc.q)
		if err != nil {
			t.Fatalf("Quantile(q=%v): %v", tc.q, err)
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(q=%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty Quantile err = %v", err)
	}
}

func TestBootstrapCIDeterministic(t *testing.T) {
	xs := []float64{3.1, 4.7, 2.2, 5.9, 4.1, 3.3, 2.8, 6.0}
	a, err := BootstrapCI(xs, Mean, 500, 0.95, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BootstrapCI(xs, Mean, 500, 0.95, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed produced different intervals: %+v vs %+v", a, b)
	}
	c, err := BootstrapCI(xs, Mean, 500, 0.95, 43)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different seeds produced identical intervals (seed unused?)")
	}
}

func TestBootstrapCICoversMean(t *testing.T) {
	xs := []float64{3.1, 4.7, 2.2, 5.9, 4.1, 3.3, 2.8, 6.0}
	ci, err := BootstrapCI(xs, Mean, 2000, 0.95, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Lo > ci.Hi {
		t.Fatalf("interval inverted: [%v, %v]", ci.Lo, ci.Hi)
	}
	m := Mean(xs)
	if m < ci.Lo || m > ci.Hi {
		t.Errorf("sample mean %v outside its own bootstrap CI [%v, %v]", m, ci.Lo, ci.Hi)
	}
	// Degenerate sample: every resample is identical, CI collapses.
	flat := []float64{5, 5, 5, 5}
	ci, err = BootstrapCI(flat, Mean, 100, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Lo != 5 || ci.Hi != 5 {
		t.Errorf("constant-sample CI = [%v, %v], want [5, 5]", ci.Lo, ci.Hi)
	}
	if _, err := BootstrapCI(nil, Mean, 100, 0.95, 1); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty CI err = %v", err)
	}
}

func TestR2(t *testing.T) {
	measured := []float64{1, 2, 3, 4}
	if r2, err := R2(measured, measured); err != nil || r2 != 1 {
		t.Errorf("perfect R2 = %v, %v", r2, err)
	}
	// Predicting the mean scores exactly zero.
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	if r2, err := R2(mean, measured); err != nil || math.Abs(r2) > 1e-12 {
		t.Errorf("mean-prediction R2 = %v, %v, want 0", r2, err)
	}
	// Worse than the mean goes negative — the held-out regime.
	bad := []float64{4, 3, 2, 1}
	if r2, err := R2(bad, measured); err != nil || r2 >= 0 {
		t.Errorf("anti-correlated R2 = %v, %v, want negative", r2, err)
	}
	if _, err := R2([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("length mismatch err = %v", err)
	}
	if _, err := R2([]float64{1, 2}, []float64{3, 3}); !errors.Is(err, ErrEmpty) {
		t.Errorf("zero-variance err = %v", err)
	}
}

func TestWorstError(t *testing.T) {
	measured := []float64{100, 200, 50}
	modeled := []float64{110, 190, 50} // 10%, 5%, 0%
	got, err := WorstError(modeled, measured)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("WorstError = %v, want 10", got)
	}
	// Zero-measured samples are skipped, matching AverageError.
	got, err = WorstError([]float64{5, 101}, []float64{0, 100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("WorstError with zero sample = %v, want 1", got)
	}
	if _, err := WorstError([]float64{1}, []float64{0}); !errors.Is(err, ErrEmpty) {
		t.Errorf("all-zero measured err = %v", err)
	}
}
