// Package stats provides the summary statistics the paper reports:
// per-workload power means and standard deviations (Tables 1 and 2) and
// the Equation 6 average relative error used throughout the validation
// (Tables 3 and 4).
package stats

import (
	"errors"
	"math"
)

// ErrEmpty is returned by functions that cannot summarize zero samples.
var ErrEmpty = errors.New("stats: no samples")

// ErrLengthMismatch is returned when paired series differ in length.
var ErrLengthMismatch = errors.New("stats: series length mismatch")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs, matching the
// paper's Table 2 (power variation of full traces, not sample estimates).
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(n))
}

// MinMax returns the smallest and largest values in xs.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// AverageError implements the paper's Equation 6:
//
//	AvgErr = (1/N) Σ |modeled_i − measured_i| / measured_i × 100%
//
// Samples whose measured value is zero are skipped (the relative error is
// undefined there); if every sample is skipped it returns ErrEmpty.
func AverageError(modeled, measured []float64) (float64, error) {
	if len(modeled) != len(measured) {
		return 0, ErrLengthMismatch
	}
	if len(modeled) == 0 {
		return 0, ErrEmpty
	}
	sum, n := 0.0, 0
	for i := range modeled {
		if measured[i] == 0 {
			continue
		}
		sum += math.Abs(modeled[i]-measured[i]) / math.Abs(measured[i])
		n++
	}
	if n == 0 {
		return 0, ErrEmpty
	}
	return sum / float64(n) * 100, nil
}

// AverageErrorOffset is AverageError computed after subtracting a DC
// offset from both series. The paper uses this for the disk model ("this
// error is calculated by first subtracting the 21.6W of idle (DC) disk
// power consumption") and notes the I/O model error both ways.
func AverageErrorOffset(modeled, measured []float64, dc float64) (float64, error) {
	if len(modeled) != len(measured) {
		return 0, ErrLengthMismatch
	}
	m := make([]float64, len(modeled))
	s := make([]float64, len(measured))
	for i := range modeled {
		m[i] = modeled[i] - dc
		s[i] = measured[i] - dc
	}
	return AverageError(m, s)
}

// Summary bundles the per-series numbers the tables report.
type Summary struct {
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	N      int
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	min, max, _ := MinMax(xs)
	return Summary{
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    min,
		Max:    max,
		N:      len(xs),
	}, nil
}
