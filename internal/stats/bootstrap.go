package stats

import (
	"math"
	"sort"
)

// Resampling statistics for the validation subsystem: held-out model
// errors are means over a dozen folds, and a point estimate alone cannot
// say whether a 0.5-point shift is drift or noise. The bootstrap puts a
// deterministic, seeded confidence interval around those means so the
// conformance gate can reason about them.

// splitmix64 is the seeded generator behind the bootstrap. It is
// deliberately self-contained (not sim.RNG) so stats stays a leaf
// package, and deliberately not math/rand so the stream is stable across
// Go releases — resampled indices are part of the golden record's
// determinism contract.
type splitmix64 struct{ state uint64 }

func (r *splitmix64) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform int in [0, n). n must be positive.
func (r *splitmix64) intn(n int) int {
	return int(r.next() % uint64(n))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by linear
// interpolation between order statistics. xs need not be sorted.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q), nil
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CI is a two-sided confidence interval.
type CI struct {
	Lo, Hi float64
	// Confidence is the nominal coverage, e.g. 0.95.
	Confidence float64
}

// BootstrapCI computes a percentile-bootstrap confidence interval for
// stat over xs: resamples datasets of len(xs) are drawn with replacement
// from xs (seeded, so two runs with the same inputs produce identical
// intervals), stat is evaluated on each, and the interval is the
// matching pair of quantiles of those evaluations.
func BootstrapCI(xs []float64, stat func([]float64) float64, resamples int, confidence float64, seed uint64) (CI, error) {
	if len(xs) == 0 {
		return CI{}, ErrEmpty
	}
	if resamples < 1 {
		resamples = 1
	}
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.95
	}
	rng := splitmix64{state: seed}
	evals := make([]float64, resamples)
	draw := make([]float64, len(xs))
	for i := range evals {
		for j := range draw {
			draw[j] = xs[rng.intn(len(xs))]
		}
		evals[i] = stat(draw)
	}
	sort.Float64s(evals)
	alpha := (1 - confidence) / 2
	return CI{
		Lo:         quantileSorted(evals, alpha),
		Hi:         quantileSorted(evals, 1-alpha),
		Confidence: confidence,
	}, nil
}

// R2 returns the coefficient of determination of modeled against
// measured: 1 − SS_res/SS_tot. Unlike a training fit's R², this is
// meaningful on held-out data, where it can be negative (the model
// predicts worse than the measured mean). A measured series with zero
// variance has no defined R²; ErrEmpty is returned.
func R2(modeled, measured []float64) (float64, error) {
	if len(modeled) != len(measured) {
		return 0, ErrLengthMismatch
	}
	if len(modeled) == 0 {
		return 0, ErrEmpty
	}
	m := Mean(measured)
	var ssRes, ssTot float64
	for i := range measured {
		r := measured[i] - modeled[i]
		d := measured[i] - m
		ssRes += r * r
		ssTot += d * d
	}
	if ssTot == 0 {
		return 0, ErrEmpty
	}
	return 1 - ssRes/ssTot, nil
}

// WorstError returns the largest single-sample Equation 6 relative error
// (percent), skipping samples whose measured value is zero like
// AverageError does.
func WorstError(modeled, measured []float64) (float64, error) {
	if len(modeled) != len(measured) {
		return 0, ErrLengthMismatch
	}
	worst, n := 0.0, 0
	for i := range modeled {
		if measured[i] == 0 {
			continue
		}
		if e := math.Abs(modeled[i]-measured[i]) / math.Abs(measured[i]); e > worst {
			worst = e
		}
		n++
	}
	if n == 0 {
		return 0, ErrEmpty
	}
	return worst * 100, nil
}
