// Package faults is the chaos layer: a declarative, seeded Plan of
// typed fault specs — stuck/drifting/dead DAQ channels, dropped sync
// pulses, glitching or saturating PMU counters, node crashes and worker
// panics — compiled into injectors that plug into the hook interfaces of
// internal/daq, internal/perfctr and internal/machine.
//
// The paper's measurement chain worked because the hardware behaved;
// production deployments of counter-driven power models do not get that
// luxury. This package exists so the degradation machinery (robust
// alignment, pool panic recovery, cluster quarantine) can be exercised
// deterministically: every random decision is a pure function of the
// plan seed, the spec index and the simulated timestamp, so the same
// Plan with the same seed produces a byte-identical fault schedule and
// bit-identical injections, run after run. An empty Plan (or a plan
// whose specs target other nodes) perturbs nothing: wiring it in leaves
// a healthy run byte-identical to an unwired one.
package faults

import (
	"bytes"
	"errors"
	"fmt"
	"math"

	"trickledown/internal/machine"
	"trickledown/internal/perfctr"
	"trickledown/internal/power"
	"trickledown/internal/telemetry"
)

// Injection telemetry, labeled by fault kind. Incremented only when a
// fault actually perturbs data (an inactive spec costs nothing).
var mInjected = telemetry.NewCounterVec("faults_injected_total",
	"fault perturbations applied to sensor, counter or node state", "kind")

// ErrInjectedCrash is the sentinel wrapped by every injected node crash,
// so quarantine logic and tests can recognize chaos-layer kills with
// errors.Is.
var ErrInjectedCrash = errors.New("faults: injected node crash")

// Kind enumerates the fault taxonomy.
type Kind int

const (
	// DAQStuck pins one sense channel at Magnitude Watts: a shorted or
	// railed sensor that keeps reporting, plausibly but wrongly.
	DAQStuck Kind = iota
	// DAQDrift adds Magnitude Watts per second of linear drift to one
	// channel: a warming sense resistor or sagging reference.
	DAQDrift
	// DAQDropout makes one channel read NaN: an unplugged probe. The
	// poisoned windows are rejected and repaired downstream
	// (align.MergeRobust).
	DAQDropout
	// SyncDrop eats each serial sync edge with probability Magnitude:
	// the flaky sync line that desynchronizes the two logs.
	SyncDrop
	// CounterGlitch overwrites one random counter of the targeted CPU
	// with the P4's 40-bit full-scale value, with probability Magnitude
	// per sample: the misprogrammed/wrapping slot.
	CounterGlitch
	// CounterSaturate clamps every counter of the targeted CPU at
	// Magnitude counts per interval: a slot stuck at a ceiling.
	CounterSaturate
	// NodeCrash kills the node at Start seconds: its run returns an
	// error wrapping ErrInjectedCrash and the machine stays dead.
	NodeCrash
	// WorkerPanic panics the node's stepping goroutine at Start seconds,
	// exercising panic recovery in the worker pool above.
	WorkerPanic
	// WorkloadDrift remixes the targeted CPU's counters toward a
	// memory-bound regime while the measured rails stay put: reported
	// unhalted cycles and fetched uops shrink and bus transactions grow
	// by Magnitude (a fraction in [0,1)), ramping in linearly over
	// workloadDriftRampSec from Start. The counter→power relationship
	// the models were fit on is thereby invalidated without any sensor
	// fault — the workload-mix change the self-healing layer
	// (internal/adapt) must detect and retrain through. Deterministic in
	// time, so drift drills replay bit for bit.
	WorkloadDrift
	numKinds
)

// workloadDriftRampSec is how long a WorkloadDrift takes to reach full
// Magnitude: gradual enough to look like a real mix shift, fast enough
// for short drills.
const workloadDriftRampSec = 20.0

var kindNames = [...]string{
	DAQStuck:        "daq_stuck",
	DAQDrift:        "daq_drift",
	DAQDropout:      "daq_dropout",
	SyncDrop:        "sync_drop",
	CounterGlitch:   "counter_glitch",
	CounterSaturate: "counter_saturate",
	NodeCrash:       "node_crash",
	WorkerPanic:     "worker_panic",
	WorkloadDrift:   "workload_drift",
}

// String returns the kind's schedule mnemonic.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Valid reports whether k names a defined fault kind.
func (k Kind) Valid() bool { return k >= 0 && k < numKinds }

// Spec is one fault to inject.
type Spec struct {
	// Kind selects the fault type.
	Kind Kind
	// Node targets one node by name; empty targets every node the plan
	// is attached to (single-machine runs attach under the empty name).
	Node string
	// Channel is the DAQ sense channel for DAQStuck/DAQDrift/DAQDropout.
	Channel power.Subsystem
	// CPU targets one processor for counter faults; negative means all.
	CPU int
	// Start is when the fault begins, in simulated target-clock seconds.
	Start float64
	// Duration bounds the fault; 0 or negative means until the end of
	// the run. Crash and panic faults ignore it (dead stays dead).
	Duration float64
	// Magnitude is the kind-specific parameter: stuck-at Watts, drift
	// Watts/second, drop/glitch probability in [0,1], or the saturation
	// ceiling in counts.
	Magnitude float64
}

// active reports whether the spec's window covers time t.
func (s *Spec) active(t float64) bool {
	if t < s.Start {
		return false
	}
	return s.Duration <= 0 || t < s.Start+s.Duration
}

// Plan is a reproducible set of faults: Specs plus the Seed every random
// decision derives from.
type Plan struct {
	Seed  uint64
	Specs []Spec
}

// Validate rejects malformed specs before anything is wired in.
func (p *Plan) Validate() error {
	for i, s := range p.Specs {
		switch {
		case !s.Kind.Valid():
			return fmt.Errorf("faults: spec %d: invalid kind %d", i, int(s.Kind))
		case s.Start < 0:
			return fmt.Errorf("faults: spec %d (%s): negative start %g", i, s.Kind, s.Start)
		case math.IsNaN(s.Start) || math.IsInf(s.Start, 0) || math.IsNaN(s.Magnitude) || math.IsInf(s.Magnitude, 0):
			return fmt.Errorf("faults: spec %d (%s): non-finite parameter", i, s.Kind)
		}
		if s.Kind == SyncDrop || s.Kind == CounterGlitch {
			if s.Magnitude < 0 || s.Magnitude > 1 {
				return fmt.Errorf("faults: spec %d (%s): probability %g outside [0,1]", i, s.Kind, s.Magnitude)
			}
		}
		if s.Kind == WorkloadDrift {
			if s.Magnitude < 0 || s.Magnitude >= 1 {
				return fmt.Errorf("faults: spec %d (%s): drift fraction %g outside [0,1)", i, s.Kind, s.Magnitude)
			}
		}
	}
	return nil
}

// mix is SplitMix64's finalizer: the stateless hash behind every
// schedule decision.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// specSeed derives spec i's schedule seed from the plan seed.
func specSeed(planSeed uint64, i int) uint64 {
	return mix(planSeed ^ mix(uint64(i)+1))
}

// Schedule renders the fully derived fault schedule as deterministic
// text: the same Plan and Seed produce byte-identical output, which is
// the reproducibility contract chaos runs are audited against.
func (p *Plan) Schedule() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "fault plan seed=%#016x specs=%d\n", p.Seed, len(p.Specs))
	for i, s := range p.Specs {
		node := s.Node
		if node == "" {
			node = "*"
		}
		fmt.Fprintf(&b, "[%02d] %-16s node=%-10s channel=%-8s cpu=%-3d start=%gs dur=%gs mag=%g seed=%#016x\n",
			i, s.Kind, node, s.Channel, s.CPU, s.Start, s.Duration, s.Magnitude, specSeed(p.Seed, i))
	}
	return b.Bytes()
}

// compiled is one spec bound to its derived seed and telemetry counter.
type compiled struct {
	Spec
	seed uint64
	m    *telemetry.Counter
	err  error // cached crash error (NodeCrash/WorkerPanic)
}

// chance is a deterministic pseudo-random event: a pure function of the
// spec seed and the timestamp bits, so replaying a run replays every
// decision.
func (c *compiled) chance(t, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	h := mix(c.seed ^ mix(math.Float64bits(t)))
	return float64(h>>11)/(1<<53) < p
}

// Injector is a plan compiled for one node. It implements
// daq.FaultInjector, perfctr.FaultInjector and machine.CrashInjector;
// Attach wires it into an assembled server. A nil *Injector is a valid
// no-op for all three interfaces' call sites guarded by the hook owners.
type Injector struct {
	node  string
	specs []compiled
}

// Injector compiles the plan for one node, returning nil when no spec
// targets it (so healthy nodes carry no hooks at all).
func (p *Plan) Injector(node string) *Injector {
	var specs []compiled
	for i, s := range p.Specs {
		if s.Node != "" && s.Node != node {
			continue
		}
		specs = append(specs, compiled{
			Spec: s,
			seed: specSeed(p.Seed, i),
			m:    mInjected.With(s.Kind.String()),
		})
	}
	if len(specs) == 0 {
		return nil
	}
	return &Injector{node: node, specs: specs}
}

// PerturbReading implements daq.FaultInjector: sensor-chain faults.
func (in *Injector) PerturbReading(t float64, r power.Reading) power.Reading {
	for i := range in.specs {
		s := &in.specs[i]
		if !s.active(t) {
			continue
		}
		switch s.Kind {
		case DAQStuck:
			r[s.Channel] = s.Magnitude
		case DAQDrift:
			r[s.Channel] += s.Magnitude * (t - s.Start)
		case DAQDropout:
			r[s.Channel] = math.NaN()
		default:
			continue
		}
		s.m.Inc()
	}
	return r
}

// DropSync implements daq.FaultInjector: the flaky serial line.
func (in *Injector) DropSync(t float64) bool {
	for i := range in.specs {
		s := &in.specs[i]
		if s.Kind == SyncDrop && s.active(t) && s.chance(t, s.Magnitude) {
			s.m.Inc()
			return true
		}
	}
	return false
}

// counterFields enumerates the mutable counters of one CPU's sample, in
// a fixed order the glitch picker indexes into.
func counterFields(c *perfctr.CPUCounts) []*uint64 {
	return []*uint64{
		&c.Cycles, &c.HaltedCycles, &c.FetchedUops, &c.L3LoadMisses,
		&c.L3Misses, &c.TLBMisses, &c.BusTx, &c.BusPrefetchTx,
		&c.DMAOther, &c.Uncacheable,
	}
}

// p4FullScale is the Pentium 4's 40-bit counter ceiling, the value a
// glitching slot reads back.
const p4FullScale = (uint64(1) << 40) - 1

// PerturbCounts implements perfctr.FaultInjector: PMU glitches.
func (in *Injector) PerturbCounts(t float64, cpu int, c *perfctr.CPUCounts) {
	for i := range in.specs {
		s := &in.specs[i]
		if !s.active(t) || (s.CPU >= 0 && s.CPU != cpu) {
			continue
		}
		switch s.Kind {
		case CounterGlitch:
			if !s.chance(t+float64(cpu)*1e-9, s.Magnitude) {
				continue
			}
			fields := counterFields(c)
			pick := mix(s.seed^mix(math.Float64bits(t))^mix(uint64(cpu)+1)) % uint64(len(fields))
			*fields[pick] = p4FullScale
		case CounterSaturate:
			ceiling := uint64(s.Magnitude)
			if ceiling == 0 {
				ceiling = 1 << 20
			}
			hit := false
			for _, f := range counterFields(c) {
				if *f > ceiling {
					*f = ceiling
					hit = true
				}
			}
			if !hit {
				continue
			}
		case WorkloadDrift:
			r := (t - s.Start) / workloadDriftRampSec
			if r <= 0 {
				continue
			}
			if r > 1 {
				r = 1
			}
			m := s.Magnitude * r
			if c.Cycles > c.HaltedCycles {
				active := float64(c.Cycles - c.HaltedCycles)
				c.HaltedCycles = c.Cycles - uint64(active*(1-m))
			}
			c.FetchedUops = uint64(float64(c.FetchedUops) * (1 - m))
			c.BusTx = uint64(float64(c.BusTx) * (1 + m))
			c.BusPrefetchTx = uint64(float64(c.BusPrefetchTx) * (1 + m))
		default:
			continue
		}
		s.m.Inc()
	}
}

// CrashErr implements machine.CrashInjector: the node dies at Start.
func (in *Injector) CrashErr(now float64) error {
	for i := range in.specs {
		s := &in.specs[i]
		if s.Kind != NodeCrash || now < s.Start {
			continue
		}
		if s.err == nil {
			s.err = fmt.Errorf("%w: node %q at %gs", ErrInjectedCrash, in.node, s.Start)
			s.m.Inc()
		}
		return s.err
	}
	return nil
}

// PanicAt implements machine.CrashInjector: the stepping goroutine blows
// up at Start.
func (in *Injector) PanicAt(now float64) bool {
	for i := range in.specs {
		s := &in.specs[i]
		if s.Kind == WorkerPanic && now >= s.Start {
			s.m.Inc()
			return true
		}
	}
	return false
}

// Attach compiles the plan for the named node and wires the injector
// into the server's DAQ, counter sampler and crash hook. It reports
// whether any fault targets the node; a false return leaves the server
// untouched (and byte-identical to an unwired run).
func Attach(p *Plan, node string, srv *machine.Server) bool {
	in := p.Injector(node)
	if in == nil {
		return false
	}
	srv.DAQ().SetFaultInjector(in)
	srv.Sampler().SetFaultInjector(in)
	srv.SetCrashInjector(in)
	return true
}
