package faults

import (
	"bytes"
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"trickledown/internal/machine"
	"trickledown/internal/perfctr"
	"trickledown/internal/power"
	"trickledown/internal/workload"
)

func testPlan(seed uint64) *Plan {
	return &Plan{Seed: seed, Specs: []Spec{
		{Kind: DAQStuck, Channel: power.SubCPU, Start: 5, Duration: 10, Magnitude: 42},
		{Kind: DAQDropout, Node: "n3", Channel: power.SubMemory, Start: 8, Duration: 4},
		{Kind: SyncDrop, Start: 2, Magnitude: 0.2},
		{Kind: CounterGlitch, CPU: -1, Start: 0, Magnitude: 0.1},
		{Kind: NodeCrash, Node: "n7", Start: 20},
		{Kind: WorkerPanic, Node: "n9", Start: 15},
	}}
}

func TestScheduleByteIdentical(t *testing.T) {
	a, b := testPlan(1234).Schedule(), testPlan(1234).Schedule()
	if !bytes.Equal(a, b) {
		t.Fatalf("same plan+seed rendered different schedules:\n%s\nvs\n%s", a, b)
	}
	if bytes.Equal(a, testPlan(99).Schedule()) {
		t.Fatal("different seeds rendered the same schedule")
	}
	if len(bytes.Split(bytes.TrimSpace(a), []byte("\n"))) != 7 {
		t.Errorf("schedule should render a header plus one line per spec:\n%s", a)
	}
}

func TestValidate(t *testing.T) {
	if err := testPlan(1).Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	bad := []Plan{
		{Specs: []Spec{{Kind: Kind(99)}}},
		{Specs: []Spec{{Kind: DAQStuck, Start: -1}}},
		{Specs: []Spec{{Kind: SyncDrop, Magnitude: 1.5}}},
		{Specs: []Spec{{Kind: DAQDrift, Magnitude: math.NaN()}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d accepted", i)
		}
	}
}

func TestInjectorTargeting(t *testing.T) {
	p := testPlan(1)
	if in := p.Injector("n3"); in == nil || len(in.specs) != 4 {
		t.Errorf("n3 should see its dropout plus the 3 untargeted specs")
	}
	if in := p.Injector("other"); in == nil || len(in.specs) != 3 {
		t.Errorf("unrelated node should see only the untargeted specs")
	}
	none := &Plan{Seed: 1, Specs: []Spec{{Kind: NodeCrash, Node: "n7", Start: 1}}}
	if in := none.Injector("other"); in != nil {
		t.Errorf("node with no matching specs should compile to nil, got %+v", in)
	}
}

func runServer(t *testing.T, seed uint64, plan *Plan, node string, seconds float64) (*machine.Server, error) {
	t.Helper()
	spec, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.Seed = seed
	srv, err := machine.New(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if plan != nil {
		Attach(plan, node, srv)
	}
	return srv, srv.RunContext(context.Background(), seconds)
}

// TestZeroFaultPlanIsIdentity locks the acceptance criterion: attaching
// a plan that injects nothing leaves the run byte-identical to an
// unwired one.
func TestZeroFaultPlanIsIdentity(t *testing.T) {
	clean, err := runServer(t, 42, nil, "", 12)
	if err != nil {
		t.Fatal(err)
	}
	// Empty plan, and a plan whose every spec targets some other node.
	for name, plan := range map[string]*Plan{
		"empty":      {Seed: 7},
		"other-node": {Seed: 7, Specs: []Spec{{Kind: NodeCrash, Node: "elsewhere", Start: 1}}},
	} {
		wired, err := runServer(t, 42, plan, "me", 12)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		a, err := clean.Dataset()
		if err != nil {
			t.Fatal(err)
		}
		b, err := wired.Dataset()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s plan perturbed the run", name)
		}
	}
}

// TestFaultyRunDeterministic locks the other half of the contract: the
// same plan and seed reproduce the same degraded dataset bit for bit.
func TestFaultyRunDeterministic(t *testing.T) {
	plan := &Plan{Seed: 99, Specs: []Spec{
		{Kind: DAQDropout, Channel: power.SubCPU, Start: 3, Duration: 2},
		{Kind: SyncDrop, Start: 0, Magnitude: 0.15},
		{Kind: CounterGlitch, CPU: -1, Start: 0, Magnitude: 0.2},
	}}
	srvA, errA := runServer(t, 5, plan, "n", 15)
	srvB, errB := runServer(t, 5, plan, "n", 15)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("run errors diverged: %v vs %v", errA, errB)
	}
	dsA, qA, err := srvA.DatasetRobust()
	if err != nil {
		t.Fatal(err)
	}
	dsB, qB, err := srvB.DatasetRobust()
	if err != nil {
		t.Fatal(err)
	}
	if qA != qB {
		t.Errorf("quality summaries diverged: %v vs %v", qA, qB)
	}
	if !reflect.DeepEqual(dsA, dsB) {
		t.Error("datasets diverged for identical plan+seed")
	}
}

func TestDAQStuckPinsChannel(t *testing.T) {
	plan := &Plan{Seed: 1, Specs: []Spec{
		{Kind: DAQStuck, Channel: power.SubCPU, Start: 0, Magnitude: 42},
	}}
	srv, err := runServer(t, 6, plan, "", 10)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := srv.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.Rows {
		if got := ds.Rows[i].Power[power.SubCPU]; math.Abs(got-42) > 0.2 {
			t.Fatalf("row %d CPU rail = %v, want stuck near 42", i, got)
		}
		if ds.Rows[i].Power[power.SubMemory] < 1 {
			t.Fatalf("row %d memory rail implausibly low — stuck fault leaked across channels", i)
		}
	}
}

func TestDAQDropoutRepairedByRobustMerge(t *testing.T) {
	plan := &Plan{Seed: 1, Specs: []Spec{
		{Kind: DAQDropout, Channel: power.SubIO, Start: 5, Duration: 1.5},
	}}
	srv, err := runServer(t, 7, plan, "", 12)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Dataset(); err == nil {
		// The strict merge happily pairs NaN windows; the robust path
		// must reject and repair them.
		ds, q, err := srv.DatasetRobust()
		if err != nil {
			t.Fatal(err)
		}
		if q.BadWindows == 0 {
			t.Fatalf("dropout produced no rejected windows: %v", q)
		}
		for i := range ds.Rows {
			if math.IsNaN(ds.Rows[i].Power[power.SubIO]) {
				t.Fatalf("NaN survived the robust merge at row %d", i)
			}
		}
	}
}

func TestSyncDropStillAligns(t *testing.T) {
	plan := &Plan{Seed: 3, Specs: []Spec{{Kind: SyncDrop, Start: 0, Magnitude: 0.25}}}
	srv, err := runServer(t, 8, plan, "", 20)
	if err != nil {
		t.Fatal(err)
	}
	ds, q, err := srv.DatasetRobust()
	if err != nil {
		t.Fatal(err)
	}
	if !q.Degraded() || q.Interpolated+q.Dropped == 0 {
		t.Errorf("25%% sync loss reported clean: %v", q)
	}
	if ds.Len() < 10 {
		t.Errorf("only %d rows survived a 25%% sync loss over 20s", ds.Len())
	}
}

func TestCounterGlitchSaturatesSlots(t *testing.T) {
	plan := &Plan{Seed: 4, Specs: []Spec{{Kind: CounterGlitch, CPU: 1, Start: 0, Magnitude: 1}}}
	srv, err := runServer(t, 9, plan, "", 8)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := srv.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	sawFullScale := false
	for i := range ds.Rows {
		cpus := ds.Rows[i].Counters.CPUs
		for c := range cpus {
			fields := counterFields(&cpus[c])
			for _, f := range fields {
				if *f == p4FullScale {
					if c != 1 {
						t.Fatalf("glitch hit cpu %d, spec targets cpu 1", c)
					}
					sawFullScale = true
				}
			}
		}
	}
	if !sawFullScale {
		t.Error("probability-1 glitch never fired")
	}
}

func TestNodeCrashAndWorkerPanic(t *testing.T) {
	crash := &Plan{Seed: 5, Specs: []Spec{{Kind: NodeCrash, Node: "n", Start: 4}}}
	srv, err := runServer(t, 10, crash, "n", 30)
	if !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("err = %v, want ErrInjectedCrash", err)
	}
	ds, err := srv.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if n := ds.Len(); n < 2 || n > 5 {
		t.Errorf("crashed node kept %d samples, want ~4 (died at 4s)", n)
	}

	boom := &Plan{Seed: 5, Specs: []Spec{{Kind: WorkerPanic, Node: "n", Start: 2}}}
	panicked := func() (v any) {
		defer func() { v = recover() }()
		_, _ = runServer(t, 10, boom, "n", 30)
		return nil
	}()
	if panicked == nil {
		t.Fatal("WorkerPanic spec did not panic the run")
	}
}

// TestWorkloadDriftRemixesCounters: the drift fault must leave the
// pre-Start regime untouched, ramp in deterministically, and push the
// counter mix toward memory-bound (fewer uops, more bus traffic).
func TestWorkloadDriftRemixesCounters(t *testing.T) {
	p := &Plan{Seed: 11, Specs: []Spec{
		{Kind: WorkloadDrift, CPU: -1, Start: 10, Magnitude: 0.5},
	}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (&Plan{Specs: []Spec{{Kind: WorkloadDrift, Magnitude: 1.0}}}).Validate(); err == nil {
		t.Error("drift fraction 1.0 accepted")
	}
	in := p.Injector("")
	base := perfctr.CPUCounts{FetchedUops: 1_000_000, BusTx: 200_000, BusPrefetchTx: 40_000, Cycles: 2_800_000}

	before := base
	in.PerturbCounts(5, 0, &before)
	if before != base {
		t.Errorf("counters perturbed before Start: %+v", before)
	}
	mid := base
	in.PerturbCounts(20, 0, &mid) // ramp r = 0.5, m = 0.25
	full := base
	in.PerturbCounts(100, 0, &full) // ramp saturated, m = 0.5
	if mid.FetchedUops >= base.FetchedUops || full.FetchedUops >= mid.FetchedUops {
		t.Errorf("uops did not shrink monotonically: %d -> %d -> %d",
			base.FetchedUops, mid.FetchedUops, full.FetchedUops)
	}
	if mid.BusTx <= base.BusTx || full.BusTx <= mid.BusTx {
		t.Errorf("bus tx did not grow monotonically: %d -> %d -> %d",
			base.BusTx, mid.BusTx, full.BusTx)
	}
	if full.FetchedUops != uint64(float64(base.FetchedUops)*0.5) ||
		full.BusTx != uint64(float64(base.BusTx)*1.5) {
		t.Errorf("saturated drift off target: %+v", full)
	}
	if full.Cycles != base.Cycles {
		t.Errorf("drift touched cycles: %d", full.Cycles)
	}
	// Deterministic: a second injector replays bit for bit.
	again := base
	p.Injector("").PerturbCounts(20, 0, &again)
	if again != mid {
		t.Errorf("drift not deterministic: %+v vs %+v", again, mid)
	}
}
