package experiments

import (
	"trickledown/internal/align"
	"trickledown/internal/core"
	"trickledown/internal/power"
	"trickledown/internal/stats"
	"trickledown/internal/telemetry"
	"trickledown/internal/trace"
)

// Figure is one regenerated trace figure: the measured and modeled
// series plus the Equation 6 average error over the trace, with the
// paper's reported error for comparison.
type Figure struct {
	Trace    *trace.Trace
	AvgErr   float64
	PaperErr float64
}

// modelFigure builds a measured-vs-modeled figure for one model over one
// workload run. If sustained is true the run is extended by the
// instance-ramp time and the ramp cropped away, reproducing the paper's
// mid-run trace windows for the DiskLoad figures.
func (r *Runner) modelFigure(title, wl string, seconds float64, m *core.Model, dcRemove float64, sustained bool) (*Figure, error) {
	spec, err := r.scaledSpec(wl)
	if err != nil {
		return nil, err
	}
	run := r.duration(seconds)
	skip := 0
	if sustained {
		skip = int(float64(spec.Instances-1)*spec.StaggerSec + 30*r.opt.Scale)
		if skip < 10 {
			skip = 10
		}
		run += float64(skip)
	}
	ds, err := r.dataset(wl, run, r.opt.Seed)
	if err != nil {
		return nil, err
	}
	return figureFromDataset(title, ds.Skip(skip), m, dcRemove)
}

// figureFromDataset renders a measured-vs-modeled figure over an
// existing dataset.
func figureFromDataset(title string, ds *align.Dataset, m *core.Model, dcRemove float64) (*Figure, error) {
	measured, modeled := m.Trace(ds)
	tr := trace.New(title)
	// Resolve the series once and size them to the run horizon; the
	// per-row loop then appends without lookups or reallocation.
	tr.Preallocate(len(measured))
	sMeasured := tr.Add("Measured")
	sModeled := tr.Add("Modeled")
	for i := range measured {
		sMeasured.Append(measured[i])
		sModeled.Append(modeled[i])
	}
	var avg float64
	var err error
	if dcRemove > 0 {
		avg, err = stats.AverageErrorOffset(modeled, measured, dcRemove)
	} else {
		avg, err = stats.AverageError(modeled, measured)
	}
	if err != nil {
		return nil, err
	}
	return &Figure{Trace: tr, AvgErr: avg}, nil
}

// Figure2 regenerates "Four CPU Power Model - gcc": the Equation 1 model
// over eight gcc threads started at 30-second intervals.
func (r *Runner) Figure2() (*Figure, error) {
	defer telemetry.StartSpan("experiments.figure2").End()
	est, err := r.Estimator()
	if err != nil {
		return nil, err
	}
	f, err := r.modelFigure("Figure 2: Four CPU Power Model (Eq.1) - gcc", "gcc", 390,
		est.Model(power.SubCPU), 0, false)
	if err != nil {
		return nil, err
	}
	f.PaperErr = PaperFigure2Err
	return f, nil
}

// Figure3 regenerates "Memory Power Model (L3 Misses) - mesa": the
// Equation 2 model on mesa's instance staircase.
func (r *Runner) Figure3() (*Figure, error) {
	defer telemetry.StartSpan("experiments.figure3").End()
	l3, err := r.MemL3Model()
	if err != nil {
		return nil, err
	}
	f, err := r.modelFigure("Figure 3: Memory Power Model (L3 Misses, Eq.2) - mesa", "mesa", 830, l3, 0, false)
	if err != nil {
		return nil, err
	}
	f.PaperErr = PaperFigure3Err
	return f, nil
}

// Figure4 regenerates "Prefetch and Non-Prefetch Bus Transactions -
// mcf": per-second bus transactions per million cycles, split into all,
// non-prefetch and prefetch, over a long staggered mcf run. The paper
// uses it to show why the L3-miss model fails: past the point where all
// hardware threads are busy, prefetch traffic keeps growing while
// demand-miss traffic does not.
func (r *Runner) Figure4() (*trace.Trace, error) {
	defer telemetry.StartSpan("experiments.figure4").End()
	ds, err := r.mcfLong()
	if err != nil {
		return nil, err
	}
	tr := trace.New("Figure 4: Prefetch and Non-Prefetch Bus Transactions - mcf (tx per Mcycle)")
	tr.Preallocate(len(ds.Rows))
	sAll := tr.Add("All")
	sNonPf := tr.Add("Non-Prefetch")
	sPf := tr.Add("Prefetch")
	for i := range ds.Rows {
		m := core.ExtractMetrics(&ds.Rows[i].Counters)
		var all, pf float64
		for c := 0; c < m.NumCPUs; c++ {
			all += m.BusTxPMC[c]
			pf += m.PrefetchPMC[c]
		}
		sAll.Append(all)
		sNonPf.Append(all - pf)
		sPf.Append(pf)
	}
	return tr, nil
}

// Figure5 regenerates "Memory Power Model (Memory Bus Transactions) -
// mcf": the Equation 3 model over the same long mcf run that defeats the
// L3-miss model.
func (r *Runner) Figure5() (*Figure, error) {
	defer telemetry.StartSpan("experiments.figure5").End()
	est, err := r.Estimator()
	if err != nil {
		return nil, err
	}
	ds, err := r.mcfLong()
	if err != nil {
		return nil, err
	}
	f, err := figureFromDataset("Figure 5: Memory Power Model (Bus Transactions, Eq.3) - mcf", ds,
		est.Model(power.SubMemory), 0)
	if err != nil {
		return nil, err
	}
	f.PaperErr = PaperFigure5Err
	return f, nil
}

// Figure5L3 applies the Equation 2 L3-miss model to the same mcf run —
// the failure the paper describes in Section 4.2.2 ("the model fails
// under extreme cases"). It is not a numbered figure in the paper but
// quantifies the narrative between Figures 3 and 5.
func (r *Runner) Figure5L3() (*Figure, error) {
	defer telemetry.StartSpan("experiments.figure5_l3").End()
	l3, err := r.MemL3Model()
	if err != nil {
		return nil, err
	}
	ds, err := r.mcfLong()
	if err != nil {
		return nil, err
	}
	return figureFromDataset("Figure 5 (companion): L3-miss model applied to mcf", ds, l3, 0)
}

// Figure6 regenerates "Disk Power Model (DMA+Interrupt) - Synthetic Disk
// Workload": the Equation 4 model over DiskLoad, with the paper's
// DC-offset-removed error metric.
func (r *Runner) Figure6() (*Figure, error) {
	defer telemetry.StartSpan("experiments.figure6").End()
	est, err := r.Estimator()
	if err != nil {
		return nil, err
	}
	f, err := r.modelFigure("Figure 6: Disk Power Model (DMA+Interrupt, Eq.4) - DiskLoad", "diskload", 190,
		est.Model(power.SubDisk), power.DiskIdlePower(2), true)
	if err != nil {
		return nil, err
	}
	f.PaperErr = PaperFigure6Err
	return f, nil
}

// Figure7 regenerates "I/O Power Model (Interrupt) - Synthetic Disk
// Workload": the Equation 5 model over DiskLoad (raw error; the paper
// notes the DC-removed error is far larger).
func (r *Runner) Figure7() (*Figure, error) {
	defer telemetry.StartSpan("experiments.figure7").End()
	est, err := r.Estimator()
	if err != nil {
		return nil, err
	}
	f, err := r.modelFigure("Figure 7: I/O Power Model (Interrupt, Eq.5) - DiskLoad", "diskload", 190,
		est.Model(power.SubIO), 0, true)
	if err != nil {
		return nil, err
	}
	f.PaperErr = PaperFigure7Err
	return f, nil
}
