// Package experiments regenerates every table and figure of the paper's
// evaluation section on the simulated server: the subsystem power
// characterization (Tables 1 and 2), the model validation errors
// (Tables 3 and 4), the measured-vs-modeled traces (Figures 2, 3, 5, 6
// and 7) and the prefetch/non-prefetch bus-transaction sweep (Figure 4).
//
// Each experiment reports our numbers next to the paper's published
// values; the reproduction target is the *shape* — orderings, ranges and
// crossovers — not the absolute Watts of the authors' testbed.
package experiments

import (
	"errors"
	"log/slog"
	"strconv"
	"strings"
	"sync"
	"time"

	"trickledown/internal/align"
	"trickledown/internal/core"
	"trickledown/internal/machine"
	"trickledown/internal/pool"
	"trickledown/internal/power"
	"trickledown/internal/telemetry"
	"trickledown/internal/tracez"
	"trickledown/internal/workload"
)

// Runner telemetry: cache effectiveness for the shared simulation
// traces. A "hit" includes joining an in-flight run (the sync.Once
// dedup); a "miss" is the caller that actually pays for the simulation.
// Table and figure generation are timed as "experiments.*" spans.
var (
	mCacheHits = telemetry.NewCounter("experiments_cache_hits_total",
		"dataset requests served from the runner cache (or joined in flight)")
	mCacheMisses = telemetry.NewCounter("experiments_cache_misses_total",
		"dataset requests that ran a fresh simulation")
	mCellFailures = telemetry.NewCounter("experiments_cell_failures_total",
		"table cells rendered n/a because their run or validation failed")
)

// Options configures an experiment run.
type Options struct {
	// Seed drives the validation runs; TrainSeed the training runs.
	// They differ by default so models are never validated on the trace
	// they were fitted to (except where the paper itself does so).
	Seed      uint64
	TrainSeed uint64
	// Scale multiplies every run duration (1.0 reproduces the paper's
	// trace lengths; tests use small scales). Durations never drop below
	// 30 seconds.
	Scale float64
	// Workers bounds how many simulations the runner executes
	// concurrently across all table and figure generation; non-positive
	// means runtime.GOMAXPROCS. The bound is shared: concurrent table
	// calls fan out through one scheduler instead of stacking goroutines.
	Workers int
}

// DefaultOptions runs at full paper-scale durations.
func DefaultOptions() Options {
	return Options{Seed: 100, TrainSeed: 10, Scale: 1.0}
}

// Runner executes experiments, caching simulated traces so tables and
// figures that need the same run share it. Distinct runs execute in
// parallel on one bounded worker pool (each simulation is independent
// and seeded), the cache is guarded by a mutex, and duplicate requests
// for the same key share one in-flight run. All Runner methods are safe
// for concurrent use.
type Runner struct {
	opt   Options
	p     *pool.Pool
	mu    sync.Mutex
	cache map[string]*entry

	// cellErrs collects per-cell failures tolerated during table
	// generation (rendered as n/a); see CellErrors.
	cellMu   sync.Mutex
	cellErrs []error

	// failDataset, when set, fails dataset requests for matching
	// workloads — the test hook for the degraded-table path.
	failDataset func(name string) error

	// Lazy one-time training; the sync.Onces make concurrent first
	// callers race-free (the fields are written exactly once, before any
	// reader returns).
	estOnce sync.Once
	est     *core.Estimator
	estErr  error
	memOnce sync.Once
	memL3   *core.Model
	memErr  error
}

// entry is one cached (possibly in-flight) simulation run.
type entry struct {
	once sync.Once
	ds   *align.Dataset
	err  error
}

// NewRunner returns a runner with the given options. A zero Scale is
// replaced by 1.0.
func NewRunner(opt Options) *Runner {
	if opt.Scale <= 0 {
		opt.Scale = 1.0
	}
	return &Runner{opt: opt, p: pool.New(opt.Workers), cache: make(map[string]*entry)}
}

// duration scales d with a 30-second floor.
func (r *Runner) duration(d float64) float64 {
	d *= r.opt.Scale
	if d < 30 {
		return 30
	}
	return d
}

// scaledSpec returns the workload spec with its instance stagger scaled
// alongside the durations, so reduced-scale runs still reach the
// all-instances-running regime.
func (r *Runner) scaledSpec(name string) (workload.Spec, error) {
	spec, err := workload.ByName(name)
	if err != nil {
		return workload.Spec{}, err
	}
	spec.StaggerSec *= r.opt.Scale
	return spec, nil
}

// dataset returns the aligned trace for a workload run, cached.
func (r *Runner) dataset(name string, seconds float64, seed uint64) (*align.Dataset, error) {
	spec, err := r.scaledSpec(name)
	if err != nil {
		return nil, err
	}
	return r.datasetSpec(spec, seconds, seed)
}

// datasetKey builds the cache key for one (spec, duration, seed) run.
// The float parameters are formatted at full precision: %.0f-style
// rounding once collided distinct reduced-scale runs (e.g. Scale=0.01
// staggers 0.3 and 0.9 both printed as "0"), silently sharing the wrong
// trace between experiments.
func datasetKey(spec workload.Spec, seconds float64, seed uint64) string {
	return strings.Join([]string{
		spec.Name,
		strconv.FormatFloat(spec.StaggerSec, 'g', -1, 64),
		strconv.FormatFloat(seconds, 'g', -1, 64),
		strconv.FormatUint(seed, 10),
	}, "/")
}

// datasetSpec runs an explicit (possibly modified) spec, cached and
// deduplicated across goroutines.
func (r *Runner) datasetSpec(spec workload.Spec, seconds float64, seed uint64) (*align.Dataset, error) {
	if r.failDataset != nil {
		if err := r.failDataset(spec.Name); err != nil {
			return nil, err
		}
	}
	key := datasetKey(spec, seconds, seed)
	r.mu.Lock()
	e, ok := r.cache[key]
	if !ok {
		e = &entry{}
		r.cache[key] = e
	}
	r.mu.Unlock()
	if ok {
		mCacheHits.Inc()
	} else {
		mCacheMisses.Inc()
	}
	e.once.Do(func() {
		defer telemetry.StartSpan("experiments.simulate").End()
		// Each simulated cell is one trace on the process recorder:
		// a failed workload shows up in /debug/tracez errored with its
		// cache key, not just as a counter increment.
		rec := tracez.Default()
		tr := rec.StartAt(tracez.NewTraceID(), spec.Name, "experiments", time.Now())
		tr.AddNote(tracez.EvNote, int64(seconds), key)
		defer func() {
			if e.err != nil {
				tr.Outcome = "error"
				tr.AddNote(tracez.EvQuarantine, 0, e.err.Error())
			}
			rec.Finish(tr)
		}()
		cfg := machine.DefaultConfig()
		cfg.Seed = seed
		srv, err := machine.New(cfg, spec)
		if err != nil {
			e.err = err
			return
		}
		srv.Run(seconds)
		e.ds, e.err = srv.Dataset()
	})
	return e.ds, e.err
}

// recordCellErr logs and stores one tolerated cell failure.
func (r *Runner) recordCellErr(err error) {
	mCellFailures.Inc()
	slog.Warn("experiments: cell failed, rendering n/a", "err", err)
	r.cellMu.Lock()
	r.cellErrs = append(r.cellErrs, err)
	r.cellMu.Unlock()
}

// CellErrors returns every failure the table generators tolerated so
// far, joined, or nil when all cells computed. Callers that print
// tables should surface this afterwards: an n/a cell has its cause
// here.
func (r *Runner) CellErrors() error {
	r.cellMu.Lock()
	defer r.cellMu.Unlock()
	return errors.Join(r.cellErrs...)
}

// mcfLong is the long mcf sweep behind Figures 4 and 5: instances join
// at 120-second intervals so utilization climbs in visible steps across
// most of the ~29-minute trace.
func (r *Runner) mcfLong() (*align.Dataset, error) {
	spec, err := r.scaledSpec("mcf")
	if err != nil {
		return nil, err
	}
	spec.StaggerSec = 120 * r.opt.Scale
	return r.datasetSpec(spec, r.duration(1740), r.opt.Seed)
}

// validation returns the validation trace for a workload at its default
// duration.
func (r *Runner) validation(name string) (*align.Dataset, error) {
	spec, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	return r.dataset(name, r.duration(spec.DefaultDuration), r.opt.Seed)
}

// ValidationDataset exposes the runner's cached per-workload validation
// trace (default duration, validation seed) to the conformance
// subsystem: internal/validate drives its cross-validation folds
// through this method so CV and the tables share one simulation cache
// instead of re-running every workload. Safe for concurrent use.
func (r *Runner) ValidationDataset(name string) (*align.Dataset, error) {
	return r.validation(name)
}

// Estimator trains (once) and returns the paper's five production
// models: Eq. 1 on gcc, Eq. 3 on mcf, Eq. 4 and Eq. 5 on DiskLoad, and
// the chipset constant on gcc. Safe for concurrent use: the first
// caller trains, everyone else waits for and shares the result.
func (r *Runner) Estimator() (*core.Estimator, error) {
	r.estOnce.Do(func() {
		r.est, r.estErr = r.trainEstimator()
	})
	return r.est, r.estErr
}

func (r *Runner) trainEstimator() (*core.Estimator, error) {
	defer telemetry.StartSpan("experiments.train").End()
	gcc, err := r.dataset("gcc", r.duration(390), r.opt.TrainSeed)
	if err != nil {
		return nil, err
	}
	mcf, err := r.dataset("mcf", r.duration(600), r.opt.TrainSeed)
	if err != nil {
		return nil, err
	}
	dl, err := r.dataset("diskload", r.duration(300), r.opt.TrainSeed)
	if err != nil {
		return nil, err
	}
	est, err := core.TrainEstimator(core.TrainingSet{
		CPU: gcc, Memory: mcf, Disk: dl, IO: dl, Chipset: gcc,
	})
	if err != nil {
		return nil, err
	}
	// Stamp fit provenance: fingerprint and rate envelopes over the full
	// training corpus, so a serving process can report which data the
	// live coefficients descend from and the adapt layer can detect
	// workload-mix drift without ground-truth rails.
	all := align.Concat(gcc, mcf, dl)
	fp := align.Fingerprint(all)
	est.SetProvenance(&core.Provenance{
		SchemaVersion: core.ProvenanceSchemaVersion,
		Version:       "train-" + fp,
		TrainedAt:     time.Now().UTC().Format(time.RFC3339),
		Fingerprint:   fp,
		Envelopes:     core.ComputeEnvelopes(all),
		Reason:        "offline-train",
	})
	return est, nil
}

// MemL3Model trains (once) the Equation 2 cache-miss memory model on
// mesa, the paper's choice ("the first workload we considered was the
// integer workload mesa"). Safe for concurrent use.
func (r *Runner) MemL3Model() (*core.Model, error) {
	r.memOnce.Do(func() {
		r.memL3, r.memErr = r.trainMemL3()
	})
	return r.memL3, r.memErr
}

func (r *Runner) trainMemL3() (*core.Model, error) {
	defer telemetry.StartSpan("experiments.train_mem_l3").End()
	mesa, err := r.dataset("mesa", r.duration(600), r.opt.TrainSeed)
	if err != nil {
		return nil, err
	}
	return core.Train(core.MemL3Spec(), mesa)
}

// Equations renders every fitted production model plus the Eq. 2
// alternative, for comparison against the paper's published forms.
func (r *Runner) Equations() ([]string, error) {
	est, err := r.Estimator()
	if err != nil {
		return nil, err
	}
	l3, err := r.MemL3Model()
	if err != nil {
		return nil, err
	}
	out := []string{
		est.Model(power.SubCPU).String(),
		est.Model(power.SubChipset).String(),
		est.Model(power.SubMemory).String(),
		l3.String(),
		est.Model(power.SubIO).String(),
		est.Model(power.SubDisk).String(),
	}
	return out, nil
}
