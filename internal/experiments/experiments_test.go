package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"trickledown/internal/power"
)

// testRunner runs everything at reduced scale so the whole suite stays
// fast; assertions are correspondingly loose — they check shape, not
// calibration (cmd/tdtables checks calibration at full scale).
func testRunner() *Runner {
	return NewRunner(Options{Seed: 100, TrainSeed: 10, Scale: 0.35})
}

func TestTable1Shape(t *testing.T) {
	r := testRunner()
	tab, err := r.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	idle := tab.Row("idle")
	gcc := tab.Row("gcc")
	dbt := tab.Row("dbt-2")
	dl := tab.Row("diskload")
	if idle == nil || gcc == nil || dbt == nil || dl == nil {
		t.Fatal("missing rows")
	}
	// Idle is ~46% of peak total; CPU dominates for SPEC; dbt-2 barely
	// above idle; DiskLoad has the highest I/O and disk power.
	if idle.Ours[5] > 160 || idle.Ours[5] < 120 {
		t.Errorf("idle total = %v", idle.Ours[5])
	}
	if gcc.Ours[0] < 0.5*gcc.Ours[5] {
		t.Errorf("gcc CPU share = %v of %v, want >53%%", gcc.Ours[0], gcc.Ours[5])
	}
	if dbt.Ours[0] > 70 {
		t.Errorf("dbt-2 CPU power = %v, should idle waiting for disk", dbt.Ours[0])
	}
	for _, row := range tab.Rows {
		if row.Workload == "diskload" {
			continue
		}
		if row.Ours[3] > dl.Ours[3]+0.1 {
			t.Errorf("%s I/O power %v exceeds diskload %v", row.Workload, row.Ours[3], dl.Ours[3])
		}
		if row.Ours[4] > dl.Ours[4]+0.05 {
			t.Errorf("%s disk power %v exceeds diskload %v", row.Workload, row.Ours[4], dl.Ours[4])
		}
	}
	// Disk swing across all workloads stays within a few percent (the
	// no-spindown server-disk property).
	if dl.Ours[4] > idle.Ours[4]*1.05 {
		t.Errorf("disk power swing too large: %v vs idle %v", dl.Ours[4], idle.Ours[4])
	}
}

func TestTable2Shape(t *testing.T) {
	r := testRunner()
	tab, err := r.Table2()
	if err != nil {
		t.Fatal(err)
	}
	jbb := tab.Row("specjbb")
	art := tab.Row("art")
	if jbb == nil || art == nil {
		t.Fatal("missing rows")
	}
	// SPECjbb's warehouse ramp is the highest-variance CPU workload;
	// art is among the steadiest.
	if jbb.Ours[0] < 10 {
		t.Errorf("specjbb CPU stddev = %v, want large", jbb.Ours[0])
	}
	if art.Ours[0] > 1.5 {
		t.Errorf("art CPU stddev = %v, want small", art.Ours[0])
	}
	if jbb.Ours[0] < 10*art.Ours[0] {
		t.Errorf("specjbb (%v) should dwarf art (%v)", jbb.Ours[0], art.Ours[0])
	}
}

func TestTables3And4Shape(t *testing.T) {
	r := testRunner()
	t3, err := r.Table3()
	if err != nil {
		t.Fatal(err)
	}
	t4, err := r.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) != len(IntegerWorkloads())+1 {
		t.Fatalf("table 3 rows = %d", len(t3.Rows))
	}
	if len(t4.Rows) != len(FPWorkloads())+1 {
		t.Fatalf("table 4 rows = %d", len(t4.Rows))
	}
	// Headline: every subsystem's average error is below the paper's 9%.
	avg := t3.Row("average")
	for j, s := range power.Subsystems() {
		if avg.Ours[j] > 9 {
			t.Errorf("table 3 average %s error = %v%%, headline is <9%%", s, avg.Ours[j])
		}
	}
	avg4 := t4.Row("average")
	for j, s := range power.Subsystems() {
		if avg4.Ours[j] > 9 {
			t.Errorf("table 4 average %s error = %v%%", s, avg4.Ours[j])
		}
	}
	// mcf is the worst CPU row (the fetch model misses speculative
	// search power).
	mcf := t3.Row("mcf")
	if mcf.Ours[0] < 5 {
		t.Errorf("mcf CPU error = %v%%, expected the paper's pathology (>5%%)", mcf.Ours[0])
	}
	for _, row := range append(t3.Rows, t4.Rows...) {
		if row.Workload == "mcf" || row.Workload == "average" {
			continue
		}
		if row.Ours[0] > mcf.Ours[0] {
			t.Errorf("%s CPU error %v%% exceeds mcf's %v%%", row.Workload, row.Ours[0], mcf.Ours[0])
		}
	}
	// I/O and disk models stay comfortably accurate everywhere.
	for _, row := range append(t3.Rows, t4.Rows...) {
		if row.Ours[3] > 4 {
			t.Errorf("%s I/O error = %v%%", row.Workload, row.Ours[3])
		}
		if row.Ours[4] > 2 {
			t.Errorf("%s disk error = %v%%", row.Workload, row.Ours[4])
		}
	}
	// Memory: the bus model is best on its training workload.
	if t3.Row("mcf").Ours[2] > 2 {
		t.Errorf("mcf memory error = %v%%, should be near-training quality", t3.Row("mcf").Ours[2])
	}
}

func TestTableRender(t *testing.T) {
	r := testRunner()
	tab, err := r.Table1()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "workload", "paper", "diskload", "Total"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	if tab.Row("nope") != nil {
		t.Error("Row(nope) should be nil")
	}
}

func TestEquationsShape(t *testing.T) {
	r := testRunner()
	eqs, err := r.Equations()
	if err != nil {
		t.Fatal(err)
	}
	if len(eqs) != 6 {
		t.Fatalf("equations = %d", len(eqs))
	}
	joined := strings.Join(eqs, "\n")
	for _, want := range []string{"Eq.1", "Eq.2", "Eq.3", "Eq.4", "Eq.5", "const"} {
		if !strings.Contains(joined, want) {
			t.Errorf("equations missing %q:\n%s", want, joined)
		}
	}
}

func TestFigures(t *testing.T) {
	r := testRunner()
	for name, get := range map[string]func() (*Figure, error){
		"fig2": r.Figure2, "fig3": r.Figure3, "fig5": r.Figure5,
		"fig5l3": r.Figure5L3, "fig6": r.Figure6, "fig7": r.Figure7,
	} {
		f, err := get()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if f.Trace.Len() < 20 {
			t.Errorf("%s: only %d samples", name, f.Trace.Len())
		}
		if f.Trace.Series("Measured") == nil || f.Trace.Series("Modeled") == nil {
			t.Errorf("%s: missing series", name)
		}
		if f.AvgErr < 0 || f.AvgErr > 60 {
			t.Errorf("%s: avg error = %v%%", name, f.AvgErr)
		}
	}
}

func TestFigureErrorsTrackPaper(t *testing.T) {
	r := testRunner()
	f2, err := r.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if f2.AvgErr > 8 {
		t.Errorf("figure 2 error = %v%%, paper reports 3.1%%", f2.AvgErr)
	}
	f5, err := r.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if f5.AvgErr > 6 {
		t.Errorf("figure 5 error = %v%%, paper reports 2.2%%", f5.AvgErr)
	}
	f7, err := r.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if f7.AvgErr > 4 {
		t.Errorf("figure 7 error = %v%%, paper reports <1%%", f7.AvgErr)
	}
}

func TestFigure4PrefetchGrowth(t *testing.T) {
	r := NewRunner(Options{Seed: 100, TrainSeed: 10, Scale: 0.15})
	tr, err := r.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	pf := tr.Series("Prefetch")
	np := tr.Series("Non-Prefetch")
	all := tr.Series("All")
	if pf == nil || np == nil || all == nil {
		t.Fatal("missing series")
	}
	n := len(pf.Values)
	// Prefetch share of traffic grows from the early ramp to the
	// saturated tail — the paper's model-failure signature.
	early := pf.Values[n/6] / (all.Values[n/6] + 1e-9)
	late := pf.Values[n-2] / (all.Values[n-2] + 1e-9)
	if late <= early {
		t.Errorf("prefetch share did not grow: %v -> %v", early, late)
	}
	for i := range pf.Values {
		total := pf.Values[i] + np.Values[i]
		if diff := total - all.Values[i]; diff > 0.02*all.Values[i]+1 || diff < -0.02*all.Values[i]-1 {
			t.Errorf("sample %d: prefetch+nonprefetch = %v, all = %v", i, total, all.Values[i])
		}
	}
}

func TestRunnerCaching(t *testing.T) {
	r := testRunner()
	a, err := r.dataset("idle", 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.dataset("idle", 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical runs not cached")
	}
	c, err := r.dataset("idle", 30, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different seeds shared a cache entry")
	}
}

// TestRunnerCacheKeyPrecision is the regression test for the cache-key
// collision: two specs whose staggers (and durations) round to the same
// integer must still get distinct cache entries. At Scale=0.01 the
// paper-order staggers 30s and 90s become 0.3 and 0.9 — both formerly
// printed as "0" by the %.0f key.
func TestRunnerCacheKeyPrecision(t *testing.T) {
	r := NewRunner(Options{Seed: 100, TrainSeed: 10, Scale: 0.01})
	specA, err := r.scaledSpec("gcc")
	if err != nil {
		t.Fatal(err)
	}
	specB := specA
	specA.StaggerSec = 0.3
	specB.StaggerSec = 0.9
	if datasetKey(specA, 30, 1) == datasetKey(specB, 30, 1) {
		t.Fatalf("distinct staggers share cache key %q", datasetKey(specA, 30, 1))
	}
	a, err := r.datasetSpec(specA, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.datasetSpec(specB, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("distinct staggers shared one cached trace")
	}
	// Sub-second durations must not collide either (30.2 vs 30.4 both
	// rounded to "30").
	c, err := r.datasetSpec(specA, 30.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := r.datasetSpec(specA, 30.4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c == d {
		t.Error("distinct durations shared one cached trace")
	}
	// Identical parameters still share.
	e, err := r.datasetSpec(specA, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e != a {
		t.Error("identical spec not cached")
	}
}

// TestRunnerConcurrentTraining exercises the lazy Estimator/MemL3Model
// init from many goroutines at once — the race fixed by sync.Once; it is
// meaningful under -race. All callers must observe the same trained
// models.
func TestRunnerConcurrentTraining(t *testing.T) {
	r := NewRunner(Options{Seed: 100, TrainSeed: 10, Scale: 0.05, Workers: 4})
	const callers = 8
	ests := make([]interface{}, callers)
	mems := make([]interface{}, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			est, err := r.Estimator()
			if err != nil {
				t.Error(err)
				return
			}
			m, err := r.MemL3Model()
			if err != nil {
				t.Error(err)
				return
			}
			ests[i] = est
			mems[i] = m
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if ests[i] != ests[0] {
			t.Errorf("caller %d saw a different estimator", i)
		}
		if mems[i] != mems[0] {
			t.Errorf("caller %d saw a different L3 model", i)
		}
	}
}

// TestTablesConcurrent regenerates two tables from concurrent
// goroutines, the tdtables/tdreport pattern that used to race on the
// lazy estimator init; meaningful under -race.
func TestTablesConcurrent(t *testing.T) {
	r := NewRunner(Options{Seed: 100, TrainSeed: 10, Scale: 0.05, Workers: 4})
	var wg sync.WaitGroup
	for _, get := range []func() (*Table, error){r.Table3, r.Table4} {
		wg.Add(1)
		go func(get func() (*Table, error)) {
			defer wg.Done()
			if _, err := get(); err != nil {
				t.Error(err)
			}
		}(get)
	}
	wg.Wait()
}

func TestRunnerBadWorkload(t *testing.T) {
	r := testRunner()
	if _, err := r.dataset("nope", 30, 1); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := r.validation("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestDurationFloor(t *testing.T) {
	r := NewRunner(Options{Scale: 0.0001})
	if d := r.duration(390); d != 30 {
		t.Errorf("duration floor = %v", d)
	}
	if NewRunner(Options{}).opt.Scale != 1 {
		t.Error("zero scale not defaulted")
	}
}

func TestExtensions(t *testing.T) {
	r := testRunner()
	comps, err := r.Extensions()
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 3 {
		t.Fatalf("extensions = %d", len(comps))
	}
	for _, c := range comps {
		if c.BaselineErr < 0 || c.VariantErr < 0 {
			t.Errorf("%s: negative error", c.Name)
		}
		if c.String() == "" {
			t.Error("empty comparison string")
		}
	}
	// The three headline directions: DVFS-aware beats fixed-frequency,
	// history beats stateless on spindown hardware, counters beat OS
	// utilization.
	if comps[0].VariantErr >= comps[0].BaselineErr {
		t.Errorf("DVFS: %s", comps[0])
	}
	if comps[1].VariantErr >= comps[1].BaselineErr {
		t.Errorf("spindown: %s", comps[1])
	}
	if comps[2].VariantErr >= comps[2].BaselineErr {
		t.Errorf("os-util: %s", comps[2])
	}
}
