package experiments

import (
	"math"
	"testing"
)

// TestTable1Calibration pins the substrate to the paper's Table 1
// numerically: every workload's sustained per-subsystem power must stay
// within tolerance of the published Watts. This is the regression guard
// for the workload profiles and ground-truth power constants — if a
// profile or a power coefficient drifts, this fails before the error
// tables silently change meaning.
func TestTable1Calibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep")
	}
	// Scale 1.0 durations make this the slowest test in the suite
	// (~15 s); scale 0.6 keeps instance ramps realistic while halving
	// the cost.
	r := NewRunner(Options{Seed: 100, TrainSeed: 10, Scale: 0.6})
	tab, err := r.Table1()
	if err != nil {
		t.Fatal(err)
	}
	// Relative tolerance per subsystem: CPU and memory swing with phase
	// randomness; chipset carries the domain artifact; I/O and disk are
	// tightly pinned. Disk gets 3%: the paper reads 22.1 W for several
	// workloads that do no disk I/O at all (their rail coupling), while
	// our disks correctly sit at the 21.6 W idle floor.
	tol := []float64{0.08, 0.06, 0.08, 0.03, 0.03}
	for _, row := range tab.Rows {
		for j, want := range row.Paper[:5] {
			got := row.Ours[j]
			if rel := math.Abs(got-want) / want; rel > tol[j] {
				t.Errorf("%s %s: ours %.1f W vs paper %.1f W (%.1f%% off, tol %.0f%%)",
					row.Workload, tab.Columns[j], got, want, 100*rel, 100*tol[j])
			}
		}
	}
}
