package experiments

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
)

// failingRunner fails every dataset request for the named workload —
// the injected equivalent of one validation run dying mid-suite.
func failingRunner(name string) *Runner {
	r := NewRunner(Options{Seed: 100, TrainSeed: 10, Scale: 0.01, Workers: 4})
	r.failDataset = func(wl string) error {
		if wl == name {
			return fmt.Errorf("injected: %s run lost", name)
		}
		return nil
	}
	return r
}

// TestErrorTableDegradesFailedCells: a workload whose validation fails
// becomes an n/a row, the remaining rows and their average still
// compute, and CellErrors explains what was lost. vortex is validation
// only — the training traces (gcc, mcf, diskload) stay healthy.
func TestErrorTableDegradesFailedCells(t *testing.T) {
	r := failingRunner("vortex")
	tab, err := r.Table3()
	if err != nil {
		t.Fatal(err)
	}
	// One row per workload plus the average row, vortex present but n/a.
	if len(tab.Rows) != len(IntegerWorkloads())+1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	vortex := tab.Row("vortex")
	if vortex == nil {
		t.Fatal("failed workload dropped from the table")
	}
	for j, v := range vortex.Ours {
		if !math.IsNaN(v) {
			t.Errorf("vortex cell %d = %v, want NaN", j, v)
		}
	}
	gcc := tab.Row("gcc")
	avg := tab.Row("average")
	for j := range gcc.Ours {
		if math.IsNaN(gcc.Ours[j]) {
			t.Errorf("healthy row poisoned at column %d", j)
		}
		if math.IsNaN(avg.Ours[j]) {
			t.Errorf("average poisoned by the n/a row at column %d", j)
		}
	}
	cellErr := r.CellErrors()
	if cellErr == nil || !strings.Contains(cellErr.Error(), "vortex run lost") {
		t.Errorf("CellErrors = %v, want the injected cause", cellErr)
	}
	// Rendering prints n/a, never NaN.
	var b strings.Builder
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "n/a") || strings.Contains(b.String(), "NaN") {
		t.Errorf("render:\n%s", b.String())
	}
}

// TestCharacterizeDegradesFailedCells covers Table 1's path, including
// the NaN total for the failed row.
func TestCharacterizeDegradesFailedCells(t *testing.T) {
	r := failingRunner("mesa")
	tab, err := r.Table1()
	if err != nil {
		t.Fatal(err)
	}
	mesa := tab.Row("mesa")
	if mesa == nil {
		t.Fatal("failed workload dropped from the table")
	}
	for j, v := range mesa.Ours {
		if !math.IsNaN(v) {
			t.Errorf("mesa cell %d = %v, want NaN", j, v)
		}
	}
	if idle := tab.Row("idle"); math.IsNaN(idle.Ours[0]) {
		t.Error("healthy row poisoned")
	}
	if r.CellErrors() == nil {
		t.Error("CellErrors lost the failure")
	}
}

// TestFullyDegradedTableAverageIsNA: when every validation run fails
// after a healthy training pass, the average row must degrade to n/a
// like its inputs — not divide by zero or claim a spurious 0.0% error.
func TestFullyDegradedTableAverageIsNA(t *testing.T) {
	r := NewRunner(Options{Seed: 100, TrainSeed: 10, Scale: 0.01, Workers: 4})
	// Train while the datasets are healthy...
	if _, err := r.Estimator(); err != nil {
		t.Fatal(err)
	}
	// ...then lose every validation run.
	r.failDataset = func(wl string) error {
		return fmt.Errorf("injected: %s run lost", wl)
	}
	tab, err := r.Table3()
	if err != nil {
		t.Fatalf("a fully degraded table should still render, got %v", err)
	}
	for _, row := range tab.Rows {
		for j, v := range row.Ours {
			if !math.IsNaN(v) {
				t.Errorf("%s cell %d = %v, want NaN", row.Workload, j, v)
			}
		}
	}
	avg := tab.Row("average")
	if avg == nil {
		t.Fatal("average row missing")
	}
	var b strings.Builder
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "n/a") || strings.Contains(b.String(), "NaN") {
		t.Errorf("render:\n%s", b.String())
	}
	if r.CellErrors() == nil {
		t.Error("CellErrors lost the failures")
	}
}

// TestTrainingFailureIsStillFatal: losing a training trace leaves
// nothing to validate against, so the table fails outright rather than
// rendering all-n/a noise.
func TestTrainingFailureIsStillFatal(t *testing.T) {
	r := failingRunner("gcc") // gcc trains the CPU and chipset models
	if _, err := r.Table3(); err == nil {
		t.Error("table generated without a CPU training trace")
	}
}

// TestCellErrorsNilWhenHealthy: the joined summary is nil on a clean
// suite.
func TestCellErrorsNilWhenHealthy(t *testing.T) {
	r := NewRunner(Options{Seed: 100, TrainSeed: 10, Scale: 0.01, Workers: 4})
	if _, err := r.Table2(); err != nil {
		t.Fatal(err)
	}
	if err := r.CellErrors(); err != nil {
		t.Errorf("CellErrors on a healthy run = %v", err)
	}
	var none []error
	if got := errors.Join(none...); got != nil {
		t.Fatalf("errors.Join sanity: %v", got)
	}
}
