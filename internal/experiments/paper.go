package experiments

// Published results from the paper, used for side-by-side comparison in
// every regenerated table. Ordering of the value slices follows
// power.Subsystems(): CPU, Chipset, Memory, I/O, Disk.

// PaperTable1 is "Table 1: Subsystem Average Power (Watts)".
var PaperTable1 = map[string][5]float64{
	"idle":     {38.4, 19.9, 28.1, 32.9, 21.6},
	"gcc":      {162, 20.0, 34.2, 32.9, 21.8},
	"mcf":      {167, 20.0, 39.6, 32.9, 21.9},
	"vortex":   {175, 17.3, 35.0, 32.9, 21.9},
	"art":      {159, 18.7, 35.8, 33.5, 21.9},
	"lucas":    {135, 19.5, 46.4, 33.5, 22.1},
	"mesa":     {165, 16.8, 33.9, 33.0, 21.8},
	"mgrid":    {146, 19.0, 45.1, 32.9, 22.1},
	"wupwise":  {167, 18.8, 45.2, 33.5, 22.1},
	"dbt-2":    {48.3, 19.8, 29.0, 33.2, 21.6},
	"specjbb":  {112, 18.7, 37.8, 32.9, 21.9},
	"diskload": {123, 19.9, 42.5, 35.2, 22.2},
}

// PaperTable1Total is Table 1's "Total" column.
var PaperTable1Total = map[string]float64{
	"idle": 141, "gcc": 271, "mcf": 281, "vortex": 282, "art": 269,
	"lucas": 257, "mesa": 271, "mgrid": 265, "wupwise": 287, "dbt-2": 152,
	"specjbb": 223, "diskload": 243,
}

// PaperTable2 is "Table 2: Subsystem Power Standard Deviation (Watts)".
var PaperTable2 = map[string][5]float64{
	"idle":     {0.340, 0.0918, 0.0328, 0.127, 0.0271},
	"gcc":      {8.37, 0.226, 2.36, 0.133, 0.0532},
	"mcf":      {5.62, 0.171, 1.43, 0.125, 0.0328},
	"vortex":   {1.22, 0.0711, 0.719, 0.135, 0.0171},
	"art":      {0.393, 0.0686, 0.190, 0.135, 0.00550},
	"lucas":    {1.64, 0.123, 0.266, 0.133, 0.00719},
	"mesa":     {1.00, 0.0587, 0.299, 0.127, 0.00839},
	"mgrid":    {0.525, 0.0469, 0.151, 0.132, 0.00523},
	"wupwise":  {2.60, 0.131, 0.427, 0.135, 0.0110},
	"dbt-2":    {8.23, 0.133, 0.688, 0.145, 0.0349},
	"specjbb":  {26.2, 0.327, 2.88, 0.0558, 0.0734},
	"diskload": {18.6, 0.0948, 3.80, 0.153, 0.0746},
}

// PaperTable3 is "Table 3: Integer Average Model Error" (percent).
var PaperTable3 = map[string][5]float64{
	"idle":     {1.74, 0.586, 3.80, 0.356, 0.172},
	"gcc":      {4.23, 10.9, 10.7, 0.411, 0.201},
	"mcf":      {12.3, 7.7, 2.2, 0.332, 0.154},
	"vortex":   {6.53, 13.0, 15.6, 0.295, 0.332},
	"dbt-2":    {9.67, 0.561, 2.17, 5.62, 0.176},
	"specjbb":  {9.00, 7.45, 6.14, 0.393, 0.144},
	"diskload": {5.93, 3.06, 2.93, 0.706, 0.161},
}

// PaperTable4 is "Table 4: Floating-Point Average Model Error" (percent).
var PaperTable4 = map[string][5]float64{
	"art":     {9.65, 5.87, 8.92, 0.240, 1.90},
	"lucas":   {7.69, 1.46, 17.51, 0.245, 0.307},
	"mesa":    {5.59, 11.3, 8.31, 0.334, 0.168},
	"mgrid":   {0.360, 4.51, 11.4, 0.365, 0.546},
	"wupwise": {7.34, 5.21, 15.9, 0.588, 0.420},
}

// Paper per-figure average errors for the trace experiments.
const (
	PaperFigure2Err = 3.1  // CPU model on gcc
	PaperFigure3Err = 1.0  // L3-miss memory model on mesa
	PaperFigure5Err = 2.2  // bus-transaction memory model on mcf
	PaperFigure6Err = 1.75 // disk model on DiskLoad, DC removed
	PaperFigure7Err = 1.0  // I/O model on DiskLoad (raw; 32% with DC removed)
)
