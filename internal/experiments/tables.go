package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"strings"

	"trickledown/internal/align"
	"trickledown/internal/power"
	"trickledown/internal/stats"
	"trickledown/internal/telemetry"
	"trickledown/internal/workload"
)

// Table is one regenerated paper table, with the published values kept
// alongside for comparison.
type Table struct {
	// Title names the experiment.
	Title string
	// Columns are the value column headers (after the workload column).
	Columns []string
	// Rows holds one entry per workload, in paper order.
	Rows []TableRow
}

// TableRow pairs our measured values with the paper's for one workload.
type TableRow struct {
	Workload string
	Ours     []float64
	Paper    []float64
}

// Render writes the table with ours/paper value pairs.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
		return err
	}
	header := fmt.Sprintf("%-10s %-6s", "workload", "series")
	for _, c := range t.Columns {
		header += fmt.Sprintf(" %9s", c)
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(header))); err != nil {
		return err
	}
	row := func(name, series string, vals []float64) error {
		line := fmt.Sprintf("%-10s %-6s", name, series)
		for _, v := range vals {
			if math.IsNaN(v) {
				// A failed cell (see Runner.CellErrors), not a number.
				line += fmt.Sprintf(" %9s", "n/a")
			} else {
				line += fmt.Sprintf(" %9.3f", v)
			}
		}
		_, err := fmt.Fprintln(w, line)
		return err
	}
	for _, r := range t.Rows {
		if err := row(r.Workload, "ours", r.Ours); err != nil {
			return err
		}
		if len(r.Paper) > 0 {
			if err := row("", "paper", r.Paper); err != nil {
				return err
			}
		}
	}
	return nil
}

// Row returns the row for a workload, or nil.
func (t *Table) Row(name string) *TableRow {
	for i := range t.Rows {
		if t.Rows[i].Workload == name {
			return &t.Rows[i]
		}
	}
	return nil
}

// subsystemColumns names the five rails in table order.
func subsystemColumns() []string {
	out := make([]string, 0, power.NumSubsystems)
	for _, s := range power.Subsystems() {
		out = append(out, s.String())
	}
	return out
}

// Shared read-only column headers and row order, built once instead of
// per table.
var (
	subsysCols      = subsystemColumns()
	subsysTotalCols = append(subsystemColumns(), "Total")
	tableNames      = workload.TableOrder()
)

// sustainedWindow returns the first dataset row index at which all of a
// workload's staggered instances are running (plus settling time),
// clamped so at least the last third of the trace is always used.
func sustainedWindow(spec workload.Spec, rows int) int {
	ramp := int(float64(spec.Instances-1)*spec.StaggerSec) + 30
	if lim := rows * 2 / 3; ramp > lim {
		ramp = lim
	}
	if ramp < 0 {
		ramp = 0
	}
	return ramp
}

// naRow is a full-width failed row: every cell NaN, rendered "n/a".
func naRow() []float64 {
	row := make([]float64, power.NumSubsystems)
	for i := range row {
		row[i] = math.NaN()
	}
	return row
}

// characterize runs every workload (in parallel on the runner's worker
// pool) and applies fn to the sustained window of each subsystem's
// measured power series. The result is indexed like workload.TableOrder.
// Each item writes only its own slot, so the result is independent of
// scheduling order. A workload whose run fails degrades to an n/a row
// (recorded in CellErrors) instead of losing the whole table.
func (r *Runner) characterize(fn func([]float64) float64) ([][]float64, error) {
	names := tableNames
	// One backing slab for every workload's row: each worker writes only
	// its own non-overlapping window, and the table build downstream never
	// appends through these slices.
	backing := make([]float64, len(names)*power.NumSubsystems)
	vals := make([][]float64, len(names))
	for i := range vals {
		vals[i] = backing[i*power.NumSubsystems : (i+1)*power.NumSubsystems : (i+1)*power.NumSubsystems]
	}
	naFill := func(row []float64) {
		for j := range row {
			row[j] = math.NaN()
		}
	}
	err := r.p.Run(context.Background(), len(names), func(_ context.Context, i int) error {
		name := names[i]
		spec, err := r.scaledSpec(name)
		if err != nil {
			naFill(vals[i])
			r.recordCellErr(fmt.Errorf("experiments: characterizing %s: %w", name, err))
			return nil
		}
		ds, err := r.validation(name)
		if err != nil {
			naFill(vals[i])
			r.recordCellErr(fmt.Errorf("experiments: characterizing %s: %w", name, err))
			return nil
		}
		// Trim the warmup window without Skip's heap-allocated dataset:
		// a stack value over the shared rows is all the column
		// extraction needs.
		win := align.Dataset{Rows: ds.Rows[sustainedWindow(spec, ds.Len()):]}
		var col []float64 // one scratch column, reused across subsystems
		for j, s := range power.Subsystems() {
			col = win.PowerColumnInto(s, col)
			vals[i][j] = fn(col)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return vals, nil
}

// Table1 regenerates "Subsystem Average Power (Watts)", including the
// total column. Averages are taken over the sustained window (all
// instances running); the paper's long looped runs make its averages
// sustained too.
func (r *Runner) Table1() (*Table, error) {
	defer telemetry.StartSpan("experiments.table1").End()
	means, err := r.characterize(stats.Mean)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Table 1: Subsystem Average Power (Watts)",
		Columns: subsysTotalCols,
	}
	names := tableNames
	t.Rows = make([]TableRow, 0, len(names))
	// Both value series of every row carved from one slab; the full-cap
	// reslices keep later appends from clobbering earlier rows.
	cols := power.NumSubsystems + 1
	slab := make([]float64, 0, 2*cols*len(names))
	carve := func(vals []float64, extra float64) []float64 {
		start := len(slab)
		slab = append(slab, vals...)
		slab = append(slab, extra)
		return slab[start:len(slab):len(slab)]
	}
	for k, name := range names {
		ours := means[k]
		total := 0.0
		for _, v := range ours {
			total += v
		}
		paper := PaperTable1[name]
		t.Rows = append(t.Rows, TableRow{
			Workload: name,
			Ours:     carve(ours, total),
			Paper:    carve(paper[:], PaperTable1Total[name]),
		})
	}
	return t, nil
}

// Table2 regenerates "Subsystem Power Standard Deviation (Watts)".
func (r *Runner) Table2() (*Table, error) {
	defer telemetry.StartSpan("experiments.table2").End()
	sds, err := r.characterize(stats.StdDev)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Table 2: Subsystem Power Standard Deviation (Watts)",
		Columns: subsysCols,
	}
	names := tableNames
	t.Rows = make([]TableRow, 0, len(names))
	for k, name := range names {
		paper := PaperTable2[name]
		t.Rows = append(t.Rows, TableRow{Workload: name, Ours: sds[k], Paper: paper[:]})
	}
	return t, nil
}

// modelErrors validates the trained estimator on one workload, returning
// the Equation 6 average error (percent) per subsystem.
func (r *Runner) modelErrors(name string) ([]float64, error) {
	est, err := r.Estimator()
	if err != nil {
		return nil, err
	}
	ds, err := r.validation(name)
	if err != nil {
		return nil, err
	}
	out := make([]float64, 0, power.NumSubsystems)
	for _, s := range power.Subsystems() {
		e, err := est.Model(s).Validate(ds)
		if err != nil {
			return nil, fmt.Errorf("experiments: validating %s on %s: %w", s, name, err)
		}
		out = append(out, e)
	}
	return out, nil
}

// errorTable builds a validation-error table for the given workloads,
// validating them in parallel on the runner's worker pool (training
// happens once, up front). Rows land at their workload's index, so the
// table order is the paper's regardless of scheduling. A workload whose
// validation fails degrades to an n/a row (recorded in CellErrors); the
// per-subsystem averages are taken over the rows that computed. Only a
// training failure — nothing to validate anything against — fails the
// whole table.
func (r *Runner) errorTable(title string, names []string, paper map[string][5]float64) (*Table, error) {
	if _, err := r.Estimator(); err != nil {
		return nil, err
	}
	t := &Table{Title: title, Columns: subsysCols}
	t.Rows = make([]TableRow, len(names))
	err := r.p.Run(context.Background(), len(names), func(_ context.Context, i int) error {
		name := names[i]
		ours, err := r.modelErrors(name)
		if err != nil {
			ours = naRow()
			r.recordCellErr(err)
		}
		row := TableRow{Workload: name, Ours: ours}
		if p, ok := paper[name]; ok {
			row.Paper = p[:]
		}
		t.Rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Per-subsystem averages over the rows that computed.
	avg := TableRow{Workload: "average"}
	avg.Ours = make([]float64, power.NumSubsystems)
	avg.Paper = make([]float64, power.NumSubsystems)
	for j := 0; j < power.NumSubsystems; j++ {
		good := 0
		for _, row := range t.Rows {
			if !math.IsNaN(row.Ours[j]) {
				avg.Ours[j] += row.Ours[j]
				good++
			}
			if len(row.Paper) > j {
				avg.Paper[j] += row.Paper[j] / float64(len(names))
			}
		}
		if good > 0 {
			avg.Ours[j] /= float64(good)
		} else {
			avg.Ours[j] = math.NaN()
		}
	}
	t.Rows = append(t.Rows, avg)
	return t, nil
}

// IntegerWorkloads lists Table 3's rows in paper order.
func IntegerWorkloads() []string {
	return []string{"idle", "gcc", "mcf", "vortex", "dbt-2", "specjbb", "diskload"}
}

// FPWorkloads lists Table 4's rows in paper order.
func FPWorkloads() []string {
	return []string{"art", "lucas", "mesa", "mgrid", "wupwise"}
}

// Table3 regenerates "Integer Average Model Error (%)".
func (r *Runner) Table3() (*Table, error) {
	defer telemetry.StartSpan("experiments.table3").End()
	return r.errorTable("Table 3: Integer Average Model Error (%)", IntegerWorkloads(), PaperTable3)
}

// Table4 regenerates "Floating-Point Average Model Error (%)".
func (r *Runner) Table4() (*Table, error) {
	defer telemetry.StartSpan("experiments.table4").End()
	return r.errorTable("Table 4: Floating-Point Average Model Error (%)", FPWorkloads(), PaperTable4)
}
