package experiments

import (
	"fmt"

	"trickledown/internal/align"
	"trickledown/internal/core"
	"trickledown/internal/disk"
	"trickledown/internal/machine"
	"trickledown/internal/workload"
)

// Extension experiments: studies beyond the paper's evaluation that
// probe where the trickle-down approach ends. Each returns a small
// comparison the report renders; the quantitative claims are asserted in
// tests, not just printed.

// Comparison pairs two models' Equation 6 errors on one evaluation.
type Comparison struct {
	// Name describes the study.
	Name string
	// Baseline and Variant label the two models.
	Baseline, Variant string
	// BaselineErr and VariantErr are their Eq. 6 errors, percent.
	BaselineErr, VariantErr float64
}

func (c Comparison) String() string {
	return fmt.Sprintf("%s: %s %.2f%% vs %s %.2f%%",
		c.Name, c.Baseline, c.BaselineErr, c.Variant, c.VariantErr)
}

// dvfsRun runs gcc stepping through the given operating points.
func (r *Runner) dvfsRun(schedule []float64, secsPer float64, seed uint64) (*align.Dataset, error) {
	spec, err := workload.ByName("gcc")
	if err != nil {
		return nil, err
	}
	spec.StaggerSec = 1
	cfg := machine.DefaultConfig()
	cfg.Seed = seed
	srv, err := machine.New(cfg, spec)
	if err != nil {
		return nil, err
	}
	srv.Run(20)
	for _, f := range schedule {
		srv.SetFreqScaleAll(f)
		srv.Run(secsPer * r.opt.Scale)
	}
	ds, err := srv.Dataset()
	if err != nil {
		return nil, err
	}
	return ds.Skip(20), nil
}

// ExtensionDVFS compares fixed-frequency Eq. 1 against the
// frequency-aware variant on a machine at a 0.6x operating point.
func (r *Runner) ExtensionDVFS() (*Comparison, error) {
	fixedTrain, err := r.dvfsRun([]float64{1.0}, 120, r.opt.TrainSeed)
	if err != nil {
		return nil, err
	}
	eq1, err := core.Train(core.CPUSpec(), fixedTrain)
	if err != nil {
		return nil, err
	}
	sweepTrain, err := r.dvfsRun([]float64{1.0, 0.8, 0.6, 0.5, 0.9, 0.7}, 25, r.opt.TrainSeed)
	if err != nil {
		return nil, err
	}
	aware, err := core.Train(core.CPUDVFSSpec(), sweepTrain)
	if err != nil {
		return nil, err
	}
	eval, err := r.dvfsRun([]float64{0.6}, 60, r.opt.Seed)
	if err != nil {
		return nil, err
	}
	be, err := eq1.Validate(eval)
	if err != nil {
		return nil, err
	}
	ve, err := aware.Validate(eval)
	if err != nil {
		return nil, err
	}
	return &Comparison{
		Name:     "CPU model under DVFS (0.6x operating point)",
		Baseline: "fixed-frequency Eq.1", BaselineErr: be,
		Variant: "frequency-aware Eq.1 (fV²)", VariantErr: ve,
	}, nil
}

// spindownRun runs a single DiskLoad instance on mobile-policy disks,
// which cycle between rotation and standby.
func (r *Runner) spindownRun(seed uint64, seconds float64) (*align.Dataset, error) {
	cfg := machine.DefaultConfig()
	cfg.Seed = seed
	cfg.DiskPolicy = disk.MobilePolicy()
	srv, err := machine.NewMixed(cfg, []machine.Placement{{Workload: "diskload", Thread: 0}})
	if err != nil {
		return nil, err
	}
	srv.Run(seconds * r.opt.Scale)
	return srv.Dataset()
}

// ExtensionSpindown compares the stateless Eq. 4 against the
// history-aware standby model on disks with power management.
func (r *Runner) ExtensionSpindown() (*Comparison, error) {
	train, err := r.spindownRun(r.opt.TrainSeed, 260)
	if err != nil {
		return nil, err
	}
	eval, err := r.spindownRun(r.opt.Seed, 200)
	if err != nil {
		return nil, err
	}
	flat, err := core.Train(core.DiskSpec(), train)
	if err != nil {
		return nil, err
	}
	seq, err := core.TrainSeq(core.DiskStandbySpec(0.25), train)
	if err != nil {
		return nil, err
	}
	be, err := flat.Validate(eval)
	if err != nil {
		return nil, err
	}
	ve, err := seq.Validate(eval)
	if err != nil {
		return nil, err
	}
	return &Comparison{
		Name:     "Disk model on spindown hardware",
		Baseline: "stateless Eq.4", BaselineErr: be,
		Variant: "Eq.4 + EWMA recent-activity", VariantErr: ve,
	}, nil
}

// ExtensionOSUtil compares Eq. 1 against the Heath/Kotla-style
// OS-utilization CPU model on an IPC-varying evaluation.
func (r *Runner) ExtensionOSUtil() (*Comparison, error) {
	train, err := r.dataset("gcc", r.duration(240), r.opt.TrainSeed)
	if err != nil {
		return nil, err
	}
	eq1, err := core.Train(core.CPUSpec(), train)
	if err != nil {
		return nil, err
	}
	utilM, err := core.Train(core.CPUOSUtilSpec(), train)
	if err != nil {
		return nil, err
	}
	eval, err := r.dataset("lucas", r.duration(150), r.opt.Seed)
	if err != nil {
		return nil, err
	}
	ue, err := utilM.Validate(eval)
	if err != nil {
		return nil, err
	}
	ee, err := eq1.Validate(eval)
	if err != nil {
		return nil, err
	}
	return &Comparison{
		Name:     "CPU model channel (lucas: high utilization, low IPC)",
		Baseline: "OS-utilization (Heath/Kotla)", BaselineErr: ue,
		Variant: "on-chip counters Eq.1", VariantErr: ee,
	}, nil
}

// Extensions runs every extension study.
func (r *Runner) Extensions() ([]Comparison, error) {
	var out []Comparison
	for _, get := range []func() (*Comparison, error){
		r.ExtensionDVFS, r.ExtensionSpindown, r.ExtensionOSUtil,
	} {
		c, err := get()
		if err != nil {
			return nil, err
		}
		out = append(out, *c)
	}
	return out, nil
}
